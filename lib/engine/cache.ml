type key = {
  formula : int;
  level : int;
  extents : int list;  (* extent lengths: the proper-sequence partition *)
}

let key ~formula ~level ~extents =
  let lengths =
    List.map
      (fun iv -> Simlist.Interval.hi iv - Simlist.Interval.lo iv + 1)
      (Simlist.Extent.spans extents)
  in
  { formula; level; extents = lengths }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

(* doubly-linked recency list; head = most recent, tail = next to evict.
   The store version is NOT part of the key: each entry carries the
   version it was computed at as a [stamp], and a lookup at a newer
   version asks the caller's validity predicate whether the changes in
   between could have affected the entry (extent-scoped invalidation).
   A surviving entry is restamped so the replay happens once per entry
   per version step, not once per probe. *)
type entry = {
  ekey : key;
  mutable stamp : int;
  mutable value : Simlist.Sim_table.t;
  mutable prev : entry option;
  mutable next : entry option;
}

(* One mutex serializes every operation, counters included (the
   alternative — per-domain shards merged on completion — would lose the
   global LRU order and make [stats] incoherent mid-run).  Contention is
   negligible: a hit or miss is a few pointer swaps amortized against an
   entire subformula evaluation.  See DESIGN.md §2.13. *)
type t = {
  cap : int;
  mutex : Mutex.t;
  table : (key, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable survivals : int;
  mutable stale_drops : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    cap = capacity;
    mutex = Mutex.create ();
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    survivals = 0;
    stale_drops = 0;
  }

let capacity t = t.cap

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

type outcome =
  | Hit of Simlist.Sim_table.t
  | Survived of Simlist.Sim_table.t
  | Stale
  | Absent

let find t k ~version ~valid =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e when e.stamp = version ->
          t.hits <- t.hits + 1;
          unlink t e;
          push_front t e;
          Hit e.value
      | Some e ->
          if valid ~stamp:e.stamp then begin
            e.stamp <- version;
            t.hits <- t.hits + 1;
            t.survivals <- t.survivals + 1;
            unlink t e;
            push_front t e;
            Survived e.value
          end
          else begin
            unlink t e;
            Hashtbl.remove t.table e.ekey;
            t.misses <- t.misses + 1;
            t.stale_drops <- t.stale_drops + 1;
            Stale
          end
      | None ->
          t.misses <- t.misses + 1;
          Absent)

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.table e.ekey;
      t.evictions <- t.evictions + 1

let add t k ~version v =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          e.value <- v;
          e.stamp <- version;
          unlink t e;
          push_front t e
      | None ->
          if Hashtbl.length t.table >= t.cap then evict_lru t;
          let e = { ekey = k; stamp = version; value = v; prev = None; next = None } in
          Hashtbl.add t.table k e;
          push_front t e)

let stats t =
  Mutex.protect t.mutex (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        capacity = t.cap;
      })

let survivals t = Mutex.protect t.mutex (fun () -> t.survivals)
let stale_drops t = Mutex.protect t.mutex (fun () -> t.stale_drops)

let stats_delta ~(before : stats) ~(after : stats) =
  {
    hits = after.hits - before.hits;
    misses = after.misses - before.misses;
    evictions = after.evictions - before.evictions;
    entries = after.entries;
    capacity = after.capacity;
  }

let reset_stats t =
  Mutex.protect t.mutex (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.survivals <- 0;
      t.stale_drops <- 0)

let clear t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.survivals <- 0;
      t.stale_drops <- 0)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits %d  misses %d  evictions %d  entries %d/%d" s.hits
    s.misses s.evictions s.entries s.capacity
