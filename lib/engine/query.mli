(** The unified retrieval entry point: parse → classify → dispatch to the
    class-specific algorithm → rank (figure 1's architecture). *)

exception Error of string

type backend =
  | Direct_backend  (** the §3 interval-list / table algorithms *)
  | Sql_backend_choice  (** translation to SQL over {!Relational} *)
  | Auto_backend
      (** let the cost-based planner pick per query: observed
          per-(fingerprint, backend) latency EWMAs when both backends
          have run the formula, static cost estimates otherwise
          ({!Planner.choose_backend}).  Resolved inside {!dispatch}, so
          a sharded scatter resolves per shard; with planning off
          ({!Context.without_planner}) it falls back to the direct
          backend.  {!explain}'s report says what was picked and why. *)

val classify : Htl.Ast.t -> Htl.Classify.cls

val dispatch :
  backend:backend ->
  Context.t ->
  Htl.Classify.cls ->
  Htl.Ast.t ->
  Simlist.Sim_list.t
(** The class dispatcher {!run} sits on: evaluate an already-classified
    formula with no per-query envelope (no [query.count], latency
    histogram or slow-log record).  [Htl_shard]'s coordinator uses it so
    a scatter over N shards still counts as {e one} query; everyone else
    wants {!run}.
    @raise Error as {!run} does. *)

val run :
  ?backend:backend -> Context.t -> Htl.Ast.t -> Simlist.Sim_list.t
(** Evaluate a closed formula of any supported class over the context's
    level.  The SQL backend supports type (1) only (as benchmarked in
    §4.2); the direct backend dispatches type (1) formulas to the list
    algorithms and everything up to extended conjunctive to the table
    algorithms.
    @raise Error on general formulas, open formulas, or backend
    limitations — the message says which. *)

val run_string :
  ?backend:backend -> Context.t -> string -> Simlist.Sim_list.t
(** Parse then {!run}. *)

val run_observed :
  backend:backend -> Context.t -> Htl.Ast.t -> Simlist.Sim_list.t
(** The observed evaluation path {!run} takes when the context carries a
    tracer, metrics or a querylog: span, counters, latency/allocation
    histograms and the slow-log record, whichever of the three are
    attached.  Exposed for callers that hold a long-lived observed
    context (the {!Server}) and want the bookkeeping unconditionally;
    on a bare context it is just {!run} with extra clock reads.
    @raise Error as {!run} does. *)

val run_batch :
  ?backend:backend ->
  ?pool:Parallel.Pool.t ->
  Context.t ->
  Htl.Ast.t list ->
  (Simlist.Sim_list.t, string) result list
(** Evaluate a batch of independent closed formulas, one result per
    formula in order.  A query that would raise {!Error} yields [Error
    msg] instead — one bad query never aborts the batch.

    With a pool ([?pool] if given, else the context's), the queries fan
    out across the domains, and the same pool serves each query's
    internal parallel scans; the shared subformula cache lets concurrent
    queries reuse each other's intermediate tables (see DESIGN.md
    §2.13).  Without a pool the batch runs sequentially. *)

val run_with_fallback : Context.t -> Htl.Ast.t -> Simlist.Sim_list.t
(** Like {!run} with the direct backend, but formulas outside the
    extended-conjunctive fragment (negation, disjunction, free temporal
    quantification) fall back to the exact boolean semantics of §2.3: a
    segment scores [(1, 1)] when it satisfies the formula and [(0, 1)]
    otherwise.  This implements the §5 future-work item "extension of the
    above methods to the full language" in its simplest sound form; it
    requires a video store.
    @raise Error when the fallback is needed but no store is available,
    or the formula is open. *)

val top_k :
  ?backend:backend ->
  Context.t ->
  k:int ->
  string ->
  (int * Simlist.Sim.t) list
(** The end-to-end user operation: parse, evaluate, return the k best
    segments. *)

(** {1 Observability}

    {!run} records a ["query.run"] span when the context carries a
    tracer, and — when it carries metrics — the ["query.count"] /
    ["query.errors"] counters and the ["query.latency_s"] /
    ["query.allocated_words"] histograms.  Any observed run (tracer,
    metrics or querylog attached) also takes a {!Obs.Resource} GC delta:
    it rides the span as [gc.*] attributes and lands in the slow-query
    log.  When the context carries a {!Obs.Querylog.t}
    ({!Context.with_querylog}), queries whose latency crosses its
    threshold append a structured record (formula fingerprint, backend,
    class, latency, per-query cache hit/miss deltas, per-level
    [picture.segments_scanned.*] deltas when metrics are also attached,
    allocation delta, and the error message if the query failed).
    Without any of the three the fast path runs classify + dispatch
    only.

    The direct backend memoizes subformula tables in the context's
    {!Cache} (see DESIGN.md, "Caching & invalidation").  The counters
    tell how a workload is behaving: repeated or overlapping queries
    should show hits climbing; evictions signal an undersized cache. *)

val explain :
  ?backend:backend -> ?analyze:bool -> Context.t -> Htl.Ast.t -> Explain.report
(** The evaluation tree {!run} would walk: chosen backend, formula
    class, one node per subformula.  With [~analyze:true] the query
    actually runs under a private tracer (the context's own tracer is
    untouched) and the report carries per-node wall times, recorded
    attributes (row counts, the And-reorder conjunct order), the
    whole-query total — and, on the SQL backend, the executed script as
    {!Relational.Plan} operator trees.  Nodes served by a warm
    subformula cache show as cached.
    @raise Error as {!run} does. *)

val explain_string :
  ?backend:backend -> ?analyze:bool -> Context.t -> string -> Explain.report
(** Parse then {!explain}. *)

val cache_stats : Context.t -> Cache.stats option
(** Hit/miss/eviction counters and occupancy of the context's cache;
    [None] when caching is disabled ({!Context.without_cache}). *)

val reset_cache_stats : Context.t -> unit
(** Zero the counters (entries stay) — for per-phase measurements. *)
