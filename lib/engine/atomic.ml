exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let named_table (ctx : Context.t) = function
  | Htl.Ast.Atom (Htl.Ast.Rel (name, [])) -> List.assoc_opt name ctx.tables
  | _ -> None

let rec resolve (ctx : Context.t) f =
  match named_table ctx f with
  | Some table -> table
  | None -> (
      match ctx.store with
      | Some store -> (
          (* chunk the per-segment scoring scan across the pool when the
             level is large enough (point (a) of DESIGN.md §2.13) *)
          let pool = Context.pool_for ctx ~n:(Context.segment_count ctx) in
          (* the plan's access-path decision: when the estimated
             selectivity is past the index-vs-scan crossover, evaluate
             this unit as a full scan (pruning is sound either way, so
             only the cost changes) *)
          let config =
            match ctx.plan with
            | Some plan
              when ctx.picture_config.prune && Planner.scan_override plan f
              ->
                { ctx.picture_config with Picture.Retrieval.prune = false }
            | Some _ | None -> ctx.picture_config
          in
          try
            Picture.Retrieval.eval ~config ?pool ?tracer:ctx.tracer
              ?metrics:ctx.metrics ?stats:ctx.stats
              ?index:(Context.index ctx) store ~level:ctx.level f
          with Picture.Retrieval.Unsupported msg -> raise (Unsupported msg))
      | None -> (
          (* store-less contexts resolve only named tables; decompose the
             unit down to them *)
          match f with
          | Htl.Ast.And (g, h) ->
              Simlist.Sim_table.join
                ~combine:(Simlist.Sim_list.conjunction_mode ctx.conj_mode)
                (resolve ctx g) (resolve ctx h)
          | Htl.Ast.Exists (x, g) ->
              Simlist.Sim_table.project_obj_var (resolve ctx g) x
          | _ ->
              unsupported
                "atomic formula %s: no precomputed table of that name and \
                 no video store configured"
                (Htl.Pretty.to_string f)))

let rec max_of (ctx : Context.t) f =
  match named_table ctx f with
  | Some table -> Simlist.Sim_table.max_sim table
  | None -> (
      match ctx.store with
      | Some _ -> (
          try Picture.Weights.total ctx.picture_config.weights f
          with Invalid_argument msg -> raise (Unsupported msg))
      | None -> (
          match f with
          | Htl.Ast.And (g, h) -> max_of ctx g +. max_of ctx h
          | Htl.Ast.Exists (_, g) -> max_of ctx g
          | _ ->
              unsupported "atomic formula %s has no known maximum similarity"
                (Htl.Pretty.to_string f)))
