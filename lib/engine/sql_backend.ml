open Htl.Ast
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table
module Interval = Simlist.Interval
module Extent = Simlist.Extent
module Catalog = Relational.Catalog
module Table = Relational.Table
module V = Relational.Value

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type t = {
  db : Catalog.t;
  mutable fresh : int;
  mutable script : string list;  (* reversed *)
  mutable temps : string list;
}

let db t = t.db
let last_script t = List.rev t.script

let create (ctx : Context.t) =
  let db = Catalog.create () in
  let rows =
    List.concat_map
      (fun span ->
        let lo = Interval.lo span and hi = Interval.hi span in
        List.init
          (Interval.length span)
          (fun k -> [| V.Int (lo + k); V.Int lo; V.Int hi |]))
      (Extent.spans (Context.extents ctx))
  in
  Catalog.put db "seq" (Table.create ~cols:[ "id"; "elo"; "ehi" ] rows);
  { db; fresh = 0; script = []; temps = [] }

let fresh t prefix =
  t.fresh <- t.fresh + 1;
  let name = Printf.sprintf "%s_%d" prefix t.fresh in
  t.temps <- name :: t.temps;
  name

let exec t sql =
  t.script <- sql :: t.script;
  ignore (Catalog.exec_sql t.db sql)

let float_lit v = Printf.sprintf "%.17g" v

(* load an atomic unit's similarity list as an interval table *)
let load_atom t name (list : Sim_list.t) =
  let rows =
    List.map
      (fun (iv, act) ->
        [| V.Int (Interval.lo iv); V.Int (Interval.hi iv); V.Float act |])
      (Sim_list.entries list)
  in
  Catalog.put t.db name (Table.create ~cols:[ "beg"; "fin"; "act" ] rows)

(* until/eventually share the corridor machinery: [corridors] has columns
   (lo, hi, ehi); result value at i in [lo,hi] = max h.act over
   [i, min(hi+1, ehi)]; plus h at the id itself when [with_self]. *)
let corridor_merge t ~corridors ~h_name ~with_self =
  let reach = fresh t "reach" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT i.id AS id, h.act AS act FROM %s h JOIN \
        %s c ON h.id BETWEEN c.lo AND c.hi + 1 AND h.id <= c.ehi JOIN seq \
        i ON i.id BETWEEN c.lo AND c.hi AND i.id <= h.id;"
       reach h_name corridors);
  let cor_max = fresh t "cmax" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT id, MAX(act) AS act FROM %s GROUP BY id;"
       cor_max reach);
  if not with_self then cor_max
  else begin
    let both = fresh t "both" in
    exec t
      (Printf.sprintf
         "CREATE TABLE %s AS SELECT id, act FROM %s UNION ALL SELECT id, \
          act FROM %s;"
         both cor_max h_name);
    let out = fresh t "t" in
    exec t
      (Printf.sprintf
         "CREATE TABLE %s AS SELECT id, MAX(act) AS act FROM %s GROUP BY id;"
         out both);
    out
  end

(* --- list-level SQL operations ------------------------------------------ *)

(* expand a similarity list into a per-id table (id, act) *)
let sql_expand t list =
  let atom = fresh t "atom" in
  load_atom t atom list;
  let out = fresh t "t" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT s.id AS id, a.act AS act FROM seq s \
        JOIN %s a ON s.id BETWEEN a.beg AND a.fin;"
       out atom);
  out

let sql_and t u v =
  let all = fresh t "uall" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT id, act FROM %s UNION ALL SELECT id, \
        act FROM %s;"
       all u v);
  let out = fresh t "t" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT id, SUM(act) AS act FROM %s GROUP BY id;"
       out all);
  out

let sql_next t u =
  let out = fresh t "t" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT u.id - 1 AS id, u.act AS act FROM %s u \
        JOIN seq s ON u.id = s.id WHERE u.id - 1 >= s.elo;"
       out u);
  out

(* [thr] is the absolute (not fractional) corridor threshold for g *)
let sql_until t ~thr gu hv =
  let g_ok = fresh t "gok" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT u.id AS id, s.elo AS elo, s.ehi AS ehi \
        FROM %s u JOIN seq s ON u.id = s.id WHERE u.act >= %s;"
       g_ok gu (float_lit thr));
  let g_run = fresh t "grun" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT id, elo, ehi, ROWNUM() AS rn FROM %s \
        ORDER BY id;"
       g_run g_ok);
  let corridors = fresh t "cor" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT MIN(id) AS lo, MAX(id) AS hi, MIN(ehi) \
        AS ehi FROM %s GROUP BY elo, id - rn;"
       corridors g_run);
  corridor_merge t ~corridors ~h_name:hv ~with_self:true

let sql_eventually t u =
  let corridors = fresh t "cor" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT DISTINCT elo AS lo, ehi AS hi, ehi AS \
        ehi2 FROM seq;"
       corridors);
  (* rename ehi2 -> ehi via a projection table *)
  let corridors2 = fresh t "cor" in
  exec t
    (Printf.sprintf "CREATE TABLE %s AS SELECT lo, hi, ehi2 AS ehi FROM %s;"
       corridors2 corridors);
  corridor_merge t ~corridors:corridors2 ~h_name:u ~with_self:false

(* read a per-id table back into a similarity list, coalescing in SQL *)
let read_back t name ~max =
  let numbered = fresh t "numbered" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT id, act, ROWNUM() AS rn FROM %s ORDER BY \
        act, id;"
       numbered name);
  let result = fresh t "result" in
  exec t
    (Printf.sprintf
       "CREATE TABLE %s AS SELECT MIN(id) AS beg, MAX(id) AS fin, MIN(act) \
        AS act FROM %s GROUP BY act, id - rn;"
       result numbered);
  let table = Catalog.find t.db result in
  let entries =
    List.filter_map
      (fun row ->
        match row with
        | [| V.Int beg; V.Int fin; act |] ->
            let act =
              match act with
              | V.Float a -> a
              | V.Int a -> float_of_int a
              | V.Null | V.Str _ -> 0.
            in
            if act > 0. then Some (Interval.make beg fin, act) else None
        | _ -> None)
      (Table.rows table)
  in
  Sim_list.of_entries ~max entries

let sql_label f =
  if is_non_temporal f then "sql.atom"
  else
    match f with
    | And _ -> "sql.and"
    | Until _ -> "sql.until"
    | Next _ -> "sql.next"
    | Eventually _ -> "sql.eventually"
    | Exists _ -> "sql.exists"
    | Freeze _ -> "sql.freeze"
    | At_level _ -> "sql.at_level"
    | Or _ | Not _ | Atom _ -> "sql.other"

let span_attrs (ctx : Context.t) f () =
  [
    ("formula", string_of_int (Htl.Hcons.intern_id f));
    ("level", string_of_int ctx.level);
  ]

(* translate a type (1) formula; returns the name of a per-id table
   (id, act) holding the non-zero actual similarities.  Each node records
   a span whose ["statements"] attribute counts the SQL statements it
   (and its children) emitted. *)
let rec translate t (ctx : Context.t) f =
  Context.with_span ctx (sql_label f) ~attrs:(span_attrs ctx f) (fun () ->
      let before = List.length t.script in
      let out = translate_raw t ctx f in
      Context.add_attr ctx "statements" (fun () ->
          string_of_int (List.length t.script - before));
      out)

and translate_raw t (ctx : Context.t) f =
  if is_non_temporal f then begin
    if free_obj_vars f <> [] || free_attr_vars f <> [] then
      unsupported "the SQL backend handles closed atomic units only";
    sql_expand t (Sim_table.project_exists (Atomic.resolve ctx f))
  end
  else
    match f with
    | And (g, h) -> sql_and t (translate t ctx g) (translate t ctx h)
    | Next g -> sql_next t (translate t ctx g)
    | Until (g, h) ->
        let thr = ctx.threshold *. Reference.max_similarity ctx g in
        sql_until t ~thr (translate t ctx g) (translate t ctx h)
    | Eventually g -> sql_eventually t (translate t ctx g)
    | Or _ | Not _ | Exists _ | Freeze _ | At_level _ ->
        unsupported "the SQL backend handles type (1) formulas only: %s"
          (Htl.Pretty.to_string f)
    | Atom _ -> assert false

let cleanup t =
  List.iter (fun name -> Catalog.drop t.db name) t.temps;
  t.temps <- []

let run t ctx f =
  t.script <- [];
  let final = translate t ctx f in
  let list =
    Context.with_span ctx "sql.read_back" (fun () ->
        read_back t final ~max:(Reference.max_similarity ctx f))
  in
  Context.metric_incr ctx ~by:(List.length t.script) "sql.statements";
  cleanup t;
  list

(* --- conjunctive formulas (§3.2/§3.3 via SQL) ----------------------------

   The paper's SQL system computes similarity tables for any conjunctive
   formula.  We mirror its structure: the evaluation bookkeeping (rows of
   variable bindings, joins on shared variables, the freeze value-table
   join) follows §3.2/§3.3 exactly, while every similarity-LIST
   combination — the actual data processing — is a sequence of SQL
   statements over per-id tables. *)

let sql_combine_lists t kind l1 l2 =
  let u = sql_expand t l1 and v = sql_expand t l2 in
  let max, out =
    match kind with
    | `And -> (Sim_list.max_sim l1 +. Sim_list.max_sim l2, sql_and t u v)
    | `Until threshold ->
        let thr = threshold *. Sim_list.max_sim l1 in
        (Sim_list.max_sim l2, sql_until t ~thr u v)
  in
  read_back t out ~max

let sql_map_list t kind l =
  let u = sql_expand t l in
  let out = match kind with `Next -> sql_next t u | `Eventually -> sql_eventually t u in
  read_back t out ~max:(Sim_list.max_sim l)

let map_rows f table =
  Sim_table.create
    ~obj_cols:(Sim_table.obj_cols table)
    ~attr_cols:(Sim_table.attr_cols table)
    ~max:(Sim_table.max_sim table)
    (List.filter_map
       (fun (r : Sim_table.row) ->
         let list = f r.list in
         if Sim_list.is_empty list && r.attrs = [] then None
         else Some { r with list })
       (Sim_table.rows table))

let rec create_for ctx = create ctx

and eval_conjunctive t (ctx : Context.t) f =
  Context.with_span ctx (sql_label f) ~attrs:(span_attrs ctx f) (fun () ->
      eval_conjunctive_raw t ctx f)

and eval_conjunctive_raw t (ctx : Context.t) f =
  if is_non_temporal f then Atomic.resolve ctx f
  else
    match f with
    | And (g, h) ->
        Sim_table.join
          ~combine:(sql_combine_lists t `And)
          (eval_conjunctive t ctx g) (eval_conjunctive t ctx h)
    | Until (g, h) ->
        Sim_table.join
          ~combine:(sql_combine_lists t (`Until ctx.threshold))
          (eval_conjunctive t ctx g) (eval_conjunctive t ctx h)
    | Next g -> map_rows (fun l -> sql_map_list t `Next l) (eval_conjunctive t ctx g)
    | Eventually g ->
        map_rows (fun l -> sql_map_list t `Eventually l) (eval_conjunctive t ctx g)
    | Exists (x, g) -> Sim_table.project_obj_var (eval_conjunctive t ctx g) x
    | Freeze { var; attr; obj; body } -> (
        let table = eval_conjunctive t ctx body in
        match Direct.value_table ctx ~attr ~obj with
        | vt -> Sim_table.freeze_join table ~var vt
        | exception Direct.Unsupported msg -> unsupported "%s" msg)
    | At_level (sel, g) -> (
        (* the body evaluates over the descendant sequences of the target
           level, which have their own id space: give it its own sequence
           table (a fresh database), then lift the rows back *)
        match
          let target = Direct.resolve_level ctx sel in
          if target <= ctx.level then
            raise
              (Direct.Unsupported
                 (Printf.sprintf "level operator must descend (at %d from %d)"
                    target ctx.level));
          let spans, extents = Direct.at_level_extents ctx ~target in
          (target, spans, extents)
        with
        | exception Direct.Unsupported msg -> unsupported "%s" msg
        | target, spans, extents ->
            let ctx' = Context.with_level ctx ~level:target ~extents in
            let t' = create_for ctx' in
            let inner = eval_conjunctive t' ctx' g in
            t.script <- List.rev_append (List.rev t'.script) t.script;
            cleanup t';
            map_rows (Direct.lift_to_parents spans) inner)
    | Or _ | Not _ ->
        unsupported "the SQL translation has no semantics for %s"
          (Htl.Pretty.to_string f)
    | Atom _ -> assert false

let run_conjunctive t (ctx : Context.t) f =
  if ctx.conj_mode <> Simlist.Sim_list.Weighted_sum then
    unsupported "the SQL translation implements the paper's weighted-sum \
                 conjunction only";
  t.script <- [];
  let rec strip = function Exists (_, g) -> strip g | g -> g in
  let result = Sim_table.project_exists (eval_conjunctive t ctx (strip f)) in
  Context.metric_incr ctx ~by:(List.length t.script) "sql.statements";
  cleanup t;
  result

let node_label = sql_label
