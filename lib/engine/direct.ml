open Htl.Ast
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table
module Interval = Simlist.Interval
module Extent = Simlist.Extent
module Store = Video_model.Store

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let require_store (ctx : Context.t) what =
  match ctx.store with
  | Some store -> store
  | None -> unsupported "%s requires a video store" what

let map_lists f table =
  let max = Sim_table.max_sim table in
  Sim_table.create
    ~obj_cols:(Sim_table.obj_cols table)
    ~attr_cols:(Sim_table.attr_cols table)
    ~max
    (List.filter_map
       (fun (r : Sim_table.row) ->
         let list = f r.list in
         if Sim_list.is_empty list && r.attrs = [] then None
         else Some { r with list })
       (Sim_table.rows table))

(* value table of attribute function [attr] (of an object variable or of
   the segment itself) over the context's level.  The per-object span
   extraction (the freeze-quantifier candidates) fans out across the
   context's pool; each object's scan only reads the store and the
   posting index. *)
let value_table (ctx : Context.t) ~attr ~obj =
  let store = require_store ctx "the freeze quantifier" in
  let n = Store.count_at store ~level:ctx.level in
  let to_range_value id = function
    | Metadata.Value.Int k -> Some (Simlist.Range.Vint k)
    | Metadata.Value.Str s -> Some (Simlist.Range.Vstr s)
    | Metadata.Value.Float _ ->
        unsupported
          "frozen attribute %s has a float value at segment %d (§3.3 \
           restricts attribute variables to integers)"
          attr id
    | Metadata.Value.Bool _ ->
        unsupported "frozen attribute %s has a boolean value" attr
  in
  (* group consecutive segments with the same value into spans *)
  let spans_of values =
    (* values : (id, value) list, ascending ids *)
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (id, v) ->
        let spans = Option.value ~default:[] (Hashtbl.find_opt tbl v) in
        let spans =
          match spans with
          | last :: rest when Interval.hi last + 1 = id ->
              Interval.make (Interval.lo last) id :: rest
          | _ -> Interval.point id :: spans
        in
        Hashtbl.replace tbl v spans)
      values;
    Hashtbl.fold (fun v spans acc -> (v, List.rev spans) :: acc) tbl []
  in
  match obj with
  | None ->
      let values = ref [] in
      for id = n downto 1 do
        match Metadata.Seg_meta.attr (Store.meta store ~level:ctx.level ~id) attr with
        | Some v -> (
            match to_range_value id v with
            | Some rv -> values := (id, rv) :: !values
            | None -> ())
        | None -> ()
      done;
      Simlist.Value_table.create ~obj_cols:[]
        (List.map
           (fun (v, spans) -> { Simlist.Value_table.objs = []; value = v; spans })
           (spans_of !values))
  | Some x ->
      (* the registry's finalized index — the same one the atomic
         evaluator uses, so one query builds at most once *)
      let idx =
        match Context.index ctx with
        | Some idx -> idx
        | None -> Picture.Index.build ?metrics:ctx.metrics store ~level:ctx.level
      in
      let rows_of oid =
        let values = ref [] in
        let segs = Picture.Index.segments_of_object idx oid in
        for k = Array.length segs - 1 downto 0 do
          let id = segs.(k) in
          match
            Metadata.Seg_meta.object_attr
              (Store.meta store ~level:ctx.level ~id)
              oid attr
          with
          | Some v -> (
              match to_range_value id v with
              | Some rv -> values := (id, rv) :: !values
              | None -> ())
          | None -> ()
        done;
        List.map
          (fun (v, spans) ->
            { Simlist.Value_table.objs = [ (x, oid) ]; value = v; spans })
          (spans_of !values)
      in
      let oids = Picture.Index.objects_at_level idx in
      let rows =
        match Context.pool_for ctx ~n:(Store.count_at store ~level:ctx.level) with
        | Some pool ->
            Context.with_span ctx "pool.objects"
              ~attrs:(fun () -> [ ("n", string_of_int (List.length oids)) ])
              (fun () ->
                List.concat (Parallel.Pool.parallel_map pool rows_of oids))
        | None -> List.concat_map rows_of oids
      in
      Simlist.Value_table.create ~obj_cols:[ x ] rows

(* at-level evaluation: per-parent descendant sequences.  The per-parent
   span walk chunks across the pool — each walk reads the store only. *)
let at_level_extents (ctx : Context.t) ~target =
  let store = require_store ctx "a level operator" in
  let parents = Store.count_at store ~level:ctx.level in
  let span_of i =
    match Store.descendants_span store ~level:ctx.level ~id:(i + 1) ~target with
    | Some span -> span
    | None ->
        unsupported "segment %d has no descendants at level %d" (i + 1) target
  in
  let spans =
    match Context.pool_for ctx ~n:parents with
    | Some pool ->
        Context.with_span ctx "pool.parents"
          ~attrs:(fun () -> [ ("n", string_of_int parents) ])
          (fun () ->
            Array.to_list (Parallel.Pool.parallel_init pool parents span_of))
    | None -> List.init parents span_of
  in
  (spans, Extent.of_spans spans)

(* lift a level-[target] similarity list back to the parent level: the
   parent's value is the list's value at its first descendant *)
let lift_to_parents spans list =
  let entries =
    List.mapi
      (fun i span ->
        (Interval.point (i + 1), Sim_list.value_at list (Interval.lo span)))
      spans
  in
  Sim_list.of_entries ~max:(Sim_list.max_sim list)
    (List.filter (fun (_, v) -> v > 0.) entries)

let resolve_level (ctx : Context.t) = function
  | Next_level -> ctx.level + 1
  | Level_index i -> i
  | Level_name name -> (
      let store = require_store ctx "a named level operator" in
      match Store.level_index store name with
      | Some i -> i
      | None -> unsupported "unknown level %S" name)

(* Span labels name the node kind; the ["formula"] attribute carries the
   hash-consed id so EXPLAIN can match spans back to subformulas. *)
let node_label (ctx : Context.t) f =
  if is_non_temporal f then "direct.atom"
  else
    match f with
    | And _ when ctx.reorder_joins -> "direct.and_reorder"
    | And _ -> "direct.and"
    | Until _ -> "direct.until"
    | Next _ -> "direct.next"
    | Eventually _ -> "direct.eventually"
    | Exists _ -> "direct.exists"
    | Freeze _ -> "direct.freeze"
    | At_level _ -> "direct.at_level"
    | Or _ -> "direct.or"
    | Not _ -> "direct.not"
    | Atom _ -> "direct.atom"

let span_attrs (ctx : Context.t) f () =
  [
    ("formula", string_of_int (Htl.Hcons.intern_id f));
    ("level", string_of_int ctx.level);
  ]

(* Every eval goes through the context's subformula cache: the key is the
   hash-consed formula id plus level, extent partition and store version,
   so overlapping queries reuse each other's intermediate tables and any
   store mutation invalidates (see Engine.Cache).  [eval_raw] recurses
   back through [eval], memoizing every level of the tree.  A computed
   (non-cached) node records a span; cache hits record none — EXPLAIN
   shows them as "cached". *)
let rec eval (ctx : Context.t) f =
  match Context.cache_find ctx f with
  | Some table -> table
  | None ->
      let table =
        Context.with_span ctx (node_label ctx f) ~attrs:(span_attrs ctx f)
          (fun () ->
            let table = eval_raw ctx f in
            Context.add_attr ctx "rows" (fun () ->
                string_of_int (Sim_table.row_count table));
            table)
      in
      Context.cache_add ctx f table;
      table

(* Independent children of a binary node evaluate concurrently when the
   extent is past the cutoff.  Siblings sharing a subformula may both
   compute it before either caches it — duplicated work, never a wrong
   result (the cache keeps whichever lands last; both are equal). *)
and eval_pair (ctx : Context.t) g h =
  match Context.pool_for ctx ~n:(Context.segment_count ctx) with
  | Some pool ->
      Context.with_span ctx "pool.both" (fun () ->
          Parallel.Pool.both pool (fun () -> eval ctx g) (fun () -> eval ctx h))
  | None -> (eval ctx g, eval ctx h)

and eval_raw (ctx : Context.t) f =
  if is_non_temporal f then Atomic.resolve ctx f
  else
    match f with
    | And (_, _) when ctx.reorder_joins ->
        (* flatten the chain and join in the planned order (sparsest
           estimated support first) when the context carries a plan,
           else the runtime arity heuristic (smallest tables first);
           the conjunction combiners are associative and commutative,
           so the result is unchanged either way (property-tested) *)
        let rec flatten = function
          | And (a, b) -> flatten a @ flatten b
          | g -> [ g ]
        in
        let subs = flatten f in
        let tables =
          match Context.pool_for ctx ~n:(Context.segment_count ctx) with
          | Some pool ->
              Context.with_span ctx "pool.conjuncts"
                ~attrs:(fun () -> [ ("n", string_of_int (List.length subs)) ])
                (fun () -> Parallel.Pool.parallel_map pool (eval ctx) subs)
          | None -> List.map (eval ctx) subs
        in
        let planned =
          match ctx.plan with
          | None -> None
          | Some plan -> (
              match Planner.join_order plan f with
              | Some order when List.length order = List.length tables ->
                  let arr = Array.of_list tables in
                  Some (List.map (fun i -> (i, arr.(i))) order)
              | Some _ | None -> None)
        in
        let sorted =
          match planned with
          | Some sorted -> sorted
          | None ->
              (* sort (position, table) pairs so the chosen order is
                 available to the tracer; ties keep syntactic order *)
              List.sort
                (fun (i, a) (j, b) ->
                  compare (Sim_table.row_count a, i) (Sim_table.row_count b, j))
                (List.mapi (fun i t -> (i, t)) tables)
        in
        Context.add_attr ctx "join_plan" (fun () ->
            if Option.is_some planned then "planned" else "runtime");
        Context.add_attr ctx "join_order" (fun () ->
            String.concat ","
              (List.map (fun (i, _) -> string_of_int i) sorted));
        Context.add_attr ctx "join_rows" (fun () ->
            String.concat ","
              (List.map
                 (fun (_, t) -> string_of_int (Sim_table.row_count t))
                 sorted));
        let combine = Sim_list.conjunction_mode ctx.conj_mode in
        (match sorted with
        | [] -> assert false
        | (_, first) :: rest ->
            List.fold_left
              (fun acc (_, t) -> Sim_table.join ~combine acc t)
              first rest)
    | And (g, h) ->
        let tg, th = eval_pair ctx g h in
        Sim_table.join
          ~combine:(Sim_list.conjunction_mode ctx.conj_mode)
          tg th
    | Until (g, h) ->
        let tg, th = eval_pair ctx g h in
        Sim_table.join
          ~combine:(fun lg lh ->
            Sim_list.until_merge ~threshold:ctx.threshold ~extents:(Context.extents ctx)
              lg lh)
          tg th
    | Next g -> map_lists (Sim_list.next_shift ~extents:(Context.extents ctx)) (eval ctx g)
    | Eventually g ->
        map_lists (Sim_list.eventually ~extents:(Context.extents ctx)) (eval ctx g)
    | Exists (x, g) -> Sim_table.project_obj_var (eval ctx g) x
    | Freeze { var; attr; obj; body } ->
        let table = eval ctx body in
        let vt = value_table ctx ~attr ~obj in
        Sim_table.freeze_join table ~var vt
    | At_level (sel, g) ->
        let target = resolve_level ctx sel in
        if target <= ctx.level then
          unsupported "level operator must descend (at level %d from %d)"
            target ctx.level;
        let spans, extents = at_level_extents ctx ~target in
        let inner = eval (Context.with_level ctx ~level:target ~extents) g in
        map_lists (lift_to_parents spans) inner
    | Or _ -> unsupported "disjunction has no similarity semantics"
    | Not _ -> unsupported "negation has no similarity semantics"
    | Atom _ -> assert false (* atoms are non-temporal *)

let eval_closed ctx f =
  let rec strip = function
    | Exists (_, g) -> strip g
    | g -> g
  in
  Sim_table.project_exists (eval ctx (strip f))
