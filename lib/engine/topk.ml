module Sim_list = Simlist.Sim_list
module Sim = Simlist.Sim
module Interval = Simlist.Interval

let ranked_intervals list =
  List.sort
    (fun (i1, v1) (i2, v2) ->
      match Float.compare v2 v1 with
      | 0 -> Interval.compare i1 i2
      | c -> c)
    (Sim_list.entries list)

(* Expand intervals to segment ids lazily: the entries of a list are
   disjoint, so once ranked by (value desc, start asc) the ids of equal
   value come out ascending by walking intervals in order — the same
   (value desc, id asc) ranking as materialising every id, in
   O(m log m + k) instead of O(total frames).  A whole-movie list with a
   million-frame interval costs k conses, not a million. *)
let top_k list ~k =
  if k < 0 then
    invalid_arg (Printf.sprintf "Topk.top_k: negative k (%d)" k);
  let max = Sim_list.max_sim list in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (iv, v) :: tl ->
        let m = min n (Interval.length iv) in
        List.init m (fun i -> (Interval.lo iv + i, Sim.make ~actual:v ~max))
        @ take (n - m) tl
  in
  take k (ranked_intervals list)

let pp_table ?(header = ("Start", "End", "Sim")) ppf list =
  let s, e, v = header in
  Format.fprintf ppf "@[<v>%-8s %-8s %s@," s e v;
  List.iter
    (fun (iv, act) ->
      Format.fprintf ppf "%-8d %-8d %.6f@," (Interval.lo iv)
        (Interval.hi iv) act)
    (ranked_intervals list);
  Format.fprintf ppf "@]"
