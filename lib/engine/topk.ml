module Sim_list = Simlist.Sim_list
module Sim = Simlist.Sim
module Interval = Simlist.Interval

let ranked_intervals list =
  List.sort
    (fun (i1, v1) (i2, v2) ->
      match Float.compare v2 v1 with
      | 0 -> Interval.compare i1 i2
      | c -> c)
    (Sim_list.entries list)

(* Expand intervals to segment ids lazily: the entries of a list are
   disjoint, so once ranked by (value desc, start asc) the ids of equal
   value come out ascending by walking intervals in order — the same
   (value desc, id asc) ranking as materialising every id, in
   O(m log m + k) instead of O(total frames).  A whole-movie list with a
   million-frame interval costs k conses, not a million. *)
let top_k list ~k =
  if k < 0 then
    invalid_arg (Printf.sprintf "Topk.top_k: negative k (%d)" k);
  let max = Sim_list.max_sim list in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (iv, v) :: tl ->
        let m = min n (Interval.length iv) in
        List.init m (fun i -> (Interval.lo iv + i, Sim.make ~actual:v ~max))
        @ take (n - m) tl
  in
  take k (ranked_intervals list)

(* K-way merge of per-shard ranked lists: each list's ids shift by its
   offset into the global numbering, and the shifted entries are pairwise
   disjoint (shards partition the id space).  A binary heap holding one
   cursor per list pops entries in (value desc, global start asc) order —
   for disjoint intervals that is exactly the (value desc, id asc)
   ranking [top_k] produces on the merged list — so the coordinator
   materialises k ids, never the full ranked list.  O(m log s + k) for m
   total entries over s lists. *)
type cursor = {
  c_value : float;
  c_iv : Interval.t; (* already shifted into global ids *)
  c_rest : (Interval.t * float) list; (* still list-local *)
  c_off : int;
}

let merged_top_k parts ~k =
  if k < 0 then
    invalid_arg (Printf.sprintf "Topk.merged_top_k: negative k (%d)" k);
  let max =
    match parts with
    | [] -> invalid_arg "Topk.merged_top_k: no lists"
    | (l, _) :: rest ->
        let m = Sim_list.max_sim l in
        List.iter
          (fun (l', _) ->
            if Sim_list.max_sim l' <> m then
              invalid_arg "Topk.merged_top_k: lists disagree on max")
          rest;
        m
  in
  let dummy =
    { c_value = 0.; c_iv = Interval.point 1; c_rest = []; c_off = 0 }
  in
  let heap = Array.make (List.length parts) dummy in
  let size = ref 0 in
  let before a b =
    match Float.compare a.c_value b.c_value with
    | 0 -> Interval.lo a.c_iv < Interval.lo b.c_iv
    | c -> c > 0
  in
  let swap i j =
    let t = heap.(i) in
    heap.(i) <- heap.(j);
    heap.(j) <- t
  in
  let rec up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if before heap.(i) heap.(p) then begin
        swap i p;
        up p
      end
    end
  in
  let rec down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < !size && before heap.(l) heap.(!m) then m := l;
    if r < !size && before heap.(r) heap.(!m) then m := r;
    if !m <> i then begin
      swap i !m;
      down !m
    end
  in
  let push c =
    heap.(!size) <- c;
    incr size;
    up (!size - 1)
  in
  let cursor off = function
    | [] -> ()
    | (iv, v) :: rest ->
        push { c_value = v; c_iv = Interval.shift off iv; c_rest = rest; c_off = off }
  in
  List.iter (fun (l, off) -> cursor off (ranked_intervals l)) parts;
  let rec take n =
    if n = 0 || !size = 0 then []
    else begin
      let c = heap.(0) in
      decr size;
      heap.(0) <- heap.(!size);
      heap.(!size) <- dummy;
      down 0;
      cursor c.c_off c.c_rest;
      let m = min n (Interval.length c.c_iv) in
      List.init m (fun i ->
          (Interval.lo c.c_iv + i, Sim.make ~actual:c.c_value ~max))
      @ take (n - m)
    end
  in
  take k

let pp_table ?(header = ("Start", "End", "Sim")) ppf list =
  let s, e, v = header in
  Format.fprintf ppf "@[<v>%-8s %-8s %s@," s e v;
  List.iter
    (fun (iv, act) ->
      Format.fprintf ppf "%-8d %-8d %.6f@," (Interval.lo iv)
        (Interval.hi iv) act)
    (ranked_intervals list);
  Format.fprintf ppf "@]"
