(** The §3.1 algorithm for type (1) formulas: every atomic unit is closed,
    so the whole computation runs on similarity {e lists} with the
    dedicated merges — overall O(l·p) where l is the total input list
    length and p the formula length. *)

exception Unsupported of string

val eval : Context.t -> Htl.Ast.t -> Simlist.Sim_list.t
(** @raise Unsupported when the formula is not type (1) (open atomic
    units, freeze, level operators, negation, disjunction). *)

val node_label : Htl.Ast.t -> string
(** The span name {!eval} records for this node — shared with {!Explain}. *)
