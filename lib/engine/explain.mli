(** EXPLAIN: the shape of a query's evaluation, as a tree.

    A report shows the chosen backend and formula class, the evaluation
    tree the backend would walk (one node per subformula, labelled with
    the span names of DESIGN.md §2.14), and — when built from an
    analyzed run ({!Query.explain} with [~analyze:true]) — per-node wall
    times and recorded attributes (row counts, the And-reorder
    ["join_order"], SQL statement counts).  A node the subformula cache
    served shows as [Cached]: no span was recorded because nothing ran.

    With the SQL backend and [~analyze:true], the report also carries
    the executed script re-parsed into {!Relational.Plan} operator
    trees, one per statement.

    Use {!Query.explain} — the builders here are its plumbing, exposed
    for tests. *)

type timing =
  | Untimed  (** static explain: nothing ran *)
  | Cached  (** analyzed run, no span: the cache served this node *)
  | Timed of float  (** seconds *)

type node = {
  label : string;  (** the evaluator's span name, or a plan operator *)
  attrs : (string * string) list;
  timing : timing;
  children : node list;
}

type report = {
  backend : string;
      (** the concrete backend that runs: ["direct"] or ["sql"] (an
          [Auto_backend] request resolves before the report is built) *)
  backend_reason : string option;
      (** why the planner picked [backend] — present only for
          [Auto_backend] requests: the estimated cost of each backend,
          or their observed latency EWMAs once both have run *)
  cls : Htl.Classify.cls;
  formula : string;  (** pretty-printed *)
  analyzed : bool;
  tree : node;
  sql_script : node list;
      (** one node per executed SQL statement (analyzed SQL runs only);
          [Create_table_as]/[Select] statements carry their
          {!Relational.Plan} tree as children *)
  total_s : float option;  (** whole-query wall time (analyzed only) *)
  resources : Obs.Resource.delta option;
      (** GC allocation/collection delta of the analyzed run (analyzed
          only) — {!Obs.Resource.measure} around the whole query *)
}

(** {1 Tree builders} *)

val direct_tree :
  Context.t -> ?take:(Htl.Ast.t -> Obs.Trace.span option) -> Htl.Ast.t -> node
(** Mirror of {!Direct.eval}'s dispatch (including And-chain flattening
    under [reorder_joins]).  [take], when given, yields each
    subformula's recorded span — use {!span_lookup}. *)

val type1_tree :
  Context.t -> ?take:(Htl.Ast.t -> Obs.Trace.span option) -> Htl.Ast.t -> node
(** Mirror of {!Type1.eval}'s dispatch. *)

val sql_tree :
  Context.t -> ?take:(Htl.Ast.t -> Obs.Trace.span option) -> Htl.Ast.t -> node
(** Mirror of the SQL translation's dispatch. *)

val span_lookup : Obs.Trace.span list -> Htl.Ast.t -> Obs.Trace.span option
(** [span_lookup spans] consumes spans by their ["formula"] attribute
    (the hash-consed subformula id) in recorded order: each call with a
    formula pops its next unconsumed span, so a subformula occurring
    twice in a tree gets its computed span once and reads as cached the
    second time. *)

val script_nodes : string list -> node list
(** Parse executed SQL statements ({!Sql_backend.last_script}) and
    compile each to its {!Relational.Plan} tree. *)

(** {1 Rendering} *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> report -> unit
val to_string : report -> string
