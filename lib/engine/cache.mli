(** Memoization of subformula similarity tables.

    An LRU cache mapping (interned formula id, level, store version,
    extent partition) to the {!Simlist.Sim_table.t} the direct algorithms
    computed for that subformula.  Interactive workloads re-issue formulas
    sharing large subtrees (query refinement, browsing); with a cache
    attached to the evaluation context, every shared subtree is computed
    once per store version.

    The key deliberately carries more than the ISSUE's minimal
    (formula, level, version) triple: two evaluations of the same
    subformula at the same level can still range over different proper-
    sequence partitions when it sits under nested level operators entered
    from different heights, and temporal operators read the partition, so
    the extent fingerprint is part of the key (see DESIGN.md, "Caching &
    invalidation").

    A cache belongs to one evaluation context configuration: everything
    else that determines a result (threshold, conjunction mode, named
    tables, picture weights) is fixed per {!Context.t} and deliberately
    not in the key.  Do not share one cache between contexts that differ
    in those settings; {!Context.of_store} and {!Context.of_tables} create
    a private cache by default.

    Mutating the store bumps {!Video_model.Store.version}, so stale
    entries can never be returned; they age out of the LRU order.

    The cache is thread-safe: one internal mutex serializes every
    operation, counters included, so a cache shared by worker domains
    during parallel evaluation ({!Parallel.Pool}, DESIGN.md §2.13) keeps
    a coherent LRU order and coherent {!stats}.  Two domains may race to
    compute the same missing entry; both then {!add} the same value,
    which is wasted work but never wrong. *)

type key

val key :
  formula:int -> level:int -> version:int -> extents:Simlist.Extent.t -> key
(** [formula] is {!Htl.Hcons.intern_id} of the subformula. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** current occupancy *)
  capacity : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 entries.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val find : t -> key -> Simlist.Sim_table.t option
(** Counts a hit (and refreshes the entry's recency) or a miss. *)

val add : t -> key -> Simlist.Sim_table.t -> unit
(** Insert at most-recent position, evicting the least recently used
    entry when full.  Replaces an existing binding for the same key. *)

val stats : t -> stats

val stats_delta : before:stats -> after:stats -> stats
(** Counter differences between two snapshots (what happened in
    between — e.g. one query's probes, for the slow-query log);
    [entries]/[capacity] are [after]'s. *)

val reset_stats : t -> unit
(** Zero the counters; entries stay. *)

val clear : t -> unit
(** Drop all entries and zero the counters. *)

val pp_stats : Format.formatter -> stats -> unit
(** e.g. [hits 12  misses 4  evictions 0  entries 4/256]. *)
