(** Memoization of subformula similarity tables.

    An LRU cache mapping (interned formula id, level, extent partition)
    to the {!Simlist.Sim_table.t} the direct algorithms computed for that
    subformula.  Interactive workloads re-issue formulas sharing large
    subtrees (query refinement, browsing); with a cache attached to the
    evaluation context, every shared subtree is computed once per store
    state.

    The key deliberately carries more than the ISSUE's minimal
    (formula, level) pair: two evaluations of the same subformula at the
    same level can still range over different proper-sequence partitions
    when it sits under nested level operators entered from different
    heights, and temporal operators read the partition, so the extent
    fingerprint is part of the key (see DESIGN.md, "Caching &
    invalidation").

    The store version is {e not} part of the key.  Each entry carries the
    version it was computed at as a stamp; a lookup at a newer version
    passes a validity predicate that replays the store's change log
    ({!Video_model.Store.changes_since}) and decides whether the changes
    in between could affect the entry (extent-scoped invalidation —
    DESIGN.md §2.19).  Valid entries survive the version bump (counted in
    {!survivals}, restamped so the replay is paid once); invalid ones are
    dropped on probe ({!stale_drops}).

    A cache belongs to one evaluation context configuration: everything
    else that determines a result (threshold, conjunction mode, named
    tables, picture weights) is fixed per {!Context.t} and deliberately
    not in the key.  Do not share one cache between contexts that differ
    in those settings; {!Context.of_store} and {!Context.of_tables} create
    a private cache by default.

    The cache is thread-safe: one internal mutex serializes every
    operation, counters included, so a cache shared by worker domains
    during parallel evaluation ({!Parallel.Pool}, DESIGN.md §2.13) keeps
    a coherent LRU order and coherent {!stats}.  Two domains may race to
    compute the same missing entry; both then {!add} the same value,
    which is wasted work but never wrong. *)

type key

val key : formula:int -> level:int -> extents:Simlist.Extent.t -> key
(** [formula] is {!Htl.Hcons.intern_id} of the subformula. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** current occupancy *)
  capacity : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 entries.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

type outcome =
  | Hit of Simlist.Sim_table.t  (** entry stamped with the current version *)
  | Survived of Simlist.Sim_table.t
      (** entry from an older version that the validity predicate let
          through; restamped to the current version *)
  | Stale  (** entry found but invalidated by the changes; dropped *)
  | Absent

val find :
  t -> key -> version:int -> valid:(stamp:int -> bool) -> outcome
(** Look the key up at the given store [version].  An entry stamped with
    an older version is kept iff [valid ~stamp] says the store changes
    between [stamp] and [version] cannot affect it.  [valid] runs under
    the cache mutex — it must not call back into this cache.  Counts a
    hit ([Hit]/[Survived], refreshing recency) or a miss
    ([Stale]/[Absent]). *)

val add : t -> key -> version:int -> Simlist.Sim_table.t -> unit
(** Insert at most-recent position with the given version stamp,
    evicting the least recently used entry when full.  Replaces (and
    restamps) an existing binding for the same key. *)

val stats : t -> stats

val survivals : t -> int
(** Entries that outlived a version bump via the validity predicate. *)

val stale_drops : t -> int
(** Entries dropped on probe because a change invalidated them. *)

val stats_delta : before:stats -> after:stats -> stats
(** Counter differences between two snapshots (what happened in
    between — e.g. one query's probes, for the slow-query log);
    [entries]/[capacity] are [after]'s. *)

val reset_stats : t -> unit
(** Zero the counters; entries stay. *)

val clear : t -> unit
(** Drop all entries and zero the counters. *)

val pp_stats : Format.formatter -> stats -> unit
(** e.g. [hits 12  misses 4  evictions 0  entries 4/256]. *)
