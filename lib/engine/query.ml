exception Error of string

type backend = Direct_backend | Sql_backend_choice

let classify = Htl.Classify.classify

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let run ?(backend = Direct_backend) ctx f =
  match Htl.Classify.check f with
  | Error reason -> fail "unsupported formula: %s" reason
  | Ok cls -> (
      match backend with
      | Sql_backend_choice -> (
          match cls with
          | Htl.Classify.Type1 -> (
              try Sql_backend.run (Sql_backend.create ctx) ctx f with
              | Sql_backend.Unsupported msg | Atomic.Unsupported msg ->
                  fail "%s" msg)
          | Htl.Classify.Type2 | Htl.Classify.Conjunctive
          | Htl.Classify.Extended_conjunctive -> (
              try Sql_backend.run_conjunctive (Sql_backend.create ctx) ctx f
              with
              | Sql_backend.Unsupported msg
              | Atomic.Unsupported msg
              | Direct.Unsupported msg ->
                  fail "%s" msg)
          | Htl.Classify.General -> assert false)
      | Direct_backend -> (
          match cls with
          | Htl.Classify.Type1 -> (
              try Type1.eval ctx f with
              | Type1.Unsupported msg | Atomic.Unsupported msg ->
                  fail "%s" msg)
          | Htl.Classify.Type2 | Htl.Classify.Conjunctive
          | Htl.Classify.Extended_conjunctive -> (
              try Direct.eval_closed ctx f with
              | Direct.Unsupported msg
              | Atomic.Unsupported msg
              | Reference.Unsupported msg ->
                  fail "%s" msg)
          | Htl.Classify.General -> assert false))

(* Batched evaluation: the queries of a batch are independent, so they
   fan out across the pool (explicit [?pool] wins over the context's);
   per-query failures become [Error] results instead of aborting the
   batch.  The same pool also serves each query's internal parallelism —
   nested submission is safe (see Parallel.Pool, caller-helps design). *)
let run_batch ?backend ?pool (ctx : Context.t) fs =
  let pool =
    match pool with Some _ as p -> p | None -> ctx.pool
  in
  let ctx =
    match pool with
    | Some p -> Context.with_pool ~par_cutoff:ctx.par_cutoff ctx p
    | None -> ctx
  in
  let one f =
    match run ?backend ctx f with
    | list -> Result.Ok list
    | exception Error msg -> Result.Error msg
  in
  match pool with
  | Some p when Parallel.Pool.domain_count p > 1 && List.length fs > 1 ->
      Parallel.Pool.parallel_map p one fs
  | Some _ | None -> List.map one fs

let run_with_fallback (ctx : Context.t) f =
  match Htl.Classify.check f with
  | Ok _ -> run ctx f
  | Error _ -> (
      if not (Htl.Ast.is_closed f) then
        fail "cannot evaluate an open formula: %s" (Htl.Pretty.to_string f);
      match ctx.store with
      | None -> fail "the exact-semantics fallback requires a video store"
      | Some store -> (
          match Htl.Exact.eval_over_level store ~level:ctx.level f with
          | bools ->
              Simlist.Sim_list.of_dense ~max:1.
                (Array.map (fun b -> if b then 1. else 0.) bools)
          | exception Invalid_argument msg -> fail "%s" msg))

let run_string ?backend ctx src =
  match Htl.Parser.formula_of_string_opt src with
  | Error msg -> fail "syntax error: %s" msg
  | Ok f -> run ?backend ctx f

let top_k ?backend ctx ~k src = Topk.top_k (run_string ?backend ctx src) ~k

let cache_stats = Context.cache_stats
let reset_cache_stats (ctx : Context.t) =
  Option.iter Cache.reset_stats ctx.cache
