exception Error of string

type backend = Direct_backend | Sql_backend_choice | Auto_backend

let classify = Htl.Classify.classify

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* [Classify.check] rejects general formulas with a reason, so the class
   arms below only ever see the four supported classes — but a [General]
   arm must still answer in kind, not [assert false]: [classify] and
   [check] are separate functions, and a drift between them (or a caller
   reaching an arm through a future refactor) should surface as a
   catchable [Error] naming the formula, not a crash. *)
let general_error f =
  fail
    "general formulas have no similarity-retrieval algorithm (§3 covers \
     up to extended conjunctive): %s"
    (Htl.Pretty.to_string f)

let backend_name = function
  | Direct_backend -> "direct"
  | Sql_backend_choice -> "sql"
  | Auto_backend -> "auto"

(* Plan the query just before dispatch: once per query (the plan rides
   the derived context), skipped entirely when planning is off or the
   caller attached a plan already (the sharded coordinator does not —
   each shard plans against its own registry and extents). *)
let ensure_plan (ctx : Context.t) f =
  if (not ctx.planner) || Option.is_some ctx.plan then ctx
  else
    let plan =
      Planner.build ?stats:ctx.stats ?index:(Context.index ctx)
        ~tables:ctx.tables ~taxonomy:ctx.picture_config.taxonomy
        ~prune:ctx.picture_config.prune
        ~segments:(Context.segment_count ctx)
        ~level:ctx.level f
    in
    Context.with_plan ctx plan

(* [Auto_backend] resolution: the plan's backend choice (observed
   latency EWMAs when both backends have run this fingerprint, static
   cost estimates otherwise); direct when planning is off. *)
let resolve_backend ~backend (ctx : Context.t) f =
  match backend with
  | (Direct_backend | Sql_backend_choice) as b -> b
  | Auto_backend -> (
      match ctx.plan with
      | None -> Direct_backend
      | Some plan -> (
          let choice =
            Planner.choose_backend ?stats:ctx.stats
              ~fingerprint:(Htl.Hcons.intern_id f) plan
          in
          match choice.Planner.picked with
          | `Direct -> Direct_backend
          | `Sql -> Sql_backend_choice))

let dispatch ~backend ctx cls f =
  let ctx = ensure_plan ctx f in
  match resolve_backend ~backend ctx f with
  | Auto_backend -> fail "internal error: unresolved auto backend"
  | Sql_backend_choice -> (
      match cls with
      | Htl.Classify.Type1 -> (
          try Sql_backend.run (Sql_backend.create ctx) ctx f with
          | Sql_backend.Unsupported msg | Atomic.Unsupported msg ->
              fail "%s" msg)
      | Htl.Classify.Type2 | Htl.Classify.Conjunctive
      | Htl.Classify.Extended_conjunctive -> (
          try Sql_backend.run_conjunctive (Sql_backend.create ctx) ctx f with
          | Sql_backend.Unsupported msg
          | Atomic.Unsupported msg
          | Direct.Unsupported msg ->
              fail "%s" msg)
      | Htl.Classify.General -> general_error f)
  | Direct_backend -> (
      match cls with
      | Htl.Classify.Type1 -> (
          try Type1.eval ctx f with
          | Type1.Unsupported msg | Atomic.Unsupported msg -> fail "%s" msg)
      | Htl.Classify.Type2 | Htl.Classify.Conjunctive
      | Htl.Classify.Extended_conjunctive -> (
          try Direct.eval_closed ctx f with
          | Direct.Unsupported msg
          | Atomic.Unsupported msg
          | Reference.Unsupported msg ->
              fail "%s" msg)
      | Htl.Classify.General -> general_error f)

(* Per-query slow-log bookkeeping reads the cache and scan counters
   before and after and keeps only the differences, so a record describes
   this query, not the context's lifetime. *)
let scan_prefix = "picture.segments_scanned"

let scan_counters m =
  List.filter_map
    (function
      | name, Obs.Metrics.Counter n
        when String.starts_with ~prefix:scan_prefix name ->
          Some (name, n)
      | _ -> None)
    (Obs.Metrics.snapshot m)

let scan_delta ~before after =
  List.filter_map
    (fun (name, n) ->
      let prior =
        match List.assoc_opt name before with Some p -> p | None -> 0
      in
      if n > prior then Some (name, n - prior) else None)
    after

(* The observed path: everything [run] does beyond classify + dispatch
   when the context carries a tracer, metrics or a slow-query log.  GC
   deltas ride the ["query.run"] span as attributes (when tracing), feed
   the ["query.allocated_words"] histogram (when metering) and land in
   the slow-log record. *)
let run_observed ~backend (ctx : Context.t) f =
  let t_start = Obs.Clock.now () in
  (* plan and resolve [Auto_backend] up front so the stats, slow-log
     and span all record the concrete backend that actually ran *)
  let ctx = ensure_plan ctx f in
  let backend = resolve_backend ~backend ctx f in
  Option.iter (fun m -> Obs.Metrics.incr m "query.count") ctx.metrics;
  let cache_before =
    match ctx.querylog with
    | Some _ -> Option.map Cache.stats ctx.cache
    | None -> None
  in
  let scans_before =
    match (ctx.querylog, ctx.metrics) with
    | Some _, Some m -> Some (scan_counters m)
    | _ -> None
  in
  let gc_before = Obs.Resource.sample () in
  let gc = ref Obs.Resource.zero in
  let cls = ref None in
  let work () =
    match Htl.Classify.check f with
    | Error reason -> fail "unsupported formula: %s" reason
    | Ok c ->
        cls := Some c;
        Context.with_span ctx "query.run"
          ~attrs:(fun () ->
            [
              ("backend", backend_name backend);
              ("class", Htl.Classify.cls_to_string c);
              ("formula", string_of_int (Htl.Hcons.intern_id f));
            ])
          (fun () ->
            let account () =
              gc :=
                Obs.Resource.delta ~before:gc_before
                  ~after:(Obs.Resource.sample ());
              List.iter
                (fun (k, v) -> Context.add_attr ctx k (fun () -> v))
                (Obs.Resource.to_attrs !gc)
            in
            match dispatch ~backend ctx c f with
            | r ->
                account ();
                r
            | exception e ->
                account ();
                raise e)
  in
  let finish ~error =
    let latency = Obs.Clock.now () -. t_start in
    Option.iter
      (fun m ->
        if Option.is_some error then Obs.Metrics.incr m "query.errors";
        Obs.Metrics.observe m "query.latency_s" latency;
        Obs.Metrics.observe m "query.allocated_words"
          (Obs.Resource.allocated_words !gc))
      ctx.metrics;
    Option.iter
      (fun st ->
        Obs.Stats.record_query st
          ~fingerprint:(Htl.Hcons.intern_id f)
          ~formula:(fun () -> Htl.Pretty.to_string f)
          ~backend:(backend_name backend) ~latency_s:latency
          ~error:(Option.is_some error))
      ctx.stats;
    match ctx.querylog with
    | Some ql when Obs.Querylog.should_log ql ~latency_s:latency ->
        let hits, misses =
          match (cache_before, Option.map Cache.stats ctx.cache) with
          | Some before, Some after ->
              let d = Cache.stats_delta ~before ~after in
              (d.Cache.hits, d.Cache.misses)
          | _ -> (0, 0)
        in
        let scans =
          match (scans_before, ctx.metrics) with
          | Some before, Some m -> scan_delta ~before (scan_counters m)
          | _ -> []
        in
        Obs.Querylog.record ql
          {
            Obs.Querylog.time_s = t_start;
            formula_id = Htl.Hcons.intern_id f;
            formula = Htl.Pretty.to_string f;
            backend = backend_name backend;
            cls =
              (match !cls with
              | Some c -> Htl.Classify.cls_to_string c
              | None -> "unsupported");
            latency_s = latency;
            cache_hits = hits;
            cache_misses = misses;
            segments_scanned = scans;
            resources = !gc;
            shards = [];
            trace_id = ctx.trace_id;
            error;
          }
    | Some _ | None -> ()
  in
  match work () with
  | list ->
      finish ~error:None;
      list
  | exception e ->
      finish
        ~error:
          (Some (match e with Error msg -> msg | e -> Printexc.to_string e));
      raise e

let run ?(backend = Direct_backend) (ctx : Context.t) f =
  match (ctx.tracer, ctx.metrics, ctx.querylog, ctx.stats) with
  | None, None, None, None -> (
      (* the unobserved fast path: classify + dispatch, nothing else *)
      match Htl.Classify.check f with
      | Error reason -> fail "unsupported formula: %s" reason
      | Ok cls -> dispatch ~backend ctx cls f)
  | _ -> run_observed ~backend ctx f

(* EXPLAIN (DESIGN.md §2.14).  The static form walks the same dispatch
   [run] would take and renders the evaluation tree; [~analyze:true]
   actually runs the query under a private tracer and folds the spans'
   timings and attributes back onto the tree.  The context's own tracer
   is replaced, not nested, so an explain never pollutes a caller's
   trace; its cache and metrics are used as-is — a warm cache legitimately
   shows nodes as cached. *)
let explain ?(backend = Direct_backend) ?(analyze = false) ctx f =
  match Htl.Classify.check f with
  | Error reason -> fail "unsupported formula: %s" reason
  | Ok cls ->
      let ctx = ensure_plan ctx f in
      let requested = backend in
      let backend = resolve_backend ~backend ctx f in
      (* with [Auto_backend] the report says which backend the planner
         picked and on what grounds (estimated cost of each, or the
         observed latency EWMAs once both have run) *)
      let backend_reason =
        match (requested, ctx.Context.plan) with
        | Auto_backend, Some plan ->
            let c =
              Planner.choose_backend ?stats:ctx.Context.stats
                ~fingerprint:(Htl.Hcons.intern_id f) plan
            in
            Some
              (Printf.sprintf "auto chose %s: %s" (backend_name backend)
                 c.Planner.reason)
        | Auto_backend, None -> Some "auto chose direct: planning disabled"
        | (Direct_backend | Sql_backend_choice), _ -> None
      in
      (* the table-algorithm entry points (Direct.eval_closed and
         Sql_backend.run_conjunctive) strip the leading existential
         prefix before evaluating — the tree mirrors that, carrying the
         stripped binders as a root attribute so they stay visible *)
      let rec strip_prefix vars = function
        | Htl.Ast.Exists (x, g) -> strip_prefix (x :: vars) g
        | g -> (List.rev vars, g)
      in
      let with_prefix vars (tree : Explain.node) =
        match vars with
        | [] -> tree
        | vars ->
            {
              tree with
              Explain.attrs =
                ("exists_prefix", String.concat ", " vars) :: tree.Explain.attrs;
            }
      in
      let tree_of ?take ctx =
        match (backend, cls) with
        | (Direct_backend | Auto_backend), Htl.Classify.Type1 ->
            Explain.type1_tree ctx ?take f
        | Sql_backend_choice, Htl.Classify.Type1 -> Explain.sql_tree ctx ?take f
        | (Direct_backend | Auto_backend), _ ->
            let vars, body = strip_prefix [] f in
            with_prefix vars (Explain.direct_tree ctx ?take body)
        | Sql_backend_choice, _ ->
            let vars, body = strip_prefix [] f in
            with_prefix vars (Explain.sql_tree ctx ?take body)
      in
      let tree, sql_script, total_s, resources =
        if not analyze then (tree_of (Context.without_tracer ctx), [], None, None)
        else begin
          let tracer = Obs.Trace.create () in
          let ctx = Context.with_tracer ctx tracer in
          let t0 = Obs.Clock.now () in
          let script, gc =
            Obs.Resource.measure (fun () ->
                match backend with
                | Direct_backend | Auto_backend ->
                    ignore (dispatch ~backend ctx cls f);
                    []
                | Sql_backend_choice ->
                    let t = Sql_backend.create ctx in
                    (try
                       match cls with
                       | Htl.Classify.Type1 -> ignore (Sql_backend.run t ctx f)
                       | Htl.Classify.Type2 | Htl.Classify.Conjunctive
                       | Htl.Classify.Extended_conjunctive ->
                           ignore (Sql_backend.run_conjunctive t ctx f)
                       | Htl.Classify.General -> general_error f
                     with
                    | Sql_backend.Unsupported msg
                    | Atomic.Unsupported msg
                    | Direct.Unsupported msg ->
                        fail "%s" msg);
                    Explain.script_nodes (Sql_backend.last_script t))
          in
          let total = Obs.Clock.now () -. t0 in
          let take = Explain.span_lookup (Obs.Trace.spans tracer) in
          (tree_of ~take ctx, script, Some total, Some gc)
        end
      in
      {
        Explain.backend = backend_name backend;
        backend_reason;
        cls;
        formula = Htl.Pretty.to_string f;
        analyzed = analyze;
        tree;
        sql_script;
        total_s;
        resources;
      }

let explain_string ?backend ?analyze ctx src =
  match Htl.Parser.formula_of_string_opt src with
  | Error msg -> fail "syntax error: %s" msg
  | Ok f -> explain ?backend ?analyze ctx f

(* Batched evaluation: the queries of a batch are independent, so they
   fan out across the pool (explicit [?pool] wins over the context's);
   per-query failures become [Error] results instead of aborting the
   batch.  The same pool also serves each query's internal parallelism —
   nested submission is safe (see Parallel.Pool, caller-helps design). *)
let run_batch ?backend ?pool (ctx : Context.t) fs =
  let pool =
    match pool with Some _ as p -> p | None -> ctx.pool
  in
  let ctx =
    match pool with
    | Some p -> Context.with_pool ~par_cutoff:ctx.par_cutoff ctx p
    | None -> ctx
  in
  let one f =
    match run ?backend ctx f with
    | list -> Result.Ok list
    | exception Error msg -> Result.Error msg
  in
  match pool with
  | Some p when Parallel.Pool.domain_count p > 1 && List.length fs > 1 ->
      Parallel.Pool.parallel_map p one fs
  | Some _ | None -> List.map one fs

let run_with_fallback (ctx : Context.t) f =
  match Htl.Classify.check f with
  | Ok _ -> run ctx f
  | Error _ -> (
      if not (Htl.Ast.is_closed f) then
        fail "cannot evaluate an open formula: %s" (Htl.Pretty.to_string f);
      match ctx.store with
      | None -> fail "the exact-semantics fallback requires a video store"
      | Some store -> (
          match Htl.Exact.eval_over_level store ~level:ctx.level f with
          | bools ->
              Simlist.Sim_list.of_dense ~max:1.
                (Array.map (fun b -> if b then 1. else 0.) bools)
          | exception Invalid_argument msg -> fail "%s" msg))

let run_string ?backend ctx src =
  match Htl.Parser.formula_of_string_opt src with
  | Error msg -> fail "syntax error: %s" msg
  | Ok f -> run ?backend ctx f

let top_k ?backend ctx ~k src = Topk.top_k (run_string ?backend ctx src) ~k

let cache_stats = Context.cache_stats
let reset_cache_stats (ctx : Context.t) =
  Option.iter Cache.reset_stats ctx.cache
