open Htl.Ast
module Sim = Simlist.Sim
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table
module Interval = Simlist.Interval
module Store = Video_model.Store

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type env = {
  objs : (string * int) list;
  attrs : (string * Metadata.Value.t option) list;
}

let empty_env = { objs = []; attrs = [] }

(* an object id no object in any store uses: binding a quantified variable
   to it scores like "any absent object" *)
let absent_object = -1

let rec max_similarity (ctx : Context.t) f =
  if is_non_temporal f then Atomic.max_of ctx f
  else
    match f with
    | And (g, h) -> max_similarity ctx g +. max_similarity ctx h
    | Until (_, h) -> max_similarity ctx h
    | Next g | Eventually g | Exists (_, g) | At_level (_, g) ->
        max_similarity ctx g
    | Freeze { body; _ } -> max_similarity ctx body
    | Or _ | Not _ -> unsupported "no similarity semantics for Or/Not"
    | Atom _ -> assert false

let domain (ctx : Context.t) =
  let from_store =
    match ctx.store with
    | Some store -> Store.all_object_ids store
    | None -> []
  in
  let from_tables =
    List.concat_map
      (fun (_, table) ->
        List.concat_map
          (fun (r : Sim_table.row) -> List.map snd r.objs)
          (Sim_table.rows table))
      ctx.tables
  in
  absent_object :: List.sort_uniq compare (from_store @ from_tables)

let combine_conj (ctx : Context.t) ~mg ~mh ag ah =
  match ctx.conj_mode with
  | Simlist.Sim_list.Weighted_sum -> ag +. ah
  | Simlist.Sim_list.Min_fraction ->
      let frac m a = if m = 0. then 1. else a /. m in
      Float.min (frac mg ag) (frac mh ah) *. (mg +. mh)
  | Simlist.Sim_list.Product_fraction ->
      let frac m a = if m = 0. then 1. else a /. m in
      frac mg ag *. frac mh ah *. (mg +. mh)

(* actual similarity of an atomic (non-temporal) unit under a full
   evaluation *)
let rec atomic_actual (ctx : Context.t) env ~pos f =
  match Atomic.named_table ctx f with
  | Some table ->
      (* best matching row of the precomputed table *)
      List.fold_left
        (fun acc (r : Sim_table.row) ->
          let matches =
            List.for_all
              (fun (v, o) ->
                match List.assoc_opt v env.objs with
                | Some o' -> o = o'
                | None -> false)
              r.objs
          in
          if matches then Float.max acc (Sim_list.value_at r.list pos) else acc)
        0. (Sim_table.rows table)
  | None -> (
      match ctx.store with
      | Some store ->
          Picture.Retrieval.score_at ~config:ctx.picture_config
            ~attrs:env.attrs store ~level:ctx.level ~id:pos ~env:env.objs f
      | None -> (
          match f with
          | And (g, h) ->
              combine_conj ctx ~mg:(Atomic.max_of ctx g)
                ~mh:(Atomic.max_of ctx h)
                (atomic_actual ctx env ~pos g)
                (atomic_actual ctx env ~pos h)
          | Exists (x, g) ->
              List.fold_left
                (fun acc oid ->
                  Float.max acc
                    (atomic_actual ctx
                       { env with objs = (x, oid) :: env.objs }
                       ~pos g))
                0. (domain ctx)
          | _ ->
              unsupported "cannot score %s without a store"
                (Htl.Pretty.to_string f)))

let rec actual (ctx : Context.t) env ~span ~pos f =
  if is_non_temporal f then atomic_actual ctx env ~pos f
  else
    match f with
    | And (g, h) ->
        combine_conj ctx ~mg:(max_similarity ctx g) ~mh:(max_similarity ctx h)
          (actual ctx env ~span ~pos g)
          (actual ctx env ~span ~pos h)
    | Next g ->
        if pos + 1 <= Interval.hi span then actual ctx env ~span ~pos:(pos + 1) g
        else 0.
    | Until (g, h) ->
        let mg = max_similarity ctx g in
        let frac u =
          if mg = 0. then 0. else actual ctx env ~span ~pos:u g /. mg
        in
        let rec go u best =
          let best = Float.max best (actual ctx env ~span ~pos:u h) in
          if u < Interval.hi span && frac u >= ctx.threshold then
            go (u + 1) best
          else best
        in
        go pos 0.
    | Eventually g ->
        let rec go u best =
          let best = Float.max best (actual ctx env ~span ~pos:u g) in
          if u < Interval.hi span then go (u + 1) best else best
        in
        go pos 0.
    | Exists (x, g) ->
        List.fold_left
          (fun acc oid ->
            Float.max acc
              (actual ctx { env with objs = (x, oid) :: env.objs } ~span ~pos g))
          0. (domain ctx)
    | Freeze { var; attr; obj; body } ->
        let store =
          match ctx.store with
          | Some s -> s
          | None -> unsupported "freeze requires a store"
        in
        let meta = Store.meta store ~level:ctx.level ~id:pos in
        let value =
          match obj with
          | Some x -> (
              match List.assoc_opt x env.objs with
              | Some oid -> Metadata.Seg_meta.object_attr meta oid attr
              | None -> None)
          | None -> Metadata.Seg_meta.attr meta attr
        in
        (* an undefined attribute function fails the freeze: the 3.3
           value-table join has no row to offer *)
        (match value with
        | None -> 0.
        | Some _ ->
            actual ctx
              { env with attrs = (var, value) :: env.attrs }
              ~span ~pos body)
    | At_level (sel, g) -> (
        let store =
          match ctx.store with
          | Some s -> s
          | None -> unsupported "level operators require a store"
        in
        let target =
          match sel with
          | Next_level -> ctx.level + 1
          | Level_index i -> i
          | Level_name name -> (
              match Store.level_index store name with
              | Some i -> i
              | None -> unsupported "unknown level %S" name)
        in
        if target <= ctx.level then
          unsupported "level operator must descend the hierarchy";
        match Store.descendants_span store ~level:ctx.level ~id:pos ~target with
        | None -> 0.
        | Some span' ->
            let ctx' =
              Context.with_level ctx ~level:target
                ~extents:(Simlist.Extent.single 1)
              (* extents unused below; similarity recursion carries span *)
            in
            actual ctx' env ~span:span' ~pos:(Interval.lo span') g)
    | Or _ | Not _ -> unsupported "no similarity semantics for Or/Not"
    | Atom _ -> assert false

let similarity_at ctx ~span ~pos f =
  Sim.make
    ~actual:(actual ctx empty_env ~span ~pos f)
    ~max:(max_similarity ctx f)

let similarity_over_level (ctx : Context.t) f =
  let n = Context.segment_count ctx in
  Array.init n (fun i ->
      let id = i + 1 in
      let span = Simlist.Extent.containing (Context.extents ctx) id in
      similarity_at ctx ~span ~pos:id f)
