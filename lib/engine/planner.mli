(** Cost-based query planning (DESIGN.md §2.21).

    One pre-execution walk of the formula produces a physical plan: per
    hash-consed subformula an estimated support cardinality, selectivity
    and abstract cost, and from those three decisions —

    {ul
    {- {e conjunct order} for reordered [And] chains: sparsest estimate
       first, replacing the runtime table-arity heuristic in
       {!Direct};}
    {- {e index-vs-scan} per non-temporal unit: estimated selectivity
       above the crossover threshold (calibrated against
       [BENCH_index.json]'s selectivity sweep) turns index pruning off
       for that unit;}
    {- {e direct-vs-SQL backend} when the caller asks for
       [Auto_backend].}}

    Estimates are drawn from {!Picture.Pruning.estimate} (posting-list
    lengths — a sound upper bound, exact for single-family atoms),
    precomputed named tables (exact coverage), and {!Obs.Stats}
    observations.  Blending is bounded: an observed selectivity EWMA can
    only {e lower} an estimate below the static bound, never raise it,
    so a cold mis-estimate cannot stick — the static bound is recomputed
    from the live index on every plan.

    No plan decision can change results: conjunction combiners are
    associative and commutative (property-tested), index pruning is
    sound either way (differential-tested), and the two backends are
    result-equal (differential-tested).  See the planned=heuristic
    differential in [test/test_planner.ml]. *)

type access =
  | Table  (** a precomputed named table *)
  | Indexed of string  (** index-pruned candidates; the pruning plan *)
  | Scan of
      [ `No_index_plan  (** the pruning plan covers the whole level *)
      | `Pruning_disabled  (** the caller turned pruning off *)
      | `High_selectivity of float
        (** estimated selectivity above the crossover threshold *) ]

type node_est = {
  est_rows : int;  (** estimated support cardinality (segments) *)
  est_sel : float;  (** est_rows over the level's segment count *)
  est_cost : float;  (** abstract work units (1 = scoring a segment) *)
  access : access option;  (** [Some] on non-temporal leaf units *)
  order : int list option;
      (** planned conjunct order ([And] chains): flatten positions,
          sparsest first *)
}

type t

val build :
  ?stats:Obs.Stats.t ->
  ?index:Picture.Index.t ->
  ?scan_threshold:float ->
  tables:(string * Simlist.Sim_table.t) list ->
  taxonomy:Picture.Taxonomy.t ->
  prune:bool ->
  segments:int ->
  level:int ->
  Htl.Ast.t ->
  t
(** Plan a formula against one level: [segments] is the level's segment
    count, [index] its finalized inverted index (omit for store-less
    contexts), [prune] whether the retrieval config has pruning on.
    [scan_threshold] defaults to the BENCH_index crossover (0.75).
    Cheap — posting-length arithmetic only, nothing materializes. *)

val find : t -> Htl.Ast.t -> node_est option
(** The subformula's estimate, by hash-consed identity. *)

val join_order : t -> Htl.Ast.t -> int list option
(** Planned conjunct order for an [And] chain rooted at the node. *)

val access : t -> Htl.Ast.t -> access option
(** Planned access path for a non-temporal leaf unit. *)

val scan_override : t -> Htl.Ast.t -> bool
(** [true] iff the plan demotes this unit from index pruning to a full
    scan on selectivity grounds — the only access decision that changes
    behaviour relative to the static pruning rule. *)

val access_to_string : access -> string
(** EXPLAIN rendering: ["table"], ["index: <plan>"], ["scan"] or
    ["scan (planned, est sel 0.93)"]. *)

val node_attrs : t -> Htl.Ast.t -> (string * string) list
(** EXPLAIN attributes for a node: [est_rows], [est_cost], and
    [est_join_order] on planned [And] chains.  Empty when the node is
    unknown to the plan. *)

val segments : t -> int
val scan_threshold : t -> float

val direct_cost : t -> float
(** Estimated cost of the whole formula on the direct backend. *)

val sql_cost : t -> float
(** Estimated cost on the SQL backend (same atomic tables, plus
    relational materialization and per-segment temporal queries). *)

(** {1 Backend choice} *)

type backend_choice = {
  picked : [ `Direct | `Sql ];
  est_direct : float;
  est_sql : float;
  observed_direct_s : float option;  (** latency EWMA, if ever run *)
  observed_sql_s : float option;
  reason : string;  (** human-readable: what decided and with what numbers *)
}

val choose_backend : ?stats:Obs.Stats.t -> fingerprint:int -> t -> backend_choice
(** Resolve [Auto_backend]: when both backends carry an observed
    latency EWMA for this fingerprint, the faster observation wins;
    otherwise the lower static cost estimate does. *)
