(** Ranking: the paper presents the top k video segments with the highest
    similarity values (§1), and reports ranked interval tables like
    Table 4. *)

val ranked_intervals :
  Simlist.Sim_list.t -> (Simlist.Interval.t * float) list
(** All entries sorted by decreasing actual similarity, ties by interval
    start — the layout of the paper's Table 4. *)

val top_k : Simlist.Sim_list.t -> k:int -> (int * Simlist.Sim.t) list
(** The k segment ids with the highest similarity (ties broken by id).
    Interval entries are expanded lazily — cost is O(entries log entries
    + k), never O(total segments) — so asking for the top 10 of a
    whole-movie list is cheap.  [k = 0] yields [[]]; a [k] beyond the
    population yields every positive-similarity segment.
    @raise Invalid_argument when [k] is negative. *)

val pp_table :
  ?header:string * string * string ->
  Format.formatter ->
  Simlist.Sim_list.t ->
  unit
(** Print a ranked interval table in the paper's three-column layout. *)
