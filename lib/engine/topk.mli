(** Ranking: the paper presents the top k video segments with the highest
    similarity values (§1), and reports ranked interval tables like
    Table 4. *)

val ranked_intervals :
  Simlist.Sim_list.t -> (Simlist.Interval.t * float) list
(** All entries sorted by decreasing actual similarity, ties by interval
    start — the layout of the paper's Table 4. *)

val top_k : Simlist.Sim_list.t -> k:int -> (int * Simlist.Sim.t) list
(** The k segment ids with the highest similarity (ties broken by id).
    Interval entries are expanded lazily — cost is O(entries log entries
    + k), never O(total segments) — so asking for the top 10 of a
    whole-movie list is cheap.  [k = 0] yields [[]]; a [k] beyond the
    population yields every positive-similarity segment.
    @raise Invalid_argument when [k] is negative. *)

val merged_top_k :
  (Simlist.Sim_list.t * int) list -> k:int -> (int * Simlist.Sim.t) list
(** [merged_top_k [(l0, off0); (l1, off1); ...] ~k]: the k best segments
    of the union of the lists, where list [i]'s ids are shifted by
    [offi] into a global numbering — the coordinator step of
    scatter–gather evaluation over sharded stores.  The shifted entries
    must be pairwise disjoint across lists (shards partition the id
    space) and every list must carry the same maximum.  A k-way binary
    heap pops entries in (value desc, global id asc) order, so the
    result equals [top_k] of the fully merged list without ever
    materialising it: O(m log s + k) for m total entries over s lists.
    @raise Invalid_argument when [k] is negative, the list of lists is
    empty, or the maxima disagree. *)

val pp_table :
  ?header:string * string * string ->
  Format.formatter ->
  Simlist.Sim_list.t ->
  unit
(** Print a ranked interval table in the paper's three-column layout. *)
