open Htl.Ast
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let node_label f =
  if Htl.Ast.is_non_temporal f then "type1.atom"
  else
    match f with
    | And _ -> "type1.and"
    | Until _ -> "type1.until"
    | Next _ -> "type1.next"
    | Eventually _ -> "type1.eventually"
    | _ -> "type1.other"

let span_attrs (ctx : Context.t) f () =
  [
    ("formula", string_of_int (Htl.Hcons.intern_id f));
    ("level", string_of_int ctx.level);
  ]

(* Memoized like Direct.eval: a type (1) result is a similarity list,
   cached as its closed one-row table so the cache is shared with the
   table algorithms (a type (1) subformula of a type (2) query hits the
   same entry).  Computed nodes record spans the same way Direct does. *)
let rec eval (ctx : Context.t) f =
  match Context.cache_find ctx f with
  | Some table -> Sim_table.project_exists table
  | None ->
      let list =
        Context.with_span ctx (node_label f) ~attrs:(span_attrs ctx f)
          (fun () ->
            let list = eval_raw ctx f in
            Context.add_attr ctx "entries" (fun () ->
                string_of_int (Sim_list.length list));
            list)
      in
      Context.cache_add ctx f (Sim_table.of_sim_list list);
      list

(* Children of a binary node are independent — evaluate both sides
   concurrently past the cutoff (same policy as Direct.eval_pair). *)
and eval_pair (ctx : Context.t) g h =
  match Context.pool_for ctx ~n:(Context.segment_count ctx) with
  | Some pool ->
      Context.with_span ctx "pool.both" (fun () ->
          Parallel.Pool.both pool (fun () -> eval ctx g) (fun () -> eval ctx h))
  | None -> (eval ctx g, eval ctx h)

and eval_raw (ctx : Context.t) f =
  if is_non_temporal f then begin
    if free_obj_vars f <> [] || free_attr_vars f <> [] then
      unsupported "type (1) requires closed atomic units: %s"
        (Htl.Pretty.to_string f);
    Sim_table.project_exists (Atomic.resolve ctx f)
  end
  else
    match f with
    | And (g, h) ->
        let lg, lh = eval_pair ctx g h in
        Sim_list.conjunction_mode ctx.conj_mode lg lh
    | Until (g, h) ->
        let lg, lh = eval_pair ctx g h in
        Sim_list.until_merge ~threshold:ctx.threshold ~extents:(Context.extents ctx) lg lh
    | Next g -> Sim_list.next_shift ~extents:(Context.extents ctx) (eval ctx g)
    | Eventually g -> Sim_list.eventually ~extents:(Context.extents ctx) (eval ctx g)
    | Or _ | Not _ | Exists _ | Freeze _ | At_level _ ->
        unsupported "not a type (1) construct: %s" (Htl.Pretty.to_string f)
    | Atom _ -> assert false (* atoms are non-temporal *)
