(** Evaluation contexts.

    A context fixes everything the retrieval algorithms need besides the
    formula: where atomic similarity tables come from (the picture
    retrieval system over a store, and/or precomputed named tables — the
    paper's experiments feed precomputed tables), the level the query is
    asserted on, the proper-sequence extents of that level, and the
    until-threshold. *)

type extent_source
(** Either a fixed partition snapshot or one re-derived from the store
    whenever its version stamp moves (so a long-lived context sees
    appended segments without being rebuilt). *)

type t = {
  store : Video_model.Store.t option;
  picture_config : Picture.Retrieval.config;
  tables : (string * Simlist.Sim_table.t) list;
      (** precomputed atomic tables, keyed by nullary predicate name *)
  threshold : float;  (** fractional-similarity threshold for [until] *)
  conj_mode : Simlist.Sim_list.conj_mode;
      (** conjunction semantics; [Weighted_sum] is the paper's (§2.5),
          the others are the §5 "other similarity functions" extension *)
  reorder_joins : bool;
      (** when true, the table algorithms flatten [And] chains and join
          smallest tables first (an optimisation the paper leaves to the
          relational engine in its SQL variant) *)
  level : int;  (** level the formula is asserted on *)
  extent_source : extent_source;
      (** where the level's proper-sequence partition comes from; read it
          through {!extents}.  {!of_store} tracks the store (appends are
          picked up automatically); {!with_level} pins the partition the
          caller computed. *)
  cache : Cache.t option;
      (** subformula result cache; [None] disables memoization.  A cache
          is private to one configuration: derive contexts that change
          [threshold]/[conj_mode]/[tables]/[picture_config] through
          {!with_fresh_cache} (or {!without_cache}), never by sharing the
          original's cache. *)
  pool : Parallel.Pool.t option;
      (** domain pool for parallel evaluation; [None] (the default) keeps
          everything on the calling domain.  The pool is a shared
          resource — many contexts (and {!Query.run_batch}) may use one
          pool concurrently. *)
  par_cutoff : int;
      (** sequential cutoff: fan-out sites stay sequential when the work
          spans fewer than this many units (segments, parents, conjunct
          extents).  Default 4096; set 0 to force the parallel paths
          (tests do). *)
  tracer : Obs.Trace.t option;
      (** span recorder the evaluators emit into; [None] (the default)
          is the zero-cost no-op path (see {!with_span}). *)
  metrics : Obs.Metrics.t option;
      (** metrics registry (query latency, cache hit/miss, scan sizes);
          [None] disables recording. *)
  querylog : Obs.Querylog.t option;
      (** slow-query log {!Query.run} appends to when a query's latency
          reaches its threshold; [None] (the default) disables it. *)
  stats : Obs.Stats.t option;
      (** always-on statistics collector ({!Obs.Stats}): per-fingerprint
          latency EWMAs, per-atom observed selectivity and per-backend
          error rates, folded on every {!Query.run}; [None] (the
          default) disables it. *)
  trace_id : string option;
      (** the request's end-to-end trace id ({!Obs.Traceid}) when the
          query runs under the service — stamped into query-log records
          so they join the request's span tree.  [None] outside a
          request. *)
  registry : Picture.Index.Registry.t;
      (** per-store index registry: finalized {!Picture.Index} per level,
          stamped with the store version (the stamp {!Cache} uses), so
          repeated queries and batches never rebuild.  Created by
          {!of_store}/{!of_tables} and shared by every derived context
          ([with_level], [with_fresh_cache], record updates, ...). *)
  planner : bool;
      (** whether {!Query} builds a cost-based {!Planner} plan before
          dispatch (default true).  {!without_planner} reverts every
          planning decision to the pre-planner heuristics: runtime
          arity-ordered joins, the static pruning rule, and
          [Auto_backend] resolving to the direct backend. *)
  plan : Planner.t option;
      (** the current query's physical plan, attached by {!Query} just
          before dispatch ([None] otherwise).  Scoped to one formula at
          the context's level: {!with_level} clears it. *)
}

val of_store :
  ?config:Picture.Retrieval.config ->
  ?threshold:float ->
  ?conj_mode:Simlist.Sim_list.conj_mode ->
  ?reorder_joins:bool ->
  ?tables:(string * Simlist.Sim_table.t) list ->
  ?level:int ->
  ?cache:Cache.t ->
  ?pool:Parallel.Pool.t ->
  ?par_cutoff:int ->
  ?tracer:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?querylog:Obs.Querylog.t ->
  ?stats:Obs.Stats.t ->
  ?planner:bool ->
  Video_model.Store.t ->
  t
(** [level] defaults to the leaf level; extents are the per-video spans.
    [cache] defaults to a fresh private {!Cache.t} (capacity 256);
    [pool] to none (sequential evaluation); [planner] to true
    (cost-based planning on). *)

val of_tables :
  ?threshold:float ->
  ?conj_mode:Simlist.Sim_list.conj_mode ->
  ?reorder_joins:bool ->
  n:int ->
  ?extents:Simlist.Extent.t ->
  ?cache:Cache.t ->
  ?pool:Parallel.Pool.t ->
  ?par_cutoff:int ->
  ?tracer:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?querylog:Obs.Querylog.t ->
  ?stats:Obs.Stats.t ->
  ?planner:bool ->
  (string * Simlist.Sim_table.t) list ->
  t
(** Store-less context over segment ids [1..n] — the §4 experimental
    setting where atomic similarity tables are the input.  [extents]
    defaults to a single sequence; [cache] to a fresh private cache. *)

val with_level : t -> level:int -> extents:Simlist.Extent.t -> t
(** Pin the level and its partition.  The extents are a snapshot: a
    context derived this way does not track later appends — derive a
    fresh one per request (the server does) or use {!of_store}. *)

val extents : t -> Simlist.Extent.t
(** The current proper-sequence partition of the context's level.  For
    store-tracking contexts this re-derives after any store version
    change, so appended segments are visible; {!with_level}-derived
    contexts return the pinned snapshot. *)

val with_registry : t -> Picture.Index.Registry.t -> t
(** Replace the index registry — used when restoring a snapshot whose
    finalized indexes were preloaded into a registry, so queries start
    with zero rebuilds. *)

val segment_count : t -> int

(** {1 Cost-based planning}

    {!Query} plans each query just before dispatch when [planner] is on
    and no plan is attached yet; the evaluators ({!Direct}, {!Atomic})
    and {!Explain} read [plan] and fall back to the runtime heuristics
    when it is [None]. *)

val with_plan : t -> Planner.t -> t
val without_plan : t -> t

val with_planner : t -> t
val without_planner : t -> t
(** Turn cost-based planning off (and drop any attached plan): joins
    reorder by runtime table arity, atoms follow the static pruning
    rule, [Auto_backend] resolves to direct.  The heuristic arm of the
    planned=heuristic differential. *)

(** {1 Parallel evaluation} *)

val with_pool : ?par_cutoff:int -> t -> Parallel.Pool.t -> t
(** Attach a domain pool (and optionally override the cutoff). *)

val without_pool : t -> t
val with_par_cutoff : t -> int -> t

val pool_for : t -> n:int -> Parallel.Pool.t option
(** The gate every fan-out site goes through: the context's pool when
    the work spans at least [par_cutoff] units of size [n] {e and} the
    pool has more than one domain; [None] otherwise. *)

(** {1 Observability}

    Every instrumentation site in the evaluators goes through these
    helpers.  With no tracer/metrics attached (the default) each one is
    a single [option] match that falls straight through to the work —
    the attribute thunk is never forced, no clock is read, nothing
    allocates beyond the call itself.  See DESIGN.md §2.14. *)

val with_tracer : t -> Obs.Trace.t -> t
val without_tracer : t -> t

val with_metrics : t -> Obs.Metrics.t -> t
(** Also pre-registers the [cache.hits]/[cache.misses] counters (at 0)
    so both series appear in every exposition, hit-only runs included.
    {!of_store}/{!of_tables} do the same for a [?metrics] argument. *)

val without_metrics : t -> t

val with_querylog : t -> Obs.Querylog.t -> t
val without_querylog : t -> t

val with_stats : t -> Obs.Stats.t -> t
val without_stats : t -> t

val with_trace_id : t -> string -> t
(** Stamp the request's trace id on a derived context (the server does
    this per request); {!Query.run} copies it into query-log
    records. *)

val with_span :
  t -> ?attrs:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span of the context's tracer, or run it
    directly when there is none.  [attrs] is forced only when tracing. *)

val add_attr : t -> string -> (unit -> string) -> unit
(** Attach an attribute to the innermost open span; no-op without a
    tracer (the value thunk is never forced). *)

val metric_incr : t -> ?by:int -> string -> unit
val metric_observe : t -> string -> float -> unit

(** {1 Result caching} *)

val cache : t -> Cache.t option
val with_cache : t -> Cache.t -> t
val with_fresh_cache : t -> t
val without_cache : t -> t

val store_version : t -> int
(** {!Video_model.Store.version} of the context's store; 0 when
    store-less (precomputed tables are immutable). *)

val index : t -> Picture.Index.t option
(** The registry's finalized index for the context's store, level and
    current store version, building it on first use ([None] when
    store-less).  Thread-safe; counts [picture.index.builds] /
    [picture.index.registry_hits] on the context's metrics. *)

val cache_find : t -> Htl.Ast.t -> Simlist.Sim_table.t option
(** Look up the subformula's table for the current level, extents and
    store version.  [None] (a recorded miss) when absent or caching is
    off. *)

val cache_add : t -> Htl.Ast.t -> Simlist.Sim_table.t -> unit

val cache_stats : t -> Cache.stats option
