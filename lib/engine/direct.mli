(** The general direct algorithms (§3.2–§3.3 + level operators): inductive
    computation of similarity {e tables} for type (2), conjunctive and
    extended conjunctive formulas.

    Subformulas with free variables evaluate to tables whose rows are
    evaluations; [And]/[Until] are natural joins combining the rows'
    lists; the freeze quantifier joins against a value table extracted
    from the store; [at-level] operators evaluate the body over each
    parent's descendant sequence and lift the value at the first
    descendant back to the parent. *)

exception Unsupported of string

val eval : Context.t -> Htl.Ast.t -> Simlist.Sim_table.t
(** Evaluate a (possibly open) conjunctive-fragment formula at the
    context's level. *)

val eval_closed : Context.t -> Htl.Ast.t -> Simlist.Sim_list.t
(** Strip the existential prefix, evaluate the body, project. *)

val value_table :
  Context.t -> attr:string -> obj:string option -> Simlist.Value_table.t
(** The §3.3 value table of an attribute function over the context's
    level (exposed for tests). *)

(** {1 Level-operator plumbing} (shared with the SQL backend) *)

val resolve_level : Context.t -> Htl.Ast.level_sel -> int
(** @raise Unsupported on an unknown level name or a missing store. *)

val at_level_extents :
  Context.t -> target:int -> Simlist.Interval.t list * Simlist.Extent.t
(** Per-parent descendant spans at [target], and the extent partition
    they form (the proper sequences the body evaluates over). *)

val lift_to_parents :
  Simlist.Interval.t list -> Simlist.Sim_list.t -> Simlist.Sim_list.t
(** Map a target-level similarity list back to the parent level: the
    parent's value is the list's value at its first descendant. *)

val node_label : Context.t -> Htl.Ast.t -> string
(** The span name {!eval} records for this node (see DESIGN.md §2.14);
    exposed so {!Explain} builds its tree with the same labels. *)
