(* Where the level's proper-sequence partition comes from.  [Fixed] is a
   snapshot the caller computed (level descents, explicit with_level);
   [Tracked] re-derives from the store whenever the version stamp moved,
   so a long-lived context (the server's warm context) sees appended
   segments without being rebuilt.  The cell holds (version, extents);
   racing refreshes compute the same value, so a plain Atomic suffices. *)
type extent_source =
  | Fixed of Simlist.Extent.t
  | Tracked of (int * Simlist.Extent.t) Stdlib.Atomic.t

type t = {
  store : Video_model.Store.t option;
  picture_config : Picture.Retrieval.config;
  tables : (string * Simlist.Sim_table.t) list;
  threshold : float;
  conj_mode : Simlist.Sim_list.conj_mode;
  reorder_joins : bool;
  level : int;
  extent_source : extent_source;
  cache : Cache.t option;
  pool : Parallel.Pool.t option;
  par_cutoff : int;
  tracer : Obs.Trace.t option;
  metrics : Obs.Metrics.t option;
  querylog : Obs.Querylog.t option;
  stats : Obs.Stats.t option;
  trace_id : string option;
  registry : Picture.Index.Registry.t;
  planner : bool;
  plan : Planner.t option;
}

let default_par_cutoff = 4096

(* A query that never touches the cache records neither series; a scrape
   that has seen only hits would miss the miss counter entirely.  Both
   series exist from the moment a registry attaches, so ratios are
   always computable from one exposition. *)
let preregister m =
  Obs.Metrics.incr m ~by:0 "cache.hits";
  Obs.Metrics.incr m ~by:0 "cache.misses";
  Obs.Metrics.incr m ~by:0 "cache.survivals";
  Obs.Metrics.incr m ~by:0 "cache.stale_drops"

let of_store ?(config = Picture.Retrieval.default_config) ?(threshold = 0.5)
    ?(conj_mode = Simlist.Sim_list.Weighted_sum) ?(reorder_joins = false)
    ?(tables = []) ?level ?cache ?pool ?(par_cutoff = default_par_cutoff)
    ?tracer ?metrics ?querylog ?stats ?(planner = true) store =
  Option.iter preregister metrics;
  let level =
    match level with Some l -> l | None -> Video_model.Store.levels store
  in
  {
    store = Some store;
    picture_config = config;
    tables;
    threshold;
    conj_mode;
    reorder_joins;
    level;
    extent_source =
      Tracked
        (Stdlib.Atomic.make
           ( Video_model.Store.version store,
             Video_model.Store.extents_at store ~level ));
    cache = Some (match cache with Some c -> c | None -> Cache.create ());
    pool;
    par_cutoff;
    tracer;
    metrics;
    querylog;
    stats;
    trace_id = None;
    registry = Picture.Index.Registry.create ();
    planner;
    plan = None;
  }

let of_tables ?(threshold = 0.5)
    ?(conj_mode = Simlist.Sim_list.Weighted_sum) ?(reorder_joins = false) ~n
    ?extents ?cache ?pool ?(par_cutoff = default_par_cutoff) ?tracer ?metrics
    ?querylog ?stats ?(planner = true) tables =
  Option.iter preregister metrics;
  let extents =
    match extents with Some e -> e | None -> Simlist.Extent.single n
  in
  {
    store = None;
    picture_config = Picture.Retrieval.default_config;
    tables;
    threshold;
    conj_mode;
    reorder_joins;
    level = 1;
    extent_source = Fixed extents;
    cache = Some (match cache with Some c -> c | None -> Cache.create ());
    pool;
    par_cutoff;
    tracer;
    metrics;
    querylog;
    stats;
    trace_id = None;
    registry = Picture.Index.Registry.create ();
    planner;
    plan = None;
  }

(* the old level's estimates do not describe the new level — replan *)
let with_level t ~level ~extents =
  { t with level; extent_source = Fixed extents; plan = None }

let with_registry t registry = { t with registry }

let store_version t =
  match t.store with Some s -> Video_model.Store.version s | None -> 0

let extents t =
  match t.extent_source with
  | Fixed e -> e
  | Tracked cell -> (
      let v = store_version t in
      let cv, e = Stdlib.Atomic.get cell in
      if cv = v then e
      else
        match t.store with
        | None -> e
        | Some s ->
            let e = Video_model.Store.extents_at s ~level:t.level in
            Stdlib.Atomic.set cell (v, e);
            e)

let segment_count t = Simlist.Extent.total (extents t)

let with_pool ?(par_cutoff = default_par_cutoff) t pool =
  { t with pool = Some pool; par_cutoff }

let without_pool t = { t with pool = None }
let with_par_cutoff t par_cutoff = { t with par_cutoff }

(* The sequential-cutoff gate every fan-out site goes through: the pool,
   but only when the work spans at least [par_cutoff] units and the pool
   actually has more than one domain. *)
let pool_for t ~n =
  match t.pool with
  | Some p when n >= t.par_cutoff && Parallel.Pool.domain_count p > 1 ->
      Some p
  | Some _ | None -> None

let cache t = t.cache
let with_cache t cache = { t with cache = Some cache }
let with_fresh_cache t = { t with cache = Some (Cache.create ()) }
let without_cache t = { t with cache = None }

(* Derived contexts share the registry (it is part of the record), so
   with_level / run_batch / fresh-cache variants all reuse the same
   finalized indexes; the version stamp inside [Registry.get] handles
   store mutation. *)
let index t =
  match t.store with
  | None -> None
  | Some s ->
      Some
        (Picture.Index.Registry.get t.registry ?metrics:t.metrics s
           ~level:t.level)

let cache_key t f =
  Cache.key ~formula:(Htl.Hcons.intern_id f) ~level:t.level
    ~extents:(extents t)

(* Extent-scoped validity of a cached entry computed at [stamp], probed
   at the current version: replay the store's change log and keep the
   entry iff no change can reach what the evaluation read.  An
   evaluation at level [l] reads level-[l] meta-data (atoms, the freeze
   value table, the finalized index) and — only under a level operator,
   which must descend — deeper levels and the children spans between
   them.  So:

   - an edit at a shallower level never invalidates;
   - an edit at the entry's own level always invalidates (the key's
     extent partition tiles the whole level, so the edit overlaps);
   - an edit at a deeper level invalidates only formulas with level
     operators;
   - an append leaves every existing id's meta-data untouched; it
     invalidates only (a) formulas with level operators (descendant
     spans grow) or (b) entries at a level that itself gained segments
     (defensive: such entries are unreachable anyway, because the
     caller's freshly derived partition no longer matches the key).

   The log is bounded: past its horizon ([changes_since] = None) we
   assume everything changed. *)
let entry_valid t f ~stamp =
  match t.store with
  | None -> true (* precomputed tables are immutable *)
  | Some s -> (
      match Video_model.Store.changes_since s ~since:stamp with
      | None -> false
      | Some changes ->
          let descends = Htl.Ast.has_level_ops f in
          List.for_all
            (fun (c : Video_model.Store.change) ->
              match c with
              | Edited { level = lm; _ } ->
                  lm < t.level || (lm > t.level && not descends)
              | Appended { counts } ->
                  counts.(t.level - 1) = 0 && not descends)
            changes)

(* --- observability ------------------------------------------------------ *)

(* --- planning ----------------------------------------------------------- *)

let with_plan t plan = { t with plan = Some plan }
let without_plan t = { t with plan = None }
let with_planner t = { t with planner = true }
let without_planner t = { t with planner = false; plan = None }

let with_tracer t tracer = { t with tracer = Some tracer }
let without_tracer t = { t with tracer = None }

let with_metrics t metrics =
  preregister metrics;
  { t with metrics = Some metrics }

let without_metrics t = { t with metrics = None }
let with_querylog t querylog = { t with querylog = Some querylog }
let without_querylog t = { t with querylog = None }
let with_stats t stats = { t with stats = Some stats }
let without_stats t = { t with stats = None }
let with_trace_id t trace_id = { t with trace_id = Some trace_id }

(* The nil-tracer zero-cost path: without a tracer every instrumentation
   site is this single match falling straight through to the work, and
   [attrs] (a thunk) is never forced.  Same shape for metrics. *)
let with_span t ?attrs name f =
  match t.tracer with
  | None -> f ()
  | Some tr ->
      let attrs = match attrs with None -> [] | Some mk -> mk () in
      Obs.Trace.with_span tr ~attrs name f

let add_attr t key value =
  match t.tracer with
  | None -> ()
  | Some tr -> Obs.Trace.add_attr tr key (value ())

let metric_incr t ?by name =
  match t.metrics with None -> () | Some m -> Obs.Metrics.incr m ?by name

let metric_observe t name v =
  match t.metrics with None -> () | Some m -> Obs.Metrics.observe m name v

(* --- result caching ------------------------------------------------------ *)

let cache_find t f =
  match t.cache with
  | None -> None
  | Some c -> (
      let outcome =
        Cache.find c (cache_key t f) ~version:(store_version t)
          ~valid:(entry_valid t f)
      in
      let note names =
        match t.metrics with
        | None -> ()
        | Some m -> List.iter (Obs.Metrics.incr m) names
      in
      match outcome with
      | Cache.Hit table ->
          note [ "cache.hits" ];
          Some table
      | Cache.Survived table ->
          note [ "cache.hits"; "cache.survivals" ];
          Some table
      | Cache.Stale ->
          note [ "cache.misses"; "cache.stale_drops" ];
          None
      | Cache.Absent ->
          note [ "cache.misses" ];
          None)

let cache_add t f table =
  match t.cache with
  | None -> ()
  | Some c -> Cache.add c (cache_key t f) ~version:(store_version t) table

let cache_stats t = Option.map Cache.stats t.cache
