type t = {
  store : Video_model.Store.t option;
  picture_config : Picture.Retrieval.config;
  tables : (string * Simlist.Sim_table.t) list;
  threshold : float;
  conj_mode : Simlist.Sim_list.conj_mode;
  reorder_joins : bool;
  level : int;
  extents : Simlist.Extent.t;
  cache : Cache.t option;
  pool : Parallel.Pool.t option;
  par_cutoff : int;
  tracer : Obs.Trace.t option;
  metrics : Obs.Metrics.t option;
  querylog : Obs.Querylog.t option;
  registry : Picture.Index.Registry.t;
}

let default_par_cutoff = 4096

(* A query that never touches the cache records neither series; a scrape
   that has seen only hits would miss the miss counter entirely.  Both
   series exist from the moment a registry attaches, so ratios are
   always computable from one exposition. *)
let preregister m =
  Obs.Metrics.incr m ~by:0 "cache.hits";
  Obs.Metrics.incr m ~by:0 "cache.misses"

let of_store ?(config = Picture.Retrieval.default_config) ?(threshold = 0.5)
    ?(conj_mode = Simlist.Sim_list.Weighted_sum) ?(reorder_joins = false)
    ?(tables = []) ?level ?cache ?pool ?(par_cutoff = default_par_cutoff)
    ?tracer ?metrics ?querylog store =
  Option.iter preregister metrics;
  let level =
    match level with Some l -> l | None -> Video_model.Store.levels store
  in
  {
    store = Some store;
    picture_config = config;
    tables;
    threshold;
    conj_mode;
    reorder_joins;
    level;
    extents = Video_model.Store.extents_at store ~level;
    cache = Some (match cache with Some c -> c | None -> Cache.create ());
    pool;
    par_cutoff;
    tracer;
    metrics;
    querylog;
    registry = Picture.Index.Registry.create ();
  }

let of_tables ?(threshold = 0.5)
    ?(conj_mode = Simlist.Sim_list.Weighted_sum) ?(reorder_joins = false) ~n
    ?extents ?cache ?pool ?(par_cutoff = default_par_cutoff) ?tracer ?metrics
    ?querylog tables =
  Option.iter preregister metrics;
  let extents =
    match extents with Some e -> e | None -> Simlist.Extent.single n
  in
  {
    store = None;
    picture_config = Picture.Retrieval.default_config;
    tables;
    threshold;
    conj_mode;
    reorder_joins;
    level = 1;
    extents;
    cache = Some (match cache with Some c -> c | None -> Cache.create ());
    pool;
    par_cutoff;
    tracer;
    metrics;
    querylog;
    registry = Picture.Index.Registry.create ();
  }

let with_level t ~level ~extents = { t with level; extents }
let with_registry t registry = { t with registry }
let segment_count t = Simlist.Extent.total t.extents

let with_pool ?(par_cutoff = default_par_cutoff) t pool =
  { t with pool = Some pool; par_cutoff }

let without_pool t = { t with pool = None }
let with_par_cutoff t par_cutoff = { t with par_cutoff }

(* The sequential-cutoff gate every fan-out site goes through: the pool,
   but only when the work spans at least [par_cutoff] units and the pool
   actually has more than one domain. *)
let pool_for t ~n =
  match t.pool with
  | Some p when n >= t.par_cutoff && Parallel.Pool.domain_count p > 1 ->
      Some p
  | Some _ | None -> None

let cache t = t.cache
let with_cache t cache = { t with cache = Some cache }
let with_fresh_cache t = { t with cache = Some (Cache.create ()) }
let without_cache t = { t with cache = None }

let store_version t =
  match t.store with Some s -> Video_model.Store.version s | None -> 0

(* Derived contexts share the registry (it is part of the record), so
   with_level / run_batch / fresh-cache variants all reuse the same
   finalized indexes; the version stamp inside [Registry.get] handles
   store mutation. *)
let index t =
  match t.store with
  | None -> None
  | Some s ->
      Some
        (Picture.Index.Registry.get t.registry ?metrics:t.metrics s
           ~level:t.level)

let cache_key t f =
  Cache.key ~formula:(Htl.Hcons.intern_id f) ~level:t.level
    ~version:(store_version t) ~extents:t.extents

(* --- observability ------------------------------------------------------ *)

let with_tracer t tracer = { t with tracer = Some tracer }
let without_tracer t = { t with tracer = None }

let with_metrics t metrics =
  preregister metrics;
  { t with metrics = Some metrics }

let without_metrics t = { t with metrics = None }
let with_querylog t querylog = { t with querylog = Some querylog }
let without_querylog t = { t with querylog = None }

(* The nil-tracer zero-cost path: without a tracer every instrumentation
   site is this single match falling straight through to the work, and
   [attrs] (a thunk) is never forced.  Same shape for metrics. *)
let with_span t ?attrs name f =
  match t.tracer with
  | None -> f ()
  | Some tr ->
      let attrs = match attrs with None -> [] | Some mk -> mk () in
      Obs.Trace.with_span tr ~attrs name f

let add_attr t key value =
  match t.tracer with
  | None -> ()
  | Some tr -> Obs.Trace.add_attr tr key (value ())

let metric_incr t ?by name =
  match t.metrics with None -> () | Some m -> Obs.Metrics.incr m ?by name

let metric_observe t name v =
  match t.metrics with None -> () | Some m -> Obs.Metrics.observe m name v

(* --- result caching ------------------------------------------------------ *)

let cache_find t f =
  match t.cache with
  | None -> None
  | Some c ->
      let r = Cache.find c (cache_key t f) in
      (match t.metrics with
      | None -> ()
      | Some m ->
          Obs.Metrics.incr m
            (match r with Some _ -> "cache.hits" | None -> "cache.misses"));
      r

let cache_add t f table =
  match t.cache with
  | None -> ()
  | Some c -> Cache.add c (cache_key t f) table

let cache_stats t = Option.map Cache.stats t.cache
