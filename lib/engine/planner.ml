open Htl.Ast
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table

(* Cost-based physical planning (DESIGN.md §2.21).
   The planner walks the formula once before execution and records, per
   hash-consed subformula, an estimated support cardinality, selectivity
   and abstract cost.  Estimates come from three sources, cheapest
   first:

   - posting-list lengths through [Picture.Pruning.estimate] — a sound
     upper bound on the index-pruned candidate count of every
     non-temporal unit, exact for single-family atoms;
   - precomputed named tables — [Sim_list.covered] is the exact support;
   - [Obs.Stats] observations — per-atom selectivity EWMAs and
     per-(fingerprint, backend) latency EWMAs from earlier runs.

   Blending is bounded: the static estimate is recomputed from the live
   index on every plan, and an observation can only *lower* the
   selectivity below that bound ([min]), never raise it.  A cold or
   polluted EWMA therefore cannot stick: the next evaluation of the
   atom re-records the true ratio and the static bound caps the damage
   meanwhile.

   The plan decides three things, none of which can change results
   (every choice picks between evaluation strategies that are
   property-tested equal):
   - conjunct order for reordered [And] chains (sparsest first);
   - index-vs-scan per non-temporal unit (pruning is sound either way);
   - direct-vs-SQL backend under [`Auto] (both backends are
     differential-tested equal). *)

type access =
  | Table  (** a precomputed named table *)
  | Indexed of string  (** index-pruned candidates; the pruning plan *)
  | Scan of
      [ `No_index_plan  (** the pruning plan covers the whole level *)
      | `Pruning_disabled  (** the caller turned pruning off *)
      | `High_selectivity of float
        (** estimated selectivity above the crossover threshold: a
            full scan beats materializing most of the level *) ]

type node_est = {
  est_rows : int;
  est_sel : float;
  est_cost : float;
  access : access option;  (* [Some] on non-temporal leaf units *)
  order : int list option;  (* planned conjunct order on [And] chains *)
}

type t = {
  nodes : (int, node_est) Hashtbl.t;
  segments : int;
  scan_threshold : float;
  direct_cost : float;
  sql_cost : float;
}

(* Abstract cost units: scoring one segment in a direct atomic
   evaluation costs 1.  The other constants are ratios measured against
   that on the bench corpus — entry-merge work in list conjunctions is
   far cheaper than scoring, a row pushed through the relational
   engine's parse/insert/join pipeline far more expensive. *)
let c_score = 1.0
let c_entry = 0.25
let c_lookup = 8.0
let c_sql_row = 24.0
let c_sql_stmt = 64.0

(* The index-vs-scan crossover, calibrated against BENCH_index.json's
   selectivity sweep: pruned evaluation wins clearly up to ~0.5
   selectivity, is a wash around ~0.75 and can lose above it (the
   candidate array materialization costs more than it saves). *)
let default_scan_threshold = 0.75

let named_table ~tables = function
  | Atom (Rel (name, [])) -> List.assoc_opt name tables
  | _ -> None

let rec flatten = function And (a, b) -> flatten a @ flatten b | g -> [ g ]

let build ?stats ?index ?(scan_threshold = default_scan_threshold) ~tables
    ~taxonomy ~prune ~segments ~level f =
  let nodes = Hashtbl.create 32 in
  let nf = float_of_int (max 1 segments) in
  let leaf_cost = ref 0. in
  let atom_rows = ref 0 in
  let op_count = ref 0 in
  let observed_sel g =
    match stats with
    | None -> None
    | Some st ->
        Obs.Stats.selectivity st ~level ~atom:(Htl.Pretty.to_string g)
  in
  let add g e =
    Hashtbl.replace nodes (Htl.Hcons.intern_id g) e;
    e
  in
  (* estimate for a whole non-temporal unit — the granularity at which
     [Direct.eval_raw]/[Type1.eval] hand off to [Atomic.resolve];
     [locals] are the object variables bound by enclosing existential
     binders, so open atoms of a stripped quantifier chain estimate
     from their postings instead of degenerating to empty *)
  let rec leaf locals g =
    match named_table ~tables g with
    | Some table ->
        let rows = Sim_table.rows table in
        let covered =
          min segments
            (List.fold_left
               (fun acc (r : Sim_table.row) -> acc + Sim_list.covered r.list)
               0 rows)
        in
        let entries =
          List.fold_left
            (fun acc (r : Sim_table.row) -> acc + Sim_list.length r.list)
            0 rows
        in
        let cost = c_entry *. float_of_int entries in
        leaf_cost := !leaf_cost +. cost;
        atom_rows := !atom_rows + entries;
        add g
          {
            est_rows = covered;
            est_sel = float_of_int covered /. nf;
            est_cost = cost;
            access = Some Table;
            order = None;
          }
    | None -> (
        match index with
        | Some idx ->
            let p = Picture.Pruning.plan_under ~locals g in
            let static = Picture.Pruning.estimate ~taxonomy idx p in
            let static_sel = float_of_int static /. nf in
            (* bounded blend: observation can only lower the estimate
               below the static upper bound, never raise it *)
            let sel =
              match observed_sel g with
              | Some obs -> Float.min static_sel obs
              | None -> static_sel
            in
            let est_rows =
              min static (int_of_float (Float.round (sel *. nf)))
            in
            let access, cost =
              if not prune then
                (Scan `Pruning_disabled, nf *. c_score)
              else if Picture.Pruning.is_all p then
                (Scan `No_index_plan, nf *. c_score)
              else if sel > scan_threshold then
                (Scan (`High_selectivity sel), nf *. c_score)
              else
                ( Indexed
                    (Option.value ~default:"all"
                       (Picture.Pruning.describe p)),
                  (float_of_int est_rows *. c_score) +. c_lookup )
            in
            leaf_cost := !leaf_cost +. cost;
            atom_rows := !atom_rows + est_rows;
            add g
              {
                est_rows;
                est_sel = sel;
                est_cost = cost;
                access = Some access;
                order = None;
              }
        | None -> (
            (* store-less: [Atomic] decomposes conjunction/existential
               units down to named tables *)
            match g with
            | And (a, b) ->
                let ea = leaf locals a and eb = leaf locals b in
                let est = min segments (ea.est_rows + eb.est_rows) in
                let cost =
                  ea.est_cost +. eb.est_cost
                  +. (c_entry *. float_of_int (ea.est_rows + eb.est_rows))
                in
                add g
                  {
                    est_rows = est;
                    est_sel = float_of_int est /. nf;
                    est_cost = cost;
                    access = None;
                    order = None;
                  }
            | Exists (x, b) ->
                let eb = leaf (x :: locals) b in
                add g { eb with access = None; order = None }
            | _ ->
                leaf_cost := !leaf_cost +. (nf *. c_score);
                atom_rows := !atom_rows + segments;
                add g
                  {
                    est_rows = segments;
                    est_sel = 1.0;
                    est_cost = nf *. c_score;
                    access = None;
                    order = None;
                  }))
  in
  let rec walk locals g =
    incr op_count;
    if is_non_temporal g then leaf locals g
    else
      match g with
      | And (a, b) ->
          let ea = walk locals a and eb = walk locals b in
          (* the whole chain rooted here, in evaluation-flatten order:
             the planned join order is a permutation of its positions,
             sparsest estimate first (ties keep syntactic order) *)
          let subs = flatten g in
          let ests =
            List.mapi
              (fun i s ->
                match Hashtbl.find_opt nodes (Htl.Hcons.intern_id s) with
                | Some e -> (i, e.est_rows)
                | None -> (i, segments))
              subs
          in
          let order =
            List.map fst
              (List.sort
                 (fun (i, a) (j, b) -> compare (a, i) (b, j))
                 ests)
          in
          let est = min segments (ea.est_rows + eb.est_rows) in
          let cost =
            ea.est_cost +. eb.est_cost
            +. (c_entry *. float_of_int (ea.est_rows + eb.est_rows))
          in
          add g
            {
              est_rows = est;
              est_sel = float_of_int est /. nf;
              est_cost = cost;
              access = None;
              order = Some order;
            }
      | Until (a, b) ->
          let ea = walk locals a and eb = walk locals b in
          (* until-merge can extend support backwards through an
             extent, so bound by the level, cost by both inputs *)
          add g
            {
              est_rows = segments;
              est_sel = 1.0;
              est_cost =
                ea.est_cost +. eb.est_cost
                +. (c_entry *. float_of_int (ea.est_rows + eb.est_rows))
                +. (c_entry *. nf);
              access = None;
              order = None;
            }
      | Next a ->
          let ea = walk locals a in
          add g
            {
              ea with
              est_cost = ea.est_cost +. (c_entry *. float_of_int ea.est_rows);
              access = None;
              order = None;
            }
      | Eventually a ->
          let ea = walk locals a in
          (* spreads each match to its extent's start: bound the level *)
          add g
            {
              est_rows = segments;
              est_sel = 1.0;
              est_cost =
                ea.est_cost +. (c_entry *. float_of_int ea.est_rows);
              access = None;
              order = None;
            }
      | Exists (x, a) ->
          let ea = walk (x :: locals) a in
          add g { ea with access = None; order = None }
      | Freeze { body; _ } ->
          let ea = walk locals body in
          add g
            {
              ea with
              est_cost = ea.est_cost +. (nf *. c_entry) +. c_lookup;
              access = None;
              order = None;
            }
      | At_level (_, a) ->
          let ea = walk locals a in
          add g
            {
              est_rows = segments;
              est_sel = 1.0;
              est_cost = ea.est_cost +. (nf *. c_entry);
              access = None;
              order = None;
            }
      | Or (a, b) ->
          let ea = walk locals a and eb = walk locals b in
          let est = min segments (ea.est_rows + eb.est_rows) in
          add g
            {
              est_rows = est;
              est_sel = float_of_int est /. nf;
              est_cost = ea.est_cost +. eb.est_cost;
              access = None;
              order = None;
            }
      | Not a ->
          let ea = walk locals a in
          add g
            {
              est_rows = segments;
              est_sel = 1.0;
              est_cost = ea.est_cost;
              access = None;
              order = None;
            }
      | Atom _ -> leaf locals g
  in
  let root = walk [] f in
  (* the SQL backend materializes the same atomic tables, then pushes
     every row through parse/insert and evaluates temporal operators as
     per-segment relational queries — each op touches the level again *)
  let sql_cost =
    !leaf_cost
    +. (c_sql_row *. float_of_int !atom_rows)
    +. (c_sql_stmt *. float_of_int !op_count)
    +. (c_sql_row *. nf *. float_of_int !op_count)
  in
  {
    nodes;
    segments;
    scan_threshold;
    direct_cost = root.est_cost;
    sql_cost;
  }

let find t g = Hashtbl.find_opt t.nodes (Htl.Hcons.intern_id g)
let segments t = t.segments
let direct_cost t = t.direct_cost
let sql_cost t = t.sql_cost
let scan_threshold t = t.scan_threshold

let join_order t g =
  match find t g with Some { order; _ } -> order | None -> None

let access t g =
  match find t g with Some { access; _ } -> access | None -> None

let scan_override t g =
  match access t g with
  | Some (Scan (`High_selectivity _)) -> true
  | Some (Table | Indexed _ | Scan (`No_index_plan | `Pruning_disabled))
  | None ->
      false

let access_to_string = function
  | Table -> "table"
  | Indexed d -> "index: " ^ d
  | Scan (`High_selectivity sel) ->
      Printf.sprintf "scan (planned, est sel %.2f)" sel
  | Scan (`No_index_plan | `Pruning_disabled) -> "scan"

let node_attrs t g =
  match find t g with
  | None -> []
  | Some e ->
      let base =
        [
          ("est_rows", string_of_int e.est_rows);
          ("est_cost", Printf.sprintf "%.3g" e.est_cost);
        ]
      in
      let order =
        match e.order with
        | Some order when List.length order > 1 ->
            [
              ( "est_join_order",
                String.concat "," (List.map string_of_int order) );
            ]
        | _ -> []
      in
      base @ order

(* --- backend choice ------------------------------------------------------ *)

type backend_choice = {
  picked : [ `Direct | `Sql ];
  est_direct : float;
  est_sql : float;
  observed_direct_s : float option;
  observed_sql_s : float option;
  reason : string;
}

let choose_backend ?stats ~fingerprint t =
  let obs backend =
    match stats with
    | None -> None
    | Some st -> Obs.Stats.backend_latency_s st ~fingerprint ~backend
  in
  let od = obs "direct" and os = obs "sql" in
  let picked, reason =
    match (od, os) with
    | Some d, Some s ->
        (* both backends have run this fingerprint: trust the clock *)
        ( (if s < d then `Sql else `Direct),
          Printf.sprintf "observed ewma direct %.3gs vs sql %.3gs" d s )
    | _ ->
        ( (if t.sql_cost < t.direct_cost then `Sql else `Direct),
          Printf.sprintf "estimated cost direct %.3g vs sql %.3g"
            t.direct_cost t.sql_cost )
  in
  {
    picked;
    est_direct = t.direct_cost;
    est_sql = t.sql_cost;
    observed_direct_s = od;
    observed_sql_s = os;
    reason;
  }
