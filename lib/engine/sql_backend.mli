(** The SQL-based retrieval system (§4): type (1) formulas are translated
    into a sequence of SQL statements executed on the {!Relational}
    engine (the Sybase substitute).

    Like the paper's system, it takes the atomic similarity tables as
    input (they are bulk-loaded into the database); all temporal
    processing happens in SQL: interval tables are expanded to per-id
    rows with a band join against a sequence table, conjunction is a
    UNION ALL + SUM, [until] builds threshold corridors with the
    [id - ROWNUM()] run trick, and the final result is coalesced back
    into an interval table. *)

exception Unsupported of string

type t

val create : Context.t -> t
(** Builds the sequence table [seq(id, elo, ehi)] from the context's
    extents. *)

val run : t -> Context.t -> Htl.Ast.t -> Simlist.Sim_list.t
(** Translate and execute a type (1) formula; returns the final
    similarity list.  Temporary tables are dropped afterwards.
    @raise Unsupported on non-type (1) formulas. *)

val run_conjunctive : t -> Context.t -> Htl.Ast.t -> Simlist.Sim_list.t
(** §3.2/§3.3 through SQL, like the paper's system ("uses translations
    into SQL for computation of the similarity tables for any conjunctive
    formula"): the variable-binding bookkeeping (table rows, joins on
    shared variables, freeze value tables) follows the direct structure,
    while every similarity-list combination executes as a sequence of SQL
    statements.  Covers type (2), conjunctive and extended-conjunctive
    formulas under the weighted-sum semantics (a level operator's body
    gets its own sequence table for the target level's id space).
    @raise Unsupported on negation/disjunction or non-default conjunction
    modes. *)

val last_script : t -> string list
(** The SQL statements executed by the most recent {!run} (for
    inspection, tests and documentation). *)

val db : t -> Relational.Catalog.t

val node_label : Htl.Ast.t -> string
(** The span name the translation records for this node — shared with
    {!Explain}. *)
