open Htl.Ast

type timing = Untimed | Cached | Timed of float

type node = {
  label : string;
  attrs : (string * string) list;
  timing : timing;
  children : node list;
}

type report = {
  backend : string;
  backend_reason : string option;
  cls : Htl.Classify.cls;
  formula : string;
  analyzed : bool;
  tree : node;
  sql_script : node list;
  total_s : float option;
  resources : Obs.Resource.delta option;
}

let node ?(attrs = []) ?(timing = Untimed) label children =
  { label; attrs; timing; children }

(* --- span matching -------------------------------------------------------

   Every evaluator span carries a ["formula"] attribute: the hash-consed
   id of the subformula it computed (see Direct.span_attrs).  The tree
   walk below consumes spans per formula id in start order, so a
   subformula that appears twice in the tree gets its computed span on
   the first occurrence and shows as [Cached] on the second — mirroring
   what the cache actually did. *)

let span_lookup spans =
  let tbl : (string, Obs.Trace.span list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (s : Obs.Trace.span) ->
      match Obs.Trace.attr s "formula" with
      | Some id -> (
          match Hashtbl.find_opt tbl id with
          | Some r -> r := !r @ [ s ]
          | None -> Hashtbl.add tbl id (ref [ s ]))
      | None -> ())
    spans;
  fun f ->
    let id = string_of_int (Htl.Hcons.intern_id f) in
    match Hashtbl.find_opt tbl id with
    | Some ({ contents = s :: rest } as r) ->
        r := rest;
        Some s
    | _ -> None

(* Timing + recorded attributes for a node.  [take = None] is the static
   (no-analyze) walk: everything is [Untimed].  With spans, a node with
   no span of its own was served from the subformula cache. *)
let observed take f =
  match take with
  | None -> (Untimed, [])
  | Some take -> (
      match take f with
      | None -> (Cached, [])
      | Some span ->
          let timing =
            match Obs.Trace.duration_s span with
            | Some d -> Timed d
            | None -> Untimed
          in
          let attrs =
            List.filter (fun (k, _) -> k <> "formula") (List.rev span.attrs)
          in
          (timing, attrs))

(* How the atomic evaluator will source a non-temporal leaf: a
   precomputed named table, an index-pruned candidate scan, or a full
   segment scan.  Static analysis only ({!Picture.Pruning.plan} needs no
   index), so it is available in un-analyzed EXPLAIN too. *)
let atom_access (ctx : Context.t) f =
  (* the plan's decision when one is attached (it may demote a
     high-selectivity atom to a scan); the static rule otherwise *)
  match Option.bind ctx.plan (fun p -> Planner.access p f) with
  | Some a -> [ ("access", Planner.access_to_string a) ]
  | None -> (
      match Atomic.named_table ctx f with
      | Some _ -> [ ("access", "table") ]
      | None -> (
          match ctx.store with
          | None -> []
          | Some _ ->
              if not ctx.picture_config.prune then [ ("access", "scan") ]
              else (
                match Picture.Pruning.describe (Picture.Pruning.plan f) with
                | Some d -> [ ("access", "index: " ^ d) ]
                | None -> [ ("access", "scan") ])))

(* estimated rows/cost per node when a plan is attached — EXPLAIN
   ANALYZE places them next to the recorded actuals ([rows], timings) *)
let est_attrs (ctx : Context.t) f =
  match ctx.plan with None -> [] | Some p -> Planner.node_attrs p f

let atom_attrs ctx f = ("formula", Htl.Pretty.to_string f) :: atom_access ctx f

(* --- direct-evaluation trees --------------------------------------------- *)

let rec direct_tree (ctx : Context.t) ?take f =
  let timing, span_attrs = observed take f in
  let structural, children =
    if is_non_temporal f then (atom_attrs ctx f, [])
    else
      match f with
      | And _ when ctx.reorder_joins ->
          let rec flatten = function
            | And (a, b) -> flatten a @ flatten b
            | g -> [ g ]
          in
          let subs = flatten f in
          let attrs =
            if
              Option.is_none take
              && Option.is_none
                   (Option.bind ctx.plan (fun p -> Planner.join_order p f))
            then [ ("reorder", "joins smallest table first at runtime") ]
            else []
          in
          (attrs, List.map (direct_tree ctx ?take) subs)
      | And (g, h) | Until (g, h) ->
          ([], [ direct_tree ctx ?take g; direct_tree ctx ?take h ])
      | Next g | Eventually g -> ([], [ direct_tree ctx ?take g ])
      | Exists (x, g) -> ([ ("var", x) ], [ direct_tree ctx ?take g ])
      | Freeze { var; attr; obj; body } ->
          let attrs =
            [ ("var", var); ("attr", attr) ]
            @ match obj with Some x -> [ ("obj", x) ] | None -> []
          in
          (attrs, [ direct_tree ctx ?take body ])
      | At_level (sel, g) ->
          let attrs =
            match Direct.resolve_level ctx sel with
            | target -> [ ("target_level", string_of_int target) ]
            | exception Direct.Unsupported _ -> []
          in
          (attrs, [ direct_tree ctx ?take g ])
      | Or (g, h) -> ([], [ direct_tree ctx ?take g; direct_tree ctx ?take h ])
      | Not g -> ([], [ direct_tree ctx ?take g ])
      | Atom _ -> ([], [])
  in
  node (Direct.node_label ctx f) ~timing
    ~attrs:(structural @ est_attrs ctx f @ span_attrs)
    children

let rec type1_tree (ctx : Context.t) ?take f =
  let timing, span_attrs = observed take f in
  let structural, children =
    if is_non_temporal f then (atom_attrs ctx f, [])
    else
      match f with
      | And (g, h) | Until (g, h) ->
          ([], [ type1_tree ctx ?take g; type1_tree ctx ?take h ])
      | Next g | Eventually g -> ([], [ type1_tree ctx ?take g ])
      | _ -> ([], [])
  in
  node (Type1.node_label f) ~timing
    ~attrs:(structural @ est_attrs ctx f @ span_attrs)
    children

let rec sql_tree (ctx : Context.t) ?take f =
  let timing, span_attrs = observed take f in
  let structural, children =
    if is_non_temporal f then (atom_attrs ctx f, [])
    else
      match f with
      | And (g, h) | Until (g, h) ->
          ([], [ sql_tree ctx ?take g; sql_tree ctx ?take h ])
      | Next g | Eventually g -> ([], [ sql_tree ctx ?take g ])
      | Exists (x, g) -> ([ ("var", x) ], [ sql_tree ctx ?take g ])
      | Freeze { var; attr; obj; body } ->
          let attrs =
            [ ("var", var); ("attr", attr) ]
            @ match obj with Some x -> [ ("obj", x) ] | None -> []
          in
          (attrs, [ sql_tree ctx ?take body ])
      | At_level (_, g) -> ([], [ sql_tree ctx ?take g ])
      | Or (g, h) -> ([], [ sql_tree ctx ?take g; sql_tree ctx ?take h ])
      | Not g -> ([], [ sql_tree ctx ?take g ])
      | Atom _ -> ([], [])
  in
  node (Sql_backend.node_label f) ~timing
    ~attrs:(structural @ est_attrs ctx f @ span_attrs)
    children

(* --- SQL script plan trees ----------------------------------------------- *)

let rec plan_node p =
  node (Relational.Plan.label p)
    (List.map plan_node (Relational.Plan.children p))

let stmt_node (stmt : Relational.Sql.stmt) =
  match stmt with
  | Relational.Sql.Create_table (name, cols) ->
      node
        (Printf.sprintf "CREATE TABLE %s (%s)" name (String.concat ", " cols))
        []
  | Relational.Sql.Create_table_as (name, q) ->
      node
        (Printf.sprintf "CREATE TABLE %s AS" name)
        [ plan_node (Relational.Sql.plan_query q) ]
  | Relational.Sql.Insert (name, rows) ->
      node (Printf.sprintf "INSERT INTO %s (%d rows)" name (List.length rows)) []
  | Relational.Sql.Drop_table { name; if_exists } ->
      node
        (Printf.sprintf "DROP TABLE %s%s"
           (if if_exists then "IF EXISTS " else "")
           name)
        []
  | Relational.Sql.Select_stmt q ->
      node "SELECT" [ plan_node (Relational.Sql.plan_query q) ]

let script_nodes statements =
  List.concat_map
    (fun src ->
      match Relational.Sql.parse src with
      | stmts -> List.map stmt_node stmts
      | exception Relational.Sql.Error msg ->
          [ node (Printf.sprintf "<unparsed: %s>" msg) [] ])
    statements

(* --- rendering ------------------------------------------------------------ *)

let pp_timing ppf = function
  | Untimed -> ()
  | Cached -> Format.fprintf ppf " [cached]"
  | Timed d -> Format.fprintf ppf " (%.3f ms)" (d *. 1e3)

let pp_node ppf root =
  let rec go depth n =
    Format.fprintf ppf "%s%s%a" (String.make (2 * depth) ' ') n.label pp_timing
      n.timing;
    (match n.attrs with
    | [] -> ()
    | attrs ->
        Format.fprintf ppf " {%s}"
          (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)));
    Format.fprintf ppf "@,";
    List.iter (go (depth + 1)) n.children
  in
  Format.fprintf ppf "@[<v>";
  go 0 root;
  Format.fprintf ppf "@]"

let pp ppf r =
  Format.fprintf ppf "@[<v>query:   %s@,class:   %s@,backend: %s@," r.formula
    (Htl.Classify.cls_to_string r.cls)
    r.backend;
  (match r.backend_reason with
  | Some reason -> Format.fprintf ppf "planner: %s@," reason
  | None -> ());
  Format.fprintf ppf "@,%a" pp_node r.tree;
  (match r.sql_script with
  | [] -> ()
  | stmts ->
      Format.fprintf ppf "@,script:@,";
      List.iteri
        (fun i n ->
          Format.fprintf ppf "@[<v>-- statement %d@,%a@]@," (i + 1) pp_node n)
        stmts);
  (match r.total_s with
  | Some t -> Format.fprintf ppf "@,total: %.3f ms" (t *. 1e3)
  | None -> ());
  (match r.resources with
  | Some d -> Format.fprintf ppf "@,gc:    %a" Obs.Resource.pp d
  | None -> ());
  Format.fprintf ppf "@]"

let to_string r = Format.asprintf "%a" pp r
