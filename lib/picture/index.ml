module Value = Metadata.Value

type points = {
  ints : int list;
  strs : string list;
  bad : [ `Float | `Bool ] option;
}

let no_points = { ints = []; strs = []; bad = None }

(* Posting key for attribute values.  [Value.equal] coerces Int/Float
   when numerically equal, so both map onto [Knum]; -0. folds onto 0.
   (they hash differently but compare equal); NaN is not indexable
   because it compares equal to nothing. *)
type vkey = Knum of float | Kstr of string | Kbool of bool

let key_of_value = function
  | Value.Int n -> Some (Knum (float_of_int n))
  | Value.Float f ->
      if Float.is_nan f then None else Some (Knum (if f = 0. then 0. else f))
  | Value.Str s -> Some (Kstr s)
  | Value.Bool b -> Some (Kbool b)

type t = {
  level : int;
  segment_count : int;
  by_object : (int, int array) Hashtbl.t;
  by_type : (string, int array) Hashtbl.t;
  by_relationship : (string, int array) Hashtbl.t;
  with_objects : int array;
  by_seg_attr : (string, int array) Hashtbl.t;
  by_seg_attr_value : (string * vkey, int array) Hashtbl.t;
  by_obj_attr : (string, int array) Hashtbl.t;
  by_obj_attr_value : (string * vkey, int array) Hashtbl.t;
  seg_points : (string, points) Hashtbl.t;
  obj_points : (string * int, points) Hashtbl.t;
  objects : int list;
  types : string list;
}

(* Build-time accumulators: postings as reversed lists with head dedup
   (segments are scanned in increasing id order), value points as
   reversed raw lists plus the first offending non-indexable kind in
   scan order (so the hoisted freeze-region pass reports the same error
   the per-eval scan used to). *)

let add_posting tbl key seg =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  match prev with
  | s :: _ when s = seg -> ()
  | _ -> Hashtbl.replace tbl key (seg :: prev)

type points_acc = {
  mutable p_ints : int list;
  mutable p_strs : string list;
  mutable p_bad : [ `Float | `Bool ] option;
}

let add_point tbl key v =
  let acc =
    match Hashtbl.find_opt tbl key with
    | Some acc -> acc
    | None ->
        let acc = { p_ints = []; p_strs = []; p_bad = None } in
        Hashtbl.add tbl key acc;
        acc
  in
  match v with
  | Value.Int k -> acc.p_ints <- k :: acc.p_ints
  | Value.Str s -> acc.p_strs <- s :: acc.p_strs
  | Value.Float _ -> if acc.p_bad = None then acc.p_bad <- Some `Float
  | Value.Bool _ -> if acc.p_bad = None then acc.p_bad <- Some `Bool

let finalize_postings tbl =
  let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
  Hashtbl.iter
    (fun k segs -> Hashtbl.replace out k (Array.of_list (List.rev segs)))
    tbl;
  out

let finalize_points tbl =
  let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
  Hashtbl.iter
    (fun k acc ->
      Hashtbl.replace out k
        {
          ints = List.sort_uniq compare acc.p_ints;
          strs = List.sort_uniq compare acc.p_strs;
          bad = acc.p_bad;
        })
    tbl;
  out

(* One scan over ids [lo..hi] of a level, accumulating every posting
   family.  [build] runs it over the whole level; [build_delta] over the
   appended tail only (appended ids are greater than every existing id,
   so the per-key posting arrays of a delta sort strictly after the
   finalized ones and {!merge} can concatenate). *)
let build_over store ~level ~lo ~hi =
  let by_object = Hashtbl.create 64 in
  let by_type = Hashtbl.create 64 in
  let by_relationship = Hashtbl.create 16 in
  let with_objects = Hashtbl.create 64 in
  let by_seg_attr = Hashtbl.create 16 in
  let by_seg_attr_value = Hashtbl.create 64 in
  let by_obj_attr = Hashtbl.create 16 in
  let by_obj_attr_value = Hashtbl.create 64 in
  let seg_points = Hashtbl.create 16 in
  let obj_points = Hashtbl.create 64 in
  for id = lo to hi do
    let meta = Video_model.Store.meta store ~level ~id in
    List.iter
      (fun (o : Metadata.Entity.t) ->
        add_posting by_object o.id id;
        add_posting by_type o.otype id;
        add_posting with_objects () id;
        (* [Entity.attr] exposes "type" and "id" as virtual attributes;
           index them alongside the stored ones so value postings and
           freeze points agree with the evaluator. *)
        List.iter
          (fun (name, v) ->
            add_posting by_obj_attr name id;
            (match key_of_value v with
            | Some k -> add_posting by_obj_attr_value (name, k) id
            | None -> ());
            add_point obj_points (name, o.id) v)
          (("type", Value.Str o.otype) :: ("id", Value.Int o.id) :: o.attrs))
      meta.Metadata.Seg_meta.objects;
    List.iter
      (fun (r : Metadata.Relationship.t) ->
        add_posting by_relationship r.name id)
      meta.Metadata.Seg_meta.relationships;
    List.iter
      (fun (name, v) ->
        add_posting by_seg_attr name id;
        (match key_of_value v with
        | Some k -> add_posting by_seg_attr_value (name, k) id
        | None -> ());
        add_point seg_points name v)
      meta.Metadata.Seg_meta.attrs
  done;
  let objects =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_object [])
  in
  let types =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_type [])
  in
  {
    level;
    segment_count = hi;
    by_object = finalize_postings by_object;
    by_type = finalize_postings by_type;
    by_relationship = finalize_postings by_relationship;
    with_objects =
      (match Hashtbl.find_opt with_objects () with
      | Some segs -> Array.of_list (List.rev segs)
      | None -> [||]);
    by_seg_attr = finalize_postings by_seg_attr;
    by_seg_attr_value = finalize_postings by_seg_attr_value;
    by_obj_attr = finalize_postings by_obj_attr;
    by_obj_attr_value = finalize_postings by_obj_attr_value;
    seg_points = finalize_points seg_points;
    obj_points = finalize_points obj_points;
    objects;
    types;
  }

let build ?metrics store ~level =
  (match metrics with
  | Some m -> Obs.Metrics.incr m "picture.index.builds"
  | None -> ());
  build_over store ~level ~lo:1
    ~hi:(Video_model.Store.count_at store ~level)

let build_delta store ~level ~lo =
  let hi = Video_model.Store.count_at store ~level in
  if lo < 1 || lo > hi then
    invalid_arg
      (Printf.sprintf "Index.build_delta: lo %d out of range 1..%d" lo hi);
  build_over store ~level ~lo ~hi

(* Merging a delta built over the appended tail into a finalized index.
   Neither input is mutated: other threads may hold the base (the
   registry hands indexes out without copying), and snapshot dumps share
   posting arrays.  Delta ids are all greater than [base.segment_count],
   so concatenation preserves the ascending, duplicate-free invariant of
   every posting family. *)

let merge_postings base delta =
  let out = Hashtbl.copy base in
  Hashtbl.iter
    (fun k arr ->
      match Hashtbl.find_opt out k with
      | None -> Hashtbl.replace out k arr
      | Some old -> Hashtbl.replace out k (Array.append old arr))
    delta;
  out

let merge_points base delta =
  let out = Hashtbl.copy base in
  Hashtbl.iter
    (fun k (p : points) ->
      match Hashtbl.find_opt out k with
      | None -> Hashtbl.replace out k p
      | Some (old : points) ->
          Hashtbl.replace out k
            {
              ints = List.sort_uniq compare (old.ints @ p.ints);
              strs = List.sort_uniq compare (old.strs @ p.strs);
              (* the base's offender came first in scan order *)
              bad = (match old.bad with Some _ -> old.bad | None -> p.bad);
            })
    delta;
  out

let merge base delta =
  if base.level <> delta.level then
    invalid_arg
      (Printf.sprintf "Index.merge: levels disagree (%d vs %d)" base.level
         delta.level);
  if delta.segment_count < base.segment_count then
    invalid_arg "Index.merge: delta covers fewer segments than the base";
  {
    level = base.level;
    segment_count = delta.segment_count;
    by_object = merge_postings base.by_object delta.by_object;
    by_type = merge_postings base.by_type delta.by_type;
    by_relationship = merge_postings base.by_relationship delta.by_relationship;
    with_objects = Array.append base.with_objects delta.with_objects;
    by_seg_attr = merge_postings base.by_seg_attr delta.by_seg_attr;
    by_seg_attr_value =
      merge_postings base.by_seg_attr_value delta.by_seg_attr_value;
    by_obj_attr = merge_postings base.by_obj_attr delta.by_obj_attr;
    by_obj_attr_value =
      merge_postings base.by_obj_attr_value delta.by_obj_attr_value;
    seg_points = merge_points base.seg_points delta.seg_points;
    obj_points = merge_points base.obj_points delta.obj_points;
    objects = List.sort_uniq compare (base.objects @ delta.objects);
    types = List.sort_uniq compare (base.types @ delta.types);
  }

let postings tbl key =
  Option.value ~default:[||] (Hashtbl.find_opt tbl key)

let segments_of_object t oid = postings t.by_object oid
let segments_of_type t name = postings t.by_type name
let segments_of_relationship t name = postings t.by_relationship name
let segments_with_objects t = t.with_objects
let segments_with_seg_attr t name = postings t.by_seg_attr name

let segments_with_seg_attr_value t name v =
  match key_of_value v with
  | None -> [||]
  | Some k -> postings t.by_seg_attr_value (name, k)

let segments_with_obj_attr t name = postings t.by_obj_attr name

let segments_with_obj_attr_value t name v =
  match key_of_value v with
  | None -> [||]
  | Some k -> postings t.by_obj_attr_value (name, k)

let seg_attr_points t name =
  Option.value ~default:no_points (Hashtbl.find_opt t.seg_points name)

let obj_attr_points t name ~oid =
  Option.value ~default:no_points (Hashtbl.find_opt t.obj_points (name, oid))

let objects_at_level t = t.objects
let types_at_level t = t.types
let level t = t.level
let segment_count t = t.segment_count

(* --- serialization-friendly view ----------------------------------------

   A dump flattens every hashtable into a sorted association list, so a
   snapshot of the same index is byte-identical run to run (hashtable
   fold order is not deterministic).  [undump] rebuilds the tables; the
   posting arrays are shared, not copied — both sides treat them as
   immutable. *)

type dump = {
  d_level : int;
  d_segments : int;
  d_by_object : (int * int array) list;
  d_by_type : (string * int array) list;
  d_by_relationship : (string * int array) list;
  d_with_objects : int array;
  d_by_seg_attr : (string * int array) list;
  d_by_seg_attr_value : ((string * vkey) * int array) list;
  d_by_obj_attr : (string * int array) list;
  d_by_obj_attr_value : ((string * vkey) * int array) list;
  d_seg_points : (string * points) list;
  d_obj_points : ((string * int) * points) list;
  d_objects : int list;
  d_types : string list;
}

let sorted_bindings tbl =
  List.sort
    (fun (k1, _) (k2, _) -> compare k1 k2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let dump t =
  {
    d_level = t.level;
    d_segments = t.segment_count;
    d_by_object = sorted_bindings t.by_object;
    d_by_type = sorted_bindings t.by_type;
    d_by_relationship = sorted_bindings t.by_relationship;
    d_with_objects = t.with_objects;
    d_by_seg_attr = sorted_bindings t.by_seg_attr;
    d_by_seg_attr_value = sorted_bindings t.by_seg_attr_value;
    d_by_obj_attr = sorted_bindings t.by_obj_attr;
    d_by_obj_attr_value = sorted_bindings t.by_obj_attr_value;
    d_seg_points = sorted_bindings t.seg_points;
    d_obj_points = sorted_bindings t.obj_points;
    d_objects = t.objects;
    d_types = t.types;
  }

let table_of bindings =
  let tbl = Hashtbl.create (max 16 (List.length bindings)) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bindings;
  tbl

let undump d =
  {
    level = d.d_level;
    segment_count = d.d_segments;
    by_object = table_of d.d_by_object;
    by_type = table_of d.d_by_type;
    by_relationship = table_of d.d_by_relationship;
    with_objects = d.d_with_objects;
    by_seg_attr = table_of d.d_by_seg_attr;
    by_seg_attr_value = table_of d.d_by_seg_attr_value;
    by_obj_attr = table_of d.d_by_obj_attr;
    by_obj_attr_value = table_of d.d_by_obj_attr_value;
    seg_points = table_of d.d_seg_points;
    obj_points = table_of d.d_obj_points;
    objects = d.d_objects;
    types = d.d_types;
  }

module Registry = struct
  type index = t

  type nonrec t = {
    mutex : Mutex.t;
    mutable version : int;
    tbl : (int, index) Hashtbl.t;
  }

  let create () = { mutex = Mutex.create (); version = -1; tbl = Hashtbl.create 4 }

  (* Version catch-up is per level.  An edit at level [l] can change any
     posting at that level, so its cached index is dropped (rebuilt on
     next demand); other levels are untouched.  An append never changes
     an existing id's meta-data, so every cached level that grew gets a
     delta built over its appended tail and merged — counted as
     [picture.index.delta_merges], with [picture.index.builds] staying
     flat.  Past the change-log horizon we can no longer tell what
     happened and reset everything. *)
  let catch_up r ?metrics store =
    match Video_model.Store.changes_since store ~since:r.version with
    | None -> Hashtbl.reset r.tbl
    | Some changes ->
        List.iter
          (fun (c : Video_model.Store.change) ->
            match c with
            | Edited { level = lm; _ } -> Hashtbl.remove r.tbl lm
            | Appended _ -> ())
          changes;
        let cached = Hashtbl.fold (fun l idx acc -> (l, idx) :: acc) r.tbl [] in
        List.iter
          (fun (l, (idx : index)) ->
            let n = Video_model.Store.count_at store ~level:l in
            if idx.segment_count < n then begin
              let delta = build_delta store ~level:l ~lo:(idx.segment_count + 1) in
              Hashtbl.replace r.tbl l (merge idx delta);
              match metrics with
              | Some m -> Obs.Metrics.incr m "picture.index.delta_merges"
              | None -> ()
            end)
          cached

  let get r ?metrics store ~level =
    Mutex.protect r.mutex (fun () ->
        let v = Video_model.Store.version store in
        if v <> r.version then begin
          catch_up r ?metrics store;
          r.version <- v
        end;
        match Hashtbl.find_opt r.tbl level with
        | Some idx ->
            (match metrics with
            | Some m -> Obs.Metrics.incr m "picture.index.registry_hits"
            | None -> ());
            idx
        | None ->
            let idx = build ?metrics store ~level in
            Hashtbl.add r.tbl level idx;
            idx)

  let preload r ~version indexes =
    Mutex.protect r.mutex (fun () ->
        Hashtbl.reset r.tbl;
        r.version <- version;
        List.iter (fun (idx : index) -> Hashtbl.replace r.tbl idx.level idx) indexes)
end
