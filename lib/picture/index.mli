(** Finalized inverted indices over one level of the video store, as
    used by the picture retrieval system to find candidate segments for
    the conditions of a query ([27] §"indices on spatial
    relationships").

    An index is built in one scan of the level and then immutable: every
    posting list is a sorted (ascending, duplicate-free) [int array] of
    global segment ids, ready for the galloping set operations in
    {!Pruning} with no per-lookup reversal or sort.  Besides the
    object/type/relationship families the index stores segment- and
    object-attribute postings (name and (name, value)) and the hoisted
    freeze-region point sets that {!Retrieval} previously recomputed per
    evaluation. *)

type t

type points = {
  ints : int list;  (** sorted distinct integer values seen *)
  strs : string list;  (** sorted distinct string values seen *)
  bad : [ `Float | `Bool ] option;
      (** first non-indexable kind in segment scan order, if any — the
          hoisted freeze-region pass reports it exactly as the per-eval
          scan used to *)
}

val no_points : points

val build : ?metrics:Obs.Metrics.t -> Video_model.Store.t -> level:int -> t
(** Scan the level once and finalize.  Bumps the
    [picture.index.builds] counter when a registry is supplied. *)

val build_delta : Video_model.Store.t -> level:int -> lo:int -> t
(** Scan only ids [lo .. count_at store ~level] — the tail appended
    since a base index covering [lo - 1] segments was built.  Does not
    bump [picture.index.builds].
    @raise Invalid_argument when [lo] is outside [1 .. count_at]. *)

val merge : t -> t -> t
(** [merge base delta] is the index [build] would produce over the whole
    level, given [base] covering a prefix and [delta] the rest (appended
    ids are greater than every base id, so posting arrays concatenate in
    sorted order).  Neither input is mutated — concurrent readers and
    snapshot dumps holding the base stay coherent.
    @raise Invalid_argument on level mismatch or when [delta] covers
    fewer segments than [base]. *)

val segments_of_object : t -> int -> int array
(** Sorted global ids of the segments containing the object. *)

val segments_of_type : t -> string -> int array
(** Segments containing at least one object of exactly this type. *)

val segments_of_relationship : t -> string -> int array
(** Segments storing at least one relationship with this name. *)

val segments_with_objects : t -> int array
(** Segments containing at least one object. *)

val segments_with_seg_attr : t -> string -> int array
(** Segments where the segment attribute is defined. *)

val segments_with_seg_attr_value : t -> string -> Metadata.Value.t -> int array
(** Segments where the segment attribute equals the value (under
    {!Metadata.Value.equal}'s Int/Float coercion).  Empty for NaN. *)

val segments_with_obj_attr : t -> string -> int array
(** Segments where some object defines the attribute.  The virtual
    attributes "type" and "id" of {!Metadata.Entity.attr} are indexed,
    so these two names cover every segment with objects. *)

val segments_with_obj_attr_value : t -> string -> Metadata.Value.t -> int array
(** Segments where some object's attribute equals the value. *)

val seg_attr_points : t -> string -> points
(** Every value the segment attribute takes across the level. *)

val obj_attr_points : t -> string -> oid:int -> points
(** Every value the attribute takes on this object across the level. *)

val objects_at_level : t -> int list
(** Sorted universal object ids present in at least one segment. *)

val types_at_level : t -> string list
(** Sorted object types present in at least one segment. *)

val level : t -> int
val segment_count : t -> int

(** {1 Serialization view}

    Snapshots (Storage.Snapshot) persist finalized indexes.  A {!dump}
    flattens every hashtable into a sorted association list so the same
    index always serializes to the same bytes; {!undump} rebuilds the
    tables.  Posting arrays are shared between the index and its dump —
    both treat them as immutable. *)

type vkey = Knum of float | Kstr of string | Kbool of bool
(** Posting key for attribute values: Int/Float coerce onto [Knum]
    (-0. folds onto 0.), NaN is never stored. *)

type dump = {
  d_level : int;
  d_segments : int;
  d_by_object : (int * int array) list;
  d_by_type : (string * int array) list;
  d_by_relationship : (string * int array) list;
  d_with_objects : int array;
  d_by_seg_attr : (string * int array) list;
  d_by_seg_attr_value : ((string * vkey) * int array) list;
  d_by_obj_attr : (string * int array) list;
  d_by_obj_attr_value : ((string * vkey) * int array) list;
  d_seg_points : (string * points) list;
  d_obj_points : ((string * int) * points) list;
  d_objects : int list;
  d_types : string list;
}

val dump : t -> dump
(** Deterministic: association lists sorted by key. *)

val undump : dump -> t

(** A per-context cache of finalized indexes, keyed by level and stamped
    with {!Video_model.Store.version} — the same stamp [Engine.Cache]
    uses, so any store mutation invalidates both.  Thread-safe: one
    mutex serializes lookups and builds, giving build-once semantics
    under the domain pool. *)
module Registry : sig
  type index = t
  type t

  val create : unit -> t

  val get :
    t -> ?metrics:Obs.Metrics.t -> Video_model.Store.t -> level:int -> index
  (** The cached index for the store's current version, building it on
      first use.  On a version mismatch the registry replays the store's
      change log: an edit drops only its own level (rebuilt on next
      demand); a cached level that gained segments is extended by a
      {!build_delta}/{!merge} pair ([picture.index.delta_merges], with
      [picture.index.builds] staying flat); past the log horizon every
      level is dropped.  Bumps [picture.index.registry_hits] on a
      hit. *)

  val preload : t -> version:int -> index list -> unit
  (** Replace the registry's contents with already-finalized indexes
      (keyed by their own level) stamped with [version] — snapshot
      restore, so the first query after a load is a registry hit, not a
      rebuild. *)
end
