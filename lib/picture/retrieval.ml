open Htl.Ast
module Store = Video_model.Store
module Seg_meta = Metadata.Seg_meta
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table
module Range = Simlist.Range

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type config = {
  taxonomy : Taxonomy.t;
  weights : Weights.t;
  max_rows : int;
  prune : bool;
}

let default_config =
  {
    taxonomy = Taxonomy.default;
    weights = Weights.default;
    max_rows = 20_000;
    prune = true;
  }

(* Evaluation environments: an object variable bound to [None] is a
   wildcard — it stands for any object that appears nowhere in the data,
   so every condition involving it scores 0.  An attribute variable bound
   to [None] had an undefined attribute function frozen into it. *)
type env = {
  objs : (string * int option) list;
  attrs : (string * Metadata.Value.t option) list;
}



let obj_binding env x =
  match List.assoc_opt x env.objs with Some b -> b | None -> None

let rec validate = function
  | Atom _ -> ()
  | And (f, g) -> validate f; validate g
  | Exists (_, f) | Freeze { body = f; _ } -> validate f
  | Or _ -> unsupported "disjunction has no similarity semantics (§2.5)"
  | Not _ -> unsupported "negation has no similarity semantics (§2.5)"
  | Next _ | Until _ | Eventually _ ->
      unsupported "temporal operator inside an atomic formula"
  | At_level _ -> unsupported "level operator inside an atomic formula"

(* --- scoring ---------------------------------------------------------- *)

let eval_term store ~level ~env ~id = function
  | Const v -> Some v
  | Attr_var y -> (
      match List.assoc_opt y env.attrs with
      | Some v -> v
      | None -> unsupported "unbound attribute variable %s" y)
  | Obj_attr (q, x) -> (
      match obj_binding env x with
      | Some oid -> Seg_meta.object_attr (Store.meta store ~level ~id) oid q
      | None -> None)
  | Seg_attr q -> Seg_meta.attr (Store.meta store ~level ~id) q

(* [type(x) = "T"] (either way round) gets taxonomy-graded credit. *)
let type_query cmp t1 t2 =
  match (cmp, t1, t2) with
  | Eq, Obj_attr ("type", x), Const (Metadata.Value.Str t)
  | Eq, Const (Metadata.Value.Str t), Obj_attr ("type", x) ->
      Some (x, t)
  | _, _, _ -> None

let credit cfg store ~level ~env ~id atom =
  let meta () = Store.meta store ~level ~id in
  match atom with
  | True -> 1.
  | False -> 0.
  | Present x -> (
      match obj_binding env x with
      | Some oid when Seg_meta.present (meta ()) oid -> 1.
      | Some _ | None -> 0.)
  | Rel (r, args) ->
      let ids = List.filter_map (obj_binding env) args in
      if List.length ids = List.length args && Spatial.holds (meta ()) r ids
      then 1.
      else 0.
  | Cmp (cmp, t1, t2) -> (
      match type_query cmp t1 t2 with
      | Some (x, asked) -> (
          match obj_binding env x with
          | Some oid -> (
              match Seg_meta.find_object (meta ()) oid with
              | Some o ->
                  Taxonomy.similarity cfg.taxonomy ~asked
                    ~found:o.Metadata.Entity.otype
              | None -> 0.)
          | None -> 0.)
      | None -> (
          match
            ( eval_term store ~level ~env ~id t1,
              eval_term store ~level ~env ~id t2 )
          with
          | Some v1, Some v2 -> if Htl.Exact.eval_cmp cmp v1 v2 then 1. else 0.
          | _, _ -> 0.))

let rec score cfg store ~level ~env ~id = function
  | Atom a -> Weights.atom_weight cfg.weights a *. credit cfg store ~level ~env ~id a
  | And (f, g) ->
      score cfg store ~level ~env ~id f +. score cfg store ~level ~env ~id g
  | Exists (x, body) ->
      (* best local witness; the wildcard covers objects absent here *)
      let meta = Store.meta store ~level ~id in
      let options =
        None
        :: List.map
             (fun (o : Metadata.Entity.t) -> Some o.id)
             meta.Seg_meta.objects
      in
      List.fold_left
        (fun acc c ->
          Float.max acc
            (score cfg store ~level
               ~env:{ env with objs = (x, c) :: env.objs }
               ~id body))
        0. options
  | Freeze { var; attr; obj; body } -> (
      let meta = Store.meta store ~level ~id in
      let value =
        match obj with
        | Some x ->
            Option.bind (obj_binding env x) (fun oid ->
                Seg_meta.object_attr meta oid attr)
        | None -> Seg_meta.attr meta attr
      in
      (* an undefined attribute function fails the freeze (§3.3: the
         value table offers no row) *)
      match value with
      | None -> 0.
      | Some _ ->
          score cfg store ~level
            ~env:{ env with attrs = (var, value) :: env.attrs }
            ~id body)
  | (Or _ | Not _ | Next _ | Until _ | Eventually _ | At_level _) as f ->
      unsupported "cannot score %s" (Htl.Pretty.to_string f)

(* --- attribute-variable regions ---------------------------------------- *)

(* Collect the comparisons constraining the free attribute variable [y]
   as [(cmp, other-term)] pairs, normalised with [y] on the left.
   Scope-aware: a freeze re-binding [y] shadows it; other-term may not
   depend on inner-quantified object variables (the satisfying region
   would then not be a plain range). *)
let y_atoms f y =
  let flip = function
    | Lt -> Gt
    | Le -> Ge
    | Gt -> Lt
    | Ge -> Le
    | (Eq | Ne) as c -> c
  in
  let check_other ~local t =
    (match t with
    | Attr_var _ ->
        unsupported "comparison between two attribute variables (§3.3)"
    | Const _ | Obj_attr _ | Seg_attr _ -> ());
    (match t with
    | Obj_attr (_, x) when List.mem x local ->
        unsupported
          "attribute-variable comparison depends on an inner existential"
    | _ -> ());
    t
  in
  let rec go ~local acc = function
    | Atom (Cmp (c, Attr_var v, t)) when v = y ->
        (c, check_other ~local t) :: acc
    | Atom (Cmp (c, t, Attr_var v)) when v = y ->
        (flip c, check_other ~local t) :: acc
    | Atom _ -> acc
    | And (f, g) -> go ~local (go ~local acc f) g
    | Exists (x, f) -> go ~local:(x :: local) acc f
    | Freeze { var; body = _; _ } when var = y -> acc (* shadowed *)
    | Freeze { body; _ } -> go ~local acc body
    | Or (f, g) | Until (f, g) -> go ~local (go ~local acc f) g
    | Not f | Next f | Eventually f | At_level (_, f) -> go ~local acc f
  in
  go ~local:[] [] f

let merge_sorted_unique xs ys =
  let rec go xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | x :: xtl, y :: ytl ->
        if x < y then x :: go xtl ys
        else if y < x then y :: go xs ytl
        else x :: go xtl ytl
  in
  go xs ys

(* The elementary regions of [y] under a fixed object binding: ranges on
   which every comparison's truth is constant, each with a representative
   value used to evaluate the formula on that region.  The value points
   come from the finalized index (sorted and deduplicated at build time),
   not from a per-evaluation store scan. *)
let regions idx ~env_objs f y =
  let atoms = y_atoms f y in
  let n = Index.segment_count idx in
  let raise_bad = function
    | `Float ->
        unsupported "frozen attribute variables must range over integers (§3.3)"
    | `Bool -> unsupported "frozen attribute variables cannot be boolean"
  in
  let add_points (ints, strs) (p : Index.points) =
    (match p.Index.bad with Some b -> raise_bad b | None -> ());
    ( merge_sorted_unique p.Index.ints ints,
      merge_sorted_unique p.Index.strs strs )
  in
  let add (ints, strs) (_, t) =
    match t with
    | Const v ->
        if n = 0 then (ints, strs)
        else (
          match v with
          | Metadata.Value.Int k -> (merge_sorted_unique [ k ] ints, strs)
          | Metadata.Value.Str s -> (ints, merge_sorted_unique [ s ] strs)
          | Metadata.Value.Float _ -> raise_bad `Float
          | Metadata.Value.Bool _ -> raise_bad `Bool)
    | Attr_var _ -> (ints, strs) (* rejected by [y_atoms] *)
    | Obj_attr (q, x) -> (
        match List.assoc_opt x env_objs with
        | Some (Some oid) ->
            add_points (ints, strs) (Index.obj_attr_points idx q ~oid)
        | Some None | None -> (ints, strs))
    | Seg_attr q -> add_points (ints, strs) (Index.seg_attr_points idx q)
  in
  let int_points, str_points = List.fold_left add ([], []) atoms in
  match (int_points, str_points) with
  | [], [] -> [ (Range.full_int, Metadata.Value.Int 0) ]
  | _ :: _, _ :: _ ->
      unsupported "attribute variable compared with both integers and strings"
  | [], strs ->
      (Range.full_str, Metadata.Value.Str "\000<other>")
      :: List.map (fun s -> (Range.str_eq s, Metadata.Value.Str s)) strs
  | (first :: _ as points), [] ->
      let last = List.nth points (List.length points - 1) in
      let middle =
        let rec go = function
          | a :: (b :: _ as tl) ->
              let point = (Range.int_eq a, Metadata.Value.Int a) in
              if b > a + 1 then
                point
                :: (Range.int_between (a + 1) (b - 1), Metadata.Value.Int (a + 1))
                :: go tl
              else point :: go tl
          | [ a ] -> [ (Range.int_eq a, Metadata.Value.Int a) ]
          | [] -> []
        in
        go points
      in
      ((Range.int_le (first - 1), Metadata.Value.Int (first - 1)) :: middle)
      @ [ (Range.int_ge (last + 1), Metadata.Value.Int (last + 1)) ]

(* --- table construction ------------------------------------------------ *)

let cartesian options_per_var =
  List.fold_right
    (fun options acc ->
      List.concat_map (fun o -> List.map (fun rest -> o :: rest) acc) options)
    options_per_var [ [] ]

let eval ?(config = default_config) ?pool ?tracer ?metrics ?stats ?index store
    ~level f =
  validate f;
  let max_total = Weights.total config.weights f in
  let obj_vars = free_obj_vars f in
  let attr_vars = free_attr_vars f in
  let idx =
    match index with
    | Some idx ->
        if Index.level idx <> level then
          invalid_arg "Picture.Retrieval.eval: index level mismatch";
        idx
    | None -> Index.build ?metrics store ~level
  in
  let n = Index.segment_count idx in
  let support = Index.objects_at_level idx in
  (* segments scanned, per level: one count per segment scored (full
     scans, pruned scans and candidate rescans alike) *)
  let scanned k =
    match metrics with
    | Some m ->
        Obs.Metrics.incr m ~by:k
          (Printf.sprintf "picture.segments_scanned.l%d" level)
    | None -> ()
  in
  (* Candidate pruning: a static plan over the index's posting families
     covering every segment where the formula can score nonzero.  [None]
     means the plan degenerated to the whole level — keep the plain
     scan.  The plan only depends on the formula shape (attribute
     variables are value-independent), so one candidate array serves
     every region combination's base scan. *)
  let pruned =
    if config.prune then
      Pruning.candidates ~taxonomy:config.taxonomy idx (Pruning.plan f)
    else None
  in
  (* observed selectivity: what fraction of the level the pruning pass
     actually left for this atom — a full scan records candidates = n,
     so selectivity 1 means "the index bought nothing here".  Fed on
     every evaluation, this is the planner's index-vs-scan signal. *)
  (match stats with
  | Some st when n > 0 ->
      let candidates =
        match pruned with Some c -> Array.length c | None -> n
      in
      Obs.Stats.record_atom st ~atom:(Htl.Pretty.to_string f) ~level
        ~candidates ~segments:n
  | Some _ | None -> ());
  let combo_count =
    Float.pow (float_of_int (1 + List.length support))
      (float_of_int (List.length obj_vars))
  in
  if combo_count > float_of_int config.max_rows then
    unsupported "too many candidate evaluations (%d objects, %d variables)"
      (List.length support) (List.length obj_vars);
  let option_lists =
    List.map
      (fun x -> List.map (fun o -> (x, o)) (None :: List.map Option.some support))
      obj_vars
  in
  let combos = cartesian option_lists in
  (* per-region base lists (all object variables wildcarded) are shared
     by every binding; cache them by representative values *)
  let base_cache : (Metadata.Value.t option list, float array) Hashtbl.t =
    Hashtbl.create 8
  in
  (* Scoring reads the store, taxonomy and weights only, so a segment
     scan chunks across the pool freely; candidate rescans write disjoint
     slots of a private copy. *)
  let rescore_into arr ~env ~(candidates : int array) =
    let rescore id = arr.(id - 1) <- score config store ~level ~env ~id f in
    (match pool with
    | Some p ->
        Parallel.Pool.iter_chunks p (Array.length candidates) (fun ~lo ~hi ->
            for k = lo to hi do
              rescore candidates.(k)
            done)
    | None -> Array.iter rescore candidates);
    arr
  in
  let score_all ~env_objs ~attrs ~only =
    let env = { objs = env_objs; attrs } in
    match only with
    | None -> (
        match pruned with
        | Some candidates ->
            scanned (Array.length candidates);
            (match metrics with
            | Some m ->
                Obs.Metrics.incr m
                  ~by:(Array.length candidates)
                  "picture.index.candidates";
                Obs.Metrics.incr m
                  ~by:(n - Array.length candidates)
                  "picture.index.pruned_segments"
            | None -> ());
            rescore_into (Array.make n 0.) ~env ~candidates
        | None -> (
            scanned n;
            let cell i = score config store ~level ~env ~id:(i + 1) f in
            match pool with
            | Some p -> Parallel.Pool.parallel_init p n cell
            | None -> Array.init n cell))
    | Some (base, candidates) ->
        scanned (Array.length candidates);
        rescore_into (Array.copy base) ~env ~candidates
  in
  let span_of f =
    match tracer with
    | None -> f ()
    | Some tr ->
        Obs.Trace.with_span tr "picture.eval"
          ~attrs:
            [
              ("level", string_of_int level);
              ("segments", string_of_int n);
              ("combos", string_of_int (List.length combos));
              ( "pruning",
                match pruned with
                | Some c -> string_of_int (Array.length c)
                | None -> "full" );
            ]
          f
  in
  span_of @@ fun () ->
  let rows = ref [] and row_count = ref 0 in
  List.iter
    (fun combo ->
      let bound = List.filter_map (fun (x, o) -> Option.map (fun o -> (x, o)) o) combo in
      let region_sets =
        List.map (fun y -> regions idx ~env_objs:combo f y) attr_vars
      in
      let region_combos = cartesian region_sets in
      List.iter
        (fun rc ->
          incr row_count;
          if !row_count > config.max_rows then
            unsupported "similarity table exceeds %d rows" config.max_rows;
          let attrs =
            List.map2 (fun y (_, rep) -> (y, Some rep)) attr_vars rc
          in
          let reps = List.map snd attrs in
          let base =
            match Hashtbl.find_opt base_cache reps with
            | Some b -> b
            | None ->
                let b =
                  score_all
                    ~env_objs:(List.map (fun (x, _) -> (x, None)) combo)
                    ~attrs ~only:None
                in
                Hashtbl.add base_cache reps b;
                b
          in
          let dense =
            if bound = [] then base
            else
              let candidates =
                List.fold_left
                  (fun acc (_, oid) ->
                    Pruning.union acc (Index.segments_of_object idx oid))
                  [||] bound
              in
              score_all ~env_objs:combo ~attrs ~only:(Some (base, candidates))
          in
          (* a bound row indistinguishable from the wildcard row is
             subsumed by it *)
          let redundant = bound <> [] && dense = base in
          if not redundant then begin
            let list = Sim_list.of_dense ~max:max_total dense in
            (* empty rows still matter when they carry a range (they mark
               region coverage for later joins) *)
            if attr_vars <> [] || not (Sim_list.is_empty list) then
              rows :=
                {
                  Sim_table.objs = List.sort compare bound;
                  attrs =
                    List.map2 (fun y (range, _) -> (y, range)) attr_vars rc;
                  list;
                }
                :: !rows
          end)
        region_combos)
    combos;
  Sim_table.create ~obj_cols:obj_vars ~attr_cols:attr_vars ~max:max_total
    (List.rev !rows)

let score_at ?(config = default_config) ?(attrs = []) store ~level ~id ~env f =
  validate f;
  score config store ~level
    ~env:{ objs = List.map (fun (x, o) -> (x, Some o)) env; attrs }
    ~id f

let max_similarity ?(config = default_config) f = Weights.total config.weights f
