module Value = Metadata.Value

(* ---- sorted int array set operations ---- *)

(* First position in a.[lo..hi) whose value is >= x. *)
let lower_bound (a : int array) ~lo ~hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Galloping search: double the probe distance from [from] until the
   value at the probe is >= x, then binary-search the bracketed range.
   O(log d) where d is the distance to the answer, so intersecting a
   small array against a large one costs O(small * log large) total. *)
let gallop (a : int array) ~from x =
  let n = Array.length a in
  if from >= n || a.(from) >= x then from
  else begin
    let step = ref 1 in
    let prev = ref from in
    let probe = ref (from + 1) in
    while !probe < n && a.(!probe) < x do
      prev := !probe;
      step := !step * 2;
      probe := !probe + !step
    done;
    lower_bound a ~lo:(!prev + 1) ~hi:(min !probe n) x
  end

let intersect a b =
  let a, b = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let la = Array.length a in
  if la = 0 || Array.length b = 0 then [||]
  else begin
    let out = Array.make la 0 in
    let k = ref 0 in
    let j = ref 0 in
    for i = 0 to la - 1 do
      let x = a.(i) in
      j := gallop b ~from:!j x;
      if !j < Array.length b && b.(!j) = x then begin
        out.(!k) <- x;
        incr k;
        incr j
      end
    done;
    Array.sub out 0 !k
  end

let union a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0 in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    let push x =
      if !k = 0 || out.(!k - 1) <> x then begin
        out.(!k) <- x;
        incr k
      end
    in
    while !i < la && !j < lb do
      if a.(!i) < b.(!j) then begin
        push a.(!i);
        incr i
      end
      else if a.(!i) > b.(!j) then begin
        push b.(!j);
        incr j
      end
      else begin
        push a.(!i);
        incr i;
        incr j
      end
    done;
    while !i < la do
      push a.(!i);
      incr i
    done;
    while !j < lb do
      push b.(!j);
      incr j
    done;
    if !k = la + lb then out else Array.sub out 0 !k
  end

(* ---- static candidate plans ---- *)

type plan =
  | All
  | Empty
  | Objects
  | Rel of string
  | Type_compat of string
  | Seg_attr_def of string
  | Seg_attr_eq of string * Value.t
  | Obj_attr_def of string
  | Obj_attr_eq of string * Value.t
  | Union of plan * plan
  | Inter of plan * plan

let union_plan a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Empty, p | p, Empty -> p
  | a, b -> Union (a, b)

let inter_plan a b =
  match (a, b) with
  | All, p | p, All -> p
  | Empty, _ | _, Empty -> Empty
  | a, b -> Inter (a, b)

(* The planner mirrors [Retrieval.score]'s zero cases.  A plan for [f]
   must cover the nonzero support {id | score f id <> 0}: under the
   weighted-sum semantics And takes the union of its children (partial
   credit — a segment matching either conjunct scores nonzero), Exists
   maxes over witnesses so its body is planned with the variable bound
   ([`Local]), and a free/unscoped object variable ([`Wild]) makes the
   atom score 0 everywhere.  Support only shrinks when a variable goes
   from Local to Wild and plans compose monotonically, so planning with
   the binder list is sound for every witness choice. *)

let local locals x = List.mem x locals

let term_defined ~locals = function
  | Htl.Ast.Const _ | Htl.Ast.Attr_var _ -> All
  | Htl.Ast.Seg_attr q -> Seg_attr_def q
  | Htl.Ast.Obj_attr (q, x) -> if local locals x then Obj_attr_def q else Empty

let cmp_plan ~locals cmp t1 t2 =
  match (cmp, t1, t2) with
  (* type queries get taxonomy-graded credit, not exact equality *)
  | Htl.Ast.Eq, Htl.Ast.Obj_attr ("type", x), Htl.Ast.Const (Value.Str t)
  | Htl.Ast.Eq, Htl.Ast.Const (Value.Str t), Htl.Ast.Obj_attr ("type", x) ->
      if local locals x then Type_compat t else Empty
  | _ -> (
      match (t1, t2) with
      | Htl.Ast.Const v1, Htl.Ast.Const v2 ->
          if Htl.Exact.eval_cmp cmp v1 v2 then All else Empty
      | _ -> (
          let default () =
            inter_plan (term_defined ~locals t1) (term_defined ~locals t2)
          in
          match (cmp, t1, t2) with
          | Htl.Ast.Eq, Htl.Ast.Const v, t | Htl.Ast.Eq, t, Htl.Ast.Const v
            -> (
              match t with
              | Htl.Ast.Seg_attr q -> Seg_attr_eq (q, v)
              | Htl.Ast.Obj_attr (q, x) ->
                  if local locals x then Obj_attr_eq (q, v) else Empty
              | Htl.Ast.Const _ | Htl.Ast.Attr_var _ -> default ())
          | _ -> default ()))

let atom_plan ~locals = function
  | Htl.Ast.True -> All
  | Htl.Ast.False -> Empty
  | Htl.Ast.Present x -> if local locals x then Objects else Empty
  | Htl.Ast.Rel (r, args) ->
      if List.exists (fun x -> not (local locals x)) args then Empty
      else if List.length args = 2 && List.mem r Spatial.derived then
        (* a derivable binary relation also holds wherever both objects
           carry bounding boxes, so the stored postings alone are not a
           cover — widen to every segment with objects *)
        union_plan (Rel r) Objects
      else Rel r
  | Htl.Ast.Cmp (cmp, t1, t2) -> cmp_plan ~locals cmp t1 t2

let rec plan_of ~locals = function
  | Htl.Ast.Atom a -> atom_plan ~locals a
  | Htl.Ast.And (f, g) -> union_plan (plan_of ~locals f) (plan_of ~locals g)
  | Htl.Ast.Exists (x, f) -> plan_of ~locals:(x :: locals) f
  | Htl.Ast.Freeze { var = _; attr; obj; body } ->
      let defined =
        match obj with
        | None -> Seg_attr_def attr
        | Some x -> if local locals x then Obj_attr_def attr else Empty
      in
      inter_plan defined (plan_of ~locals body)
  (* [Retrieval.validate] rejects the rest; All keeps the plan sound. *)
  | Htl.Ast.Or _ | Htl.Ast.Not _ | Htl.Ast.Next _ | Htl.Ast.Until _
  | Htl.Ast.Eventually _ | Htl.Ast.At_level _ ->
      All

let plan f = plan_of ~locals:[] f
let plan_under ~locals f = plan_of ~locals f
let is_all = function All -> true | _ -> false

let rec eval ~taxonomy idx = function
  | All ->
      (* callers guard on [is_all]; materialize honestly if they don't *)
      Array.init (Index.segment_count idx) (fun i -> i + 1)
  | Empty -> [||]
  | Objects -> Index.segments_with_objects idx
  | Rel r -> Index.segments_of_relationship idx r
  | Type_compat t ->
      List.fold_left
        (fun acc found ->
          if Taxonomy.similarity taxonomy ~asked:t ~found > 0. then
            union acc (Index.segments_of_type idx found)
          else acc)
        [||] (Index.types_at_level idx)
  | Seg_attr_def q -> Index.segments_with_seg_attr idx q
  | Seg_attr_eq (q, v) -> Index.segments_with_seg_attr_value idx q v
  | Obj_attr_def q -> Index.segments_with_obj_attr idx q
  | Obj_attr_eq (q, v) -> Index.segments_with_obj_attr_value idx q v
  | Union (a, b) -> union (eval ~taxonomy idx a) (eval ~taxonomy idx b)
  | Inter (a, b) -> intersect (eval ~taxonomy idx a) (eval ~taxonomy idx b)

let candidates ~taxonomy idx p =
  if is_all p then None else Some (eval ~taxonomy idx p)

(* Cardinality upper bound for a plan without materializing it: leaves
   read posting-list lengths, Inter can keep at most its smaller side,
   Union at most the sum (capped at the level size).  Sound against
   [eval] because every bound over-approximates the set it mirrors. *)
let estimate ~taxonomy idx p =
  let n = Index.segment_count idx in
  let rec go = function
    | All -> n
    | Empty -> 0
    | Objects -> Array.length (Index.segments_with_objects idx)
    | Rel r -> Array.length (Index.segments_of_relationship idx r)
    | Type_compat t ->
        List.fold_left
          (fun acc found ->
            if Taxonomy.similarity taxonomy ~asked:t ~found > 0. then
              acc + Array.length (Index.segments_of_type idx found)
            else acc)
          0 (Index.types_at_level idx)
        |> min n
    | Seg_attr_def q -> Array.length (Index.segments_with_seg_attr idx q)
    | Seg_attr_eq (q, v) ->
        Array.length (Index.segments_with_seg_attr_value idx q v)
    | Obj_attr_def q -> Array.length (Index.segments_with_obj_attr idx q)
    | Obj_attr_eq (q, v) ->
        Array.length (Index.segments_with_obj_attr_value idx q v)
    | Union (a, b) -> min n (go a + go b)
    | Inter (a, b) -> min (go a) (go b)
  in
  go p

let rec describe_plan = function
  | All -> "all"
  | Empty -> "none"
  | Objects -> "objects"
  | Rel r -> "rel:" ^ r
  | Type_compat t -> "type~" ^ t
  | Seg_attr_def q -> "seg." ^ q
  | Seg_attr_eq (q, v) -> Printf.sprintf "seg.%s=%s" q (Value.to_string v)
  | Obj_attr_def q -> "attr:" ^ q
  | Obj_attr_eq (q, v) -> Printf.sprintf "%s=%s" q (Value.to_string v)
  | Union (a, b) -> Printf.sprintf "(%s | %s)" (describe_plan a) (describe_plan b)
  | Inter (a, b) -> Printf.sprintf "(%s & %s)" (describe_plan a) (describe_plan b)

let describe = function All -> None | p -> Some (describe_plan p)
