(** Similarity-based evaluation of atomic (non-temporal) HTL formulas —
    the reimplementation of the picture retrieval system the paper builds
    on ([27, 25, 2]).

    Given a non-temporal formula, produces the {!Simlist.Sim_table} the
    video algorithms of §3 consume: one row per relevant evaluation of
    the free object variables (plus one {e wildcard} row standing for
    every object not mentioned in the data — its bindings are simply
    absent), attribute-variable columns carrying satisfying ranges, and a
    similarity list over the segments of the chosen level.

    Scoring: the similarity of a formula at a segment is the weighted sum
    of its satisfied atomic conditions ({!Weights}); a type condition
    [type(x) = "T"] earns taxonomy-graded partial credit; inner
    existentials score the best local witness; the maximum similarity is
    the total weight. *)

exception Unsupported of string
(** Raised on formulas outside the supported fragment: temporal or level
    operators, negation/disjunction, comparisons between two attribute
    variables, non-integer/non-string frozen values, or row blow-up past
    [max_rows]. *)

type config = {
  taxonomy : Taxonomy.t;
  weights : Weights.t;
  max_rows : int;  (** evaluation-enumeration safety cap *)
  prune : bool;
      (** when true (the default), base scans restrict to the candidate
          segments of a {!Pruning} plan whenever the formula provably
          scores 0 elsewhere; false forces full scans (the [--no-index]
          debugging mode) *)
}

val default_config : config

val eval :
  ?config:config ->
  ?pool:Parallel.Pool.t ->
  ?tracer:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?stats:Obs.Stats.t ->
  ?index:Index.t ->
  Video_model.Store.t ->
  level:int ->
  Htl.Ast.t ->
  Simlist.Sim_table.t
(** Evaluate a non-temporal formula over all segments of [level].
    With [pool], the per-segment scoring scans (the dominant cost on
    large levels) chunk the segment range across the pool's domains;
    scoring only reads the store, so results are identical.  Callers
    decide the sequential cutoff — pass [pool] only when the level is
    big enough to be worth it (see {!Engine.Context.pool_for}).
    With [index], reuse a prebuilt index for this store and [level]
    (normally the context registry's — [Invalid_argument] on a level
    mismatch); otherwise one is built here.
    With [tracer], the scan records a ["picture.eval"] span (level,
    segment, combination and pruning counts); with [metrics], every
    scored segment counts toward the
    [picture.segments_scanned.l<level>] counter — full scans, pruned
    scans and candidate rescans alike — and pruned base scans record
    [picture.index.candidates] / [picture.index.pruned_segments].
    With [stats], every evaluation folds the atom's observed pruning
    selectivity (candidates ÷ level segments; 1 for a full scan) into
    {!Obs.Stats.record_atom}.
    @raise Unsupported as described above. *)

val score_at :
  ?config:config ->
  ?attrs:(string * Metadata.Value.t option) list ->
  Video_model.Store.t ->
  level:int ->
  id:int ->
  env:(string * int) list ->
  Htl.Ast.t ->
  float
(** Similarity of a closed-after-binding non-temporal formula at one
    segment — the one-picture scoring primitive (exposed for tests and
    the naive reference evaluator).  [attrs] supplies values for free
    attribute variables ([None] = the frozen attribute was undefined). *)

val max_similarity : ?config:config -> Htl.Ast.t -> float
(** Total weight of the formula. *)
