(** Candidate pruning for atomic evaluation.

    A non-temporal formula scores 0 on most segments of a large level —
    an object that is not there, a relationship never stored, an
    attribute undefined.  This module compiles the formula into a small
    static {!plan} over {!Index} posting families whose evaluation is a
    sorted candidate array covering the formula's {e nonzero support}:
    every segment where the similarity can be nonzero is a candidate
    (the converse need not hold — candidates may still score 0).
    {!Retrieval} then scores only the candidates and writes 0 elsewhere.

    Soundness under the weighted-sum semantics: a conjunction earns
    partial credit from either conjunct, so [And] maps to {e union};
    [Exists] maxes over witnesses, so its body is planned with the
    variable bound; a free or unscoped object variable zeroes every
    atom it appears in; taxonomy-graded type atoms widen to every type
    with positive similarity; derived spatial relations widen to every
    segment with objects (bounding boxes can satisfy them without a
    stored tuple).  Anything outside the fragment degenerates to the
    whole level ([describe] = [None]) and keeps the full scan. *)

type plan

val plan : Htl.Ast.t -> plan
(** Static analysis only — needs no index, usable for EXPLAIN. *)

val plan_under : locals:string list -> Htl.Ast.t -> plan
(** [plan] with object variables in [locals] treated as bound: the
    plan for a subformula under enclosing existential binders (the
    cost model plans each conjunct of a stripped quantifier chain
    this way).  [plan f = plan_under ~locals:[] f]. *)

val is_all : plan -> bool
(** The plan covers the whole level (no pruning possible). *)

val candidates : taxonomy:Taxonomy.t -> Index.t -> plan -> int array option
(** Evaluate the plan: [None] when it covers the whole level, otherwise
    the sorted candidate segment ids. *)

val estimate : taxonomy:Taxonomy.t -> Index.t -> plan -> int
(** Upper bound on [candidates] cardinality from posting-list lengths
    alone, without materializing any candidate array: intersections
    bound by their smaller side, unions by the capped sum.  The whole
    level ([is_all]) estimates to {!Index.segment_count}.  Cheap enough
    to run per query — this is the cost model's row-estimate source. *)

val describe : plan -> string option
(** Human-readable rendering for EXPLAIN ([None] when the plan is the
    whole level), e.g. ["(objects | rel:holds)"]. *)

val intersect : int array -> int array -> int array
(** Intersection of sorted duplicate-free arrays by galloping
    (doubling-probe + binary search) over the larger side:
    O(small · log large). *)

val union : int array -> int array -> int array
(** Linear merge of sorted duplicate-free arrays. *)
