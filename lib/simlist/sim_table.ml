type row = {
  objs : (string * int) list;
  attrs : (string * Range.t) list;
  list : Sim_list.t;
}

type t = {
  obj_cols : string list;
  attr_cols : string list;
  max : float;
  rows : row list;
  count : int;  (* = List.length rows, kept so row_count is O(1) *)
}

let sorted_strings l = List.sort_uniq String.compare l

let check_sorted_subset ~what bound cols =
  let rec sorted = function
    | a :: (b :: _ as tl) -> String.compare a b < 0 && sorted tl
    | [ _ ] | [] -> true
  in
  if not (sorted bound) then
    invalid_arg (Printf.sprintf "Sim_table: %s bindings must be sorted" what);
  List.iter
    (fun v ->
      if not (List.mem v cols) then
        invalid_arg
          (Printf.sprintf "Sim_table: %s binds undeclared variable %s" what v))
    bound

let create ~obj_cols ~attr_cols ~max rows =
  let obj_cols = sorted_strings obj_cols
  and attr_cols = sorted_strings attr_cols in
  List.iter
    (fun r ->
      check_sorted_subset ~what:"object" (List.map fst r.objs) obj_cols;
      check_sorted_subset ~what:"attribute" (List.map fst r.attrs) attr_cols;
      if Sim_list.max_sim r.list <> max then
        invalid_arg "Sim_table.create: row list max differs from table max")
    rows;
  { obj_cols; attr_cols; max; rows; count = List.length rows }

let of_sim_list list =
  {
    obj_cols = [];
    attr_cols = [];
    max = Sim_list.max_sim list;
    rows = [ { objs = []; attrs = []; list } ];
    count = 1;
  }

let obj_cols t = t.obj_cols
let attr_cols t = t.attr_cols
let max_sim t = t.max
let rows t = t.rows
let row_count t = t.count

(* Merge two sorted association lists; [combine] decides what happens when
   both bind a key ([None] aborts the whole unification). *)
let unify_assoc combine xs ys =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], rest | rest, [] -> Some (List.rev_append acc rest)
    | ((kx, vx) as x) :: xtl, ((ky, vy) as y) :: ytl ->
        let c = String.compare kx ky in
        if c < 0 then go xtl ys (x :: acc)
        else if c > 0 then go xs ytl (y :: acc)
        else
          Option.bind (combine vx vy) (fun v ->
              go xtl ytl ((kx, v) :: acc))
  in
  go xs ys []

let unify_objs = unify_assoc (fun a b -> if a = b then Some a else None)
let unify_attrs = unify_assoc Range.intersect

let try_join_rows combine ra rb =
  match unify_objs ra.objs rb.objs with
  | None -> None
  | Some objs -> (
      match unify_attrs ra.attrs rb.attrs with
      | None -> None
      | exception Invalid_argument _ -> None
      | Some attrs -> Some { objs; attrs; list = combine ra.list rb.list })

let join ~combine a b =
  let result_max =
    Sim_list.max_sim
      (combine (Sim_list.empty ~max:a.max) (Sim_list.empty ~max:b.max))
  in
  let shared_objs =
    List.filter (fun c -> List.mem c b.obj_cols) a.obj_cols
  in
  let binds_all r = List.for_all (fun c -> List.mem_assoc c r.objs) shared_objs in
  let use_hash =
    shared_objs <> []
    && List.for_all binds_all a.rows
    && List.for_all binds_all b.rows
  in
  let a_rows = Array.of_list a.rows and b_rows = Array.of_list b.rows in
  let a_matched = Array.make (Array.length a_rows) false
  and b_matched = Array.make (Array.length b_rows) false in
  let out = ref [] in
  (* a row with an empty list is only droppable when it carries no
     attribute ranges: a range row marks which part of the attribute
     space it covers, and losing it would let a later until-join treat
     the complement region as matched (see the freeze tests) *)
  let keep row = row.attrs <> [] || not (Sim_list.is_empty row.list) in
  let consider ia ib =
    match try_join_rows combine a_rows.(ia) b_rows.(ib) with
    | None -> ()
    | Some row ->
        a_matched.(ia) <- true;
        b_matched.(ib) <- true;
        if keep row then out := row :: !out
  in
  if use_hash then begin
    let key r = List.map (fun c -> List.assoc c r.objs) shared_objs in
    let index = Hashtbl.create (Array.length b_rows) in
    Array.iteri (fun ib rb -> Hashtbl.add index (key rb) ib) b_rows;
    Array.iteri
      (fun ia ra ->
        List.iter (fun ib -> consider ia ib) (Hashtbl.find_all index (key ra)))
      a_rows
  end
  else
    Array.iteri
      (fun ia _ ->
        Array.iteri (fun ib _ -> consider ia ib) b_rows)
      a_rows;
  (* pad unmatched rows with the other side's empty list: a conjunct that
     matches nothing still satisfies the formula partially (§2.5) *)
  let empty_a = Sim_list.empty ~max:a.max
  and empty_b = Sim_list.empty ~max:b.max in
  Array.iteri
    (fun ia ra ->
      if not a_matched.(ia) then begin
        let row = { ra with list = combine ra.list empty_b } in
        if keep row then out := row :: !out
      end)
    a_rows;
  Array.iteri
    (fun ib rb ->
      if not b_matched.(ib) then begin
        let row = { rb with list = combine empty_a rb.list } in
        if keep row then out := row :: !out
      end)
    b_rows;
  (* canonicalise: several row pairs can intersect to the same
     (binding, ranges) key — e.g. an empty region row against several
     overlapping partners — and without merging them the row count grows
     multiplicatively along a join chain *)
  let dedup rows =
    let groups = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun r ->
        let key = (r.objs, r.attrs) in
        match Hashtbl.find_opt groups key with
        | Some lists -> lists := r.list :: !lists
        | None ->
            Hashtbl.add groups key (ref [ r.list ]);
            order := (key, r) :: !order)
      rows;
    List.rev_map
      (fun ((key, r) : _ * row) ->
        match !(Hashtbl.find groups key) with
        | [ single ] -> { r with list = single }
        | lists -> { r with list = Sim_list.merge_max lists })
      !order
  in
  create
    ~obj_cols:(sorted_strings (a.obj_cols @ b.obj_cols))
    ~attr_cols:(sorted_strings (a.attr_cols @ b.attr_cols))
    ~max:result_max
    (dedup (List.rev !out))

let project_exists t =
  match t.rows with
  | [] -> Sim_list.empty ~max:t.max
  | rows -> Sim_list.merge_max (List.map (fun r -> r.list) rows)

let project_obj_var t var =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let objs = List.remove_assoc var r.objs in
      let key = (objs, r.attrs) in
      match Hashtbl.find_opt groups key with
      | Some lists -> lists := r.list :: !lists
      | None ->
          Hashtbl.add groups key (ref [ r.list ]);
          order := key :: !order)
    t.rows;
  let rows =
    List.rev_map
      (fun ((objs, attrs) as key) ->
        { objs; attrs; list = Sim_list.merge_max !(Hashtbl.find groups key) })
      !order
  in
  create
    ~obj_cols:(List.filter (fun c -> c <> var) t.obj_cols)
    ~attr_cols:t.attr_cols ~max:t.max rows

let freeze_join t ~var vt =
  let range_of r =
    match List.assoc_opt var r.attrs with
    | Some range -> range
    | None -> (
        (* unconstrained: any value matches *)
        match (Value_table.rows vt : Value_table.row list) with
        | { value = Range.Vint _; _ } :: _ -> Range.full_int
        | { value = Range.Vstr _; _ } :: _ -> Range.full_str
        | [] -> Range.full_int)
  in
  let out = ref [] in
  List.iter
    (fun row ->
      let range = range_of row in
      List.iter
        (fun (vrow : Value_table.row) ->
          if Range.mem vrow.value range then
            match unify_objs row.objs vrow.objs with
            | None -> ()
            | Some objs ->
                let list = Sim_list.restrict row.list vrow.spans in
                let attrs = List.remove_assoc var row.attrs in
                if attrs <> [] || not (Sim_list.is_empty list) then
                  out := { objs; attrs; list } :: !out)
        (Value_table.rows vt))
    t.rows;
  create
    ~obj_cols:(sorted_strings (t.obj_cols @ Value_table.obj_cols vt))
    ~attr_cols:(List.filter (fun c -> c <> var) t.attr_cols)
    ~max:t.max (List.rev !out)

let filter_rows f t =
  let rows = List.filter f t.rows in
  { t with rows; count = List.length rows }

let pp ppf t =
  let pp_row ppf r =
    Format.fprintf ppf "@[<h>{%a%a} %a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (k, v) ->
           Format.fprintf ppf "%s=%d" k v))
      r.objs
      (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (k, v) ->
           Format.fprintf ppf " %s in %a" k Range.pp v))
      r.attrs Sim_list.pp r.list
  in
  Format.fprintf ppf "@[<v>table objs=(%s) attrs=(%s) max=%g@,%a@]"
    (String.concat "," t.obj_cols)
    (String.concat "," t.attr_cols)
    t.max
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_row)
    t.rows
