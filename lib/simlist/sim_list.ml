type entry = Interval.t * float
type t = { max : float; entries : entry list }

let float_tolerance = 1e-9

(* Coalesce adjacent intervals carrying the same value; assumes sorted
   disjoint entries. *)
let coalesce entries =
  let rec go acc = function
    | [] -> List.rev acc
    | e :: tl -> (
        match acc with
        | (iv0, v0) :: acc_tl
          when v0 = snd e && Interval.adjacent iv0 (fst e) ->
            let merged =
              Interval.make (Interval.lo iv0) (Interval.hi (fst e))
            in
            go ((merged, v0) :: acc_tl) tl
        | _ -> go (e :: acc) tl)
  in
  go [] entries

let check_disjoint entries =
  let rec go = function
    | (iv1, _) :: ((iv2, _) :: _ as tl) ->
        if Interval.hi iv1 >= Interval.lo iv2 then
          invalid_arg
            (Printf.sprintf "Sim_list: overlapping intervals %s and %s"
               (Interval.to_string iv1) (Interval.to_string iv2));
        go tl
    | [ _ ] | [] -> ()
  in
  go entries

let of_entries ~max entries =
  if max < 0. then invalid_arg "Sim_list.of_entries: negative max";
  let entries = List.filter (fun (_, v) -> v > 0.) entries in
  let entries =
    List.sort (fun (a, _) (b, _) -> Interval.compare a b) entries
  in
  check_disjoint entries;
  let tolerance = float_tolerance *. Float.max 1. (Float.abs max) in
  let entries =
    List.map
      (fun (iv, v) ->
        if v > max +. tolerance then
          invalid_arg
            (Printf.sprintf "Sim_list.of_entries: actual %g exceeds max %g" v
               max);
        (iv, Float.min v max))
      entries
  in
  { max; entries = coalesce entries }

let empty ~max = of_entries ~max []
let entries t = t.entries
let max_sim t = t.max
(* O(n), but only reached from tests and bench reporting — every
   hot-path cardinality question goes through Sim_table.row_count,
   which is O(1). *)
let length t = List.length t.entries
let is_empty t = t.entries = []

let covered t =
  List.fold_left (fun n (iv, _) -> n + Interval.length iv) 0 t.entries

let value_at t id =
  let rec go = function
    | [] -> 0.
    | (iv, v) :: tl ->
        if id < Interval.lo iv then 0.
        else if id <= Interval.hi iv then v
        else go tl
  in
  go t.entries

let sim_at t id = Sim.make ~actual:(value_at t id) ~max:t.max
let fraction_at t id = if t.max = 0. then 0. else value_at t id /. t.max

let equal a b =
  a.max = b.max
  && List.equal
       (fun (i1, v1) (i2, v2) -> Interval.equal i1 i2 && v1 = v2)
       a.entries b.entries

let pp ppf t =
  let pp_entry ppf (iv, v) = Format.fprintf ppf "%a:%g" Interval.pp iv v in
  Format.fprintf ppf "@[<h>{max=%g;@ %a}@]" t.max
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_entry)
    t.entries

(* --- generic two-list sweep --------------------------------------- *)

(* The breakpoints of an entry list: each [lo] and [hi + 1], in order.
   Disjointness makes the resulting sequence non-decreasing. *)
let breakpoints entries =
  List.concat_map
    (fun (iv, _) -> [ Interval.lo iv; Interval.hi iv + 1 ])
    entries

let rec merge_sorted xs ys =
  match (xs, ys) with
  | [], l | l, [] -> l
  | x :: xtl, y :: ytl ->
      if x <= y then x :: merge_sorted xtl ys else y :: merge_sorted xs ytl

(* adjacent intervals produce duplicate breakpoints even within one list *)
let rec dedup = function
  | a :: (b :: _ as tl) when a = b -> dedup tl
  | a :: tl -> a :: dedup tl
  | [] -> []

let merge_unique xs ys = dedup (merge_sorted xs ys)

let rec drop_before p = function
  | (iv, _) :: tl when Interval.hi iv < p -> drop_before p tl
  | l -> l

let head_value p = function
  | (iv, v) :: _ when Interval.contains iv p -> v
  | _ -> 0.

(* Sweep the union of both breakpoint sets; [combine va vb] gives the
   output value on each elementary piece (0 values are dropped).
   [combine 0. 0.] must be <= 0 for the output to stay sparse. *)
let merge2 ~max combine la lb =
  let bps = merge_unique (breakpoints la) (breakpoints lb) in
  let rec go bps la lb acc =
    match bps with
    | [] | [ _ ] -> List.rev acc
    | p :: (q :: _ as rest) ->
        let la = drop_before p la and lb = drop_before p lb in
        let v = combine (head_value p la) (head_value p lb) in
        let acc =
          if v > 0. then (Interval.make p (q - 1), v) :: acc else acc
        in
        go rest la lb acc
  in
  of_entries ~max (go bps la lb [])

(* --- the paper's operations ---------------------------------------- *)

let conjunction a b = merge2 ~max:(a.max +. b.max) ( +. ) a.entries b.entries

type conj_mode = Weighted_sum | Min_fraction | Product_fraction

let conjunction_mode mode a b =
  match mode with
  | Weighted_sum -> conjunction a b
  | Min_fraction | Product_fraction ->
      let m = a.max +. b.max in
      let frac max v = if max = 0. then 1. else v /. max in
      let combine va vb =
        let f =
          match mode with
          | Min_fraction -> Float.min (frac a.max va) (frac b.max vb)
          | Product_fraction -> frac a.max va *. frac b.max vb
          | Weighted_sum -> assert false
        in
        f *. m
      in
      merge2 ~max:m combine a.entries b.entries

let conjunction_many = function
  | [] -> invalid_arg "Sim_list.conjunction_many: empty"
  | first :: rest -> List.fold_left conjunction first rest

let next_shift ~extents t =
  let entries = Extent.split_entries extents t.entries in
  let shifted =
    List.filter_map
      (fun (iv, v) ->
        let ext = Extent.containing extents (Interval.lo iv) in
        (* positions that see [iv] as their successor, within the same
           extent: ids [lo-1 .. hi-1] clipped to [ext.lo .. ext.hi - 1] *)
        if Interval.hi ext = Interval.lo ext then None
        else
          let window =
            Interval.make (Interval.lo ext) (Interval.hi ext - 1)
          in
          Option.map
            (fun iv' -> (iv', v))
            (Interval.clip (Interval.shift (-1) iv) ~within:window))
      entries
  in
  of_entries ~max:t.max shifted

(* Full piecewise-constant coverage of [window] by the (clipped, sorted,
   disjoint) entries, inserting explicit zero-valued gap pieces. *)
let pieces_within window entries =
  let lo = Interval.lo window and hi = Interval.hi window in
  let clipped =
    List.filter_map
      (fun (iv, v) ->
        Option.map (fun c -> (c, v)) (Interval.clip iv ~within:window))
      entries
  in
  let rec go pos = function
    | [] -> if pos <= hi then [ (Interval.make pos hi, 0.) ] else []
    | (iv, v) :: tl ->
        let gap =
          if pos < Interval.lo iv then
            [ (Interval.make pos (Interval.lo iv - 1), 0.) ]
          else []
        in
        gap @ ((iv, v) :: go (Interval.hi iv + 1) tl)
  in
  go lo clipped

(* Suffix maximum of the step function given by [entries] over [window]:
   at id [i] the result is the max value at any id in [[i, window.hi]].
   Constant on each piece, so compute right-to-left over the pieces. *)
let suffix_max_pieces window entries =
  let pieces = pieces_within window entries in
  let rec go = function
    | [] -> ([], 0.)
    | (iv, v) :: tl ->
        let rest, best_after = go tl in
        let best = Float.max v best_after in
        ((iv, best) :: rest, best)
  in
  fst (go pieces)

let default_threshold = 0.5

(* Distribute (already split) entries over the extent spans in one
   left-to-right pass: returns per-span entry lists, in span order. *)
let group_by_extent spans entries =
  let rec go spans entries acc =
    match spans with
    | [] -> List.rev acc
    | ext :: spans_tl ->
        let rec take l inside =
          match l with
          | ((iv, _) as e) :: tl when Interval.hi iv <= Interval.hi ext ->
              take tl (e :: inside)
          | _ -> (List.rev inside, l)
        in
        let inside, rest = take entries [] in
        go spans_tl rest ((ext, inside) :: acc)
  in
  go spans entries []

let until_merge ?(threshold = default_threshold) ~extents g h =
  let spans = Extent.spans extents in
  let g_groups = group_by_extent spans (Extent.split_entries extents g.entries)
  and h_groups =
    group_by_extent spans (Extent.split_entries extents h.entries)
  in
  let result_per_extent (ext, g_in) (_, h_in) =
    (* corridors: g ids at or above the threshold, coalesced *)
    let above =
      List.filter
        (fun (_, v) -> g.max > 0. && v /. g.max >= threshold)
        g_in
    in
    let corridors =
      List.map fst (coalesce (List.map (fun (iv, _) -> (iv, 1.)) above))
    in
    (* inside a corridor [b,e]: suffix max of h over [i, e+1].  Corridor
       windows are disjoint and increasing, so walk corridors and h
       entries in tandem (an h entry can span several windows and is then
       revisited, but each revisit is O(1) per window). *)
    let corridor_entries =
      let rec walk corridors h_entries acc =
        match corridors with
        | [] -> List.concat (List.rev acc)
        | corridor :: rest ->
            let window_hi = min (Interval.hi corridor + 1) (Interval.hi ext) in
            let window = Interval.make (Interval.lo corridor) window_hi in
            let rec drop = function
              | (iv, _) :: tl when Interval.hi iv < Interval.lo window ->
                  drop tl
              | l -> l
            in
            let h_entries = drop h_entries in
            let rec take l taken =
              match l with
              | ((iv, _) as e) :: tl
                when Interval.lo iv <= Interval.hi window ->
                  take tl (e :: taken)
              | _ -> List.rev taken
            in
            let inside = take h_entries [] in
            let sm = suffix_max_pieces window inside in
            let clipped =
              List.filter_map
                (fun (iv, v) ->
                  if v <= 0. then None
                  else
                    Option.map (fun c -> (c, v))
                      (Interval.clip iv ~within:corridor))
                sm
            in
            walk rest h_entries (clipped :: acc)
      in
      walk corridors h_in []
    in
    (* outside corridors: h at the id itself (u'' = u) *)
    let self_entries =
      List.filter_map
        (fun (iv, v) ->
          Option.map (fun c -> (c, v)) (Interval.clip iv ~within:ext))
        h_in
    in
    (merge2 ~max:h.max Float.max corridor_entries self_entries).entries
  in
  let all = List.concat (List.map2 result_per_extent g_groups h_groups) in
  of_entries ~max:h.max all

let eventually ~extents t =
  let spans = Extent.spans extents in
  let groups = group_by_extent spans (Extent.split_entries extents t.entries) in
  let per_extent (ext, within) =
    List.filter (fun (_, v) -> v > 0.) (suffix_max_pieces ext within)
  in
  of_entries ~max:t.max (List.concat_map per_extent groups)

let check_same_max = function
  | [] -> invalid_arg "Sim_list.merge_max: empty"
  | first :: rest ->
      List.iter
        (fun l ->
          if l.max <> first.max then
            invalid_arg "Sim_list.merge_max: differing maxima")
        rest;
      first.max

let max2 a b = merge2 ~max:a.max Float.max a.entries b.entries

let merge_max lists =
  let _ = check_same_max lists in
  let rec pairs = function
    | [] -> []
    | [ x ] -> [ x ]
    | a :: b :: tl -> max2 a b :: pairs tl
  in
  let rec go = function
    | [ x ] -> x
    | ls -> go (pairs ls)
  in
  go lists

let merge_max_pairwise lists =
  let _ = check_same_max lists in
  match lists with
  | [] -> assert false
  | first :: rest -> List.fold_left max2 first rest

let restrict t spans =
  let indicator = List.map (fun iv -> (iv, 1.)) spans in
  merge2 ~max:t.max
    (fun v ind -> if ind > 0. then v else 0.)
    t.entries indicator

let scale_max t ~max =
  of_entries ~max (List.map (fun (iv, v) -> (iv, v)) t.entries)

let to_dense ~n t =
  let a = Array.make n 0. in
  List.iter
    (fun (iv, v) ->
      for i = Interval.lo iv to min (Interval.hi iv) n do
        a.(i - 1) <- v
      done)
    t.entries;
  a

let of_dense ~max arr =
  let entries = ref [] in
  let n = Array.length arr in
  let i = ref 0 in
  while !i < n do
    let v = arr.(!i) in
    if v > 0. then begin
      let j = ref !i in
      while !j + 1 < n && arr.(!j + 1) = v do
        incr j
      done;
      entries := (Interval.make (!i + 1) (!j + 1), v) :: !entries;
      i := !j + 1
    end
    else incr i
  done;
  of_entries ~max (List.rev !entries)
