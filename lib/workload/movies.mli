(** Random movie generator: stores with arbitrary hierarchy shapes and
    random meta-data, used by stress and property tests (engine vs.
    naive-reference oracle). *)

val random_store :
  Rng.t ->
  ?videos:int ->
  ?levels:int ->
  ?branching:int ->
  ?object_pool:int ->
  unit ->
  Video_model.Store.t
(** [levels] >= 2 (default 2: video + shots); every internal node gets
    1..[branching] children; leaf segments carry 0..3 objects drawn from
    a pool of [object_pool] ids with random types/attributes, random
    relationships among co-present objects, and random segment
    attributes. *)

val random_meta : Rng.t -> object_pool:int -> Metadata.Seg_meta.t
(** One leaf segment's random meta-data, exactly as {!random_store}
    draws it — the unit streaming-ingestion tests and benches append. *)

val random_type1_formula : Rng.t -> depth:int -> Htl.Ast.t
(** A random type (1) formula whose atomic units are closed queries over
    {!random_store}-style meta-data. *)

val random_type2_formula : Rng.t -> depth:int -> Htl.Ast.t
(** A random prefix-quantified type (2) formula over one or two object
    variables. *)

val random_conjunctive_formula : Rng.t -> depth:int -> Htl.Ast.t
(** A random conjunctive formula: a prefix-quantified object variable
    whose [speed] attribute is frozen and compared across time. *)

val random_extended_formula :
  Rng.t -> depth:int -> max_level:int -> Htl.Ast.t
(** A random extended-conjunctive formula asserted at level 1: level
    modal operators (possibly nested) over type (1)/(2) bodies.
    [max_level] is the store's depth. *)
