(** Trace spans: where a query's time goes.

    A tracer records {e spans} — named, timed segments of work with
    parent/child nesting and string attributes.  Evaluation code holds a
    [Trace.t option]; [None] (the {e nil tracer}) is the zero-cost path:
    every instrumentation site is a single [match] that falls straight
    through to the work (see {!Engine.Context.with_span}).

    The recorder is thread-safe (one internal mutex, the Engine.Cache
    argument: a span records a subformula evaluation, so the lock is
    uncontended in practice).  Nesting is tracked per domain: spans
    started on a pool worker nest under that worker's open spans and root
    at its stack bottom; they do not inherit the submitting domain's
    span as parent.  Fan-out sites record their own ["pool.*"] spans on
    the submitting side, so the tree still shows where fan-outs happen. *)

type span = private {
  id : int;  (** 1-based, in start order *)
  parent : int;  (** 0 for roots *)
  name : string;
  start_s : float;
  mutable stop_s : float;  (** [nan] while open *)
  mutable attrs : (string * string) list;  (** reverse insertion order *)
}

type t

val create : ?trace_id:string -> unit -> t
(** [trace_id] tags the whole recorder with a request id (see
    {!Traceid}): exports and the {!pp_tree}/{!pp_summary} renderings
    lead with it, so span dumps join against query-log records by
    id.  Absent for ad-hoc tracers (the CLI's [--trace]). *)

val trace_id : t -> string option
val set_trace_id : t -> string -> unit

val start : t -> ?attrs:(string * string) list -> string -> span
(** Open a span as a child of the calling domain's innermost open span
    (a root if there is none). *)

val stop : t -> span -> unit
(** Close the span.  Idempotent on the timestamp; tolerates unbalanced
    stops (exception unwinds). *)

val with_span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [start], run, [stop] (also on exception). *)

val add_attr : t -> string -> string -> unit
(** Attach an attribute to the calling domain's innermost open span;
    no-op when none is open. *)

val spans : t -> span list
(** All recorded spans in start order. *)

val clear : t -> unit

val duration_s : span -> float option
(** [None] while the span is open. *)

val attr : span -> string -> string option

type summary_row = {
  sname : string;
  count : int;
  total_s : float;
  open_count : int;  (** how many of [count] were still open *)
}

val summarize : t -> summary_row list
(** Per-name count and total duration, largest total first.  A span
    still open when the summary is taken (a query aborted mid-span)
    contributes its elapsed time so far — [now - start] — and bumps the
    row's [open_count], so totals never silently deflate. *)

val pp_tree : Format.formatter -> t -> unit
(** Indented parent/child tree with durations and attributes, led by a
    [trace <id>] line when the recorder carries a trace id. *)

val pp_summary : Format.formatter -> t -> unit
(** The {!summarize} table, led by a [trace <id>] line when the
    recorder carries a trace id. *)
