(** The always-on statistics collector: aggregates the cost-based
    planner reads, updated lock-cheaply on {e every} request (sampled
    or not), unlike the threshold-gated {!Querylog} ring.

    Three families of aggregates:
    {ul
    {- per formula fingerprint — request/error counts, an EWMA of
       latency and windowed p50/p95/p99 from a fixed ring of recent
       samples;}
    {- per atomic formula and store level — observed pruning
       selectivity (index candidates ÷ level segments), the
       index-vs-scan signal;}
    {- per backend — request and error counts.}}

    The EWMA seeds at the first sample and then folds
    [ewma' = alpha·x + (1−alpha)·ewma]; quantiles use the nearest-rank
    convention of the bench harness.  Thread-safe (one internal mutex);
    memory is bounded by the number of distinct fingerprints/atoms,
    each O(window). *)

type t

val create : ?alpha:float -> ?window:int -> unit -> t
(** Defaults: [alpha = 0.2], [window = 64] recent samples per
    fingerprint.  @raise Invalid_argument when [alpha] is outside
    (0, 1] or [window < 1]. *)

val alpha : t -> float
val window : t -> int

val record_query :
  t ->
  fingerprint:int ->
  formula:(unit -> string) ->
  backend:string ->
  latency_s:float ->
  error:bool ->
  unit
(** Fold one request into the per-fingerprint and per-backend
    aggregates.  [formula] is a thunk, forced only the first time the
    fingerprint is seen. *)

val record_atom :
  t -> atom:string -> level:int -> candidates:int -> segments:int -> unit
(** Fold one atomic evaluation's pruning outcome: [candidates] index
    candidates out of [segments] segments at [level] (a full scan
    records [candidates = segments]).  No-op when [segments = 0]. *)

type query_row = {
  fingerprint : int;
  formula : string;
  count : int;
  errors : int;
  ewma_latency_s : float;
  p50_s : float;  (** nearest-rank over the retained window *)
  p95_s : float;
  p99_s : float;
  window_n : int;  (** samples currently in the window (≤ window) *)
}

type atom_row = {
  atom : string;
  level : int;
  evals : int;
  ewma_selectivity : float;
  candidates_total : int;
  segments_total : int;
}

type backend_row = { backend : string; requests : int; backend_errors : int }

val queries : t -> query_row list
(** Per-fingerprint rows, most-requested first. *)

val atoms : t -> atom_row list
(** Per-(atom, level) rows, most-evaluated first. *)

val backends : t -> backend_row list
(** Per-backend rows, sorted by name. *)

val ewma_latency_s : t -> fingerprint:int -> float option
(** Planner hook: the fingerprint's latency EWMA, [None] before any
    sample. *)

val selectivity : t -> level:int -> atom:string -> float option
(** Planner hook: the atom's observed-selectivity EWMA at a level. *)

val backend_latency_s : t -> fingerprint:int -> backend:string -> float option
(** Planner hook: the latency EWMA this fingerprint has shown on a
    specific backend ([None] before any sample) — the adaptive signal
    behind [backend:`Auto]. *)

val error_rate : t -> backend:string -> float option
(** Planner hook: the backend's error fraction. *)

val clear : t -> unit

val to_json : t -> Json.t
(** The [GET /stats] document: [queries], [atoms] and [backends] row
    arrays plus the collector's [alpha]/[window] configuration. *)
