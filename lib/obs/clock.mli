(** Time source for spans and queue-wait measurements. *)

val now : unit -> float
(** Seconds since the epoch, microsecond resolution.  See clock.ml for
    why this stands in for a monotonic clock. *)

val set_source : (unit -> float) -> unit
(** Substitute the time source — for tests that need deterministic
    timestamps (export goldens, slow-query-log thresholds).  Not
    synchronized; swap only while no spans are being recorded. *)

val use_wall_clock : unit -> unit
(** Restore the default [Unix.gettimeofday] source. *)
