(** Time source for spans and queue-wait measurements. *)

val now : unit -> float
(** Seconds since the epoch, microsecond resolution.  See clock.ml for
    why this stands in for a monotonic clock. *)
