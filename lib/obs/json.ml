(* A minimal JSON tree, shared by every telemetry emitter (Prometheus is
   text, everything else here is JSON): the Chrome-trace and JSONL span
   exports, the slow-query log, and the bench's BENCH_*.json reports.
   The parser exists for the consumers inside this repo — the bench
   regression gate reads committed baselines back, and the tests
   round-trip exported lines — so it accepts exactly RFC 8259, no
   extensions. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Obj of (string * t) list

(* --- escaping ----------------------------------------------------------- *)

(* RFC 8259 §7: quotation mark, reverse solidus and the C0 controls MUST
   be escaped; we use the short forms where they exist and \u00XX for
   the rest.  Bytes >= 0x20 pass through untouched (the string is
   assumed UTF-8, which OCaml strings carry as-is). *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest readable float that parses back to the same double.  JSON
   has no inf/nan; they cannot appear in our telemetry (durations and
   counters are finite), so map them to null rather than emit invalid
   output. *)
let float_token f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* --- serialization ------------------------------------------------------- *)

let rec write_compact b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (float_token f)
      else Buffer.add_string b "null"
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Array items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ", ";
          write_compact b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write_compact b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write_compact b v;
  Buffer.contents b

(* Pretty form for the committed BENCH_*.json baselines: containers get
   one element per line, except that an object of scalars stays on one
   line — a bench row reads (and diffs) as one record. *)
let is_scalar = function
  | Null | Bool _ | Int _ | Float _ | String _ -> true
  | Array _ | Obj _ -> false

let rec write_pretty b indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Obj fields when not (List.for_all (fun (_, v) -> is_scalar v) fields) ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write_pretty b (indent + 2) v)
        fields;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'
  | Array items when items <> [] && not (List.for_all is_scalar items) ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          write_pretty b (indent + 2) v)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | v -> write_compact b v

let to_string_pretty v =
  let b = Buffer.create 1024 in
  write_pretty b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty v))

(* --- parsing -------------------------------------------------------------- *)

exception Parse_error of string

let of_string src =
  let n = String.length src in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "expected %c, found %c" c c'
    | None -> error "expected %c, found end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let s = String.sub src !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some c -> c
    | None -> error "invalid \\u escape %S" s
  in
  let add_utf8 b cp =
    (* encode one scalar value; callers resolve surrogate pairs first *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'
          | Some '\\' -> advance (); Buffer.add_char b '\\'
          | Some '/' -> advance (); Buffer.add_char b '/'
          | Some 'b' -> advance (); Buffer.add_char b '\b'
          | Some 'f' -> advance (); Buffer.add_char b '\012'
          | Some 'n' -> advance (); Buffer.add_char b '\n'
          | Some 'r' -> advance (); Buffer.add_char b '\r'
          | Some 't' -> advance (); Buffer.add_char b '\t'
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < n && src.[!pos] = '\\' && src.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let low = hex4 () in
                  if low >= 0xDC00 && low <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
                  else error "invalid low surrogate"
                end
                else cp
              in
              add_utf8 b cp
          | Some c -> error "invalid escape \\%c" c
          | None -> error "unterminated escape");
          go ()
      | Some c when Char.code c < 0x20 -> error "unescaped control character"
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char src.[!pos] do
      advance ()
    done;
    let tok = String.sub src start (!pos - start) in
    let integral =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok)
    in
    if integral then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> error "invalid number %S" tok)
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error "invalid number %S" tok
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Array []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Array (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error "unexpected character %c" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage" else v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors (for the readers: regression gate, tests) ------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_list = function Array items -> items | _ -> []
