(** Completed request traces: a thread-safe bounded ring of frozen span
    trees keyed by trace id — what [GET /trace] lists and
    [GET /trace/<id>] renders as Chrome-trace JSON.

    A sampled (or retroactively-kept slow) request's per-request tracer
    lands here when the response is written; the ring overwrites oldest
    first, so retention is the most recent [capacity] traces. *)

type entry = {
  trace_id : string;
  time_s : float;  (** wall clock at request start *)
  latency_s : float;
  meth : string;
  target : string;
  status : int;
  spans : Trace.span list;  (** start order, frozen at retention *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 64 traces.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val add : t -> entry -> unit

val find : t -> string -> entry option
(** The {e newest} retained entry with this trace id. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val length : t -> int
(** Retained entries (≤ capacity). *)

val added : t -> int
(** Total entries ever added, including overwritten ones. *)

val clear : t -> unit

val summary_json : entry -> Json.t
(** The [GET /trace] listing row: id, timing, method/target/status and
    span count — everything but the spans themselves. *)
