(** Metrics registry: named counters, gauges and histograms.

    Instruments register lazily — the first [incr]/[set_gauge]/[observe]
    under a name creates it; a name keeps its kind for the registry's
    lifetime ([Invalid_argument] on a mismatched reuse).  Thread-safe
    (one internal mutex).  Like the tracer, evaluation code holds a
    [Metrics.t option] and [None] is the zero-cost no-op path. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (created at 0). *)

val declare_counter : t -> string -> unit
(** Register the counter at 0 without bumping it, so the series appears
    in every exposition from the first scrape (see
    {!Export.prometheus}).  Idempotent; [Invalid_argument] when the name
    is already registered with another kind. *)

val declare_gauge : t -> string -> unit
(** Register the gauge at 0 without setting it — same contract as
    {!declare_counter}. *)

val declare_histogram : t -> string -> unit
(** Register an empty histogram (count 0, all buckets 0) under the
    shared {!bucket_bounds}.  Idempotent; [Invalid_argument] on a kind
    mismatch. *)

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit
(** Record a histogram sample: count/sum/min/max plus one of the fixed
    {!bucket_bounds} buckets. *)

val bucket_bounds : float array
(** The fixed log-spaced bucket upper bounds every histogram shares —
    √10 apart (two per decade) from [1e-6] to [3160], chosen for
    latencies in seconds but serviceable for any positive sample; an
    implicit overflow bucket catches the rest.  Literal values, so
    Prometheus [le] labels are stable strings. *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) array;
      (** (upper bound, samples in that bucket) — per-bucket counts, not
          cumulative; the last bound is [infinity] (overflow).  The
          Prometheus exposition ({!Export.prometheus}) accumulates. *)
}

type value = Counter of int | Gauge of float | Histogram of histogram

val snapshot : t -> (string * value) list
(** A coherent copy of every instrument, sorted by name. *)

val find : t -> string -> value option

val counter_value : t -> string -> int
(** The counter's value; 0 when absent or not a counter. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Render the snapshot as a two-column table. *)

val pp_value : Format.formatter -> value -> unit
