(** A minimal JSON tree shared by every JSON-speaking surface: the
    Chrome-trace and JSONL span exports ({!Export}), the slow-query log
    ({!Querylog}) and the bench's [BENCH_*.json] reports, plus the
    parser their in-repo consumers (the bench regression gate, the
    round-trip tests) read them back with.  RFC 8259, no extensions. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Obj of (string * t) list

val escape : string -> string
(** RFC 8259 §7 string-content escaping: quote, backslash and every C0
    control character ([\b \f \n \r \t] short forms, [\u00XX] for the
    rest).  Returns the escaped content without surrounding quotes. *)

val to_string : t -> string
(** Compact single-line rendering — the JSONL form.  Non-finite floats
    render as [null] (JSON has no inf/nan; our telemetry is finite). *)

val to_string_pretty : t -> string
(** Multi-line rendering with 2-space indentation; an object whose
    values are all scalars stays on one line, so a bench row reads (and
    diffs) as one record.  Ends with a newline. *)

val to_file : string -> t -> unit
(** Write {!to_string_pretty} to a file. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (the whole string; trailing garbage is an
    error).  Integral number tokens parse to [Int], everything else to
    [Float]; [\uXXXX] escapes (surrogate pairs included) decode to
    UTF-8. *)

(** {1 Readers} *)

val member : string -> t -> t option
(** The named field of an object; [None] on a missing field or a
    non-object. *)

val to_float_opt : t -> float option
(** The numeric value of an [Int] or [Float]. *)

val to_list : t -> t list
(** An [Array]'s items; [[]] for anything else. *)
