(** The slow-query log: a thread-safe fixed-capacity ring of structured
    records for queries whose latency crossed a threshold.

    {!Engine.Query.run} feeds it when the context carries one
    ({!Engine.Context.with_querylog}): per query, the hash-consed
    formula fingerprint, backend, formula class, latency, cache
    hit/miss deltas, per-level [picture.segments_scanned.*] deltas
    (when the context also carries metrics) and the GC allocation delta
    — everything needed to triage a slow query after the fact.  New
    records overwrite the oldest once the ring is full, so the log
    cannot grow without bound. *)

type record = {
  time_s : float;  (** wall clock at query start *)
  formula_id : int;  (** {!Htl.Hcons.intern_id} fingerprint *)
  formula : string;
  backend : string;
  cls : string;
  latency_s : float;
  cache_hits : int;  (** cache probes this query, not cumulative *)
  cache_misses : int;
  segments_scanned : (string * int) list;
      (** per-level scan counter deltas, e.g.
          [("picture.segments_scanned.l2", 180)] *)
  resources : Resource.delta;
  shards : (int * float) list;
      (** per-shard latency seconds, keyed by shard ordinal — empty for
          unsharded queries; sharded coordinators record one pair per
          shard so skew is visible in the log *)
  trace_id : string option;
      (** the request's end-to-end id ({!Traceid}) when the query ran
          under the service — joins this record to its span tree in
          {!Tracestore} and to the [X-Trace-Id] response header *)
  error : string option;
}

type t

val create : ?capacity:int -> threshold_s:float -> unit -> t
(** Default capacity 128 records.  [threshold_s 0.] logs every query.
    @raise Invalid_argument when [capacity < 1]. *)

val threshold_s : t -> float
val capacity : t -> int

val should_log : t -> latency_s:float -> bool
(** The gate, exposed so callers can skip building a record (formula
    pretty-printing, stat snapshots) for fast queries. *)

val record : t -> record -> unit
(** Append when [r.latency_s] crosses the threshold; drop otherwise. *)

val records : t -> record list
(** Retained records, oldest first. *)

val length : t -> int
(** Retained records (≤ capacity). *)

val logged : t -> int
(** Total records ever accepted, including overwritten ones. *)

val clear : t -> unit

val hit_ratio : record -> float
(** [hits / (hits + misses)]; 0 when the query never probed the cache. *)

val to_json : record -> Json.t

val to_jsonl : t -> string
(** One compact JSON object per line, oldest first — the export
    format. *)
