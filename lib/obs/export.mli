(** Machine-readable telemetry export: Prometheus text exposition for
    {!Metrics}, JSONL and Chrome trace-event JSON for {!Trace} spans.

    Everything renders from the public snapshots ({!Metrics.snapshot},
    {!Trace.spans}); no lock is held beyond the snapshot itself. *)

val prometheus : Metrics.t -> string
(** Prometheus text format v0.0.4: one [# TYPE] comment plus samples
    per instrument, sorted by name.  Dot-separated metric names map to
    legal Prometheus names by replacing every byte outside
    [[a-zA-Z0-9_:]] with ['_'] (e.g. [query.latency_s] →
    [query_latency_s]).  Histograms expose cumulative [_bucket{le="…"}]
    series over {!Metrics.bucket_bounds} plus [+Inf], [_sum] and
    [_count]. *)

val span_json : ?trace_id:string -> Trace.span -> Json.t
(** One span as JSON: [id], [parent], [name], [start_s], [stop_s]
    ([null] while open) and [attrs] (insertion order, duplicates
    preserved), led by a [trace_id] field when one is given. *)

val spans_jsonl : Trace.t -> string
(** Every recorded span as one compact JSON object per line, in start
    order; each line carries the tracer's {!Trace.trace_id} when
    set. *)

val chrome_trace_json_of_spans : ?trace_id:string -> Trace.span list -> Json.t
(** A span list as Chrome trace-event JSON (a [traceEvents] array of
    complete ["ph":"X"] events, microsecond timestamps relative to the
    earliest span) — loadable at {{:https://ui.perfetto.dev}Perfetto}
    or [chrome://tracing].  A span still open at export time gets its
    elapsed time so far and an ["open"] arg.  [trace_id] is stamped at
    the top level and into every event's [args] — this is how a frozen
    {!Tracestore} entry renders. *)

val chrome_trace_of_spans : ?trace_id:string -> Trace.span list -> string
(** {!chrome_trace_json_of_spans}, compactly serialized — the
    [GET /trace/<id>] body. *)

val chrome_trace_json : Trace.t -> Json.t
(** {!chrome_trace_json_of_spans} over a live tracer's spans and
    {!Trace.trace_id}. *)

val chrome_trace : Trace.t -> string
(** {!chrome_trace_json}, compactly serialized. *)

val write_file : string -> string -> unit
(** Write a string to a path (truncating) — the CLI's export helper. *)
