(** Machine-readable telemetry export: Prometheus text exposition for
    {!Metrics}, JSONL and Chrome trace-event JSON for {!Trace} spans.

    Everything renders from the public snapshots ({!Metrics.snapshot},
    {!Trace.spans}); no lock is held beyond the snapshot itself. *)

val prometheus : Metrics.t -> string
(** Prometheus text format v0.0.4: one [# TYPE] comment plus samples
    per instrument, sorted by name.  Dot-separated metric names map to
    legal Prometheus names by replacing every byte outside
    [[a-zA-Z0-9_:]] with ['_'] (e.g. [query.latency_s] →
    [query_latency_s]).  Histograms expose cumulative [_bucket{le="…"}]
    series over {!Metrics.bucket_bounds} plus [+Inf], [_sum] and
    [_count]. *)

val span_json : Trace.span -> Json.t
(** One span as JSON: [id], [parent], [name], [start_s], [stop_s]
    ([null] while open) and [attrs] (insertion order, duplicates
    preserved). *)

val spans_jsonl : Trace.t -> string
(** Every recorded span as one compact JSON object per line, in start
    order. *)

val chrome_trace_json : Trace.t -> Json.t
(** The span tree as Chrome trace-event JSON (a [traceEvents] array of
    complete ["ph":"X"] events, microsecond timestamps relative to the
    earliest span) — loadable at {{:https://ui.perfetto.dev}Perfetto}
    or [chrome://tracing].  A span still open at export time gets its
    elapsed time so far and an ["open"] arg. *)

val chrome_trace : Trace.t -> string
(** {!chrome_trace_json}, compactly serialized. *)

val write_file : string -> string -> unit
(** Write a string to a path (truncating) — the CLI's export helper. *)
