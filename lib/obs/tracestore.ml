(* Completed request traces, retained in a bounded thread-safe ring —
   the Querylog shape applied to span trees.  A sampled (or slow)
   request's per-request tracer is torn down when the response is
   written; its spans move here, keyed by trace id, so GET /trace/<id>
   can render them as Chrome-trace JSON after the fact.  New entries
   overwrite the oldest, so a busy server holds the most recent
   [capacity] traces and nothing more. *)

type entry = {
  trace_id : string;
  time_s : float; (* wall clock at request start *)
  latency_s : float;
  meth : string;
  target : string;
  status : int;
  spans : Trace.span list; (* start order, frozen at retention time *)
}

type t = {
  mutex : Mutex.t;
  ring : entry option array;
  mutable next : int;
  mutable added : int;
}

let create ?(capacity = 64) () =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Obs.Tracestore.create: capacity %d < 1" capacity);
  { mutex = Mutex.create (); ring = Array.make capacity None; next = 0; added = 0 }

let capacity t = Array.length t.ring

let add t e =
  Mutex.protect t.mutex (fun () ->
      t.ring.(t.next) <- Some e;
      t.next <- (t.next + 1) mod Array.length t.ring;
      t.added <- t.added + 1)

let entries t =
  Mutex.protect t.mutex (fun () ->
      let cap = Array.length t.ring in
      (* oldest first: slots [next .. next+cap-1] mod cap *)
      List.filter_map
        (fun i -> t.ring.((t.next + i) mod cap))
        (List.init cap Fun.id))

(* newest match wins: a client that reuses an id sees its latest request *)
let find t id =
  List.fold_left
    (fun acc e -> if String.equal e.trace_id id then Some e else acc)
    None (entries t)

let length t = Mutex.protect t.mutex (fun () -> min t.added (capacity t))
let added t = Mutex.protect t.mutex (fun () -> t.added)

let clear t =
  Mutex.protect t.mutex (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.next <- 0;
      t.added <- 0)

let summary_json e =
  Json.Obj
    [
      ("trace_id", Json.String e.trace_id);
      ("time_s", Json.Float e.time_s);
      ("latency_s", Json.Float e.latency_s);
      ("method", Json.String e.meth);
      ("target", Json.String e.target);
      ("status", Json.Int e.status);
      ("spans", Json.Int (List.length e.spans));
    ]
