(* The always-on statistics collector: what the cost-based planner
   reads.  Unlike Querylog (a bounded ring of whole records above a
   threshold) this keeps *aggregates*, updated on every request:

   - per formula fingerprint: request count, error count, an EWMA of
     latency, and a small ring of recent latencies from which quantiles
     are computed at read time;
   - per atomic formula and level: observed pruning selectivity
     (index candidates / level segments) as an EWMA plus cumulative
     sums — the index-vs-scan signal;
   - per backend: request and error counts.

   One mutex serializes updates, the Trace/Metrics argument: an update
   is a handful of field writes against a full query evaluation, so
   the lock is never meaningfully contended.  Memory is bounded by the
   number of *distinct* fingerprints/atoms seen, each entry O(window)
   floats — a served workload's fingerprint set is small (that is why
   caching works), and the window is fixed.

   The EWMA seeds at the first sample, then folds
   ewma' = alpha * x + (1 - alpha) * ewma — the scalar-fold oracle the
   qcheck property checks against.  Quantiles use the nearest-rank
   convention of bench/main.ml so the numbers compare directly. *)

type query_stat = {
  q_formula : string;
  mutable q_count : int;
  mutable q_errors : int;
  mutable q_ewma_s : float;
  q_window : float array; (* ring of recent latencies *)
  mutable q_next : int;
}

type atom_stat = {
  mutable a_count : int;
  mutable a_ewma : float;
  mutable a_candidates : int; (* cumulative candidates scanned *)
  mutable a_segments : int; (* cumulative level segments *)
}

type backend_stat = { mutable b_count : int; mutable b_errors : int }

(* per-(fingerprint, backend) latency EWMA: the planner's signal for
   choosing between backends on a formula it has seen before *)
type lat_stat = { mutable l_count : int; mutable l_ewma_s : float }

type t = {
  mutex : Mutex.t;
  alpha : float;
  window : int;
  queries : (int, query_stat) Hashtbl.t; (* keyed by fingerprint *)
  atoms : (int * string, atom_stat) Hashtbl.t; (* keyed by (level, atom) *)
  backends : (string, backend_stat) Hashtbl.t;
  latencies : (int * string, lat_stat) Hashtbl.t; (* (fingerprint, backend) *)
}

let create ?(alpha = 0.2) ?(window = 64) () =
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg (Printf.sprintf "Obs.Stats.create: alpha %g outside (0, 1]" alpha);
  if window < 1 then
    invalid_arg (Printf.sprintf "Obs.Stats.create: window %d < 1" window);
  {
    mutex = Mutex.create ();
    alpha;
    window;
    queries = Hashtbl.create 64;
    atoms = Hashtbl.create 64;
    backends = Hashtbl.create 4;
    latencies = Hashtbl.create 64;
  }

let alpha t = t.alpha
let window t = t.window

let ewma_step ~alpha ~count ~prev x =
  if count = 0 then x else (alpha *. x) +. ((1. -. alpha) *. prev)

(* [formula] is a thunk so the pretty-printed text is only built the
   first time a fingerprint is seen, not on every request. *)
let record_query t ~fingerprint ~formula ~backend ~latency_s ~error =
  Mutex.protect t.mutex (fun () ->
      let q =
        match Hashtbl.find_opt t.queries fingerprint with
        | Some q -> q
        | None ->
            let q =
              {
                q_formula = formula ();
                q_count = 0;
                q_errors = 0;
                q_ewma_s = 0.;
                q_window = Array.make t.window Float.nan;
                q_next = 0;
              }
            in
            Hashtbl.add t.queries fingerprint q;
            q
      in
      q.q_ewma_s <-
        ewma_step ~alpha:t.alpha ~count:q.q_count ~prev:q.q_ewma_s latency_s;
      q.q_count <- q.q_count + 1;
      if error then q.q_errors <- q.q_errors + 1;
      q.q_window.(q.q_next) <- latency_s;
      q.q_next <- (q.q_next + 1) mod t.window;
      let b =
        match Hashtbl.find_opt t.backends backend with
        | Some b -> b
        | None ->
            let b = { b_count = 0; b_errors = 0 } in
            Hashtbl.add t.backends backend b;
            b
      in
      b.b_count <- b.b_count + 1;
      if error then b.b_errors <- b.b_errors + 1;
      let l =
        match Hashtbl.find_opt t.latencies (fingerprint, backend) with
        | Some l -> l
        | None ->
            let l = { l_count = 0; l_ewma_s = 0. } in
            Hashtbl.add t.latencies (fingerprint, backend) l;
            l
      in
      l.l_ewma_s <-
        ewma_step ~alpha:t.alpha ~count:l.l_count ~prev:l.l_ewma_s latency_s;
      l.l_count <- l.l_count + 1)

let record_atom t ~atom ~level ~candidates ~segments =
  if segments > 0 then
    let sel = float_of_int candidates /. float_of_int segments in
    Mutex.protect t.mutex (fun () ->
        let key = (level, atom) in
        let a =
          match Hashtbl.find_opt t.atoms key with
          | Some a -> a
          | None ->
              let a =
                { a_count = 0; a_ewma = 0.; a_candidates = 0; a_segments = 0 }
              in
              Hashtbl.add t.atoms key a;
              a
        in
        a.a_ewma <- ewma_step ~alpha:t.alpha ~count:a.a_count ~prev:a.a_ewma sel;
        a.a_count <- a.a_count + 1;
        a.a_candidates <- a.a_candidates + candidates;
        a.a_segments <- a.a_segments + segments)

(* --- read side ----------------------------------------------------------- *)

type query_row = {
  fingerprint : int;
  formula : string;
  count : int;
  errors : int;
  ewma_latency_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  window_n : int;
}

type atom_row = {
  atom : string;
  level : int;
  evals : int;
  ewma_selectivity : float;
  candidates_total : int;
  segments_total : int;
}

type backend_row = { backend : string; requests : int; backend_errors : int }

(* nearest-rank on a sorted copy, the bench/main.ml convention *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let query_row ~fingerprint (q : query_stat) =
  let samples =
    Array.of_seq
      (Seq.filter (fun x -> not (Float.is_nan x)) (Array.to_seq q.q_window))
  in
  Array.sort compare samples;
  {
    fingerprint;
    formula = q.q_formula;
    count = q.q_count;
    errors = q.q_errors;
    ewma_latency_s = q.q_ewma_s;
    p50_s = percentile samples 0.50;
    p95_s = percentile samples 0.95;
    p99_s = percentile samples 0.99;
    window_n = Array.length samples;
  }

let queries t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun fingerprint q acc -> query_row ~fingerprint q :: acc)
        t.queries [])
  |> List.sort (fun a b ->
         compare (b.count, a.fingerprint) (a.count, b.fingerprint))

let atoms t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun (level, atom) (a : atom_stat) acc ->
          {
            atom;
            level;
            evals = a.a_count;
            ewma_selectivity = a.a_ewma;
            candidates_total = a.a_candidates;
            segments_total = a.a_segments;
          }
          :: acc)
        t.atoms [])
  |> List.sort (fun a b ->
         compare (b.evals, a.level, a.atom) (a.evals, b.level, b.atom))

let backends t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun backend (b : backend_stat) acc ->
          { backend; requests = b.b_count; backend_errors = b.b_errors } :: acc)
        t.backends [])
  |> List.sort (fun a b -> compare a.backend b.backend)

(* --- planner hooks ------------------------------------------------------- *)

let ewma_latency_s t ~fingerprint =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.queries fingerprint with
      | Some q when q.q_count > 0 -> Some q.q_ewma_s
      | _ -> None)

let selectivity t ~level ~atom =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.atoms (level, atom) with
      | Some a when a.a_count > 0 -> Some a.a_ewma
      | _ -> None)

let backend_latency_s t ~fingerprint ~backend =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.latencies (fingerprint, backend) with
      | Some l when l.l_count > 0 -> Some l.l_ewma_s
      | _ -> None)

let error_rate t ~backend =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.backends backend with
      | Some b when b.b_count > 0 ->
          Some (float_of_int b.b_errors /. float_of_int b.b_count)
      | _ -> None)

let clear t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.queries;
      Hashtbl.reset t.atoms;
      Hashtbl.reset t.backends;
      Hashtbl.reset t.latencies)

(* --- export -------------------------------------------------------------- *)

let to_json t =
  let qrows = queries t and arows = atoms t and brows = backends t in
  Json.Obj
    [
      ("alpha", Json.Float t.alpha);
      ("window", Json.Int t.window);
      ( "queries",
        Json.Array
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("fingerprint", Json.Int r.fingerprint);
                   ("formula", Json.String r.formula);
                   ("count", Json.Int r.count);
                   ("errors", Json.Int r.errors);
                   ("ewma_latency_s", Json.Float r.ewma_latency_s);
                   ("p50_s", Json.Float r.p50_s);
                   ("p95_s", Json.Float r.p95_s);
                   ("p99_s", Json.Float r.p99_s);
                   ("window_n", Json.Int r.window_n);
                 ])
             qrows) );
      ( "atoms",
        Json.Array
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("atom", Json.String r.atom);
                   ("level", Json.Int r.level);
                   ("evals", Json.Int r.evals);
                   ("ewma_selectivity", Json.Float r.ewma_selectivity);
                   ("candidates_total", Json.Int r.candidates_total);
                   ("segments_total", Json.Int r.segments_total);
                 ])
             arows) );
      ( "backends",
        Json.Array
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("backend", Json.String r.backend);
                   ("requests", Json.Int r.requests);
                   ("errors", Json.Int r.backend_errors);
                   ( "error_rate",
                     Json.Float
                       (if r.requests = 0 then 0.
                        else
                          float_of_int r.backend_errors
                          /. float_of_int r.requests) );
                 ])
             brows) );
    ]
