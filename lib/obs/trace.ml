type span = {
  id : int;
  parent : int;
  name : string;
  start_s : float;
  mutable stop_s : float; (* nan while the span is open *)
  mutable attrs : (string * string) list;
}

(* One mutex serializes span creation, completion and attribute writes.
   Every operation is a few pointer writes amortized against the work the
   span measures (a subformula evaluation, a SQL statement), so the lock
   is never contended in any meaningful way — the same argument as
   Engine.Cache (DESIGN.md §2.13).

   Nesting is per domain: each domain keeps its own stack of open spans,
   so a span started on a worker domain nests under whatever that worker
   is currently running, and a span started on the submitting domain
   nests under the query.  Spans do not flow across a pool fan-out — a
   task's spans root at the worker's stack bottom — which keeps the
   recorder allocation-free on the hot path; the fan-out sites record
   their own "pool.*" spans on the submitting domain instead. *)
type t = {
  mutex : Mutex.t;
  mutable tid : string option; (* the request's trace id, if any *)
  mutable next_id : int;
  mutable spans : span list; (* reverse start order *)
  stacks : (int, span list) Hashtbl.t; (* domain id -> open spans *)
}

let create ?trace_id () =
  {
    mutex = Mutex.create ();
    tid = trace_id;
    next_id = 0;
    spans = [];
    stacks = Hashtbl.create 8;
  }

let trace_id t = Mutex.protect t.mutex (fun () -> t.tid)
let set_trace_id t id = Mutex.protect t.mutex (fun () -> t.tid <- Some id)

let domain_key () = (Domain.self () :> int)

let start t ?(attrs = []) name =
  let now = Clock.now () in
  Mutex.protect t.mutex (fun () ->
      let key = domain_key () in
      let stack = Option.value ~default:[] (Hashtbl.find_opt t.stacks key) in
      let parent = match stack with [] -> 0 | top :: _ -> top.id in
      t.next_id <- t.next_id + 1;
      let s =
        { id = t.next_id; parent; name; start_s = now; stop_s = Float.nan; attrs }
      in
      t.spans <- s :: t.spans;
      Hashtbl.replace t.stacks key (s :: stack);
      s)

let stop t span =
  let now = Clock.now () in
  Mutex.protect t.mutex (fun () ->
      if Float.is_nan span.stop_s then span.stop_s <- now;
      let key = domain_key () in
      match Hashtbl.find_opt t.stacks key with
      | Some (top :: rest) when top.id = span.id ->
          Hashtbl.replace t.stacks key rest
      | Some stack ->
          (* unbalanced stop (an exception unwound through several open
             spans): drop the span wherever it sits *)
          Hashtbl.replace t.stacks key
            (List.filter (fun s -> s.id <> span.id) stack)
      | None -> ())

let add_attr t key value =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.stacks (domain_key ()) with
      | Some (top :: _) -> top.attrs <- (key, value) :: top.attrs
      | Some [] | None -> ())

let with_span t ?attrs name f =
  let s = start t ?attrs name in
  Fun.protect ~finally:(fun () -> stop t s) f

let spans t = Mutex.protect t.mutex (fun () -> List.rev t.spans)

let clear t =
  Mutex.protect t.mutex (fun () ->
      t.spans <- [];
      t.next_id <- 0;
      Hashtbl.reset t.stacks)

let duration_s s = if Float.is_nan s.stop_s then None else Some (s.stop_s -. s.start_s)

let attr s key = List.assoc_opt key s.attrs

(* --- summaries ---------------------------------------------------------- *)

type summary_row = {
  sname : string;
  count : int;
  total_s : float;
  open_count : int;
}

let summarize t =
  (* an open span (a query aborted mid-span, or a summary taken while
     one runs) counts with its elapsed time so far, not 0 — silently
     deflating totals would make every export under-report — and the
     row is marked so consumers can flag the approximation *)
  let now = Clock.now () in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let d, opened =
        match duration_s s with
        | Some d -> (d, 0)
        | None -> (now -. s.start_s, 1)
      in
      match Hashtbl.find_opt tbl s.name with
      | Some (c, total, o) ->
          Hashtbl.replace tbl s.name (c + 1, total +. d, o + opened)
      | None -> Hashtbl.add tbl s.name (1, d, opened))
    (spans t);
  List.sort
    (fun a b -> compare (b.total_s, a.sname) (a.total_s, b.sname))
    (Hashtbl.fold
       (fun sname (count, total_s, open_count) acc ->
         { sname; count; total_s; open_count } :: acc)
       tbl [])

(* --- rendering ---------------------------------------------------------- *)

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Format.fprintf ppf "  {%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ v) (List.rev attrs)))

let pp_span ppf s =
  (match duration_s s with
  | Some d -> Format.fprintf ppf "%s (%.3f ms)" s.name (d *. 1e3)
  | None -> Format.fprintf ppf "%s (open)" s.name);
  pp_attrs ppf s.attrs

(* A tracer carrying a trace id leads its renderings with it, so a
   pp_tree in a log and a slowlog record join on the same key. *)
let pp_trace_id ppf t =
  match trace_id t with
  | Some id -> Format.fprintf ppf "trace %s@," id
  | None -> ()

let pp_tree ppf t =
  let all = spans t in
  let children parent =
    List.filter (fun s -> s.parent = parent) all
  in
  let rec pp_at depth s =
    Format.fprintf ppf "%s%a@," (String.make (2 * depth) ' ') pp_span s;
    List.iter (pp_at (depth + 1)) (children s.id)
  in
  Format.fprintf ppf "@[<v>";
  pp_trace_id ppf t;
  List.iter (pp_at 0) (children 0);
  Format.fprintf ppf "@]"

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>";
  pp_trace_id ppf t;
  Format.fprintf ppf "%-28s %8s %14s@," "Span" "Count" "Total (ms)";
  List.iter
    (fun { sname; count; total_s; open_count } ->
      Format.fprintf ppf "%-28s %8d %14.3f%s@," sname count (total_s *. 1e3)
        (if open_count = 0 then ""
         else Printf.sprintf "  (%d open)" open_count))
    (summarize t);
  Format.fprintf ppf "@]"
