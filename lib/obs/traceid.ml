(* W3C trace-context identifiers.  A trace id is 16 random bytes
   rendered as 32 lowercase hex characters — the `trace-id` field of a
   `traceparent` header (https://www.w3.org/TR/trace-context/).  The
   all-zero id is the spec's nil value and never generated or accepted.

   Generation shares one lazily-seeded PRNG behind a mutex: ids are
   minted once per sampled-or-slow request, so contention is nil, and
   a process-wide state keeps ids unique within a run without pulling
   in an entropy syscall per request. *)

let state = lazy (Random.State.make_self_init ())
let mutex = Mutex.create ()

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let nil id = String.for_all (fun c -> c = '0') id

let hex_of_length n s =
  String.length s = n && String.for_all is_hex s

let is_valid id = hex_of_length 32 id && not (nil id)

let random_hex st n =
  String.init n (fun _ -> "0123456789abcdef".[Random.State.int st 16])

let generate () =
  Mutex.protect mutex (fun () ->
      let st = Lazy.force state in
      let rec fresh () =
        let id = random_hex st 32 in
        if nil id then fresh () else id
      in
      fresh ())

let span_id () =
  Mutex.protect mutex (fun () ->
      let st = Lazy.force state in
      let rec fresh () =
        let id = random_hex st 16 in
        if nil id then fresh () else id
      in
      fresh ())

(* Accept a bare id in either case (callers hand-type X-Trace-Id in
   curl walkthroughs); the canonical form is lowercase. *)
let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  if is_valid s then Some s else None

(* traceparent: version "-" trace-id "-" parent-id "-" flags, e.g.
   00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01.  Version
   ff is forbidden by the spec; future versions may append fields, so
   anything after the four we parse is tolerated for versions > 00. *)
let of_traceparent s =
  match String.split_on_char '-' (String.lowercase_ascii (String.trim s)) with
  | version :: trace_id :: parent :: flags :: rest
    when hex_of_length 2 version && version <> "ff"
         && hex_of_length 16 parent
         && (not (nil parent))
         && hex_of_length 2 flags
         && (rest = [] || version <> "00") ->
      if is_valid trace_id then Some trace_id else None
  | _ -> None

let to_traceparent ?parent id =
  let parent = match parent with Some p -> p | None -> span_id () in
  Printf.sprintf "00-%s-%s-01" id parent
