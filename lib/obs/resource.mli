(** Per-query resource accounting from [Gc.quick_stat] deltas.

    [quick_stat] reads the mutator's own counters (no heap walk), so a
    before/after pair is cheap enough for every observed query.  Under
    OCaml 5 the counters are per-domain: a delta taken around a query
    that fanned out across a pool accounts the submitting domain's share
    only.  Minor-heap allocation comes from [Gc.minor_words] (the live
    allocation pointer) because native-code [quick_stat] only refreshes
    it at collection boundaries. *)

type sample

val sample : unit -> sample

type delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

val zero : delta
val delta : before:sample -> after:sample -> delta

val measure : (unit -> 'a) -> 'a * delta
(** Run the thunk between two samples. *)

val allocated_words : delta -> float
(** Total words allocated: minor + major − promoted (promoted words
    were already counted at their minor allocation). *)

val to_attrs : delta -> (string * string) list
(** As span attributes: [gc.minor_words], [gc.major_words],
    [gc.promoted_words], [gc.minor_collections],
    [gc.major_collections]. *)

val to_json : delta -> Json.t
val pp : Format.formatter -> delta -> unit
