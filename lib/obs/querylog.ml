(* The slow-query log: a fixed-capacity ring of structured records for
   queries whose latency crossed the threshold.  One mutex, the same
   argument as Trace/Metrics: an append is a few writes against a query
   that was — by definition — slow.  The ring never allocates past its
   capacity, so a misbehaving workload cannot grow the log without
   bound; new records overwrite the oldest. *)

type record = {
  time_s : float;  (* wall clock at query start *)
  formula_id : int;  (* hash-consed fingerprint *)
  formula : string;
  backend : string;
  cls : string;
  latency_s : float;
  cache_hits : int;
  cache_misses : int;
  segments_scanned : (string * int) list;
  resources : Resource.delta;
  shards : (int * float) list;
  trace_id : string option;
  error : string option;
}

type t = {
  mutex : Mutex.t;
  threshold_s : float;
  ring : record option array;
  mutable next : int; (* ring slot the next record goes into *)
  mutable logged : int; (* total records accepted (can exceed capacity) *)
}

let create ?(capacity = 128) ~threshold_s () =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Obs.Querylog.create: capacity %d < 1" capacity);
  {
    mutex = Mutex.create ();
    threshold_s;
    ring = Array.make capacity None;
    next = 0;
    logged = 0;
  }

let threshold_s t = t.threshold_s
let capacity t = Array.length t.ring
let should_log t ~latency_s = latency_s >= t.threshold_s

let record t r =
  if should_log t ~latency_s:r.latency_s then
    Mutex.protect t.mutex (fun () ->
        t.ring.(t.next) <- Some r;
        t.next <- (t.next + 1) mod Array.length t.ring;
        t.logged <- t.logged + 1)

let records t =
  Mutex.protect t.mutex (fun () ->
      let cap = Array.length t.ring in
      (* oldest first: slots [next .. next+cap-1] mod cap, skipping empties *)
      List.filter_map
        (fun i -> t.ring.((t.next + i) mod cap))
        (List.init cap Fun.id))

let length t = Mutex.protect t.mutex (fun () -> min t.logged (capacity t))
let logged t = Mutex.protect t.mutex (fun () -> t.logged)

let clear t =
  Mutex.protect t.mutex (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.next <- 0;
      t.logged <- 0)

let hit_ratio r =
  let probes = r.cache_hits + r.cache_misses in
  if probes = 0 then 0. else float_of_int r.cache_hits /. float_of_int probes

let to_json r =
  Json.Obj
    ([
       ("time_s", Json.Float r.time_s);
       ("formula_id", Json.Int r.formula_id);
       ("formula", Json.String r.formula);
       ("backend", Json.String r.backend);
       ("class", Json.String r.cls);
       ("latency_s", Json.Float r.latency_s);
       ("cache_hits", Json.Int r.cache_hits);
       ("cache_misses", Json.Int r.cache_misses);
       ("cache_hit_ratio", Json.Float (hit_ratio r));
       ( "segments_scanned",
         Json.Obj
           (List.map (fun (k, v) -> (k, Json.Int v)) r.segments_scanned) );
       ("gc", Resource.to_json r.resources);
     ]
    @ (match r.trace_id with
      | None -> []
      | Some id -> [ ("trace_id", Json.String id) ])
    @ (match r.shards with
      | [] -> []
      | shards ->
          [
            ( "shards",
              Json.Obj
                (List.map
                   (fun (i, s) -> (string_of_int i, Json.Float s))
                   shards) );
          ])
    @ match r.error with None -> [] | Some e -> [ ("error", Json.String e) ])

let to_jsonl t =
  String.concat ""
    (List.map (fun r -> Json.to_string (to_json r) ^ "\n") (records t))
