(* The observability clock.  OCaml's stdlib exposes no monotonic clock
   without C stubs, so we take the best portable source available:
   [Unix.gettimeofday], which on every platform we run on is driven by
   the same timer the monotonic clock is and is good to the microsecond.
   Spans measure elapsed wall time; a clock step during a query (NTP
   slew) can skew a single span, which is acceptable for diagnostics and
   avoids a C dependency. *)

let now = Unix.gettimeofday
