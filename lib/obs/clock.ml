(* The observability clock.  OCaml's stdlib exposes no monotonic clock
   without C stubs, so we take the best portable source available:
   [Unix.gettimeofday], which on every platform we run on is driven by
   the same timer the monotonic clock is and is good to the microsecond.
   Spans measure elapsed wall time; a clock step during a query (NTP
   slew) can skew a single span, which is acceptable for diagnostics and
   avoids a C dependency.

   The source lives behind a ref so the export golden tests and the
   slow-query-log threshold tests can substitute a deterministic clock;
   production code never touches it and pays one pointer read. *)

let source = ref Unix.gettimeofday
let now () = !source ()
let set_source f = source := f
let use_wall_clock () = source := Unix.gettimeofday
