(* Machine-readable telemetry export.  Three formats, three consumers:

   - Prometheus text exposition v0.0.4 of a Metrics snapshot, for a
     scrape endpoint or the node_exporter textfile collector;
   - JSONL span dumps, one object per line, for grep/jq pipelines and
     log shippers;
   - Chrome trace-event JSON of the span tree, loadable in Perfetto
     (ui.perfetto.dev) or chrome://tracing.

   Everything renders from the public snapshots (Metrics.snapshot,
   Trace.spans), so exporting never holds a registry or recorder lock
   beyond the snapshot itself. *)

(* --- Prometheus ----------------------------------------------------------- *)

(* Metric names here are dot-separated (query.latency_s,
   picture.segments_scanned.l2); Prometheus names must match
   [a-zA-Z_:][a-zA-Z0-9_:]*, so every other byte maps to '_'. *)
let prometheus_name name =
  String.init (String.length name) (fun i ->
      match name.[i] with
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c
      | _ -> '_')

let prometheus_float f =
  if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus metrics =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let pname = prometheus_name name in
      match v with
      | Metrics.Counter n ->
          Printf.bprintf b "# TYPE %s counter\n%s %d\n" pname pname n
      | Metrics.Gauge g ->
          Printf.bprintf b "# TYPE %s gauge\n%s %s\n" pname pname
            (prometheus_float g)
      | Metrics.Histogram h ->
          Printf.bprintf b "# TYPE %s histogram\n" pname;
          let cumulative = ref 0 in
          Array.iter
            (fun (bound, count) ->
              cumulative := !cumulative + count;
              Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" pname
                (prometheus_float bound) !cumulative)
            h.Metrics.buckets;
          Printf.bprintf b "%s_sum %s\n" pname (prometheus_float h.Metrics.sum);
          Printf.bprintf b "%s_count %d\n" pname h.Metrics.count)
    (Metrics.snapshot metrics);
  Buffer.contents b

(* --- JSONL spans ----------------------------------------------------------- *)

(* Attributes keep insertion order and duplicates (add_attr can record
   the same key twice); a JSON object preserves both for a reader that
   cares, and jq's "last wins" is the right collapse for one that
   doesn't. *)
let attrs_json attrs =
  Json.Obj (List.rev_map (fun (k, v) -> (k, Json.String v)) attrs)

let span_json ?trace_id (s : Trace.span) =
  Json.Obj
    ((match trace_id with
     | Some id -> [ ("trace_id", Json.String id) ]
     | None -> [])
    @ [
        ("id", Json.Int s.Trace.id);
        ("parent", Json.Int s.Trace.parent);
        ("name", Json.String s.Trace.name);
        ("start_s", Json.Float s.Trace.start_s);
        ( "stop_s",
          match Trace.duration_s s with
          | Some _ -> Json.Float s.Trace.stop_s
          | None -> Json.Null );
        ("attrs", attrs_json s.Trace.attrs);
      ])

let spans_jsonl tracer =
  let trace_id = Trace.trace_id tracer in
  String.concat ""
    (List.map
       (fun s -> Json.to_string (span_json ?trace_id s) ^ "\n")
       (Trace.spans tracer))

(* --- Chrome trace events --------------------------------------------------- *)

(* Complete ("ph":"X") events with microsecond timestamps relative to
   the earliest span, all on one pid/tid — Perfetto nests by time
   containment, which matches the recorder's stack discipline.  A span
   still open when exported gets its elapsed time so far and an
   "open":"true" arg, the same never-under-report rule as
   Trace.summarize.  The span-list entry point exists so a frozen
   Tracestore entry renders identically to a live tracer; when a trace
   id is known it lands both at the top level and in every event's
   args (Perfetto surfaces args in the span details pane). *)
let chrome_trace_json_of_spans ?trace_id spans =
  let now = Clock.now () in
  let epoch =
    List.fold_left
      (fun acc (s : Trace.span) -> Float.min acc s.Trace.start_s)
      Float.infinity spans
  in
  let id_args =
    match trace_id with
    | Some id -> [ ("trace_id", Json.String id) ]
    | None -> []
  in
  let event (s : Trace.span) =
    let dur, open_args =
      match Trace.duration_s s with
      | Some d -> (d, [])
      | None -> (now -. s.Trace.start_s, [ ("open", Json.String "true") ])
    in
    let args =
      (match attrs_json s.Trace.attrs with Json.Obj l -> l | _ -> [])
      @ [ ("span_id", Json.Int s.Trace.id); ("parent", Json.Int s.Trace.parent) ]
      @ id_args @ open_args
    in
    Json.Obj
      [
        ("name", Json.String s.Trace.name);
        ("cat", Json.String "htl");
        ("ph", Json.String "X");
        ("ts", Json.Float ((s.Trace.start_s -. epoch) *. 1e6));
        ("dur", Json.Float (dur *. 1e6));
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Obj args);
      ]
  in
  Json.Obj
    ([
       ("traceEvents", Json.Array (List.map event spans));
       ("displayTimeUnit", Json.String "ms");
     ]
    @ id_args)

let chrome_trace_of_spans ?trace_id spans =
  Json.to_string (chrome_trace_json_of_spans ?trace_id spans)

let chrome_trace_json tracer =
  chrome_trace_json_of_spans
    ?trace_id:(Trace.trace_id tracer)
    (Trace.spans tracer)

let chrome_trace tracer = Json.to_string (chrome_trace_json tracer)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
