(** W3C trace-context identifiers: 32-lowercase-hex trace ids, the
    [trace-id] field of a
    {{:https://www.w3.org/TR/trace-context/}traceparent} header.

    The service accepts an id from the client ([X-Trace-Id] bare, or a
    full [traceparent]) or mints one, stamps it on spans, query-log
    records and the response, and keys {!Tracestore} retention by it —
    one id follows one request end to end, across every shard. *)

val generate : unit -> string
(** A fresh random id: 32 lowercase hex characters, never all-zero
    (the spec's nil value).  Thread-safe. *)

val span_id : unit -> string
(** A fresh 16-hex parent/span id for {!to_traceparent}. *)

val is_valid : string -> bool
(** 32 lowercase hex characters and not all-zero. *)

val of_string : string -> string option
(** Parse a bare id (either case, surrounding whitespace tolerated)
    to canonical lowercase; [None] when malformed or nil. *)

val of_traceparent : string -> string option
(** Extract the trace id from a [traceparent] header value
    ([version-traceid-parentid-flags]).  [None] on malformed input,
    version [ff], or a nil trace/parent id. *)

val to_traceparent : ?parent:string -> string -> string
(** Render an id as a version-00 [traceparent] value; [parent]
    defaults to a fresh {!span_id}. *)
