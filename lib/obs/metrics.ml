type hist = {
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type cell = C of int ref | G of float ref | H of hist

(* One mutex, same rationale as Trace: every update is a handful of
   writes against work that dwarfs it (a query, a pool batch, a cache
   probe). *)
type t = { mutex : Mutex.t; cells : (string, cell) Hashtbl.t }

let create () = { mutex = Mutex.create (); cells = Hashtbl.create 32 }

let kind_error name =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S already registered with another kind" name)

let incr t ?(by = 1) name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (C r) -> r := !r + by
      | Some _ -> kind_error name
      | None -> Hashtbl.add t.cells name (C (ref by)))

let set_gauge t name v =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (G r) -> r := v
      | Some _ -> kind_error name
      | None -> Hashtbl.add t.cells name (G (ref v)))

let observe t name v =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (H h) ->
          h.hcount <- h.hcount + 1;
          h.hsum <- h.hsum +. v;
          if v < h.hmin then h.hmin <- v;
          if v > h.hmax then h.hmax <- v
      | Some _ -> kind_error name
      | None ->
          Hashtbl.add t.cells name
            (H { hcount = 1; hsum = v; hmin = v; hmax = v }))

type histogram = { count : int; sum : float; min : float; max : float }
type value = Counter of int | Gauge of float | Histogram of histogram

let snapshot t =
  let items =
    Mutex.protect t.mutex (fun () ->
        Hashtbl.fold
          (fun name cell acc ->
            let v =
              match cell with
              | C r -> Counter !r
              | G r -> Gauge !r
              | H h ->
                  Histogram
                    { count = h.hcount; sum = h.hsum; min = h.hmin; max = h.hmax }
            in
            (name, v) :: acc)
          t.cells [])
  in
  List.sort (fun (a, _) (b, _) -> compare a b) items

let find t name = List.assoc_opt name (snapshot t)

let counter_value t name =
  match find t name with Some (Counter n) -> n | _ -> 0

let clear t = Mutex.protect t.mutex (fun () -> Hashtbl.reset t.cells)

let pp_value ppf = function
  | Counter n -> Format.fprintf ppf "%d" n
  | Gauge v -> Format.fprintf ppf "%g" v
  | Histogram { count; sum; min; max } ->
      Format.fprintf ppf "count %d  sum %.6f  min %.6f  mean %.6f  max %.6f"
        count sum min
        (if count = 0 then 0. else sum /. float_of_int count)
        max

let pp ppf t =
  Format.fprintf ppf "@[<v>%-32s %s@," "Metric" "Value";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-32s %a@," name pp_value v)
    (snapshot t);
  Format.fprintf ppf "@]"
