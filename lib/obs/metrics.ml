(* Fixed log-spaced histogram buckets, √10 apart (two per decade) from
   1µs to ~1h when read as seconds — wide enough that both a cache hit
   (~100ns, below the first bound) and a giant batched scan land inside
   the range, coarse enough that a histogram is 21 integers.  The bounds
   are literals, not computed, so the Prometheus [le] labels are stable
   strings.  Every histogram shares them: allocation-delta histograms
   (words) read the same bounds as dimensionless counts, which keeps
   [observe] allocation-free and the exposition uniform. *)
let bucket_bounds =
  [|
    1e-06; 3.16e-06; 1e-05; 3.16e-05; 1e-04; 3.16e-04; 1e-03; 3.16e-03;
    1e-02; 3.16e-02; 0.1; 0.316; 1.; 3.16; 10.; 31.6; 100.; 316.; 1000.;
    3160.;
  |]

let bucket_count = Array.length bucket_bounds + 1 (* + overflow (+Inf) *)

let bucket_index v =
  let rec go i =
    if i = Array.length bucket_bounds then i
    else if v <= bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

type hist = {
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  hbuckets : int array; (* per-bucket (non-cumulative) counts *)
}

type cell = C of int ref | G of float ref | H of hist

(* One mutex, same rationale as Trace: every update is a handful of
   writes against work that dwarfs it (a query, a pool batch, a cache
   probe). *)
type t = { mutex : Mutex.t; cells : (string, cell) Hashtbl.t }

let create () = { mutex = Mutex.create (); cells = Hashtbl.create 32 }

let kind_error name =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S already registered with another kind" name)

(* Pre-registration (PR 4's cache.hits/misses lesson, generalised): a
   series that only appears once traffic exercises its code path makes
   the first scrapes unstable — dashboards and goldens want every series
   present from scrape one.  Declaring is idempotent and kind-checked
   like any other touch. *)
let declare_counter t name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (C _) -> ()
      | Some _ -> kind_error name
      | None -> Hashtbl.add t.cells name (C (ref 0)))

let declare_gauge t name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (G _) -> ()
      | Some _ -> kind_error name
      | None -> Hashtbl.add t.cells name (G (ref 0.)))

let declare_histogram t name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (H _) -> ()
      | Some _ -> kind_error name
      | None ->
          Hashtbl.add t.cells name
            (H
               {
                 hcount = 0;
                 hsum = 0.;
                 hmin = Float.infinity;
                 hmax = Float.neg_infinity;
                 hbuckets = Array.make bucket_count 0;
               }))

let incr t ?(by = 1) name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (C r) -> r := !r + by
      | Some _ -> kind_error name
      | None -> Hashtbl.add t.cells name (C (ref by)))

let set_gauge t name v =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (G r) -> r := v
      | Some _ -> kind_error name
      | None -> Hashtbl.add t.cells name (G (ref v)))

let observe t name v =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (H h) ->
          h.hcount <- h.hcount + 1;
          h.hsum <- h.hsum +. v;
          if v < h.hmin then h.hmin <- v;
          if v > h.hmax then h.hmax <- v;
          let i = bucket_index v in
          h.hbuckets.(i) <- h.hbuckets.(i) + 1
      | Some _ -> kind_error name
      | None ->
          let hbuckets = Array.make bucket_count 0 in
          hbuckets.(bucket_index v) <- 1;
          Hashtbl.add t.cells name
            (H { hcount = 1; hsum = v; hmin = v; hmax = v; hbuckets }))

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) array;
      (* (upper bound, count in that bucket); the last bound is
         [infinity], the overflow bucket *)
}

type value = Counter of int | Gauge of float | Histogram of histogram

let snapshot t =
  let items =
    Mutex.protect t.mutex (fun () ->
        Hashtbl.fold
          (fun name cell acc ->
            let v =
              match cell with
              | C r -> Counter !r
              | G r -> Gauge !r
              | H h ->
                  let buckets =
                    Array.init bucket_count (fun i ->
                        ( (if i < Array.length bucket_bounds then
                             bucket_bounds.(i)
                           else infinity),
                          h.hbuckets.(i) ))
                  in
                  Histogram
                    {
                      count = h.hcount;
                      sum = h.hsum;
                      min = h.hmin;
                      max = h.hmax;
                      buckets;
                    }
            in
            (name, v) :: acc)
          t.cells [])
  in
  List.sort (fun (a, _) (b, _) -> compare a b) items

let find t name = List.assoc_opt name (snapshot t)

let counter_value t name =
  match find t name with Some (Counter n) -> n | _ -> 0

let clear t = Mutex.protect t.mutex (fun () -> Hashtbl.reset t.cells)

let pp_value ppf = function
  | Counter n -> Format.fprintf ppf "%d" n
  | Gauge v -> Format.fprintf ppf "%g" v
  | Histogram { count; sum; min; max; buckets = _ } ->
      (* a declared-but-never-observed histogram has min/max at the
         infinities; render the empty series as zeros *)
      let min = if count = 0 then 0. else min
      and max = if count = 0 then 0. else max in
      Format.fprintf ppf "count %d  sum %.6f  min %.6f  mean %.6f  max %.6f"
        count sum min
        (if count = 0 then 0. else sum /. float_of_int count)
        max

let pp ppf t =
  Format.fprintf ppf "@[<v>%-32s %s@," "Metric" "Value";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-32s %a@," name pp_value v)
    (snapshot t);
  Format.fprintf ppf "@]"
