(* Per-query resource accounting.  [Gc.quick_stat] reads the mutator's
   own counters without forcing a heap walk (unlike [Gc.stat]), so a
   before/after pair costs two struct copies — cheap enough to run on
   every observed query.  The monotone fields (words allocated,
   collection counts) difference into a per-query delta; everything is
   per-domain under OCaml 5, so a delta taken around a query that fanned
   out across a pool accounts the submitting domain's share only — the
   workers' allocation is theirs.  That is the honest reading: the
   numbers answer "what did running this query cost the caller".

   One trap: on OCaml 5 native code [quick_stat]'s [minor_words] is
   only refreshed at minor-collection boundaries, so two samples with
   no minor GC in between difference to 0 no matter what ran.
   [Gc.minor_words] reads the domain's live allocation pointer and is
   exact; a sample carries both. *)

type sample = { stat : Gc.stat; minor_words : float }

let sample () = { stat = Gc.quick_stat (); minor_words = Gc.minor_words () }

type delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let zero =
  {
    minor_words = 0.;
    major_words = 0.;
    promoted_words = 0.;
    minor_collections = 0;
    major_collections = 0;
  }

let delta ~(before : sample) ~(after : sample) =
  {
    minor_words = after.minor_words -. before.minor_words;
    major_words = after.stat.Gc.major_words -. before.stat.Gc.major_words;
    promoted_words =
      after.stat.Gc.promoted_words -. before.stat.Gc.promoted_words;
    minor_collections =
      after.stat.Gc.minor_collections - before.stat.Gc.minor_collections;
    major_collections =
      after.stat.Gc.major_collections - before.stat.Gc.major_collections;
  }

let measure f =
  let before = sample () in
  let r = f () in
  (r, delta ~before ~after:(sample ()))

(* Allocated words = minor + major - promoted: promoted words were
   already counted when allocated in the minor heap. *)
let allocated_words d = d.minor_words +. d.major_words -. d.promoted_words

let to_attrs d =
  [
    ("gc.minor_words", Printf.sprintf "%.0f" d.minor_words);
    ("gc.major_words", Printf.sprintf "%.0f" d.major_words);
    ("gc.promoted_words", Printf.sprintf "%.0f" d.promoted_words);
    ("gc.minor_collections", string_of_int d.minor_collections);
    ("gc.major_collections", string_of_int d.major_collections);
  ]

let to_json d =
  Json.Obj
    [
      ("minor_words", Json.Float d.minor_words);
      ("major_words", Json.Float d.major_words);
      ("promoted_words", Json.Float d.promoted_words);
      ("minor_collections", Json.Int d.minor_collections);
      ("major_collections", Json.Int d.major_collections);
    ]

let pp ppf d =
  Format.fprintf ppf
    "minor %.0fw  major %.0fw  promoted %.0fw  minor-gcs %d  major-gcs %d"
    d.minor_words d.major_words d.promoted_words d.minor_collections
    d.major_collections
