(* The socket layer: accept loop, bounded admission queue, worker
   threads, per-request deadlines, graceful shutdown.  Everything
   protocol-shaped lives in Http, everything route-shaped in Router;
   this module owns the file descriptors and the threads.

   Shutdown uses the self-pipe trick: [stop] writes one byte that is
   never consumed, so the pipe's read end stays level-triggered readable
   and every [Unix.select] — the accept loop's and each worker's
   keep-alive wait — wakes exactly once asked. *)

type config = {
  host : string;
  port : int;
  backlog : int;
  workers : int;
  queue_capacity : int;
  request_timeout_s : float;
  io_timeout_s : float;
  limits : Http.limits;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    workers = 4;
    queue_capacity = 64;
    request_timeout_s = 30.;
    io_timeout_s = 10.;
    limits = Http.default_limits;
  }

type conn = { fd : Unix.file_descr; enqueued_at : float }

type t = {
  config : config;
  state : Router.state;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stop_mutex : Mutex.t;
  mutable stopping : bool;
  queue : conn Queue.t;
  queue_mutex : Mutex.t;
  queue_nonempty : Condition.t;
  mutable threads : Thread.t list;
}

(* --- small Unix helpers ----------------------------------------------------- *)

let rec select_retry reads timeout =
  match Unix.select reads [] [] timeout with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_retry reads timeout

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Write the whole string; false when the peer is gone (EPIPE with
   SIGPIPE ignored, reset, or a send timeout). *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | 0 -> false
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> false
  in
  go 0

let reader_of_fd fd =
  Http.reader (fun buf off len ->
      let rec go () =
        match Unix.read fd buf off len with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            raise Http.Read_timeout
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
      in
      go ())

(* --- responses the socket layer synthesizes itself -------------------------- *)

let error_body msg = Printf.sprintf "{\"error\": \"%s\"}\n" (Obs.Json.escape msg)

(* canned responses never pass through [Router.handle], so their
   status class is counted here; routed responses are counted by
   [handle] itself *)
let canned t ~status ?(headers = []) msg =
  Router.count_status t.state status;
  Http.response
    ~headers:(("Content-Type", "application/json") :: headers)
    ~status (error_body msg)

let send fd ?(keep_alive = false) resp =
  ignore (write_all fd (Http.to_string ~keep_alive resp))

(* --- per-request deadline --------------------------------------------------- *)

(* Run [f] on its own thread with [timeout_s] to finish.  [Some resp]
   when it made it; [None] when abandoned — the evaluation thread keeps
   running (harmlessly: the context is thread-safe) and cleans up the
   completion pipe itself once done. *)
let run_with_deadline ~timeout_s f =
  let pr, pw = Unix.pipe ~cloexec:true () in
  let result = ref None in
  let m = Mutex.create () in
  let abandoned = ref false in
  let t =
    Thread.create
      (fun () ->
        let v = f () in
        Mutex.protect m (fun () ->
            result := Some v;
            if !abandoned then begin
              close_quietly pr;
              close_quietly pw
            end
            else ignore (Unix.write pw (Bytes.make 1 '.') 0 1)))
      ()
  in
  let finish () =
    Thread.join t;
    close_quietly pr;
    close_quietly pw;
    Option.get !result
  in
  if select_retry [ pr ] timeout_s <> [] then Some (finish ())
  else
    (* the deadline passed — unless the evaluator slipped in between the
       select returning and us taking the lock *)
    let finished =
      Mutex.protect m (fun () ->
          Option.is_some !result
          ||
          (abandoned := true;
           false))
    in
    if finished then Some (finish ()) else None

(* --- connection handling ---------------------------------------------------- *)

let metrics_of t = Router.metrics t.state

let handle_request t fd reader =
  let cfg = t.config in
  match Http.read_request ~limits:cfg.limits reader with
  | Error Http.Closed -> `Close
  | Error Http.Timeout ->
      Obs.Metrics.incr (metrics_of t) "server.bad_requests";
      send fd (canned t ~status:408 "request timed out");
      `Close
  | Error (Http.Too_large what) ->
      Obs.Metrics.incr (metrics_of t) "server.bad_requests";
      send fd (canned t ~status:413 (what ^ " too large"));
      `Close
  | Error (Http.Bad msg) ->
      Obs.Metrics.incr (metrics_of t) "server.bad_requests";
      send fd (canned t ~status:400 msg);
      `Close
  | Ok req ->
      let keep = Http.keep_alive req && not t.stopping in
      if Router.heavy req then
        if cfg.request_timeout_s <= 0. then begin
          Obs.Metrics.incr (metrics_of t) "server.timeouts";
          send fd (canned t ~status:503 "query timed out");
          `Close
        end
        else begin
          match
            run_with_deadline ~timeout_s:cfg.request_timeout_s (fun () ->
                Router.handle t.state req)
          with
          | Some resp ->
              send fd ~keep_alive:keep resp;
              if keep then `Keep else `Close
          | None ->
              Obs.Metrics.incr (metrics_of t) "server.timeouts";
              send fd (canned t ~status:503 "query timed out");
              `Close
        end
      else begin
        send fd ~keep_alive:keep (Router.handle t.state req);
        if keep then `Keep else `Close
      end

let serve_connection t conn =
  let fd = conn.fd in
  let cfg = t.config in
  Obs.Metrics.observe (metrics_of t) "server.queue_wait_s"
    (Obs.Clock.now () -. conn.enqueued_at);
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO cfg.io_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO cfg.io_timeout_s
   with Unix.Unix_error _ -> ());
  let reader = reader_of_fd fd in
  let rec loop () =
    (* wait for the next request — or the stop pipe, so an idle
       keep-alive connection never delays shutdown *)
    let ready = select_retry [ fd; t.stop_r ] cfg.io_timeout_s in
    if List.mem fd ready then
      match handle_request t fd reader with `Keep -> loop () | `Close -> ()
    else ()
    (* stop requested or idle past the timeout: close quietly *)
  in
  (try loop () with _ -> ());
  close_quietly fd

(* --- worker / accept loops -------------------------------------------------- *)

let set_queue_depth t =
  (* callers hold [queue_mutex], so the length is coherent *)
  Obs.Metrics.set_gauge (metrics_of t) "server.queue_depth"
    (float_of_int (Queue.length t.queue))

let worker_loop t =
  let rec next () =
    let job =
      Mutex.protect t.queue_mutex (fun () ->
          let rec wait () =
            if not (Queue.is_empty t.queue) then begin
              let job = Queue.pop t.queue in
              set_queue_depth t;
              Some job
            end
            else if t.stopping then None
            else begin
              Condition.wait t.queue_nonempty t.queue_mutex;
              wait ()
            end
          in
          wait ())
    in
    match job with
    | None -> ()
    | Some conn ->
        (* a connection still queued at shutdown is closed unserved;
           in-flight ones (already with a worker) finish *)
        if t.stopping then close_quietly conn.fd else serve_connection t conn;
        next ()
  in
  next ()

let try_enqueue t fd =
  Mutex.protect t.queue_mutex (fun () ->
      if t.stopping || Queue.length t.queue >= t.config.queue_capacity then
        false
      else begin
        Queue.push { fd; enqueued_at = Obs.Clock.now () } t.queue;
        set_queue_depth t;
        Condition.signal t.queue_nonempty;
        true
      end)

let reject t fd =
  Obs.Metrics.incr (metrics_of t) "server.rejected";
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1. with Unix.Unix_error _ -> ());
  send fd
    (canned t ~status:429 ~headers:[ ("Retry-After", "1") ] "server saturated");
  close_quietly fd

let accept_loop t =
  let rec loop () =
    let ready = select_retry [ t.listen_fd; t.stop_r ] (-1.) in
    if List.mem t.stop_r ready then ()
    else begin
      (match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ ->
          Obs.Metrics.incr (metrics_of t) "server.connections";
          if not (try_enqueue t fd) then reject t fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --- lifecycle -------------------------------------------------------------- *)

let start ?(config = default_config) state =
  (* a worker writing to a half-closed socket must get EPIPE back, not
     kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.inet_addr_of_string config.host in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (addr, config.port));
     Unix.listen listen_fd config.backlog
   with e ->
     close_quietly listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      config;
      state;
      listen_fd;
      bound_port;
      stop_r;
      stop_w;
      stop_mutex = Mutex.create ();
      stopping = false;
      queue = Queue.create ();
      queue_mutex = Mutex.create ();
      queue_nonempty = Condition.create ();
      threads = [];
    }
  in
  let workers =
    List.init (max 1 config.workers) (fun _ -> Thread.create worker_loop t)
  in
  let acceptor = Thread.create accept_loop t in
  t.threads <- acceptor :: workers;
  t

let port t = t.bound_port

let stop t =
  Mutex.protect t.stop_mutex (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        (* the byte is never read: the pipe stays readable so every
           select — acceptor and workers alike — wakes *)
        ignore (Unix.write t.stop_w (Bytes.make 1 's') 0 1);
        Mutex.protect t.queue_mutex (fun () ->
            Condition.broadcast t.queue_nonempty)
      end)

let wait t =
  (* poll rather than park in Thread.join: a signal's OCaml handler only
     runs at a safe point, and with every thread blocked in C (join,
     select, condition wait) there is none — Thread.delay returns early
     on EINTR and gives the runtime one *)
  while not t.stopping do
    Thread.delay 0.1
  done;
  List.iter Thread.join t.threads;
  t.threads <- [];
  (* drain connections accepted but never dequeued *)
  Mutex.protect t.queue_mutex (fun () ->
      Queue.iter (fun c -> close_quietly c.fd) t.queue;
      Queue.clear t.queue);
  close_quietly t.listen_fd;
  close_quietly t.stop_r;
  close_quietly t.stop_w

let install_signal_handlers t =
  let handler _ = stop t in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle handler)
   with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)
  with Invalid_argument _ -> ()
