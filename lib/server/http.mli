(** A minimal HTTP/1.1 message layer over pluggable byte reads — just
    enough protocol for {!Server}: request parsing with hard size
    limits, response rendering, and client-side response parsing for
    {!Client} and the tests.

    Nothing here touches a socket: the parser pulls bytes through a
    [read] callback (the server wraps [Unix.read], the unit tests wrap a
    string), so every protocol corner — truncated bodies, oversized
    payloads, split reads, timeouts — is testable in memory. *)

exception Read_timeout
(** The [read] callback raises this when the underlying transport timed
    out (the server maps [EAGAIN]/[EWOULDBLOCK] under [SO_RCVTIMEO] to
    it); the parser turns it into {!Timeout} or a clean {!Closed}
    depending on whether the request had started. *)

type limits = {
  max_header_bytes : int;
      (** request line + headers, terminator included (default 8192) *)
  max_body_bytes : int;  (** declared Content-Length cap (default 1 MiB) *)
}

val default_limits : limits

type request = {
  meth : string;  (** verbatim, e.g. ["GET"] *)
  target : string;  (** the request target, e.g. ["/query"] *)
  version : string;  (** ["HTTP/1.1"] *)
  headers : (string * string) list;
      (** names lowercased, values trimmed, in order *)
  body : string;
}

type error =
  | Closed
      (** the peer closed (or went idle past the timeout) before sending
          anything — the clean end of a keep-alive connection, not a
          protocol error *)
  | Timeout  (** the transport timed out mid-request *)
  | Too_large of string
      (** headers or declared body beyond {!limits}; the message says
          which *)
  | Bad of string  (** malformed request; the message says how *)

type reader
(** Buffered byte source.  One reader lives for a whole connection, so
    bytes buffered past a message boundary carry into the next parse
    call. *)

val reader : (bytes -> int -> int -> int) -> reader
(** Wrap a pull callback: [read buf off len] writes at most [len] bytes
    into [buf] at [off] and returns how many (0 for end of stream). *)

val read_request :
  ?limits:limits -> reader -> (request, error) result
(** Pull one request through the reader.  The body is read iff a valid
    [Content-Length] is present; requests without one have an empty
    body ([Transfer-Encoding] is not supported and yields {!Bad}). *)

val header : request -> string -> string option
(** Case-insensitive header lookup (names are stored lowercased). *)

val keep_alive : request -> bool
(** HTTP/1.1 defaults to persistent unless [Connection: close];
    HTTP/1.0 to close unless [Connection: keep-alive]. *)

(** {1 Responses} *)

type response = {
  status : int;
  headers : (string * string) list;
      (** extra headers; [Content-Length] and [Connection] are added by
          {!to_string} *)
  body : string;
}

val response : ?headers:(string * string) list -> status:int -> string -> response

val reason_phrase : int -> string
(** ["OK"], ["Not Found"], ... — ["Unknown"] for unmapped codes. *)

val to_string : ?keep_alive:bool -> response -> string
(** Render status line, headers (caller's first, then [Content-Length]
    and [Connection: keep-alive|close]), blank line, body. *)

(** {1 Client side} *)

val read_response :
  ?limits:limits -> reader -> (int * (string * string) list * string, string) result
(** Parse one response: status code, lowercased headers, body (requires
    [Content-Length]; this layer never sends chunked replies). *)
