(* HTTP/1.1 message reading and writing over a pull callback.

   The parser is deliberately strict and small: request line, headers,
   optional Content-Length body.  No chunked transfer encoding, no
   continuation lines, no pipelining — the server rejects what it does
   not speak rather than half-supporting it.  All the states a hostile
   or broken client can produce (EOF mid-line, oversized headers, a
   Content-Length lying about the body) map to typed errors the server
   turns into status codes. *)

exception Read_timeout

type limits = { max_header_bytes : int; max_body_bytes : int }

let default_limits = { max_header_bytes = 8192; max_body_bytes = 1 lsl 20 }

type request = {
  meth : string;
  target : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type error =
  | Closed
  | Timeout
  | Too_large of string
  | Bad of string

(* --- buffered pull reader -------------------------------------------------- *)

(* One reader lives for the whole connection, so bytes buffered past a
   request boundary survive into the next read_request call.  [pos] is
   the consumed prefix of [buf]. *)
type reader = {
  read : bytes -> int -> int -> int;
  chunk : bytes;
  buf : Buffer.t;
  mutable pos : int;
}

let reader read =
  { read; chunk = Bytes.create 4096; buf = Buffer.create 512; pos = 0 }

let fill c =
  match c.read c.chunk 0 (Bytes.length c.chunk) with
  | 0 -> false
  | n ->
      Buffer.add_subbytes c.buf c.chunk 0 n;
      true

let available c = Buffer.length c.buf - c.pos

(* Drop the consumed prefix between messages so a long-lived keep-alive
   connection does not accrete every request it ever carried. *)
let compact c =
  if c.pos > 0 && available c = 0 then begin
    Buffer.clear c.buf;
    c.pos <- 0
  end

(* Index of the first "\r\n\r\n" at or after [c.pos], or None. *)
let find_terminator c =
  let s = Buffer.contents c.buf in
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go c.pos

let lowercase = String.lowercase_ascii
let trim = String.trim

let split_on_first ch s =
  match String.index_opt s ch with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let parse_headers lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match split_on_first ':' line with
        | None -> Error (Bad (Printf.sprintf "malformed header %S" line))
        | Some (name, value) ->
            let name = lowercase (trim name) in
            if name = "" then
              Error (Bad (Printf.sprintf "malformed header %S" line))
            else go ((name, trim value) :: acc) rest)
  in
  go [] lines

let header_assoc headers name = List.assoc_opt (lowercase name) headers

(* Read up to the header terminator; the reader is left positioned at
   the first body byte.  Returns the block without the terminator. *)
let read_header_block ~limits c =
  let rec go () =
    match find_terminator c with
    | Some i ->
        let s = Buffer.contents c.buf in
        let block = String.sub s c.pos (i - c.pos) in
        c.pos <- i + 4;
        if String.length block + 4 > limits.max_header_bytes then
          Error (Too_large "header block")
        else Ok block
    | None ->
        if available c > limits.max_header_bytes then
          Error (Too_large "header block")
        else if fill c then go ()
        else if available c = 0 then Error Closed
        else Error (Bad "unexpected end of stream inside the header block")
  in
  go ()

let read_body ~limits c length =
  if length > limits.max_body_bytes then Error (Too_large "body")
  else
    let rec go () =
      if available c >= length then begin
        let s = Buffer.sub c.buf c.pos length in
        c.pos <- c.pos + length;
        Ok s
      end
      else if fill c then go ()
      else Error (Bad "unexpected end of stream inside the body")
    in
    go ()

let content_length headers =
  match header_assoc headers "content-length" with
  | None -> Ok 0
  | Some v -> (
      match int_of_string_opt (trim v) with
      | Some n when n >= 0 -> Ok n
      | Some _ | None ->
          Error (Bad (Printf.sprintf "invalid content-length %S" v)))

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] when meth <> "" && target <> "" ->
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        Error (Bad (Printf.sprintf "unsupported version %S" version))
      else Ok (meth, target, version)
  | _ -> Error (Bad (Printf.sprintf "malformed request line %S" line))

let read_request ?(limits = default_limits) c =
  compact c;
  let before = available c in
  match
    match read_header_block ~limits c with
    | Error _ as e -> e
    | Ok block -> (
        match String.split_on_char '\n' block with
        | [] -> Error (Bad "empty request")
        | first :: rest -> (
            match parse_request_line (strip_cr first) with
            | Error _ as e -> e
            | Ok (meth, target, version) -> (
                match parse_headers (List.map strip_cr rest) with
                | Error _ as e -> e
                | Ok headers -> (
                    match header_assoc headers "transfer-encoding" with
                    | Some _ -> Error (Bad "transfer-encoding is not supported")
                    | None -> (
                        match content_length headers with
                        | Error _ as e -> e
                        | Ok length -> (
                            match read_body ~limits c length with
                            | Error _ as e -> e
                            | Ok body ->
                                Ok { meth; target; version; headers; body }))))))
  with
  | r -> r
  | exception Read_timeout ->
      (* an idle keep-alive connection timing out is a clean close; a
         timeout after bytes arrived is a stalled request *)
      if available c > before then Error Timeout else Error Closed

let header req name = header_assoc req.headers name

let keep_alive req =
  match Option.map lowercase (header req "connection") with
  | Some "close" -> false
  | Some "keep-alive" -> true
  | Some _ | None -> req.version = "HTTP/1.1"

(* --- responses ------------------------------------------------------------- *)

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let response ?(headers = []) ~status body = { status; headers; body }

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let to_string ?(keep_alive = false) r =
  let b = Buffer.create (String.length r.body + 128) in
  Printf.bprintf b "HTTP/1.1 %d %s\r\n" r.status (reason_phrase r.status);
  List.iter (fun (k, v) -> Printf.bprintf b "%s: %s\r\n" k v) r.headers;
  Printf.bprintf b "Content-Length: %d\r\n" (String.length r.body);
  Printf.bprintf b "Connection: %s\r\n"
    (if keep_alive then "keep-alive" else "close");
  Buffer.add_string b "\r\n";
  Buffer.add_string b r.body;
  Buffer.contents b

(* --- client-side response parsing ------------------------------------------ *)

let read_response ?(limits = default_limits) c =
  compact c;
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match
    match read_header_block ~limits c with
    | Error Closed -> fail "connection closed before a response"
    | Error Timeout -> fail "response timed out"
    | Error (Too_large what) -> fail "response %s too large" what
    | Error (Bad msg) -> fail "%s" msg
    | Ok block -> (
        match List.map strip_cr (String.split_on_char '\n' block) with
        | [] -> fail "empty response"
        | status_line :: header_lines -> (
            let code =
              match String.split_on_char ' ' status_line with
              | version :: code :: _
                when String.length version >= 5
                     && String.sub version 0 5 = "HTTP/" ->
                  int_of_string_opt code
              | _ -> None
            in
            match code with
            | None -> fail "malformed status line %S" status_line
            | Some code -> (
                match parse_headers header_lines with
                | Error (Bad msg) -> fail "%s" msg
                | Error _ -> fail "malformed response headers"
                | Ok headers -> (
                    match content_length headers with
                    | Error _ -> fail "invalid response content-length"
                    | Ok length -> (
                        match read_body ~limits c length with
                        | Ok body -> Ok (code, headers, body)
                        | Error (Bad msg) -> fail "%s" msg
                        | Error (Too_large what) ->
                            fail "response %s too large" what
                        | Error Closed | Error Timeout ->
                            fail "connection lost inside the response body")))))
  with
  | r -> r
  | exception Read_timeout -> fail "response timed out"
