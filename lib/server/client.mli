(** A one-shot HTTP client over {!Http}'s response parser — what the
    [htlq http] subcommand, the cram tests and the serve bench use to
    talk to a running server without any external tooling. *)

val request :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** One request, [Connection: close]: connect, send, parse the response,
    close.  [timeout_s] (default 30.) bounds the connect and each
    read/write.  [headers] are extra request headers (e.g.
    [X-Trace-Id]), sent verbatim before the generated ones.  [Error
    msg] on refused connections, timeouts and protocol violations. *)

type conn
(** A persistent keep-alive connection — the serve bench's closed-loop
    clients reuse one per thread. *)

val connect : ?timeout_s:float -> host:string -> port:int -> unit -> conn

val roundtrip :
  conn ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** One request/response on the open connection ([Connection:
    keep-alive]).  After an [Error] the connection is in an unknown
    state — {!close} it. *)

val close : conn -> unit
