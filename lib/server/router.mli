(** Request routing over a warm {!Engine.Context}: the pure core of the
    server — an {!Http.request} in, an {!Http.response} out, no sockets
    — so every route, status code and wire-format corner is unit-testable
    in memory.

    Routes:
    - [POST /query] — one HTL query (JSON body, {!query_req}) → ranked
      segments as JSON, or an EXPLAIN plan with [explain: true];
    - [POST /batch] — many queries through {!Engine.Query.run_batch},
      per-query error isolation (one bad query yields an error slot,
      never a failed batch);
    - [GET /metrics] — Prometheus text exposition of the state's
      registry;
    - [GET /slowlog] — the slow-query ring as JSONL;
    - [GET /stats] — the always-on {!Obs.Stats} collector as JSON:
      per-fingerprint EWMA latency and windowed quantiles, per-atom
      observed selectivity, per-backend error rates;
    - [GET /trace] — retained trace summaries (JSON array);
    - [GET /trace/<id>] — one retained trace as Chrome trace-event
      JSON;
    - [GET /healthz] — liveness probe, ["ok"].

    Every request gets a trace id — the client's ([X-Trace-Id] bare, or
    a W3C [traceparent]) when well-formed, a fresh one otherwise — and
    the response always answers with an [X-Trace-Id] header.  Sampled
    requests (see {!make}'s [trace_sample]/[trace_slow_s]) additionally
    run under a private per-request tracer whose frozen span tree lands
    in the {!Obs.Tracestore} ring; everything else stays on the
    zero-cost nil-tracer path.

    The context is shared by every concurrent request: its cache,
    index registry, hash-consing table and metrics are all thread-safe
    (DESIGN.md §2.13, §2.17), so the router takes no lock of its own —
    the per-request tracer is reached only through a request-scoped
    derived context (DESIGN.md §2.20). *)

(** {1 Wire format} *)

type query_req = {
  q : string;  (** the HTL query text (JSON field ["query"]) *)
  level : int option;
      (** hierarchy level to assert on; requires a store-backed dataset *)
  k : int;  (** how many segments to return (default 10) *)
  backend : Engine.Query.backend;
  explain : bool;  (** return the static evaluation plan instead *)
}

val default_k : int

val query_req_to_json : query_req -> Obs.Json.t
val query_req_of_json : Obs.Json.t -> (query_req, string) result

val results_to_json : (int * Simlist.Sim.t) list -> Obs.Json.t
(** The ranked-segments array: one object per segment with [id], [sim]
    (the actual value), [max] and [fraction]. *)

val results_of_json :
  Obs.Json.t -> ((int * Simlist.Sim.t) list, string) result
(** Inverse of {!results_to_json} ([fraction] is derived and ignored);
    gives the tests and clients a typed view of a response. *)

(** {1 State} *)

type state

val make :
  ?metrics:Obs.Metrics.t ->
  ?querylog:Obs.Querylog.t ->
  ?stats:Obs.Stats.t ->
  ?tracestore:Obs.Tracestore.t ->
  ?trace_sample:int ->
  ?trace_slow_s:float ->
  ?sharded:Htl_shard.Sharded.t ->
  Engine.Context.t ->
  state
(** Wrap a context for serving: attach [metrics] (fresh by default),
    [querylog] (fresh, threshold 100 ms, by default) and [stats] (fresh
    by default — the collector is always on) to it and pre-register
    every [server.*] series (see {!preregister}) so the exposition is
    stable from the first scrape.  Attach a domain pool to the context
    before calling when parallel evaluation is wanted.

    [trace_sample] samples 1 in N requests (deterministic counter over
    all requests; default 0 = never) into a per-request tracer retained
    in [tracestore] (fresh, capacity 64, by default).  [trace_slow_s]
    additionally traces {e every} request but retains the tree only
    when the request takes at least that many seconds — the retroactive
    slow-trace net.  The two compose; with neither, requests stay on
    the nil-tracer path.
    @raise Invalid_argument when [trace_sample < 0] or
    [trace_slow_s < 0].

    When [sharded] is given, [/query] and [/batch] evaluate against it
    (scatter–gather with coordinator merge) instead of the context; the
    sharded handle should have been created with the same [metrics],
    [querylog] and [stats] so [/metrics], [/slowlog] and [/stats] keep
    reporting it. *)

val context : state -> Engine.Context.t
val sharded : state -> Htl_shard.Sharded.t option
val metrics : state -> Obs.Metrics.t
val querylog : state -> Obs.Querylog.t
val stats : state -> Obs.Stats.t
val tracestore : state -> Obs.Tracestore.t

val preregister : Obs.Metrics.t -> unit
(** Register the [server.*] counters ([connections], [requests],
    [responses.2xx/4xx/5xx], [rejected], [timeouts], [bad_requests],
    [ingested], [traced]), gauges ([queue_depth], [active_requests])
    and histograms ([request_latency_s], [queue_wait_s]) at zero. *)

val count_status : state -> int -> unit
(** Bump the [server.responses.<class>] counter for a status code — the
    socket layer uses this for responses it synthesizes itself (429,
    503, protocol errors). *)

val handle : state -> Http.request -> Http.response
(** Dispatch one request: counts [server.requests], observes
    [server.request_latency_s], counts the response's status class,
    tracks [server.active_requests], resolves the trace id and answers
    with it in [X-Trace-Id], and — when the request is sampled or ends
    up past the slow threshold — freezes its span tree into the trace
    ring.  Never raises — unexpected evaluator exceptions become a
    500. *)

val heavy : Http.request -> bool
(** Whether the request runs queries ([/query], [/batch]) — the routes
    the socket layer guards with the per-request deadline. *)
