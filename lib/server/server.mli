(** The long-running query service: a TCP accept loop and a pool of
    connection worker threads around one warm {!Router.state}.

    Threading model (DESIGN.md §2.17): systhreads handle the sockets —
    they interleave around blocking [read]/[write], which is all a
    server spends its time on — while CPU-parallel evaluation stays
    with the domain pool attached to the engine context.  The shared
    context's cache, hash-consing table, index registry and metrics are
    thread-safe, so concurrent requests need no server-level lock.

    Robustness:
    - {b admission control} — at most [queue_capacity] accepted
      connections may wait for a worker; beyond that the accept loop
      answers [429 Too Many Requests] with [Retry-After: 1] and closes
      ([server.rejected]);
    - {b per-request deadline} — query routes ({!Router.heavy}) run in
      an evaluation thread with [request_timeout_s] to finish; past the
      deadline the client gets [503] and the connection closes, while
      the evaluation finishes harmlessly on its thread (every shared
      structure is thread-safe, so an abandoned query cannot poison the
      context).  [request_timeout_s <= 0] means the deadline has already
      passed — every heavy request answers [503] — which gives tests a
      deterministic timeout;
    - {b io timeouts} — reads and writes carry [io_timeout_s] (socket
      timeouts); an idle keep-alive connection is closed quietly, a
      stall mid-request answers [408];
    - {b size limits} — {!Http.limits} cap the header block and body
      ([413]);
    - {b graceful shutdown} — {!stop} (or SIGINT/SIGTERM after
      {!install_signal_handlers}) stops accepting, lets in-flight
      requests finish, closes idle and queued connections, and lets
      {!wait} return. *)

type config = {
  host : string;  (** bind address (default ["127.0.0.1"]) *)
  port : int;  (** 0 picks an ephemeral port — read it back with {!port} *)
  backlog : int;  (** [listen] backlog (default 64) *)
  workers : int;  (** connection worker threads (default 4) *)
  queue_capacity : int;
      (** accepted connections allowed to wait for a worker (default 64);
          beyond it: 429 *)
  request_timeout_s : float;
      (** deadline for {!Router.heavy} routes (default 30.); [<= 0]
          rejects every heavy request with 503 *)
  io_timeout_s : float;
      (** socket read/write timeout and keep-alive idle limit
          (default 10.) *)
  limits : Http.limits;
}

val default_config : config

type t

val start : ?config:config -> Router.state -> t
(** Bind, listen and spawn the accept loop plus [workers] worker
    threads; returns once the socket is live (so {!port} is valid).
    @raise Unix.Unix_error when the bind fails (port taken, bad host). *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port] was 0. *)

val stop : t -> unit
(** Begin shutdown: one byte down the stop pipe wakes the accept loop
    and every worker wait.  Idempotent, safe from a signal handler;
    returns without waiting — follow with {!wait}. *)

val wait : t -> unit
(** Block until the accept loop and all workers have exited (after
    {!stop}, or a signal once {!install_signal_handlers} is in place),
    then release the listening socket. *)

val install_signal_handlers : t -> unit
(** Route SIGINT and SIGTERM to {!stop} for a graceful exit. *)
