(* Minimal HTTP client: enough to drive the server from the CLI, the
   tests and the bench without curl.  Requests always carry an explicit
   Content-Length; responses come back through Http.read_response. *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write fd b off (n - off) with
      | 0 -> Error "connection closed while sending the request"
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let reader_of_fd fd =
  Http.reader (fun buf off len ->
      let rec go () =
        match Unix.read fd buf off len with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            raise Http.Read_timeout
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
      in
      go ())

type conn = { fd : Unix.file_descr; reader : Http.reader; host : string }

let connect ?(timeout_s = 30.) ~host ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = reader_of_fd fd; host = Printf.sprintf "%s:%d" host port }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let render ~keep_alive ~host ~meth ~target ~headers ~body =
  let b = Buffer.create (String.length body + 128) in
  Printf.bprintf b "%s %s HTTP/1.1\r\n" meth target;
  Printf.bprintf b "Host: %s\r\n" host;
  List.iter (fun (name, value) -> Printf.bprintf b "%s: %s\r\n" name value) headers;
  if body <> "" then Buffer.add_string b "Content-Type: application/json\r\n";
  Printf.bprintf b "Content-Length: %d\r\n" (String.length body);
  Printf.bprintf b "Connection: %s\r\n"
    (if keep_alive then "keep-alive" else "close");
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b

let roundtrip_on ~keep_alive c ~meth ~target ~headers ~body =
  match
    write_all c.fd
      (render ~keep_alive ~host:c.host ~meth ~target ~headers ~body)
  with
  | Error _ as e -> e
  | Ok () -> Http.read_response c.reader

let roundtrip c ~meth ~target ?(headers = []) ?(body = "") () =
  roundtrip_on ~keep_alive:true c ~meth ~target ~headers ~body

let request ?(timeout_s = 30.) ~host ~port ~meth ~target ?(headers = [])
    ?(body = "") () =
  match connect ~timeout_s ~host ~port () with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))
  | exception Failure msg -> Error msg
  | c ->
      let r = roundtrip_on ~keep_alive:false c ~meth ~target ~headers ~body in
      close c;
      r
