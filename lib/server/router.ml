(* Routing and the JSON wire format.  Everything here is pure with
   respect to the transport: Http.request in, Http.response out.  The
   engine context is the warm shared state — subformula cache, index
   registry, metrics — and is already thread-safe, so concurrent calls
   to [handle] need no router-level lock. *)

module Json = Obs.Json

(* --- wire format ----------------------------------------------------------- *)

type query_req = {
  q : string;
  level : int option;
  k : int;
  backend : Engine.Query.backend;
  explain : bool;
}

let default_k = 10

let backend_name = function
  | Engine.Query.Direct_backend -> "direct"
  | Engine.Query.Sql_backend_choice -> "sql"
  | Engine.Query.Auto_backend -> "auto"

let backend_of_name = function
  | "direct" -> Ok Engine.Query.Direct_backend
  | "sql" -> Ok Engine.Query.Sql_backend_choice
  | "auto" -> Ok Engine.Query.Auto_backend
  | other ->
      Error
        (Printf.sprintf "unknown backend %S (use direct, sql or auto)" other)

let query_req_to_json r =
  Json.Obj
    (("query", Json.String r.q)
     :: (match r.level with
        | Some l -> [ ("level", Json.Int l) ]
        | None -> [])
    @ [
        ("k", Json.Int r.k);
        ("backend", Json.String (backend_name r.backend));
        ("explain", Json.Bool r.explain);
      ])

(* The fields /query and /batch share: level, k, backend, explain. *)
let shared_fields_of_json json =
  let ( let* ) = Result.bind in
  let field name = Json.member name json in
  let* level =
    match field "level" with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int l) -> Ok (Some l)
    | Some _ -> Error "\"level\" must be an integer"
  in
  let* k =
    match field "k" with
    | None | Some Json.Null -> Ok default_k
    | Some (Json.Int k) when k >= 0 -> Ok k
    | Some _ -> Error "\"k\" must be a non-negative integer"
  in
  let* backend =
    match field "backend" with
    | None | Some Json.Null -> Ok Engine.Query.Direct_backend
    | Some (Json.String s) -> backend_of_name s
    | Some _ -> Error "\"backend\" must be \"direct\", \"sql\" or \"auto\""
  in
  let* explain =
    match field "explain" with
    | None | Some Json.Null -> Ok false
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error "\"explain\" must be a boolean"
  in
  Ok (level, k, backend, explain)

let query_req_of_json json =
  let ( let* ) = Result.bind in
  let* q =
    match Json.member "query" json with
    | Some (Json.String s) -> Ok s
    | Some _ -> Error "\"query\" must be a string"
    | None -> Error "missing \"query\" field"
  in
  let* level, k, backend, explain = shared_fields_of_json json in
  Ok { q; level; k; backend; explain }

let results_to_json results =
  Json.Array
    (List.map
       (fun (id, sim) ->
         Json.Obj
           [
             ("id", Json.Int id);
             ("sim", Json.Float (Simlist.Sim.actual sim));
             ("max", Json.Float (Simlist.Sim.max_sim sim));
             ("fraction", Json.Float (Simlist.Sim.fraction sim));
           ])
       results)

let results_of_json json =
  let ( let* ) = Result.bind in
  let num name j =
    match Option.bind (Json.member name j) Json.to_float_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "result entry missing %S" name)
  in
  let entry j =
    let* id =
      match Json.member "id" j with
      | Some (Json.Int id) -> Ok id
      | _ -> Error "result entry missing \"id\""
    in
    let* actual = num "sim" j in
    let* max = num "max" j in
    match Simlist.Sim.make ~actual ~max with
    | sim -> Ok (id, sim)
    | exception Invalid_argument msg -> Error msg
  in
  match json with
  | Json.Array items ->
      List.fold_right
        (fun item acc ->
          let* tl = acc in
          let* hd = entry item in
          Ok (hd :: tl))
        items (Ok [])
  | _ -> Error "results must be an array"

(* --- state ------------------------------------------------------------------ *)

(* When to give a request its own tracer: 1-in-[sample_every] requests
   (0 = never), plus — when [slow_s] is set — every request, whose tree
   is then kept only if the request ends up slower than the threshold
   (retroactive keep: the tree must exist before we know the latency). *)
type trace_policy = { sample_every : int; slow_s : float option }

type state = {
  ctx : Engine.Context.t;
  sharded : Htl_shard.Sharded.t option;
  metrics : Obs.Metrics.t;
  querylog : Obs.Querylog.t;
  stats : Obs.Stats.t;
  tracestore : Obs.Tracestore.t;
  policy : trace_policy;
  sample_counter : int Atomic.t;
  active : int Atomic.t;
}

let preregister m =
  List.iter
    (Obs.Metrics.declare_counter m)
    [
      "server.connections";
      "server.requests";
      "server.responses.2xx";
      "server.responses.4xx";
      "server.responses.5xx";
      "server.rejected";
      "server.timeouts";
      "server.bad_requests";
      "server.ingested";
      "server.traced";
    ];
  List.iter
    (Obs.Metrics.declare_gauge m)
    [ "server.queue_depth"; "server.active_requests" ];
  List.iter
    (Obs.Metrics.declare_histogram m)
    [ "server.request_latency_s"; "server.queue_wait_s" ]

let make ?metrics ?querylog ?stats ?tracestore ?(trace_sample = 0)
    ?trace_slow_s ?sharded ctx =
  if trace_sample < 0 then
    invalid_arg
      (Printf.sprintf "Server.Router.make: trace_sample %d < 0" trace_sample);
  (match trace_slow_s with
  | Some s when s < 0. ->
      invalid_arg
        (Printf.sprintf "Server.Router.make: trace_slow_s %g < 0" s)
  | Some _ | None -> ());
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let querylog =
    match querylog with
    | Some q -> q
    | None -> Obs.Querylog.create ~threshold_s:0.1 ()
  in
  let stats = match stats with Some s -> s | None -> Obs.Stats.create () in
  let tracestore =
    match tracestore with Some t -> t | None -> Obs.Tracestore.create ()
  in
  preregister metrics;
  let ctx =
    Engine.Context.with_stats
      (Engine.Context.with_querylog
         (Engine.Context.with_metrics ctx metrics)
         querylog)
      stats
  in
  {
    ctx;
    sharded;
    metrics;
    querylog;
    stats;
    tracestore;
    policy = { sample_every = trace_sample; slow_s = trace_slow_s };
    sample_counter = Atomic.make 0;
    active = Atomic.make 0;
  }

let context s = s.ctx
let sharded s = s.sharded
let metrics s = s.metrics
let querylog s = s.querylog
let stats s = s.stats
let tracestore s = s.tracestore

let count_status s status =
  let series =
    if status >= 200 && status < 300 then Some "server.responses.2xx"
    else if status >= 400 && status < 500 then Some "server.responses.4xx"
    else if status >= 500 then Some "server.responses.5xx"
    else None
  in
  Option.iter (fun name -> Obs.Metrics.incr s.metrics name) series

(* --- responses -------------------------------------------------------------- *)

let json_headers = [ ("Content-Type", "application/json") ]
let text_headers = [ ("Content-Type", "text/plain; charset=utf-8") ]

let json_response ~status json =
  Http.response ~headers:json_headers ~status (Json.to_string json ^ "\n")

let error_response ~status msg =
  json_response ~status (Json.Obj [ ("error", Json.String msg) ])

(* --- query evaluation ------------------------------------------------------- *)

let ctx_for_level ctx = function
  | None -> Ok ctx
  | Some level -> (
      match ctx.Engine.Context.store with
      | None -> Error "\"level\" requires a store-backed dataset"
      | Some store ->
          let levels = Video_model.Store.levels store in
          if level < 1 || level > levels then
            Error
              (Printf.sprintf "level %d out of range 1..%d" level levels)
          else
            Ok
              (Engine.Context.with_level ctx ~level
                 ~extents:(Video_model.Store.extents_at store ~level)))

module Sharded = Htl_shard.Sharded

let sharded_for_level sh = function
  | None -> Ok sh
  | Some level ->
      let levels = Sharded.levels sh in
      if level < 1 || level > levels then
        Error (Printf.sprintf "level %d out of range 1..%d" level levels)
      else Ok (Sharded.with_level sh ~level)

let sharded_result_json sh req f =
  let cls = Htl.Classify.classify f in
  if req.explain then
    Json.Obj
      [
        ("class", Json.String (Htl.Classify.cls_to_string cls));
        ("plan", Json.String (Sharded.explain ~backend:req.backend sh f));
      ]
  else
    let list = Sharded.run ~backend:req.backend sh f in
    let top = Engine.Topk.top_k list ~k:req.k in
    Json.Obj
      [
        ("class", Json.String (Htl.Classify.cls_to_string cls));
        ("count", Json.Int (Simlist.Sim_list.length list));
        ("results", results_to_json top);
      ]

let query_result_json ctx req f =
  let cls = Htl.Classify.classify f in
  if req.explain then
    let report = Engine.Query.explain ~backend:req.backend ctx f in
    Json.Obj
      [
        ("class", Json.String (Htl.Classify.cls_to_string cls));
        ("plan", Json.String (Format.asprintf "%a" Engine.Explain.pp report));
      ]
  else
    let list = Engine.Query.run_observed ~backend:req.backend ctx f in
    let top = Engine.Topk.top_k list ~k:req.k in
    Json.Obj
      [
        ("class", Json.String (Htl.Classify.cls_to_string cls));
        ("count", Json.Int (Simlist.Sim_list.length list));
        ("results", results_to_json top);
      ]

let run_query state req =
  match state.sharded with
  | Some sh -> (
      match sharded_for_level sh req.level with
      | Error msg -> error_response ~status:400 msg
      | Ok sh -> (
          match Htl.Parser.formula_of_string_opt req.q with
          | Error msg -> error_response ~status:400 ("syntax error: " ^ msg)
          | Ok f -> (
              match sharded_result_json sh req f with
              | json -> json_response ~status:200 json
              | exception Engine.Query.Error msg ->
                  error_response ~status:400 msg)))
  | None -> (
      match ctx_for_level state.ctx req.level with
      | Error msg -> error_response ~status:400 msg
      | Ok ctx -> (
          match Htl.Parser.formula_of_string_opt req.q with
          | Error msg -> error_response ~status:400 ("syntax error: " ^ msg)
          | Ok f -> (
              match query_result_json ctx req f with
              | json -> json_response ~status:200 json
              | exception Engine.Query.Error msg ->
                  error_response ~status:400 msg)))

(* Batch: queries are independent; a parse failure occupies its error
   slot without touching its neighbours, and evaluation failures come
   back as [Error msg] from run_batch itself. *)
let run_batch state req_json =
  let ( let* ) = Result.bind in
  let parsed =
    let* level, k, backend, _explain = shared_fields_of_json req_json in
    let* queries =
      match Json.member "queries" req_json with
      | Some (Json.Array items) ->
          List.fold_right
            (fun item acc ->
              let* tl = acc in
              match item with
              | Json.String q -> Ok (q :: tl)
              | _ -> Error "\"queries\" must be an array of strings")
            items (Ok [])
      | Some _ -> Error "\"queries\" must be an array of strings"
      | None -> Error "missing \"queries\" field"
    in
    let* eval =
      match state.sharded with
      | Some sh ->
          let* sh = sharded_for_level sh level in
          Ok (fun backend formulas -> Sharded.run_batch ~backend sh formulas)
      | None ->
          let* ctx = ctx_for_level state.ctx level in
          Ok
            (fun backend formulas ->
              Engine.Query.run_batch ~backend ctx formulas)
    in
    Ok (k, backend, queries, eval)
  in
  match parsed with
  | Error msg -> error_response ~status:400 msg
  | Ok (k, backend, queries, eval) ->
      let slots =
        List.map
          (fun q ->
            match Htl.Parser.formula_of_string_opt q with
            | Error msg -> Error ("syntax error: " ^ msg)
            | Ok f -> Ok f)
          queries
      in
      let formulas = List.filter_map Result.to_option slots in
      let outcomes = eval backend formulas in
      (* stitch evaluation outcomes back into the parse-error slots *)
      let rec stitch slots outcomes =
        match (slots, outcomes) with
        | [], _ -> []
        | Error msg :: slots, outcomes ->
            Json.Obj [ ("error", Json.String msg) ] :: stitch slots outcomes
        | Ok f :: slots, outcome :: outcomes ->
            (match outcome with
            | Ok list ->
                Json.Obj
                  [
                    ( "class",
                      Json.String
                        (Htl.Classify.cls_to_string (Htl.Classify.classify f))
                    );
                    ("count", Json.Int (Simlist.Sim_list.length list));
                    ("results", results_to_json (Engine.Topk.top_k list ~k));
                  ]
            | Error msg -> Json.Obj [ ("error", Json.String msg) ])
            :: stitch slots outcomes
        | Ok _ :: _, [] ->
            (* run_batch returns one outcome per formula, so this arm is
               unreachable; answer in kind rather than crash *)
            [ Json.Obj [ ("error", Json.String "missing batch outcome") ] ]
      in
      json_response ~status:200
        (Json.Obj [ ("results", Json.Array (stitch slots outcomes)) ])

(* --- ingestion -------------------------------------------------------------- *)

(* Wire format of POST /ingest:
     { "segments": [ { "attrs": {..}, "objects": [ {"id": 3, "type":
       "person", "attrs": {..}} ], "relationships": [ {"name":
       "fires_at", "args": [3, 7]} ] } ],
       "video": 0 }            (optional; default: the last video)
   Appends the segments as new leaves of the target video (which must be
   the last of the store, or of its owning shard) and answers with the
   new leaf count and store version. *)

let ( let* ) = Result.bind

let value_of_json = function
  | Json.Int n -> Ok (Metadata.Value.Int n)
  | Json.Float f -> Ok (Metadata.Value.Float f)
  | Json.String s -> Ok (Metadata.Value.Str s)
  | Json.Bool b -> Ok (Metadata.Value.Bool b)
  | _ -> Error "attribute values must be numbers, strings or booleans"

let attrs_of_json what = function
  | None | Some Json.Null -> Ok []
  | Some (Json.Obj fields) ->
      List.fold_right
        (fun (name, v) acc ->
          let* tl = acc in
          let* v = value_of_json v in
          Ok ((name, v) :: tl))
        fields (Ok [])
  | Some _ -> Error (Printf.sprintf "%s \"attrs\" must be an object" what)

let object_of_json = function
  | Json.Obj _ as j ->
      let* id =
        match Json.member "id" j with
        | Some (Json.Int id) -> Ok id
        | _ -> Error "object \"id\" must be an integer"
      in
      let* otype =
        match Json.member "type" j with
        | Some (Json.String s) -> Ok s
        | _ -> Error "object \"type\" must be a string"
      in
      let* attrs = attrs_of_json "object" (Json.member "attrs" j) in
      Ok (Metadata.Entity.make ~id ~otype ~attrs ())
  | _ -> Error "\"objects\" items must be objects"

let relationship_of_json = function
  | Json.Obj _ as j ->
      let* name =
        match Json.member "name" j with
        | Some (Json.String s) -> Ok s
        | _ -> Error "relationship \"name\" must be a string"
      in
      let* args =
        match Json.member "args" j with
        | Some (Json.Array items) ->
            List.fold_right
              (fun item acc ->
                let* tl = acc in
                match item with
                | Json.Int n -> Ok (n :: tl)
                | _ -> Error "relationship \"args\" must be integers")
              items (Ok [])
        | _ -> Error "relationship \"args\" must be an array of integers"
      in
      Ok (Metadata.Relationship.make name args)
  | _ -> Error "\"relationships\" items must be objects"

let list_field of_item name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok []
  | Some (Json.Array items) ->
      List.fold_right
        (fun item acc ->
          let* tl = acc in
          let* hd = of_item item in
          Ok (hd :: tl))
        items (Ok [])
  | Some _ -> Error (Printf.sprintf "%S must be an array" name)

let segment_of_json = function
  | Json.Obj _ as j ->
      let* attrs = attrs_of_json "segment" (Json.member "attrs" j) in
      let* objects = list_field object_of_json "objects" j in
      let* relationships = list_field relationship_of_json "relationships" j in
      Ok (Metadata.Seg_meta.make ~objects ~relationships ~attrs ())
  | _ -> Error "\"segments\" items must be objects"

let ingest_req_of_json json =
  let* segments =
    match Json.member "segments" json with
    | Some (Json.Array (_ :: _ as items)) ->
        List.fold_right
          (fun item acc ->
            let* tl = acc in
            let* hd = segment_of_json item in
            Ok (hd :: tl))
          items (Ok [])
    | Some (Json.Array []) -> Error "\"segments\" must not be empty"
    | Some _ -> Error "\"segments\" must be an array"
    | None -> Error "missing \"segments\" field"
  in
  let* video =
    match Json.member "video" json with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int v) -> Ok (Some v)
    | Some _ -> Error "\"video\" must be an integer"
  in
  Ok (segments, video)

let run_ingest state json =
  match ingest_req_of_json json with
  | Error msg -> error_response ~status:400 msg
  | Ok (segments, video) -> (
      let appended () =
        let n = List.length segments in
        Obs.Metrics.incr state.metrics ~by:n "server.ingested";
        n
      in
      match state.sharded with
      | Some sh -> (
          match Sharded.append_segments ?video sh segments with
          | () ->
              let n = appended () in
              json_response ~status:200
                (Json.Obj
                   [
                     ("appended", Json.Int n);
                     ( "leaf_count",
                       Json.Int (Sharded.count_at sh ~level:(Sharded.levels sh))
                     );
                   ])
          | exception Invalid_argument msg -> error_response ~status:400 msg)
      | None -> (
          match state.ctx.Engine.Context.store with
          | None ->
              error_response ~status:400
                "ingestion requires a store-backed dataset"
          | Some store -> (
              let last = List.length (Video_model.Store.videos store) - 1 in
              match video with
              | Some v when v <> last ->
                  error_response ~status:400
                    (Printf.sprintf
                       "only the last video (%d) can grow, got %d" last v)
              | Some _ | None -> (
                  match Video_model.Store.append_segments store segments with
                  | () ->
                      let n = appended () in
                      json_response ~status:200
                        (Json.Obj
                           [
                             ("appended", Json.Int n);
                             ( "leaf_count",
                               Json.Int
                                 (Video_model.Store.count_at store
                                    ~level:(Video_model.Store.levels store)) );
                             ( "version",
                               Json.Int (Video_model.Store.version store) );
                           ])
                  | exception Invalid_argument msg ->
                      error_response ~status:400 msg))))

let with_body_json (req : Http.request) k =
  match Json.of_string req.Http.body with
  | Error msg -> error_response ~status:400 ("invalid JSON body: " ^ msg)
  | Ok json -> k json

(* --- traces and stats ------------------------------------------------------- *)

let run_trace_list state =
  json_response ~status:200
    (Json.Array
       (List.map Obs.Tracestore.summary_json
          (Obs.Tracestore.entries state.tracestore)))

let run_trace_get state id =
  match Obs.Traceid.of_string id with
  | None -> error_response ~status:400 ("invalid trace id " ^ id)
  | Some id -> (
      match Obs.Tracestore.find state.tracestore id with
      | None -> error_response ~status:404 ("no retained trace " ^ id)
      | Some e ->
          json_response ~status:200
            (Obs.Export.chrome_trace_json_of_spans ~trace_id:e.Obs.Tracestore.trace_id
               e.Obs.Tracestore.spans))

(* --- dispatch --------------------------------------------------------------- *)

let heavy req =
  req.Http.meth = "POST"
  && (req.Http.target = "/query" || req.Http.target = "/batch"
     || req.Http.target = "/ingest")

let trace_target target =
  (* "/trace/<id>" → Some "<id>"; "/trace" and "/trace/" → None *)
  let prefix = "/trace/" in
  let n = String.length prefix in
  if
    String.length target > n
    && String.equal (String.sub target 0 n) prefix
  then Some (String.sub target n (String.length target - n))
  else None

let route state req =
  match (req.Http.meth, req.Http.target) with
  | "GET", "/healthz" -> Http.response ~headers:text_headers ~status:200 "ok\n"
  | "GET", "/metrics" ->
      Http.response
        ~headers:[ ("Content-Type", "text/plain; version=0.0.4") ]
        ~status:200
        (Obs.Export.prometheus state.metrics)
  | "GET", "/slowlog" ->
      Http.response
        ~headers:[ ("Content-Type", "application/x-ndjson") ]
        ~status:200
        (Obs.Querylog.to_jsonl state.querylog)
  | "GET", "/stats" ->
      json_response ~status:200 (Obs.Stats.to_json state.stats)
  | "GET", ("/trace" | "/trace/") -> run_trace_list state
  | "GET", target when trace_target target <> None ->
      run_trace_get state (Option.get (trace_target target))
  | "POST", "/query" ->
      with_body_json req (fun json ->
          match query_req_of_json json with
          | Error msg -> error_response ~status:400 msg
          | Ok q -> run_query state q)
  | "POST", "/batch" -> with_body_json req (run_batch state)
  | "POST", "/ingest" -> with_body_json req (run_ingest state)
  | ( _,
      ( "/healthz" | "/metrics" | "/slowlog" | "/stats" | "/trace"
      | "/query" | "/batch" | "/ingest" ) ) ->
      error_response ~status:405
        (Printf.sprintf "method %s not allowed on %s" req.Http.meth
           req.Http.target)
  | meth, target when trace_target target <> None ->
      error_response ~status:405
        (Printf.sprintf "method %s not allowed on %s" meth target)
  | _, target -> error_response ~status:404 ("no route for " ^ target)

(* --- per-request observation ------------------------------------------------- *)

(* The client's id when it sent a well-formed one ([X-Trace-Id] bare, or
   a full W3C [traceparent]); a fresh one otherwise.  Malformed ids are
   replaced, not rejected — tracing must never fail a request. *)
let request_trace_id req =
  let provided =
    match Http.header req "x-trace-id" with
    | Some v -> Obs.Traceid.of_string v
    | None -> Option.bind (Http.header req "traceparent") Obs.Traceid.of_traceparent
  in
  match provided with Some id -> id | None -> Obs.Traceid.generate ()

(* A request-scoped view of the state: same warm caches, registries and
   rings, but the evaluation context (or every shard context) stamps
   [trace_id] and — when the request is traced — emits into a tracer
   that no concurrent request shares, so span nesting stays coherent
   even though all worker threads live on one domain. *)
let state_for_request state ~trace_id tracer =
  let ctx = Engine.Context.with_trace_id state.ctx trace_id in
  let ctx =
    match tracer with
    | Some tr -> Engine.Context.with_tracer ctx tr
    | None -> ctx
  in
  let sharded =
    Option.map
      (fun sh -> Sharded.for_request ?tracer ~trace_id sh)
      state.sharded
  in
  { state with ctx; sharded }

let set_active state n =
  Obs.Metrics.set_gauge state.metrics "server.active_requests" (float_of_int n)

let handle state req =
  let t0 = Obs.Clock.now () in
  let wall0 = Unix.gettimeofday () in
  Obs.Metrics.incr state.metrics "server.requests";
  set_active state (Atomic.fetch_and_add state.active 1 + 1);
  let trace_id = request_trace_id req in
  let sampled =
    state.policy.sample_every > 0
    && Atomic.fetch_and_add state.sample_counter 1 mod state.policy.sample_every
       = 0
  in
  let tracer =
    if sampled || state.policy.slow_s <> None then
      Some (Obs.Trace.create ~trace_id ())
    else None
  in
  let rstate = state_for_request state ~trace_id tracer in
  let run () =
    match tracer with
    | None -> route rstate req
    | Some tr ->
        Obs.Trace.with_span tr "server.request"
          ~attrs:
            [
              ("method", req.Http.meth);
              ("target", req.Http.target);
              ("trace_id", trace_id);
            ]
          (fun () -> route rstate req)
  in
  let resp =
    match run () with
    | resp -> resp
    | exception e ->
        (* a crash must answer (and be visible in metrics), not tear
           down the worker *)
        error_response ~status:500
          ("internal error: " ^ Printexc.to_string e)
  in
  let latency = Obs.Clock.now () -. t0 in
  Obs.Metrics.observe state.metrics "server.request_latency_s" latency;
  count_status state resp.Http.status;
  (match tracer with
  | Some tr ->
      let keep =
        sampled
        ||
        match state.policy.slow_s with
        | Some slow -> latency >= slow
        | None -> false
      in
      if keep then begin
        Obs.Metrics.incr state.metrics "server.traced";
        Obs.Tracestore.add state.tracestore
          {
            Obs.Tracestore.trace_id;
            time_s = wall0;
            latency_s = latency;
            meth = req.Http.meth;
            target = req.Http.target;
            status = resp.Http.status;
            spans = Obs.Trace.spans tr;
          }
      end
  | None -> ());
  set_active state (Atomic.fetch_and_add state.active (-1) - 1);
  { resp with Http.headers = resp.Http.headers @ [ ("X-Trace-Id", trace_id) ] }
