type order = Asc | Desc

type agg =
  | Min of Expr.t
  | Max of Expr.t
  | Sum of Expr.t
  | Count of Expr.t
  | Count_star

type t =
  | Scan of string
  | Values of string list * Value.t array list
  | Alias of string * t
  | Select of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Hash_join of {
      left : t;
      right : t;
      left_keys : Expr.t list;
      right_keys : Expr.t list;
    }
  | Nested_join of { left : t; right : t; cond : Expr.t }
  | Band_join of {
      points : t;
      point : Expr.t;
      intervals : t;
      lo : Expr.t;
      hi : Expr.t;
    }
  | Sort of (Expr.t * order) list * t
  | Row_num of string * t
  | Group_by of {
      keys : (Expr.t * string) list;
      aggs : (agg * string) list;
      input : t;
    }
  | Distinct of t
  | Union_all of t * t
  | Limit of int * t

let join_cols (a : Table.t) (b : Table.t) = Table.cols a @ Table.cols b

let concat_rows (ra : Value.t array) rb = Array.append ra rb

let agg_init = function
  | Min _ | Max _ -> Value.Null
  | Sum _ -> Value.Null
  | Count _ | Count_star -> Value.Int 0

let agg_step ~cols =
  let compiled e = Expr.compile ~cols e in
  function
  | Min e ->
      let f = compiled e in
      fun acc row ->
        let v = f row in
        if Value.is_null v then acc
        else if Value.is_null acc then v
        else if Value.compare_total v acc < 0 then v
        else acc
  | Max e ->
      let f = compiled e in
      fun acc row ->
        let v = f row in
        if Value.is_null v then acc
        else if Value.is_null acc then v
        else if Value.compare_total v acc > 0 then v
        else acc
  | Sum e ->
      let f = compiled e in
      fun acc row ->
        let v = f row in
        if Value.is_null v then acc
        else if Value.is_null acc then v
        else Value.add acc v
  | Count e ->
      let f = compiled e in
      fun acc row ->
        if Value.is_null (f row) then acc else Value.add acc (Value.Int 1)
  | Count_star -> fun acc _row -> Value.add acc (Value.Int 1)

let rec run ~lookup plan =
  match plan with
  | Scan name -> lookup name
  | Values (cols, rows) -> Table.create ~cols rows
  | Alias (prefix, p) -> Table.prefix_cols (run ~lookup p) prefix
  | Select (cond, p) ->
      let t = run ~lookup p in
      let f = Expr.compile ~cols:(Table.cols t) cond in
      Table.create ~cols:(Table.cols t)
        (List.filter (fun r -> Expr.truthy (f r)) (Table.rows t))
  | Project (items, p) ->
      let t = run ~lookup p in
      let fs =
        List.map (fun (e, name) -> (Expr.compile ~cols:(Table.cols t) e, name)) items
      in
      Table.create ~cols:(List.map snd fs)
        (List.map
           (fun r -> Array.of_list (List.map (fun (f, _) -> f r) fs))
           (Table.rows t))
  | Hash_join { left; right; left_keys; right_keys } ->
      let lt = run ~lookup left and rt = run ~lookup right in
      if List.length left_keys <> List.length right_keys then
        invalid_arg "Plan: hash join key arity mismatch";
      let lfs = List.map (Expr.compile ~cols:(Table.cols lt)) left_keys
      and rfs = List.map (Expr.compile ~cols:(Table.cols rt)) right_keys in
      let key fs row = List.map (fun f -> f row) fs in
      (* build on the right side *)
      let index = Hashtbl.create (max 16 (Table.cardinality rt)) in
      List.iter
        (fun r ->
          let k = key rfs r in
          if not (List.exists Value.is_null k) then Hashtbl.add index k r)
        (Table.rows rt);
      let out = ref [] in
      List.iter
        (fun l ->
          let k = key lfs l in
          if not (List.exists Value.is_null k) then
            List.iter
              (fun r -> out := concat_rows l r :: !out)
              (Hashtbl.find_all index k))
        (Table.rows lt);
      Table.create ~cols:(join_cols lt rt) (List.rev !out)
  | Nested_join { left; right; cond } ->
      let lt = run ~lookup left and rt = run ~lookup right in
      let cols = join_cols lt rt in
      let f = Expr.compile ~cols cond in
      let out = ref [] in
      List.iter
        (fun l ->
          List.iter
            (fun r ->
              let row = concat_rows l r in
              if Expr.truthy (f row) then out := row :: !out)
            (Table.rows rt))
        (Table.rows lt);
      Table.create ~cols (List.rev !out)
  | Band_join { points; point; intervals; lo; hi } ->
      let pt = run ~lookup points and it = run ~lookup intervals in
      let fp = Expr.compile ~cols:(Table.cols pt) point in
      let flo = Expr.compile ~cols:(Table.cols it) lo
      and fhi = Expr.compile ~cols:(Table.cols it) hi in
      (* sort points by value, then binary-search each interval's lo *)
      let pts =
        Array.of_list
          (List.filter_map
             (fun r ->
               match Value.as_int (fp r) with
               | Some v -> Some (v, r)
               | None -> None)
             (Table.rows pt))
      in
      Array.sort (fun (a, _) (b, _) -> compare a b) pts;
      let n = Array.length pts in
      let first_geq v =
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if fst pts.(mid) < v then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      let out = ref [] in
      List.iter
        (fun r ->
          match (Value.as_int (flo r), Value.as_int (fhi r)) with
          | Some l, Some h ->
              let i = ref (first_geq l) in
              while !i < n && fst pts.(!i) <= h do
                out := concat_rows (snd pts.(!i)) r :: !out;
                incr i
              done
          | _, _ -> ())
        (Table.rows it);
      Table.create ~cols:(join_cols pt it) (List.rev !out)
  | Sort (keys, p) ->
      let t = run ~lookup p in
      let fs =
        List.map
          (fun (e, ord) -> (Expr.compile ~cols:(Table.cols t) e, ord))
          keys
      in
      let cmp a b =
        let rec go = function
          | [] -> 0
          | (f, ord) :: tl -> (
              let c = Value.compare_total (f a) (f b) in
              let c = match ord with Asc -> c | Desc -> -c in
              match c with 0 -> go tl | c -> c)
        in
        go fs
      in
      Table.create ~cols:(Table.cols t) (List.stable_sort cmp (Table.rows t))
  | Row_num (name, p) ->
      let t = run ~lookup p in
      let rows =
        List.mapi
          (fun i r -> Array.append r [| Value.Int (i + 1) |])
          (Table.rows t)
      in
      Table.create ~cols:(Table.cols t @ [ name ]) rows
  | Group_by { keys; aggs; input } ->
      let t = run ~lookup input in
      let cols = Table.cols t in
      let key_fs = List.map (fun (e, _) -> Expr.compile ~cols e) keys in
      let steps = List.map (fun (a, _) -> agg_step ~cols a) aggs in
      let inits = List.map (fun (a, _) -> agg_init a) aggs in
      let groups : (Value.t list, Value.t list ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let order = ref [] in
      List.iter
        (fun r ->
          let k = List.map (fun f -> f r) key_fs in
          let acc =
            match Hashtbl.find_opt groups k with
            | Some acc -> acc
            | None ->
                let acc = ref inits in
                Hashtbl.add groups k acc;
                order := k :: !order;
                acc
          in
          acc := List.map2 (fun step a -> step a r) steps !acc)
        (Table.rows t);
      let out_cols = List.map snd keys @ List.map snd aggs in
      let rows =
        List.rev_map
          (fun k ->
            let acc = !(Hashtbl.find groups k) in
            Array.of_list (k @ acc))
          !order
      in
      let rows =
        (* a global aggregate over an empty input still yields one row *)
        if keys = [] && rows = [] then [ Array.of_list inits ] else rows
      in
      Table.create ~cols:out_cols rows
  | Distinct p ->
      let t = run ~lookup p in
      let seen = Hashtbl.create 64 in
      let rows =
        List.filter
          (fun r ->
            let k = Array.to_list r in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (Table.rows t)
      in
      Table.create ~cols:(Table.cols t) rows
  | Union_all (a, b) ->
      let ta = run ~lookup a and tb = run ~lookup b in
      if List.length (Table.cols ta) <> List.length (Table.cols tb) then
        invalid_arg "Plan: UNION ALL arity mismatch";
      Table.create ~cols:(Table.cols ta) (Table.rows ta @ Table.rows tb)
  | Limit (n, p) ->
      let t = run ~lookup p in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | r :: tl -> r :: take (n - 1) tl
      in
      Table.create ~cols:(Table.cols t) (take n (Table.rows t))

(* --- rendering ----------------------------------------------------------- *)

let label = function
  | Scan name -> Printf.sprintf "Scan %s" name
  | Values (cols, rows) ->
      Printf.sprintf "Values (%s) x %d" (String.concat ", " cols)
        (List.length rows)
  | Alias (prefix, _) -> Printf.sprintf "Alias %s" prefix
  | Select (cond, _) -> Format.asprintf "Select %a" Expr.pp cond
  | Project (items, _) ->
      Format.asprintf "Project %s"
        (String.concat ", "
           (List.map
              (fun (e, name) -> Format.asprintf "%a AS %s" Expr.pp e name)
              items))
  | Hash_join { left_keys; right_keys; _ } ->
      Format.asprintf "Hash_join on %s = %s"
        (String.concat ", " (List.map (Format.asprintf "%a" Expr.pp) left_keys))
        (String.concat ", " (List.map (Format.asprintf "%a" Expr.pp) right_keys))
  | Nested_join { cond; _ } -> Format.asprintf "Nested_join on %a" Expr.pp cond
  | Band_join { point; lo; hi; _ } ->
      Format.asprintf "Band_join %a BETWEEN %a AND %a" Expr.pp point Expr.pp lo
        Expr.pp hi
  | Sort (keys, _) ->
      Format.asprintf "Sort %s"
        (String.concat ", "
           (List.map
              (fun (e, o) ->
                Format.asprintf "%a %s" Expr.pp e
                  (match o with Asc -> "ASC" | Desc -> "DESC"))
              keys))
  | Row_num (name, _) -> Printf.sprintf "Row_num %s" name
  | Group_by { keys; aggs; _ } ->
      let agg_str (a, name) =
        let s =
          match a with
          | Min e -> Format.asprintf "MIN(%a)" Expr.pp e
          | Max e -> Format.asprintf "MAX(%a)" Expr.pp e
          | Sum e -> Format.asprintf "SUM(%a)" Expr.pp e
          | Count e -> Format.asprintf "COUNT(%a)" Expr.pp e
          | Count_star -> "COUNT(*)"
        in
        s ^ " AS " ^ name
      in
      Format.asprintf "Group_by %s: %s"
        (String.concat ", "
           (List.map (fun (e, n) -> Format.asprintf "%a AS %s" Expr.pp e n) keys))
        (String.concat ", " (List.map agg_str aggs))
  | Distinct _ -> "Distinct"
  | Union_all _ -> "Union_all"
  | Limit (n, _) -> Printf.sprintf "Limit %d" n

let children = function
  | Scan _ | Values _ -> []
  | Alias (_, p) | Select (_, p) | Project (_, p) | Sort (_, p)
  | Row_num (_, p) | Distinct p | Limit (_, p) ->
      [ p ]
  | Group_by { input; _ } -> [ input ]
  | Hash_join { left; right; _ } -> [ left; right ]
  | Nested_join { left; right; _ } -> [ left; right ]
  | Band_join { points; intervals; _ } -> [ points; intervals ]
  | Union_all (a, b) -> [ a; b ]

let pp ppf plan =
  let rec go depth p =
    Format.fprintf ppf "%s%s@," (String.make (2 * depth) ' ') (label p);
    List.iter (go (depth + 1)) (children p)
  in
  Format.fprintf ppf "@[<v>";
  go 0 plan;
  Format.fprintf ppf "@]"
