(** Physical query plans and their (materializing) executor. *)

type order = Asc | Desc

type agg =
  | Min of Expr.t
  | Max of Expr.t
  | Sum of Expr.t
  | Count of Expr.t  (** non-NULL count *)
  | Count_star

type t =
  | Scan of string
  | Values of string list * Value.t array list
  | Alias of string * t  (** qualify every output column with a prefix *)
  | Select of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Hash_join of {
      left : t;
      right : t;
      left_keys : Expr.t list;
      right_keys : Expr.t list;
    }  (** equi-join; output columns are left's then right's *)
  | Nested_join of { left : t; right : t; cond : Expr.t }
  | Band_join of {
      points : t;
      point : Expr.t;
      intervals : t;
      lo : Expr.t;
      hi : Expr.t;
    }
      (** [point BETWEEN lo AND hi]: sort-based containment join —
          the physical operator that makes per-id interval expansion
          affordable (Sybase-style merge band join) *)
  | Sort of (Expr.t * order) list * t
  | Row_num of string * t  (** append a 1-based row-number column *)
  | Group_by of {
      keys : (Expr.t * string) list;
      aggs : (agg * string) list;
      input : t;
    }
  | Distinct of t
  | Union_all of t * t
  | Limit of int * t

val run : lookup:(string -> Table.t) -> t -> Table.t
(** Execute a plan; [lookup] resolves base-table names.
    @raise Invalid_argument on schema errors (unknown table/column,
    duplicate output columns, ...). *)

val label : t -> string
(** One-line description of the root operator (its expressions, not its
    inputs) — the node text EXPLAIN renders. *)

val children : t -> t list
(** The operator's inputs, left to right. *)

val pp : Format.formatter -> t -> unit
(** Indented operator tree. *)
