(** A fixed-size domain pool on the OCaml 5 stdlib ([Domain], [Mutex],
    [Condition] — deliberately no domainslib).

    Scheduling is {e caller-helps}: a domain submitting a batch pushes
    the tasks onto the shared queue and then drains the queue alongside
    the worker domains until its own batch completes.  Consequences:

    - a pool of [domains] = d runs work on d domains total — d-1 spawned
      workers plus the submitting domain;
    - the pool is reentrant: a task may itself call {!parallel_map} /
      {!map_range} on the same pool (nested batches drain without
      deadlock, since a domain blocked on a batch sleeps only when every
      outstanding task of that batch is already running elsewhere);
    - [create ~domains:1] spawns nothing and every operation runs as the
      plain sequential loop, making a 1-domain pool a zero-overhead
      baseline for scaling measurements.

    Exceptions raised by tasks do not abort their siblings: every task
    of the batch still runs, then the first recorded exception is
    re-raised (with its backtrace) in the submitting domain.  The pool
    remains usable afterwards.

    All operations raise [Invalid_argument] on a pool that has been
    {!shutdown}. *)

type t

val create : ?domains:int -> ?metrics:Obs.Metrics.t -> unit -> t
(** Spawn a pool running on [domains] domains in total (default
    {!Domain.recommended_domain_count}).  With [metrics], the pool
    counts batches and tasks ([pool.batches], [pool.tasks],
    [pool.tasks_sequential]) and records per-task queue wait — time from
    batch submission to task start — as the [pool.queue_wait_s]
    histogram; without it, submission stays allocation-free.
    @raise Invalid_argument when [domains < 1]. *)

val domain_count : t -> int
(** Total domains the pool computes on, the caller included. *)

val metrics : t -> Obs.Metrics.t option

val shutdown : t -> unit
(** Stop and join the worker domains after the queue drains.  Idempotent.
    Must not be called while a batch is in flight. *)

val with_pool : ?domains:int -> ?metrics:Obs.Metrics.t -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map with one task per element.  Use for coarse
    units (conjuncts, queries, objects); for per-segment work use
    {!map_range} or {!parallel_init}, which chunk. *)

val both : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Evaluate two independent computations concurrently. *)

val map_range :
  t -> ?chunk:int -> lo:int -> hi:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** Split [[lo, hi]] into contiguous chunks (default size targets ~4
    chunks per domain; [chunk] overrides), run [f ~lo ~hi] per chunk
    across the pool, and return the chunk results in range order.
    Empty list when [hi < lo]. *)

val parallel_init :
  t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init t n f] is [Array.init n f] with the index range
    chunked across the pool. *)

val iter_chunks :
  t -> ?chunk:int -> int -> (lo:int -> hi:int -> unit) -> unit
(** Run [f ~lo ~hi] over the chunks of [[0, n-1]] for side effects.
    Safe for writing disjoint slots of a caller-owned array: chunks
    never overlap, and batch completion publishes the writes to the
    caller. *)
