(* A fixed-size domain pool over the OCaml 5 stdlib primitives only
   (Domain / Mutex / Condition — no domainslib).

   Scheduling is caller-helps: submitting a batch pushes its tasks onto
   the shared queue and then the *submitting* domain drains the queue
   alongside the workers until its own batch completes.  This makes the
   pool reentrant — a task running on a worker may itself submit a batch
   and help drain it — without any risk of the "all workers blocked
   waiting on sub-batches nobody can run" deadlock: a domain blocked on
   a batch only sleeps when the queue is empty, i.e. when every
   outstanding task of its batch is already being executed by some other
   domain.  Termination follows by induction on nesting depth.

   A pool of [domains] = d runs work on d domains total: d - 1 spawned
   workers plus the caller.  [create ~domains:1] spawns nothing and every
   operation degenerates to the sequential loop, so a 1-domain pool is a
   zero-overhead baseline. *)

type task = unit -> unit

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when tasks arrive or on shutdown *)
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  total : int;  (* worker domains + the calling domain *)
  metrics : Obs.Metrics.t option;
      (* optional instrumentation: task/batch counters and a queue-wait
         histogram.  None (the default) keeps submission allocation-free. *)
}

(* A batch of tasks submitted together; [finished] shares the pool
   mutex.  The first exception (with its backtrace) is kept and re-raised
   in the submitting domain once every task has run. *)
type batch = {
  mutable pending : int;
  mutable error : (exn * Printexc.raw_backtrace) option;
  finished : Condition.t;
}

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.stop then None
      else begin
        Condition.wait t.work t.mutex;
        next ()
      end
    in
    match next () with
    | None -> Mutex.unlock t.mutex
    | Some task ->
        Mutex.unlock t.mutex;
        task ();
        loop ()
  in
  loop ()

let create ?domains ?metrics () =
  let total =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Pool.create: domains must be >= 1";
        d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
      total;
      metrics;
    }
  in
  t.workers <- Array.init (total - 1) (fun _ -> Domain.spawn (worker t));
  t

let domain_count t = t.total
let metrics t = t.metrics

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains ?metrics f =
  let t = create ?domains ?metrics () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let check_alive t =
  if t.stop then invalid_arg "Parallel.Pool: pool has been shut down"

(* Run [f 0 .. f (n-1)], fanning out across the pool.  Every task runs
   even if some fail; the first recorded exception is re-raised here
   afterwards. *)
let run_indexed t n f =
  check_alive t;
  if n <= 0 then ()
  else if Array.length t.workers = 0 || n = 1 then begin
    (* degenerate sequential run keeps the batch semantics: every task
       runs, the first exception is re-raised afterwards *)
    (match t.metrics with
    | Some m -> Obs.Metrics.incr m ~by:n "pool.tasks_sequential"
    | None -> ());
    let error = ref None in
    for i = 0 to n - 1 do
      try f i
      with e ->
        if !error = None then error := Some (e, Printexc.get_raw_backtrace ())
    done;
    match !error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
  else begin
    let b = { pending = n; error = None; finished = Condition.create () } in
    (* per-batch instrumentation: counters on submit, and — only when a
       metrics registry is attached — a submit timestamp per batch whose
       delay to each task's start is the queue wait *)
    (match t.metrics with
    | Some m ->
        Obs.Metrics.incr m "pool.batches";
        Obs.Metrics.incr m ~by:n "pool.tasks"
    | None -> ());
    let submitted =
      match t.metrics with Some _ -> Obs.Clock.now () | None -> 0.
    in
    let task i () =
      (match t.metrics with
      | Some m ->
          Obs.Metrics.observe m "pool.queue_wait_s"
            (Obs.Clock.now () -. submitted)
      | None -> ());
      (try f i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         if b.error = None then b.error <- Some (e, bt);
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      b.pending <- b.pending - 1;
      if b.pending = 0 then Condition.broadcast b.finished;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.push (task i) t.queue
    done;
    Condition.broadcast t.work;
    (* help: run queued tasks (of any batch) while ours is unfinished *)
    while b.pending > 0 do
      if Queue.is_empty t.queue then Condition.wait b.finished t.mutex
      else begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex
      end
    done;
    Mutex.unlock t.mutex;
    match b.error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_map t f xs =
  match xs with
  | [] ->
      check_alive t;
      []
  | [ x ] ->
      check_alive t;
      [ f x ]
  | xs ->
      let arr = Array.of_list xs in
      let out = Array.make (Array.length arr) None in
      run_indexed t (Array.length arr) (fun i -> out.(i) <- Some (f arr.(i)));
      List.map Option.get (Array.to_list out)

let both t fa fb =
  let ra = ref None and rb = ref None in
  run_indexed t 2 (fun i ->
      if i = 0 then ra := Some (fa ()) else rb := Some (fb ()));
  (Option.get !ra, Option.get !rb)

(* Striped chunking: ~4 chunks per domain balances load without
   per-element task overhead; an explicit [chunk] overrides. *)
let chunk_size t ?chunk n =
  match chunk with
  | Some c ->
      if c < 1 then invalid_arg "Pool: chunk must be >= 1";
      c
  | None -> max 1 ((n + (4 * t.total) - 1) / (4 * t.total))

let map_range t ?chunk ~lo ~hi f =
  if hi < lo then begin
    check_alive t;
    []
  end
  else begin
    let n = hi - lo + 1 in
    let size = chunk_size t ?chunk n in
    let nchunks = (n + size - 1) / size in
    let parts = Array.make nchunks None in
    run_indexed t nchunks (fun k ->
        let clo = lo + (k * size) in
        let chi = min hi (clo + size - 1) in
        parts.(k) <- Some (f ~lo:clo ~hi:chi));
    List.map Option.get (Array.to_list parts)
  end

let parallel_init t ?chunk n f =
  if n <= 0 then begin
    check_alive t;
    [||]
  end
  else
    Array.concat
      (map_range t ?chunk ~lo:0 ~hi:(n - 1) (fun ~lo ~hi ->
           Array.init (hi - lo + 1) (fun i -> f (lo + i))))

(* Disjoint-slot updates into a caller-owned array: each task writes
   only the cells its chunk covers, so there is no data race; the batch
   completion protocol (mutex release/acquire) publishes the writes to
   the caller. *)
let iter_chunks t ?chunk n f =
  if n > 0 then
    ignore
      (map_range t ?chunk ~lo:0 ~hi:(n - 1) (fun ~lo ~hi -> f ~lo ~hi))
  else check_alive t
