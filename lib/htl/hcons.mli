(** Hash-consing of HTL formulas.

    [intern] maps a formula to its unique representative: two structurally
    equal formulas (and all their structurally equal subformulas) intern
    to handles with the same id.  Once interned, equality, hashing and
    ordering of handles are O(1); the id is stable for the lifetime of the
    process (until {!clear}) and is what {!Engine.Cache} keys subformula
    results on.

    Interning a formula of [p] nodes costs O(p) table lookups and interns
    every subformula along the way, so a later [intern] of any shared
    subtree is a pure lookup. *)

type t = private { node : Ast.t; id : int; hkey : int }
(** An interned formula: the AST, its unique id, and a cached hash. *)

val intern : Ast.t -> t

val id : t -> int
val node : t -> Ast.t

val equal : t -> t -> bool
(** O(1): id comparison.  Agrees with {!Ast.equal} on the underlying
    formulas. *)

val compare : t -> t -> int
(** Total order by id (interning order, not structural). *)

val hash : t -> int
(** O(1): the cached structural hash. *)

val intern_id : Ast.t -> int
(** [intern_id f = id (intern f)]. *)

val equal_ast : Ast.t -> Ast.t -> bool
(** Structural equality through the intern table: one traversal of each
    argument, O(1) on already-interned subtrees. *)

val hash_ast : Ast.t -> int

val interned_count : unit -> int
(** Number of distinct formulas (subformulas included) currently
    interned. *)

val clear : unit -> unit
(** Drop the intern table.  Ids restart from 0; handles obtained before
    [clear] must not be mixed with handles obtained after. *)
