type t = { node : Ast.t; id : int; hkey : int }

(* A node's identity is its constructor plus the ids of its (already
   interned) children, so the table never compares whole subtrees: one
   shallow structural comparison per node. *)
type shape =
  | S_atom of Ast.atom
  | S_and of int * int
  | S_or of int * int
  | S_not of int
  | S_next of int
  | S_until of int * int
  | S_eventually of int
  | S_exists of string * int
  | S_freeze of string * string * string option * int
  | S_at_level of Ast.level_sel * int

let table : (shape, t) Hashtbl.t = Hashtbl.create 512
let next_id = ref 0

(* The intern table is process-global and parallel evaluation interns
   cache keys from worker domains, so every access is serialized.  The
   critical section is one shallow Hashtbl operation per AST node. *)
let lock = Mutex.create ()

let clear () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset table;
      next_id := 0)

let interned_count () = Mutex.protect lock (fun () -> Hashtbl.length table)

let make node shape =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table shape with
      | Some h -> h
      | None ->
          let h = { node; id = !next_id; hkey = Hashtbl.hash shape } in
          incr next_id;
          Hashtbl.add table shape h;
          h)

let rec intern (f : Ast.t) =
  match f with
  | Atom a -> make f (S_atom a)
  | And (g, h) -> make f (S_and ((intern g).id, (intern h).id))
  | Or (g, h) -> make f (S_or ((intern g).id, (intern h).id))
  | Not g -> make f (S_not (intern g).id)
  | Next g -> make f (S_next (intern g).id)
  | Until (g, h) -> make f (S_until ((intern g).id, (intern h).id))
  | Eventually g -> make f (S_eventually (intern g).id)
  | Exists (x, g) -> make f (S_exists (x, (intern g).id))
  | Freeze { var; attr; obj; body } ->
      make f (S_freeze (var, attr, obj, (intern body).id))
  | At_level (sel, g) -> make f (S_at_level (sel, (intern g).id))

let id h = h.id
let node h = h.node
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash h = h.hkey
let intern_id f = (intern f).id
let equal_ast f g = (intern f).id = (intern g).id
let hash_ast f = (intern f).hkey
