(** Sharded stores with scatter–gather evaluation.

    A sharded store partitions the videos of one corpus into N
    contiguous groups, each its own {!Video_model.Store.t} with a
    private {!Picture.Index.Registry} and {!Engine.Cache}.  Global
    segment ids number videos in temporal order, so a contiguous-video
    partition makes every shard own a contiguous global-id range per
    level: shard-local id + per-shard offset = global id, and proper
    sequences (per-video extents) never cross a shard boundary —
    temporal operators need no cross-shard communication.

    A query scatters over the shards (on the {!Parallel.Pool} when one
    is attached), evaluates each shard independently, and gathers the
    per-shard similarity lists at a coordinator: {!run} shifts and
    re-canonicalises entries into one {!Simlist.Sim_list.t} byte-equal
    to the unsharded evaluation, {!top_k} feeds the per-shard lists
    through {!Engine.Topk.merged_top_k} so the full ranked list is never
    materialised.

    The payoff on mutation-heavy workloads is partition-isolated
    invalidation: a store edit bumps only the owning shard's version, so
    only that shard's result cache and index registry rebuild — sibling
    shards stay warm, where an unsharded store would drop everything
    (see DESIGN.md §2.18). *)

type t

val create :
  ?shards:int ->
  ?config:Picture.Retrieval.config ->
  ?threshold:float ->
  ?conj_mode:Simlist.Sim_list.conj_mode ->
  ?reorder_joins:bool ->
  ?level:int ->
  ?planner:bool ->
  ?pool:Parallel.Pool.t ->
  ?par_cutoff:int ->
  ?metrics:Obs.Metrics.t ->
  ?querylog:Obs.Querylog.t ->
  ?stats:Obs.Stats.t ->
  Video_model.Store.t ->
  t
(** Partition the store's videos into at most [shards] (default 1)
    contiguous groups of roughly equal leaf-segment weight.  The actual
    shard count can be lower when the store has fewer videos (a video is
    never split).  [metrics], [stats] and [pool] are shared by every
    shard context (so per-atom selectivity accumulates across shards);
    the [querylog] is owned by the coordinator, which records one entry
    per query with per-shard latencies, and per-fingerprint stats are
    likewise folded once per query at the coordinator.  Other options
    are as {!Engine.Context.of_store}.
    @raise Invalid_argument when [shards < 1]. *)

val shard_count : t -> int
val level : t -> int
val levels : t -> int
val level_index : t -> string -> int option
val segment_count : t -> int
(** Total segments at the current query level, across shards. *)

val count_at : t -> level:int -> int

val contexts : t -> Engine.Context.t array
(** The per-shard evaluation contexts, in partition order (tests and
    diagnostics; mutate stores through {!set_attr} &co, not directly). *)

val offsets : t -> int array
(** Global-id offset of each shard at the current level:
    global id = local id + offset. *)

val with_level : t -> level:int -> t
(** Re-aim every shard context at a level (same registries and caches).
    @raise Invalid_argument when out of range. *)

val for_request : ?tracer:Obs.Trace.t -> ?trace_id:string -> t -> t
(** A request-scoped view of the same handle: every shard context emits
    into [tracer] and stamps [trace_id] (per-shard ["shard.scatter"]
    spans, trace ids on the coordinator's query-log records), while all
    warm state — stores, caches, index registries, offsets — stays
    shared with the original.  With neither argument this is the
    identity.  Concurrent requests derive independent views, so one
    request's spans never interleave with another's. *)

(** {1 Scatter–gather evaluation}

    All evaluation raises {!Engine.Query.Error} exactly as the
    unsharded {!Engine.Query} entry points do. *)

val run :
  ?backend:Engine.Query.backend -> t -> Htl.Ast.t -> Simlist.Sim_list.t
(** Evaluate on every shard, shift each shard's entries by its offset
    and re-canonicalise — byte-equal to {!Engine.Query.run} over the
    unsharded store.  With metrics attached, counts [query.count] once
    (not per shard) plus [shard.queries]/[shard.merge_s]/
    [shard.imbalance]; with a querylog, slow queries record per-shard
    latencies in the [shards] field. *)

val run_string :
  ?backend:Engine.Query.backend -> t -> string -> Simlist.Sim_list.t

val top_k :
  ?backend:Engine.Query.backend ->
  t ->
  k:int ->
  string ->
  (int * Simlist.Sim.t) list
(** Parse, scatter, and gather through {!Engine.Topk.merged_top_k}: the
    coordinator pops the k best global ids off a heap of per-shard
    cursors without materialising the merged list. *)

val run_batch :
  ?backend:Engine.Query.backend ->
  t ->
  Htl.Ast.t list ->
  (Simlist.Sim_list.t, string) result list
(** Each slot goes through the scatter–gather path independently; a slot
    that fails (on any shard) yields [Error msg] without poisoning
    sibling slots.  Slots fan out across the pool when one is
    attached. *)

val explain :
  ?backend:Engine.Query.backend -> ?analyze:bool -> t -> Htl.Ast.t -> string
(** The scatter–gather plan: one row per shard (videos, segments,
    global-id offset) and the coordinator merge.  With [~analyze:true]
    the query actually runs and every shard row carries its wall time
    and result entry count — skewed shards are visible at a glance — and
    the representative per-shard evaluation tree (shard 0, via
    {!Engine.Query.explain}) is appended. *)

(** {1 Mutation routing}

    Global-id mutation API mirroring {!Video_model.Store}: the owning
    shard is located by offset, and only {e its} version bumps — sibling
    caches and registries stay warm. *)

val locate : t -> level:int -> id:int -> int * int
(** (shard ordinal, shard-local id) owning a global id.
    @raise Invalid_argument when out of range. *)

val update_meta :
  t ->
  level:int ->
  id:int ->
  f:(Metadata.Seg_meta.t -> Metadata.Seg_meta.t) ->
  unit

val set_attr :
  t -> level:int -> id:int -> name:string -> Metadata.Value.t -> unit

val add_object : t -> level:int -> id:int -> Metadata.Entity.t -> unit
val remove_object : t -> level:int -> id:int -> obj:int -> unit
val remove_attr : t -> level:int -> id:int -> name:string -> unit

(** {1 Ingestion}

    Appends route to a single shard and grow only its id space: the
    owning shard's version bumps, sibling caches and registries stay
    warm, and the global offsets of the shards after it are refreshed in
    place. *)

val video_count : t -> int
(** Total videos across shards. *)

val append_video : t -> Video_model.Video.t -> unit
(** Append a whole video to the {e last} shard (keeping the partition
    contiguous), as {!Video_model.Store.append_video}.
    @raise Invalid_argument when the video's level names disagree. *)

val append_segments : ?video:int -> t -> Metadata.Seg_meta.t list -> unit
(** Append leaf segments to a video, as
    {!Video_model.Store.append_segments}.  [video] is the global 0-based
    video index and defaults to the last video of the corpus; it must be
    the last video of its owning shard (only shard-final videos can grow
    without renumbering).
    @raise Invalid_argument otherwise, or on an empty list or
    single-level store. *)

(** {1 Snapshots} *)

val save_snapshot : t -> string -> unit
(** Persist every shard's store and its finalized indexes for {e all}
    levels (building any the registry has not seen yet) via
    {!Storage.Snapshot.save}, so a load answers queries at any level
    with zero index rebuilds. *)

val load_snapshot :
  ?config:Picture.Retrieval.config ->
  ?threshold:float ->
  ?conj_mode:Simlist.Sim_list.conj_mode ->
  ?reorder_joins:bool ->
  ?level:int ->
  ?pool:Parallel.Pool.t ->
  ?par_cutoff:int ->
  ?metrics:Obs.Metrics.t ->
  ?querylog:Obs.Querylog.t ->
  ?stats:Obs.Stats.t ->
  string ->
  t
(** Restore the saved shard layout, preloading each shard's registry
    with the snapshot's finalized indexes — the first query after a load
    is a registry hit, not a rebuild ([picture.index.builds] stays 0).
    @raise Storage.Snapshot.Snapshot_error as {!Storage.Snapshot.load}. *)
