module Store = Video_model.Store
module Video = Video_model.Video
module Context = Engine.Context
module Query = Engine.Query
module Cache = Engine.Cache
module Sim_list = Simlist.Sim_list
module Interval = Simlist.Interval

type t = {
  shards : Context.t array;  (* in partition order; every ctx store-backed *)
  level : int;
  levels : int;
  offsets : int array;  (* global-id offset per shard at [level] *)
  pool : Parallel.Pool.t option;
  metrics : Obs.Metrics.t option;
  querylog : Obs.Querylog.t option;
  stats : Obs.Stats.t option;
  trace_id : string option; (* set per request via [for_request] *)
}

let store_of ctx =
  match ctx.Context.store with
  | Some s -> s
  | None -> invalid_arg "Sharded: shard context without a store"

let offsets_of shards ~level =
  let n = Array.length shards in
  let off = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    off.(i) <- !acc;
    acc := !acc + Store.count_at (store_of shards.(i)) ~level
  done;
  off

let make ~pool ~metrics ~querylog ?stats ctxs =
  let shards = Array.of_list ctxs in
  if Array.length shards = 0 then invalid_arg "Sharded: no shards";
  let levels = Store.levels (store_of shards.(0)) in
  Array.iter
    (fun c ->
      if Store.levels (store_of c) <> levels then
        invalid_arg "Sharded: shards disagree on level structure")
    shards;
  let level = shards.(0).Context.level in
  { shards; level; levels; offsets = offsets_of shards ~level; pool; metrics;
    querylog; stats; trace_id = None }

(* Contiguous partition of the videos into at most [n] groups of roughly
   equal leaf weight: videos accumulate into the current group until the
   running total crosses the next n-quantile of the total weight.  A
   video is never split, so the group count can come out below [n] for
   small or skewed corpora. *)
let partition n videos =
  let weight v = Video.count_at v (Video.levels v) in
  let total = List.fold_left (fun acc v -> acc + weight v) 0 videos in
  let boundary i = total * i / n in
  let rec go i cum group groups = function
    | [] -> List.rev (List.rev group :: groups)
    | v :: rest ->
        let cum = cum + weight v in
        let group = v :: group in
        if cum >= boundary (i + 1) && rest <> [] then
          go (i + 1) cum [] (List.rev group :: groups) rest
        else go i cum group groups rest
  in
  match videos with
  | [] -> invalid_arg "Sharded: empty store"
  | _ -> go 0 0 [] [] videos

let create ?(shards = 1) ?config ?threshold ?conj_mode ?reorder_joins ?level
    ?planner ?pool ?par_cutoff ?metrics ?querylog ?stats store =
  if shards < 1 then
    invalid_arg (Printf.sprintf "Sharded.create: shards %d < 1" shards);
  (* partition the *current* trees: edits and appends made to the source
     store must survive re-sharding *)
  let videos = Store.current_videos store in
  let n = min shards (List.length videos) in
  let groups = partition n videos in
  let ctxs =
    List.map
      (fun group ->
        Context.of_store ?config ?threshold ?conj_mode ?reorder_joins ?level
          ?planner ?pool ?par_cutoff ?metrics ?stats (Store.create group))
      groups
  in
  make ~pool ~metrics ~querylog ?stats ctxs

let shard_count t = Array.length t.shards
let level t = t.level
let levels t = t.levels
let level_index t name = Store.level_index (store_of t.shards.(0)) name
let contexts t = t.shards
let offsets t = t.offsets

let count_at t ~level =
  Array.fold_left
    (fun acc ctx -> acc + Store.count_at (store_of ctx) ~level)
    0 t.shards

let segment_count t = count_at t ~level:t.level

let with_level t ~level =
  if level < 1 || level > t.levels then
    invalid_arg (Printf.sprintf "Sharded.with_level: level %d not in 1..%d"
                   level t.levels);
  let shards =
    Array.map
      (fun ctx ->
        let store = store_of ctx in
        Context.with_level ctx ~level ~extents:(Store.extents_at store ~level))
      t.shards
  in
  { t with shards; level; offsets = offsets_of shards ~level }

(* --- per-request observability ------------------------------------------- *)

(* A request-scoped view: the same shard stores, registries and caches
   (Context.with_tracer/with_trace_id are record updates, so all warm
   state is shared), but every shard context emits into the request's
   own tracer and stamps its trace id.  The handle itself is immutable —
   concurrent requests each derive their own view and never see each
   other's spans, which is what lets the service trace live traffic
   without poisoning the shared warm context (DESIGN.md §2.20). *)
let for_request ?tracer ?trace_id t =
  match (tracer, trace_id) with
  | None, None -> t
  | _ ->
      let derive ctx =
        let ctx =
          match trace_id with
          | Some id -> Context.with_trace_id ctx id
          | None -> ctx
        in
        match tracer with
        | Some tr -> Context.with_tracer ctx tr
        | None -> ctx
      in
      {
        t with
        shards = Array.map derive t.shards;
        trace_id =
          (match trace_id with Some _ as id -> id | None -> t.trace_id);
      }

(* --- scatter–gather ------------------------------------------------------ *)

let fail fmt = Format.kasprintf (fun s -> raise (Query.Error s)) fmt

(* Scatter: evaluate the already-classified formula on every shard,
   recording per-shard wall time.  [Query.dispatch] skips the per-query
   envelope, so N shard evaluations still count as one query at the
   coordinator; the shard contexts carry the shared metrics, so cache
   and index counters (cache.hits, picture.index.builds, ...) keep
   accumulating normally.  When the shard contexts carry a (request)
   tracer, each shard's evaluation sits under its own "shard.scatter"
   span carrying the ordinal and trace id — under a pool the span roots
   at the worker domain's stack bottom, sequentially it nests under the
   caller. *)
let eval_parts ~backend t cls f =
  let one (i, ctx) =
    Context.with_span ctx "shard.scatter"
      ~attrs:(fun () ->
        ("shard", string_of_int i)
        :: (match t.trace_id with
           | Some id -> [ ("trace_id", id) ]
           | None -> []))
      (fun () ->
        let t0 = Obs.Clock.now () in
        let list = Query.dispatch ~backend ctx cls f in
        (list, Obs.Clock.now () -. t0))
  in
  let ctxs = List.mapi (fun i ctx -> (i, ctx)) (Array.to_list t.shards) in
  match t.pool with
  | Some p when Parallel.Pool.domain_count p > 1 && Array.length t.shards > 1
    ->
      Parallel.Pool.parallel_map p one ctxs
  | _ -> List.map one ctxs

let shared_max parts =
  match parts with
  | [] -> fail "Sharded: no shards"
  | (l, _) :: rest ->
      let m = Sim_list.max_sim l in
      List.iter
        (fun (l', _) ->
          if Sim_list.max_sim l' <> m then
            fail
              "Sharded: shards disagree on the formula maximum (%g vs %g)"
              m (Sim_list.max_sim l'))
        rest;
      m

(* Gather for [run]: shift every shard's entries into the global
   numbering and re-canonicalise.  [of_entries] coalesces adjacent
   equal-valued intervals across shard boundaries, so the result is
   byte-equal to evaluating the unsharded store. *)
let merge t parts =
  let max = shared_max parts in
  let entries =
    List.concat
      (List.mapi
         (fun i (l, _) ->
           List.map
             (fun (iv, v) -> (Interval.shift t.offsets.(i) iv, v))
             (Sim_list.entries l))
         parts)
  in
  Sim_list.of_entries ~max entries

let note_scatter t ~merge_s parts =
  match t.metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.incr m ~by:(Array.length t.shards) "shard.queries";
      Obs.Metrics.observe m "shard.merge_s" merge_s;
      let lats = List.map snd parts in
      let mx = List.fold_left Float.max 0. lats in
      let mean =
        List.fold_left ( +. ) 0. lats /. float_of_int (List.length lats)
      in
      if mean > 0. then Obs.Metrics.set_gauge m "shard.imbalance" (mx /. mean)

let scan_prefix = "picture.segments_scanned"

let scan_counters m =
  List.filter_map
    (function
      | name, Obs.Metrics.Counter n
        when String.starts_with ~prefix:scan_prefix name ->
          Some (name, n)
      | _ -> None)
    (Obs.Metrics.snapshot m)

let scan_delta ~before after =
  List.filter_map
    (fun (name, n) ->
      let prior =
        match List.assoc_opt name before with Some p -> p | None -> 0
      in
      if n > prior then Some (name, n - prior) else None)
    after

let cache_probes t =
  Array.fold_left
    (fun (h, m) ctx ->
      match Context.cache ctx with
      | None -> (h, m)
      | Some c ->
          let s = Cache.stats c in
          (h + s.Cache.hits, m + s.Cache.misses))
    (0, 0) t.shards

(* the coordinator records the *requested* backend: under
   [Auto_backend] each shard resolves its own choice inside
   [Query.dispatch], against its own registry and statistics *)
let backend_name = function
  | Query.Direct_backend -> "direct"
  | Query.Sql_backend_choice -> "sql"
  | Query.Auto_backend -> "auto"

(* The coordinator's query envelope, mirroring [Query.run_observed]:
   classify once, scatter, time the gather via [consume], and record the
   one-per-query metrics and the slow-log entry (with per-shard
   latencies in the [shards] field).  [consume] is either the full merge
   ([run]) or the lazy top-k heap merge ([top_k]). *)
let run_core ~backend t f consume =
  let gathered parts =
    let t0 = Obs.Clock.now () in
    let r = consume parts in
    let merge_s = Obs.Clock.now () -. t0 in
    note_scatter t ~merge_s parts;
    r
  in
  let plain () =
    match Htl.Classify.check f with
    | Error reason -> fail "unsupported formula: %s" reason
    | Ok cls -> gathered (eval_parts ~backend t cls f)
  in
  match (t.metrics, t.querylog, t.stats) with
  | None, None, None -> plain ()
  | _ ->
      let t_start = Obs.Clock.now () in
      Option.iter (fun m -> Obs.Metrics.incr m "query.count") t.metrics;
      let cache_before =
        match t.querylog with Some _ -> Some (cache_probes t) | None -> None
      in
      let scans_before =
        match (t.querylog, t.metrics) with
        | Some _, Some m -> Some (scan_counters m)
        | _ -> None
      in
      let gc_before = Obs.Resource.sample () in
      let gc = ref Obs.Resource.zero in
      let cls = ref None in
      let lats = ref [] in
      let work () =
        match Htl.Classify.check f with
        | Error reason -> fail "unsupported formula: %s" reason
        | Ok c ->
            cls := Some c;
            let parts = eval_parts ~backend t c f in
            lats := List.mapi (fun i (_, s) -> (i, s)) parts;
            let r = gathered parts in
            gc :=
              Obs.Resource.delta ~before:gc_before
                ~after:(Obs.Resource.sample ());
            r
      in
      let finish ~error =
        let latency = Obs.Clock.now () -. t_start in
        Option.iter
          (fun m ->
            if Option.is_some error then Obs.Metrics.incr m "query.errors";
            Obs.Metrics.observe m "query.latency_s" latency;
            Obs.Metrics.observe m "query.allocated_words"
              (Obs.Resource.allocated_words !gc))
          t.metrics;
        Option.iter
          (fun st ->
            Obs.Stats.record_query st
              ~fingerprint:(Htl.Hcons.intern_id f)
              ~formula:(fun () -> Htl.Pretty.to_string f)
              ~backend:(backend_name backend) ~latency_s:latency
              ~error:(Option.is_some error))
          t.stats;
        match t.querylog with
        | Some ql when Obs.Querylog.should_log ql ~latency_s:latency ->
            let hits, misses =
              match cache_before with
              | Some (h0, m0) ->
                  let h1, m1 = cache_probes t in
                  (h1 - h0, m1 - m0)
              | None -> (0, 0)
            in
            let scans =
              match (scans_before, t.metrics) with
              | Some before, Some m -> scan_delta ~before (scan_counters m)
              | _ -> []
            in
            Obs.Querylog.record ql
              {
                Obs.Querylog.time_s = t_start;
                formula_id = Htl.Hcons.intern_id f;
                formula = Htl.Pretty.to_string f;
                backend = backend_name backend;
                cls =
                  (match !cls with
                  | Some c -> Htl.Classify.cls_to_string c
                  | None -> "unsupported");
                latency_s = latency;
                cache_hits = hits;
                cache_misses = misses;
                segments_scanned = scans;
                resources = !gc;
                shards = !lats;
                trace_id = t.trace_id;
                error;
              }
        | Some _ | None -> ()
      in
      (match work () with
      | r ->
          finish ~error:None;
          r
      | exception e ->
          finish
            ~error:
              (Some
                 (match e with
                 | Query.Error msg -> msg
                 | e -> Printexc.to_string e));
          raise e)

let run ?(backend = Query.Direct_backend) t f =
  run_core ~backend t f (merge t)

let parse src =
  match Htl.Parser.formula_of_string_opt src with
  | Error msg -> fail "syntax error: %s" msg
  | Ok f -> f

let run_string ?backend t src = run ?backend t (parse src)

let top_k ?(backend = Query.Direct_backend) t ~k src =
  let f = parse src in
  run_core ~backend t f (fun parts ->
      Engine.Topk.merged_top_k
        (List.mapi (fun i (l, _) -> (l, t.offsets.(i))) parts)
        ~k)

let run_batch ?(backend = Query.Direct_backend) t fs =
  let one f =
    match run ~backend t f with
    | list -> Result.Ok list
    | exception Query.Error msg -> Result.Error msg
  in
  match t.pool with
  | Some p when Parallel.Pool.domain_count p > 1 && List.length fs > 1 ->
      Parallel.Pool.parallel_map p one fs
  | _ -> List.map one fs

(* --- explain ------------------------------------------------------------- *)

let explain ?(backend = Query.Direct_backend) ?(analyze = false) t f =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "scatter-gather over %d shard%s at level %d (%d segments)@."
    (shard_count t)
    (if shard_count t = 1 then "" else "s")
    t.level (segment_count t);
  let parts =
    if not analyze then None
    else
      match Htl.Classify.check f with
      | Error reason -> fail "unsupported formula: %s" reason
      | Ok cls -> Some (eval_parts ~backend t cls f)
  in
  Array.iteri
    (fun i ctx ->
      let store = store_of ctx in
      Format.fprintf ppf "  shard %d: videos %d, segments %d, offset %d" i
        (List.length (Store.videos store))
        (Store.count_at store ~level:t.level)
        t.offsets.(i);
      (match parts with
      | Some parts ->
          let l, s = List.nth parts i in
          Format.fprintf ppf ", time %.6fs, entries %d" s (Sim_list.length l)
      | None -> ());
      Format.fprintf ppf "@.")
    t.shards;
  (match parts with
  | Some parts ->
      let t0 = Obs.Clock.now () in
      let merged = merge t parts in
      Format.fprintf ppf
        "  merge: %d entries, %.6fs (Sim_list.of_entries over shifted \
         shard entries)@."
        (Sim_list.length merged)
        (Obs.Clock.now () -. t0)
  | None ->
      Format.fprintf ppf
        "  merge: shift by shard offset, re-canonicalise (top-k via \
         Topk.merged_top_k)@.");
  Format.fprintf ppf "shard 0 plan:@.%a@." Engine.Explain.pp
    (Query.explain ~backend ~analyze t.shards.(0) f);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* --- mutation routing ---------------------------------------------------- *)

let locate t ~level ~id =
  if level < 1 || level > t.levels then
    invalid_arg (Printf.sprintf "Sharded.locate: level %d not in 1..%d" level
                   t.levels);
  let off = offsets_of t.shards ~level in
  let n = Array.length t.shards in
  let rec find i =
    if i >= n then
      invalid_arg (Printf.sprintf "Sharded.locate: id %d out of range" id)
    else
      let count = Store.count_at (store_of t.shards.(i)) ~level in
      if id > off.(i) && id <= off.(i) + count then (i, id - off.(i))
      else find (i + 1)
  in
  if id < 1 then
    invalid_arg (Printf.sprintf "Sharded.locate: id %d out of range" id);
  find 0

let route t ~level ~id f =
  let shard, local = locate t ~level ~id in
  f (store_of t.shards.(shard)) ~level ~id:local

let update_meta t ~level ~id ~f =
  route t ~level ~id (fun store ~level ~id -> Store.update_meta store ~level ~id ~f)

let set_attr t ~level ~id ~name v =
  route t ~level ~id (fun store ~level ~id ->
      Store.set_attr store ~level ~id ~name v)

let add_object t ~level ~id o =
  route t ~level ~id (fun store ~level ~id ->
      Store.add_object store ~level ~id o)

let remove_object t ~level ~id ~obj =
  route t ~level ~id (fun store ~level ~id ->
      Store.remove_object store ~level ~id ~obj)

let remove_attr t ~level ~id ~name =
  route t ~level ~id (fun store ~level ~id ->
      Store.remove_attr store ~level ~id ~name)

(* --- ingestion ----------------------------------------------------------- *)

(* Appends grow exactly one shard's id space, so the offsets of the
   shards after it shift.  The shard count is fixed for the lifetime of
   the handle, so the array is refreshed in place — contexts derived
   from [t] keep seeing coherent offsets. *)
let refresh_offsets t =
  let off = offsets_of t.shards ~level:t.level in
  Array.blit off 0 t.offsets 0 (Array.length t.offsets)

let video_counts t =
  Array.map (fun ctx -> List.length (Store.videos (store_of ctx))) t.shards

let video_count t = Array.fold_left ( + ) 0 (video_counts t)

let append_video t v =
  let last = Array.length t.shards - 1 in
  Store.append_video (store_of t.shards.(last)) v;
  refresh_offsets t

let append_segments ?video t metas =
  let counts = video_counts t in
  let total = Array.fold_left ( + ) 0 counts in
  let video = match video with Some v -> v | None -> total - 1 in
  if video < 0 || video >= total then
    invalid_arg
      (Printf.sprintf "Sharded.append_segments: video %d not in 0..%d" video
         (total - 1));
  let rec find i acc =
    if video < acc + counts.(i) then (i, video - acc) else find (i + 1) (acc + counts.(i))
  in
  let shard, local = find 0 0 in
  (* [Store.append_segments] extends a store's last video; within a
     contiguous partition only each shard's last video (and globally
     only the corpus's last, unless the caller names an interior
     shard-final video) can grow without renumbering. *)
  if local <> counts.(shard) - 1 then
    invalid_arg
      (Printf.sprintf
         "Sharded.append_segments: video %d is not the last video of shard %d"
         video shard);
  Store.append_segments (store_of t.shards.(shard)) metas;
  refresh_offsets t

(* --- snapshots ----------------------------------------------------------- *)

let save_snapshot t path =
  let shards =
    List.map
      (fun ctx ->
        let store = store_of ctx in
        (* materialise every level through the shard's registry, so the
           snapshot answers any level with zero rebuilds after load *)
        let indexes =
          List.init (Store.levels store) (fun i ->
              Picture.Index.Registry.get ctx.Context.registry
                ?metrics:ctx.Context.metrics store ~level:(i + 1))
        in
        { Storage.Snapshot.store; indexes })
      (Array.to_list t.shards)
  in
  Storage.Snapshot.save path shards

let load_snapshot ?config ?threshold ?conj_mode ?reorder_joins ?level ?pool
    ?par_cutoff ?metrics ?querylog ?stats path =
  let shards = Storage.Snapshot.load path in
  let ctxs =
    List.map
      (fun { Storage.Snapshot.store; indexes } ->
        let registry = Picture.Index.Registry.create () in
        Picture.Index.Registry.preload registry
          ~version:(Store.version store) indexes;
        Context.with_registry
          (Context.of_store ?config ?threshold ?conj_mode ?reorder_joins
             ?level ?pool ?par_cutoff ?metrics ?stats store)
          registry)
      shards
  in
  make ~pool ~metrics ~querylog ?stats ctxs
