type t = { title : string; level_names : string array; root : Segment.t }

let create ~title ~level_names root =
  if level_names = [] then invalid_arg "Video.create: no level names";
  let expected = List.length level_names in
  (match Segment.uniform_depth root with
  | Some d when d = expected -> ()
  | Some d ->
      invalid_arg
        (Printf.sprintf
           "Video.create: tree depth %d but %d level names given" d expected)
  | None -> invalid_arg "Video.create: leaves are not all at the same depth");
  { title; level_names = Array.of_list level_names; root }

let two_level ~title ?(leaf_name = "shot") metas =
  if metas = [] then invalid_arg "Video.two_level: no segments";
  let attrs = [ ("title", Metadata.Value.Str title) ] in
  create ~title ~level_names:[ "video"; leaf_name ]
    (Segment.make
       ~meta:(Metadata.Seg_meta.make ~attrs ())
       (List.map Segment.leaf metas))

let levels t = Array.length t.level_names

(* Extend the rightmost path only: the new leaves become the last
   children of the last leaf-parent, so every existing segment keeps its
   position and the result has the same uniform depth (no re-validation
   pass over the whole tree). *)
let append_leaves t metas =
  if metas = [] then invalid_arg "Video.append_leaves: no segments";
  if levels t < 2 then
    invalid_arg "Video.append_leaves: video has no leaf level below the root";
  let rec extend depth (seg : Segment.t) =
    if depth = levels t - 1 then
      Segment.make ~meta:seg.meta
        (seg.children @ List.map Segment.leaf metas)
    else
      match List.rev seg.children with
      | [] -> invalid_arg "Video.append_leaves: malformed tree"
      | last :: before ->
          Segment.make ~meta:seg.meta
            (List.rev (extend (depth + 1) last :: before))
  in
  { t with root = extend 1 t.root }

let level_name t i =
  if i < 1 || i > levels t then invalid_arg "Video.level_name: out of range";
  t.level_names.(i - 1)

let level_index t name =
  let rec find i =
    if i >= Array.length t.level_names then None
    else if String.equal t.level_names.(i) name then Some (i + 1)
    else find (i + 1)
  in
  find 0

let segments_at t level =
  let rec go seg l =
    if l = 1 then [ seg ]
    else List.concat_map (fun c -> go c (l - 1)) seg.Segment.children
  in
  if level < 1 || level > levels t then
    invalid_arg "Video.segments_at: out of range";
  go t.root level

let count_at t level = Segment.count_at t.root level
