(** One video: a named, level-labelled segment tree with all leaves at the
    same depth (§2.1). *)

type t = private {
  title : string;
  level_names : string array;  (** index [i] names level [i+1]; root is level 1 *)
  root : Segment.t;
}

val create : title:string -> level_names:string list -> Segment.t -> t
(** @raise Invalid_argument when the tree's leaves are not all at depth
    [List.length level_names], or no level names are given. *)

val two_level : title:string -> ?leaf_name:string -> Metadata.Seg_meta.t list -> t
(** Convenience for the paper's §3 setting: a root plus one sequence of
    children (default level names: ["video"; "shot"]).
    @raise Invalid_argument on an empty list. *)

val append_leaves : t -> Metadata.Seg_meta.t list -> t
(** A copy of the video with the given segments appended at the leaf
    level, as the last children of the last leaf-parent — the ingest
    path: live annotation extends a video's tail, it never edits the
    past.  Every existing segment keeps its position and the tree keeps
    its uniform depth.
    @raise Invalid_argument on an empty list or a single-level video. *)

val levels : t -> int
val level_name : t -> int -> string
(** @raise Invalid_argument for an out-of-range level. *)

val level_index : t -> string -> int option
(** 1-based index of a named level. *)

val segments_at : t -> int -> Segment.t list
(** All segments at a level, in temporal order. *)

val count_at : t -> int -> int
