(** The video database: several videos sharing one level structure,
    flattened into per-level arrays with global 1-based segment ids.

    Global numbering follows temporal order video by video, so the
    descendants of any segment occupy a contiguous id range at every lower
    level — that range is what temporal operators scope over (a {e proper
    sequence}, §2.3), and it is exposed as {!Simlist.Extent} values. *)

type node = {
  video : int;  (** 0-based index into {!videos} *)
  level : int;  (** 1-based level, root = 1 *)
  id : int;  (** global id within the level *)
  parent : int option;  (** global id at [level - 1] *)
  children_span : Simlist.Interval.t option;
      (** global ids of the children at [level + 1] *)
  meta : Metadata.Seg_meta.t;
}

type t

val create : Video.t list -> t
(** @raise Invalid_argument when the list is empty or the videos disagree
    on level names. *)

val of_video : Video.t -> t

val videos : t -> Video.t list
(** The source video records (titles, level names, trees as created or
    appended).  Segment {e meta-data} in these trees is not updated by
    the in-place editors below; use {!current_videos} when the trees
    must reflect every edit. *)

val current_videos : t -> Video.t list
(** The video trees reconstructed from the live per-level nodes: every
    edit and append is reflected.  [Store.create (current_videos t)] is
    an exact structural copy of the current state (with version 0) —
    the form snapshots serialize and re-sharding consumes. *)

val levels : t -> int
val level_name : t -> int -> string
val level_index : t -> string -> int option

val count_at : t -> level:int -> int
(** Total number of segments at a level, across all videos. *)

val node : t -> level:int -> id:int -> node
(** @raise Invalid_argument when out of range. *)

val meta : t -> level:int -> id:int -> Metadata.Seg_meta.t

val nodes_at : t -> level:int -> node array

val extents_at : t -> level:int -> Simlist.Extent.t
(** The proper-sequence partition of a level when a query ranges over
    whole videos: one extent per video. *)

val descendants_span :
  t -> level:int -> id:int -> target:int -> Simlist.Interval.t option
(** Global-id span of the descendants of segment [(level, id)] at level
    [target]; [None] when [target <= level] or the segment has no
    descendants there. *)

val video_span : t -> video:int -> level:int -> Simlist.Interval.t
(** Global-id span of one video's segments at a level. *)

val locate : t -> level:int -> id:int -> int * string * int
(** Map a global segment id back to the paper's (video, segment) pair:
    (0-based video index, video title, 1-based position within that
    video's sequence at the level). *)

val all_object_ids : t -> int list
(** Every universal object id mentioned anywhere in the store (the domain
    of existential quantification), sorted. *)

(** {1 Annotation updates, ingestion and the version stamp}

    A store's segment meta-data may be edited in place (annotation
    tooling, incremental analysis), and new segments may be appended at
    the tail (live ingestion).  Every {e effective} mutation bumps a
    monotonically increasing {!version} stamp and records a {!change} in
    a bounded log; downstream caches and index registries consult
    {!changes_since} to invalidate or maintain incrementally instead of
    rebuilding wholesale.  A no-op mutation — rewriting identical
    meta-data, removing an absent attribute or object — leaves both the
    version and the log untouched.  Existing segments never move: ids
    are stable, and appends only extend the id space. *)

type change =
  | Edited of { level : int; id : int }
      (** one segment's meta-data was replaced in place *)
  | Appended of { counts : int array }
      (** [counts.(l-1)] segments were appended at the tail of level [l];
          existing segments (ids and meta-data) are untouched, though the
          last leaf-parent's children span grows *)

val version : t -> int
(** Starts at 0 for a fresh store; bumped by every effective mutation
    below. *)

val changes_since : t -> since:int -> change list option
(** Every change after version [since], oldest first; [Some []] when
    [since] is current.  [None] when the bounded change log no longer
    reaches back to [since] (or [since] is from the future) — the caller
    must then assume everything changed. *)

val update_meta :
  t -> level:int -> id:int -> f:(Metadata.Seg_meta.t -> Metadata.Seg_meta.t) -> unit
(** Replace one segment's meta-data.  Version-neutral when [f] returns
    meta-data structurally equal to the current value (in particular when
    [f] is the identity): warm caches and indexes survive no-op edits.
    @raise Invalid_argument when out of range. *)

val append_segments : t -> Metadata.Seg_meta.t list -> unit
(** Append leaf segments to the {e last} video, as children of its last
    leaf-parent — the live-ingestion path (cut detection emitting shots).
    Derived levels, {!video_span}, {!extents_at} and {!count_at} stay
    consistent; the new segments take the next global leaf ids.  Records
    one [Appended] change.
    @raise Invalid_argument on an empty list or a single-level store. *)

val append_video : t -> Video.t -> unit
(** Append a whole new video after the existing ones; every level gains
    the video's segments at the tail of its id space.  Records one
    [Appended] change.
    @raise Invalid_argument when the video's level names disagree with
    the store's. *)

val add_object : t -> level:int -> id:int -> Metadata.Entity.t -> unit
(** Annotate a segment with an object; replaces any existing object with
    the same universal id. *)

val remove_object : t -> level:int -> id:int -> obj:int -> unit
(** Remove the object with universal id [obj] from a segment, along with
    every relationship mentioning it. *)

val set_attr : t -> level:int -> id:int -> name:string -> Metadata.Value.t -> unit
(** Set a segment-level attribute (add or overwrite). *)

val remove_attr : t -> level:int -> id:int -> name:string -> unit
