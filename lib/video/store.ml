type node = {
  video : int;
  level : int;
  id : int;
  parent : int option;
  children_span : Simlist.Interval.t option;
  meta : Metadata.Seg_meta.t;
}

type change =
  | Edited of { level : int; id : int }
  | Appended of { counts : int array }

type t = {
  mutable videos : Video.t list;
  by_level : node array array;
  mutable version : int;
  mutable log : (int * change) list;  (* (version after, change), newest first *)
  mutable log_len : int;
}
(* by_level.(l-1).(id-1) is the node with global id [id] at level [l].
   [by_level] rows are replaced wholesale on append (reads hold a row
   reference, never re-index mid-scan), so the array itself is the unit
   of publication. *)

(* The change log is the incremental-maintenance contract: every version
   bump appends exactly one entry, so consumers (index registry, result
   cache) can replay the gap between their stamp and the current version.
   Bounded so an unconsulted store cannot leak; a consumer whose stamp
   fell off the horizon gets [None] and falls back to a full rebuild. *)
let log_limit = 512

let log_change t c =
  t.version <- t.version + 1;
  t.log <- (t.version, c) :: t.log;
  t.log_len <- t.log_len + 1;
  (* amortized truncation: trim only when twice over the limit *)
  if t.log_len > 2 * log_limit then begin
    t.log <- List.filteri (fun i _ -> i < log_limit) t.log;
    t.log_len <- log_limit
  end

let changes_since t ~since =
  if since = t.version then Some []
  else if since > t.version then None
  else
    (* entries carry consecutive versions newest-first, so reaching
       [since + 1] (or [since] itself) proves the walk saw every change *)
    let rec go acc = function
      | [] -> None
      | (v, c) :: rest ->
          if v <= since then Some acc
          else if v = since + 1 then Some (c :: acc)
          else go (c :: acc) rest
    in
    go [] t.log

let create videos =
  (match videos with
  | [] -> invalid_arg "Store.create: no videos"
  | first :: rest ->
      let names v = Array.to_list v.Video.level_names in
      List.iter
        (fun v ->
          if names v <> names first then
            invalid_arg "Store.create: videos disagree on level names")
        rest);
  let levels = Video.levels (List.hd videos) in
  let acc : node list ref array = Array.make levels (ref []) in
  Array.iteri (fun i _ -> acc.(i) <- ref []) acc;
  let counters = Array.make levels 0 in
  let next_id level =
    counters.(level - 1) <- counters.(level - 1) + 1;
    counters.(level - 1)
  in
  let rec walk vidx level parent (seg : Segment.t) =
    let id = next_id level in
    let child_ids =
      List.map (fun c -> walk vidx (level + 1) (Some id) c) seg.children
    in
    let children_span =
      match child_ids with
      | [] -> None
      | first :: _ ->
          let last = List.nth child_ids (List.length child_ids - 1) in
          Some (Simlist.Interval.make first last)
    in
    let node = { video = vidx; level; id; parent; children_span; meta = seg.meta } in
    acc.(level - 1) := node :: !(acc.(level - 1));
    id
  in
  List.iteri (fun vidx v -> ignore (walk vidx 1 None v.Video.root)) videos;
  let by_level =
    Array.map (fun l -> Array.of_list (List.rev !l)) acc
  in
  (* ids were assigned in walk order which is temporal order per level *)
  Array.iter
    (fun nodes ->
      Array.iteri (fun i n -> assert (n.id = i + 1)) nodes)
    by_level;
  { videos; by_level; version = 0; log = []; log_len = 0 }

let of_video v = create [ v ]
let version t = t.version
let videos t = t.videos
let levels t = Array.length t.by_level
let level_name t i = Video.level_name (List.hd t.videos) i
let level_index t name = Video.level_index (List.hd t.videos) name

let count_at t ~level =
  if level < 1 || level > levels t then
    invalid_arg "Store.count_at: level out of range";
  Array.length t.by_level.(level - 1)

let node t ~level ~id =
  if level < 1 || level > levels t then
    invalid_arg "Store.node: level out of range";
  let nodes = t.by_level.(level - 1) in
  if id < 1 || id > Array.length nodes then
    invalid_arg (Printf.sprintf "Store.node: id %d out of range at level %d" id level);
  nodes.(id - 1)

let meta t ~level ~id = (node t ~level ~id).meta
let nodes_at t ~level =
  if level < 1 || level > levels t then
    invalid_arg "Store.nodes_at: level out of range";
  t.by_level.(level - 1)

let video_span t ~video ~level =
  let nodes = nodes_at t ~level in
  let first = ref 0 and last = ref 0 in
  Array.iter
    (fun n ->
      if n.video = video then begin
        if !first = 0 then first := n.id;
        last := n.id
      end)
    nodes;
  if !first = 0 then
    invalid_arg "Store.video_span: video has no segments at this level";
  Simlist.Interval.make !first !last

let extents_at t ~level =
  let spans =
    List.mapi (fun vidx _ -> video_span t ~video:vidx ~level) t.videos
  in
  Simlist.Extent.of_spans spans

let descendants_span t ~level ~id ~target =
  if target <= level then None
  else
    let rec go level id_lo id_hi =
      if level = target then Some (Simlist.Interval.make id_lo id_hi)
      else
        let lo_node = node t ~level ~id:id_lo
        and hi_node = node t ~level ~id:id_hi in
        match (lo_node.children_span, hi_node.children_span) with
        | Some lo_span, Some hi_span ->
            go (level + 1)
              (Simlist.Interval.lo lo_span)
              (Simlist.Interval.hi hi_span)
        | _, _ -> None
    in
    go level id id

let locate t ~level ~id =
  let n = node t ~level ~id in
  let span = video_span t ~video:n.video ~level in
  let title = (List.nth t.videos n.video).Video.title in
  (n.video, title, id - Simlist.Interval.lo span + 1)

let update_meta t ~level ~id ~f =
  let n = node t ~level ~id in
  let m' = f n.meta in
  (* [compare], not [=]: a meta-data record carrying a NaN (bbox corners,
     float attributes) must still count as unchanged when rewritten
     verbatim, or an identity edit would bump the version forever. *)
  if compare m' n.meta <> 0 then begin
    t.by_level.(level - 1).(id - 1) <- { n with meta = m' };
    log_change t (Edited { level; id })
  end

let add_object t ~level ~id obj =
  update_meta t ~level ~id ~f:(fun m ->
      let others =
        List.filter
          (fun (o : Metadata.Entity.t) -> o.id <> obj.Metadata.Entity.id)
          m.Metadata.Seg_meta.objects
      in
      { m with Metadata.Seg_meta.objects = obj :: others })

let remove_object t ~level ~id ~obj =
  update_meta t ~level ~id ~f:(fun m ->
      {
        m with
        Metadata.Seg_meta.objects =
          List.filter
            (fun (o : Metadata.Entity.t) -> o.id <> obj)
            m.Metadata.Seg_meta.objects;
        relationships =
          List.filter
            (fun r -> not (List.mem obj r.Metadata.Relationship.args))
            m.Metadata.Seg_meta.relationships;
      })

let set_attr t ~level ~id ~name value =
  update_meta t ~level ~id ~f:(fun m ->
      {
        m with
        Metadata.Seg_meta.attrs =
          (name, value) :: List.remove_assoc name m.Metadata.Seg_meta.attrs;
      })

let remove_attr t ~level ~id ~name =
  update_meta t ~level ~id ~f:(fun m ->
      {
        m with
        Metadata.Seg_meta.attrs =
          List.remove_assoc name m.Metadata.Seg_meta.attrs;
      })

(* --- ingestion ----------------------------------------------------------- *)

let append_segments t metas =
  let leaf = levels t in
  if leaf < 2 then
    invalid_arg "Store.append_segments: store has no leaf level below the root";
  if metas = [] then invalid_arg "Store.append_segments: no segments";
  let nodes = t.by_level.(leaf - 1) in
  let n_old = Array.length nodes in
  let parents = t.by_level.(leaf - 2) in
  let parent = parents.(Array.length parents - 1) in
  (* the globally last leaf-parent's children are the globally last
     leaves (ids are assigned video by video, subtree by subtree), so
     extending its span keeps the span contiguous *)
  let lo =
    match parent.children_span with
    | Some span ->
        assert (Simlist.Interval.hi span = n_old);
        Simlist.Interval.lo span
    | None -> n_old + 1
  in
  let k = List.length metas in
  let fresh =
    List.mapi
      (fun i meta ->
        {
          video = parent.video;
          level = leaf;
          id = n_old + i + 1;
          parent = Some parent.id;
          children_span = None;
          meta;
        })
      metas
  in
  t.by_level.(leaf - 1) <- Array.append nodes (Array.of_list fresh);
  parents.(Array.length parents - 1) <-
    { parent with
      children_span = Some (Simlist.Interval.make lo (n_old + k)) };
  (* keep the source tree in step, so sharding and serialization see the
     appended leaves *)
  (match List.rev t.videos with
  | last :: before ->
      t.videos <- List.rev (Video.append_leaves last metas :: before)
  | [] -> assert false);
  let counts = Array.make (levels t) 0 in
  counts.(leaf - 1) <- k;
  log_change t (Appended { counts })

let append_video t v =
  let names v = Array.to_list v.Video.level_names in
  if names v <> names (List.hd t.videos) then
    invalid_arg "Store.append_video: level names disagree with the store";
  let nlevels = levels t in
  let vidx = List.length t.videos in
  let counters = Array.map Array.length t.by_level in
  let acc : node list array = Array.make nlevels [] in
  let rec walk level parent (seg : Segment.t) =
    counters.(level - 1) <- counters.(level - 1) + 1;
    let id = counters.(level - 1) in
    let child_ids = List.map (walk (level + 1) (Some id)) seg.children in
    let children_span =
      match child_ids with
      | [] -> None
      | first :: _ ->
          let last = List.nth child_ids (List.length child_ids - 1) in
          Some (Simlist.Interval.make first last)
    in
    acc.(level - 1) <-
      { video = vidx; level; id; parent; children_span; meta = seg.meta }
      :: acc.(level - 1);
    id
  in
  ignore (walk 1 None v.Video.root);
  let counts = Array.make nlevels 0 in
  Array.iteri
    (fun i news ->
      let news = Array.of_list (List.rev news) in
      counts.(i) <- Array.length news;
      t.by_level.(i) <- Array.append t.by_level.(i) news)
    acc;
  t.videos <- t.videos @ [ v ];
  log_change t (Appended { counts })

(* Reconstruct the video trees from the by-level nodes, so the result
   reflects every edit and append (the [videos] source list keeps the
   original meta-data of edited segments).  Titles and level names come
   from the source records; structure and meta-data from the nodes. *)
let current_videos t =
  let rec rebuild level id =
    let n = t.by_level.(level - 1).(id - 1) in
    let children =
      match n.children_span with
      | None -> []
      | Some span ->
          let lo = Simlist.Interval.lo span in
          List.init
            (Simlist.Interval.hi span - lo + 1)
            (fun i -> rebuild (level + 1) (lo + i))
    in
    Segment.make ~meta:n.meta children
  in
  List.mapi
    (fun vidx v ->
      Video.create ~title:v.Video.title
        ~level_names:(Array.to_list v.Video.level_names)
        (rebuild 1 (vidx + 1)))
    t.videos

let all_object_ids t =
  let ids = Hashtbl.create 64 in
  Array.iter
    (fun nodes ->
      Array.iter
        (fun n ->
          List.iter
            (fun (o : Metadata.Entity.t) -> Hashtbl.replace ids o.id ())
            n.meta.Metadata.Seg_meta.objects)
        nodes)
    t.by_level;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) ids [])
