type node = {
  video : int;
  level : int;
  id : int;
  parent : int option;
  children_span : Simlist.Interval.t option;
  meta : Metadata.Seg_meta.t;
}

type t = {
  videos : Video.t list;
  by_level : node array array;
  mutable version : int;
}
(* by_level.(l-1).(id-1) is the node with global id [id] at level [l]. *)

let create videos =
  (match videos with
  | [] -> invalid_arg "Store.create: no videos"
  | first :: rest ->
      let names v = Array.to_list v.Video.level_names in
      List.iter
        (fun v ->
          if names v <> names first then
            invalid_arg "Store.create: videos disagree on level names")
        rest);
  let levels = Video.levels (List.hd videos) in
  let acc : node list ref array = Array.make levels (ref []) in
  Array.iteri (fun i _ -> acc.(i) <- ref []) acc;
  let counters = Array.make levels 0 in
  let next_id level =
    counters.(level - 1) <- counters.(level - 1) + 1;
    counters.(level - 1)
  in
  let rec walk vidx level parent (seg : Segment.t) =
    let id = next_id level in
    let child_ids =
      List.map (fun c -> walk vidx (level + 1) (Some id) c) seg.children
    in
    let children_span =
      match child_ids with
      | [] -> None
      | first :: _ ->
          let last = List.nth child_ids (List.length child_ids - 1) in
          Some (Simlist.Interval.make first last)
    in
    let node = { video = vidx; level; id; parent; children_span; meta = seg.meta } in
    acc.(level - 1) := node :: !(acc.(level - 1));
    id
  in
  List.iteri (fun vidx v -> ignore (walk vidx 1 None v.Video.root)) videos;
  let by_level =
    Array.map (fun l -> Array.of_list (List.rev !l)) acc
  in
  (* ids were assigned in walk order which is temporal order per level *)
  Array.iter
    (fun nodes ->
      Array.iteri (fun i n -> assert (n.id = i + 1)) nodes)
    by_level;
  { videos; by_level; version = 0 }

let of_video v = create [ v ]
let version t = t.version
let videos t = t.videos
let levels t = Array.length t.by_level
let level_name t i = Video.level_name (List.hd t.videos) i
let level_index t name = Video.level_index (List.hd t.videos) name

let count_at t ~level =
  if level < 1 || level > levels t then
    invalid_arg "Store.count_at: level out of range";
  Array.length t.by_level.(level - 1)

let node t ~level ~id =
  if level < 1 || level > levels t then
    invalid_arg "Store.node: level out of range";
  let nodes = t.by_level.(level - 1) in
  if id < 1 || id > Array.length nodes then
    invalid_arg (Printf.sprintf "Store.node: id %d out of range at level %d" id level);
  nodes.(id - 1)

let meta t ~level ~id = (node t ~level ~id).meta
let nodes_at t ~level =
  if level < 1 || level > levels t then
    invalid_arg "Store.nodes_at: level out of range";
  t.by_level.(level - 1)

let video_span t ~video ~level =
  let nodes = nodes_at t ~level in
  let first = ref 0 and last = ref 0 in
  Array.iter
    (fun n ->
      if n.video = video then begin
        if !first = 0 then first := n.id;
        last := n.id
      end)
    nodes;
  if !first = 0 then
    invalid_arg "Store.video_span: video has no segments at this level";
  Simlist.Interval.make !first !last

let extents_at t ~level =
  let spans =
    List.mapi (fun vidx _ -> video_span t ~video:vidx ~level) t.videos
  in
  Simlist.Extent.of_spans spans

let descendants_span t ~level ~id ~target =
  if target <= level then None
  else
    let rec go level id_lo id_hi =
      if level = target then Some (Simlist.Interval.make id_lo id_hi)
      else
        let lo_node = node t ~level ~id:id_lo
        and hi_node = node t ~level ~id:id_hi in
        match (lo_node.children_span, hi_node.children_span) with
        | Some lo_span, Some hi_span ->
            go (level + 1)
              (Simlist.Interval.lo lo_span)
              (Simlist.Interval.hi hi_span)
        | _, _ -> None
    in
    go level id id

let locate t ~level ~id =
  let n = node t ~level ~id in
  let span = video_span t ~video:n.video ~level in
  let title = (List.nth t.videos n.video).Video.title in
  (n.video, title, id - Simlist.Interval.lo span + 1)

let update_meta t ~level ~id ~f =
  let n = node t ~level ~id in
  t.by_level.(level - 1).(id - 1) <- { n with meta = f n.meta };
  t.version <- t.version + 1

let add_object t ~level ~id obj =
  update_meta t ~level ~id ~f:(fun m ->
      let others =
        List.filter
          (fun (o : Metadata.Entity.t) -> o.id <> obj.Metadata.Entity.id)
          m.Metadata.Seg_meta.objects
      in
      { m with Metadata.Seg_meta.objects = obj :: others })

let remove_object t ~level ~id ~obj =
  update_meta t ~level ~id ~f:(fun m ->
      {
        m with
        Metadata.Seg_meta.objects =
          List.filter
            (fun (o : Metadata.Entity.t) -> o.id <> obj)
            m.Metadata.Seg_meta.objects;
        relationships =
          List.filter
            (fun r -> not (List.mem obj r.Metadata.Relationship.args))
            m.Metadata.Seg_meta.relationships;
      })

let set_attr t ~level ~id ~name value =
  update_meta t ~level ~id ~f:(fun m ->
      {
        m with
        Metadata.Seg_meta.attrs =
          (name, value) :: List.remove_assoc name m.Metadata.Seg_meta.attrs;
      })

let remove_attr t ~level ~id ~name =
  update_meta t ~level ~id ~f:(fun m ->
      {
        m with
        Metadata.Seg_meta.attrs =
          List.remove_assoc name m.Metadata.Seg_meta.attrs;
      })

let all_object_ids t =
  let ids = Hashtbl.create 64 in
  Array.iter
    (fun nodes ->
      Array.iter
        (fun n ->
          List.iter
            (fun (o : Metadata.Entity.t) -> Hashtbl.replace ids o.id ())
            n.meta.Metadata.Seg_meta.objects)
        nodes)
    t.by_level;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) ids [])
