module W = Binio.Writer
module R = Binio.Reader
module Value = Metadata.Value
module Entity = Metadata.Entity
module Relationship = Metadata.Relationship
module Seg_meta = Metadata.Seg_meta
module Bbox = Metadata.Bbox
module Store = Video_model.Store
module Video = Video_model.Video
module Segment = Video_model.Segment
module Index = Picture.Index

type error =
  | Not_a_snapshot
  | Unsupported_version of int
  | Truncated of { expected : int; got : int }
  | Checksum_mismatch
  | Corrupt of string

exception Snapshot_error of error

let error_to_string = function
  | Not_a_snapshot -> "not a snapshot file (bad magic)"
  | Unsupported_version v -> Printf.sprintf "unsupported snapshot version %d" v
  | Truncated { expected; got } ->
      Printf.sprintf "truncated snapshot: expected %d bytes, got %d" expected
        got
  | Checksum_mismatch -> "snapshot checksum mismatch"
  | Corrupt msg -> Printf.sprintf "corrupt snapshot payload: %s" msg

type shard = { store : Store.t; indexes : Index.t list }

let magic = "HTLSNAP"
let format_version = 1
let header_len = 20 (* magic 7 + version 1 + payload length 8 + crc 4 *)

(* --- payload encoding ---------------------------------------------------- *)

let w_value w = function
  | Value.Int n ->
      W.u8 w 0;
      W.zint w n
  | Value.Float f ->
      W.u8 w 1;
      W.f64 w f
  | Value.Str s ->
      W.u8 w 2;
      W.str w s
  | Value.Bool b ->
      W.u8 w 3;
      W.u8 w (if b then 1 else 0)

let w_attr w (name, v) =
  W.str w name;
  w_value w v

let w_bbox w = function
  | None -> W.u8 w 0
  | Some (b : Bbox.t) ->
      W.u8 w 1;
      W.f64 w b.x0;
      W.f64 w b.y0;
      W.f64 w b.x1;
      W.f64 w b.y1

let w_entity w (o : Entity.t) =
  W.zint w o.id;
  W.str w o.otype;
  W.list w (w_attr w) o.attrs;
  w_bbox w o.bbox

let w_relationship w (r : Relationship.t) =
  W.str w r.name;
  W.list w (W.zint w) r.args

let w_meta w (m : Seg_meta.t) =
  W.list w (w_entity w) m.objects;
  W.list w (w_relationship w) m.relationships;
  W.list w (w_attr w) m.attrs

let rec w_segment w (s : Segment.t) =
  w_meta w s.meta;
  W.list w (w_segment w) s.children

let w_video w (v : Video.t) =
  W.str w v.title;
  W.list w (W.str w) (Array.to_list v.level_names);
  w_segment w v.root

(* Serialize the *current* trees, not the source records: [Store.videos]
   keeps the meta-data the store was created with, so a snapshot taken
   after edits or appends would silently lose them. *)
let w_store w store = W.list w (w_video w) (Store.current_videos store)

let w_vkey w = function
  | Index.Knum f ->
      W.u8 w 0;
      W.f64 w f
  | Index.Kstr s ->
      W.u8 w 1;
      W.str w s
  | Index.Kbool b ->
      W.u8 w 2;
      W.u8 w (if b then 1 else 0)

let w_points w (p : Index.points) =
  W.list w (W.zint w) p.ints;
  W.list w (W.str w) p.strs;
  W.u8 w (match p.bad with None -> 0 | Some `Float -> 1 | Some `Bool -> 2)

let w_assoc w wkey l =
  W.list w
    (fun (k, postings) ->
      wkey k;
      W.sorted_array w postings)
    l

let w_index w idx =
  let d = Index.dump idx in
  W.zint w d.Index.d_level;
  W.zint w d.d_segments;
  w_assoc w (W.zint w) d.d_by_object;
  w_assoc w (W.str w) d.d_by_type;
  w_assoc w (W.str w) d.d_by_relationship;
  W.sorted_array w d.d_with_objects;
  w_assoc w (W.str w) d.d_by_seg_attr;
  w_assoc w
    (fun (name, k) ->
      W.str w name;
      w_vkey w k)
    d.d_by_seg_attr_value;
  w_assoc w (W.str w) d.d_by_obj_attr;
  w_assoc w
    (fun (name, k) ->
      W.str w name;
      w_vkey w k)
    d.d_by_obj_attr_value;
  W.list w
    (fun (name, p) ->
      W.str w name;
      w_points w p)
    d.d_seg_points;
  W.list w
    (fun ((name, oid), p) ->
      W.str w name;
      W.zint w oid;
      w_points w p)
    d.d_obj_points;
  W.list w (W.zint w) d.d_objects;
  W.list w (W.str w) d.d_types

let w_shard w { store; indexes } =
  w_store w store;
  W.list w (w_index w) indexes

let encode shards =
  let w = W.create () in
  W.list w (w_shard w) shards;
  W.contents w

(* --- payload decoding ---------------------------------------------------- *)

let r_value r =
  match R.u8 r with
  | 0 -> Value.Int (R.zint r)
  | 1 -> Value.Float (R.f64 r)
  | 2 -> Value.Str (R.str r)
  | 3 -> Value.Bool (R.u8 r <> 0)
  | t -> raise (Binio.Decode_error (Printf.sprintf "bad value tag %d" t))

let r_attr r =
  let name = R.str r in
  (name, r_value r)

let r_bbox r =
  match R.u8 r with
  | 0 -> None
  | 1 ->
      let x0 = R.f64 r in
      let y0 = R.f64 r in
      let x1 = R.f64 r in
      let y1 = R.f64 r in
      Some (Bbox.make ~x0 ~y0 ~x1 ~y1)
  | t -> raise (Binio.Decode_error (Printf.sprintf "bad bbox tag %d" t))

let r_entity r =
  let id = R.zint r in
  let otype = R.str r in
  let attrs = R.list r (fun () -> r_attr r) in
  let bbox = r_bbox r in
  Entity.make ~id ~otype ~attrs ?bbox ()

let r_relationship r =
  let name = R.str r in
  let args = R.list r (fun () -> R.zint r) in
  Relationship.make name args

(* Corpora repeat metadata heavily — the same few attribute sets across
   millions of segments — and a load's cost is dominated by what it
   leaves live on the major heap.  Hash-consing each decoded meta
   against the ones already seen makes identical segments share one
   immutable record, so a million-segment load keeps a handful of metas
   live instead of a million.  (A meta holding a NaN never compares
   equal to itself and simply goes unshared.) *)
let r_meta memo r =
  let objects = R.list r (fun () -> r_entity r) in
  let relationships = R.list r (fun () -> r_relationship r) in
  let attrs = R.list r (fun () -> r_attr r) in
  let meta = Seg_meta.make ~objects ~relationships ~attrs () in
  match Hashtbl.find_opt memo meta with
  | Some shared -> shared
  | None ->
      Hashtbl.add memo meta meta;
      meta

(* Leaves dominate a corpus and are immutable (store edits replace
   by-level nodes, never segment records), so leaves with the same
   shared meta can be one record too. *)
let rec r_segment memo leaves r =
  let meta = r_meta memo r in
  let children = R.list r (fun () -> r_segment memo leaves r) in
  match children with
  | [] -> (
      match Hashtbl.find_opt leaves meta with
      | Some leaf -> leaf
      | None ->
          let leaf = Segment.make ~meta [] in
          Hashtbl.add leaves meta leaf;
          leaf)
  | _ :: _ -> Segment.make ~meta children

let r_video memo leaves r =
  let title = R.str r in
  let level_names = R.list r (fun () -> R.str r) in
  let root = r_segment memo leaves r in
  Video.create ~title ~level_names root

let r_store r =
  let memo = Hashtbl.create 64 in
  let leaves = Hashtbl.create 64 in
  let videos = R.list r (fun () -> r_video memo leaves r) in
  Store.create videos

let r_vkey r =
  match R.u8 r with
  | 0 -> Index.Knum (R.f64 r)
  | 1 -> Index.Kstr (R.str r)
  | 2 -> Index.Kbool (R.u8 r <> 0)
  | t -> raise (Binio.Decode_error (Printf.sprintf "bad vkey tag %d" t))

let r_points r : Index.points =
  let ints = R.list r (fun () -> R.zint r) in
  let strs = R.list r (fun () -> R.str r) in
  let bad =
    match R.u8 r with
    | 0 -> None
    | 1 -> Some `Float
    | 2 -> Some `Bool
    | t -> raise (Binio.Decode_error (Printf.sprintf "bad points tag %d" t))
  in
  { ints; strs; bad }

let r_assoc r rkey =
  R.list r (fun () ->
      let k = rkey () in
      (k, R.sorted_array r))

let r_index r =
  let d_level = R.zint r in
  let d_segments = R.zint r in
  let d_by_object = r_assoc r (fun () -> R.zint r) in
  let d_by_type = r_assoc r (fun () -> R.str r) in
  let d_by_relationship = r_assoc r (fun () -> R.str r) in
  let d_with_objects = R.sorted_array r in
  let d_by_seg_attr = r_assoc r (fun () -> R.str r) in
  let d_by_seg_attr_value =
    r_assoc r (fun () ->
        let name = R.str r in
        (name, r_vkey r))
  in
  let d_by_obj_attr = r_assoc r (fun () -> R.str r) in
  let d_by_obj_attr_value =
    r_assoc r (fun () ->
        let name = R.str r in
        (name, r_vkey r))
  in
  let d_seg_points =
    R.list r (fun () ->
        let name = R.str r in
        (name, r_points r))
  in
  let d_obj_points =
    R.list r (fun () ->
        let name = R.str r in
        let oid = R.zint r in
        ((name, oid), r_points r))
  in
  let d_objects = R.list r (fun () -> R.zint r) in
  let d_types = R.list r (fun () -> R.str r) in
  Index.undump
    {
      Index.d_level;
      d_segments;
      d_by_object;
      d_by_type;
      d_by_relationship;
      d_with_objects;
      d_by_seg_attr;
      d_by_seg_attr_value;
      d_by_obj_attr;
      d_by_obj_attr_value;
      d_seg_points;
      d_obj_points;
      d_objects;
      d_types;
    }

let r_shard r =
  let store = r_store r in
  let indexes = R.list r (fun () -> r_index r) in
  { store; indexes }

let decode payload =
  let r = R.of_string payload in
  let shards = R.list r (fun () -> r_shard r) in
  if not (R.eof r) then
    raise
      (Binio.Decode_error
         (Printf.sprintf "payload has trailing bytes at %d" (R.pos r)));
  shards

(* --- files --------------------------------------------------------------- *)

let save path shards =
  let payload = encode shards in
  let header = Buffer.create header_len in
  Buffer.add_string header magic;
  Buffer.add_uint8 header format_version;
  Buffer.add_int64_le header (Int64.of_int (String.length payload));
  Buffer.add_int32_le header (Int32.of_int (Binio.crc32 payload));
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Buffer.contents header);
      Out_channel.output_string oc payload);
  Sys.rename tmp path

let load path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  let len = String.length data in
  if len < String.length magic || String.sub data 0 (String.length magic) <> magic
  then raise (Snapshot_error Not_a_snapshot);
  if len < header_len then
    raise (Snapshot_error (Truncated { expected = header_len; got = len }));
  let version = Char.code data.[7] in
  if version <> format_version then
    raise (Snapshot_error (Unsupported_version version));
  let payload_len = Int64.to_int (String.get_int64_le data 8) in
  if payload_len < 0 then
    raise (Snapshot_error (Corrupt "negative payload length"));
  let expected = header_len + payload_len in
  if len < expected then
    raise (Snapshot_error (Truncated { expected; got = len }));
  if len > expected then
    raise
      (Snapshot_error
         (Corrupt (Printf.sprintf "%d trailing bytes" (len - expected))));
  let stored_crc = Int32.to_int (String.get_int32_le data 16) land 0xFFFFFFFF in
  let payload = String.sub data header_len payload_len in
  if Binio.crc32 payload <> stored_crc then
    raise (Snapshot_error Checksum_mismatch);
  (* a load is one long allocation burst whose result stays live: on the
     default GC settings the major collector keeps the heap tight and
     does a full marking pass's worth of work per few MB decoded, which
     multiplies wall time several-fold on large corpora.  Relax the
     space/time trade-off for the burst and restore it after. *)
  let gc = Gc.get () in
  Gc.set { gc with Gc.space_overhead = 800 };
  Fun.protect
    ~finally:(fun () -> Gc.set gc)
    (fun () ->
      match decode payload with
      | shards -> shards
      | exception Binio.Decode_error msg -> raise (Snapshot_error (Corrupt msg))
      | exception Invalid_argument msg -> raise (Snapshot_error (Corrupt msg)))
