(** Binary on-disk snapshots of sharded stores with their finalized
    indexes.

    A snapshot holds one or more shards; each shard is a complete
    {!Video_model.Store.t} (its videos, serialized structurally) plus
    any number of finalized {!Picture.Index.t} values, so a
    multi-million-segment corpus cold-starts by deserializing posting
    arrays instead of re-ingesting and re-scanning every level.

    {2 Format}

    {v
    "HTLSNAP"  7 bytes   magic
    u8         1 byte    format version (currently 1)
    u64 LE     8 bytes   payload length
    u32 LE     4 bytes   CRC-32 of the payload (poly 0xEDB88320)
    payload    ...       Binio-encoded shard list
    v}

    The payload is a varint-counted list of shards; every string is
    length-prefixed, every posting array delta-coded, every float a
    little-endian IEEE-754 bit pattern (see {!Binio}).  Index dumps come
    from {!Picture.Index.dump}, whose association lists are sorted, so
    the same store always snapshots to the same bytes.  Unknown
    versions, length mismatches, checksum failures and malformed
    payloads each raise a distinct {!error}. *)

type error =
  | Not_a_snapshot  (** the file does not start with the magic *)
  | Unsupported_version of int
  | Truncated of { expected : int; got : int }  (** in bytes *)
  | Checksum_mismatch
  | Corrupt of string  (** structurally invalid payload *)

exception Snapshot_error of error

val error_to_string : error -> string

type shard = {
  store : Video_model.Store.t;
  indexes : Picture.Index.t list;  (** finalized, any set of levels *)
}

val save : string -> shard list -> unit
(** Write atomically (temp file + rename).  @raise Sys_error on IO
    failure. *)

val load : string -> shard list
(** Restored stores have version 0 (fresh, as if just created).
    @raise Snapshot_error on any validation or decode failure.
    @raise Sys_error on IO failure. *)
