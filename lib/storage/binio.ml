exception Decode_error of string

let decode_error fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* OCaml ints are 63-bit, so zigzag folds the sign bit with [asr 62]. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let contents = Buffer.contents
  let length = Buffer.length

  let u8 b n =
    if n < 0 || n > 0xFF then
      invalid_arg (Printf.sprintf "Binio.Writer.u8: %d out of range" n);
    Buffer.add_uint8 b n

  let varint b n =
    if n < 0 then
      invalid_arg (Printf.sprintf "Binio.Writer.varint: negative %d" n);
    let rec go n =
      if n < 0x80 then Buffer.add_uint8 b n
      else begin
        Buffer.add_uint8 b (0x80 lor (n land 0x7F));
        go (n lsr 7)
      end
    in
    go n

  let zint b n = varint b (zigzag n)
  let f64 b x = Buffer.add_int64_le b (Int64.bits_of_float x)

  let str b s =
    varint b (String.length s);
    Buffer.add_string b s

  let sorted_array b a =
    let n = Array.length a in
    varint b n;
    if n > 0 then begin
      zint b a.(0);
      for i = 1 to n - 1 do
        let gap = a.(i) - a.(i - 1) in
        if gap <= 0 then
          invalid_arg "Binio.Writer.sorted_array: not strictly ascending";
        varint b gap
      done
    end

  let list b f l =
    varint b (List.length l);
    List.iter f l
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let pos r = r.pos
  let eof r = r.pos >= String.length r.data

  let u8 r =
    if r.pos >= String.length r.data then
      decode_error "unexpected end of input at byte %d" r.pos;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let varint r =
    let rec go shift acc =
      if shift > 62 then decode_error "varint overflow at byte %d" r.pos;
      let byte = u8 r in
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if byte land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let zint r = unzigzag (varint r)

  let f64 r =
    if r.pos + 8 > String.length r.data then
      decode_error "truncated float at byte %d" r.pos;
    let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
    r.pos <- r.pos + 8;
    v

  let str r =
    let n = varint r in
    if r.pos + n > String.length r.data then
      decode_error "truncated string (%d bytes) at byte %d" n r.pos;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let sorted_array r =
    let n = varint r in
    if n = 0 then [||]
    else begin
      let a = Array.make n 0 in
      a.(0) <- zint r;
      for i = 1 to n - 1 do
        let gap = varint r in
        if gap <= 0 then decode_error "sorted_array gap %d at byte %d" gap r.pos;
        a.(i) <- a.(i - 1) + gap
      done;
      a
    end

  let list r f = List.init (varint r) (fun _ -> f ())
end

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF
