(** Low-level binary codec primitives for the snapshot format: LEB128
    varints (zigzag for signed), IEEE-754 doubles in little-endian bit
    order, length-prefixed strings, delta-coded sorted integer arrays,
    and a CRC-32 for whole-payload checksums.  Everything is
    deterministic — the same value always produces the same bytes — so
    snapshots of identical stores are byte-identical. *)

exception Decode_error of string
(** Raised by every [Reader] primitive on malformed or truncated
    input. *)

module Writer : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val length : t -> int

  val u8 : t -> int -> unit
  (** One byte; [0..255].  @raise Invalid_argument out of range. *)

  val varint : t -> int -> unit
  (** Unsigned LEB128.  @raise Invalid_argument when negative. *)

  val zint : t -> int -> unit
  (** Signed integer, zigzag + LEB128. *)

  val f64 : t -> float -> unit
  (** 8 bytes, [Int64.bits_of_float] little-endian — total (NaN bit
      patterns survive round-trips). *)

  val str : t -> string -> unit
  (** Varint byte length + raw bytes. *)

  val sorted_array : t -> int array -> unit
  (** Strictly-ascending int array, delta-coded: varint length, zigzag
      first element, then varint gaps.  @raise Invalid_argument when not
      strictly ascending. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Varint length + each element via the callback. *)
end

module Reader : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val eof : t -> bool

  val u8 : t -> int
  val varint : t -> int
  val zint : t -> int
  val f64 : t -> float
  val str : t -> string
  val sorted_array : t -> int array
  val list : t -> (unit -> 'a) -> 'a list
end

val crc32 : string -> int
(** CRC-32 (polynomial 0xEDB88320, the zlib one) of the whole string,
    in [0, 0xFFFFFFFF]. *)
