let () =
  let suites =
    Test_simlist.suites @ Test_video.suites @ Test_htl.suites
    @ Test_picture.suites @ Test_relational.suites @ Test_engine.suites @ Test_analyzer.suites @ Test_storage.suites @ Test_extensions.suites @ Test_workload.suites @ Test_edges.suites @ Test_cache.suites @ Test_parallel.suites @ Test_obs.suites @ Test_differential.suites @ Test_planner.suites @ Test_index.suites @ Test_server.suites @ Test_shard.suites
  in
  Alcotest.run "htl_video" suites
