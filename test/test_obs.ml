(* Tests for the observability layer (lib/obs + EXPLAIN) and the Topk
   edge behaviour: span nesting and attributes, the metrics registry's
   kinds and snapshots, top_k's lazy expansion against a naive oracle
   and its k-edge cases, and EXPLAIN's static/analyzed trees on both
   backends. *)

open Engine
module Sim_list = Simlist.Sim_list
module Interval = Simlist.Interval
module Sim = Simlist.Sim
module C = Workload.Casablanca

let parse = Htl.Parser.formula_of_string

(* --- Trace ---------------------------------------------------------------- *)

let trace_tests =
  let open Alcotest in
  [
    test_case "spans nest and close" `Quick (fun () ->
        let tr = Obs.Trace.create () in
        let r =
          Obs.Trace.with_span tr "outer" (fun () ->
              Obs.Trace.with_span tr "inner" (fun () -> 41) + 1)
        in
        check int "result threads through" 42 r;
        match Obs.Trace.spans tr with
        | [ outer; inner ] ->
            check string "outer first (start order)" "outer"
              outer.Obs.Trace.name;
            check int "outer is a root" 0 outer.Obs.Trace.parent;
            check int "inner nests under outer" outer.Obs.Trace.id
              inner.Obs.Trace.parent;
            check bool "outer closed" false
              (Float.is_nan outer.Obs.Trace.stop_s);
            check bool "inner closed" false
              (Float.is_nan inner.Obs.Trace.stop_s);
            check bool "durations are non-negative" true
              (Obs.Trace.duration_s inner >= Some 0.
              && Obs.Trace.duration_s outer >= Some 0.)
        | spans -> failf "expected 2 spans, got %d" (List.length spans));
    test_case "spans close on exceptions" `Quick (fun () ->
        let tr = Obs.Trace.create () in
        (try Obs.Trace.with_span tr "boom" (fun () -> failwith "boom")
         with Failure _ -> ());
        match Obs.Trace.spans tr with
        | [ s ] ->
            check bool "closed despite the raise" false
              (Float.is_nan s.Obs.Trace.stop_s)
        | spans -> failf "expected 1 span, got %d" (List.length spans));
    test_case "add_attr targets the innermost open span" `Quick (fun () ->
        let tr = Obs.Trace.create () in
        Obs.Trace.with_span tr "outer" (fun () ->
            Obs.Trace.with_span tr "inner" (fun () ->
                Obs.Trace.add_attr tr "k" "inner-value");
            Obs.Trace.add_attr tr "k" "outer-value");
        (match Obs.Trace.spans tr with
        | [ outer; inner ] ->
            check (option string) "inner attr" (Some "inner-value")
              (Obs.Trace.attr inner "k");
            check (option string) "outer attr" (Some "outer-value")
              (Obs.Trace.attr outer "k")
        | _ -> fail "expected 2 spans");
        (* attrs on a tracer with nothing open are dropped, not an error *)
        Obs.Trace.add_attr tr "orphan" "x");
    test_case "summarize groups by name, largest total first" `Quick
      (fun () ->
        let tr = Obs.Trace.create () in
        Obs.Trace.with_span tr "a" (fun () ->
            Obs.Trace.with_span tr "b" (fun () -> ()));
        Obs.Trace.with_span tr "b" (fun () -> ());
        let rows = Obs.Trace.summarize tr in
        check int "two names" 2 (List.length rows);
        let b = List.find (fun r -> r.Obs.Trace.sname = "b") rows in
        check int "b counted twice" 2 b.Obs.Trace.count;
        (* totals of sub-microsecond spans are noise, so assert the
           ordering contract against the totals it actually computed *)
        (match rows with
        | first :: second :: _ ->
            check bool "sorted by total, largest first" true
              (first.Obs.Trace.total_s >= second.Obs.Trace.total_s)
        | _ -> fail "expected 2 rows");
        Obs.Trace.clear tr;
        check int "clear empties the recorder" 0
          (List.length (Obs.Trace.spans tr)));
  ]

(* --- Metrics --------------------------------------------------------------- *)

let metrics_tests =
  let open Alcotest in
  [
    test_case "counters, gauges and histograms" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr m "c";
        Obs.Metrics.incr m ~by:4 "c";
        Obs.Metrics.set_gauge m "g" 2.5;
        Obs.Metrics.observe m "h" 1.0;
        Obs.Metrics.observe m "h" 3.0;
        check int "counter" 5 (Obs.Metrics.counter_value m "c");
        (match Obs.Metrics.find m "g" with
        | Some (Obs.Metrics.Gauge v) -> check (float 0.) "gauge" 2.5 v
        | _ -> fail "gauge missing");
        (match Obs.Metrics.find m "h" with
        | Some (Obs.Metrics.Histogram h) ->
            check int "histogram count" 2 h.Obs.Metrics.count;
            check (float 1e-9) "histogram sum" 4.0 h.Obs.Metrics.sum;
            check (float 0.) "histogram min" 1.0 h.Obs.Metrics.min;
            check (float 0.) "histogram max" 3.0 h.Obs.Metrics.max
        | _ -> fail "histogram missing");
        check (list string) "snapshot sorted by name" [ "c"; "g"; "h" ]
          (List.map fst (Obs.Metrics.snapshot m));
        Obs.Metrics.clear m;
        check int "clear" 0 (List.length (Obs.Metrics.snapshot m)));
    test_case "a name keeps its kind" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr m "x";
        check_raises "gauge reuse of a counter name"
          (Invalid_argument
             "Obs.Metrics: \"x\" already registered with another kind")
          (fun () -> Obs.Metrics.set_gauge m "x" 1.);
        check int "counter untouched" 1 (Obs.Metrics.counter_value m "x"));
    test_case "missing names read as absent" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        check (option reject) "find" None (Obs.Metrics.find m "nope");
        check int "counter_value" 0 (Obs.Metrics.counter_value m "nope"));
  ]

(* --- Topk ------------------------------------------------------------------ *)

(* the naive semantics top_k replaced: materialise every id, sort by
   (value desc, id asc), take k *)
let naive_top_k list ~k =
  let max = Sim_list.max_sim list in
  let all =
    List.concat_map
      (fun (iv, v) ->
        List.init (Interval.length iv) (fun i -> (Interval.lo iv + i, v)))
      (Sim_list.entries list)
  in
  let sorted =
    List.sort
      (fun (id1, v1) (id2, v2) ->
        match Float.compare v2 v1 with 0 -> compare id1 id2 | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) sorted
  |> List.map (fun (id, v) -> (id, Sim.make ~actual:v ~max))

let sample_list =
  (* ties across intervals (1.0 twice) and a long interval to expand *)
  Sim_list.of_entries ~max:2.
    [
      (Interval.make 1 3, 1.0);
      (Interval.make 5 20, 2.0);
      (Interval.make 30 31, 1.0);
      (Interval.make 40 40, 0.5);
    ]

let ids ranked = List.map fst ranked

(* random disjoint entries (gap/len/value triples laid out left to
   right; values from a small set so ties actually occur) + a small k *)
let arb_entries_and_k =
  let open QCheck in
  let gen =
    Gen.(
      pair
        (list_size (int_bound 8)
           (triple (int_bound 3) (int_range 1 4) (int_range 1 4)))
        (int_bound 30)
      >|= fun (pieces, k) ->
      let _, entries =
        List.fold_left
          (fun (pos, acc) (gap, len, v) ->
            let lo = pos + gap + 1 in
            let hi = lo + len - 1 in
            (hi, (Interval.make lo hi, float_of_int v /. 2.) :: acc))
          (0, []) pieces
      in
      (List.rev entries, k))
  in
  let print (entries, k) =
    Printf.sprintf "k=%d %s" k
      (String.concat ";"
         (List.map
            (fun (iv, v) ->
              Printf.sprintf "[%d-%d]=%.1f" (Interval.lo iv) (Interval.hi iv)
                v)
            entries))
  in
  make ~print gen

let topk_tests =
  let open Alcotest in
  [
    test_case "k = 0 is empty, negative k raises" `Quick (fun () ->
        check (list int) "k=0" [] (ids (Topk.top_k sample_list ~k:0));
        check_raises "negative" (Invalid_argument "Topk.top_k: negative k (-1)")
          (fun () -> ignore (Topk.top_k sample_list ~k:(-1))));
    test_case "k beyond the population returns every segment" `Quick
      (fun () ->
        let all = Topk.top_k sample_list ~k:1000 in
        check int "population" (3 + 16 + 2 + 1) (List.length all);
        check (list int) "ranked ids"
          (List.init 16 (fun i -> 5 + i) @ [ 1; 2; 3; 30; 31; 40 ])
          (ids all));
    test_case "ties break by id across intervals" `Quick (fun () ->
        (* after the sixteen 2.0-ids come the 1.0-ids: 1,2,3 before 30,31 *)
        check (list int) "top 19"
          (List.init 16 (fun i -> 5 + i) @ [ 1; 2; 3 ])
          (ids (Topk.top_k sample_list ~k:19)));
    test_case "values carry the list's max" `Quick (fun () ->
        match Topk.top_k sample_list ~k:1 with
        | [ (5, s) ] ->
            check (float 0.) "actual" 2.0 (Sim.actual s);
            check (float 0.) "fraction" 1.0 (Sim.fraction s)
        | _ -> fail "expected the first 2.0 segment");
    Helpers.qtest ~count:300 "top_k = naive top_k"
      (fun (entries, k) ->
        let list = Sim_list.of_entries ~max:2. entries in
        let fast = Topk.top_k list ~k and slow = naive_top_k list ~k in
        if List.length fast <> List.length slow then false
        else
          List.for_all2
            (fun (id1, s1) (id2, s2) ->
              id1 = id2 && Float.abs (Sim.actual s1 -. Sim.actual s2) < 1e-12)
            fast slow)
      arb_entries_and_k;
    Helpers.qtest ~count:300 "top_k k is a prefix of top_k (k+1)"
      (fun (entries, k) ->
        let list = Sim_list.of_entries ~max:2. entries in
        let smaller = Topk.top_k list ~k in
        let larger = Topk.top_k list ~k:(k + 1) in
        List.length larger >= List.length smaller
        && List.for_all2
             (fun (id1, s1) (id2, s2) ->
               id1 = id2 && Sim.actual s1 = Sim.actual s2)
             smaller
             (List.filteri (fun i _ -> i < List.length smaller) larger))
      arb_entries_and_k;
  ]

(* --- EXPLAIN ---------------------------------------------------------------- *)

let rec find_node p (n : Explain.node) =
  if p n then Some n else List.find_map (find_node p) n.Explain.children

let explain_tests =
  let open Alcotest in
  [
    test_case "static explain: tree without timings" `Quick (fun () ->
        let ctx = C.context () in
        let r = Query.explain ctx (parse C.query1) in
        check string "backend" "direct" r.Explain.backend;
        check bool "type (1)" true (r.Explain.cls = Htl.Classify.Type1);
        check bool "not analyzed" false r.Explain.analyzed;
        check (option (float 0.)) "no total" None r.Explain.total_s;
        check string "root" "type1.and" r.Explain.tree.Explain.label;
        check int "two children" 2
          (List.length r.Explain.tree.Explain.children);
        let untimed (n : Explain.node) = n.Explain.timing = Explain.Untimed in
        check bool "every node untimed" true
          (Option.is_none
             (find_node (fun n -> not (untimed n)) r.Explain.tree)));
    test_case "analyzed explain: per-node timings and total" `Quick (fun () ->
        let ctx = Context.without_cache (C.context ()) in
        let r = Query.explain ~analyze:true ctx (parse C.query1) in
        check bool "analyzed" true r.Explain.analyzed;
        check bool "has a total" true (Option.is_some r.Explain.total_s);
        let timed (n : Explain.node) =
          match n.Explain.timing with Explain.Timed _ -> true | _ -> false
        in
        check bool "every node timed" true
          (Option.is_none (find_node (fun n -> not (timed n)) r.Explain.tree)));
    test_case "a warm cache reads as cached" `Quick (fun () ->
        let ctx = Context.with_fresh_cache (C.context ()) in
        ignore (Query.run ctx (parse C.query1));
        let r = Query.explain ~analyze:true ctx (parse C.query1) in
        check bool "some node cached" true
          (Option.is_some
             (find_node
                (fun n -> n.Explain.timing = Explain.Cached)
                r.Explain.tree)));
    test_case "analyzed sql explain carries the script's plans" `Quick
      (fun () ->
        let ctx = C.context () in
        let r =
          Query.explain ~backend:Query.Sql_backend_choice ~analyze:true ctx
            (parse "man_woman until moving_train")
        in
        check string "backend" "sql" r.Explain.backend;
        check string "root" "sql.until" r.Explain.tree.Explain.label;
        check bool "script captured" true (r.Explain.sql_script <> []);
        check bool "a CREATE TABLE AS plan appears" true
          (List.exists
             (fun n ->
               Option.is_some
                 (find_node
                    (fun c ->
                      String.length c.Explain.label >= 4
                      && String.sub c.Explain.label 0 4 = "Scan")
                    n))
             r.Explain.sql_script));
    test_case "static sql explain has no script" `Quick (fun () ->
        let ctx = C.context () in
        let r =
          Query.explain ~backend:Query.Sql_backend_choice ctx
            (parse "man_woman until moving_train")
        in
        check bool "no script" true (r.Explain.sql_script = []));
    test_case "And-reorder explain records the join order" `Quick (fun () ->
        let rng = Workload.Rng.make 123 in
        let store =
          Workload.Movies.random_store rng ~videos:2 ~branching:6
            ~object_pool:8 ()
        in
        let ctx = Context.of_store ~reorder_joins:true store in
        (* conjuncts share the free x, so this is type (2): it goes
           through the table algorithms where And-reordering lives *)
        let f =
          parse
            "exists x . (present(x) and type(x) = \"train\" and eventually \
             present(x))"
        in
        let r = Query.explain ~analyze:true ctx f in
        match
          find_node (fun n -> n.Explain.label = "direct.and_reorder") r.Explain.tree
        with
        | None -> fail "no direct.and_reorder node"
        | Some n ->
            check int "three conjuncts" 3 (List.length n.Explain.children);
            check bool "join_order recorded" true
              (List.mem_assoc "join_order" n.Explain.attrs));
    test_case "explain rejects what run rejects" `Quick (fun () ->
        let ctx = C.context () in
        let general = Htl.Ast.Not (parse "man_woman") in
        (match Query.explain ctx general with
        | _ -> fail "explain accepted a general formula"
        | exception Query.Error msg ->
            check bool "message names the reason" true
              (String.length msg > 0));
        match Query.run ctx general with
        | _ -> fail "run accepted a general formula"
        | exception Query.Error _ -> ());
    test_case "query.run span and metrics record" `Quick (fun () ->
        let tr = Obs.Trace.create () and m = Obs.Metrics.create () in
        let ctx = Context.with_metrics (Context.with_tracer (C.context ()) tr) m in
        ignore (Query.run ctx (parse C.query1));
        check bool "query.run span recorded" true
          (List.exists
             (fun s -> s.Obs.Trace.name = "query.run")
             (Obs.Trace.spans tr));
        check int "query.count" 1 (Obs.Metrics.counter_value m "query.count");
        (match Obs.Metrics.find m "query.latency_s" with
        | Some (Obs.Metrics.Histogram h) ->
            check int "one latency sample" 1 h.Obs.Metrics.count
        | _ -> fail "query.latency_s missing");
        match Query.run ctx (Htl.Ast.Not (parse "man_woman")) with
        | _ -> fail "general formula accepted"
        | exception Query.Error _ ->
            check int "query.errors" 1
              (Obs.Metrics.counter_value m "query.errors"));
  ]

let suites =
  [
    ("obs.trace", trace_tests);
    ("obs.metrics", metrics_tests);
    ("obs.topk", topk_tests);
    ("obs.explain", explain_tests);
  ]
