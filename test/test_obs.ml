(* Tests for the observability layer (lib/obs + EXPLAIN) and the Topk
   edge behaviour: span nesting and attributes, the metrics registry's
   kinds and snapshots, top_k's lazy expansion against a naive oracle
   and its k-edge cases, and EXPLAIN's static/analyzed trees on both
   backends. *)

open Engine
module Sim_list = Simlist.Sim_list
module Interval = Simlist.Interval
module Sim = Simlist.Sim
module C = Workload.Casablanca

let parse = Htl.Parser.formula_of_string

(* --- Trace ---------------------------------------------------------------- *)

let trace_tests =
  let open Alcotest in
  [
    test_case "spans nest and close" `Quick (fun () ->
        let tr = Obs.Trace.create () in
        let r =
          Obs.Trace.with_span tr "outer" (fun () ->
              Obs.Trace.with_span tr "inner" (fun () -> 41) + 1)
        in
        check int "result threads through" 42 r;
        match Obs.Trace.spans tr with
        | [ outer; inner ] ->
            check string "outer first (start order)" "outer"
              outer.Obs.Trace.name;
            check int "outer is a root" 0 outer.Obs.Trace.parent;
            check int "inner nests under outer" outer.Obs.Trace.id
              inner.Obs.Trace.parent;
            check bool "outer closed" false
              (Float.is_nan outer.Obs.Trace.stop_s);
            check bool "inner closed" false
              (Float.is_nan inner.Obs.Trace.stop_s);
            check bool "durations are non-negative" true
              (Obs.Trace.duration_s inner >= Some 0.
              && Obs.Trace.duration_s outer >= Some 0.)
        | spans -> failf "expected 2 spans, got %d" (List.length spans));
    test_case "spans close on exceptions" `Quick (fun () ->
        let tr = Obs.Trace.create () in
        (try Obs.Trace.with_span tr "boom" (fun () -> failwith "boom")
         with Failure _ -> ());
        match Obs.Trace.spans tr with
        | [ s ] ->
            check bool "closed despite the raise" false
              (Float.is_nan s.Obs.Trace.stop_s)
        | spans -> failf "expected 1 span, got %d" (List.length spans));
    test_case "add_attr targets the innermost open span" `Quick (fun () ->
        let tr = Obs.Trace.create () in
        Obs.Trace.with_span tr "outer" (fun () ->
            Obs.Trace.with_span tr "inner" (fun () ->
                Obs.Trace.add_attr tr "k" "inner-value");
            Obs.Trace.add_attr tr "k" "outer-value");
        (match Obs.Trace.spans tr with
        | [ outer; inner ] ->
            check (option string) "inner attr" (Some "inner-value")
              (Obs.Trace.attr inner "k");
            check (option string) "outer attr" (Some "outer-value")
              (Obs.Trace.attr outer "k")
        | _ -> fail "expected 2 spans");
        (* attrs on a tracer with nothing open are dropped, not an error *)
        Obs.Trace.add_attr tr "orphan" "x");
    test_case "summarize groups by name, largest total first" `Quick
      (fun () ->
        let tr = Obs.Trace.create () in
        Obs.Trace.with_span tr "a" (fun () ->
            Obs.Trace.with_span tr "b" (fun () -> ()));
        Obs.Trace.with_span tr "b" (fun () -> ());
        let rows = Obs.Trace.summarize tr in
        check int "two names" 2 (List.length rows);
        let b = List.find (fun r -> r.Obs.Trace.sname = "b") rows in
        check int "b counted twice" 2 b.Obs.Trace.count;
        (* totals of sub-microsecond spans are noise, so assert the
           ordering contract against the totals it actually computed *)
        (match rows with
        | first :: second :: _ ->
            check bool "sorted by total, largest first" true
              (first.Obs.Trace.total_s >= second.Obs.Trace.total_s)
        | _ -> fail "expected 2 rows");
        Obs.Trace.clear tr;
        check int "clear empties the recorder" 0
          (List.length (Obs.Trace.spans tr)));
  ]

(* --- Metrics --------------------------------------------------------------- *)

let metrics_tests =
  let open Alcotest in
  [
    test_case "counters, gauges and histograms" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr m "c";
        Obs.Metrics.incr m ~by:4 "c";
        Obs.Metrics.set_gauge m "g" 2.5;
        Obs.Metrics.observe m "h" 1.0;
        Obs.Metrics.observe m "h" 3.0;
        check int "counter" 5 (Obs.Metrics.counter_value m "c");
        (match Obs.Metrics.find m "g" with
        | Some (Obs.Metrics.Gauge v) -> check (float 0.) "gauge" 2.5 v
        | _ -> fail "gauge missing");
        (match Obs.Metrics.find m "h" with
        | Some (Obs.Metrics.Histogram h) ->
            check int "histogram count" 2 h.Obs.Metrics.count;
            check (float 1e-9) "histogram sum" 4.0 h.Obs.Metrics.sum;
            check (float 0.) "histogram min" 1.0 h.Obs.Metrics.min;
            check (float 0.) "histogram max" 3.0 h.Obs.Metrics.max
        | _ -> fail "histogram missing");
        check (list string) "snapshot sorted by name" [ "c"; "g"; "h" ]
          (List.map fst (Obs.Metrics.snapshot m));
        Obs.Metrics.clear m;
        check int "clear" 0 (List.length (Obs.Metrics.snapshot m)));
    test_case "a name keeps its kind" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr m "x";
        check_raises "gauge reuse of a counter name"
          (Invalid_argument
             "Obs.Metrics: \"x\" already registered with another kind")
          (fun () -> Obs.Metrics.set_gauge m "x" 1.);
        check int "counter untouched" 1 (Obs.Metrics.counter_value m "x"));
    test_case "missing names read as absent" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        check (option reject) "find" None (Obs.Metrics.find m "nope");
        check int "counter_value" 0 (Obs.Metrics.counter_value m "nope"));
  ]

(* --- Topk ------------------------------------------------------------------ *)

(* the naive semantics top_k replaced: materialise every id, sort by
   (value desc, id asc), take k *)
let naive_top_k list ~k =
  let max = Sim_list.max_sim list in
  let all =
    List.concat_map
      (fun (iv, v) ->
        List.init (Interval.length iv) (fun i -> (Interval.lo iv + i, v)))
      (Sim_list.entries list)
  in
  let sorted =
    List.sort
      (fun (id1, v1) (id2, v2) ->
        match Float.compare v2 v1 with 0 -> compare id1 id2 | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) sorted
  |> List.map (fun (id, v) -> (id, Sim.make ~actual:v ~max))

let sample_list =
  (* ties across intervals (1.0 twice) and a long interval to expand *)
  Sim_list.of_entries ~max:2.
    [
      (Interval.make 1 3, 1.0);
      (Interval.make 5 20, 2.0);
      (Interval.make 30 31, 1.0);
      (Interval.make 40 40, 0.5);
    ]

let ids ranked = List.map fst ranked

(* random disjoint entries (gap/len/value triples laid out left to
   right; values from a small set so ties actually occur) + a small k *)
let arb_entries_and_k =
  let open QCheck in
  let gen =
    Gen.(
      pair
        (list_size (int_bound 8)
           (triple (int_bound 3) (int_range 1 4) (int_range 1 4)))
        (int_bound 30)
      >|= fun (pieces, k) ->
      let _, entries =
        List.fold_left
          (fun (pos, acc) (gap, len, v) ->
            let lo = pos + gap + 1 in
            let hi = lo + len - 1 in
            (hi, (Interval.make lo hi, float_of_int v /. 2.) :: acc))
          (0, []) pieces
      in
      (List.rev entries, k))
  in
  let print (entries, k) =
    Printf.sprintf "k=%d %s" k
      (String.concat ";"
         (List.map
            (fun (iv, v) ->
              Printf.sprintf "[%d-%d]=%.1f" (Interval.lo iv) (Interval.hi iv)
                v)
            entries))
  in
  make ~print gen

let topk_tests =
  let open Alcotest in
  [
    test_case "k = 0 is empty, negative k raises" `Quick (fun () ->
        check (list int) "k=0" [] (ids (Topk.top_k sample_list ~k:0));
        check_raises "negative" (Invalid_argument "Topk.top_k: negative k (-1)")
          (fun () -> ignore (Topk.top_k sample_list ~k:(-1))));
    test_case "k beyond the population returns every segment" `Quick
      (fun () ->
        let all = Topk.top_k sample_list ~k:1000 in
        check int "population" (3 + 16 + 2 + 1) (List.length all);
        check (list int) "ranked ids"
          (List.init 16 (fun i -> 5 + i) @ [ 1; 2; 3; 30; 31; 40 ])
          (ids all));
    test_case "ties break by id across intervals" `Quick (fun () ->
        (* after the sixteen 2.0-ids come the 1.0-ids: 1,2,3 before 30,31 *)
        check (list int) "top 19"
          (List.init 16 (fun i -> 5 + i) @ [ 1; 2; 3 ])
          (ids (Topk.top_k sample_list ~k:19)));
    test_case "values carry the list's max" `Quick (fun () ->
        match Topk.top_k sample_list ~k:1 with
        | [ (5, s) ] ->
            check (float 0.) "actual" 2.0 (Sim.actual s);
            check (float 0.) "fraction" 1.0 (Sim.fraction s)
        | _ -> fail "expected the first 2.0 segment");
    Helpers.qtest ~count:300 "top_k = naive top_k"
      (fun (entries, k) ->
        let list = Sim_list.of_entries ~max:2. entries in
        let fast = Topk.top_k list ~k and slow = naive_top_k list ~k in
        if List.length fast <> List.length slow then false
        else
          List.for_all2
            (fun (id1, s1) (id2, s2) ->
              id1 = id2 && Float.abs (Sim.actual s1 -. Sim.actual s2) < 1e-12)
            fast slow)
      arb_entries_and_k;
    Helpers.qtest ~count:300 "top_k k is a prefix of top_k (k+1)"
      (fun (entries, k) ->
        let list = Sim_list.of_entries ~max:2. entries in
        let smaller = Topk.top_k list ~k in
        let larger = Topk.top_k list ~k:(k + 1) in
        List.length larger >= List.length smaller
        && List.for_all2
             (fun (id1, s1) (id2, s2) ->
               id1 = id2 && Sim.actual s1 = Sim.actual s2)
             smaller
             (List.filteri (fun i _ -> i < List.length smaller) larger))
      arb_entries_and_k;
  ]

(* --- EXPLAIN ---------------------------------------------------------------- *)

let rec find_node p (n : Explain.node) =
  if p n then Some n else List.find_map (find_node p) n.Explain.children

let explain_tests =
  let open Alcotest in
  [
    test_case "static explain: tree without timings" `Quick (fun () ->
        let ctx = C.context () in
        let r = Query.explain ctx (parse C.query1) in
        check string "backend" "direct" r.Explain.backend;
        check bool "type (1)" true (r.Explain.cls = Htl.Classify.Type1);
        check bool "not analyzed" false r.Explain.analyzed;
        check (option (float 0.)) "no total" None r.Explain.total_s;
        check string "root" "type1.and" r.Explain.tree.Explain.label;
        check int "two children" 2
          (List.length r.Explain.tree.Explain.children);
        let untimed (n : Explain.node) = n.Explain.timing = Explain.Untimed in
        check bool "every node untimed" true
          (Option.is_none
             (find_node (fun n -> not (untimed n)) r.Explain.tree)));
    test_case "analyzed explain: per-node timings and total" `Quick (fun () ->
        let ctx = Context.without_cache (C.context ()) in
        let r = Query.explain ~analyze:true ctx (parse C.query1) in
        check bool "analyzed" true r.Explain.analyzed;
        check bool "has a total" true (Option.is_some r.Explain.total_s);
        let timed (n : Explain.node) =
          match n.Explain.timing with Explain.Timed _ -> true | _ -> false
        in
        check bool "every node timed" true
          (Option.is_none (find_node (fun n -> not (timed n)) r.Explain.tree)));
    test_case "a warm cache reads as cached" `Quick (fun () ->
        let ctx = Context.with_fresh_cache (C.context ()) in
        ignore (Query.run ctx (parse C.query1));
        let r = Query.explain ~analyze:true ctx (parse C.query1) in
        check bool "some node cached" true
          (Option.is_some
             (find_node
                (fun n -> n.Explain.timing = Explain.Cached)
                r.Explain.tree)));
    test_case "analyzed sql explain carries the script's plans" `Quick
      (fun () ->
        let ctx = C.context () in
        let r =
          Query.explain ~backend:Query.Sql_backend_choice ~analyze:true ctx
            (parse "man_woman until moving_train")
        in
        check string "backend" "sql" r.Explain.backend;
        check string "root" "sql.until" r.Explain.tree.Explain.label;
        check bool "script captured" true (r.Explain.sql_script <> []);
        check bool "a CREATE TABLE AS plan appears" true
          (List.exists
             (fun n ->
               Option.is_some
                 (find_node
                    (fun c ->
                      String.length c.Explain.label >= 4
                      && String.sub c.Explain.label 0 4 = "Scan")
                    n))
             r.Explain.sql_script));
    test_case "static sql explain has no script" `Quick (fun () ->
        let ctx = C.context () in
        let r =
          Query.explain ~backend:Query.Sql_backend_choice ctx
            (parse "man_woman until moving_train")
        in
        check bool "no script" true (r.Explain.sql_script = []));
    test_case "And-reorder explain records the join order" `Quick (fun () ->
        let rng = Workload.Rng.make 123 in
        let store =
          Workload.Movies.random_store rng ~videos:2 ~branching:6
            ~object_pool:8 ()
        in
        let ctx = Context.of_store ~reorder_joins:true store in
        (* conjuncts share the free x, so this is type (2): it goes
           through the table algorithms where And-reordering lives *)
        let f =
          parse
            "exists x . (present(x) and type(x) = \"train\" and eventually \
             present(x))"
        in
        let r = Query.explain ~analyze:true ctx f in
        match
          find_node (fun n -> n.Explain.label = "direct.and_reorder") r.Explain.tree
        with
        | None -> fail "no direct.and_reorder node"
        | Some n ->
            check int "three conjuncts" 3 (List.length n.Explain.children);
            check bool "join_order recorded" true
              (List.mem_assoc "join_order" n.Explain.attrs));
    test_case "explain rejects what run rejects" `Quick (fun () ->
        let ctx = C.context () in
        let general = Htl.Ast.Not (parse "man_woman") in
        (match Query.explain ctx general with
        | _ -> fail "explain accepted a general formula"
        | exception Query.Error msg ->
            check bool "message names the reason" true
              (String.length msg > 0));
        match Query.run ctx general with
        | _ -> fail "run accepted a general formula"
        | exception Query.Error _ -> ());
    test_case "query.run span and metrics record" `Quick (fun () ->
        let tr = Obs.Trace.create () and m = Obs.Metrics.create () in
        let ctx = Context.with_metrics (Context.with_tracer (C.context ()) tr) m in
        ignore (Query.run ctx (parse C.query1));
        check bool "query.run span recorded" true
          (List.exists
             (fun s -> s.Obs.Trace.name = "query.run")
             (Obs.Trace.spans tr));
        check int "query.count" 1 (Obs.Metrics.counter_value m "query.count");
        (match Obs.Metrics.find m "query.latency_s" with
        | Some (Obs.Metrics.Histogram h) ->
            check int "one latency sample" 1 h.Obs.Metrics.count
        | _ -> fail "query.latency_s missing");
        match Query.run ctx (Htl.Ast.Not (parse "man_woman")) with
        | _ -> fail "general formula accepted"
        | exception Query.Error _ ->
            check int "query.errors" 1
              (Obs.Metrics.counter_value m "query.errors"));
  ]

(* --- Json ------------------------------------------------------------------ *)

module J = Obs.Json

let json_tests =
  let open Alcotest in
  [
    test_case "escape covers RFC 8259 section 7" `Quick (fun () ->
        check string "short escape forms" {|a\"b\\c\nd\te\rf\bg\fh|}
          (J.escape "a\"b\\c\nd\te\rf\bg\x0ch");
        check string "other C0 controls as \\u00XX" {|\u0001\u001f|}
          (J.escape "\x01\x1f");
        (* bytes >= 0x20 pass through: UTF-8 survives unmangled *)
        check string "plain text untouched" "h\xc3\xa9llo" (J.escape "h\xc3\xa9llo"));
    test_case "to_string renders one line; non-finite floats are null" `Quick
      (fun () ->
        let doc =
          J.Obj
            [
              ("a", J.Array [ J.Int 1; J.Float 2.5; J.Bool false; J.Null ]);
              ("s", J.String "x\ny");
            ]
        in
        check string "compact form" {|{"a": [1, 2.5, false, null], "s": "x\ny"}|}
          (J.to_string doc);
        check string "nan/inf collapse to null" "[null, null]"
          (J.to_string (J.Array [ J.Float Float.nan; J.Float Float.infinity ])));
    test_case "of_string parses documents and rejects garbage" `Quick (fun () ->
        (match J.of_string {| {"k": [1, -2.5e1, "v", true, null]} |} with
        | Ok
            (J.Obj
              [
                ( "k",
                  J.Array
                    [ J.Int 1; J.Float f; J.String "v"; J.Bool true; J.Null ] );
              ]) ->
            check (float 1e-12) "float token" (-25.) f
        | Ok v -> failf "unexpected shape: %s" (J.to_string v)
        | Error e -> failf "parse error: %s" e);
        check bool "trailing garbage rejected" true
          (Result.is_error (J.of_string "{} x"));
        check bool "bare junk rejected" true (Result.is_error (J.of_string "nope"));
        check bool "unterminated string rejected" true
          (Result.is_error (J.of_string {|"abc|}));
        check bool "unescaped control char rejected" true
          (Result.is_error (J.of_string "\"a\nb\"")));
    test_case "\\uXXXX escapes decode to UTF-8" `Quick (fun () ->
        match J.of_string {|"\u00e9 \u2603 \ud83d\ude00 \/"|} with
        | Ok (J.String s) ->
            check string "two-, three- and four-byte code points"
              "\xc3\xa9 \xe2\x98\x83 \xf0\x9f\x98\x80 /" s
        | Ok v -> failf "expected a string, got %s" (J.to_string v)
        | Error e -> failf "parse error: %s" e);
    Helpers.qtest ~count:500 "strings round-trip through to_string/of_string"
      (fun s ->
        match J.of_string (J.to_string (J.String s)) with
        | Ok (J.String s') -> String.equal s' s
        | _ -> false)
      QCheck.string;
    Helpers.qtest ~count:300 "scalar records round-trip"
      (fun (i, f, s) ->
        let doc =
          J.Obj [ ("i", J.Int i); ("f", J.Float f); ("s", J.String s) ]
        in
        match J.of_string (J.to_string doc) with
        | Ok (J.Obj [ ("i", J.Int i'); ("f", f'); ("s", J.String s') ]) ->
            i' = i && String.equal s' s
            && (match f' with
               | J.Float g -> Float.equal g f
               | J.Int m -> Float.equal (float_of_int m) f
               | _ -> false)
        | _ -> false)
      QCheck.(triple int float string);
  ]

(* --- Export ---------------------------------------------------------------- *)

(* A fake clock stepping 1 s per read makes every exported timestamp a
   round number, so the Chrome-trace and summarize tests are exact
   goldens instead of tolerance games.  Restore the wall clock in a
   [Fun.protect]: a leaked fake source would corrupt every later
   timing. *)
let with_fake_clock f =
  let t = ref 0. in
  Obs.Clock.set_source (fun () ->
      let v = !t in
      t := v +. 1.;
      v);
  Fun.protect ~finally:Obs.Clock.use_wall_clock f

let export_tests =
  let open Alcotest in
  [
    test_case "prometheus exposition golden" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr m ~by:3 "cache.hits";
        Obs.Metrics.set_gauge m "pool.domains" 4.;
        (* one sample per region: a mid-range bucket, a small bucket,
           the overflow *)
        Obs.Metrics.observe m "query.latency_s" 0.5;
        Obs.Metrics.observe m "query.latency_s" 0.002;
        Obs.Metrics.observe m "query.latency_s" 5000.;
        let pf f =
          if Float.is_integer f then Printf.sprintf "%.0f" f
          else Printf.sprintf "%.9g" f
        in
        let b = Buffer.create 512 in
        Buffer.add_string b "# TYPE cache_hits counter\ncache_hits 3\n";
        Buffer.add_string b "# TYPE pool_domains gauge\npool_domains 4\n";
        Buffer.add_string b "# TYPE query_latency_s histogram\n";
        Array.iteri
          (fun i bound ->
            (* cumulative: 0.002 <= 3.16e-03 (index 7), 0.5 <= 1 (12) *)
            let cum = if i < 7 then 0 else if i < 12 then 1 else 2 in
            Printf.bprintf b "query_latency_s_bucket{le=\"%s\"} %d\n" (pf bound)
              cum)
          Obs.Metrics.bucket_bounds;
        Buffer.add_string b "query_latency_s_bucket{le=\"+Inf\"} 3\n";
        Printf.bprintf b "query_latency_s_sum %s\n" (pf (0.5 +. 0.002 +. 5000.));
        Buffer.add_string b "query_latency_s_count 3\n";
        check string "text format v0.0.4" (Buffer.contents b)
          (Obs.Export.prometheus m));
    test_case "chrome trace golden under a fake clock" `Quick (fun () ->
        with_fake_clock (fun () ->
            let tr = Obs.Trace.create () in
            Obs.Trace.with_span tr "outer" ~attrs:[ ("k", "v") ] (fun () ->
                Obs.Trace.with_span tr "inner" (fun () -> ()));
            check string "complete events, relative microseconds"
              ({|{"traceEvents": [{"name": "outer", "cat": "htl", "ph": "X", |}
              ^ {|"ts": 0.0, "dur": 3000000.0, "pid": 1, "tid": 1, "args": |}
              ^ {|{"k": "v", "span_id": 1, "parent": 0}}, {"name": "inner", |}
              ^ {|"cat": "htl", "ph": "X", "ts": 1000000.0, "dur": 1000000.0, |}
              ^ {|"pid": 1, "tid": 1, "args": {"span_id": 2, "parent": 1}}], |}
              ^ {|"displayTimeUnit": "ms"}|})
              (Obs.Export.chrome_trace tr)));
    test_case "an open span exports its elapsed time and an open arg" `Quick
      (fun () ->
        with_fake_clock (fun () ->
            let tr = Obs.Trace.create () in
            let s = Obs.Trace.start tr "solo" in
            check string "elapsed so far, flagged open"
              ({|{"traceEvents": [{"name": "solo", "cat": "htl", "ph": "X", |}
              ^ {|"ts": 0.0, "dur": 1000000.0, "pid": 1, "tid": 1, "args": |}
              ^ {|{"span_id": 1, "parent": 0, "open": "true"}}], |}
              ^ {|"displayTimeUnit": "ms"}|})
              (Obs.Export.chrome_trace tr);
            Obs.Trace.stop tr s));
    test_case "summarize counts open spans at elapsed time" `Quick (fun () ->
        with_fake_clock (fun () ->
            let tr = Obs.Trace.create () in
            let s = Obs.Trace.start tr "work" in
            (* start read t=0; summarize reads t=1 *)
            (match Obs.Trace.summarize tr with
            | [ row ] ->
                check (float 1e-9) "elapsed so far, not 0" 1. row.Obs.Trace.total_s;
                check int "marked open" 1 row.Obs.Trace.open_count
            | rows -> failf "expected 1 row, got %d" (List.length rows));
            let rendered = Format.asprintf "%a" Obs.Trace.pp_summary tr in
            check bool "summary table flags the approximation" true
              (Helpers.contains rendered "(1 open)");
            Obs.Trace.stop tr s;
            match Obs.Trace.summarize tr with
            | [ row ] ->
                check (float 1e-9) "closed span keeps its real duration" 3.
                  row.Obs.Trace.total_s;
                check int "no longer open" 0 row.Obs.Trace.open_count
            | rows -> failf "expected 1 row, got %d" (List.length rows)));
    test_case "spans_jsonl lines parse back to the recorded spans" `Quick
      (fun () ->
        let tr = Obs.Trace.create () in
        Obs.Trace.with_span tr "outer" (fun () ->
            Obs.Trace.with_span tr "inner" ~attrs:[ ("rows", "7") ] (fun () ->
                ()));
        let lines =
          List.filter
            (fun l -> l <> "")
            (String.split_on_char '\n' (Obs.Export.spans_jsonl tr))
        in
        check int "one line per span" 2 (List.length lines);
        List.iteri
          (fun i line ->
            match J.of_string line with
            | Ok doc ->
                check (option int) "id in start order" (Some (i + 1))
                  (Option.bind (J.member "id" doc) (function
                    | J.Int n -> Some n
                    | _ -> None));
                check bool "stop_s present (closed)" true
                  (match J.member "stop_s" doc with
                  | Some (J.Float _) -> true
                  | _ -> false)
            | Error e -> failf "line %d is not JSON: %s" i e)
          lines;
        check bool "attrs survive" true
          (Helpers.contains (Obs.Export.spans_jsonl tr) {|"rows": "7"|}));
  ]

(* --- Querylog --------------------------------------------------------------- *)

let ql_record ?(latency = 1.) ?(hits = 0) ?(misses = 0) ?error name =
  {
    Obs.Querylog.time_s = 0.;
    formula_id = 1;
    formula = name;
    backend = "direct";
    cls = "type1";
    latency_s = latency;
    cache_hits = hits;
    cache_misses = misses;
    segments_scanned = [];
    resources = Obs.Resource.zero;
    shards = [];
    trace_id = None;
    error;
  }

let querylog_tests =
  let open Alcotest in
  let names ql =
    List.map (fun r -> r.Obs.Querylog.formula) (Obs.Querylog.records ql)
  in
  [
    test_case "threshold gates what is recorded" `Quick (fun () ->
        let ql = Obs.Querylog.create ~threshold_s:0.5 () in
        check bool "below" false (Obs.Querylog.should_log ql ~latency_s:0.4);
        check bool "at" true (Obs.Querylog.should_log ql ~latency_s:0.5);
        Obs.Querylog.record ql (ql_record ~latency:0.1 "fast");
        Obs.Querylog.record ql (ql_record ~latency:0.9 "slow");
        check (list string) "only the slow one" [ "slow" ] (names ql);
        check int "logged counts accepted records" 1 (Obs.Querylog.logged ql));
    test_case "the ring overwrites the oldest record" `Quick (fun () ->
        let ql = Obs.Querylog.create ~capacity:2 ~threshold_s:0. () in
        List.iter
          (fun n -> Obs.Querylog.record ql (ql_record n))
          [ "a"; "b"; "c" ];
        check (list string) "oldest dropped, order kept" [ "b"; "c" ] (names ql);
        check int "length capped" 2 (Obs.Querylog.length ql);
        check int "logged keeps counting" 3 (Obs.Querylog.logged ql);
        Obs.Querylog.clear ql;
        check int "clear empties" 0 (Obs.Querylog.length ql);
        check int "clear resets logged" 0 (Obs.Querylog.logged ql));
    test_case "capacity below 1 is rejected" `Quick (fun () ->
        check_raises "invalid capacity"
          (Invalid_argument "Obs.Querylog.create: capacity 0 < 1") (fun () ->
            ignore (Obs.Querylog.create ~capacity:0 ~threshold_s:0. ())));
    test_case "hit_ratio" `Quick (fun () ->
        check (float 1e-9) "no probes" 0.
          (Obs.Querylog.hit_ratio (ql_record "q"));
        check (float 1e-9) "3 of 4" 0.75
          (Obs.Querylog.hit_ratio (ql_record ~hits:3 ~misses:1 "q")));
    test_case "to_jsonl parses back and carries the error field" `Quick
      (fun () ->
        let ql = Obs.Querylog.create ~threshold_s:0. () in
        Obs.Querylog.record ql (ql_record ~hits:1 ~misses:1 "ok");
        Obs.Querylog.record ql (ql_record ~error:"boom" "bad");
        let docs =
          List.map
            (fun l ->
              match J.of_string l with
              | Ok d -> d
              | Error e -> failf "not JSON: %s" e)
            (List.filter
               (fun l -> l <> "")
               (String.split_on_char '\n' (Obs.Querylog.to_jsonl ql)))
        in
        match docs with
        | [ ok; bad ] ->
            check (option string) "class" (Some "type1")
              (Option.bind (J.member "class" ok) (function
                | J.String s -> Some s
                | _ -> None));
            check (option (float 1e-9)) "hit ratio computed" (Some 0.5)
              (Option.bind (J.member "cache_hit_ratio" ok) J.to_float_opt);
            check bool "gc object present" true
              (Option.is_some
                 (Option.bind (J.member "gc" ok) (J.member "minor_words")));
            check bool "no error field on success" true
              (J.member "error" ok = None);
            check (option string) "error carried" (Some "boom")
              (Option.bind (J.member "error" bad) (function
                | J.String s -> Some s
                | _ -> None))
        | docs -> failf "expected 2 lines, got %d" (List.length docs));
    test_case "Query.run feeds the slow-query log" `Quick (fun () ->
        let ql = Obs.Querylog.create ~threshold_s:0. () in
        let ctx =
          Context.with_querylog
            (Context.with_metrics (C.context ()) (Obs.Metrics.create ()))
            ql
        in
        let f = parse C.query1 in
        ignore (Query.run ctx f);
        match Obs.Querylog.records ql with
        | [ r ] ->
            check string "backend" "direct" r.Obs.Querylog.backend;
            check int "hash-consed fingerprint" (Htl.Hcons.intern_id f)
              r.Obs.Querylog.formula_id;
            check bool "classified" true (r.Obs.Querylog.cls <> "unsupported");
            check bool "latency non-negative" true (r.Obs.Querylog.latency_s >= 0.);
            check (option string) "no error" None r.Obs.Querylog.error;
            List.iter
              (fun (k, v) ->
                check bool "scan delta keys carry the prefix" true
                  (String.starts_with ~prefix:"picture.segments_scanned" k);
                check bool "scan deltas positive" true (v > 0))
              r.Obs.Querylog.segments_scanned
        | rs -> failf "expected 1 record, got %d" (List.length rs));
    test_case "a high threshold logs nothing" `Quick (fun () ->
        let ql = Obs.Querylog.create ~threshold_s:1e9 () in
        let ctx = Context.with_querylog (C.context ()) ql in
        ignore (Query.run ctx (parse C.query1));
        check int "nothing crossed the bar" 0 (Obs.Querylog.length ql));
    test_case "failed queries land with their error and class" `Quick (fun () ->
        let ql = Obs.Querylog.create ~threshold_s:0. () in
        let ctx = Context.with_querylog (C.context ()) ql in
        (match Query.run ctx (Htl.Ast.Not (parse "man_woman")) with
        | _ -> fail "general formula accepted"
        | exception Query.Error _ -> ());
        match Obs.Querylog.records ql with
        | [ r ] ->
            check string "unclassifiable" "unsupported" r.Obs.Querylog.cls;
            check bool "error recorded" true (Option.is_some r.Obs.Querylog.error)
        | rs -> failf "expected 1 record, got %d" (List.length rs));
  ]

(* --- Resource ---------------------------------------------------------------- *)

let resource_tests =
  let open Alcotest in
  [
    test_case "measure sees the thunk's allocation" `Quick (fun () ->
        (* 1000 3-word list cells; Gc.minor_words reads the allocation
           pointer, so the delta is exact even with no minor GC between
           the samples (the quick_stat trap resource.ml documents) *)
        let r, d =
          Obs.Resource.measure (fun () ->
              Sys.opaque_identity (List.init 1000 (fun i -> i + 1)))
        in
        check int "thunk result threads through" 1000 (List.length r);
        check bool "at least the list cells" true
          (Obs.Resource.allocated_words d >= 3000.);
        check bool "collection counts never negative" true
          (d.Obs.Resource.minor_collections >= 0
          && d.Obs.Resource.major_collections >= 0));
    test_case "zero is zero" `Quick (fun () ->
        check (float 0.) "no allocation" 0.
          (Obs.Resource.allocated_words Obs.Resource.zero));
    test_case "to_attrs exposes the gc.* keys" `Quick (fun () ->
        check (list string) "stable key set"
          [
            "gc.minor_words";
            "gc.major_words";
            "gc.promoted_words";
            "gc.minor_collections";
            "gc.major_collections";
          ]
          (List.map fst (Obs.Resource.to_attrs Obs.Resource.zero)));
    test_case "explain analyze reports a GC delta" `Quick (fun () ->
        let report =
          Query.explain ~analyze:true (C.context ()) (parse C.query1)
        in
        match report.Explain.resources with
        | Some d ->
            check bool "an analyzed run allocates" true
              (Obs.Resource.allocated_words d > 0.)
        | None -> fail "analyzed report carries no resources");
    test_case "static explain reports none" `Quick (fun () ->
        let report = Query.explain (C.context ()) (parse C.query1) in
        check bool "no resources without analyze" true
          (report.Explain.resources = None));
  ]

(* --- Traceid ---------------------------------------------------------------- *)

let traceid_tests =
  let open Alcotest in
  let hex32 = "0123456789abcdef0123456789abcdef" in
  [
    test_case "generate mints valid, distinct ids" `Quick (fun () ->
        let a = Obs.Traceid.generate () and b = Obs.Traceid.generate () in
        check bool "a valid" true (Obs.Traceid.is_valid a);
        check bool "b valid" true (Obs.Traceid.is_valid b);
        check bool "distinct" true (a <> b);
        check int "span ids are 16 hex" 16
          (String.length (Obs.Traceid.span_id ())));
    test_case "of_string canonicalizes and rejects" `Quick (fun () ->
        check (option string) "lowercase passes" (Some hex32)
          (Obs.Traceid.of_string hex32);
        check (option string) "uppercase folds" (Some hex32)
          (Obs.Traceid.of_string (String.uppercase_ascii hex32));
        check (option string) "whitespace trimmed" (Some hex32)
          (Obs.Traceid.of_string ("  " ^ hex32 ^ " "));
        check (option string) "nil rejected" None
          (Obs.Traceid.of_string (String.make 32 '0'));
        check (option string) "short rejected" None
          (Obs.Traceid.of_string (String.sub hex32 0 31));
        check (option string) "non-hex rejected" None
          (Obs.Traceid.of_string (String.make 32 'g')));
    test_case "of_traceparent extracts the trace id" `Quick (fun () ->
        let tp = Printf.sprintf "00-%s-00f067aa0ba902b7-01" hex32 in
        check (option string) "well-formed" (Some hex32)
          (Obs.Traceid.of_traceparent tp);
        check (option string) "forbidden version ff" None
          (Obs.Traceid.of_traceparent
             (Printf.sprintf "ff-%s-00f067aa0ba902b7-01" hex32));
        check (option string) "nil trace id" None
          (Obs.Traceid.of_traceparent
             (Printf.sprintf "00-%s-00f067aa0ba902b7-01" (String.make 32 '0')));
        check (option string) "nil parent id" None
          (Obs.Traceid.of_traceparent
             (Printf.sprintf "00-%s-0000000000000000-01" hex32));
        check (option string) "garbage" None
          (Obs.Traceid.of_traceparent "not-a-traceparent"));
    test_case "to_traceparent round-trips through of_traceparent" `Quick
      (fun () ->
        let id = Obs.Traceid.generate () in
        check (option string) "round trip" (Some id)
          (Obs.Traceid.of_traceparent (Obs.Traceid.to_traceparent id));
        let tp = Obs.Traceid.to_traceparent ~parent:"00f067aa0ba902b7" id in
        check string "explicit parent embedded"
          (Printf.sprintf "00-%s-00f067aa0ba902b7-01" id)
          tp);
  ]

(* --- Stats ------------------------------------------------------------------- *)

(* nearest-rank convention matching bench/main.ml's [percentile] *)
let nearest_rank sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let arb_latencies =
  let open QCheck in
  let gen =
    Gen.(list_size (int_range 1 150) (map (fun x -> x /. 1000.) (float_range 0. 100.)))
  in
  make
    ~print:(fun l -> String.concat ";" (List.map (Printf.sprintf "%.6f") l))
    gen

let stats_tests =
  let open Alcotest in
  let record ?(fingerprint = 1) ?(backend = "direct") ?(error = false) st
      latency =
    Obs.Stats.record_query st ~fingerprint
      ~formula:(fun () -> "q")
      ~backend ~latency_s:latency ~error
  in
  [
    Helpers.qtest "EWMA matches the scalar fold" (fun samples ->
        let alpha = 0.2 in
        let st = Obs.Stats.create ~alpha () in
        List.iter (record st) samples;
        let oracle =
          List.fold_left
            (fun acc x ->
              match acc with
              | None -> Some x
              | Some prev -> Some ((alpha *. x) +. ((1. -. alpha) *. prev)))
            None samples
        in
        match (Obs.Stats.ewma_latency_s st ~fingerprint:1, oracle) with
        | Some got, Some want -> Float.abs (got -. want) <= 1e-9
        | _ -> false)
      arb_latencies;
    Helpers.qtest "window quantiles match nearest-rank over the tail"
      (fun samples ->
        let window = 16 in
        let st = Obs.Stats.create ~window () in
        List.iter (record st) samples;
        let tail =
          let n = List.length samples in
          if n <= window then samples
          else List.filteri (fun i _ -> i >= n - window) samples
        in
        let sorted = Array.of_list tail in
        Array.sort compare sorted;
        match Obs.Stats.queries st with
        | [ row ] ->
            row.Obs.Stats.window_n = Array.length sorted
            && Float.abs (row.Obs.Stats.p50_s -. nearest_rank sorted 0.50)
               <= 1e-9
            && Float.abs (row.Obs.Stats.p95_s -. nearest_rank sorted 0.95)
               <= 1e-9
            && Float.abs (row.Obs.Stats.p99_s -. nearest_rank sorted 0.99)
               <= 1e-9
        | _ -> false)
      arb_latencies;
    test_case "rows count requests, errors and backends" `Quick (fun () ->
        let st = Obs.Stats.create () in
        record st 0.01;
        record st ~error:true 0.03;
        record st ~fingerprint:2 ~backend:"sql" 0.02;
        record st 0.01;
        (match Obs.Stats.queries st with
        | [ a; b ] ->
            check int "most-requested first" 1 a.Obs.Stats.fingerprint;
            check int "count" 3 a.Obs.Stats.count;
            check int "errors" 1 a.Obs.Stats.errors;
            check int "sibling fingerprint" 2 b.Obs.Stats.fingerprint
        | rows -> failf "expected 2 query rows, got %d" (List.length rows));
        (match Obs.Stats.backends st with
        | [ d; s ] ->
            check string "sorted by name" "direct" d.Obs.Stats.backend;
            check int "direct requests" 3 d.Obs.Stats.requests;
            check int "direct errors" 1 d.Obs.Stats.backend_errors;
            check string "sql row" "sql" s.Obs.Stats.backend
        | rows -> failf "expected 2 backend rows, got %d" (List.length rows));
        check (option (float 1e-9)) "error_rate" (Some (1. /. 3.))
          (Obs.Stats.error_rate st ~backend:"direct");
        Obs.Stats.clear st;
        check int "clear empties" 0 (List.length (Obs.Stats.queries st)));
    test_case "the formula thunk is forced once per fingerprint" `Quick
      (fun () ->
        let st = Obs.Stats.create () in
        let forced = ref 0 in
        let formula () =
          incr forced;
          "expensive" in
        Obs.Stats.record_query st ~fingerprint:7 ~formula ~backend:"direct"
          ~latency_s:0.01 ~error:false;
        Obs.Stats.record_query st ~fingerprint:7 ~formula ~backend:"direct"
          ~latency_s:0.02 ~error:false;
        check int "forced once" 1 !forced;
        match Obs.Stats.queries st with
        | [ row ] -> check string "rendered" "expensive" row.Obs.Stats.formula
        | _ -> fail "expected 1 row");
    test_case "atom selectivity folds an EWMA of candidates/segments" `Quick
      (fun () ->
        let alpha = 0.5 in
        let st = Obs.Stats.create ~alpha () in
        Obs.Stats.record_atom st ~atom:"man" ~level:3 ~candidates:10
          ~segments:100;
        Obs.Stats.record_atom st ~atom:"man" ~level:3 ~candidates:30
          ~segments:100;
        (* seeds at 0.1, then 0.5·0.3 + 0.5·0.1 = 0.2 *)
        check (option (float 1e-9)) "ewma" (Some 0.2)
          (Obs.Stats.selectivity st ~level:3 ~atom:"man");
        check (option (float 1e-9)) "levels are distinct keys" None
          (Obs.Stats.selectivity st ~level:2 ~atom:"man");
        Obs.Stats.record_atom st ~atom:"man" ~level:3 ~candidates:1 ~segments:0;
        (match Obs.Stats.atoms st with
        | [ row ] ->
            check int "zero-segment eval is a no-op" 2 row.Obs.Stats.evals;
            check int "candidates accumulate" 40
              row.Obs.Stats.candidates_total;
            check int "segments accumulate" 200 row.Obs.Stats.segments_total
        | rows -> failf "expected 1 atom row, got %d" (List.length rows)));
    test_case "to_json carries all three families" `Quick (fun () ->
        let st = Obs.Stats.create () in
        record st 0.01;
        Obs.Stats.record_atom st ~atom:"man" ~level:1 ~candidates:1
          ~segments:2;
        let doc = Obs.Stats.to_json st in
        let arr name =
          match Obs.Json.member name doc with
          | Some (Obs.Json.Array items) -> List.length items
          | _ -> -1
        in
        check int "queries" 1 (arr "queries");
        check int "atoms" 1 (arr "atoms");
        check int "backends" 1 (arr "backends");
        check bool "alpha present" true
          (Obs.Json.member "alpha" doc <> None));
    test_case "invalid configuration is rejected" `Quick (fun () ->
        check_raises "alpha 0"
          (Invalid_argument "Obs.Stats.create: alpha 0 outside (0, 1]")
          (fun () -> ignore (Obs.Stats.create ~alpha:0. ()));
        check_raises "window 0"
          (Invalid_argument "Obs.Stats.create: window 0 < 1") (fun () ->
            ignore (Obs.Stats.create ~window:0 ())));
  ]

(* --- Tracestore -------------------------------------------------------------- *)

let ts_entry ?(trace_id = "cafe") ?(status = 200) ?spans () =
  let spans =
    match spans with
    | Some s -> s
    | None ->
        let tr = Obs.Trace.create () in
        Obs.Trace.with_span tr "server.request" (fun () -> ());
        Obs.Trace.spans tr
  in
  {
    Obs.Tracestore.trace_id;
    time_s = 0.;
    latency_s = 0.002;
    meth = "POST";
    target = "/query";
    status;
    spans;
  }

let tracestore_tests =
  let open Alcotest in
  [
    test_case "the ring overwrites oldest first" `Quick (fun () ->
        let ts = Obs.Tracestore.create ~capacity:2 () in
        List.iter
          (fun id -> Obs.Tracestore.add ts (ts_entry ~trace_id:id ()))
          [ "aa"; "bb"; "cc" ];
        check (list string) "oldest dropped, order kept" [ "bb"; "cc" ]
          (List.map
             (fun e -> e.Obs.Tracestore.trace_id)
             (Obs.Tracestore.entries ts));
        check int "length capped" 2 (Obs.Tracestore.length ts);
        check int "added keeps counting" 3 (Obs.Tracestore.added ts);
        Obs.Tracestore.clear ts;
        check int "clear empties" 0 (Obs.Tracestore.length ts));
    test_case "find answers the newest entry for an id" `Quick (fun () ->
        let ts = Obs.Tracestore.create () in
        Obs.Tracestore.add ts (ts_entry ~trace_id:"dd" ~status:200 ());
        Obs.Tracestore.add ts (ts_entry ~trace_id:"ee" ());
        Obs.Tracestore.add ts (ts_entry ~trace_id:"dd" ~status:500 ());
        (match Obs.Tracestore.find ts "dd" with
        | Some e -> check int "newest wins" 500 e.Obs.Tracestore.status
        | None -> fail "dd not found");
        check bool "absent id" true (Obs.Tracestore.find ts "zz" = None));
    test_case "summary_json reports everything but the spans" `Quick
      (fun () ->
        let doc = Obs.Tracestore.summary_json (ts_entry ~trace_id:"ff" ()) in
        check (option string) "trace_id" (Some "ff")
          (match Obs.Json.member "trace_id" doc with
          | Some (Obs.Json.String s) -> Some s
          | _ -> None);
        check bool "span count, not spans" true
          (Obs.Json.member "spans" doc = Some (Obs.Json.Int 1)));
    test_case "capacity below 1 is rejected" `Quick (fun () ->
        check_raises "invalid capacity"
          (Invalid_argument "Obs.Tracestore.create: capacity 0 < 1")
          (fun () -> ignore (Obs.Tracestore.create ~capacity:0 ())));
  ]

(* --- trace ids on tracers and exports ---------------------------------------- *)

let trace_id_tests =
  let open Alcotest in
  let id = "0123456789abcdef0123456789abcdef" in
  [
    test_case "a tracer carries its id into pp and summaries" `Quick
      (fun () ->
        let tr = Obs.Trace.create ~trace_id:id () in
        check (option string) "trace_id accessor" (Some id)
          (Obs.Trace.trace_id tr);
        Obs.Trace.with_span tr "work" (fun () -> ());
        let tree = Format.asprintf "%a" Obs.Trace.pp_tree tr in
        let summary = Format.asprintf "%a" Obs.Trace.pp_summary tr in
        check bool "pp_tree leads with the id" true
          (Helpers.contains tree ("trace " ^ id));
        check bool "pp_summary leads with the id" true
          (Helpers.contains summary ("trace " ^ id));
        let anon = Obs.Trace.create () in
        Obs.Trace.with_span anon "work" (fun () -> ());
        check bool "no id, no trace line" false
          (Helpers.contains
             (Format.asprintf "%a" Obs.Trace.pp_tree anon)
             "trace "));
    test_case "exports stamp the id on every span" `Quick (fun () ->
        let tr = Obs.Trace.create ~trace_id:id () in
        Obs.Trace.with_span tr "a" (fun () ->
            Obs.Trace.with_span tr "b" (fun () -> ()));
        let lines =
          String.split_on_char '\n' (String.trim (Obs.Export.spans_jsonl tr))
        in
        check int "one line per span" 2 (List.length lines);
        List.iter
          (fun line ->
            check bool "line carries trace_id" true
              (Helpers.contains line id))
          lines;
        let chrome = Obs.Export.chrome_trace tr in
        (match Obs.Json.of_string chrome with
        | Ok doc ->
            check bool "top-level trace_id" true
              (Obs.Json.member "trace_id" doc
              = Some (Obs.Json.String id))
        | Error e -> failf "chrome trace is not JSON: %s" e);
        check bool "set_trace_id retrofits" true
          (let tr2 = Obs.Trace.create () in
           Obs.Trace.set_trace_id tr2 id;
           Obs.Trace.trace_id tr2 = Some id));
  ]

let suites =
  [
    ("obs.json", json_tests);
    ("obs.trace", trace_tests);
    ("obs.traceid", traceid_tests);
    ("obs.metrics", metrics_tests);
    ("obs.export", export_tests);
    ("obs.querylog", querylog_tests);
    ("obs.stats", stats_tests);
    ("obs.tracestore", tracestore_tests);
    ("obs.trace_id", trace_id_tests);
    ("obs.resource", resource_tests);
    ("obs.topk", topk_tests);
    ("obs.explain", explain_tests);
  ]
