(* Tests for the query service (lib/server): the HTTP message layer in
   memory (parser corners, response goldens), the router's status codes
   and JSON wire format (qcheck round-trips), the pre-registered
   server.* metrics exposition, and a live server over real sockets —
   warm-context behaviour, concurrent-load differential against
   sequential in-process evaluation, protocol fault injection,
   admission control, per-request timeouts and graceful shutdown. *)

module Http = Htl_server.Http
module Router = Htl_server.Router
module Server = Htl_server.Server
module Client = Htl_server.Client
module Json = Obs.Json
module Context = Engine.Context
module Query = Engine.Query

(* --- in-memory readers ------------------------------------------------------ *)

let reader_of_string ?(chunk = max_int) s =
  let pos = ref 0 in
  Http.reader (fun buf off len ->
      let n = min (min len chunk) (String.length s - !pos) in
      Bytes.blit_string s !pos buf off n;
      pos := !pos + n;
      n)

(* yields [s], then raises Read_timeout forever *)
let stalling_reader s =
  let pos = ref 0 in
  Http.reader (fun buf off len ->
      let n = min len (String.length s - !pos) in
      if n = 0 then raise Http.Read_timeout;
      Bytes.blit_string s !pos buf off n;
      pos := !pos + n;
      n)

let req_error = function
  | Ok (r : Http.request) ->
      Alcotest.failf "expected an error, parsed %s %s" r.Http.meth
        r.Http.target
  | Error e -> e

let req_ok = function
  | Ok (r : Http.request) -> r
  | Error _ -> Alcotest.fail "expected a request"

let error_name = function
  | Http.Closed -> "closed"
  | Http.Timeout -> "timeout"
  | Http.Too_large what -> "too_large:" ^ what
  | Http.Bad _ -> "bad"

let check_error name expected r =
  Alcotest.(check string) name expected (error_name (req_error r))

(* --- the HTTP layer --------------------------------------------------------- *)

let http_parser_tests =
  let open Alcotest in
  [
    test_case "GET parses: line, headers, empty body" `Quick (fun () ->
        let r =
          req_ok
            (Http.read_request
               (reader_of_string
                  "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Weird:  padded  \r\n\r\n"))
        in
        check string "meth" "GET" r.Http.meth;
        check string "target" "/healthz" r.Http.target;
        check string "version" "HTTP/1.1" r.Http.version;
        check (option string) "host header" (Some "x") (Http.header r "Host");
        check (option string) "names lowercase, values trimmed"
          (Some "padded")
          (Http.header r "x-weird");
        check string "no body" "" r.Http.body);
    test_case "POST reads exactly content-length bytes" `Quick (fun () ->
        let r =
          req_ok
            (Http.read_request
               (reader_of_string
                  "POST /query HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}extra"))
        in
        check string "body" "{\"a\":1}" r.Http.body);
    test_case "one-byte reads parse identically" `Quick (fun () ->
        let raw = "POST /q HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc" in
        let r = req_ok (Http.read_request (reader_of_string ~chunk:1 raw)) in
        check string "meth" "POST" r.Http.meth;
        check string "body" "abc" r.Http.body);
    test_case "keep-alive: buffered second request survives the boundary"
      `Quick (fun () ->
        let raw =
          "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
        in
        let c = reader_of_string raw in
        let a = req_ok (Http.read_request c) in
        let b = req_ok (Http.read_request c) in
        check string "first" "/a" a.Http.target;
        check string "second" "/b" b.Http.target;
        check string "second's body" "hi" b.Http.body;
        check_error "then a clean end" "closed" (Http.read_request c));
    test_case "malformed request line / version / header / length" `Quick
      (fun () ->
        check_error "two tokens" "bad"
          (Http.read_request (reader_of_string "GET /\r\n\r\n"));
        check_error "bad version" "bad"
          (Http.read_request (reader_of_string "GET / HTTP/2.0\r\n\r\n"));
        check_error "header missing colon" "bad"
          (Http.read_request
             (reader_of_string "GET / HTTP/1.1\r\nnocolon\r\n\r\n"));
        check_error "negative content-length" "bad"
          (Http.read_request
             (reader_of_string
                "POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n"));
        check_error "transfer-encoding refused" "bad"
          (Http.read_request
             (reader_of_string
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")));
    test_case "truncation: EOF nowhere, mid-header, mid-body" `Quick
      (fun () ->
        check_error "nothing at all" "closed"
          (Http.read_request (reader_of_string ""));
        check_error "EOF inside the header block" "bad"
          (Http.read_request (reader_of_string "GET / HTTP/1.1\r\nHo"));
        check_error "EOF inside the body" "bad"
          (Http.read_request
             (reader_of_string
                "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")));
    test_case "limits: oversized header block and body" `Quick (fun () ->
        let limits =
          { Http.max_header_bytes = 64; Http.max_body_bytes = 8 }
        in
        check_error "long header" "too_large:header block"
          (Http.read_request ~limits
             (reader_of_string
                ("GET / HTTP/1.1\r\nX-Big: " ^ String.make 100 'x' ^ "\r\n\r\n")));
        check_error "declared body over the cap" "too_large:body"
          (Http.read_request ~limits
             (reader_of_string
                "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789")));
    test_case "transport timeout: idle is Closed, mid-request is Timeout"
      `Quick (fun () ->
        check_error "idle keep-alive" "closed"
          (Http.read_request (stalling_reader ""));
        check_error "stalled mid-request" "timeout"
          (Http.read_request (stalling_reader "GET / HT")));
    test_case "keep_alive defaults per version" `Quick (fun () ->
        let parse raw = req_ok (Http.read_request (reader_of_string raw)) in
        check bool "1.1 default on" true
          (Http.keep_alive (parse "GET / HTTP/1.1\r\n\r\n"));
        check bool "1.1 + close" false
          (Http.keep_alive (parse "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        check bool "1.0 default off" false
          (Http.keep_alive (parse "GET / HTTP/1.0\r\n\r\n"));
        check bool "1.0 + keep-alive" true
          (Http.keep_alive
             (parse "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")));
  ]

let http_writer_tests =
  let open Alcotest in
  [
    test_case "response golden, close" `Quick (fun () ->
        let r =
          Http.response
            ~headers:[ ("Content-Type", "application/json") ]
            ~status:200 "{}"
        in
        check string "rendering"
          "HTTP/1.1 200 OK\r\n\
           Content-Type: application/json\r\n\
           Content-Length: 2\r\n\
           Connection: close\r\n\
           \r\n\
           {}"
          (Http.to_string r));
    test_case "response golden, keep-alive, empty body" `Quick (fun () ->
        check string "rendering"
          "HTTP/1.1 429 Too Many Requests\r\n\
           Retry-After: 1\r\n\
           Content-Length: 0\r\n\
           Connection: keep-alive\r\n\
           \r\n"
          (Http.to_string ~keep_alive:true
             (Http.response ~headers:[ ("Retry-After", "1") ] ~status:429 "")));
    test_case "reason phrases" `Quick (fun () ->
        List.iter
          (fun (code, phrase) ->
            check string (string_of_int code) phrase (Http.reason_phrase code))
          [
            (200, "OK");
            (400, "Bad Request");
            (404, "Not Found");
            (408, "Request Timeout");
            (413, "Payload Too Large");
            (429, "Too Many Requests");
            (503, "Service Unavailable");
            (599, "Unknown");
          ]);
    test_case "read_response inverts to_string" `Quick (fun () ->
        let rendered =
          Http.to_string
            (Http.response
               ~headers:[ ("Content-Type", "text/plain") ]
               ~status:404 "nope")
        in
        match Http.read_response (reader_of_string rendered) with
        | Error msg -> Alcotest.fail msg
        | Ok (status, headers, body) ->
            check int "status" 404 status;
            check string "body" "nope" body;
            check (option string) "content-type" (Some "text/plain")
              (List.assoc_opt "content-type" headers));
  ]

(* --- wire-format round-trips ------------------------------------------------ *)

let arb_query_req =
  let gen =
    let open QCheck.Gen in
    let* q = string_size ~gen:printable (int_range 0 40) in
    let* level = opt (int_range 1 4) in
    let* k = int_range 0 50 in
    let* backend =
      oneofl [ Query.Direct_backend; Query.Sql_backend_choice ]
    in
    let* explain = bool in
    return { Router.q; level; k; backend; explain }
  in
  let print (r : Router.query_req) = Json.to_string (Router.query_req_to_json r) in
  QCheck.make ~print gen

let arb_results =
  let gen =
    let open QCheck.Gen in
    list_size (int_range 0 12)
      (let* id = int_range 1 1000 in
       let* max = float_bound_inclusive 20. in
       let* frac = float_bound_inclusive 1. in
       return (id, Simlist.Sim.make ~actual:(max *. frac) ~max))
  in
  let print rs = Json.to_string (Router.results_to_json rs) in
  QCheck.make ~print gen

let roundtrip_wire to_json of_json v =
  match Json.of_string (Json.to_string (to_json v)) with
  | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg
  | Ok json -> (
      match of_json json with
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg
      | Ok v' -> (v', true))

let wire_tests =
  [
    Helpers.qtest ~count:200 "query_req survives JSON and back"
      (fun r ->
        let r', ok = roundtrip_wire Router.query_req_to_json
            Router.query_req_of_json r
        in
        ok && r' = r)
      arb_query_req;
    Helpers.qtest ~count:200
      "results survive JSON and back bit-for-bit"
      (fun rs ->
        let rs', ok =
          roundtrip_wire Router.results_to_json Router.results_of_json rs
        in
        ok
        && List.length rs = List.length rs'
        && List.for_all2
             (fun (id, s) (id', s') ->
               id = id'
               && Simlist.Sim.actual s = Simlist.Sim.actual s'
               && Simlist.Sim.max_sim s = Simlist.Sim.max_sim s')
             rs rs')
      arb_results;
  ]

(* --- the router in memory --------------------------------------------------- *)

let fresh_state () = Router.make (Workload.Casablanca.context ())

let get target = { Http.meth = "GET"; target; version = "HTTP/1.1"; headers = []; body = "" }

let post target body =
  { Http.meth = "POST"; target; version = "HTTP/1.1"; headers = []; body }

let handle state req = (Router.handle state req : Http.response)

let check_status name expected (resp : Http.response) =
  Alcotest.(check int) name expected resp.Http.status;
  resp

let body_json name (resp : Http.response) =
  match Json.of_string resp.Http.body with
  | Ok j -> j
  | Error msg -> Alcotest.failf "%s: body is not JSON (%s)" name msg

let router_tests =
  let open Alcotest in
  [
    test_case "healthz / metrics / slowlog answer 200" `Quick (fun () ->
        let s = fresh_state () in
        ignore (check_status "healthz" 200 (handle s (get "/healthz")));
        let m = check_status "metrics" 200 (handle s (get "/metrics")) in
        check bool "exposition mentions server_requests" true
          (Astring.String.is_infix ~affix:"server_requests" m.Http.body);
        ignore (check_status "slowlog" 200 (handle s (get "/slowlog"))));
    test_case "unknown route 404, wrong method 405" `Quick (fun () ->
        let s = fresh_state () in
        ignore (check_status "404" 404 (handle s (get "/nope")));
        ignore (check_status "405" 405 (handle s (post "/metrics" "{}")));
        check int "both counted as 4xx" 2
          (Obs.Metrics.counter_value (Router.metrics s)
             "server.responses.4xx"));
    test_case "query: happy path carries class, count, ranked results" `Quick
      (fun () ->
        let s = fresh_state () in
        let resp =
          check_status "200" 200
            (handle s
               (post "/query"
                  "{\"query\": \"man_woman and eventually moving_train\", \
                   \"k\": 3}"))
        in
        let j = body_json "query" resp in
        check (option string) "class" (Some "type (1)")
          (match Json.member "class" j with
          | Some (Json.String c) -> Some c
          | _ -> None);
        match Json.member "results" j with
        | Some (Json.Array rs) -> check int "k capped the results" 3 (List.length rs)
        | _ -> Alcotest.fail "no results array");
    test_case "query: 400s say what is wrong" `Quick (fun () ->
        let s = fresh_state () in
        let bad body name =
          let resp = check_status name 400 (handle s (post "/query" body)) in
          match Json.member "error" (body_json name resp) with
          | Some (Json.String _) -> ()
          | _ -> Alcotest.failf "%s: no error field" name
        in
        bad "not json" "malformed JSON";
        bad "{}" "missing query";
        bad "{\"query\": \"man_woman and ((\"}" "syntax error";
        bad "{\"query\": \"man_woman\", \"backend\": \"mystery\"}"
          "unknown backend";
        bad "{\"query\": \"man_woman\", \"k\": -1}" "negative k";
        bad "{\"query\": \"man_woman\", \"level\": 1}"
          "level without a store";
        check bool "all counted as 4xx" true
          (Obs.Metrics.counter_value (Router.metrics s) "server.responses.4xx"
          >= 6));
    test_case "query: explain returns a plan" `Quick (fun () ->
        let s = fresh_state () in
        let resp =
          check_status "200" 200
            (handle s
               (post "/query"
                  "{\"query\": \"man_woman\", \"explain\": true}"))
        in
        match Json.member "plan" (body_json "explain" resp) with
        | Some (Json.String plan) ->
            check bool "plan mentions the backend" true
              (Astring.String.is_infix ~affix:"direct" plan)
        | _ -> Alcotest.fail "no plan field");
    test_case "query: level selects a store level" `Quick (fun () ->
        let s =
          Router.make (Context.of_store (Workload.Casablanca.store ()))
        in
        ignore
          (check_status "valid level" 200
             (handle s
                (post "/query" "{\"query\": \"man_woman\", \"level\": 1}")));
        ignore
          (check_status "out-of-range level" 400
             (handle s
                (post "/query" "{\"query\": \"man_woman\", \"level\": 9}"))));
    test_case "batch: per-query isolation, shared k" `Quick (fun () ->
        let s = fresh_state () in
        let resp =
          check_status "200" 200
            (handle s
               (post "/batch"
                  "{\"queries\": [\"man_woman\", \"broken ((\", \
                   \"moving_train\"], \"k\": 2}"))
        in
        match Json.member "results" (body_json "batch" resp) with
        | Some (Json.Array [ ok1; err; ok2 ]) ->
            check bool "slot 1 evaluated" true
              (Json.member "count" ok1 <> None);
            check bool "slot 2 is an isolated error" true
              (Json.member "error" err <> None);
            check bool "slot 3 evaluated" true
              (Json.member "count" ok2 <> None)
        | _ -> Alcotest.fail "expected exactly three slots");
    test_case "batch: malformed envelope 400" `Quick (fun () ->
        let s = fresh_state () in
        ignore
          (check_status "no queries field" 400 (handle s (post "/batch" "{}")));
        ignore
          (check_status "non-string entry" 400
             (handle s (post "/batch" "{\"queries\": [42]}"))));
    test_case "requests and latency are counted" `Quick (fun () ->
        let s = fresh_state () in
        ignore (handle s (get "/healthz"));
        ignore (handle s (get "/nope"));
        check int "server.requests" 2
          (Obs.Metrics.counter_value (Router.metrics s) "server.requests");
        match Obs.Metrics.find (Router.metrics s) "server.request_latency_s" with
        | Some (Obs.Metrics.Histogram h) ->
            check int "latency samples" 2 h.Obs.Metrics.count
        | _ -> Alcotest.fail "no latency histogram");
  ]

(* --- ingestion over the wire ------------------------------------------------ *)

module Sharded = Htl_shard.Sharded

(* one leaf carrying a uniquely-typed object, findable by query *)
let zebra_segment =
  "{\"attrs\": {\"mood\": \"tense\"}, \"objects\": [{\"id\": 9, \"type\": \
   \"zebra\", \"attrs\": {\"speed\": 30}}], \"relationships\": [{\"name\": \
   \"holds\", \"args\": [9, 9]}]}"

let zebra_query =
  "{\"query\": \"exists z . (present(z) and type(z) = \\\"zebra\\\")\"}"

let int_field name field j =
  match Json.member field j with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "%s: no integer %S field" name field

(* the ranked global ids of a /query response *)
let result_ids name (resp : Http.response) =
  match Json.member "results" (body_json name resp) with
  | Some rj -> (
      match Router.results_of_json rj with
      | Ok rs -> List.map fst rs
      | Error msg -> Alcotest.failf "%s: bad results (%s)" name msg)
  | None -> Alcotest.failf "%s: no results array" name

let ingest_tests =
  let open Alcotest in
  [
    test_case "ingest: the very next query sees the new leaf" `Quick (fun () ->
        let store = Workload.Casablanca.store () in
        let s = Router.make (Context.of_store store) in
        let leaf = Video_model.Store.levels store in
        let before = Video_model.Store.count_at store ~level:leaf in
        let r0 =
          check_status "cold query" 200 (handle s (post "/query" zebra_query))
        in
        check bool "the future id is not ranked yet" false
          (List.mem (before + 1) (result_ids "before" r0));
        let resp =
          check_status "ingest 200" 200
            (handle s
               (post "/ingest"
                  (Printf.sprintf "{\"segments\": [%s]}" zebra_segment)))
        in
        let j = body_json "ingest" resp in
        check int "appended" 1 (int_field "ingest" "appended" j);
        check int "leaf_count" (before + 1) (int_field "ingest" "leaf_count" j);
        check int "version" 1 (int_field "ingest" "version" j);
        check int "server.ingested counted" 1
          (Obs.Metrics.counter_value (Router.metrics s) "server.ingested");
        let r1 =
          check_status "warm query" 200 (handle s (post "/query" zebra_query))
        in
        check bool "the appended segment is ranked" true
          (List.mem (before + 1) (result_ids "after" r1)));
    test_case "ingest: 400s say what is wrong" `Quick (fun () ->
        let s = Router.make (Context.of_store (Workload.Casablanca.store ())) in
        let bad body name =
          let resp = check_status name 400 (handle s (post "/ingest" body)) in
          match Json.member "error" (body_json name resp) with
          | Some (Json.String _) -> ()
          | _ -> Alcotest.failf "%s: no error field" name
        in
        bad "not json" "malformed JSON";
        bad "{}" "missing segments";
        bad "{\"segments\": []}" "empty segments";
        bad "{\"segments\": 42}" "segments not an array";
        bad "{\"segments\": [{\"objects\": [{\"type\": \"zebra\"}]}]}"
          "object without id";
        bad "{\"segments\": [{\"attrs\": {\"mood\": [1]}}]}"
          "attr value not scalar";
        bad
          (Printf.sprintf "{\"segments\": [%s], \"video\": 7}" zebra_segment)
          "not the last video";
        check int "nothing was ingested" 0
          (Obs.Metrics.counter_value (Router.metrics s) "server.ingested"));
    test_case "ingest: storeless contexts refuse, GET is 405" `Quick (fun () ->
        let s = fresh_state () in
        ignore
          (check_status "tables cannot grow" 400
             (handle s
                (post "/ingest"
                   (Printf.sprintf "{\"segments\": [%s]}" zebra_segment))));
        ignore (check_status "405" 405 (handle s (get "/ingest"))));
    test_case "ingest: sharded appends route and stay visible" `Quick (fun () ->
        let store =
          Workload.Movies.random_store (Workload.Rng.make 11) ~videos:2
            ~branching:3 ~object_pool:4 ()
        in
        let sh = Sharded.create ~shards:2 store in
        let s = Router.make ~sharded:sh (Context.of_store store) in
        let before = Sharded.count_at sh ~level:(Sharded.levels sh) in
        let resp =
          check_status "ingest 200" 200
            (handle s
               (post "/ingest"
                  (Printf.sprintf "{\"segments\": [%s, %s]}" zebra_segment
                     zebra_segment)))
        in
        let j = body_json "ingest" resp in
        check int "appended" 2 (int_field "ingest" "appended" j);
        check int "leaf_count" (before + 2) (int_field "ingest" "leaf_count" j);
        check bool "no single-store version in sharded mode" true
          (Json.member "version" j = None);
        ignore
          (check_status "out-of-range video" 400
             (handle s
                (post "/ingest"
                   (Printf.sprintf "{\"segments\": [%s], \"video\": 9}"
                      zebra_segment))));
        let r =
          check_status "query" 200 (handle s (post "/query" zebra_query))
        in
        let ids = result_ids "query" r in
        check bool "scatter-gather ranks the appended leaves" true
          (List.mem (before + 1) ids && List.mem (before + 2) ids));
  ]

(* --- pre-registered exposition ---------------------------------------------- *)

let exposition_tests =
  let open Alcotest in
  [
    test_case "every server.* series is visible before any traffic" `Quick
      (fun () ->
        Obs.Clock.set_source (fun () -> 1000.);
        Fun.protect ~finally:Obs.Clock.use_wall_clock (fun () ->
            let s = fresh_state () in
            let exposition = Obs.Export.prometheus (Router.metrics s) in
            List.iter
              (fun line ->
                check bool line true
                  (Astring.String.is_infix ~affix:line exposition))
              [
                "server_connections 0";
                "server_requests 0";
                "server_responses_2xx 0";
                "server_responses_4xx 0";
                "server_responses_5xx 0";
                "server_rejected 0";
                "server_timeouts 0";
                "server_bad_requests 0";
                "server_traced 0";
                "server_queue_depth 0";
                "server_active_requests 0";
                "server_request_latency_s_count 0";
                "server_queue_wait_s_count 0";
                (* PR 4's lesson, carried over: the cache series are
                   pre-registered by with_metrics *)
                "cache_hits 0";
                "cache_misses 0";
              ]));
    test_case "declare is idempotent and kind-checked" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Router.preregister m;
        Router.preregister m;
        check int "still zero" 0
          (Obs.Metrics.counter_value m "server.requests");
        Obs.Metrics.incr m "server.requests";
        Router.preregister m;
        check int "declare never resets" 1
          (Obs.Metrics.counter_value m "server.requests");
        check_raises "histogram name cannot become a counter"
          (Invalid_argument
             "Obs.Metrics: \"server.request_latency_s\" already registered \
              with another kind")
          (fun () -> Obs.Metrics.declare_counter m "server.request_latency_s"));
  ]

(* --- request-scoped tracing and /stats --------------------------------------- *)

let resp_trace_id (resp : Http.response) =
  List.assoc_opt "X-Trace-Id" resp.Http.headers

let with_header name value (req : Http.request) =
  { req with Http.headers = (name, value) :: req.Http.headers }

let known_id = "4bf92f3577b34da6a3ce929d0e0e4736"

let tracing_tests =
  let open Alcotest in
  [
    test_case "every response carries a trace id" `Quick (fun () ->
        let s = fresh_state () in
        (* minted when the client sends none *)
        (match resp_trace_id (handle s (get "/healthz")) with
        | Some id -> check bool "minted id is valid" true (Obs.Traceid.is_valid id)
        | None -> fail "no X-Trace-Id header");
        (* a well-formed client id is echoed *)
        check (option string) "bare X-Trace-Id echoed" (Some known_id)
          (resp_trace_id
             (handle s (with_header "x-trace-id" known_id (get "/healthz"))));
        check (option string) "traceparent accepted" (Some known_id)
          (resp_trace_id
             (handle s
                (with_header "traceparent"
                   ("00-" ^ known_id ^ "-00f067aa0ba902b7-01")
                   (get "/healthz"))));
        (* malformed ids are replaced, never a request failure *)
        match
          resp_trace_id
            (handle s (with_header "x-trace-id" "not-hex!" (get "/healthz")))
        with
        | Some id ->
            check bool "replaced with a fresh valid id" true
              (Obs.Traceid.is_valid id && id <> "not-hex!")
        | None -> fail "no X-Trace-Id header");
    test_case "a sampled query's span tree round-trips at /trace/<id>" `Quick
      (fun () ->
        let s =
          Router.make ~trace_sample:1 (Workload.Casablanca.context ())
        in
        let resp =
          check_status "query" 200
            (handle s (post "/query" "{\"query\": \"man_woman\", \"k\": 2}"))
        in
        let id =
          match resp_trace_id resp with
          | Some id -> id
          | None -> fail "no X-Trace-Id on the query response"
        in
        (* the listing names it *)
        let listing =
          body_json "trace list"
            (check_status "trace list" 200 (handle s (get "/trace")))
        in
        (match listing with
        | Json.Array rows ->
            check bool "listed" true
              (List.exists
                 (fun row ->
                   Json.member "trace_id" row = Some (Json.String id))
                 rows)
        | _ -> fail "/trace is not an array");
        (* and the full tree renders as Chrome trace-event JSON *)
        let doc =
          body_json "chrome trace"
            (check_status "trace get" 200 (handle s (get ("/trace/" ^ id))))
        in
        check bool "top-level trace_id" true
          (Json.member "trace_id" doc = Some (Json.String id));
        (match Json.member "traceEvents" doc with
        | Some (Json.Array (_ :: _ as events)) ->
            let names =
              List.filter_map
                (fun e ->
                  match Json.member "name" e with
                  | Some (Json.String n) -> Some n
                  | _ -> None)
                events
            in
            check bool "root server.request span present" true
              (List.mem "server.request" names)
        | _ -> fail "no traceEvents");
        ignore
          (check_status "unknown id is 404" 404
             (handle s (get ("/trace/" ^ String.make 31 'a' ^ "b"))));
        ignore
          (check_status "invalid id is 400" 400
             (handle s (get "/trace/xyz"))));
    test_case "unsampled requests leave no trace" `Quick (fun () ->
        let s = fresh_state () in
        ignore (handle s (post "/query" "{\"query\": \"man_woman\"}"));
        check int "ring stays empty" 0
          (Obs.Tracestore.length (Router.tracestore s));
        check int "nothing counted" 0
          (Obs.Metrics.counter_value (Router.metrics s) "server.traced"));
    test_case "1-in-N sampling keeps every Nth request" `Quick (fun () ->
        let s =
          Router.make ~trace_sample:2 (Workload.Casablanca.context ())
        in
        for _ = 1 to 6 do
          ignore (handle s (post "/query" "{\"query\": \"man_woman\"}"))
        done;
        check int "half the requests retained" 3
          (Obs.Tracestore.length (Router.tracestore s)));
    test_case "the slow threshold retains retroactively" `Quick (fun () ->
        (* slow_s = 0: every request is slower than the threshold *)
        let s =
          Router.make ~trace_slow_s:0. (Workload.Casablanca.context ())
        in
        ignore (handle s (post "/query" "{\"query\": \"man_woman\"}"));
        check int "kept" 1 (Obs.Tracestore.length (Router.tracestore s));
        (* a threshold nothing reaches: traced but dropped *)
        let s =
          Router.make ~trace_slow_s:1000. (Workload.Casablanca.context ())
        in
        ignore (handle s (post "/query" "{\"query\": \"man_woman\"}"));
        check int "dropped" 0 (Obs.Tracestore.length (Router.tracestore s)));
    test_case "sampled and unsampled responses are byte-identical" `Quick
      (fun () ->
        let body = "{\"query\": \"man_woman and eventually moving_train\"}" in
        let plain = fresh_state () in
        let traced =
          Router.make ~trace_sample:1 (Workload.Casablanca.context ())
        in
        check string "same body"
          (handle plain (post "/query" body)).Http.body
          (handle traced (post "/query" body)).Http.body);
    test_case "/stats aggregates every request, consistent with the querylog"
      `Quick (fun () ->
        let querylog = Obs.Querylog.create ~threshold_s:0. () in
        let s =
          (* store-backed, so the picture layer runs and atom
             selectivities actually accumulate *)
          Router.make ~querylog (Context.of_store (Workload.Casablanca.store ()))
        in
        let q1 = "{\"query\": \"man_woman\"}" in
        let q2 = "{\"query\": \"gun until man_woman\"}" in
        ignore (check_status "q1" 200 (handle s (post "/query" q1)));
        ignore (check_status "q1 again" 200 (handle s (post "/query" q1)));
        ignore (check_status "q2" 200 (handle s (post "/query" q2)));
        (* a parse failure never reaches the evaluator, so neither ring
           nor collector should count it *)
        ignore (check_status "syntax error" 400 (handle s (post "/query" "{\"query\": \"((\"}")));
        let rows = Obs.Stats.queries (Router.stats s) in
        check int "two fingerprints" 2 (List.length rows);
        check int "stats total = querylog total"
          (Obs.Querylog.logged querylog)
          (List.fold_left (fun acc r -> acc + r.Obs.Stats.count) 0 rows);
        (match rows with
        | top :: _ ->
            check int "most-requested first" 2 top.Obs.Stats.count;
            check bool "ewma positive" true (top.Obs.Stats.ewma_latency_s > 0.)
        | [] -> fail "no stats rows");
        (match Obs.Stats.backends (Router.stats s) with
        | [ b ] ->
            check string "backend" "direct" b.Obs.Stats.backend;
            check int "three evaluated requests" 3 b.Obs.Stats.requests
        | rows -> failf "expected 1 backend row, got %d" (List.length rows));
        (* atom selectivities accumulated from the picture layer *)
        check bool "atoms observed" true
          (Obs.Stats.atoms (Router.stats s) <> []);
        (* and the route serves the same document *)
        let doc =
          body_json "stats"
            (check_status "stats" 200 (handle s (get "/stats")))
        in
        match Json.member "queries" doc with
        | Some (Json.Array rows') ->
            check int "route row count" (List.length rows) (List.length rows')
        | _ -> fail "/stats has no queries array");
    test_case "trace ids land on slow-query records" `Quick (fun () ->
        let querylog = Obs.Querylog.create ~threshold_s:0. () in
        let s = Router.make ~querylog (Workload.Casablanca.context ()) in
        ignore
          (handle s
             (with_header "x-trace-id" known_id
                (post "/query" "{\"query\": \"man_woman\"}")));
        match Obs.Querylog.records querylog with
        | [ r ] ->
            check (option string) "record joins by id" (Some known_id)
              r.Obs.Querylog.trace_id;
            check bool "jsonl carries it" true
              (Astring.String.is_infix ~affix:known_id
                 (Obs.Querylog.to_jsonl querylog))
        | rs -> failf "expected 1 record, got %d" (List.length rs));
  ]

(* --- live servers ------------------------------------------------------------ *)

let test_config =
  {
    Server.default_config with
    Server.workers = 2;
    queue_capacity = 16;
    request_timeout_s = 30.;
    io_timeout_s = 5.;
  }

let with_server ?(config = test_config) state f =
  let server = Server.start ~config state in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.wait server)
    (fun () -> f (Server.port server))

let must = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "client error: %s" msg

let post_query ~port body =
  must
    (Client.request ~host:"127.0.0.1" ~port ~meth:"POST" ~target:"/query"
       ~body ())

let get_path ~port target =
  must (Client.request ~host:"127.0.0.1" ~port ~meth:"GET" ~target ())

let metric_value exposition name =
  (* the exposition is "name value" lines; histogram series have
     suffixed names, so match the exact line *)
  String.split_on_char '\n' exposition
  |> List.find_map (fun line ->
         match String.split_on_char ' ' line with
         | [ n; v ] when n = name -> int_of_string_opt v
         | _ -> None)

let warm_context_test () =
  (* the acceptance bar: a warm server builds the picture index once and
     answers the second identical query from the cache *)
  let state = Router.make (Context.of_store (Workload.Casablanca.store ())) in
  with_server state (fun port ->
      let q = "{\"query\": \"man_woman and eventually moving_train\"}" in
      let s1, _, b1 = post_query ~port q in
      let s2, _, b2 = post_query ~port q in
      Alcotest.(check int) "first answers" 200 s1;
      Alcotest.(check int) "second answers" 200 s2;
      Alcotest.(check string) "identical responses" b1 b2;
      let _, _, exposition = get_path ~port "/metrics" in
      Alcotest.(check (option int))
        "the index was built exactly once" (Some 1)
        (metric_value exposition "picture_index_builds");
      (* exactly the two query responses — counted once each, not once
         in the router and again at the socket (the scrape's own 2xx is
         counted after its exposition renders) *)
      Alcotest.(check (option int))
        "2xx responses counted once per response" (Some 2)
        (metric_value exposition "server_responses_2xx");
      match metric_value exposition "cache_hits" with
      | Some hits when hits > 0 -> ()
      | v ->
          Alcotest.failf "expected warm cache hits, exposition says %s"
            (match v with Some n -> string_of_int n | None -> "(absent)"))

(* --- concurrent-load differential -------------------------------------------

   N client threads fire the differential strata at a live server; every
   response must be byte-identical to what a sequential in-process
   evaluation of the same request produces.  Cache warmth may differ
   (the server's context is shared and warm, the reference is cold) —
   the protocol makes that invisible, which is exactly the claim. *)

let sample_stratum gen ~count rand =
  QCheck.Gen.generate ~n:(count * 4) ~rand (gen ~depth:2)
  |> List.filter (fun f ->
         Result.is_ok (Htl.Classify.check f)
         &&
         (* the wire carries text: only formulas whose pretty form
            re-parses can round-trip through the server *)
         match Htl.Parser.formula_of_string_opt (Htl.Pretty.to_string f) with
         | Ok f' -> Htl.Ast.equal f f'
         | Error _ -> false)
  |> List.filteri (fun i _ -> i < count)

let differential_queries () =
  let rand = Random.State.make [| 20260805 |] in
  List.concat_map
    (fun gen -> sample_stratum gen ~count:6 rand)
    [
      Helpers.gen_type1_formula;
      Helpers.gen_type2_formula;
      Helpers.gen_conjunctive_formula;
      Helpers.gen_closed_formula;
    ]
  |> List.map (fun f ->
         Json.to_string
           (Json.Obj
              [
                ("query", Json.String (Htl.Pretty.to_string f));
                ("k", Json.Int 5);
              ]))

let concurrent_differential ?(trace_sample = 0) ~domains () =
  let store = Workload.Casablanca.store () in
  let queries = differential_queries () in
  Alcotest.(check bool) "sampled a real workload" true (List.length queries > 12);
  (* sequential in-process reference over its own cold context — and no
     sampling, so a traced server must answer byte-identically to an
     untraced oracle *)
  let reference = Router.make (Context.of_store store) in
  let expected =
    List.map
      (fun body -> (Router.handle reference (post "/query" body)).Http.body)
      queries
  in
  let pool =
    if domains > 0 then Some (Parallel.Pool.create ~domains ()) else None
  in
  let ctx = Context.of_store store in
  let ctx =
    match pool with Some p -> Context.with_pool ~par_cutoff:0 ctx p | None -> ctx
  in
  let state = Router.make ~trace_sample ctx in
  Fun.protect
    ~finally:(fun () -> Option.iter Parallel.Pool.shutdown pool)
    (fun () ->
      with_server state (fun port ->
          let failures = ref [] in
          let failures_mutex = Mutex.create () in
          let client_thread offset =
            (* each client walks all queries, starting at its own offset,
               over one keep-alive connection *)
            let conn = Client.connect ~host:"127.0.0.1" ~port () in
            Fun.protect
              ~finally:(fun () -> Client.close conn)
              (fun () ->
                let n = List.length queries in
                List.iteri
                  (fun i () ->
                    let idx = (i + offset) mod n in
                    let body = List.nth queries idx in
                    let want = List.nth expected idx in
                    match
                      Client.roundtrip conn ~meth:"POST" ~target:"/query"
                        ~body ()
                    with
                    | Ok (200, _, got) when String.equal got want -> ()
                    | Ok (status, _, got) ->
                        Mutex.protect failures_mutex (fun () ->
                            failures :=
                              Printf.sprintf
                                "query %d: status %d, got %s, want %s" idx
                                status got want
                              :: !failures)
                    | Error msg ->
                        Mutex.protect failures_mutex (fun () ->
                            failures :=
                              Printf.sprintf "query %d: %s" idx msg
                              :: !failures))
                  (List.map (fun _ -> ()) queries))
          in
          let clients =
            List.init 4 (fun i -> Thread.create client_thread (i * 7))
          in
          List.iter Thread.join clients;
          (match !failures with
          | [] -> ()
          | f :: _ ->
              Alcotest.failf "%d divergent responses; first: %s"
                (List.length !failures) f);
          if trace_sample > 0 then begin
            (* the traced arm must actually have traced: 4 clients ×
               |queries| requests, 1 in [trace_sample] retained or
               overwritten in the bounded ring *)
            let added = Obs.Tracestore.added (Router.tracestore state) in
            let requests = 4 * List.length queries in
            Alcotest.(check int)
              "every sampled request left a trace"
              ((requests + trace_sample - 1) / trace_sample)
              added
          end))

(* --- fault injection ---------------------------------------------------------

   Broken clients must get the right status code, and the shared context
   must stay fully usable afterwards — no stuck mutex, no leaked span,
   /healthz green throughout. *)

let raw_socket port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let read_status fd =
  let buf = Bytes.create 4096 in
  let b = Buffer.create 256 in
  let rec drain () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b buf 0 n;
        drain ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  drain ();
  let s = Buffer.contents b in
  match String.split_on_char ' ' s with
  | _ :: code :: _ -> int_of_string_opt (String.sub code 0 3)
  | _ -> None

let send_raw fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let check_health ~port name =
  let status, _, body = get_path ~port "/healthz" in
  Alcotest.(check int) (name ^ ": healthz status") 200 status;
  Alcotest.(check string) (name ^ ": healthz body") "ok\n" body

let fault_injection_test () =
  let state = fresh_state () in
  let config = { test_config with Server.io_timeout_s = 1. } in
  with_server ~config state (fun port ->
      (* truncated body: declared 100 bytes, sent 2, then EOF *)
      let fd = raw_socket port in
      send_raw fd "POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\n{}";
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      Alcotest.(check (option int)) "truncated body" (Some 400) (read_status fd);
      Unix.close fd;
      check_health ~port "after truncation";
      (* stalled mid-request: bytes then silence -> 408 within io_timeout *)
      let fd = raw_socket port in
      send_raw fd "POST /query HTTP/1.1\r\nContent-Le";
      Alcotest.(check (option int)) "stalled request" (Some 408)
        (read_status fd);
      Unix.close fd;
      check_health ~port "after stall";
      (* oversized payload *)
      let fd = raw_socket port in
      send_raw fd "POST /query HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
      Alcotest.(check (option int)) "oversized body" (Some 413)
        (read_status fd);
      Unix.close fd;
      check_health ~port "after oversize";
      (* mid-request disconnect: close without reading the response *)
      let fd = raw_socket port in
      send_raw fd "POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
      Unix.close fd;
      check_health ~port "after disconnect";
      (* malformed JSON and unknown routes through the well-behaved client *)
      let status, _, _ = post_query ~port "not json" in
      Alcotest.(check int) "malformed JSON" 400 status;
      let status, _, _ = get_path ~port "/no/such/route" in
      Alcotest.(check int) "unknown route" 404 status;
      (* the context still evaluates queries *)
      let status, _, _ = post_query ~port "{\"query\": \"man_woman\"}" in
      Alcotest.(check int) "query after the abuse" 200 status;
      let _, _, exposition = get_path ~port "/metrics" in
      match metric_value exposition "server_bad_requests" with
      | Some n when n >= 3 -> ()
      | v ->
          Alcotest.failf "bad requests under-counted: %s"
            (match v with Some n -> string_of_int n | None -> "(absent)"))

let admission_control_test () =
  let state = fresh_state () in
  let config =
    {
      test_config with
      Server.workers = 1;
      queue_capacity = 1;
      io_timeout_s = 5.;
    }
  in
  with_server ~config state (fun port ->
      (* occupy the only worker with a half-sent request... *)
      let busy = raw_socket port in
      send_raw busy "POST /query HTTP/1.1\r\nContent-Le";
      Thread.delay 0.2;
      (* ...fill the queue of one... *)
      let queued = raw_socket port in
      send_raw queued "GET /healthz HTTP/1.1\r\n";
      Thread.delay 0.2;
      (* ...and the next connection must be turned away *)
      let rejected = raw_socket port in
      let buf = Bytes.create 1024 in
      let n = Unix.read rejected buf 0 1024 in
      let head = Bytes.sub_string buf 0 n in
      Alcotest.(check bool) "429 status line" true
        (Astring.String.is_prefix ~affix:"HTTP/1.1 429" head);
      Alcotest.(check bool) "retry-after advertised" true
        (Astring.String.is_infix ~affix:"Retry-After: 1" head);
      Unix.close rejected;
      Unix.close busy;
      Unix.close queued;
      (* capacity frees up once the stuck request times out *)
      Thread.delay 0.3;
      check_health ~port "after saturation";
      let _, _, exposition = get_path ~port "/metrics" in
      Alcotest.(check (option int)) "rejection counted" (Some 1)
        (metric_value exposition "server_rejected"))

let request_timeout_test () =
  let state = fresh_state () in
  let config = { test_config with Server.request_timeout_s = 0. } in
  with_server ~config state (fun port ->
      let status, _, body = post_query ~port "{\"query\": \"man_woman\"}" in
      Alcotest.(check int) "query deadline already passed" 503 status;
      Alcotest.(check bool) "error body" true
        (Astring.String.is_infix ~affix:"timed out" body);
      (* light routes carry no deadline *)
      check_health ~port "healthz unaffected";
      let _, _, exposition = get_path ~port "/metrics" in
      match metric_value exposition "server_timeouts" with
      | Some n when n >= 1 -> ()
      | _ -> Alcotest.fail "timeout not counted")

let graceful_shutdown_test () =
  let state = fresh_state () in
  let server = Server.start ~config:test_config state in
  let port = Server.port server in
  let status, _, _ = get_path ~port "/healthz" in
  Alcotest.(check int) "serves before stop" 200 status;
  Server.stop server;
  Server.wait server;
  match
    Client.request ~timeout_s:1. ~host:"127.0.0.1" ~port ~meth:"GET"
      ~target:"/healthz" ()
  with
  | Error _ -> ()
  | Ok (status, _, _) ->
      Alcotest.failf "still answering (%d) after shutdown" status

let live_trace_roundtrip_test () =
  (* end to end over real sockets: the client names the trace, the
     sampled server keeps it, and /trace/<id> serves Chrome JSON *)
  let state = Router.make ~trace_sample:1 (Workload.Casablanca.context ()) in
  with_server state (fun port ->
      let status, headers, _ =
        must
          (Client.request ~host:"127.0.0.1" ~port ~meth:"POST"
             ~target:"/query"
             ~headers:[ ("X-Trace-Id", known_id) ]
             ~body:"{\"query\": \"man_woman\", \"k\": 3}" ())
      in
      Alcotest.(check int) "query answers" 200 status;
      Alcotest.(check (option string))
        "response echoes the client's id" (Some known_id)
        (List.assoc_opt "x-trace-id" headers);
      let status, _, body = get_path ~port ("/trace/" ^ known_id) in
      Alcotest.(check int) "trace served" 200 status;
      match Json.of_string body with
      | Error e -> Alcotest.failf "not JSON: %s" e
      | Ok doc -> (
          Alcotest.(check bool) "trace_id stamped" true
            (Json.member "trace_id" doc = Some (Json.String known_id));
          match Json.member "traceEvents" doc with
          | Some (Json.Array (_ :: _ as events)) ->
              Alcotest.(check bool)
                "every event args carry the id" true
                (List.for_all
                   (fun e ->
                     match Json.member "args" e with
                     | Some args ->
                         Json.member "trace_id" args
                         = Some (Json.String known_id)
                     | None -> false)
                   events)
          | _ -> Alcotest.fail "no traceEvents"))

let live_tests =
  let open Alcotest in
  [
    test_case "warm context: one index build, cache hits on repeats" `Quick
      warm_context_test;
    test_case "concurrent load matches sequential evaluation (no pool)"
      `Quick
      (concurrent_differential ~domains:0);
    test_case "concurrent load matches sequential evaluation (2 domains)"
      `Quick
      (concurrent_differential ~domains:2);
    test_case "concurrent sampled tracing never perturbs responses" `Quick
      (concurrent_differential ~trace_sample:2 ~domains:0);
    test_case "a client-named trace round-trips over sockets" `Quick
      live_trace_roundtrip_test;
    test_case "fault injection leaves the service healthy" `Quick
      fault_injection_test;
    test_case "admission control: 429 past the queue bound" `Quick
      admission_control_test;
    test_case "request deadline: heavy routes 503, light routes fine" `Quick
      request_timeout_test;
    test_case "graceful shutdown stops answering" `Quick
      graceful_shutdown_test;
  ]

let suites =
  [
    ("server.http", http_parser_tests @ http_writer_tests);
    ("server.wire", wire_tests);
    ("server.router", router_tests);
    ("server.ingest", ingest_tests);
    ("server.exposition", exposition_tests);
    ("server.tracing", tracing_tests);
    ("server.live", live_tests);
  ]
