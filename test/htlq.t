The htlq CLI: results on stdout, diagnostics on stderr, exit code 0 on
success, 1 on query errors, 2 on usage errors.

A query over the paper's Casablanca tables:

  $ ../bin/htlq.exe --query 'man_woman and eventually moving_train' --top 3
  formula class: type (1)
  
  Start    End      Sim
  1        4        12.382000
  6        6        11.047000
  8        8        11.047000
  5        5        9.787000
  7        7        9.787000
  9        9        9.787000
  47       49       6.260000
  10       44       1.260000
  
  
  top 3 segments:
    segment 1: 12.3820 (fraction 0.772)
    segment 2: 12.3820 (fraction 0.772)
    segment 3: 12.3820 (fraction 0.772)




--classify only reports the formula's class:

  $ ../bin/htlq.exe --classify --query 'not man_woman'
  formula class: general

--explain prints the static evaluation plan with the cost-based
planner's estimated rows and cost per node (no timings — add --trace
for an analyzed run, which is not cram-stable):

  $ ../bin/htlq.exe --explain --query 'man_woman until moving_train'
  query:   (man_woman until moving_train)
  class:   type (1)
  backend: direct
  
  type1.until {est_rows=50, est_cost=25.2}
    type1.atom {formula=man_woman, access=table, est_rows=44, est_cost=1.25}
    type1.atom {formula=moving_train, access=table, est_rows=1, est_cost=0.25}
  




Over a store dataset, EXPLAIN annotates each atom with its planned
access path.  A selective atom keeps the index candidate plan the
pruning pass will intersect:

  $ ../bin/htlq.exe --dataset casablanca-store --explain \
  >     --query 'exists z . name(z) = "Ilsa"'
  query:   (exists z . name(z) = "Ilsa")
  class:   type (1)
  backend: direct
  
  type1.atom {formula=(exists z . name(z) = "Ilsa"), access=index: name="Ilsa", est_rows=7, est_cost=15}
  




An atom whose estimated selectivity is past the index-vs-scan
crossover is demoted to a full scan by the planner (the taxonomy makes
this one match almost everywhere), and --no-index turns pruning off
unconditionally:

  $ ../bin/htlq.exe --dataset casablanca-store --explain \
  >     --query 'exists z . (present(z) and type(z) = "train")'
  query:   (exists z . (present(z) and type(z) = "train"))
  class:   type (1)
  backend: direct
  
  type1.atom {formula=(exists z . (present(z) and type(z) = "train")), access=scan (planned, est sel 1.00), est_rows=50, est_cost=50}
  





  $ ../bin/htlq.exe --dataset casablanca-store --explain --no-index \
  >     --query 'exists z . (present(z) and type(z) = "train")'
  query:   (exists z . (present(z) and type(z) = "train"))
  class:   type (1)
  backend: direct
  
  type1.atom {formula=(exists z . (present(z) and type(z) = "train")), access=scan, est_rows=50, est_cost=50}
  




With --backend auto the planner also picks the backend, and EXPLAIN
reports which one won and the estimated cost of each:

  $ ../bin/htlq.exe --backend auto --explain \
  >     --query 'man_woman until moving_train'
  query:   (man_woman until moving_train)
  class:   type (1)
  backend: direct
  planner: auto chose direct: estimated cost direct 25.2 vs sql 3.94e+03
  
  type1.until {est_rows=50, est_cost=25.2}
    type1.atom {formula=man_woman, access=table, est_rows=44, est_cost=1.25}
    type1.atom {formula=moving_train, access=table, est_rows=1, est_cost=0.25}
  





--no-index only changes the access path, never the results — the same
query over the store, pruned and full-scan:

  $ ../bin/htlq.exe --dataset casablanca-store --top 3 \
  >     --query 'exists z . (present(z) and type(z) = "train")'
  formula class: type (1)
  
  Start    End      Sim
  9        9        2.000000
  1        4        1.062500
  6        6        1.062500
  8        8        1.062500
  10       44       1.062500
  47       49       1.062500
  
  
  top 3 segments:
    segment 9: 2.0000 (fraction 1.000)
    segment 1: 1.0625 (fraction 0.531)
    segment 2: 1.0625 (fraction 0.531)




  $ ../bin/htlq.exe --dataset casablanca-store --top 3 --no-index \
  >     --query 'exists z . (present(z) and type(z) = "train")'
  formula class: type (1)
  
  Start    End      Sim
  9        9        2.000000
  1        4        1.062500
  6        6        1.062500
  8        8        1.062500
  10       44       1.062500
  47       49       1.062500
  
  
  top 3 segments:
    segment 9: 2.0000 (fraction 1.000)
    segment 1: 1.0625 (fraction 0.531)
    segment 2: 1.0625 (fraction 0.531)





A general formula is a query error (stderr, exit 1), not a crash:

  $ ../bin/htlq.exe --query 'not man_woman'
  error: unsupported formula: negation or disjunction is outside every conjunctive class
  [1]

So is a syntax error:

  $ ../bin/htlq.exe --query 'man_woman and ('
  syntax error: expected an atomic formula but found end of input
  [1]

An unknown backend is a usage error (exit 2):

  $ ../bin/htlq.exe --backend nope --query 'man_woman'
  unknown backend "nope" (use direct, sql or auto)
  [2]

As is an unknown flag:

  $ ../bin/htlq.exe --no-such-flag > /dev/null 2> /dev/null
  [2]

Telemetry exports.  --prom writes the metrics registry as Prometheus
text exposition: the latency histogram exposes all 21 cumulative
buckets, and the cache hit/miss counters are pre-registered so both
series appear even when the query never probed the cache:

  $ ../bin/htlq.exe --query 'man_woman and eventually moving_train' \
  >     --prom prom.txt > /dev/null
  $ grep -c '^query_latency_s_bucket' prom.txt
  21
  $ grep '^# TYPE query_latency_s' prom.txt
  # TYPE query_latency_s histogram
  $ grep -E -c '^cache_(hits|misses) ' prom.txt
  2

--prom /dev/stdout prints the exposition after the results:

  $ ../bin/htlq.exe --query 'man_woman' --prom /dev/stdout \
  >     | grep -c '^query_latency_s_count 1'
  1

--trace-out writes the span tree as Chrome trace-event JSON, one
complete event per span:

  $ ../bin/htlq.exe --query 'man_woman and eventually moving_train' \
  >     --trace-out trace.json > /dev/null
  $ grep -o '"ph": "X"' trace.json | wc -l
  5
  $ grep -o '"name": "query.run"' trace.json | wc -l
  1

--slow-ms logs queries crossing the threshold as JSONL records on
stderr: 0 logs every query, an unreachable threshold logs none (and
grep then finds nothing):

  $ ../bin/htlq.exe --query 'man_woman' --slow-ms 0 2>&1 > /dev/null \
  >     | grep -c '"formula_id"'
  1
  $ ../bin/htlq.exe --query 'man_woman' --slow-ms 100000 2>&1 > /dev/null \
  >     | grep -c '"formula_id"'
  0
  [1]

A failed query still leaves a slow-log record, carrying the error:

  $ ../bin/htlq.exe --query 'not man_woman' --slow-ms 0 2>&1 > /dev/null \
  >     | grep -c '"error"'
  1

The bench regression gate compares a fresh run against a committed
baseline: within tolerance it exits 0, beyond it exits 1.  The [ok]
rows carry live timings, so only the verdict line is cram-stable:

  $ ../bench/main.exe --check --baseline ../BENCH_cache.json \
  >     --tolerance 1e9 | tail -1
  no regressions (tolerance 1e+09)

  $ ../bench/main.exe --check --baseline ../BENCH_cache.json \
  >     --tolerance -1 > /dev/null
  [1]

The index section's baseline goes through the same gate (registry,
pruning and selectivity rows):

  $ ../bench/main.exe --check --baseline ../BENCH_index.json \
  >     --tolerance 1e9 | tail -1
  no regressions (tolerance 1e+09)

As does the serve section's (p50 per clients x domains combination):

  $ ../bench/main.exe --check --baseline ../BENCH_serve.json \
  >     --tolerance 1e9 | tail -1
  no regressions (tolerance 1e+09)

And the ingest section's (qps per arm, gated as throughput; the
committed baseline also records the invalidation counters):

  $ ../bench/main.exe --check --baseline ../BENCH_ingest.json \
  >     --tolerance 1e9 | tail -1
  no regressions (tolerance 1e+09)

And the planner section's (p50 per join-order and backend arm; the
join speedup and the auto margin gate as higher-is-better ratios):

  $ ../bench/main.exe --check --baseline ../BENCH_plan.json \
  >     --tolerance 1e9 | tail -1
  no regressions (tolerance 1e+09)

The query service: htlq serve keeps one warm context behind an HTTP
interface, and htlq http talks to it.  An ephemeral port (--port 0)
lands in --port-file; the banner confirms the configuration:

  $ ../bin/htlq.exe serve --port-file port.txt --workers 2 --queue 8 \
  >     --trace-sample 1 > serve.log 2>&1 &
  $ SERVE_PID=$!
  $ for i in $(seq 1 50); do test -s port.txt && break; sleep 0.1; done
  $ PORT=$(cat port.txt)
  $ grep -c 'htlq: serving on 127.0.0.1:' serve.log
  1
  $ grep -o 'workers=2, queue=8' serve.log
  workers=2, queue=8

Liveness, a query, and the observability endpoints round-trip:

  $ ../bin/htlq.exe http /healthz --port $PORT
  ok
  $ ../bin/htlq.exe http /query --port $PORT \
  >     --body '{"query": "man_woman", "k": 2}' | grep -o '"class": "type (1)"'
  "class": "type (1)"
  $ ../bin/htlq.exe http /query --port $PORT \
  >     --body '{"query": "man_woman", "k": 2}' > /dev/null
  $ ../bin/htlq.exe http /metrics --port $PORT | grep -o '^cache_hits [1-9]' \
  >     | head -1
  cache_hits 1
  $ ../bin/htlq.exe http /slowlog --port $PORT
  $ ../bin/htlq.exe http /nope --port $PORT
  {"error": "no route for /nope"}
  http status 404
  [1]

Error bodies land on stderr, so piped stdout stays clean JSON:

  $ ../bin/htlq.exe http /nope --port $PORT 2> /dev/null
  [1]

Request tracing: --trace-sample 1 retains every request's span tree,
/trace lists the retained ids, and /trace/<id> renders the tree as
Chrome trace-event JSON rooted at the server.request span:

  $ TID=$(../bin/htlq.exe http /trace --port $PORT \
  >     | grep -o '"trace_id": "[0-9a-f]\{32\}"' | head -1 | cut -d '"' -f 4)
  $ ../bin/htlq.exe http /trace/$TID --port $PORT \
  >     | grep -o '"name": "server.request"' | head -1
  "name": "server.request"

The always-on stats collector aggregates every request; htlq stats
pretty-prints GET /stats:

  $ ../bin/htlq.exe stats --port $PORT | grep -o '"formula": "man_woman"' \
  >     | head -1
  "formula": "man_woman"
  $ ../bin/htlq.exe stats --port $PORT | grep -o '"backend": "direct"' | head -1
  "backend": "direct"

SIGTERM drains and exits 0:

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ grep -c 'htlq: shutdown complete' serve.log
  1

POST /ingest appends leaf segments to a store-backed dataset without a
restart, and the very next query ranks them (the casablanca store has
50 shots, so the appended zebra lands at id 51):

  $ ../bin/htlq.exe serve --dataset casablanca-store --port-file iport.txt \
  >     > ingest-serve.log 2>&1 &
  $ INGEST_PID=$!
  $ for i in $(seq 1 50); do test -s iport.txt && break; sleep 0.1; done
  $ IPORT=$(cat iport.txt)
  $ ../bin/htlq.exe http /ingest --port $IPORT \
  >     --body '{"segments": [{"objects": [{"id": 9, "type": "zebra"}]}]}'
  {"appended": 1, "leaf_count": 51, "version": 1}
  $ ../bin/htlq.exe http /query --port $IPORT \
  >     --body '{"query": "exists z . (present(z) and type(z) = \"zebra\")", "k": 1}' \
  >     | grep -o '"id": 51'
  "id": 51
  $ ../bin/htlq.exe http /ingest --port $IPORT --body '{"segments": []}'
  {"error": "\"segments\" must not be empty"}
  http status 400
  [1]
  $ kill -TERM $INGEST_PID
  $ wait $INGEST_PID

Usage errors in the subcommands exit 2 like the main command's:

  $ ../bin/htlq.exe http /healthz --no-such-flag 2> /dev/null
  [2]
  $ ../bin/htlq.exe serve --no-such-flag 2> /dev/null
  [2]

Sharded evaluation: --shards partitions a store-backed dataset by
video and scatter-gathers per-shard similarity lists.  The merged
result is identical to the unsharded path (gulf holds one video, so
two requested shards collapse to one — videos are never split):

  $ ../bin/htlq.exe --dataset gulf --shards 2 --top 2 \
  >     --query 'exists z . (present(z) and type(z) = "plane")'
  formula class: type (1)
  
  Start    End      Sim
  1        13       1.000000
  
  
  top 2 segments:
    segment 1: 1.0000 (fraction 0.500)
    segment 2: 1.0000 (fraction 0.500)




Snapshots: snapshot save serializes the sharded store (segment trees,
index registries, thresholds) to a single versioned checksummed file,
and snapshot load validates it back:

  $ ../bin/htlq.exe snapshot save --dataset gulf --shards 2 -o gulf.snap
  snapshot: wrote gulf.snap (1 shards, 13 leaf segments, 4 levels)
  $ ../bin/htlq.exe snapshot load gulf.snap
  snapshot: loaded gulf.snap (1 shards, 13 leaf segments, 4 levels)

--snapshot boots a query directly from the file — no re-ingestion, no
index rebuilds — and answers exactly like the live store:

  $ ../bin/htlq.exe --snapshot gulf.snap --top 2 \
  >     --query 'exists z . (present(z) and type(z) = "plane")'
  formula class: type (1)
  
  Start    End      Sim
  1        13       1.000000
  
  
  top 2 segments:
    segment 1: 1.0000 (fraction 0.500)
    segment 2: 1.0000 (fraction 0.500)




A corrupted snapshot is rejected with a typed error (exit 1), never a
crash or a silently wrong store:

  $ echo corrupt > bad.snap
  $ ../bin/htlq.exe snapshot load bad.snap
  snapshot error: not a snapshot file (bad magic)
  [1]
