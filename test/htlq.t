The htlq CLI: results on stdout, diagnostics on stderr, exit code 0 on
success, 1 on query errors, 2 on usage errors.

A query over the paper's Casablanca tables:

  $ ../bin/htlq.exe --query 'man_woman and eventually moving_train' --top 3
  formula class: type (1)
  
  Start    End      Sim
  1        4        12.382000
  6        6        11.047000
  8        8        11.047000
  5        5        9.787000
  7        7        9.787000
  9        9        9.787000
  47       49       6.260000
  10       44       1.260000
  
  
  top 3 segments:
    segment 1: 12.3820 (fraction 0.772)
    segment 2: 12.3820 (fraction 0.772)
    segment 3: 12.3820 (fraction 0.772)




--classify only reports the formula's class:

  $ ../bin/htlq.exe --classify --query 'not man_woman'
  formula class: general

--explain prints the static evaluation plan (no timings — add --trace
for an analyzed run, which is not cram-stable):

  $ ../bin/htlq.exe --explain --query 'man_woman until moving_train'
  query:   (man_woman until moving_train)
  class:   type (1)
  backend: direct
  
  type1.until
    type1.atom {formula=man_woman}
    type1.atom {formula=moving_train}
  


A general formula is a query error (stderr, exit 1), not a crash:

  $ ../bin/htlq.exe --query 'not man_woman'
  error: unsupported formula: negation or disjunction is outside every conjunctive class
  [1]

So is a syntax error:

  $ ../bin/htlq.exe --query 'man_woman and ('
  syntax error: expected an atomic formula but found end of input
  [1]

An unknown backend is a usage error (exit 2):

  $ ../bin/htlq.exe --backend nope --query 'man_woman'
  unknown backend "nope" (use direct or sql)
  [2]

As is an unknown flag:

  $ ../bin/htlq.exe --no-such-flag > /dev/null 2> /dev/null
  [2]
