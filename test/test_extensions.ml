(* Tests for the §5 future-work extensions: alternative similarity
   functions, the exact-semantics fallback for general formulas, and the
   join-reordering optimisation. *)

open Engine
module Sim_list = Simlist.Sim_list
module Interval = Simlist.Interval

let iv = Interval.make
let parse = Htl.Parser.formula_of_string
let sim_list = Alcotest.testable Sim_list.pp Sim_list.equal

let ctx_of ?conj_mode lists =
  Context.of_tables ?conj_mode ~n:20
    (List.map
       (fun (name, l) -> (name, Simlist.Sim_table.of_sim_list l))
       lists)

let two_lists =
  [
    ("p1", Sim_list.of_entries ~max:4. [ (iv 1 5, 2.) ]);
    ("p2", Sim_list.of_entries ~max:8. [ (iv 4 8, 8.) ]);
  ]

let conj_mode_tests =
  let open Alcotest in
  [
    test_case "weighted sum is the default" `Quick (fun () ->
        let r = Query.run_string (ctx_of two_lists) "p1 and p2" in
        check (float 1e-9) "overlap" 10. (Sim_list.value_at r 4);
        check (float 1e-9) "p1 only" 2. (Sim_list.value_at r 2));
    test_case "min fraction" `Quick (fun () ->
        let ctx = ctx_of ~conj_mode:Sim_list.Min_fraction two_lists in
        let r = Query.run_string ctx "p1 and p2" in
        (* fractions: p1 = 0.5, p2 = 1.0 -> min 0.5 of max 12 *)
        check (float 1e-9) "overlap" 6. (Sim_list.value_at r 4);
        (* one side absent -> 0 under min *)
        check (float 1e-9) "p1 only" 0. (Sim_list.value_at r 2);
        check (float 0.) "max" 12. (Sim_list.max_sim r));
    test_case "product fraction" `Quick (fun () ->
        let ctx = ctx_of ~conj_mode:Sim_list.Product_fraction two_lists in
        let r = Query.run_string ctx "p1 and p2" in
        check (float 1e-9) "overlap" 6. (Sim_list.value_at r 4);
        check (float 1e-9) "p1 only" 0. (Sim_list.value_at r 2));
    test_case "modes agree on exact matches" `Quick (fun () ->
        let exact =
          [
            ("p1", Sim_list.of_entries ~max:4. [ (iv 2 3, 4.) ]);
            ("p2", Sim_list.of_entries ~max:8. [ (iv 2 3, 8.) ]);
          ]
        in
        List.iter
          (fun mode ->
            let r =
              Query.run_string (ctx_of ~conj_mode:mode exact) "p1 and p2"
            in
            check (float 1e-9) "full" 12. (Sim_list.value_at r 2))
          [ Sim_list.Weighted_sum; Sim_list.Min_fraction; Sim_list.Product_fraction ]);
    Helpers.qtest ~count:50 "min-fraction conjunction matches the oracle"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let n = 10 + Workload.Rng.int rng 30 in
        let base =
          Workload.Synthetic.context_with_atoms ~seed:(seed + 3) ~n
            ~selectivity:0.4 [ "p1"; "p2"; "p3" ]
        in
        let ctx =
          Context.with_fresh_cache
            { base with Context.conj_mode = Sim_list.Min_fraction }
        in
        let f = parse "p1 and p2 and eventually p3" in
        let oracle = Reference.similarity_over_level ctx f in
        let engine = Sim_list.to_dense ~n (Query.run ctx f) in
        Array.for_all2
          (fun s v -> Float.abs (Simlist.Sim.actual s -. v) < 1e-9)
          oracle engine)
      (QCheck.make ~print:(Printf.sprintf "seed %d") QCheck.Gen.int);
  ]

let reorder_tests =
  let open Alcotest in
  [
    test_case "reordered joins give the same answer" `Quick (fun () ->
        let store = Fixtures.western_store () in
        let plain = Context.of_store store in
        let reordered = Context.of_store ~reorder_joins:true store in
        List.iter
          (fun q ->
            check sim_list q (Query.run_string plain q)
              (Query.run_string reordered q))
          [
            "exists x, y . (present(x) and name(x) = \"John Wayne\") until \
             fires_at(x, y)";
            "(exists x . type(x) = \"train\") and (exists x . type(x) = \
             \"man\") and eventually (exists x . type(x) = \"woman\")";
          ]);
    Helpers.qtest ~count:30 "reordering never changes type2 results"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let store =
          Workload.Movies.random_store rng ~videos:1 ~branching:4
            ~object_pool:4 ()
        in
        let f = Workload.Movies.random_type2_formula rng ~depth:2 in
        let plain = Context.of_store store in
        let reordered = Context.of_store ~reorder_joins:true store in
        Sim_list.equal (Query.run plain f) (Query.run reordered f))
      (QCheck.make ~print:(Printf.sprintf "seed %d") QCheck.Gen.int);
  ]

let fallback_tests =
  let open Alcotest in
  [
    test_case "supported formulas use the similarity engine" `Quick (fun () ->
        let store = Fixtures.western_store () in
        let ctx = Context.of_store store in
        let f = parse "exists x . (present(x) and type(x) = \"woman\")" in
        check sim_list "same as run" (Query.run ctx f)
          (Query.run_with_fallback ctx f));
    test_case "negation falls back to boolean similarity" `Quick (fun () ->
        let store = Fixtures.western_store () in
        let ctx = Context.of_store store in
        let f = parse "not (exists x . type(x) = \"man\" or type(x) = \"woman\")" in
        let r = Query.run_with_fallback ctx f in
        check (float 0.) "max is 1" 1. (Sim_list.max_sim r);
        (* shots 3 and 6 have no people *)
        check (float 0.) "shot 3" 1. (Sim_list.value_at r 3);
        check (float 0.) "shot 6" 1. (Sim_list.value_at r 6);
        check (float 0.) "shot 1" 0. (Sim_list.value_at r 1));
    test_case "fallback without a store is an error" `Quick (fun () ->
        let ctx = ctx_of two_lists in
        try
          ignore (Query.run_with_fallback ctx (parse "not p1"));
          fail "expected Query.Error"
        with Query.Error _ -> ());
    test_case "open formulas are rejected" `Quick (fun () ->
        let store = Fixtures.western_store () in
        let ctx = Context.of_store store in
        try
          ignore (Query.run_with_fallback ctx (parse "not present(x)"));
          fail "expected Query.Error"
        with Query.Error _ -> ());
  ]

let browse_tests =
  let open Alcotest in
  [
    test_case "browsing ranks whole videos" `Quick (fun () ->
        let store = Fixtures.two_movie_store () in
        let ranked =
          Browse.rank_videos store
            "at shot level (eventually (exists x . (present(x) and type(x) \
             = \"horse\")))"
        in
        (* only the chase movie has a horse; the western's animals are
           people/trains (partial credit) *)
        match ranked with
        | (idx, title, sim) :: _ ->
            check int "chase first" 1 idx;
            check string "title" "chase" title;
            check (float 1e-9) "exact" 1. (Simlist.Sim.fraction sim)
        | [] -> fail "no results");
    test_case "title browsing" `Quick (fun () ->
        let store = Fixtures.two_movie_store () in
        match Browse.rank_videos store "seg.title = \"western\"" with
        | [ (0, "western", _) ] -> ()
        | other -> failf "unexpected ranking (%d entries)" (List.length other));
    test_case "zero-similarity videos are omitted" `Quick (fun () ->
        let store = Fixtures.two_movie_store () in
        check int "none" 0
          (List.length (Browse.rank_videos store "seg.title = \"nothing\"")));
    test_case "syntax errors raise Browse.Error" `Quick (fun () ->
        let store = Fixtures.two_movie_store () in
        try
          ignore (Browse.rank_videos store "not (");
          fail "expected Browse.Error"
        with Browse.Error _ -> ());
  ]

let suites =
  [
    ("extensions.conj_mode", conj_mode_tests);
    ("extensions.browse", browse_tests);
    ("extensions.reorder", reorder_tests);
    ("extensions.fallback", fallback_tests);
  ]
