(* Cost-based planner tests (DESIGN.md §2.21).

   Three harnesses:

   - join-order monotonicity (qcheck): in every planned [And] chain a
     conjunct with a lower estimated cardinality never ranks later —
     the planned order is a permutation sorted by non-decreasing
     [est_rows].

   - estimate accuracy: {!Picture.Pruning.estimate} is a sound upper
     bound on the index candidate count for every subformula of a
     random corpus (and never exceeds the level), and a named table's
     planned cardinality is its exact segment coverage.

   - planned = heuristic differential (qcheck): across the four formula
     strata, both backends, sharded and unsharded, evaluation with the
     planner must be byte-equal ({!Sim_list.equal}) to evaluation with
     it disabled — no plan decision may change results, only cost. *)

open Engine
module Sim_list = Simlist.Sim_list
module Sharded = Htl_shard.Sharded

let store_of_seed ?(videos = 2) seed =
  let rng = Workload.Rng.make seed in
  Workload.Movies.random_store rng ~videos ~branching:4 ~object_pool:4 ()

(* the same plan [Query.dispatch] builds, from a context's parts *)
let plan_of (ctx : Context.t) f =
  Planner.build ?stats:ctx.stats ?index:(Context.index ctx)
    ~tables:ctx.tables ~taxonomy:ctx.picture_config.taxonomy
    ~prune:ctx.picture_config.prune
    ~segments:(Context.segment_count ctx)
    ~level:ctx.level f

let rec flatten f =
  match f with
  | Htl.Ast.And (a, b) -> flatten a @ flatten b
  | _ -> [ f ]

let rec subformulas f =
  f
  ::
  (match f with
  | Htl.Ast.Atom _ -> []
  | And (a, b) | Or (a, b) | Until (a, b) ->
      subformulas a @ subformulas b
  | Next g | Eventually g | Not g | Exists (_, g) | At_level (_, g) ->
      subformulas g
  | Freeze fr -> subformulas fr.body)

(* --- join-order monotonicity --------------------------------------------- *)

let monotonic_prop (seed, f) =
  let ctx = Context.of_store ~reorder_joins:true (store_of_seed seed) in
  let plan = plan_of ctx f in
  List.iter
    (fun g ->
      match Planner.join_order plan g with
      | None -> ()
      | Some order ->
          let chain = Array.of_list (flatten g) in
          let k = Array.length chain in
          if List.length order <> k then
            QCheck.Test.fail_reportf
              "planned order has %d positions for a %d-conjunct chain on %s"
              (List.length order) k (Htl.Pretty.to_string g);
          let seen = Array.make k false in
          List.iter
            (fun i ->
              if i < 0 || i >= k || seen.(i) then
                QCheck.Test.fail_reportf
                  "planned order is not a permutation on %s"
                  (Htl.Pretty.to_string g);
              seen.(i) <- true)
            order;
          (* a conjunct inside a larger non-temporal unit is never
             walked on its own: the planner scores it at the level
             bound, and so does this check *)
          let rows =
            List.map
              (fun i ->
                match Planner.find plan chain.(i) with
                | Some e -> e.Planner.est_rows
                | None -> Planner.segments plan)
              order
          in
          let rec non_decreasing = function
            | a :: b :: _ when a > b ->
                QCheck.Test.fail_reportf
                  "a sparser conjunct ranks later (est %d before %d) on %s" a
                  b (Htl.Pretty.to_string g)
            | _ :: tl -> non_decreasing tl
            | [] -> ()
          in
          non_decreasing rows)
    (subformulas f);
  true

(* --- estimate accuracy ---------------------------------------------------- *)

let estimate_bound_prop (seed, f) =
  let ctx = Context.of_store (store_of_seed seed) in
  let idx =
    match Context.index ctx with
    | Some idx -> idx
    | None -> QCheck.Test.fail_report "store context has no index"
  in
  let taxonomy = ctx.Context.picture_config.Picture.Retrieval.taxonomy in
  let n = Context.segment_count ctx in
  List.iter
    (fun g ->
      let p = Picture.Pruning.plan g in
      let est = Picture.Pruning.estimate ~taxonomy idx p in
      if est < 0 || est > n then
        QCheck.Test.fail_reportf "estimate %d outside [0, %d] on %s" est n
          (Htl.Pretty.to_string g);
      match Picture.Pruning.candidates ~taxonomy idx p with
      | None -> ()
      | Some arr ->
          if est < Array.length arr then
            QCheck.Test.fail_reportf
              "estimate %d below the actual candidate count %d on %s" est
              (Array.length arr) (Htl.Pretty.to_string g))
    (subformulas f);
  true

let table_names = [ "p1"; "p2"; "p3" ]

let table_estimate_exact () =
  let ctx =
    Workload.Synthetic.context_with_atoms ~seed:11 ~n:40 ~selectivity:0.4
      table_names
  in
  List.iter
    (fun name ->
      let f = Htl.Ast.Atom (Htl.Ast.Rel (name, [])) in
      let plan = plan_of ctx f in
      let est =
        match Planner.find plan f with
        | Some e -> e.Planner.est_rows
        | None -> Alcotest.failf "no estimate for table atom %s" name
      in
      let actual = Sim_list.covered (Query.run ctx f) in
      Alcotest.(check int)
        (Printf.sprintf "named table %s: planned rows = exact coverage" name)
        actual est)
    table_names

(* --- access-path and backend decisions ------------------------------------ *)

let scan_threshold_demotes () =
  let ctx = Context.of_store (store_of_seed 42) in
  let f = Htl.Parser.formula_of_string "exists z . present(z)" in
  let build threshold =
    Planner.build ~scan_threshold:threshold
      ?index:(Context.index ctx) ~tables:[]
      ~taxonomy:ctx.Context.picture_config.Picture.Retrieval.taxonomy
      ~prune:true
      ~segments:(Context.segment_count ctx)
      ~level:ctx.Context.level f
  in
  (* at threshold 0 every indexed unit demotes to a planned scan; at a
     threshold above 1 nothing ever does *)
  Alcotest.(check bool)
    "threshold 0 demotes" true
    (Planner.scan_override (build 0.0) f);
  Alcotest.(check bool)
    "threshold > 1 never demotes" false
    (Planner.scan_override (build 1.1) f)

let auto_backend_decision () =
  let ctx = Context.of_store ~reorder_joins:true (store_of_seed 7) in
  let f =
    Htl.Parser.formula_of_string
      "(exists z . present(z)) until (exists z . moving(z))"
  in
  let plan = plan_of ctx f in
  let fingerprint = Htl.Hcons.intern_id f in
  (* cold: the lower static estimate wins *)
  let cold = Planner.choose_backend ~fingerprint plan in
  let expect_static =
    if Planner.direct_cost plan <= Planner.sql_cost plan then `Direct
    else `Sql
  in
  Alcotest.(check bool)
    "cold choice follows the static estimates" true
    (cold.Planner.picked = expect_static);
  Alcotest.(check bool)
    "cold reason cites estimates" true
    (Helpers.contains cold.Planner.reason "estimated cost");
  (* observed: once both backends carry a latency EWMA, the faster
     observation overrides the static ranking *)
  let stats = Obs.Stats.create () in
  let record backend latency_s =
    Obs.Stats.record_query stats ~fingerprint
      ~formula:(fun () -> Htl.Pretty.to_string f)
      ~backend ~latency_s ~error:false
  in
  record "direct" 0.5;
  record "sql" 0.001;
  let warm = Planner.choose_backend ~stats ~fingerprint plan in
  Alcotest.(check bool)
    "faster observed backend wins" true
    (warm.Planner.picked = `Sql);
  Alcotest.(check bool)
    "warm reason cites observations" true
    (Helpers.contains warm.Planner.reason "observed")

(* --- planned = heuristic differential ------------------------------------- *)

let outcome run =
  match run () with
  | list -> Ok list
  | exception Query.Error msg -> Error msg

let planned_heuristic_prop (seed, f) =
  let store = store_of_seed seed in
  let check what planned heuristic =
    match (planned, heuristic) with
    | Ok a, Ok b ->
        if not (Sim_list.equal a b) then
          QCheck.Test.fail_reportf
            "planned %s differs from the heuristic evaluation on %s" what
            (Htl.Pretty.to_string f)
    | Error _, Error _ -> ()
    | _ ->
        QCheck.Test.fail_reportf
          "planning changes the outcome class (%s) on %s" what
          (Htl.Pretty.to_string f)
  in
  List.iter
    (fun (bname, backend) ->
      let planned_ctx = Context.of_store ~reorder_joins:true store in
      let heur_ctx =
        Context.of_store ~planner:false ~reorder_joins:true store
      in
      check bname
        (outcome (fun () -> Query.run ~backend planned_ctx f))
        (outcome (fun () -> Query.run ~backend heur_ctx f));
      let planned_sh = Sharded.create ~shards:2 ~reorder_joins:true store in
      let heur_sh =
        Sharded.create ~shards:2 ~planner:false ~reorder_joins:true store
      in
      check (bname ^ ", sharded")
        (outcome (fun () -> Sharded.run ~backend planned_sh f))
        (outcome (fun () -> Sharded.run ~backend heur_sh f)))
    [ ("direct", Query.Direct_backend); ("sql", Query.Sql_backend_choice) ];
  true

let suites =
  [
    ( "planner",
      [
        Helpers.qtest ~count:80 "planned And order is sorted by est_rows"
          monotonic_prop
          (Helpers.arb_store_formula Helpers.gen_closed_formula);
        Helpers.qtest ~count:80
          "Pruning.estimate bounds the candidate count" estimate_bound_prop
          (Helpers.arb_store_formula Helpers.gen_closed_formula);
        Alcotest.test_case "named-table estimates are exact" `Quick
          table_estimate_exact;
        Alcotest.test_case "scan threshold demotes high selectivity" `Quick
          scan_threshold_demotes;
        Alcotest.test_case "auto backend: static then observed" `Quick
          auto_backend_decision;
        Helpers.qtest ~count:40 "planned = heuristic (type 1)"
          planned_heuristic_prop
          (Helpers.arb_store_formula Helpers.gen_type1_formula);
        Helpers.qtest ~count:40 "planned = heuristic (type 2)"
          planned_heuristic_prop
          (Helpers.arb_store_formula Helpers.gen_type2_formula);
        Helpers.qtest ~count:40 "planned = heuristic (conjunctive)"
          planned_heuristic_prop
          (Helpers.arb_store_formula Helpers.gen_conjunctive_formula);
        Helpers.qtest ~count:40 "planned = heuristic (mixed strata)"
          planned_heuristic_prop
          (Helpers.arb_store_formula Helpers.gen_closed_formula);
      ] );
  ]
