(* Shared test utilities: dense (array-based) reference implementations of
   the similarity-list operations, and qcheck generators.  The dense code
   follows the §2.5 definitions literally, one id at a time, and serves as
   the oracle for the interval algorithms. *)

open Simlist

let sim_list_testable =
  Alcotest.testable Sim_list.pp Sim_list.equal

let interval_testable = Alcotest.testable Interval.pp Interval.equal

(* naive substring test, for asserting on rendered output *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* --- dense references ---------------------------------------------- *)

let dense_conj = Array.map2 ( +. )

let dense_max = Array.map2 Float.max

(* [next g] at i reads g at i+1 unless i is the last id of its extent. *)
let dense_next ~extents g =
  let n = Array.length g in
  Array.init n (fun i ->
      let id = i + 1 in
      if Interval.hi (Extent.containing extents id) = id then 0.
      else g.(i + 1))

(* [g until h] at i: the best h value at any id j >= i (same extent)
   reachable through ids whose g fraction stays >= threshold. *)
let dense_until ?(threshold = 0.5) ~extents ~gmax g h =
  let n = Array.length g in
  let frac i = if gmax = 0. then 0. else g.(i) /. gmax in
  Array.init n (fun i ->
      let id = i + 1 in
      let ext_hi = Interval.hi (Extent.containing extents id) in
      let best = ref h.(i) in
      let j = ref i in
      while !j + 1 < n && !j + 1 <= ext_hi - 1 && frac !j >= threshold do
        incr j;
        best := Float.max !best h.(!j)
      done;
      !best)

let dense_eventually ~extents h =
  let n = Array.length h in
  Array.init n (fun i ->
      let id = i + 1 in
      let ext_hi = Interval.hi (Extent.containing extents id) in
      let best = ref 0. in
      for j = i to ext_hi - 1 do
        best := Float.max !best h.(j)
      done;
      !best)

(* --- generators ------------------------------------------------------ *)

(* A random dense similarity array: each id independently non-zero with
   probability [density]; values are multiples of 1/8 in (0, max] so that
   float comparisons are exact and coalescing triggers often. *)
let gen_dense ?(density = 0.4) ~n ~max () =
  let open QCheck.Gen in
  let cell =
    float_bound_inclusive 1. >>= fun toss ->
    if toss > density then return 0.
    else map (fun k -> float_of_int k *. max /. 8.) (int_range 1 8)
  in
  array_repeat n cell

let gen_extents ~n =
  let open QCheck.Gen in
  int_range 1 4 >>= fun parts ->
  if parts = 1 || parts >= n then return (Extent.single n)
  else
    let to_extents cuts =
      let cuts = List.sort_uniq compare cuts in
      let cuts = List.filter (fun c -> c > 0 && c < n) cuts in
      let rec lengths prev = function
        | [] -> [ n - prev ]
        | c :: tl -> (c - prev) :: lengths c tl
      in
      Extent.of_lengths (lengths 0 cuts)
    in
    map to_extents (list_repeat (parts - 1) (int_range 1 (n - 1)))

let pp_dense a =
  String.concat ";" (Array.to_list (Array.map string_of_float a))

(* arbitrary for (n, extents, dense array) *)
let arb_dense_with_extents ?(max = 8.) () =
  let gen =
    let open QCheck.Gen in
    int_range 1 60 >>= fun n ->
    gen_extents ~n >>= fun extents ->
    map (fun a -> (n, extents, a)) (gen_dense ~n ~max ())
  in
  let print (n, extents, a) =
    Format.asprintf "n=%d %a dense=[%s]" n Extent.pp extents (pp_dense a)
  in
  QCheck.make ~print gen

let arb_two_dense_with_extents ?(max_a = 8.) ?(max_b = 8.) () =
  let gen =
    let open QCheck.Gen in
    int_range 1 60 >>= fun n ->
    gen_extents ~n >>= fun extents ->
    gen_dense ~n ~max:max_a () >>= fun a ->
    map (fun b -> (n, extents, a, b)) (gen_dense ~n ~max:max_b ())
  in
  let print (n, extents, a, b) =
    Format.asprintf "n=%d %a a=[%s] b=[%s]" n Extent.pp extents (pp_dense a)
      (pp_dense b)
  in
  QCheck.make ~print gen

let check_dense_equal ~what expected actual_list =
  let n = Array.length expected in
  let got = Sim_list.to_dense ~n actual_list in
  Alcotest.(check (array (float 1e-9))) what expected got

let qtest ?(count = 300) name prop arb =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- random closed HTL formulas (stratified, with shrinking) --------- *)

module Ast = Htl.Ast

(* vocabulary matching Workload.Movies random stores, so formulas have a
   real chance of matching something *)
let obj_types = [ "man"; "woman"; "train"; "car"; "gun"; "horse"; "dog" ]
let rel_names = [ "holds"; "fires_at"; "near" ]
let moods = [ "calm"; "tense" ]

let gen_closed_atom =
  let open QCheck.Gen in
  let open Ast in
  frequency
    [
      ( 3,
        map
          (fun t ->
            Exists
              ( "u",
                And
                  ( Atom (Present "u"),
                    Atom
                      (Cmp
                         ( Eq,
                           Obj_attr ("type", "u"),
                           Const (Metadata.Value.Str t) )) ) ))
          (oneofl obj_types) );
      ( 2,
        map
          (fun r ->
            Exists ("u", Exists ("v", Atom (Rel (r, [ "u"; "v" ])))))
          (oneofl rel_names) );
      ( 2,
        map
          (fun m ->
            Atom (Cmp (Eq, Seg_attr "mood", Const (Metadata.Value.Str m))))
          (oneofl moods) );
      ( 2,
        map2
          (fun cmp k ->
            Exists
              ( "u",
                And
                  ( Atom (Present "u"),
                    Atom
                      (Cmp
                         ( cmp,
                           Obj_attr ("speed", "u"),
                           Const (Metadata.Value.Int (10 * k)) )) ) ))
          (oneofl [ Gt; Le ]) (int_range 1 9) );
      (1, return (Atom True));
    ]

let gen_open_atom var =
  let open QCheck.Gen in
  let open Ast in
  frequency
    [
      ( 2,
        map
          (fun t ->
            And
              ( Atom (Present var),
                Atom
                  (Cmp
                     (Eq, Obj_attr ("type", var), Const (Metadata.Value.Str t)))
              ))
          (oneofl obj_types) );
      (1, return (Atom (Present var)));
      ( 2,
        map2
          (fun cmp k ->
            And
              ( Atom (Present var),
                Atom
                  (Cmp
                     ( cmp,
                       Obj_attr ("speed", var),
                       Const (Metadata.Value.Int (10 * k)) )) ))
          (oneofl [ Gt; Le ]) (int_range 1 9) );
    ]

(* temporal skeleton over a leaf generator *)
let rec gen_temporal leaf depth =
  let open QCheck.Gen in
  let open Ast in
  if depth <= 0 then leaf
  else
    let sub = gen_temporal leaf (depth - 1) in
    frequency
      [
        (2, map2 (fun g h -> And (g, h)) sub sub);
        (2, map2 (fun g h -> Until (g, h)) sub sub);
        (1, map (fun g -> Next g) sub);
        (1, map (fun g -> Eventually g) sub);
        (2, leaf);
      ]

(* the three strata the differential harness exercises over stores *)
let gen_type1_formula ~depth = gen_temporal gen_closed_atom depth

let gen_type2_formula ~depth =
  QCheck.Gen.map
    (fun body -> Ast.Exists ("x", body))
    (gen_temporal (gen_open_atom "x") depth)

let gen_conjunctive_formula ~depth =
  let open QCheck.Gen in
  let open Ast in
  let freeze_atom =
    map2
      (fun cmp flip ->
        if flip then Atom (Cmp (cmp, Obj_attr ("speed", "x"), Attr_var "v"))
        else Atom (Cmp (cmp, Attr_var "v", Obj_attr ("speed", "x"))))
      (oneofl [ Gt; Ge; Lt; Le; Eq ])
      bool
  in
  let leaf = oneof [ gen_open_atom "x"; freeze_atom ] in
  map
    (fun body ->
      Exists
        ( "x",
          And
            ( Atom (Present "x"),
              Freeze { var = "v"; attr = "speed"; obj = Some "x"; body } ) ))
    (gen_temporal leaf depth)

(* nullary named predicates over precomputed tables (the §4.2 setting) *)
let gen_table_formula ~names ~depth =
  let open QCheck.Gen in
  gen_temporal (map (fun p -> Ast.Atom (Ast.Rel (p, []))) (oneofl names)) depth

let gen_closed_formula ~depth =
  let open QCheck.Gen in
  frequency
    [
      (2, gen_type1_formula ~depth);
      (2, gen_type2_formula ~depth);
      (1, gen_conjunctive_formula ~depth);
    ]

(* Shrinker: replace a node by a (closed) subformula or [Atom True], or
   shrink a child in place.  Candidates leaving the conjunctive fragment
   (e.g. an open subformula pulled out of its binder) are filtered
   against Htl.Classify.check, so reported counterexamples stay
   evaluable by every backend. *)
let shrink_formula f =
  let open QCheck.Iter in
  let open Ast in
  let rec shr f =
    match f with
    | Atom True -> empty
    | Atom _ -> return (Atom True)
    | And (g, h) ->
        of_list [ g; h; Atom True ]
        <+> map (fun g' -> And (g', h)) (shr g)
        <+> map (fun h' -> And (g, h')) (shr h)
    | Until (g, h) ->
        of_list [ g; h; Atom True ]
        <+> map (fun g' -> Until (g', h)) (shr g)
        <+> map (fun h' -> Until (g, h')) (shr h)
    | Next g ->
        of_list [ g; Atom True ] <+> map (fun g' -> Next g') (shr g)
    | Eventually g ->
        of_list [ g; Atom True ] <+> map (fun g' -> Eventually g') (shr g)
    | Exists (x, g) ->
        of_list [ g; Atom True ] <+> map (fun g' -> Exists (x, g')) (shr g)
    | Freeze fr ->
        of_list [ fr.body; Atom True ]
        <+> map (fun b -> Freeze { fr with body = b }) (shr fr.body)
    | At_level (sel, g) ->
        of_list [ g; Atom True ] <+> map (fun g' -> At_level (sel, g')) (shr g)
    | Or (g, h) -> of_list [ g; h; Atom True ]
    | Not g -> of_list [ g; Atom True ]
  in
  filter (fun c -> Result.is_ok (Htl.Classify.check c)) (shr f)

(* arbitrary for (store seed, closed formula): the seed regenerates the
   random store, the formula shrinks structurally *)
let arb_store_formula ?(depth = 2) gen =
  let gen =
    let open QCheck.Gen in
    map2 (fun seed f -> (seed, f)) (int_bound 1_000_000) (gen ~depth)
  in
  let print (seed, f) =
    Printf.sprintf "store seed %d, formula %s" seed (Htl.Pretty.to_string f)
  in
  let shrink (seed, f) =
    QCheck.Iter.map (fun f' -> (seed, f')) (shrink_formula f)
  in
  QCheck.make ~print ~shrink gen

let arb_table_formula ?(depth = 3) ~names () =
  let gen =
    let open QCheck.Gen in
    map2
      (fun seed f -> (seed, f))
      (int_bound 1_000_000)
      (gen_table_formula ~names ~depth)
  in
  let print (seed, f) =
    Printf.sprintf "table seed %d, formula %s" seed (Htl.Pretty.to_string f)
  in
  let shrink (seed, f) =
    QCheck.Iter.map (fun f' -> (seed, f')) (shrink_formula f)
  in
  QCheck.make ~print ~shrink gen
