(* Unit tests for the domain pool (Parallel.Pool) and the batched query
   API built on it: lifecycle, equivalence with the sequential
   operations, chunking variants, exception propagation, reentrancy, and
   the cache under concurrent evaluation. *)

module Pool = Parallel.Pool
open Engine

let check = Alcotest.check

(* most tests run against pools of several sizes: 1 (pure sequential
   baseline), 2 and 4 (oversubscribed on small machines, which is
   exactly the scheduling stress we want) *)
let sizes = [ 1; 2; 4 ]

let with_sizes f = List.iter (fun d -> Pool.with_pool ~domains:d f) sizes

let test_create_invalid () =
  Alcotest.check_raises "domains=0" (Invalid_argument
    "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  Alcotest.check_raises "domains=-3" (Invalid_argument
    "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:(-3) ()))

let test_domain_count () =
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun p ->
          check Alcotest.int (Printf.sprintf "domains=%d" d) d
            (Pool.domain_count p)))
    sizes

let test_shutdown () =
  let p = Pool.create ~domains:3 () in
  check Alcotest.(list int) "alive" [ 2; 4; 6 ]
    (Pool.parallel_map p (fun x -> 2 * x) [ 1; 2; 3 ]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  let dead = Invalid_argument "Parallel.Pool: pool has been shut down" in
  Alcotest.check_raises "map after shutdown" dead (fun () ->
      ignore (Pool.parallel_map p Fun.id [ 1; 2; 3 ]));
  Alcotest.check_raises "empty map after shutdown" dead (fun () ->
      ignore (Pool.parallel_map p Fun.id []));
  Alcotest.check_raises "init after shutdown" dead (fun () ->
      ignore (Pool.parallel_init p 10 Fun.id))

let test_parallel_map () =
  with_sizes (fun p ->
      check Alcotest.(list int) "empty" [] (Pool.parallel_map p Fun.id []);
      check Alcotest.(list int) "singleton" [ 7 ]
        (Pool.parallel_map p (fun x -> x + 3) [ 4 ]);
      let xs = List.init 100 Fun.id in
      check Alcotest.(list int) "order preserved"
        (List.map (fun x -> x * x) xs)
        (Pool.parallel_map p (fun x -> x * x) xs))

let test_parallel_init () =
  with_sizes (fun p ->
      check Alcotest.(array int) "n=0" [||] (Pool.parallel_init p 0 Fun.id);
      List.iter
        (fun n ->
          check Alcotest.(array int)
            (Printf.sprintf "n=%d" n)
            (Array.init n (fun i -> (3 * i) + 1))
            (Pool.parallel_init p n (fun i -> (3 * i) + 1)))
        [ 1; 2; 17; 100 ];
      (* explicit chunk sizes, including degenerate ones *)
      List.iter
        (fun chunk ->
          check Alcotest.(array int)
            (Printf.sprintf "chunk=%d" chunk)
            (Array.init 23 (fun i -> i - 5))
            (Pool.parallel_init p ~chunk 23 (fun i -> i - 5)))
        [ 1; 7; 100 ])

let test_map_range () =
  with_sizes (fun p ->
      check Alcotest.(list (pair int int)) "empty range" []
        (Pool.map_range p ~lo:5 ~hi:4 (fun ~lo ~hi -> (lo, hi)));
      (* chunks are contiguous, ordered, and cover [lo, hi] exactly *)
      let chunks = Pool.map_range p ~chunk:4 ~lo:3 ~hi:20 (fun ~lo ~hi -> (lo, hi)) in
      let rec covers expect = function
        | [] -> check Alcotest.int "covered to hi+1" 21 expect
        | (lo, hi) :: tl ->
            check Alcotest.int "contiguous" expect lo;
            Alcotest.(check bool) "ordered" true (hi >= lo);
            covers (hi + 1) tl
      in
      covers 3 chunks;
      (* summing per chunk equals the full sum *)
      let total =
        List.fold_left ( + ) 0
          (Pool.map_range p ~lo:1 ~hi:1000 (fun ~lo ~hi ->
               let s = ref 0 in
               for i = lo to hi do s := !s + i done;
               !s))
      in
      check Alcotest.int "sum 1..1000" 500500 total)

let test_iter_chunks () =
  with_sizes (fun p ->
      let n = 137 in
      let out = Array.make n (-1) in
      Pool.iter_chunks p n (fun ~lo ~hi ->
          for i = lo to hi do out.(i) <- 2 * i done);
      check Alcotest.(array int) "disjoint writes"
        (Array.init n (fun i -> 2 * i))
        out;
      Pool.iter_chunks p 0 (fun ~lo:_ ~hi:_ -> Alcotest.fail "n=0 ran a chunk"))

let test_both () =
  with_sizes (fun p ->
      let a, b = Pool.both p (fun () -> 6 * 7) (fun () -> "ok") in
      check Alcotest.int "left" 42 a;
      check Alcotest.string "right" "ok" b)

let test_exception_propagation () =
  with_sizes (fun p ->
      let ran = Stdlib.Atomic.make 0 in
      (match
         Pool.parallel_map p
           (fun i ->
             Stdlib.Atomic.incr ran;
             if i = 3 then failwith "boom";
             i)
           [ 0; 1; 2; 3; 4; 5 ]
       with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check Alcotest.string "message" "boom" msg);
      (* siblings of the failing task still ran *)
      check Alcotest.int "all tasks ran" 6 (Stdlib.Atomic.get ran);
      (* and the pool survives *)
      check Alcotest.(list int) "usable after failure" [ 0; 2; 4 ]
        (Pool.parallel_map p (fun i -> 2 * i) [ 0; 1; 2 ]))

let test_nested () =
  with_sizes (fun p ->
      (* tasks submit sub-batches on the same pool: caller-helps
         scheduling must drain these without deadlock *)
      let expected =
        List.init 5 (fun i ->
            List.fold_left ( + ) 0 (List.init 4 (fun j -> (i * 10) + j)))
      in
      let got =
        Pool.parallel_map p
          (fun i ->
            List.fold_left ( + ) 0
              (Pool.parallel_map p (fun j -> (i * 10) + j) [ 0; 1; 2; 3 ]))
          [ 0; 1; 2; 3; 4 ]
      in
      check Alcotest.(list int) "nested sums" expected got;
      (* three levels deep for good measure *)
      let deep =
        Pool.parallel_map p
          (fun i ->
            let a, b =
              Pool.both p
                (fun () ->
                  Array.fold_left ( + ) 0 (Pool.parallel_init p 10 Fun.id))
                (fun () -> i)
            in
            a + b)
          [ 1; 2; 3 ]
      in
      check Alcotest.(list int) "three levels" [ 46; 47; 48 ] deep)

let test_with_pool_shuts_down () =
  let escaped = ref None in
  let result = Pool.with_pool ~domains:2 (fun p -> escaped := Some p; 99) in
  check Alcotest.int "returns body value" 99 result;
  (match !escaped with
  | None -> Alcotest.fail "body did not run"
  | Some p ->
      Alcotest.check_raises "shut down on exit"
        (Invalid_argument "Parallel.Pool: pool has been shut down")
        (fun () -> ignore (Pool.parallel_map p Fun.id [ 1 ])));
  (* shutdown also happens when the body raises *)
  let escaped = ref None in
  (try
     Pool.with_pool ~domains:2 (fun p ->
         escaped := Some p;
         failwith "escape")
   with Failure _ -> ());
  match !escaped with
  | None -> Alcotest.fail "body did not run"
  | Some p ->
      Alcotest.check_raises "shut down on exception"
        (Invalid_argument "Parallel.Pool: pool has been shut down")
        (fun () -> ignore (Pool.parallel_map p Fun.id [ 1 ]))

(* --- the engine on top of the pool ---------------------------------- *)

let sim_list = Alcotest.testable Simlist.Sim_list.pp Simlist.Sim_list.equal

let store () =
  let rng = Workload.Rng.make 1234 in
  Workload.Movies.random_store rng ~videos:2 ~branching:4 ~object_pool:4 ()

let present_formula ty =
  let open Htl.Ast in
  Exists
    ( "u",
      And
        ( Atom (Present "u"),
          Atom (Cmp (Eq, Obj_attr ("type", "u"), Const (Metadata.Value.Str ty)))
        ) )

let batch_formulas =
  let open Htl.Ast in
  [
    present_formula "man";
    Until (present_formula "woman", present_formula "train");
    Eventually (present_formula "gun");
    And (Atom True, present_formula "car");
  ]

let test_run_batch () =
  let store = store () in
  let seq_ctx = Context.of_store store in
  let expected = List.map (Query.run seq_ctx) batch_formulas in
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun p ->
          (* pool via the context, forced past the cutoff *)
          let ctx = Context.with_pool ~par_cutoff:0 (Context.of_store store) p in
          let got = Query.run_batch ctx batch_formulas in
          List.iter2
            (fun e g ->
              match g with
              | Ok l -> check sim_list (Printf.sprintf "ctx pool d=%d" d) e l
              | Error m -> Alcotest.fail ("unexpected batch error: " ^ m))
            expected got;
          (* pool as the explicit argument, pool-less context *)
          let got = Query.run_batch ~pool:p (Context.of_store store) batch_formulas in
          List.iter2
            (fun e g ->
              match g with
              | Ok l -> check sim_list (Printf.sprintf "arg pool d=%d" d) e l
              | Error m -> Alcotest.fail ("unexpected batch error: " ^ m))
            expected got))
    sizes

let test_run_batch_error_isolation () =
  let store = store () in
  let bad = Htl.Ast.Or (Htl.Ast.Atom Htl.Ast.True, Htl.Ast.Atom Htl.Ast.True) in
  Pool.with_pool ~domains:4 (fun p ->
      let ctx = Context.with_pool ~par_cutoff:0 (Context.of_store store) p in
      let good = present_formula "man" in
      match Query.run_batch ctx [ good; bad; good ] with
      | [ Ok a; Error _; Ok b ] ->
          check sim_list "good results intact" a b;
          check sim_list "matches direct run" (Query.run ctx good) a
      | results ->
          Alcotest.fail
            (Printf.sprintf "expected [Ok; Error; Ok], got %d results with %d errors"
               (List.length results)
               (List.length
                  (List.filter (function Error _ -> true | Ok _ -> false) results))))

let test_cache_concurrency () =
  (* many concurrent queries sharing one cache: counters must stay
     coherent and results identical to sequential evaluation *)
  let store = store () in
  let expected = List.map (Query.run (Context.of_store store)) batch_formulas in
  Pool.with_pool ~domains:4 (fun p ->
      let ctx = Context.with_pool ~par_cutoff:0 (Context.of_store store) p in
      for _round = 1 to 5 do
        let got =
          Pool.parallel_map p (fun f -> Query.run ctx f)
            (batch_formulas @ batch_formulas @ batch_formulas)
        in
        List.iteri
          (fun i l ->
            check sim_list
              (Printf.sprintf "query %d" i)
              (List.nth expected (i mod List.length expected))
              l)
          got
      done;
      match Query.cache_stats ctx with
      | None -> Alcotest.fail "cache unexpectedly disabled"
      | Some s ->
          Alcotest.(check bool) "hits accumulated" true (s.Cache.hits > 0);
          Alcotest.(check bool) "occupancy sane" true
            (s.Cache.entries >= 0 && s.Cache.misses >= s.Cache.entries))

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "create rejects domains < 1" `Quick test_create_invalid;
        Alcotest.test_case "domain_count" `Quick test_domain_count;
        Alcotest.test_case "shutdown is idempotent and final" `Quick test_shutdown;
        Alcotest.test_case "parallel_map = List.map" `Quick test_parallel_map;
        Alcotest.test_case "parallel_init = Array.init" `Quick test_parallel_init;
        Alcotest.test_case "map_range chunks cover the range" `Quick test_map_range;
        Alcotest.test_case "iter_chunks writes disjoint slots" `Quick test_iter_chunks;
        Alcotest.test_case "both" `Quick test_both;
        Alcotest.test_case "exceptions propagate, pool survives" `Quick
          test_exception_propagation;
        Alcotest.test_case "nested batches on one pool" `Quick test_nested;
        Alcotest.test_case "with_pool shuts down" `Quick test_with_pool_shuts_down;
        Alcotest.test_case "run_batch matches sequential runs" `Quick test_run_batch;
        Alcotest.test_case "run_batch isolates per-query errors" `Quick
          test_run_batch_error_isolation;
        Alcotest.test_case "shared cache under concurrency" `Quick
          test_cache_concurrency;
      ] );
  ]
