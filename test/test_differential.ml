(* Cross-backend differential test harness.

   For randomly generated closed HTL formulas (stratified over the type
   (1), type (2) and conjunctive fragments; see Helpers for the
   generators and the shrinker), the four evaluators must agree segment
   by segment within a 1e-9 float tolerance:

     - Reference.similarity_over_level  (the naive per-id oracle)
     - Direct with caching disabled     (cold)
     - Direct with the subformula cache (first run populates, second run
       answers from cache — both must be identical to cold)
     - the SQL backend

   This is the correctness harness for the memoizing evaluation layer:
   a cache bug (bad key, stale entry, broken LRU relink) shows up here as
   a warm/cold divergence on some generated formula. *)

open Engine
module Sim_list = Simlist.Sim_list

let tolerance = 1e-9

let fail_diff ~backend ~formula ~id ~expected ~got =
  QCheck.Test.fail_reportf
    "%s disagrees with the reference on %s at id %d: expected %.12g, got %.12g"
    backend
    (Htl.Pretty.to_string formula)
    id expected got

(* Evaluate [f] through all four evaluators over [ctx] (which has its
   private cache enabled) and cross-check everything. *)
let differential ctx f =
  let cold_ctx = Context.without_cache ctx in
  let oracle = Reference.similarity_over_level cold_ctx f in
  let n = Array.length oracle in
  let against_oracle backend list =
    let dense = Sim_list.to_dense ~n list in
    Array.iteri
      (fun i s ->
        let expected = Simlist.Sim.actual s in
        if Float.abs (expected -. dense.(i)) > tolerance then
          fail_diff ~backend ~formula:f ~id:(i + 1) ~expected ~got:dense.(i))
      oracle
  in
  let cold = Query.run cold_ctx f in
  let warm_fill = Query.run ctx f in
  let warm_hit = Query.run ctx f in
  let sql = Query.run ~backend:Query.Sql_backend_choice cold_ctx f in
  against_oracle "direct (no cache)" cold;
  against_oracle "direct (cache, filling)" warm_fill;
  against_oracle "direct (cache, warm)" warm_hit;
  against_oracle "sql" sql;
  (* the three direct evaluations run the same algorithms, so they must
     agree exactly, not just within tolerance *)
  if not (Sim_list.equal cold warm_fill) then
    QCheck.Test.fail_reportf "cache-filling run differs from cold on %s"
      (Htl.Pretty.to_string f);
  if not (Sim_list.equal warm_fill warm_hit) then
    QCheck.Test.fail_reportf "warm (cached) run differs from cold on %s"
      (Htl.Pretty.to_string f);
  (match Query.cache_stats ctx with
  | Some s when s.Cache.hits = 0 ->
      QCheck.Test.fail_reportf
        "re-evaluating %s never hit the cache (stats %s)"
        (Htl.Pretty.to_string f)
        (Format.asprintf "%a" Cache.pp_stats s)
  | Some _ -> ()
  | None -> QCheck.Test.fail_reportf "context unexpectedly has no cache");
  true

(* --- the store strata ---------------------------------------------------- *)

let store_of_seed ?(videos = 1) seed =
  let rng = Workload.Rng.make seed in
  Workload.Movies.random_store rng ~videos ~branching:4 ~object_pool:4 ()

let store_prop ?videos (seed, f) =
  let ctx = Context.of_store (store_of_seed ?videos seed) in
  differential ctx f

(* --- the precomputed-table stratum (the §4.2 setting) --------------------- *)

let table_names = [ "p1"; "p2"; "p3" ]

let table_prop (seed, f) =
  let rng = Workload.Rng.make seed in
  let n = 10 + Workload.Rng.int rng 40 in
  let ctx =
    Workload.Synthetic.context_with_atoms ~seed:(seed + 1) ~n ~selectivity:0.4
      table_names
  in
  (* the shrinker may propose [true], which store-less contexts cannot
     resolve to a table; treat unsupported formulas as vacuously passing
     so shrinking stays inside the supported space *)
  match differential ctx f with
  | ok -> ok
  | exception Query.Error _ -> true

(* --- parallel vs sequential ---------------------------------------------- *)

(* One pool per size, shared by all the property runs (spawning domains
   per QCheck iteration would dominate the suite's runtime).  The pools
   are pure schedulers, so sharing them cannot couple the test cases. *)
let pools =
  lazy (List.map (fun d -> Parallel.Pool.create ~domains:d ()) [ 1; 2; 4 ])

let () =
  at_exit (fun () ->
      if Lazy.is_val pools then
        List.iter Parallel.Pool.shutdown (Lazy.force pools))

(* The parallel evaluator must be observationally identical to the
   sequential one: same similarity list, or the same refusal.  Exercised
   with the cutoff forced to 0 so every parallel code path triggers even
   on the tiny generated stores, across pool sizes 1/2/4, cache on and
   off. *)
let parallel_differential ctx f =
  let outcome ctx =
    match Query.run ctx f with
    | list -> Ok list
    | exception Query.Error msg -> Error msg
  in
  let seq = outcome (Context.without_cache ctx) in
  List.iter
    (fun pool ->
      let pctx = Context.with_pool ~par_cutoff:0 ctx pool in
      List.iter
        (fun (label, pctx) ->
          match (seq, outcome pctx) with
          | Ok a, Ok b ->
              if not (Sim_list.equal a b) then
                QCheck.Test.fail_reportf
                  "parallel (%s, %d domains) differs from sequential on %s"
                  label
                  (Parallel.Pool.domain_count pool)
                  (Htl.Pretty.to_string f)
          | Error _, Error _ -> ()
          | Ok _, Error msg ->
              QCheck.Test.fail_reportf
                "parallel (%s, %d domains) refused %s that sequential \
                 accepted: %s"
                label
                (Parallel.Pool.domain_count pool)
                (Htl.Pretty.to_string f) msg
          | Error msg, Ok _ ->
              QCheck.Test.fail_reportf
                "parallel (%s, %d domains) accepted %s that sequential \
                 refused: %s"
                label
                (Parallel.Pool.domain_count pool)
                (Htl.Pretty.to_string f) msg)
        [ ("no cache", Context.without_cache pctx); ("cache", pctx) ])
    (Lazy.force pools);
  true

let par_store_prop ?videos (seed, f) =
  let ctx = Context.of_store (store_of_seed ?videos seed) in
  parallel_differential ctx f

let par_table_prop (seed, f) =
  let rng = Workload.Rng.make seed in
  let n = 10 + Workload.Rng.int rng 40 in
  let ctx =
    Workload.Synthetic.context_with_atoms ~seed:(seed + 1) ~n ~selectivity:0.4
      table_names
  in
  parallel_differential ctx f

(* --- traced vs untraced ---------------------------------------------------

   Attaching a tracer and a metrics registry must be observationally
   invisible: same similarity list (exactly — the instrumented code path
   runs the same algorithms), or the same refusal, on both backends.
   Every recorded span must also come back closed, or the recorder
   leaked an open span past Query.run. *)
let traced_differential ctx f =
  let outcome ctx backend =
    match Query.run ~backend ctx f with
    | list -> Ok list
    | exception Query.Error msg -> Error msg
  in
  List.iter
    (fun (bname, backend) ->
      let plain = outcome ctx backend in
      let tracer = Obs.Trace.create () in
      let tctx =
        Context.with_metrics
          (Context.with_tracer (Context.with_fresh_cache ctx) tracer)
          (Obs.Metrics.create ())
      in
      (match (plain, outcome tctx backend) with
      | Ok a, Ok b ->
          if not (Sim_list.equal a b) then
            QCheck.Test.fail_reportf "tracing changes %s's result on %s" bname
              (Htl.Pretty.to_string f)
      | Error _, Error _ -> ()
      | Ok _, Error msg ->
          QCheck.Test.fail_reportf
            "traced %s refused %s that untraced accepted: %s" bname
            (Htl.Pretty.to_string f) msg
      | Error msg, Ok _ ->
          QCheck.Test.fail_reportf
            "traced %s accepted %s that untraced refused: %s" bname
            (Htl.Pretty.to_string f) msg);
      List.iter
        (fun (s : Obs.Trace.span) ->
          if Float.is_nan s.Obs.Trace.stop_s then
            QCheck.Test.fail_reportf "span %s left open after %s on %s"
              s.Obs.Trace.name bname
              (Htl.Pretty.to_string f))
        (Obs.Trace.spans tracer))
    [ ("direct", Query.Direct_backend); ("sql", Query.Sql_backend_choice) ];
  true

let traced_store_prop ?videos (seed, f) =
  let ctx = Context.of_store (store_of_seed ?videos seed) in
  traced_differential ctx f

(* --- accounted vs plain ----------------------------------------------------

   The slow-query log (with a metrics registry feeding its scan deltas)
   must be as invisible as a tracer: same similarity list or the same
   refusal on both backends.  With the threshold at 0 every run must
   also leave exactly one record, carrying the formula's hash-consed
   fingerprint and an error field that agrees with the outcome. *)
let accounted_differential ctx f =
  let outcome ctx backend =
    match Query.run ~backend ctx f with
    | list -> Ok list
    | exception Query.Error msg -> Error msg
  in
  List.iter
    (fun (bname, backend) ->
      let plain = outcome ctx backend in
      let ql = Obs.Querylog.create ~threshold_s:0. () in
      let qctx =
        Context.with_querylog
          (Context.with_metrics (Context.with_fresh_cache ctx)
             (Obs.Metrics.create ()))
          ql
      in
      (match (plain, outcome qctx backend) with
      | Ok a, Ok b ->
          if not (Sim_list.equal a b) then
            QCheck.Test.fail_reportf "accounting changes %s's result on %s"
              bname
              (Htl.Pretty.to_string f)
      | Error _, Error _ -> ()
      | Ok _, Error msg ->
          QCheck.Test.fail_reportf
            "accounted %s refused %s that plain accepted: %s" bname
            (Htl.Pretty.to_string f) msg
      | Error msg, Ok _ ->
          QCheck.Test.fail_reportf
            "accounted %s accepted %s that plain refused: %s" bname
            (Htl.Pretty.to_string f) msg);
      match Obs.Querylog.records ql with
      | [ r ] ->
          if r.Obs.Querylog.formula_id <> Htl.Hcons.intern_id f then
            QCheck.Test.fail_reportf
              "slow-log fingerprint %d does not match %s (id %d)"
              r.Obs.Querylog.formula_id
              (Htl.Pretty.to_string f)
              (Htl.Hcons.intern_id f);
          if Option.is_some r.Obs.Querylog.error <> Result.is_error plain then
            QCheck.Test.fail_reportf
              "slow-log error field disagrees with %s's outcome on %s" bname
              (Htl.Pretty.to_string f);
          if r.Obs.Querylog.latency_s < 0. then
            QCheck.Test.fail_reportf "negative latency recorded on %s"
              (Htl.Pretty.to_string f)
      | rs ->
          QCheck.Test.fail_reportf
            "%s left %d slow-log records for one query on %s" bname
            (List.length rs)
            (Htl.Pretty.to_string f))
    [ ("direct", Query.Direct_backend); ("sql", Query.Sql_backend_choice) ];
  true

let accounted_store_prop ?videos (seed, f) =
  let ctx = Context.of_store (store_of_seed ?videos seed) in
  accounted_differential ctx f

(* --- pruned vs full scan ---------------------------------------------------

   Candidate pruning through the finalized index must be observationally
   identical to the full scan it replaces: same similarity list (exactly
   — segments outside a sound candidate set contribute credit 0), or the
   same refusal, on both backends, sequentially and across pool sizes
   1/2 with the cutoff forced to 0.  A pruning bug (unsound candidate
   plan, broken galloping intersection, stale postings) shows up here as
   a pruned/full divergence on some generated formula. *)
let pruning_differential store f =
  let outcome ctx backend =
    match Query.run ~backend ctx f with
    | list -> Ok list
    | exception Query.Error msg -> Error msg
  in
  let full_config =
    { Picture.Retrieval.default_config with prune = false }
  in
  let pruned = Context.of_store store in
  let full = Context.of_store ~config:full_config store in
  let variants ctx =
    (Context.without_cache ctx, "sequential")
    :: List.map
         (fun pool ->
           ( Context.with_pool ~par_cutoff:0 (Context.without_cache ctx) pool,
             Printf.sprintf "%d domains" (Parallel.Pool.domain_count pool) ))
         (List.filteri (fun i _ -> i < 2) (Lazy.force pools))
  in
  List.iter
    (fun (bname, backend) ->
      List.iter2
        (fun (pctx, label) (fctx, _) ->
          match (outcome pctx backend, outcome fctx backend) with
          | Ok a, Ok b ->
              if not (Sim_list.equal a b) then
                QCheck.Test.fail_reportf
                  "pruned (%s, %s) differs from full scan on %s" bname label
                  (Htl.Pretty.to_string f)
          | Error _, Error _ -> ()
          | Ok _, Error msg ->
              QCheck.Test.fail_reportf
                "full scan (%s, %s) refused %s that pruned accepted: %s" bname
                label
                (Htl.Pretty.to_string f)
                msg
          | Error msg, Ok _ ->
              QCheck.Test.fail_reportf
                "pruned (%s, %s) refused %s that full scan accepted: %s" bname
                label
                (Htl.Pretty.to_string f)
                msg)
        (variants pruned) (variants full))
    [ ("direct", Query.Direct_backend); ("sql", Query.Sql_backend_choice) ];
  true

let pruning_store_prop ?videos (seed, f) =
  pruning_differential (store_of_seed ?videos seed) f

(* --- streaming ingestion ---------------------------------------------------

   Random interleavings of appends, effective edits and no-op mutations
   against a long-lived context — and a sharded deployment mirroring
   every mutation — must agree byte for byte, at every query point, with
   a from-scratch rebuild of the store: the one evaluator that cannot
   hold a stale cache entry or index posting.  This is the correctness
   harness for the incremental-ingestion layer; a delta-merge bug, an
   over-surviving cache entry, or a mis-routed shard append shows up as
   a live/rebuild divergence on some interleaving. *)

module Sharded = Htl_shard.Sharded

let streaming_differential ~seed store f =
  let ctx = Context.of_store store in
  let sh = Sharded.create ~shards:2 store in
  let rng = Workload.Rng.make (seed + 7919) in
  let leaf = Video_model.Store.levels store in
  let check step =
    let rebuilt =
      Context.without_cache
        (Context.of_store
           (Video_model.Store.create (Video_model.Store.current_videos store)))
    in
    List.iter
      (fun (bname, backend) ->
        let outcome run =
          match run () with
          | list -> Ok list
          | exception Query.Error msg -> Error msg
        in
        let oracle = outcome (fun () -> Query.run ~backend rebuilt f) in
        let agree what r =
          match (oracle, r) with
          | Ok a, Ok b ->
              if not (Sim_list.equal a b) then
                QCheck.Test.fail_reportf
                  "%s (%s) differs from the from-scratch rebuild after %d \
                   mutations on %s"
                  what bname step
                  (Htl.Pretty.to_string f)
          | Error _, Error _ -> ()
          | _ ->
              QCheck.Test.fail_reportf
                "%s (%s) changes the outcome class after %d mutations on %s"
                what bname step
                (Htl.Pretty.to_string f)
        in
        agree "live context" (outcome (fun () -> Query.run ~backend ctx f));
        agree "sharded" (outcome (fun () -> Sharded.run ~backend sh f)))
      [ ("direct", Query.Direct_backend); ("sql", Query.Sql_backend_choice) ]
  in
  (* Apply the same mutation to the plain store and the sharded mirror;
     contiguous partitioning preserves global ids, so the arguments
     coincide. *)
  let mutate () =
    let id () =
      1 + Workload.Rng.int rng (Video_model.Store.count_at store ~level:leaf)
    in
    match Workload.Rng.int rng 4 with
    | 0 ->
        let metas =
          List.init
            (1 + Workload.Rng.int rng 2)
            (fun _ -> Workload.Movies.random_meta rng ~object_pool:4)
        in
        Video_model.Store.append_segments store metas;
        Sharded.append_segments sh metas
    | 1 ->
        let id = id () in
        let v = Metadata.Value.Str (Workload.Rng.pick rng [ "calm"; "tense" ]) in
        Video_model.Store.set_attr store ~level:leaf ~id ~name:"mood" v;
        Sharded.set_attr sh ~level:leaf ~id ~name:"mood" v
    | 2 ->
        let id = id () in
        Video_model.Store.update_meta store ~level:leaf ~id ~f:Fun.id;
        Sharded.update_meta sh ~level:leaf ~id ~f:Fun.id
    | _ ->
        let id = id () in
        Video_model.Store.remove_attr store ~level:leaf ~id ~name:"absent";
        Sharded.remove_attr sh ~level:leaf ~id ~name:"absent"
  in
  check 0;
  let steps = ref 0 in
  for _round = 1 to 3 do
    for _ = 1 to 1 + Workload.Rng.int rng 2 do
      mutate ();
      incr steps
    done;
    check !steps
  done;
  true

let streaming_store_prop ?videos (seed, f) =
  streaming_differential ~seed (store_of_seed ?videos seed) f

let traced_table_prop (seed, f) =
  let rng = Workload.Rng.make seed in
  let n = 10 + Workload.Rng.int rng 40 in
  let ctx =
    Workload.Synthetic.context_with_atoms ~seed:(seed + 1) ~n ~selectivity:0.4
      table_names
  in
  traced_differential ctx f

let accounted_table_prop (seed, f) =
  let rng = Workload.Rng.make seed in
  let n = 10 + Workload.Rng.int rng 40 in
  let ctx =
    Workload.Synthetic.context_with_atoms ~seed:(seed + 1) ~n ~selectivity:0.4
      table_names
  in
  accounted_differential ctx f

let suites =
  [
    ( "differential",
      [
        Helpers.qtest ~count:120 "reference = direct = cached = sql (tables)"
          table_prop
          (Helpers.arb_table_formula ~names:table_names ());
        Helpers.qtest ~count:60 "reference = direct = cached = sql (type 1)"
          (store_prop ~videos:2)
          (Helpers.arb_store_formula Helpers.gen_type1_formula);
        Helpers.qtest ~count:60 "reference = direct = cached = sql (type 2)"
          store_prop
          (Helpers.arb_store_formula Helpers.gen_type2_formula);
        Helpers.qtest ~count:60
          "reference = direct = cached = sql (conjunctive)" store_prop
          (Helpers.arb_store_formula Helpers.gen_conjunctive_formula);
        Helpers.qtest ~count:60 "reference = direct = cached = sql (mixed)"
          store_prop
          (Helpers.arb_store_formula Helpers.gen_closed_formula);
        Helpers.qtest ~count:60 "parallel = sequential (tables)" par_table_prop
          (Helpers.arb_table_formula ~names:table_names ());
        Helpers.qtest ~count:40 "parallel = sequential (type 1)"
          (par_store_prop ~videos:2)
          (Helpers.arb_store_formula Helpers.gen_type1_formula);
        Helpers.qtest ~count:40 "parallel = sequential (type 2)" par_store_prop
          (Helpers.arb_store_formula Helpers.gen_type2_formula);
        Helpers.qtest ~count:40 "parallel = sequential (conjunctive)"
          par_store_prop
          (Helpers.arb_store_formula Helpers.gen_conjunctive_formula);
        Helpers.qtest ~count:40 "parallel = sequential (mixed)" par_store_prop
          (Helpers.arb_store_formula Helpers.gen_closed_formula);
        Helpers.qtest ~count:40 "pruned = full scan (type 1)"
          (pruning_store_prop ~videos:2)
          (Helpers.arb_store_formula Helpers.gen_type1_formula);
        Helpers.qtest ~count:40 "pruned = full scan (type 2)"
          pruning_store_prop
          (Helpers.arb_store_formula Helpers.gen_type2_formula);
        Helpers.qtest ~count:40 "pruned = full scan (conjunctive)"
          pruning_store_prop
          (Helpers.arb_store_formula Helpers.gen_conjunctive_formula);
        Helpers.qtest ~count:40 "pruned = full scan (mixed)"
          pruning_store_prop
          (Helpers.arb_store_formula Helpers.gen_closed_formula);
        Helpers.qtest ~count:30 "streaming: live = rebuild (type 1)"
          (streaming_store_prop ~videos:2)
          (Helpers.arb_store_formula Helpers.gen_type1_formula);
        Helpers.qtest ~count:30 "streaming: live = rebuild (mixed)"
          (streaming_store_prop ~videos:2)
          (Helpers.arb_store_formula Helpers.gen_closed_formula);
        Helpers.qtest ~count:40 "traced = untraced (tables)" traced_table_prop
          (Helpers.arb_table_formula ~names:table_names ());
        Helpers.qtest ~count:30 "traced = untraced (type 1)"
          (traced_store_prop ~videos:2)
          (Helpers.arb_store_formula Helpers.gen_type1_formula);
        Helpers.qtest ~count:30 "traced = untraced (type 2)" traced_store_prop
          (Helpers.arb_store_formula Helpers.gen_type2_formula);
        Helpers.qtest ~count:30 "traced = untraced (conjunctive)"
          traced_store_prop
          (Helpers.arb_store_formula Helpers.gen_conjunctive_formula);
        Helpers.qtest ~count:40 "accounted = plain (tables)"
          accounted_table_prop
          (Helpers.arb_table_formula ~names:table_names ());
        Helpers.qtest ~count:30 "accounted = plain (mixed)"
          (accounted_store_prop ~videos:2)
          (Helpers.arb_store_formula Helpers.gen_closed_formula);
      ] );
  ]
