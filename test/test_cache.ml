(* Tests for the memoizing evaluation layer: hash-consing, the store
   version stamp, cache invalidation on annotation edits, LRU eviction
   under a tiny capacity, and the observability counters. *)

open Engine
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table
module Store = Video_model.Store

let parse = Htl.Parser.formula_of_string
let sim_list = Alcotest.testable Sim_list.pp Sim_list.equal

(* --- hash-consing --------------------------------------------------------- *)

let hcons_tests =
  let open Alcotest in
  [
    test_case "structurally equal formulas intern to the same id" `Quick
      (fun () ->
        let f () = parse "p1 and eventually (p2 until p3)" in
        check int "same id" (Htl.Hcons.intern_id (f ()))
          (Htl.Hcons.intern_id (f ()));
        check bool "equal_ast" true (Htl.Hcons.equal_ast (f ()) (f ())));
    test_case "distinct formulas intern to distinct ids" `Quick (fun () ->
        check bool "different" false
          (Htl.Hcons.intern_id (parse "p1 and p2")
          = Htl.Hcons.intern_id (parse "p2 and p1"));
        check bool "binder name matters" false
          (Htl.Hcons.intern_id (parse "exists x . present(x)")
          = Htl.Hcons.intern_id (parse "exists y . present(y)")));
    test_case "shared subtrees intern once" `Quick (fun () ->
        let before = Htl.Hcons.interned_count () in
        let sub = "(p1 until p2)" in
        ignore
          (Htl.Hcons.intern (parse (sub ^ " and eventually " ^ sub)));
        let grown = Htl.Hcons.interned_count () - before in
        (* p1, p2, the until, the eventually and the and — never two
           copies of the shared until subtree *)
        check bool "at most 5 new nodes" true (grown <= 5));
    test_case "handles are O(1)-comparable and hash-stable" `Quick (fun () ->
        let h1 = Htl.Hcons.intern (parse "p1 until p2") in
        let h2 = Htl.Hcons.intern (parse "p1 until p2") in
        check bool "equal" true (Htl.Hcons.equal h1 h2);
        check int "compare 0" 0 (Htl.Hcons.compare h1 h2);
        check int "same hash" (Htl.Hcons.hash h1) (Htl.Hcons.hash h2));
  ]

(* --- a tiny editable store ------------------------------------------------- *)

let meta_with ?(objects = []) ?(attrs = []) () =
  Metadata.Seg_meta.make ~objects ~attrs ()

let man ~id = Metadata.Entity.make ~id ~otype:"man" ()
let train ~id = Metadata.Entity.make ~id ~otype:"train" ()

let small_store () =
  let shots =
    [
      meta_with ~objects:[ man ~id:1 ] ();
      meta_with ~attrs:[ ("mood", Metadata.Value.Str "calm") ] ();
      meta_with ~objects:[ man ~id:1 ] ();
    ]
  in
  Store.of_video (Video_model.Video.two_level ~title:"edit-me" shots)

let q_train = "exists x . (present(x) and type(x) = \"train\")"

(* --- version stamp --------------------------------------------------------- *)

let version_tests =
  let open Alcotest in
  [
    test_case "fresh store has version 0" `Quick (fun () ->
        check int "version" 0 (Store.version (small_store ())));
    test_case "every mutation bumps the version" `Quick (fun () ->
        let s = small_store () in
        Store.add_object s ~level:2 ~id:2 (train ~id:9);
        check int "add_object" 1 (Store.version s);
        Store.remove_object s ~level:2 ~id:2 ~obj:9;
        check int "remove_object" 2 (Store.version s);
        Store.set_attr s ~level:2 ~id:1 ~name:"mood"
          (Metadata.Value.Str "tense");
        check int "set_attr" 3 (Store.version s);
        Store.remove_attr s ~level:2 ~id:1 ~name:"mood";
        check int "remove_attr" 4 (Store.version s);
        Store.update_meta s ~level:2 ~id:1 ~f:(fun m ->
            { m with Metadata.Seg_meta.attrs = [ ("x", Metadata.Value.Int 1) ] });
        check int "update_meta (effective)" 5 (Store.version s));
    test_case "no-op mutations are version-neutral" `Quick (fun () ->
        let s = small_store () in
        Store.update_meta s ~level:2 ~id:1 ~f:(fun m -> m);
        check int "identity update_meta" 0 (Store.version s);
        Store.update_meta s ~level:2 ~id:2 ~f:(fun m ->
            { m with Metadata.Seg_meta.attrs = m.Metadata.Seg_meta.attrs });
        check int "structurally equal rewrite" 0 (Store.version s);
        Store.remove_attr s ~level:2 ~id:1 ~name:"no-such-attr";
        check int "remove_attr of absent name" 0 (Store.version s);
        Store.remove_object s ~level:2 ~id:1 ~obj:999;
        check int "remove_object of absent object" 0 (Store.version s);
        Store.set_attr s ~level:2 ~id:2 ~name:"mood"
          (Metadata.Value.Str "calm");
        check int "set_attr to the current value" 0 (Store.version s));
    test_case "no-op mutations keep caches and indexes warm" `Quick (fun () ->
        let s = small_store () in
        let m = Obs.Metrics.create () in
        let ctx = Context.with_metrics (Context.of_store s) m in
        ignore (Query.run_string ctx q_train);
        let builds () =
          match List.assoc_opt "picture.index.builds" (Obs.Metrics.snapshot m)
          with
          | Some (Obs.Metrics.Counter n) -> n
          | _ -> 0
        in
        let builds0 = builds () in
        check bool "warmed" true (builds0 > 0);
        Store.update_meta s ~level:2 ~id:1 ~f:(fun x -> x);
        Store.remove_attr s ~level:2 ~id:2 ~name:"no-such-attr";
        Store.remove_object s ~level:2 ~id:3 ~obj:999;
        let hits_before =
          match Query.cache_stats ctx with
          | Some st -> st.Cache.hits
          | None -> Alcotest.fail "no cache"
        in
        ignore (Query.run_string ctx q_train);
        check int "no index rebuild" builds0 (builds ());
        match Query.cache_stats ctx with
        | Some st ->
            check bool "pure cache hits" true (st.Cache.hits > hits_before)
        | None -> Alcotest.fail "no cache");
    test_case "remove_object drops its relationships too" `Quick (fun () ->
        let s = small_store () in
        Store.add_object s ~level:2 ~id:1 (train ~id:9);
        Store.update_meta s ~level:2 ~id:1 ~f:(fun m ->
            {
              m with
              Metadata.Seg_meta.relationships =
                [ Metadata.Relationship.make "near" [ 1; 9 ] ];
            });
        Store.remove_object s ~level:2 ~id:1 ~obj:9;
        let m = Store.meta s ~level:2 ~id:1 in
        check int "relationships gone" 0
          (List.length m.Metadata.Seg_meta.relationships);
        check bool "man stays" true (Metadata.Seg_meta.present m 1));
  ]

(* --- invalidation: a query after a mutation never sees stale tables -------- *)

let fresh_eval store q =
  Query.run_string (Context.without_cache (Context.of_store store)) q

let invalidation_tests =
  let open Alcotest in
  [
    test_case "annotation add is visible through a warm cache" `Quick
      (fun () ->
        let s = small_store () in
        let ctx = Context.of_store s in
        let before = Query.run_string ctx q_train in
        check sim_list "agrees with fresh eval" (fresh_eval s q_train) before;
        (* warm the cache thoroughly, then edit *)
        ignore (Query.run_string ctx q_train);
        Store.add_object s ~level:2 ~id:2 (train ~id:9);
        let after = Query.run_string ctx q_train in
        check sim_list "recomputed, not stale" (fresh_eval s q_train) after;
        check bool "shot 2 scores higher once a train is present" true
          (Sim_list.value_at after 2 > Sim_list.value_at before 2));
    test_case "annotation remove is visible through a warm cache" `Quick
      (fun () ->
        let s = small_store () in
        let ctx = Context.of_store s in
        Store.add_object s ~level:2 ~id:2 (train ~id:9);
        let before = Query.run_string ctx q_train in
        ignore (Query.run_string ctx q_train);
        Store.remove_object s ~level:2 ~id:2 ~obj:9;
        let after = Query.run_string ctx q_train in
        check sim_list "recomputed, not stale" (fresh_eval s q_train) after;
        check bool "shot 2 scores lower once the train is gone" true
          (Sim_list.value_at after 2 < Sim_list.value_at before 2));
    test_case "segment attribute edits invalidate too" `Quick (fun () ->
        let s = small_store () in
        let ctx = Context.of_store s in
        let q = "seg.mood = \"tense\"" in
        ignore (Query.run_string ctx q);
        Store.set_attr s ~level:2 ~id:3 ~name:"mood"
          (Metadata.Value.Str "tense");
        let after = Query.run_string ctx q in
        check sim_list "recomputed, not stale" (fresh_eval s q) after;
        check bool "matches the edited shot" false (Sim_list.is_empty after));
    test_case "subformulas shared across queries hit the cache" `Quick
      (fun () ->
        let ctx = Context.of_store (small_store ()) in
        let q1 = "eventually (" ^ q_train ^ ")" in
        let q2 = "(exists x . (present(x) and type(x) = \"man\")) and \
                  eventually (" ^ q_train ^ ")" in
        ignore (Query.run_string ctx q1);
        let after_q1 =
          match Query.cache_stats ctx with
          | Some s -> s.Cache.hits
          | None -> Alcotest.fail "no cache"
        in
        ignore (Query.run_string ctx q2);
        (match Query.cache_stats ctx with
        | Some s ->
            check bool "q2 reused q1's eventually-subtree" true
              (s.Cache.hits > after_q1)
        | None -> Alcotest.fail "no cache"));
  ]

(* --- eviction under a tiny capacity ---------------------------------------- *)

let eviction_tests =
  let open Alcotest in
  [
    test_case "capacity-1 cache stays correct under eviction churn" `Quick
      (fun () ->
        let s = small_store () in
        let ctx = Context.of_store ~cache:(Cache.create ~capacity:1 ()) s in
        let queries =
          [
            q_train;
            "exists x . (present(x) and type(x) = \"man\")";
            "eventually (exists x . present(x))";
            "seg.mood = \"calm\"";
          ]
        in
        (* several passes so hits, misses and evictions all occur *)
        for _ = 1 to 3 do
          List.iter
            (fun q ->
              check sim_list q (fresh_eval s q) (Query.run_string ctx q))
            queries
        done;
        match Query.cache_stats ctx with
        | Some st ->
            check bool "evictions happened" true (st.Cache.evictions > 0);
            check int "never over capacity" 1 st.Cache.entries
        | None -> Alcotest.fail "no cache");
    test_case "LRU evicts the least recently used key" `Quick (fun () ->
        let c = Cache.create ~capacity:2 () in
        let extents = Simlist.Extent.single 4 in
        let key i = Cache.key ~formula:i ~level:1 ~extents in
        let table v =
          Sim_table.of_sim_list
            (Sim_list.of_entries ~max:1.
               [ (Simlist.Interval.make 1 1, v) ])
        in
        let probe k =
          match Cache.find c k ~version:0 ~valid:(fun ~stamp:_ -> true) with
          | Cache.Hit t | Cache.Survived t -> Some t
          | Cache.Stale | Cache.Absent -> None
        in
        Cache.add c (key 1) ~version:0 (table 0.25);
        Cache.add c (key 2) ~version:0 (table 0.5);
        ignore (probe (key 1));
        Cache.add c (key 3) ~version:0 (table 0.75);
        check bool "recently used key 1 survives" true
          (Option.is_some (probe (key 1)));
        check bool "LRU key 2 evicted" true (Option.is_none (probe (key 2)));
        let st = Cache.stats c in
        check int "one eviction" 1 st.Cache.evictions);
    test_case "entries survive or drop by the validity predicate" `Quick
      (fun () ->
        let c = Cache.create () in
        let extents = Simlist.Extent.single 4 in
        let t =
          Sim_table.of_sim_list
            (Sim_list.of_entries ~max:1. [ (Simlist.Interval.make 1 2, 1.) ])
        in
        let k = Cache.key ~formula:7 ~level:1 ~extents in
        Cache.add c k ~version:0 t;
        (* same version: a plain hit, the predicate is not consulted *)
        (match
           Cache.find c k ~version:0 ~valid:(fun ~stamp:_ ->
               Alcotest.fail "predicate consulted on a version-equal hit")
         with
        | Cache.Hit _ -> ()
        | _ -> Alcotest.fail "expected Hit");
        (* newer version, benign changes: survives and is restamped *)
        let seen = ref (-1) in
        (match
           Cache.find c k ~version:3 ~valid:(fun ~stamp ->
               seen := stamp;
               true)
         with
        | Cache.Survived _ -> ()
        | _ -> Alcotest.fail "expected Survived");
        check int "predicate saw the original stamp" 0 !seen;
        check int "one survival" 1 (Cache.survivals c);
        (* restamped: probing at version 3 again is a plain hit *)
        (match
           Cache.find c k ~version:3 ~valid:(fun ~stamp:_ ->
               Alcotest.fail "restamp not applied")
         with
        | Cache.Hit _ -> ()
        | _ -> Alcotest.fail "expected Hit after restamp");
        (* invalidating change: dropped on probe, then absent *)
        (match Cache.find c k ~version:4 ~valid:(fun ~stamp:_ -> false) with
        | Cache.Stale -> ()
        | _ -> Alcotest.fail "expected Stale");
        check int "one stale drop" 1 (Cache.stale_drops c);
        (match Cache.find c k ~version:4 ~valid:(fun ~stamp:_ -> true) with
        | Cache.Absent -> ()
        | _ -> Alcotest.fail "expected Absent after the drop");
        (* different extent partition is a different key *)
        Cache.add c k ~version:4 t;
        match
          Cache.find c
            (Cache.key ~formula:7 ~level:1
               ~extents:(Simlist.Extent.of_lengths [ 2; 2 ]))
            ~version:4
            ~valid:(fun ~stamp:_ -> true)
        with
        | Cache.Absent -> ()
        | _ -> Alcotest.fail "expected other extents to miss");
  ]

(* --- extent-scoped survival across appends ---------------------------------- *)

let fresh_eval_at store ~level q =
  let ctx =
    Context.with_level
      (Context.without_cache (Context.of_store store))
      ~level
      ~extents:(Store.extents_at store ~level)
  in
  Query.run_string ctx q

let survival_tests =
  let open Alcotest in
  [
    test_case "appended segments are visible to a tracked context" `Quick
      (fun () ->
        let s = small_store () in
        let ctx = Context.of_store s in
        ignore (Query.run_string ctx q_train);
        Store.append_segments s [ meta_with ~objects:[ train ~id:9 ] () ];
        let after = Query.run_string ctx q_train in
        check sim_list "agrees with fresh eval" (fresh_eval s q_train) after;
        check bool "the appended shot scores" true
          (Sim_list.value_at after 4 > 0.));
    test_case "leaf appends keep non-descending upper-level entries warm"
      `Quick (fun () ->
        let s = small_store () in
        let ctx =
          Context.with_level (Context.of_store s) ~level:1
            ~extents:(Store.extents_at s ~level:1)
        in
        let q = "seg.kind = \"movie\"" in
        ignore (Query.run_string ctx q);
        let c =
          match Context.cache ctx with
          | Some c -> c
          | None -> Alcotest.fail "no cache"
        in
        let surv0 = Cache.survivals c in
        (* the append bumps the version, but touches only level 2: the
           level-1 entry reads nothing an append can change *)
        Store.append_segments s [ meta_with () ];
        check sim_list "still correct" (fresh_eval_at s ~level:1 q)
          (Query.run_string ctx q);
        check bool "entry survived the version bump" true
          (Cache.survivals c > surv0);
        check int "nothing dropped" 0 (Cache.stale_drops c));
    test_case "leaf appends invalidate descending entries" `Quick (fun () ->
        let s = small_store () in
        let ctx =
          Context.with_level (Context.of_store s) ~level:1
            ~extents:(Store.extents_at s ~level:1)
        in
        let q = "at next level (eventually (" ^ q_train ^ "))" in
        ignore (Query.run_string ctx q);
        let c =
          match Context.cache ctx with
          | Some c -> c
          | None -> Alcotest.fail "no cache"
        in
        Store.append_segments s [ meta_with ~objects:[ train ~id:9 ] () ];
        let after = Query.run_string ctx q in
        check sim_list "recomputed over the appended leaf"
          (fresh_eval_at s ~level:1 q) after;
        check bool "descending entries dropped" true (Cache.stale_drops c > 0));
    test_case "edits at the leaf keep upper-level entries warm" `Quick
      (fun () ->
        let s = small_store () in
        let ctx =
          Context.with_level (Context.of_store s) ~level:1
            ~extents:(Store.extents_at s ~level:1)
        in
        let q = "seg.kind = \"movie\"" in
        ignore (Query.run_string ctx q);
        let c =
          match Context.cache ctx with
          | Some c -> c
          | None -> Alcotest.fail "no cache"
        in
        let surv0 = Cache.survivals c in
        Store.set_attr s ~level:2 ~id:1 ~name:"mood"
          (Metadata.Value.Str "tense");
        ignore (Query.run_string ctx q);
        check bool "survived the deeper edit" true (Cache.survivals c > surv0));
  ]

(* --- counters -------------------------------------------------------------- *)

let counter_tests =
  let open Alcotest in
  [
    test_case "hits/misses/evictions are observable from the Query API"
      `Quick (fun () ->
        let ctx = Context.of_store (small_store ()) in
        ignore (Query.run_string ctx q_train);
        (match Query.cache_stats ctx with
        | Some st ->
            check bool "cold run misses" true (st.Cache.misses > 0);
            check int "cold run never hits" 0 st.Cache.hits
        | None -> Alcotest.fail "no cache");
        ignore (Query.run_string ctx q_train);
        (match Query.cache_stats ctx with
        | Some st -> check bool "warm run hits" true (st.Cache.hits > 0)
        | None -> Alcotest.fail "no cache");
        Query.reset_cache_stats ctx;
        match Query.cache_stats ctx with
        | Some st ->
            check int "reset hits" 0 st.Cache.hits;
            check int "reset misses" 0 st.Cache.misses;
            check bool "entries survive a stats reset" true (st.Cache.entries > 0)
        | None -> Alcotest.fail "no cache");
    test_case "without_cache reports no stats and stays correct" `Quick
      (fun () ->
        let s = small_store () in
        let ctx = Context.without_cache (Context.of_store s) in
        check bool "no stats" true (Option.is_none (Query.cache_stats ctx));
        check sim_list "same answer" (fresh_eval s q_train)
          (Query.run_string ctx q_train));
  ]

let suites =
  [
    ("cache.hcons", hcons_tests);
    ("cache.version", version_tests);
    ("cache.invalidation", invalidation_tests);
    ("cache.eviction", eviction_tests);
    ("cache.survival", survival_tests);
    ("cache.counters", counter_tests);
  ]
