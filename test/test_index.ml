(* Tests for the persistent metadata index subsystem: the galloping set
   operations, the finalized posting families, the store-version-stamped
   registry, and the invariant the candidate-pruning pass rests on —
   pruned evaluation is observationally identical to a full scan. *)

module Store = Video_model.Store
module Index = Picture.Index
module Pruning = Picture.Pruning
module Sim_list = Simlist.Sim_list
open Engine

let sim_list = Alcotest.testable Sim_list.pp Sim_list.equal
let check_ids = Alcotest.(check (array int))

(* --- sorted-array set operations ------------------------------------------ *)

let setop_tests =
  let open Alcotest in
  let sorted_pair =
    let gen =
      QCheck.Gen.(
        pair
          (list (int_bound 60))
          (list (int_bound 60))
        >|= fun (a, b) ->
        ( Array.of_list (List.sort_uniq compare a),
          Array.of_list (List.sort_uniq compare b) ))
    in
    QCheck.make gen
      ~print:(fun (a, b) ->
        Printf.sprintf "[%s] / [%s]"
          (String.concat ";" (List.map string_of_int (Array.to_list a)))
          (String.concat ";" (List.map string_of_int (Array.to_list b))))
  in
  [
    test_case "intersect: empty, singleton, disjoint, nested, equal" `Quick
      (fun () ->
        check_ids "empty left" [||] (Pruning.intersect [||] [| 1; 2; 3 |]);
        check_ids "empty right" [||] (Pruning.intersect [| 1; 2; 3 |] [||]);
        check_ids "singleton hit" [| 5 |]
          (Pruning.intersect [| 5 |] [| 1; 5; 9 |]);
        check_ids "singleton miss" [||]
          (Pruning.intersect [| 4 |] [| 1; 5; 9 |]);
        check_ids "disjoint" [||] (Pruning.intersect [| 1; 3 |] [| 2; 4 |]);
        check_ids "interleaved disjoint" [||]
          (Pruning.intersect [| 2; 4; 6 |] [| 1; 3; 5; 7 |]);
        check_ids "nested" [| 2; 3; 4 |]
          (Pruning.intersect [| 2; 3; 4 |] [| 1; 2; 3; 4; 9 |]);
        check_ids "equal" [| 1; 2; 3 |]
          (Pruning.intersect [| 1; 2; 3 |] [| 1; 2; 3 |]);
        (* a run far past the small side exercises the galloping probe *)
        check_ids "gallop far" [| 999 |]
          (Pruning.intersect [| 999 |] (Array.init 1000 (fun i -> i)));
        check_ids "gallop strided" [| 0; 500; 999 |]
          (Pruning.intersect [| 0; 500; 999 |] (Array.init 1000 (fun i -> i))));
    test_case "union: empty, singleton, disjoint, nested, equal" `Quick
      (fun () ->
        check_ids "empty left" [| 1 |] (Pruning.union [||] [| 1 |]);
        check_ids "empty right" [| 1 |] (Pruning.union [| 1 |] [||]);
        check_ids "both empty" [||] (Pruning.union [||] [||]);
        check_ids "disjoint" [| 1; 2; 3; 4 |]
          (Pruning.union [| 1; 3 |] [| 2; 4 |]);
        check_ids "overlapping" [| 1; 2; 3; 5 |]
          (Pruning.union [| 1; 3 |] [| 2; 3; 5 |]);
        check_ids "nested" [| 1; 2; 3; 4; 9 |]
          (Pruning.union [| 2; 3; 4 |] [| 1; 2; 3; 4; 9 |]);
        check_ids "equal" [| 1; 2; 3 |]
          (Pruning.union [| 1; 2; 3 |] [| 1; 2; 3 |]));
    Helpers.qtest ~count:500 "intersect agrees with the list model"
      (fun (a, b) ->
        Array.to_list (Pruning.intersect a b)
        = List.filter (fun x -> Array.mem x b) (Array.to_list a))
      sorted_pair;
    Helpers.qtest ~count:500 "union agrees with the list model"
      (fun (a, b) ->
        Array.to_list (Pruning.union a b)
        = List.sort_uniq compare (Array.to_list a @ Array.to_list b))
      sorted_pair;
    Helpers.qtest ~count:500 "intersect distributes over union"
      (fun (a, b) ->
        Pruning.intersect a (Pruning.union a b) = a
        && Pruning.union a (Pruning.intersect a b) = a)
      sorted_pair;
  ]

(* --- a fixture level exercising every posting family ---------------------- *)

let box x0 x1 = Metadata.Bbox.make ~x0 ~y0:0. ~x1 ~y1:1.

let entity ?attrs ?bbox id otype = Metadata.Entity.make ~id ~otype ?attrs ?bbox ()

let meta ?(objects = []) ?(relationships = []) ?(attrs = []) () =
  Metadata.Seg_meta.make ~objects ~relationships ~attrs ()

(* shots (level-2 ids 1..5):
   1: man#1 (speed 30), train#2 (speed 80), holds(1,2), mood="calm"
   2: woman#3, mood="tense"
   3: (empty)
   4: man#1 and dog#4 with bounding boxes (derivable left_of)
   5: train#2 (speed 80), rating=7 *)
let fixture () =
  let shots =
    [
      meta
        ~objects:
          [
            entity 1 "man" ~attrs:[ ("speed", Metadata.Value.Int 30) ];
            entity 2 "train" ~attrs:[ ("speed", Metadata.Value.Int 80) ];
          ]
        ~relationships:[ Metadata.Relationship.make "holds" [ 1; 2 ] ]
        ~attrs:[ ("mood", Metadata.Value.Str "calm") ]
        ();
      meta
        ~objects:[ entity 3 "woman" ]
        ~attrs:[ ("mood", Metadata.Value.Str "tense") ]
        ();
      meta ();
      meta
        ~objects:
          [ entity 1 "man" ~bbox:(box 0. 1.); entity 4 "dog" ~bbox:(box 2. 3.) ]
        ();
      meta
        ~objects:[ entity 2 "train" ~attrs:[ ("speed", Metadata.Value.Int 80) ] ]
        ~attrs:[ ("rating", Metadata.Value.Int 7) ]
        ();
    ]
  in
  Store.of_video (Video_model.Video.two_level ~title:"fixture" shots)

let posting_tests =
  let open Alcotest in
  let idx () = Index.build (fixture ()) ~level:2 in
  [
    test_case "object, type and relationship postings" `Quick (fun () ->
        let idx = idx () in
        check_ids "man#1" [| 1; 4 |] (Index.segments_of_object idx 1);
        check_ids "train#2" [| 1; 5 |] (Index.segments_of_object idx 2);
        check_ids "absent object" [||] (Index.segments_of_object idx 99);
        check_ids "type train" [| 1; 5 |] (Index.segments_of_type idx "train");
        check_ids "type dog" [| 4 |] (Index.segments_of_type idx "dog");
        check_ids "unknown type" [||] (Index.segments_of_type idx "zebra");
        check_ids "holds" [| 1 |] (Index.segments_of_relationship idx "holds");
        check_ids "unknown rel" [||]
          (Index.segments_of_relationship idx "fires_at");
        check_ids "with objects" [| 1; 2; 4; 5 |]
          (Index.segments_with_objects idx);
        check (list int) "objects at level" [ 1; 2; 3; 4 ]
          (Index.objects_at_level idx);
        check (list string) "types at level" [ "dog"; "man"; "train"; "woman" ]
          (Index.types_at_level idx);
        check int "level" 2 (Index.level idx);
        check int "segment count" 5 (Index.segment_count idx));
    test_case "attribute postings, names and values" `Quick (fun () ->
        let idx = idx () in
        check_ids "seg mood" [| 1; 2 |] (Index.segments_with_seg_attr idx "mood");
        check_ids "seg mood=calm" [| 1 |]
          (Index.segments_with_seg_attr_value idx "mood"
             (Metadata.Value.Str "calm"));
        check_ids "seg rating as float (Int/Float coercion)" [| 5 |]
          (Index.segments_with_seg_attr_value idx "rating"
             (Metadata.Value.Float 7.));
        check_ids "undefined seg attr" [||]
          (Index.segments_with_seg_attr idx "nope");
        check_ids "obj speed" [| 1; 5 |] (Index.segments_with_obj_attr idx "speed");
        check_ids "obj speed=80" [| 1; 5 |]
          (Index.segments_with_obj_attr_value idx "speed"
             (Metadata.Value.Int 80));
        check_ids "obj speed=30" [| 1 |]
          (Index.segments_with_obj_attr_value idx "speed"
             (Metadata.Value.Int 30));
        (* the virtual attributes of Entity.attr are indexed too *)
        check_ids "virtual type covers objects" [| 1; 2; 4; 5 |]
          (Index.segments_with_obj_attr idx "type");
        check_ids "virtual type=man" [| 1; 4 |]
          (Index.segments_with_obj_attr_value idx "type"
             (Metadata.Value.Str "man"));
        check_ids "virtual id=4" [| 4 |]
          (Index.segments_with_obj_attr_value idx "id" (Metadata.Value.Int 4)));
    test_case "hoisted freeze-region points are sorted and distinct" `Quick
      (fun () ->
        let idx = idx () in
        let p = Index.seg_attr_points idx "mood" in
        check (list int) "mood ints" [] p.Index.ints;
        check (list string) "mood strs" [ "calm"; "tense" ] p.Index.strs;
        check bool "mood clean" true (p.Index.bad = None);
        let p = Index.obj_attr_points idx "speed" ~oid:2 in
        check (list int) "speed#2 ints (deduplicated)" [ 80 ] p.Index.ints;
        let p = Index.seg_attr_points idx "nope" in
        check (list int) "missing attr: no ints" [] p.Index.ints;
        check (list string) "missing attr: no strs" [] p.Index.strs);
  ]

(* --- the registry: build-once, version stamping --------------------------- *)

let counter m name = Obs.Metrics.counter_value m name

let registry_tests =
  let open Alcotest in
  [
    test_case "repeated gets serve one build until the store changes" `Quick
      (fun () ->
        let s = fixture () in
        let r = Index.Registry.create () in
        let i1 = Index.Registry.get r s ~level:2 in
        let i2 = Index.Registry.get r s ~level:2 in
        check bool "same finalized index" true (i1 == i2);
        Store.set_attr s ~level:2 ~id:3 ~name:"mood"
          (Metadata.Value.Str "calm");
        let i3 = Index.Registry.get r s ~level:2 in
        check bool "rebuilt after mutation" true (i1 != i3);
        check_ids "rebuilt index sees the edit" [| 1; 2; 3 |]
          (Index.segments_with_seg_attr i3 "mood"));
    test_case "concurrent gets build once" `Quick (fun () ->
        let s = fixture () in
        let r = Index.Registry.create () in
        let m = Obs.Metrics.create () in
        let domains =
          List.init 4 (fun _ ->
              Domain.spawn (fun () -> Index.Registry.get r ~metrics:m s ~level:2))
        in
        let indexes = List.map Domain.join domains in
        check int "one build" 1 (counter m "picture.index.builds");
        match indexes with
        | first :: rest ->
            List.iter
              (fun i -> check bool "all the same index" true (i == first))
              rest
        | [] -> assert false);
    test_case "one query builds at most once (atoms and freeze share)" `Quick
      (fun () ->
        (* the freeze quantifier's value table and the atomic evaluator
           used to build private indexes; both must go through the
           context's registry now *)
        let m = Obs.Metrics.create () in
        let ctx = Context.with_metrics (Context.of_store (fixture ())) m in
        let q = "exists x . (present(x) and [v <- speed(x)] v > 60)" in
        ignore (Query.run_string ctx q);
        check int "one build for the first query" 1
          (counter m "picture.index.builds");
        ignore (Query.run_string (Context.with_fresh_cache ctx) q);
        ignore (Query.run_string (Context.with_fresh_cache ctx) q);
        check int "still one build after re-running" 1
          (counter m "picture.index.builds");
        check bool "later runs hit the registry" true
          (counter m "picture.index.registry_hits" > 0));
    test_case "store mutation rebuilds and the results stay fresh" `Quick
      (fun () ->
        let s = fixture () in
        let m = Obs.Metrics.create () in
        let ctx = Context.with_metrics (Context.of_store s) m in
        let q = "exists x . (present(x) and type(x) = \"train\")" in
        let before = Query.run_string ctx q in
        Store.add_object s ~level:2 ~id:3
          (entity 9 "train" ~attrs:[ ("speed", Metadata.Value.Int 10) ]);
        let after = Query.run_string ctx q in
        check int "rebuilt once" 2 (counter m "picture.index.builds");
        check bool "the new train is visible" false
          (Sim_list.equal before after);
        let fresh = Query.run_string (Context.of_store s) q in
        check sim_list "agrees with a fresh context" fresh after);
  ]

(* --- delta builds and merges ---------------------------------------------- *)

let same_index a b =
  Alcotest.check Alcotest.bool "indexes structurally equal" true
    (compare (Index.dump a) (Index.dump b) = 0)

(* two appended shots overlapping the fixture's posting keys (man#1,
   holds, mood=calm, speed=80) and introducing fresh ones (zebra#5) *)
let appended_shots () =
  [
    meta
      ~objects:
        [
          entity 1 "man" ~attrs:[ ("speed", Metadata.Value.Int 80) ];
          entity 5 "zebra";
        ]
      ~relationships:[ Metadata.Relationship.make "holds" [ 1; 5 ] ]
      ~attrs:[ ("mood", Metadata.Value.Str "calm") ]
      ();
    meta ~attrs:[ ("rating", Metadata.Value.Int 9) ] ();
  ]

let delta_tests =
  let open Alcotest in
  [
    test_case "merge of a delta equals a from-scratch build" `Quick (fun () ->
        let s = fixture () in
        let base = Index.build s ~level:2 in
        let base_dump = Index.dump base in
        Store.append_segments s (appended_shots ());
        let delta = Index.build_delta s ~level:2 ~lo:6 in
        let merged = Index.merge base delta in
        same_index (Index.build s ~level:2) merged;
        check bool "base not mutated" true
          (compare (Index.dump base) base_dump = 0);
        check_ids "concatenated posting" [| 1; 4; 6 |]
          (Index.segments_of_object merged 1);
        check_ids "fresh posting" [| 6 |] (Index.segments_of_object merged 5);
        let p = Index.seg_attr_points merged "mood" in
        check (list string) "points stay distinct" [ "calm"; "tense" ]
          p.Index.strs);
    test_case "build_delta rejects an out-of-range lo" `Quick (fun () ->
        let s = fixture () in
        (try
           ignore (Index.build_delta s ~level:2 ~lo:0);
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ());
        try
          ignore (Index.build_delta s ~level:2 ~lo:7);
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    test_case "registry extends appended levels without a rebuild" `Quick
      (fun () ->
        let s = fixture () in
        let r = Index.Registry.create () in
        let m = Obs.Metrics.create () in
        ignore (Index.Registry.get r ~metrics:m s ~level:2);
        check int "one build" 1 (counter m "picture.index.builds");
        Store.append_segments s (appended_shots ());
        let idx = Index.Registry.get r ~metrics:m s ~level:2 in
        check int "builds stay flat" 1 (counter m "picture.index.builds");
        check int "one delta merge" 1
          (counter m "picture.index.delta_merges");
        same_index (Index.build s ~level:2) idx;
        (* a second get at the same version is a plain registry hit *)
        ignore (Index.Registry.get r ~metrics:m s ~level:2);
        check int "no further merges" 1
          (counter m "picture.index.delta_merges"));
    test_case "registry edits drop only the edited level" `Quick (fun () ->
        let s = Fixtures.layered_store () in
        let r = Index.Registry.create () in
        let m = Obs.Metrics.create () in
        ignore (Index.Registry.get r ~metrics:m s ~level:2);
        ignore (Index.Registry.get r ~metrics:m s ~level:3);
        check int "two builds" 2 (counter m "picture.index.builds");
        Store.set_attr s ~level:3 ~id:1 ~name:"mood"
          (Metadata.Value.Str "tense");
        ignore (Index.Registry.get r ~metrics:m s ~level:2);
        check int "level 2 untouched" 2 (counter m "picture.index.builds");
        let i3 = Index.Registry.get r ~metrics:m s ~level:3 in
        check int "level 3 rebuilt" 3 (counter m "picture.index.builds");
        check_ids "rebuild sees the edit" [| 1 |]
          (Index.segments_with_seg_attr i3 "mood"));
  ]

(* --- pruned evaluation = full scan, atom family by atom family ------------ *)

let full_config = { Picture.Retrieval.default_config with prune = false }

let family_queries =
  [
    ("present", "exists x . present(x)");
    ("stored relationship", "exists x . exists y . holds(x, y)");
    ("derived relationship", "exists x . exists y . left_of(x, y)");
    ("type, exact", "exists x . type(x) = \"man\"");
    ("type, taxonomy partial credit", "exists x . type(x) = \"car\"");
    ("type, unknown", "exists x . type(x) = \"zebra\"");
    ("seg attr eq", "seg.mood = \"calm\"");
    ("seg attr undefined", "seg.nope = \"x\"");
    ("obj attr cmp", "exists x . speed(x) > 50");
    ("freeze seg attr", "[v <- seg.rating] v > 5");
    ("freeze obj attr", "exists x . (present(x) and [v <- speed(x)] v > 60)");
    ("const", "3 > 2");
    ("conjunction mixes families", "exists x . (present(x) and seg.mood = \"calm\" and speed(x) > 50)");
  ]

let equivalence_tests =
  List.map
    (fun (name, q) ->
      Alcotest.test_case name `Quick (fun () ->
          let s = fixture () in
          let pruned = Query.run_string (Context.of_store s) q in
          let full = Query.run_string (Context.of_store ~config:full_config s) q in
          Alcotest.check sim_list name full pruned))
    family_queries

let suites =
  [
    ("index.setops", setop_tests);
    ("index.postings", posting_tests);
    ("index.registry", registry_tests);
    ("index.delta", delta_tests);
    ("index.pruned_eq_full", equivalence_tests);
  ]
