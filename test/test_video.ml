(* Tests for the metadata and video-model libraries, and for the exact
   (boolean) HTL semantics evaluated over stores. *)

open Video_model
module Interval = Simlist.Interval

let iv = Interval.make
let interval = Alcotest.testable Interval.pp Interval.equal

(* --- metadata ---------------------------------------------------------- *)

let metadata_tests =
  let open Alcotest in
  let open Metadata in
  [
    test_case "value equality across numeric kinds" `Quick (fun () ->
        check bool "int/float" true (Value.equal (Value.Int 3) (Value.Float 3.));
        check bool "int/int" true (Value.equal (Value.Int 3) (Value.Int 3));
        check bool "str/int" false (Value.equal (Value.Str "3") (Value.Int 3)));
    test_case "value numeric comparison" `Quick (fun () ->
        check (option int) "3 < 4" (Some (-1))
          (Value.compare_num (Value.Int 3) (Value.Float 4.));
        check (option int) "strings do not order" None
          (Value.compare_num (Value.Str "a") (Value.Str "b")));
    test_case "entity attr resolves type and id" `Quick (fun () ->
        let o = Fixtures.john () in
        check bool "type" true
          (Entity.attr o "type" = Some (Value.Str "man"));
        check bool "id" true (Entity.attr o "id" = Some (Value.Int 1));
        check bool "name" true
          (Entity.attr o "name" = Some (Value.Str "John Wayne"));
        check bool "missing" true (Entity.attr o "height" = None));
    test_case "bbox predicates" `Quick (fun () ->
        let a = Bbox.make ~x0:0. ~y0:0. ~x1:1. ~y1:1.
        and b = Bbox.make ~x0:2. ~y0:2. ~x1:3. ~y1:3.
        and inner = Bbox.make ~x0:0.2 ~y0:0.2 ~x1:0.8 ~y1:0.8 in
        check bool "left_of" true (Bbox.left_of a b);
        check bool "not right" false (Bbox.left_of b a);
        check bool "above" true (Bbox.above b a);
        check bool "overlaps self" true (Bbox.overlaps a a);
        check bool "disjoint" false (Bbox.overlaps a b);
        check bool "inside" true (Bbox.inside inner a);
        check bool "not inside" false (Bbox.inside a inner));
    test_case "seg_meta lookups" `Quick (fun () ->
        let m = List.nth Fixtures.western_shots 1 in
        check bool "john present" true (Seg_meta.present m 1);
        check bool "mary absent" false (Seg_meta.present m 2);
        check int "men" 1 (List.length (Seg_meta.objects_of_type m "man"));
        check bool "holds" true (Seg_meta.has_relationship m "holds" [ 1; 3 ]);
        check bool "holds reversed" false
          (Seg_meta.has_relationship m "holds" [ 3; 1 ]));
  ]

(* --- segment / video --------------------------------------------------- *)

let video_tests =
  let open Alcotest in
  [
    test_case "segment depth and uniformity" `Quick (fun () ->
        let leaf = Segment.leaf Metadata.Seg_meta.empty in
        let tree = Segment.make [ Segment.make [ leaf; leaf ]; Segment.make [ leaf ] ] in
        check int "depth" 3 (Segment.depth tree);
        check (option int) "uniform" (Some 3) (Segment.uniform_depth tree);
        let ragged = Segment.make [ leaf; Segment.make [ leaf ] ] in
        check (option int) "ragged" None (Segment.uniform_depth ragged));
    test_case "segment count_at" `Quick (fun () ->
        let leaf = Segment.leaf Metadata.Seg_meta.empty in
        let tree = Segment.make [ Segment.make [ leaf; leaf ]; Segment.make [ leaf ] ] in
        check int "level 1" 1 (Segment.count_at tree 1);
        check int "level 2" 2 (Segment.count_at tree 2);
        check int "level 3" 3 (Segment.count_at tree 3));
    test_case "video create validates depth" `Quick (fun () ->
        let leaf = Segment.leaf Metadata.Seg_meta.empty in
        (try
           ignore
             (Video.create ~title:"bad" ~level_names:[ "video"; "shot" ]
                (Segment.make [ Segment.make [ leaf ] ]));
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    test_case "two_level and level lookups" `Quick (fun () ->
        let v = Fixtures.western () in
        check int "levels" 2 (Video.levels v);
        check string "level 2 name" "shot" (Video.level_name v 2);
        check (option int) "index of shot" (Some 2) (Video.level_index v "shot");
        check (option int) "unknown" None (Video.level_index v "frame");
        check int "shots" 6 (Video.count_at v 2));
  ]

(* --- store -------------------------------------------------------------- *)

let store_tests =
  let open Alcotest in
  [
    test_case "single video numbering" `Quick (fun () ->
        let s = Fixtures.western_store () in
        check int "levels" 2 (Store.levels s);
        check int "roots" 1 (Store.count_at s ~level:1);
        check int "shots" 6 (Store.count_at s ~level:2);
        let root = Store.node s ~level:1 ~id:1 in
        check (option interval) "children" (Some (iv 1 6)) root.Store.children_span;
        let shot3 = Store.node s ~level:2 ~id:3 in
        check (option int) "parent" (Some 1) shot3.Store.parent);
    test_case "two videos get consecutive id spans" `Quick (fun () ->
        let s = Fixtures.two_movie_store () in
        check int "shots total" 9 (Store.count_at s ~level:2);
        check interval "western span" (iv 1 6) (Store.video_span s ~video:0 ~level:2);
        check interval "chase span" (iv 7 9) (Store.video_span s ~video:1 ~level:2);
        let e = Store.extents_at s ~level:2 in
        check (list interval) "extents" [ iv 1 6; iv 7 9 ] (Simlist.Extent.spans e));
    test_case "descendants_span over three levels" `Quick (fun () ->
        let s = Fixtures.layered_store () in
        check int "scenes" 2 (Store.count_at s ~level:2);
        check int "shots" 5 (Store.count_at s ~level:3);
        check (option interval) "root to shots" (Some (iv 1 5))
          (Store.descendants_span s ~level:1 ~id:1 ~target:3);
        check (option interval) "scene 2 to shots" (Some (iv 3 5))
          (Store.descendants_span s ~level:2 ~id:2 ~target:3);
        check (option interval) "same level" None
          (Store.descendants_span s ~level:2 ~id:2 ~target:2));
    test_case "store rejects mismatched level names" `Quick (fun () ->
        try
          ignore (Store.create [ Fixtures.western (); Fixtures.layered () ]);
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    test_case "all_object_ids" `Quick (fun () ->
        let s = Fixtures.two_movie_store () in
        check (list int) "ids" [ 1; 2; 3; 4; 5; 6; 7 ] (Store.all_object_ids s));
    test_case "locate maps global ids to (video, position)" `Quick (fun () ->
        let s = Fixtures.two_movie_store () in
        check (triple int string int) "western shot 3" (0, "western", 3)
          (Store.locate s ~level:2 ~id:3);
        check (triple int string int) "chase first shot" (1, "chase", 1)
          (Store.locate s ~level:2 ~id:7);
        check (triple int string int) "chase last shot" (1, "chase", 3)
          (Store.locate s ~level:2 ~id:9));
    test_case "meta round trips" `Quick (fun () ->
        let s = Fixtures.western_store () in
        let m = Store.meta s ~level:2 ~id:3 in
        check bool "train at shot 3" true (Metadata.Seg_meta.present m 4));
  ]

(* --- exact semantics ----------------------------------------------------- *)

let parse = Htl.Parser.formula_of_string

let exact_tests =
  let open Alcotest in
  let s = Fixtures.western_store () in
  let over f = Htl.Exact.eval_over_level s ~level:2 (parse f) in
  [
    test_case "atoms over shots" `Quick (fun () ->
        check (array bool) "train present somewhere"
          [| false; false; true; false; true; false |]
          (over "exists x . (present(x) and type(x) = \"train\")"));
    test_case "segment attributes at the root" `Quick (fun () ->
        check bool "title" true
          (Htl.Exact.satisfied_by_video s ~video:0
             (parse "seg.title = \"western\"")));
    test_case "next" `Quick (fun () ->
        (* shot i satisfies next(train) iff shot i+1 has the train *)
        check (array bool) "next train"
          [| false; true; false; true; false; false |]
          (over "next (exists x . type(x) = \"train\")"));
    test_case "until" `Quick (fun () ->
        (* john appears until the train appears: shots 1..2 lead to 3;
           shot 3 has the train itself; 4 leads to 5; 5 has it *)
        check (array bool) "john until train"
          [| true; true; true; true; true; false |]
          (over
             "(exists x . name(x) = \"John Wayne\") until (exists y . type(y) \
              = \"train\")"));
    test_case "eventually" `Quick (fun () ->
        check (array bool) "eventually woman"
          [| true; false; false; false; false; false |]
          (over "eventually (exists x . type(x) = \"woman\")"));
    test_case "not and or" `Quick (fun () ->
        check (array bool) "no person at all"
          [| false; false; true; false; false; true |]
          (over "not (exists x . type(x) = \"man\" or type(x) = \"woman\")"));
    test_case "relationships" `Quick (fun () ->
        check (array bool) "fires_at"
          [| false; false; false; true; false; false |]
          (over "exists x, y . fires_at(x, y)"));
    test_case "freeze compares attribute values across time" `Quick (fun () ->
        (* the train is seen again later with a strictly higher speed *)
        check (array bool) "speed increases"
          [| false; false; true; false; false; false |]
          (over
             "exists x . (type(x) = \"train\" and [v <- speed(x)] next \
              (eventually (speed(x) > v)))"));
    test_case "freeze on an undefined attribute is false" `Quick (fun () ->
        check (array bool) "no such attribute"
          [| false; false; false; false; false; false |]
          (over "exists x . (present(x) and [v <- altitude(x)] present(x))"));
    test_case "level operators descend the hierarchy" `Quick (fun () ->
        let s = Fixtures.layered_store () in
        (* at-next-level at the root looks at the FIRST scene *)
        check bool "at next level sees scene meta" true
          (Htl.Exact.satisfied_by_video s ~video:0
             (parse "at next level (seg.name = \"intro\")"));
        check bool "at next level starts at the first scene" false
          (Htl.Exact.satisfied_by_video s ~video:0
             (parse "at next level (seg.name = \"trains\")"));
        check bool "at next level plus eventually" true
          (Htl.Exact.satisfied_by_video s ~video:0
             (parse "at next level (eventually (seg.name = \"trains\"))"));
        (* at shot level: the sequence of ALL shots under the root starts
           at shot 1; train only appears from shot 3 *)
        check bool "at shot level eventually train" true
          (Htl.Exact.satisfied_by_video s ~video:0
             (parse
                "at shot level (eventually (exists x . type(x) = \"train\"))"));
        check bool "at shot level immediately train" false
          (Htl.Exact.satisfied_by_video s ~video:0
             (parse "at shot level (exists x . type(x) = \"train\")")));
    test_case "level operator scoped to one parent's children" `Quick
      (fun () ->
        let s = Fixtures.layered_store () in
        (* scene 2's shots are ids 3..5; "next next mary" holds at its
           first shot *)
        check bool "scene 2 sequence" true
          (Htl.Exact.holds_at s ~level:2 ~span:(iv 1 2) ~pos:2
             (parse
                "at next level (next (next (exists x . type(x) = \
                 \"woman\")))"));
        (* but scene 1 has only 2 shots, so the same formula fails there *)
        check bool "scene 1 too short" false
          (Htl.Exact.holds_at s ~level:2 ~span:(iv 1 2) ~pos:1
             (parse
                "at next level (next (next (exists x . type(x) = \
                 \"woman\")))")));
    test_case "until does not cross videos" `Quick (fun () ->
        let s = Fixtures.two_movie_store () in
        let f = parse "eventually (exists x . type(x) = \"horse\")" in
        let r = Htl.Exact.eval_over_level s ~level:2 f in
        (* horses only in the chase movie (ids 7..9); western shots never
           reach them *)
        check (array bool) "per shot"
          [| false; false; false; false; false; false; true; true; true |]
          r);
  ]

(* --- ingestion ----------------------------------------------------------- *)

let tagged tag =
  Metadata.Seg_meta.make ~attrs:[ ("tag", Metadata.Value.Str tag) ] ()

let expect_invalid what f =
  try
    ignore (f ());
    Alcotest.fail ("expected Invalid_argument: " ^ what)
  with Invalid_argument _ -> ()

let ingest_tests =
  let open Alcotest in
  [
    test_case "append_segments extends the leaf level consistently" `Quick
      (fun () ->
        let s = Fixtures.layered_store () in
        (* 3 levels: 1 root, 2 scenes, 5 shots; scene 2 owns shots 3..5 *)
        Store.append_segments s [ tagged "a"; tagged "b" ];
        check int "shots grew" 7 (Store.count_at s ~level:3);
        check int "scenes untouched" 2 (Store.count_at s ~level:2);
        let scene2 = Store.node s ~level:2 ~id:2 in
        check (option interval) "last parent's span grew" (Some (iv 3 7))
          scene2.Store.children_span;
        let shot6 = Store.node s ~level:3 ~id:6 in
        check (option int) "new shot's parent" (Some 2) shot6.Store.parent;
        check bool "new shot's meta" true
          (Store.meta s ~level:3 ~id:7
           = tagged "b");
        check interval "video_span covers the tail" (iv 1 7)
          (Store.video_span s ~video:0 ~level:3);
        check (list interval) "extents re-derive" [ iv 1 7 ]
          (Simlist.Extent.spans (Store.extents_at s ~level:3));
        check (triple int string int) "locate reaches the tail"
          (0, "layered", 7)
          (Store.locate s ~level:3 ~id:7);
        check int "one version bump" 1 (Store.version s);
        match Store.changes_since s ~since:0 with
        | Some [ Store.Appended { counts } ] ->
            check (array int) "counts" [| 0; 0; 2 |] counts
        | _ -> Alcotest.fail "expected one Appended change");
    test_case "append_segments rejects bad input" `Quick (fun () ->
        let s = Fixtures.layered_store () in
        expect_invalid "empty list" (fun () -> Store.append_segments s []);
        let flat =
          Store.of_video
            (Video.create ~title:"flat" ~level_names:[ "video" ]
               (Segment.leaf Metadata.Seg_meta.empty))
        in
        expect_invalid "single-level store" (fun () ->
            Store.append_segments flat [ tagged "x" ]);
        check int "failed appends are version-neutral" 0 (Store.version s));
    test_case "append_video appends a whole id range per level" `Quick
      (fun () ->
        let s = Fixtures.western_store () in
        Store.append_video s (Fixtures.western ());
        check int "roots" 2 (Store.count_at s ~level:1);
        check int "shots" 12 (Store.count_at s ~level:2);
        check interval "second video's span" (iv 7 12)
          (Store.video_span s ~video:1 ~level:2);
        check (list interval) "extents tile both videos"
          [ iv 1 6; iv 7 12 ]
          (Simlist.Extent.spans (Store.extents_at s ~level:2));
        check bool "metas copied" true
          (Store.meta s ~level:2 ~id:7 = Store.meta s ~level:2 ~id:1);
        (match Store.changes_since s ~since:0 with
        | Some [ Store.Appended { counts } ] ->
            check (array int) "counts" [| 1; 6 |] counts
        | _ -> Alcotest.fail "expected one Appended change");
        expect_invalid "mismatched level names" (fun () ->
            Store.append_video s (Fixtures.layered ())));
    test_case "changes_since replays the gap oldest-first" `Quick (fun () ->
        let s = Fixtures.western_store () in
        check bool "current is Some []" true
          (Store.changes_since s ~since:0 = Some []);
        check bool "future is None" true
          (Store.changes_since s ~since:7 = None);
        Store.set_attr s ~level:2 ~id:1 ~name:"a" (Metadata.Value.Int 1);
        Store.append_segments s [ tagged "x" ];
        Store.set_attr s ~level:2 ~id:2 ~name:"b" (Metadata.Value.Int 2);
        (match Store.changes_since s ~since:0 with
        | Some
            [
              Store.Edited { level = 2; id = 1 };
              Store.Appended _;
              Store.Edited { level = 2; id = 2 };
            ] ->
            ()
        | _ -> Alcotest.fail "expected the three changes oldest-first");
        (match Store.changes_since s ~since:2 with
        | Some [ Store.Edited { level = 2; id = 2 } ] -> ()
        | _ -> Alcotest.fail "expected just the last change");
        (* overflow the bounded log: the horizon is lost *)
        for i = 1 to 2000 do
          Store.set_attr s ~level:2 ~id:3 ~name:"n" (Metadata.Value.Int i)
        done;
        check bool "horizon lost" true (Store.changes_since s ~since:0 = None);
        check bool "recent changes still replay" true
          (match Store.changes_since s ~since:(Store.version s - 3) with
          | Some [ _; _; _ ] -> true
          | _ -> false));
    test_case "current_videos reflects edits and appends" `Quick (fun () ->
        let s = Fixtures.layered_store () in
        Store.set_attr s ~level:3 ~id:1 ~name:"mood"
          (Metadata.Value.Str "tense");
        Store.append_segments s [ tagged "new" ];
        let copy = Store.create (Store.current_videos s) in
        check int "same leaf count" (Store.count_at s ~level:3)
          (Store.count_at copy ~level:3);
        check bool "edit survives" true
          (Store.meta copy ~level:3 ~id:1 = Store.meta s ~level:3 ~id:1);
        check bool "append survives" true
          (Store.meta copy ~level:3 ~id:6 = tagged "new");
        check (option interval) "derived spans agree"
          (Store.node s ~level:2 ~id:2).Store.children_span
          (Store.node copy ~level:2 ~id:2).Store.children_span);
  ]

let suites =
  [
    ("metadata", metadata_tests);
    ("video", video_tests);
    ("store", store_tests);
    ("store.ingest", ingest_tests);
    ("exact_semantics", exact_tests);
  ]
