(* Sharded scatter–gather evaluation and binary snapshots.

   The load-bearing property is byte-equality: partitioning a store into
   N shards and gathering the per-shard similarity lists must reproduce
   the unsharded evaluation exactly — same entries, same max — across
   shard counts, formula strata, backends and pool sizes.  Snapshots
   must round-trip to the same bytes and answer queries with zero index
   rebuilds; corrupted files must be rejected with the right typed
   error. *)

open Engine
module Sharded = Htl_shard.Sharded
module Sim_list = Simlist.Sim_list
module Sim = Simlist.Sim
module Store = Video_model.Store
module Snapshot = Storage.Snapshot

let store_of_seed ?(videos = 6) seed =
  let rng = Workload.Rng.make seed in
  Workload.Movies.random_store rng ~videos ~branching:4 ~object_pool:4 ()

let parse src =
  match Htl.Parser.formula_of_string_opt src with
  | Ok f -> f
  | Error msg -> Alcotest.failf "cannot parse %S: %s" src msg

let q_train = "exists x . (present(x) and type(x) = \"train\")"
let q_mood = "seg.mood = \"tense\""

let counter m name =
  match List.assoc_opt name (Obs.Metrics.snapshot m) with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> 0

(* one shared 2-domain pool; spawning per test case would dominate *)
let pool2 = lazy (Parallel.Pool.create ~domains:2 ())

let () =
  at_exit (fun () ->
      if Lazy.is_val pool2 then Parallel.Pool.shutdown (Lazy.force pool2))

(* --- sharded = unsharded differential ------------------------------------ *)

let shard_counts = [ 1; 2; 4; 8 ]

let sharded_differential ?videos (seed, f) =
  let store = store_of_seed ?videos seed in
  let outcome g =
    match g () with l -> Ok l | exception Query.Error msg -> Error msg
  in
  List.iter
    (fun (bname, backend) ->
      let plain =
        outcome (fun () ->
            Query.run ~backend
              (Context.without_cache (Context.of_store store))
              f)
      in
      List.iter
        (fun shards ->
          List.iter
            (fun (plabel, pool) ->
              let sh =
                Sharded.create ~shards ?pool ~par_cutoff:0 store
              in
              match (plain, outcome (fun () -> Sharded.run ~backend sh f)) with
              | Ok a, Ok b ->
                  if not (Sim_list.equal a b) then
                    QCheck.Test.fail_reportf
                      "%d-shard (%s, %s) differs from unsharded on %s" shards
                      bname plabel
                      (Htl.Pretty.to_string f)
              | Error _, Error _ -> ()
              | Ok _, Error msg ->
                  QCheck.Test.fail_reportf
                    "%d-shard (%s, %s) refused %s that unsharded accepted: %s"
                    shards bname plabel
                    (Htl.Pretty.to_string f)
                    msg
              | Error msg, Ok _ ->
                  QCheck.Test.fail_reportf
                    "%d-shard (%s, %s) accepted %s that unsharded refused: %s"
                    shards bname plabel
                    (Htl.Pretty.to_string f)
                    msg)
            [ ("sequential", None); ("pool 2", Some (Lazy.force pool2)) ])
        shard_counts)
    [ ("direct", Query.Direct_backend); ("sql", Query.Sql_backend_choice) ];
  true

let sharded_store_prop ?videos (seed, f) = sharded_differential ?videos (seed, f)

(* --- merged_top_k against the materialising oracle ------------------------ *)

let arb_shard_parts =
  let open QCheck.Gen in
  let gen =
    int_range 1 5 >>= fun shards ->
    list_repeat shards
      (int_range 1 25 >>= fun n ->
       list_repeat n
         (frequency [ (1, pure 0.); (3, float_bound_inclusive 1.) ])
       >|= Array.of_list)
    >>= fun parts ->
    let total = List.fold_left (fun a p -> a + Array.length p) 0 parts in
    int_range 0 (total + 3) >|= fun k -> (parts, k)
  in
  let print (parts, k) =
    Format.asprintf "k=%d parts=[%s]" k
      (String.concat "; "
         (List.map
            (fun p ->
              String.concat ","
                (List.map string_of_float (Array.to_list p)))
            parts))
  in
  QCheck.make ~print gen

let merged_top_k_prop (parts, k) =
  let lists = List.map (Sim_list.of_dense ~max:1.) parts in
  let offsets =
    List.rev
      (snd
         (List.fold_left
            (fun (off, acc) p -> (off + Array.length p, off :: acc))
            (0, []) parts))
  in
  let merged =
    Engine.Topk.merged_top_k (List.combine lists offsets) ~k
  in
  let oracle =
    Engine.Topk.top_k (Sim_list.of_dense ~max:1. (Array.concat parts)) ~k
  in
  let show l =
    String.concat "; "
      (List.map
         (fun (id, s) -> Printf.sprintf "%d:%.6f" id (Sim.actual s))
         l)
  in
  if
    List.length merged <> List.length oracle
    || not
         (List.for_all2
            (fun (i1, s1) (i2, s2) ->
              i1 = i2 && Sim.actual s1 = Sim.actual s2)
            merged oracle)
  then
    QCheck.Test.fail_reportf "merged [%s] <> oracle [%s]" (show merged)
      (show oracle);
  true

(* --- unit: partitioning, routing, batches, explain ------------------------ *)

let unit_tests =
  let open Alcotest in
  [
    test_case "partition covers the corpus with monotone offsets" `Quick
      (fun () ->
        let store = store_of_seed 7 in
        List.iter
          (fun shards ->
            let sh = Sharded.create ~shards store in
            check bool "shard count bounded" true
              (Sharded.shard_count sh >= 1 && Sharded.shard_count sh <= shards);
            let level = Sharded.level sh in
            check int "segments preserved"
              (Store.count_at store ~level)
              (Sharded.segment_count sh);
            let off = Sharded.offsets sh in
            Array.iteri
              (fun i o -> if i > 0 then
                  check bool "offsets increase" true (o > off.(i - 1)))
              off)
          shard_counts);
    test_case "locate inverts the offset map" `Quick (fun () ->
        let store = store_of_seed 11 in
        let sh = Sharded.create ~shards:3 store in
        let level = Sharded.level sh in
        let off = Sharded.offsets sh in
        for id = 1 to Sharded.segment_count sh do
          let shard, local = Sharded.locate sh ~level ~id in
          check int (Printf.sprintf "id %d round-trips" id) id
            (off.(shard) + local)
        done;
        check_raises "id 0 rejected"
          (Invalid_argument "Sharded.locate: id 0 out of range") (fun () ->
            ignore (Sharded.locate sh ~level ~id:0)));
    test_case "top_k equals unsharded top_k" `Quick (fun () ->
        let store = store_of_seed 13 in
        let ctx = Context.of_store store in
        let sh = Sharded.create ~shards:4 store in
        List.iter
          (fun k ->
            let plain = Query.top_k ctx ~k q_train in
            let sharded = Sharded.top_k sh ~k q_train in
            check bool
              (Printf.sprintf "top %d agrees" k)
              true (plain = sharded))
          [ 0; 1; 5; 1000 ]);
    test_case "with_level matches unsharded at every level" `Quick (fun () ->
        let store = store_of_seed 17 in
        let sh = Sharded.create ~shards:3 store in
        for level = 1 to Sharded.levels sh do
          let ctx =
            Context.with_level (Context.of_store store) ~level
              ~extents:(Store.extents_at store ~level)
          in
          let shl = Sharded.with_level sh ~level in
          let plain = Query.run_string ctx q_mood in
          let sharded = Sharded.run_string shl q_mood in
          check bool
            (Printf.sprintf "level %d agrees" level)
            true
            (Sim_list.equal plain sharded)
        done);
    test_case "mutation routes to the owning shard only" `Quick (fun () ->
        let store = store_of_seed 23 in
        let m = Obs.Metrics.create () in
        let sh = Sharded.create ~shards:4 ~metrics:m store in
        let level = Sharded.level sh in
        let versions () =
          Array.map
            (fun ctx -> Context.store_version ctx)
            (Sharded.contexts sh)
        in
        (* warm every shard's registry *)
        ignore (Sharded.run_string sh q_mood);
        let builds_warm = counter m "picture.index.builds" in
        check int "one build per shard" (Sharded.shard_count sh) builds_warm;
        let before = versions () in
        Sharded.set_attr sh ~level ~id:1 ~name:"mood"
          (Metadata.Value.Str "tense");
        let after = versions () in
        let bumped = ref 0 in
        Array.iteri
          (fun i v -> if v <> before.(i) then incr bumped)
          after;
        check int "exactly one shard version bumped" 1 !bumped;
        (* re-query: only the mutated shard rebuilds its index *)
        ignore (Sharded.run_string sh q_mood);
        check int "one rebuild after one mutation" (builds_warm + 1)
          (counter m "picture.index.builds");
        (* and the result reflects the edit *)
        let l = Sharded.run_string sh q_mood in
        check bool "edited segment now matches" true
          (Sim_list.value_at l 1 > 0.));
    test_case "run_batch isolates failing slots" `Quick (fun () ->
        let store = store_of_seed 29 in
        let sh = Sharded.create ~shards:2 store in
        let good = parse q_train in
        let bad =
          (* general class: Classify.check rejects negation *)
          Htl.Ast.Not (Htl.Ast.Exists ("x", Htl.Ast.Atom (Htl.Ast.Present "x")))
        in
        match Sharded.run_batch sh [ good; bad; good ] with
        | [ Ok a; Error msg; Ok b ] ->
            check bool "good slots agree" true (Sim_list.equal a b);
            check bool "error names the rejection" true
              (Astring.String.is_infix ~affix:"negation" msg);
            let plain =
              Query.run (Context.of_store store) good
            in
            check bool "good slot equals unsharded" true
              (Sim_list.equal a plain)
        | rs -> Alcotest.failf "expected [Ok; Error; Ok], got %d slots"
                  (List.length rs));
    test_case "sharded query counts once, not per shard" `Quick (fun () ->
        let store = store_of_seed 31 in
        let m = Obs.Metrics.create () in
        let sh = Sharded.create ~shards:4 ~metrics:m store in
        ignore (Sharded.run_string sh q_train);
        check int "query.count" 1 (counter m "query.count");
        check int "shard.queries" (Sharded.shard_count sh)
          (counter m "shard.queries"));
    test_case "slow log records per-shard latencies" `Quick (fun () ->
        let store = store_of_seed 37 in
        let ql = Obs.Querylog.create ~threshold_s:0. () in
        let sh = Sharded.create ~shards:3 ~querylog:ql store in
        ignore (Sharded.run_string sh q_train);
        match Obs.Querylog.records ql with
        | [ r ] ->
            check int "one latency per shard" (Sharded.shard_count sh)
              (List.length r.Obs.Querylog.shards);
            List.iteri
              (fun i (ord, s) ->
                check int "ordinals in order" i ord;
                check bool "latency non-negative" true (s >= 0.))
              r.Obs.Querylog.shards
        | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs));
    test_case "explain renders per-shard rows and timings" `Quick (fun () ->
        let store = store_of_seed 41 in
        let sh = Sharded.create ~shards:3 store in
        let static = Sharded.explain sh (parse q_train) in
        check bool "names the scatter" true
          (Astring.String.is_infix ~affix:"scatter-gather over" static);
        check bool "one row per shard" true
          (Astring.String.is_infix ~affix:"shard 2:" static);
        let analyzed = Sharded.explain ~analyze:true sh (parse q_train) in
        check bool "analyze carries timings" true
          (Astring.String.is_infix ~affix:"time " analyzed);
        check bool "analyze carries merge entry count" true
          (Astring.String.is_infix ~affix:"merge: " analyzed));
  ]

(* --- ingestion routing ---------------------------------------------------- *)

let shard_versions sh =
  Array.map (fun ctx -> Context.store_version ctx) (Sharded.contexts sh)

(* evaluate over one unsharded store rebuilt from every shard's current
   trees — the oracle any sharded result must match byte for byte *)
let oracle_run sh f =
  let videos =
    List.concat_map
      (fun ctx ->
        match ctx.Context.store with
        | Some s -> Store.current_videos s
        | None -> assert false)
      (Array.to_list (Sharded.contexts sh))
  in
  Query.run (Context.without_cache (Context.of_store (Store.create videos))) f

let ingest_tests =
  let open Alcotest in
  [
    test_case "append_segments routes to one shard; siblings stay warm" `Quick
      (fun () ->
        let store = store_of_seed 61 in
        let m = Obs.Metrics.create () in
        let sh = Sharded.create ~shards:3 ~metrics:m store in
        ignore (Sharded.run_string sh q_mood);
        let builds0 = counter m "picture.index.builds" in
        let before = shard_versions sh in
        let n0 = Sharded.segment_count sh in
        let rng = Workload.Rng.make 62 in
        Sharded.append_segments sh
          [ Workload.Movies.random_meta rng ~object_pool:4 ];
        let after = shard_versions sh in
        let bumped = ref [] in
        Array.iteri
          (fun i v -> if v <> before.(i) then bumped := i :: !bumped)
          after;
        check (list int) "only the last shard bumped"
          [ Sharded.shard_count sh - 1 ]
          !bumped;
        check int "segment count grew" (n0 + 1) (Sharded.segment_count sh);
        (* the owning shard catches up with a delta merge, not a rebuild *)
        let f = parse q_mood in
        let merged = Sharded.run sh f in
        check int "builds stay flat" builds0
          (counter m "picture.index.builds");
        check int "one delta merge" 1
          (counter m "picture.index.delta_merges");
        check bool "byte-equal to the unsharded oracle" true
          (Sim_list.equal merged (oracle_run sh f)));
    test_case "append_video grows the last shard" `Quick (fun () ->
        let store = Fixtures.two_movie_store () in
        let sh = Sharded.create ~shards:2 store in
        let before = shard_versions sh in
        Sharded.append_video sh (Fixtures.western ());
        let after = shard_versions sh in
        check bool "first shard untouched" true (before.(0) = after.(0));
        check int "three videos" 3 (Sharded.video_count sh);
        check int "segments grew by the western's shots" 15
          (Sharded.segment_count sh);
        let offs = Sharded.offsets sh in
        check int "offsets refreshed in place" 6 offs.(1);
        let f = parse q_train in
        check bool "byte-equal to the unsharded oracle" true
          (Sim_list.equal (Sharded.run sh f) (oracle_run sh f)));
    test_case "append to a non-final video of a shard is rejected" `Quick
      (fun () ->
        let sh = Sharded.create ~shards:1 (Fixtures.two_movie_store ()) in
        (try
           Sharded.append_segments ~video:0 sh [ Fixtures.shot () ];
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ());
        (try
           Sharded.append_segments ~video:7 sh [ Fixtures.shot () ];
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ());
        (* video 1 is the corpus's last: accepted *)
        Sharded.append_segments ~video:1 sh [ Fixtures.shot () ];
        check int "appended" 10 (Sharded.segment_count sh));
    test_case "no-op mutations keep every shard warm" `Quick (fun () ->
        let store = store_of_seed 67 in
        let m = Obs.Metrics.create () in
        let sh = Sharded.create ~shards:3 ~metrics:m store in
        let level = Sharded.level sh in
        ignore (Sharded.run_string sh q_mood);
        let builds0 = counter m "picture.index.builds" in
        let before = shard_versions sh in
        Sharded.update_meta sh ~level ~id:1 ~f:(fun x -> x);
        Sharded.remove_attr sh ~level ~id:2 ~name:"no-such-attr";
        Sharded.remove_object sh ~level ~id:3 ~obj:9999;
        check bool "no shard version bumped" true
          (shard_versions sh = before);
        ignore (Sharded.run_string sh q_mood);
        check int "no rebuilds" builds0 (counter m "picture.index.builds"));
  ]

(* --- snapshots ------------------------------------------------------------ *)

let with_tmp f =
  let path = Filename.temp_file "htl_snapshot" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let snapshot_roundtrip_prop (seed, f) =
  let store = store_of_seed seed in
  let sh = Sharded.create ~shards:2 store in
  let outcome g =
    match g () with l -> Ok l | exception Query.Error msg -> Error msg
  in
  let before = outcome (fun () -> Sharded.run sh f) in
  with_tmp (fun path ->
      Sharded.save_snapshot sh path;
      let m = Obs.Metrics.create () in
      let sh2 = Sharded.load_snapshot ~metrics:m path in
      (match (before, outcome (fun () -> Sharded.run sh2 f)) with
      | Ok a, Ok b ->
          if not (Sim_list.equal a b) then
            QCheck.Test.fail_reportf "snapshot changes the result of %s"
              (Htl.Pretty.to_string f)
      | Error _, Error _ -> ()
      | _ ->
          QCheck.Test.fail_reportf
            "snapshot changes the outcome class of %s"
            (Htl.Pretty.to_string f));
      if counter m "picture.index.builds" <> 0 then
        QCheck.Test.fail_reportf
          "loading a snapshot rebuilt an index for %s"
          (Htl.Pretty.to_string f);
      true)

let snapshot_tests =
  let open Alcotest in
  [
    test_case "snapshot bytes are deterministic and load-stable" `Quick
      (fun () ->
        let store = store_of_seed 43 in
        let sh = Sharded.create ~shards:3 store in
        with_tmp (fun p1 ->
            with_tmp (fun p2 ->
                Sharded.save_snapshot sh p1;
                Sharded.save_snapshot sh p2;
                let b1 = read_file p1 in
                check bool "same store, same bytes" true (b1 = read_file p2);
                let sh2 = Sharded.load_snapshot p1 in
                Sharded.save_snapshot sh2 p2;
                check bool "save∘load is byte-stable" true
                  (b1 = read_file p2))));
    test_case "load answers with zero index rebuilds" `Quick (fun () ->
        let store = store_of_seed 47 in
        let sh = Sharded.create ~shards:2 store in
        with_tmp (fun path ->
            Sharded.save_snapshot sh path;
            let m = Obs.Metrics.create () in
            let sh2 = Sharded.load_snapshot ~metrics:m path in
            (* exercise both levels so every preloaded index is hit *)
            ignore (Sharded.run_string sh2 q_mood);
            ignore
              (Sharded.run_string (Sharded.with_level sh2 ~level:1) q_mood);
            check int "picture.index.builds" 0
              (counter m "picture.index.builds");
            check bool "registry hits recorded" true
              (counter m "picture.index.registry_hits" > 0)));
    test_case "snapshots round-trip appended state" `Quick (fun () ->
        let sh = Sharded.create ~shards:2 (Fixtures.two_movie_store ()) in
        Sharded.append_segments sh
          [ Fixtures.shot ~objects:[ Fixtures.john () ] () ];
        Sharded.set_attr sh ~level:(Sharded.level sh) ~id:1 ~name:"mood"
          (Metadata.Value.Str "tense");
        with_tmp (fun p1 ->
            with_tmp (fun p2 ->
                Sharded.save_snapshot sh p1;
                let sh2 = Sharded.load_snapshot p1 in
                check int "leaf count preserved" (Sharded.segment_count sh)
                  (Sharded.segment_count sh2);
                let f = parse q_mood in
                check bool "appended and edited state preserved" true
                  (Sim_list.equal (Sharded.run sh f) (Sharded.run sh2 f));
                Sharded.save_snapshot sh2 p2;
                check bool "save∘load is byte-stable after appends" true
                  (read_file p1 = read_file p2))));
    test_case "garbage is not a snapshot" `Quick (fun () ->
        with_tmp (fun path ->
            write_file path "definitely not a snapshot";
            match Snapshot.load path with
            | _ -> fail "accepted garbage"
            | exception Snapshot.Snapshot_error Snapshot.Not_a_snapshot -> ()));
    test_case "short header is truncated" `Quick (fun () ->
        with_tmp (fun path ->
            write_file path "HTLSNAP\x01";
            match Snapshot.load path with
            | _ -> fail "accepted a bare header"
            | exception
                Snapshot.Snapshot_error
                  (Snapshot.Truncated { expected = 20; got = 8 }) ->
                ()));
    test_case "unknown version is rejected" `Quick (fun () ->
        let sh = Sharded.create (store_of_seed 53) in
        with_tmp (fun path ->
            Sharded.save_snapshot sh path;
            let b = Bytes.of_string (read_file path) in
            Bytes.set b 7 '\x09';
            write_file path (Bytes.to_string b);
            match Snapshot.load path with
            | _ -> fail "accepted version 9"
            | exception
                Snapshot.Snapshot_error (Snapshot.Unsupported_version 9) ->
                ()));
    test_case "truncated payload is rejected with sizes" `Quick (fun () ->
        let sh = Sharded.create (store_of_seed 53) in
        with_tmp (fun path ->
            Sharded.save_snapshot sh path;
            let b = read_file path in
            write_file path (String.sub b 0 (String.length b - 5));
            match Snapshot.load path with
            | _ -> fail "accepted a truncated payload"
            | exception
                Snapshot.Snapshot_error (Snapshot.Truncated { expected; got })
              ->
                check int "expected full size" (String.length b) expected;
                check int "got the short size" (String.length b - 5) got));
    test_case "trailing bytes are corrupt" `Quick (fun () ->
        let sh = Sharded.create (store_of_seed 53) in
        with_tmp (fun path ->
            Sharded.save_snapshot sh path;
            write_file path (read_file path ^ "xx");
            match Snapshot.load path with
            | _ -> fail "accepted trailing bytes"
            | exception Snapshot.Snapshot_error (Snapshot.Corrupt _) -> ()));
    test_case "bit flip fails the checksum" `Quick (fun () ->
        let sh = Sharded.create (store_of_seed 53) in
        with_tmp (fun path ->
            Sharded.save_snapshot sh path;
            let b = Bytes.of_string (read_file path) in
            let mid = 20 + ((Bytes.length b - 20) / 2) in
            Bytes.set b mid
              (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
            write_file path (Bytes.to_string b);
            match Snapshot.load path with
            | _ -> fail "accepted a flipped bit"
            | exception Snapshot.Snapshot_error Snapshot.Checksum_mismatch ->
                ()));
    test_case "valid checksum over a malformed payload is corrupt" `Quick
      (fun () ->
        let sh = Sharded.create (store_of_seed 53) in
        with_tmp (fun path ->
            Sharded.save_snapshot sh path;
            let b = Bytes.of_string (read_file path) in
            (* claim 2^63-ish shards: the count varint overruns the
               payload, but the checksum is made honest again *)
            Bytes.set b 20 '\xFF';
            let payload =
              Bytes.sub_string b 20 (Bytes.length b - 20)
            in
            Bytes.set_int32_le b 16
              (Int32.of_int (Storage.Binio.crc32 payload));
            write_file path (Bytes.to_string b);
            match Snapshot.load path with
            | _ -> fail "accepted a malformed payload"
            | exception Snapshot.Snapshot_error (Snapshot.Corrupt _) -> ()));
  ]

let suites =
  [
    ("shard.unit", unit_tests);
    ("shard.ingest", ingest_tests);
    ( "shard.differential",
      [
        Helpers.qtest ~count:30 "sharded = unsharded (type 1)"
          (sharded_store_prop ~videos:4)
          (Helpers.arb_store_formula Helpers.gen_type1_formula);
        Helpers.qtest ~count:30 "sharded = unsharded (type 2)"
          sharded_store_prop
          (Helpers.arb_store_formula Helpers.gen_type2_formula);
        Helpers.qtest ~count:30 "sharded = unsharded (conjunctive)"
          sharded_store_prop
          (Helpers.arb_store_formula Helpers.gen_conjunctive_formula);
        Helpers.qtest ~count:30 "sharded = unsharded (mixed)"
          sharded_store_prop
          (Helpers.arb_store_formula Helpers.gen_closed_formula);
        Helpers.qtest ~count:200 "merged_top_k = top_k of the merged list"
          merged_top_k_prop arb_shard_parts;
      ] );
    ( "shard.snapshot",
      snapshot_tests
      @ [
          Helpers.qtest ~count:25 "save/load preserves every result"
            snapshot_roundtrip_prop
            (Helpers.arb_store_formula Helpers.gen_closed_formula);
        ] );
  ]
