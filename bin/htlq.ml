(* htlq — query videos with HTL from the command line.

   Examples:
     dune exec bin/htlq.exe -- --dataset casablanca \
       --query 'man_woman and eventually moving_train' --top 5
     dune exec bin/htlq.exe -- --dataset gulf --level 1 \
       --query 'at scene level (seg.name = "takeoff")'
     dune exec bin/htlq.exe -- --synthetic 1000 --seed 42 --backend sql \
       --query 'p1 until p2'
     dune exec bin/htlq.exe -- --explain --trace \
       --query 'man_woman and moving_train'

   Results go to stdout; diagnostics (errors, --trace spans, --metrics
   tables) go to stderr.  Exit codes: 0 success, 1 query/evaluation
   error, 2 usage error. *)

open Cmdliner

let exit_ok = 0
let exit_query_error = 1
let exit_usage = 2

type dataset =
  | Casablanca
  | Casablanca_store
  | Gulf
  | Synthetic of int
  | Store_file of string
  | Tables_file of string

module Sharded = Htl_shard.Sharded

(* Datasets --shards and snapshot save can partition: the sharded store
   needs the actual video store, not similarity tables. *)
let store_of_dataset = function
  | Casablanca_store -> Some (Workload.Casablanca.store ())
  | Gulf -> Some (Workload.Gulf_war.store ())
  | Store_file path -> Some (Storage.Io.load_store path)
  | Casablanca | Synthetic _ | Tables_file _ -> None

let store_required =
  "--shards and snapshots require a store-backed dataset \
   (casablanca-store, gulf, or --load-store)"

let make_context dataset seed level threshold =
  match dataset with
  | Casablanca ->
      let ctx = Workload.Casablanca.context () in
      Engine.Context.with_fresh_cache { ctx with Engine.Context.threshold }
  | Casablanca_store ->
      Engine.Context.of_store ~threshold ?level
        (Workload.Casablanca.store ())
  | Gulf -> Engine.Context.of_store ~threshold ?level (Workload.Gulf_war.store ())
  | Synthetic n ->
      let ctx =
        Workload.Synthetic.context_with_atoms ~seed ~n [ "p1"; "p2"; "p3" ]
      in
      Engine.Context.with_fresh_cache { ctx with Engine.Context.threshold }
  | Store_file path ->
      Engine.Context.of_store ~threshold ?level (Storage.Io.load_store path)
  | Tables_file path ->
      let tables = Storage.Io.load_tables path in
      let n =
        List.fold_left
          (fun acc (_, t) ->
            List.fold_left
              (fun acc (r : Simlist.Sim_table.row) ->
                List.fold_left
                  (fun acc (iv, _) -> max acc (Simlist.Interval.hi iv))
                  acc
                  (Simlist.Sim_list.entries r.list))
              acc
              (Simlist.Sim_table.rows t))
          1 tables
      in
      Engine.Context.of_tables ~threshold ~n tables

(* Diagnostics requested with --trace / --metrics, flushed to stderr
   after the query so stdout carries results only. *)
let emit_diagnostics tracer metrics =
  Option.iter
    (fun tr -> Format.eprintf "@[<v>trace:@,%a@]@." Obs.Trace.pp_tree tr)
    tracer;
  Option.iter
    (fun m -> Format.eprintf "@[<v>metrics:@,%a@]@." Obs.Metrics.pp m)
    metrics

(* Machine-readable exports requested with --prom / --trace-out /
   --slow-ms, emitted after the query on success and error paths alike
   (a failed query's telemetry is the interesting kind). *)
let emit_exports ~prom ~trace_out tracer registry querylog =
  (match (prom, registry) with
  | Some path, Some m -> Obs.Export.write_file path (Obs.Export.prometheus m)
  | _ -> ());
  (match (trace_out, tracer) with
  | Some path, Some tr ->
      Obs.Export.write_file path (Obs.Export.chrome_trace tr)
  | _ -> ());
  Option.iter (fun ql -> prerr_string (Obs.Querylog.to_jsonl ql)) querylog

let run (dataset, seed, level, threshold, shards, snapshot) backend query top
    classify_only explain trace metrics prom trace_out slow_ms no_index =
  match Htl.Parser.formula_of_string_opt query with
  | Error msg ->
      Format.eprintf "syntax error: %s@." msg;
      exit_query_error
  | Ok f -> (
      let cls = Htl.Classify.classify f in
      if classify_only then begin
        Format.printf "formula class: %s@." (Htl.Classify.cls_to_string cls);
        exit_ok
      end
      else
        match
          match backend with
          | "direct" -> Some Engine.Query.Direct_backend
          | "sql" -> Some Engine.Query.Sql_backend_choice
          | "auto" -> Some Engine.Query.Auto_backend
          | _ -> None
        with
        | None ->
            Format.eprintf "unknown backend %S (use direct, sql or auto)@."
              backend;
            exit_usage
        | Some backend -> (
            let tracer =
              if trace || Option.is_some trace_out then
                Some (Obs.Trace.create ())
              else None
            in
            let registry =
              (* --slow-ms wants metrics too: the slow-query log's
                 per-level scan deltas come from the registry *)
              if metrics || Option.is_some prom || Option.is_some slow_ms then
                Some (Obs.Metrics.create ())
              else None
            in
            let querylog =
              Option.map
                (fun ms -> Obs.Querylog.create ~threshold_s:(ms /. 1000.) ())
                slow_ms
            in
            let emit_exports () =
              emit_exports ~prom ~trace_out tracer registry querylog
            in
            (* the stderr tables stay opt-in: a registry or tracer that
               exists only to feed an export should not print *)
            let shown_tracer = if trace then tracer else None in
            let shown_registry = if metrics then registry else None in
            (* the result rendering is shared by the plain and sharded
               paths so the output format cannot drift between them *)
            let print_result result =
              Format.printf "formula class: %s@."
                (Htl.Classify.cls_to_string cls);
              Format.printf "@.%a@." (Engine.Topk.pp_table ?header:None) result;
              Format.printf "@.top %d segments:@." top;
              List.iter
                (fun (id, sim) ->
                  Format.printf "  segment %d: %.4f (fraction %.3f)@." id
                    (Simlist.Sim.actual sim) (Simlist.Sim.fraction sim))
                (Engine.Topk.top_k result ~k:top)
            in
            let no_index_config =
              if no_index then
                Some
                  {
                    Picture.Retrieval.default_config with
                    Picture.Retrieval.prune = false;
                  }
              else None
            in
            match
              match snapshot with
              | Some path ->
                  `Sharded
                    (Sharded.load_snapshot ?config:no_index_config ~threshold
                       ?level ?metrics:registry ?querylog path)
              | None ->
                  if shards <= 1 then
                    `Plain (make_context dataset seed level threshold)
                  else (
                    match store_of_dataset dataset with
                    | Some store ->
                        `Sharded
                          (Sharded.create ~shards ?config:no_index_config
                             ~threshold ?level ?metrics:registry ?querylog
                             store)
                    | None -> failwith store_required)
            with
            | exception Storage.Snapshot.Snapshot_error e ->
                Format.eprintf "snapshot error: %s@."
                  (Storage.Snapshot.error_to_string e);
                exit_query_error
            | exception Sys_error msg ->
                Format.eprintf "error: %s@." msg;
                exit_query_error
            | exception Failure msg ->
                Format.eprintf "%s@." msg;
                exit_usage
            | `Sharded sh -> (
                if explain then
                  match Sharded.explain ~backend ~analyze:trace sh f with
                  | plan ->
                      Format.printf "%s@." plan;
                      emit_diagnostics None shown_registry;
                      emit_exports ();
                      exit_ok
                  | exception Engine.Query.Error msg ->
                      Format.eprintf "error: %s@." msg;
                      emit_exports ();
                      exit_query_error
                else
                  match Sharded.run ~backend sh f with
                  | result ->
                      print_result result;
                      emit_diagnostics None shown_registry;
                      emit_exports ();
                      exit_ok
                  | exception Engine.Query.Error msg ->
                      Format.eprintf "error: %s@." msg;
                      emit_diagnostics None shown_registry;
                      emit_exports ();
                      exit_query_error)
            | `Plain ctx -> (
                let ctx =
                  if no_index then
                    {
                      ctx with
                      Engine.Context.picture_config =
                        {
                          ctx.Engine.Context.picture_config with
                          Picture.Retrieval.prune = false;
                        };
                    }
                  else ctx
                in
                let ctx =
                  Option.fold ~none:ctx
                    ~some:(Engine.Context.with_tracer ctx)
                    tracer
                in
                let ctx =
                  Option.fold ~none:ctx
                    ~some:(Engine.Context.with_metrics ctx)
                    registry
                in
                let ctx =
                  Option.fold ~none:ctx
                    ~some:(Engine.Context.with_querylog ctx)
                    querylog
                in
                if explain then
                  (* --trace upgrades the explain to an analyzed run: the
                     query executes and the tree carries per-node timings *)
                  match Engine.Query.explain ~backend ~analyze:trace ctx f with
                  | report ->
                      Format.printf "%a@." Engine.Explain.pp report;
                      emit_diagnostics None shown_registry;
                      emit_exports ();
                      exit_ok
                  | exception Engine.Query.Error msg ->
                      Format.eprintf "error: %s@." msg;
                      emit_exports ();
                      exit_query_error
                else
                  match Engine.Query.run ~backend ctx f with
                  | result ->
                      print_result result;
                      emit_diagnostics shown_tracer shown_registry;
                      emit_exports ();
                      exit_ok
                  | exception Engine.Query.Error msg ->
                      Format.eprintf "error: %s@." msg;
                      emit_diagnostics shown_tracer shown_registry;
                      emit_exports ();
                      exit_query_error)))

let dataset_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "casablanca" -> Ok Casablanca
    | "casablanca-store" -> Ok Casablanca_store
    | "gulf" -> Ok Gulf
    | other -> (
        match int_of_string_opt other with
        | Some _ -> Error (`Msg "use --synthetic N for synthetic data")
        | None -> Error (`Msg (Printf.sprintf "unknown dataset %S" other)))
  in
  let print ppf = function
    | Casablanca -> Format.pp_print_string ppf "casablanca"
    | Casablanca_store -> Format.pp_print_string ppf "casablanca-store"
    | Gulf -> Format.pp_print_string ppf "gulf"
    | Synthetic n -> Format.fprintf ppf "synthetic:%d" n
    | Store_file path -> Format.fprintf ppf "store:%s" path
    | Tables_file path -> Format.fprintf ppf "tables:%s" path
  in
  Arg.conv (parse, print)

(* --- argument terms shared between the subcommands -------------------------- *)

let dataset_t =
  Arg.(
    value
    & opt dataset_arg Casablanca
    & info [ "dataset" ] ~docv:"NAME"
        ~doc:
          "Dataset: casablanca (the paper's Tables 1-2 as input), \
           casablanca-store (meta-data reconstruction), gulf (the \
           4-level Gulf-war video).")

let synthetic_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "synthetic" ] ~docv:"N"
        ~doc:"Use N random segments with atomic predicates p1, p2, p3.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let level_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "level" ] ~docv:"L"
        ~doc:"Hierarchy level the query is asserted on (default: leaves).")

let threshold_t =
  Arg.(
    value & opt float 0.5
    & info [ "threshold" ] ~doc:"Fractional until-threshold.")

let load_store_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "load-store" ] ~docv:"FILE"
        ~doc:"Load a video store saved by the storage library.")

let load_tables_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "load-tables" ] ~docv:"FILE"
        ~doc:"Load a bundle of atomic similarity tables.")

let shards_t =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the store into N shards with scatter-gather \
           evaluation (store-backed datasets only; 1 keeps the store \
           unsharded).")

let snapshot_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:
          "Load a binary snapshot written by $(b,htlq snapshot save) — \
           stores and finalized indexes, no rebuild — instead of a \
           dataset (overrides --dataset and --shards).")

(* (dataset, seed, level, threshold, shards, snapshot), with --synthetic
   / --load-store / --load-tables taking precedence over --dataset *)
let context_args_t =
  let combine dataset synthetic load_store load_tables seed level threshold
      shards snapshot =
    let dataset =
      match (synthetic, load_store, load_tables) with
      | Some n, _, _ -> Synthetic n
      | None, Some path, _ -> Store_file path
      | None, None, Some path -> Tables_file path
      | None, None, None -> dataset
    in
    (dataset, seed, level, threshold, shards, snapshot)
  in
  Term.(
    const combine $ dataset_t $ synthetic_t $ load_store_t $ load_tables_t
    $ seed_t $ level_t $ threshold_t $ shards_t $ snapshot_t)

let query_cmd_term =
  let backend =
    Arg.(
      value & opt string "direct"
      & info [ "backend" ]
          ~doc:
            "Backend: direct, sql, or auto (the cost-based planner picks \
             per query).")
  in
  let query =
    Arg.(
      required
      & opt (some string) None
      & info [ "query"; "q" ] ~docv:"HTL" ~doc:"The HTL query.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top"; "k" ] ~doc:"How many segments.")
  in
  let classify_only =
    Arg.(
      value & flag
      & info [ "classify" ] ~doc:"Only print the formula's class and exit.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the evaluation plan instead of results.  With \
             $(b,--trace) the query actually runs and the tree carries \
             per-node timings (EXPLAIN ANALYZE).")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record evaluation spans and print the span tree to stderr \
             after the query (with $(b,--explain): analyze the plan).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry to stderr after the query.")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry as Prometheus text exposition to \
             $(docv) after the query (implies collecting metrics; use \
             /dev/stdout to print).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the recorded spans as Chrome trace-event JSON to \
             $(docv) after the query (implies recording spans; load the \
             file at ui.perfetto.dev).")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Log queries at least $(docv) milliseconds long to stderr as \
             JSONL slow-query records (0 logs every query).")
  in
  let no_index =
    Arg.(
      value & flag
      & info [ "no-index" ]
          ~doc:
            "Disable index-based candidate pruning: atomic formulas score \
             every segment of the level (the pre-index behaviour, for A/B \
             debugging).  Results are identical either way.")
  in
  Term.(
    const run $ context_args_t $ backend $ query $ top $ classify_only
    $ explain $ trace $ metrics $ prom $ trace_out $ slow_ms $ no_index)

(* --- htlq serve -------------------------------------------------------------- *)

let serve_run (dataset, seed, level, threshold, shards, snapshot) host port
    port_file workers queue_capacity timeout_ms io_timeout_ms max_body domains
    slow_ms trace_sample trace_slow_ms =
  let pool =
    if domains > 0 then Some (Parallel.Pool.create ~domains ()) else None
  in
  let metrics = Obs.Metrics.create () in
  let querylog = Obs.Querylog.create ~threshold_s:(slow_ms /. 1000.) () in
  let stats = Obs.Stats.create () in
  match
    match snapshot with
    | Some path ->
        `Sharded
          (Sharded.load_snapshot ~threshold ?level ?pool ~metrics ~querylog
             ~stats path)
    | None ->
        if shards <= 1 then `Plain (make_context dataset seed level threshold)
        else (
          match store_of_dataset dataset with
          | Some store ->
              `Sharded
                (Sharded.create ~shards ~threshold ?level ?pool ~metrics
                   ~querylog ~stats store)
          | None -> failwith store_required)
  with
  | exception (Sys_error msg | Failure msg) ->
      Format.eprintf "serve: %s@." msg;
      exit_query_error
  | exception Storage.Snapshot.Snapshot_error e ->
      Format.eprintf "serve: snapshot error: %s@."
        (Storage.Snapshot.error_to_string e);
      exit_query_error
  | exec -> (
      let ctx, sharded =
        match exec with
        | `Plain ctx ->
            let ctx =
              match pool with
              | Some p -> Engine.Context.with_pool ctx p
              | None -> ctx
            in
            (ctx, None)
        | `Sharded sh -> ((Sharded.contexts sh).(0), Some sh)
      in
      let trace_slow_s =
        Option.map (fun ms -> ms /. 1000.) trace_slow_ms
      in
      let state =
        Htl_server.Router.make ~metrics ~querylog ~stats ~trace_sample
          ?trace_slow_s ?sharded ctx
      in
      let config =
        {
          Htl_server.Server.default_config with
          host;
          port;
          workers;
          queue_capacity;
          request_timeout_s = timeout_ms /. 1000.;
          io_timeout_s = io_timeout_ms /. 1000.;
          limits =
            { Htl_server.Http.default_limits with max_body_bytes = max_body };
        }
      in
      match Htl_server.Server.start ~config state with
      | exception Unix.Unix_error (e, _, _) ->
          Format.eprintf "serve: cannot bind %s:%d: %s@." host port
            (Unix.error_message e);
          exit_query_error
      | exception Failure msg ->
          Format.eprintf "serve: %s@." msg;
          exit_query_error
      | server ->
          Htl_server.Server.install_signal_handlers server;
          let bound = Htl_server.Server.port server in
          Option.iter
            (fun path ->
              Out_channel.with_open_text path (fun oc ->
                  Printf.fprintf oc "%d\n" bound))
            port_file;
          (* "@." flushes, so a log-following test sees the banner as
             soon as the socket is live *)
          Format.printf
            "htlq: serving on %s:%d (workers=%d, queue=%d, domains=%d)@." host
            bound workers queue_capacity domains;
          Htl_server.Server.wait server;
          Option.iter Parallel.Pool.shutdown pool;
          Format.printf "htlq: shutdown complete@.";
          exit_ok)

let serve_term =
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address (an IP literal).")
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Port to listen on; 0 picks an ephemeral port.")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound port to $(docv) once listening — how \
             scripts find an ephemeral port.")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Connection worker threads.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission-control bound: accepted connections allowed to \
             wait for a worker; beyond it new connections get 429.")
  in
  let timeout_ms =
    Arg.(
      value & opt float 30000.
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline for /query and /batch; past it the \
             client gets 503 (0 rejects every query — for tests).")
  in
  let io_timeout_ms =
    Arg.(
      value & opt float 10000.
      & info [ "io-timeout-ms" ] ~docv:"MS"
          ~doc:"Socket read/write timeout and keep-alive idle limit.")
  in
  let max_body =
    Arg.(
      value
      & opt int Htl_server.Http.default_limits.Htl_server.Http.max_body_bytes
      & info [ "max-body" ] ~docv:"BYTES" ~doc:"Request body size limit.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Domain pool for parallel evaluation shared by all requests \
             (0: evaluate on the worker thread).")
  in
  let slow_ms =
    Arg.(
      value & opt float 100.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Slow-query log threshold served at /slowlog.")
  in
  let trace_sample =
    Arg.(
      value & opt int 0
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Trace 1 in $(docv) requests (deterministic counter) into \
             the /trace ring; 0 disables sampling.")
  in
  let trace_slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "trace-slow-ms" ] ~docv:"MS"
          ~doc:
            "Trace every request but retain only those slower than \
             $(docv) — the retroactive slow-trace net; composes with \
             $(b,--trace-sample).")
  in
  Term.(
    const serve_run $ context_args_t $ host $ port $ port_file $ workers
    $ queue $ timeout_ms $ io_timeout_ms $ max_body $ domains $ slow_ms
    $ trace_sample $ trace_slow_ms)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-running query service: POST /query, POST /batch, GET \
          /metrics, GET /slowlog, GET /stats, GET /trace, GET /healthz over \
          one warm context.")
    serve_term

(* --- htlq http ---------------------------------------------------------------- *)

let http_run host port target body body_file timeout_ms =
  let body =
    match body_file with
    | Some path -> Some (In_channel.with_open_bin path In_channel.input_all)
    | None -> body
  in
  let meth = match body with Some _ -> "POST" | None -> "GET" in
  match
    Htl_server.Client.request ~timeout_s:(timeout_ms /. 1000.) ~host ~port
      ~meth ~target ?body ()
  with
  | Error msg ->
      Format.eprintf "http: %s@." msg;
      exit_query_error
  | Ok (status, _headers, body) ->
      if status >= 200 && status < 300 then begin
        print_string body;
        flush stdout;
        exit_ok
      end
      else begin
        (* error bodies go to stderr with the status, so piping stdout
           into a JSON consumer never feeds it an error payload *)
        prerr_string body;
        flush stderr;
        Format.eprintf "http status %d@." status;
        exit_query_error
      end

let http_term =
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address (an IP literal).")
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH" ~doc:"Request target, e.g. /healthz or /query.")
  in
  let body =
    Arg.(
      value
      & opt (some string) None
      & info [ "body"; "d" ] ~docv:"JSON"
          ~doc:"Request body; its presence makes the request a POST.")
  in
  let body_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "body-file" ] ~docv:"FILE"
          ~doc:"Read the request body from $(docv) (overrides $(b,--body)).")
  in
  let timeout_ms =
    Arg.(
      value & opt float 30000.
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Connect and IO timeout.")
  in
  Term.(
    const http_run $ host $ port $ target $ body $ body_file $ timeout_ms)

let http_cmd =
  Cmd.v
    (Cmd.info "http"
       ~doc:
         "Send one request to a running htlq server and print the response \
          body (exit 1 on transport errors and non-2xx statuses, whose \
          bodies go to stderr).")
    http_term

(* --- htlq stats --------------------------------------------------------------- *)

let stats_run host port timeout_ms =
  match
    Htl_server.Client.request ~timeout_s:(timeout_ms /. 1000.) ~host ~port
      ~meth:"GET" ~target:"/stats" ()
  with
  | Error msg ->
      Format.eprintf "stats: %s@." msg;
      exit_query_error
  | Ok (status, _headers, body) when status >= 200 && status < 300 -> (
      match Obs.Json.of_string body with
      | Ok json ->
          print_endline (Obs.Json.to_string_pretty json);
          exit_ok
      | Error msg ->
          Format.eprintf "stats: invalid JSON from server: %s@." msg;
          exit_query_error)
  | Ok (status, _headers, body) ->
      prerr_string body;
      flush stderr;
      Format.eprintf "http status %d@." status;
      exit_query_error

let stats_term =
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address (an IP literal).")
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let timeout_ms =
    Arg.(
      value & opt float 30000.
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Connect and IO timeout.")
  in
  Term.(const stats_run $ host $ port $ timeout_ms)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Fetch the running server's query statistics (GET /stats) and \
          pretty-print them: per-query EWMA latency and quantiles, per-atom \
          observed selectivity, per-backend error rates.")
    stats_term

(* --- htlq snapshot ----------------------------------------------------------- *)

let pp_snapshot_summary verb path sh =
  Format.printf "snapshot: %s %s (%d shards, %d leaf segments, %d levels)@."
    verb path (Sharded.shard_count sh)
    (Sharded.count_at sh ~level:(Sharded.levels sh))
    (Sharded.levels sh)

let snapshot_save_run (dataset, seed, level, threshold, shards, snapshot) out =
  ignore seed;
  match
    match snapshot with
    | Some path -> Sharded.load_snapshot ~threshold ?level path
    | None -> (
        match store_of_dataset dataset with
        | Some store -> Sharded.create ~shards ~threshold ?level store
        | None -> failwith store_required)
  with
  | exception Failure msg ->
      Format.eprintf "snapshot: %s@." msg;
      exit_usage
  | exception Sys_error msg ->
      Format.eprintf "snapshot: %s@." msg;
      exit_query_error
  | exception Storage.Snapshot.Snapshot_error e ->
      Format.eprintf "snapshot error: %s@."
        (Storage.Snapshot.error_to_string e);
      exit_query_error
  | sh -> (
      match Sharded.save_snapshot sh out with
      | () ->
          pp_snapshot_summary "wrote" out sh;
          exit_ok
      | exception Sys_error msg ->
          Format.eprintf "snapshot: %s@." msg;
          exit_query_error)

let snapshot_load_run path =
  match Sharded.load_snapshot path with
  | sh ->
      pp_snapshot_summary "loaded" path sh;
      exit_ok
  | exception Storage.Snapshot.Snapshot_error e ->
      Format.eprintf "snapshot error: %s@."
        (Storage.Snapshot.error_to_string e);
      exit_query_error
  | exception Sys_error msg ->
      Format.eprintf "snapshot: %s@." msg;
      exit_query_error

let snapshot_save_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the snapshot.")
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:
         "Build the dataset (honouring $(b,--shards)), finalize its indexes \
          for every level, and write a binary snapshot to $(b,--out).")
    Term.(const snapshot_save_run $ context_args_t $ out)

let snapshot_load_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Snapshot file to load.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Load and validate a snapshot (magic, version, length, checksum, \
          payload) and print its shape; exit 1 on any corruption.")
    Term.(const snapshot_load_run $ path)

let snapshot_cmd =
  Cmd.group
    (Cmd.info "snapshot"
       ~doc:
         "Save or load binary store snapshots (stores plus finalized \
          indexes) for rebuild-free cold starts.")
    [ snapshot_save_cmd; snapshot_load_cmd ]

let cmd =
  Cmd.group ~default:query_cmd_term
    (Cmd.info "htlq" ~doc:"Similarity-based retrieval of videos with HTL"
       ~exits:
         [
           Cmd.Exit.info exit_ok ~doc:"on success.";
           Cmd.Exit.info exit_query_error
             ~doc:"on query errors (syntax, unsupported formula, backend).";
           Cmd.Exit.info exit_usage ~doc:"on command-line usage errors.";
         ])
    [ serve_cmd; http_cmd; stats_cmd; snapshot_cmd ]

let () = exit (Cmd.eval' ~term_err:exit_usage cmd)
