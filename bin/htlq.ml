(* htlq — query videos with HTL from the command line.

   Examples:
     dune exec bin/htlq.exe -- --dataset casablanca \
       --query 'man_woman and eventually moving_train' --top 5
     dune exec bin/htlq.exe -- --dataset gulf --level 1 \
       --query 'at scene level (seg.name = "takeoff")'
     dune exec bin/htlq.exe -- --synthetic 1000 --seed 42 --backend sql \
       --query 'p1 until p2'
*)

open Cmdliner

type dataset =
  | Casablanca
  | Casablanca_store
  | Gulf
  | Synthetic of int
  | Store_file of string
  | Tables_file of string

let make_context dataset seed level threshold =
  match dataset with
  | Casablanca ->
      let ctx = Workload.Casablanca.context () in
      Engine.Context.with_fresh_cache { ctx with Engine.Context.threshold }
  | Casablanca_store ->
      Engine.Context.of_store ~threshold ?level
        (Workload.Casablanca.store ())
  | Gulf -> Engine.Context.of_store ~threshold ?level (Workload.Gulf_war.store ())
  | Synthetic n ->
      let ctx =
        Workload.Synthetic.context_with_atoms ~seed ~n [ "p1"; "p2"; "p3" ]
      in
      Engine.Context.with_fresh_cache { ctx with Engine.Context.threshold }
  | Store_file path ->
      Engine.Context.of_store ~threshold ?level (Storage.Io.load_store path)
  | Tables_file path ->
      let tables = Storage.Io.load_tables path in
      let n =
        List.fold_left
          (fun acc (_, t) ->
            List.fold_left
              (fun acc (r : Simlist.Sim_table.row) ->
                List.fold_left
                  (fun acc (iv, _) -> max acc (Simlist.Interval.hi iv))
                  acc
                  (Simlist.Sim_list.entries r.list))
              acc
              (Simlist.Sim_table.rows t))
          1 tables
      in
      Engine.Context.of_tables ~threshold ~n tables

let run dataset seed level threshold backend query top classify_only =
  match Htl.Parser.formula_of_string_opt query with
  | Error msg ->
      Format.eprintf "syntax error: %s@." msg;
      exit 1
  | Ok f -> (
      let cls = Htl.Classify.classify f in
      Format.printf "formula class: %s@." (Htl.Classify.cls_to_string cls);
      if classify_only then exit 0;
      let ctx = make_context dataset seed level threshold in
      let backend =
        match backend with
        | "direct" -> Engine.Query.Direct_backend
        | "sql" -> Engine.Query.Sql_backend_choice
        | other ->
            Format.eprintf "unknown backend %S (use direct or sql)@." other;
            exit 1
      in
      match Engine.Query.run ~backend ctx f with
      | result ->
          Format.printf "@.%a@." (Engine.Topk.pp_table ?header:None) result;
          Format.printf "@.top %d segments:@." top;
          List.iter
            (fun (id, sim) ->
              Format.printf "  segment %d: %.4f (fraction %.3f)@." id
                (Simlist.Sim.actual sim) (Simlist.Sim.fraction sim))
            (Engine.Topk.top_k result ~k:top)
      | exception Engine.Query.Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 1)

let dataset_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "casablanca" -> Ok Casablanca
    | "casablanca-store" -> Ok Casablanca_store
    | "gulf" -> Ok Gulf
    | other -> (
        match int_of_string_opt other with
        | Some _ -> Error (`Msg "use --synthetic N for synthetic data")
        | None -> Error (`Msg (Printf.sprintf "unknown dataset %S" other)))
  in
  let print ppf = function
    | Casablanca -> Format.pp_print_string ppf "casablanca"
    | Casablanca_store -> Format.pp_print_string ppf "casablanca-store"
    | Gulf -> Format.pp_print_string ppf "gulf"
    | Synthetic n -> Format.fprintf ppf "synthetic:%d" n
    | Store_file path -> Format.fprintf ppf "store:%s" path
    | Tables_file path -> Format.fprintf ppf "tables:%s" path
  in
  Arg.conv (parse, print)

let cmd =
  let dataset =
    Arg.(
      value
      & opt dataset_arg Casablanca
      & info [ "dataset" ] ~docv:"NAME"
          ~doc:
            "Dataset: casablanca (the paper's Tables 1-2 as input), \
             casablanca-store (meta-data reconstruction), gulf (the \
             4-level Gulf-war video).")
  in
  let synthetic =
    Arg.(
      value
      & opt (some int) None
      & info [ "synthetic" ] ~docv:"N"
          ~doc:"Use N random segments with atomic predicates p1, p2, p3.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
  in
  let level =
    Arg.(
      value
      & opt (some int) None
      & info [ "level" ] ~docv:"L"
          ~doc:"Hierarchy level the query is asserted on (default: leaves).")
  in
  let threshold =
    Arg.(
      value & opt float 0.5
      & info [ "threshold" ] ~doc:"Fractional until-threshold.")
  in
  let backend =
    Arg.(
      value & opt string "direct"
      & info [ "backend" ] ~doc:"Backend: direct or sql.")
  in
  let query =
    Arg.(
      required
      & opt (some string) None
      & info [ "query"; "q" ] ~docv:"HTL" ~doc:"The HTL query.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top"; "k" ] ~doc:"How many segments.")
  in
  let classify_only =
    Arg.(
      value & flag
      & info [ "classify" ] ~doc:"Only print the formula's class and exit.")
  in
  let load_store =
    Arg.(
      value
      & opt (some string) None
      & info [ "load-store" ] ~docv:"FILE"
          ~doc:"Load a video store saved by the storage library.")
  in
  let load_tables =
    Arg.(
      value
      & opt (some string) None
      & info [ "load-tables" ] ~docv:"FILE"
          ~doc:"Load a bundle of atomic similarity tables.")
  in
  let combine dataset synthetic load_store load_tables seed level threshold
      backend query top classify_only =
    let dataset =
      match (synthetic, load_store, load_tables) with
      | Some n, _, _ -> Synthetic n
      | None, Some path, _ -> Store_file path
      | None, None, Some path -> Tables_file path
      | None, None, None -> dataset
    in
    run dataset seed level threshold backend query top classify_only
  in
  Cmd.v
    (Cmd.info "htlq" ~doc:"Similarity-based retrieval of videos with HTL")
    Term.(
      const combine $ dataset $ synthetic $ load_store $ load_tables $ seed
      $ level $ threshold $ backend $ query $ top $ classify_only)

let () = exit (Cmd.eval cmd)
