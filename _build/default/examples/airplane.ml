(* The paper's formula (C): the freeze quantifier.

   "The video starts with a picture containing an airplane followed by
   another picture in which the same plane appears at a higher altitude":

     exists z . (present(z) and type(z) = "airplane")
                and [h <- height(z)] eventually (present(z) and height(z) > h)

     dune exec examples/airplane.exe
*)

open Metadata

let plane ~id ~height =
  Entity.make ~id ~otype:"airplane" ~attrs:[ ("height", Value.Int height) ] ()

let shot objects = Seg_meta.make ~objects ()

let () =
  (* two planes: #1 climbs, #2 descends — only the climbing one should
     match exactly *)
  let shots =
    [
      shot [ plane ~id:1 ~height:100; plane ~id:2 ~height:900 ];
      shot [ plane ~id:1 ~height:400 ];
      shot [ plane ~id:2 ~height:500 ];
      shot [ plane ~id:1 ~height:800; plane ~id:2 ~height:200 ];
      shot [];
    ]
  in
  let store =
    Video_model.Store.of_video
      (Video_model.Video.two_level ~title:"airshow" shots)
  in
  let query =
    "exists z . (present(z) and type(z) = \"airplane\") and [h <- \
     height(z)] eventually (present(z) and height(z) > h)"
  in
  let f = Htl.Parser.formula_of_string query in
  Format.printf "formula (C): %s@.class: %s@.@." query
    (Htl.Classify.cls_to_string (Htl.Classify.classify f));
  let ctx = Engine.Context.of_store store in
  let result = Engine.Query.run ctx f in
  Format.printf "%a@." (Engine.Topk.pp_table ?header:None) result;
  Format.printf
    "@.(max %.1f = four weighted conditions; shots where a plane later \
     flies higher score it in full)@."
    (Simlist.Sim_list.max_sim result)
