(* Quickstart: build a tiny two-level video, run an HTL query with the
   similarity engine, print the ranked result.

     dune exec examples/quickstart.exe
*)

open Metadata

let shot objects = Seg_meta.make ~objects ()
let man ~id ~name = Entity.make ~id ~otype:"man" ~attrs:[ ("name", Value.Str name) ] ()
let train ~id = Entity.make ~id ~otype:"train" ()

let () =
  (* 1. meta-data for six shots: John appears, then a train *)
  let shots =
    [
      shot [ man ~id:1 ~name:"John Wayne" ];
      shot [ man ~id:1 ~name:"John Wayne"; man ~id:2 ~name:"Bob" ];
      shot [];
      shot [ man ~id:1 ~name:"John Wayne" ];
      shot [ train ~id:3 ];
      shot [];
    ]
  in
  let video = Video_model.Video.two_level ~title:"demo" shots in
  let store = Video_model.Store.of_video video in

  (* 2. an HTL query: John keeps appearing until a train shows up *)
  let query =
    "(exists x . (present(x) and name(x) = \"John Wayne\")) until (exists \
     y . (present(y) and type(y) = \"train\"))"
  in
  let ctx = Engine.Context.of_store store in
  let result = Engine.Query.run_string ctx query in

  Format.printf "query: %s@.@." query;
  Format.printf "similarity list (intervals of shot ids):@.%a@."
    (Engine.Topk.pp_table ?header:None)
    result;

  (* 3. the top-3 shots *)
  Format.printf "@.top 3 shots:@.";
  List.iter
    (fun (id, sim) ->
      Format.printf "  shot %d: %.3f (fraction %.2f)@." id
        (Simlist.Sim.actual sim) (Simlist.Sim.fraction sim))
    (Engine.Query.top_k ctx ~k:3 query)
