(* The paper's §4.1 test case end to end: "The Making of the Casablanca",
   50 shots.  Prints Tables 1-4 of the paper; Tables 3 and 4 are computed
   by the engine (both backends) from the shipped Tables 1 and 2.

     dune exec examples/casablanca.exe
*)

module C = Workload.Casablanca

let print_table title list =
  Format.printf "@.%s@." title;
  Format.printf "%a@." (Engine.Topk.pp_table ?header:None) list

let () =
  Format.printf
    "The Making of the Casablanca — 50 shots, Query 1 = %s@." C.query1;

  print_table "Table 1 (input): Moving-Train" C.moving_train;
  print_table "Table 2 (input): Man-Woman" C.man_woman;

  let ctx = C.context () in
  let table3 = Engine.Query.run_string ctx "eventually moving_train" in
  print_table "Table 3 (computed): eventually Moving-Train" table3;

  let table4 = Engine.Query.run_string ctx C.query1 in
  print_table "Table 4 (computed, direct approach): Query 1" table4;

  let table4_sql =
    Engine.Query.run_string ~backend:Engine.Query.Sql_backend_choice ctx
      C.query1
  in
  Format.printf "@.SQL backend produces %s result.@."
    (if Simlist.Sim_list.equal table4 table4_sql then "an identical"
     else "A DIFFERENT (bug!)");

  (* the same query through the full pipeline: meta-data reconstruction,
     picture retrieval system included *)
  let store = C.store () in
  let ctx' = Engine.Context.of_store store in
  let reconstructed = Engine.Query.run_string ctx' C.store_query1 in
  print_table
    "Query 1 over the meta-data reconstruction (our scorer's values)"
    reconstructed
