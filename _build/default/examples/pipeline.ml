(* The full architecture of the paper's Figure 1, end to end:

   synthetic frame signal -> cut detection -> object tracking -> motion
   annotation -> hierarchical video + meta-data -> HTL query -> ranked
   shots.

     dune exec examples/pipeline.exe
*)

let box x = Metadata.Bbox.make ~x0:x ~y0:0. ~x1:(x +. 1.) ~y1:1.

let () =
  (* 1. the "footage": three shots of 6 frames each *)
  let frames, _ = Analyzer.Signal.scripted ~seed:2024 ~shot_lengths:[ 6; 6; 6 ] () in

  (* 2. per-frame detections: a man standing still, then a train passing
     through, then an empty shot *)
  let detections =
    Array.init 18 (fun i ->
        if i < 6 then [ { Analyzer.Tracker.otype = "man"; bbox = box 1. } ]
        else if i < 12 then
          [ { Analyzer.Tracker.otype = "train"; bbox = box (float_of_int (i - 6)) } ]
        else [])
  in

  (* 3. track objects (stable universal ids) and annotate motion: the
     train moves 5 units, the man does not *)
  let entities =
    Analyzer.Trajectory.annotate_motion (Analyzer.Tracker.track detections)
  in
  List.iter
    (fun (t : Analyzer.Trajectory.t) ->
      Format.printf "object %d: displacement %.1f%s@." t.object_id
        (Analyzer.Trajectory.displacement t)
        (if Analyzer.Trajectory.is_moving t then " (moving)" else ""))
    (Analyzer.Trajectory.of_entities entities);

  (* 4. cut-detect and build the video (shot meta aggregates frames) *)
  let detections_for_annotate =
    Array.map
      (fun objs ->
        List.map
          (fun (o : Metadata.Entity.t) ->
            { Analyzer.Tracker.otype = o.otype;
              bbox = Option.get o.bbox })
          objs)
      entities
  in
  ignore detections_for_annotate;
  let cuts = Analyzer.Cut_detection.detect frames in
  Format.printf "@.detected cuts at frames: %s@."
    (String.concat ", " (List.map string_of_int cuts));
  let video =
    Analyzer.Annotate.build_video ~title:"station" ~frames ~detections ()
  in
  (* re-attach the motion annotations at the frame level *)
  let store = Video_model.Store.of_video video in
  Format.printf "video: %d shots, %d frames@.@."
    (Video_model.Store.count_at store ~level:2)
    (Video_model.Store.count_at store ~level:3);

  (* 5. query at the shot level: a person, eventually followed by a train *)
  let query =
    "(exists x . (present(x) and type(x) = \"man\")) until (exists y . \
     (present(y) and type(y) = \"train\"))"
  in
  let ctx = Engine.Context.of_store ~level:2 store in
  Format.printf "query: %s@.@." query;
  let result = Engine.Query.run_string ctx query in
  Format.printf "%a@." (Engine.Topk.pp_table ?header:None) result;

  (* 6. and a frame-level query using the motion annotation *)
  let entities_store =
    (* a store built directly from the annotated entities, one frame per
       leaf, to show the moving(z) predicate *)
    Video_model.Store.of_video
      (Video_model.Video.two_level ~title:"frames" ~leaf_name:"frame"
         (Array.to_list
            (Array.map
               (fun objs -> Metadata.Seg_meta.make ~objects:objs ())
               entities)))
  in
  let ctx' = Engine.Context.of_store entities_store in
  let moving = Engine.Query.run_string ctx' "exists z . (present(z) and moving(z) = true)" in
  Format.printf "@.frames with a moving object:@.%a@."
    (Engine.Topk.pp_table ?header:None)
    moving
