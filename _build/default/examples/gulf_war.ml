(* The paper's §2.1 running example: a Gulf-war video arranged over four
   levels (video / sub-plot / scene / shot), queried with level modal
   operators — the extended-conjunctive fragment.

     dune exec examples/gulf_war.exe
*)

let () =
  let store = Workload.Gulf_war.store () in
  Format.printf "Gulf war video: %d sub-plots, %d scenes, %d shots@.@."
    (Video_model.Store.count_at store ~level:2)
    (Video_model.Store.count_at store ~level:3)
    (Video_model.Store.count_at store ~level:4);
  (* queries are asserted on the whole video (level 1) *)
  let ctx = Engine.Context.of_store store ~level:1 in
  List.iter
    (fun (name, src) ->
      let f = Htl.Parser.formula_of_string src in
      Format.printf "--- %s (%s)@.%s@." name
        (Htl.Classify.cls_to_string (Htl.Classify.classify f))
        src;
      let result = Engine.Query.run ctx f in
      (match Simlist.Sim_list.entries result with
      | [] -> Format.printf "  no match@."
      | _ ->
          Format.printf "  video similarity: %.3f of %.3f@."
            (Simlist.Sim_list.value_at result 1)
            (Simlist.Sim_list.max_sim result));
      Format.printf "@.")
    Workload.Gulf_war.queries
