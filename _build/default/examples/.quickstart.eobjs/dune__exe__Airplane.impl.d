examples/airplane.ml: Engine Entity Format Htl Metadata Seg_meta Simlist Value Video_model
