examples/browse.mli:
