examples/casablanca.mli:
