examples/gulf_war.mli:
