examples/pipeline.ml: Analyzer Array Engine Format List Metadata Option String Video_model
