examples/casablanca.ml: Engine Format Simlist Workload
