examples/gulf_war.ml: Engine Format Htl List Simlist Video_model Workload
