examples/browse.ml: Engine Entity Format List Metadata Seg_meta Simlist Value Video_model
