examples/airplane.mli:
