examples/pipeline.mli:
