examples/quickstart.mli:
