(* Browsing queries (§2.1): "the information provided by a browsing query
   may indicate western movies starring John Wayne and nothing else" —
   rank whole videos by a query on the upper levels of the hierarchy.

     dune exec examples/browse.exe
*)

open Metadata

let obj ~id ~otype ?attrs () = Entity.make ~id ~otype ?attrs ()
let shot objects = Seg_meta.make ~objects ()

let western =
  Video_model.Video.two_level ~title:"The Searchers"
    [
      shot [ obj ~id:1 ~otype:"man" ~attrs:[ ("name", Value.Str "John Wayne") ] () ];
      shot [ obj ~id:1 ~otype:"man" ~attrs:[ ("name", Value.Str "John Wayne") ] ();
             obj ~id:2 ~otype:"horse" () ];
      shot [];
    ]

let chase =
  Video_model.Video.two_level ~title:"Bullitt"
    [
      shot [ obj ~id:3 ~otype:"car" () ];
      shot [ obj ~id:3 ~otype:"car" (); obj ~id:4 ~otype:"car" () ];
    ]

let nature =
  Video_model.Video.two_level ~title:"Wild Horses"
    [ shot [ obj ~id:5 ~otype:"horse" () ]; shot [ obj ~id:6 ~otype:"horse" () ] ]

let () =
  let store = Video_model.Store.create [ western; chase; nature ] in
  List.iter
    (fun query ->
      Format.printf "browse: %s@." query;
      (match Engine.Browse.rank_videos store query with
      | [] -> Format.printf "  (no matching video)@."
      | ranked ->
          List.iter
            (fun (idx, title, sim) ->
              Format.printf "  #%d %-14s %.3f (fraction %.2f)@." idx title
                (Simlist.Sim.actual sim) (Simlist.Sim.fraction sim))
            ranked);
      Format.printf "@.")
    [
      (* title match at the root *)
      "seg.title = \"Bullitt\"";
      (* reach below the root: videos whose shots eventually show a horse *)
      "at shot level (eventually (exists x . (present(x) and type(x) = \
       \"horse\")))";
      (* starring John Wayne *)
      "at shot level (eventually (exists x . (present(x) and name(x) = \
       \"John Wayne\")))";
    ]
