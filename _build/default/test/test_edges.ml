(* Edge cases across the stack: singleton sequences, extreme thresholds,
   formatting goldens, expression precedence, multi-video ranking. *)

open Simlist
module Ctx = Engine.Context

let iv = Interval.make
let sl ~max entries = Sim_list.of_entries ~max entries
let sim_list = Alcotest.testable Sim_list.pp Sim_list.equal

let singleton_tests =
  let open Alcotest in
  let e1 = Extent.single 1 in
  [
    test_case "next on a one-segment video is empty" `Quick (fun () ->
        let l = sl ~max:2. [ (iv 1 1, 2.) ] in
        check bool "empty" true
          (Sim_list.is_empty (Sim_list.next_shift ~extents:e1 l)));
    test_case "eventually on a one-segment video is the value itself" `Quick
      (fun () ->
        let l = sl ~max:2. [ (iv 1 1, 2.) ] in
        check sim_list "same" l (Sim_list.eventually ~extents:e1 l));
    test_case "until on a one-segment video needs h at the segment" `Quick
      (fun () ->
        let g = sl ~max:2. [ (iv 1 1, 2.) ] in
        let h = Sim_list.empty ~max:3. in
        check bool "empty" true
          (Sim_list.is_empty (Sim_list.until_merge ~extents:e1 g h));
        let h2 = sl ~max:3. [ (iv 1 1, 1.) ] in
        check (float 0.) "h at self" 1.
          (Sim_list.value_at (Sim_list.until_merge ~extents:e1 g h2) 1));
    test_case "a store of one-shot videos" `Quick (fun () ->
        let mk title =
          Video_model.Video.two_level ~title
            [ Metadata.Seg_meta.make ~objects:[ Fixtures.john () ] () ]
        in
        let store = Video_model.Store.create [ mk "a"; mk "b"; mk "c" ] in
        let ctx = Ctx.of_store store in
        let r =
          Engine.Query.run_string ctx "eventually (exists x . present(x))"
        in
        check (float 0.) "all three" 3. (float_of_int (Sim_list.covered r)));
  ]

let threshold_tests =
  let open Alcotest in
  [
    test_case "threshold 1.0 only admits exact g" `Quick (fun () ->
        let extents = Extent.single 4 in
        let g = sl ~max:2. [ (iv 1 1, 2.); (iv 2 2, 1.9) ] in
        let h = sl ~max:5. [ (iv 3 3, 5.) ] in
        let r = Sim_list.until_merge ~threshold:1.0 ~extents g h in
        (* only id 1 has fraction 1; its corridor stops at 2 (1.9/2 < 1)
           so h at 3 is unreachable from 1; only h-at-self remains *)
        check (float 0.) "id 1" 0. (Sim_list.value_at r 1);
        check (float 0.) "id 3 self" 5. (Sim_list.value_at r 3));
    test_case "threshold 0 keeps every non-zero g" `Quick (fun () ->
        let extents = Extent.single 4 in
        let g = sl ~max:2. [ (iv 1 2, 0.1) ] in
        let h = sl ~max:5. [ (iv 3 3, 5.) ] in
        let r = Sim_list.until_merge ~threshold:0. ~extents g h in
        check (float 0.) "id 1 reaches 3" 5. (Sim_list.value_at r 1));
    test_case "query-level threshold is honoured" `Quick (fun () ->
        let tables =
          [
            ("p1", Sim_table.of_sim_list (sl ~max:2. [ (iv 1 2, 1.) ]));
            ("p2", Sim_table.of_sim_list (sl ~max:5. [ (iv 3 3, 5.) ]));
          ]
        in
        let strict = Ctx.of_tables ~threshold:0.9 ~n:4 tables in
        let lax = Ctx.of_tables ~threshold:0.3 ~n:4 tables in
        check (float 0.) "strict blocks" 0.
          (Sim_list.value_at (Engine.Query.run_string strict "p1 until p2") 1);
        check (float 0.) "lax passes" 5.
          (Sim_list.value_at (Engine.Query.run_string lax "p1 until p2") 1));
  ]

let format_tests =
  let open Alcotest in
  [
    test_case "formula printing goldens" `Quick (fun () ->
        List.iter
          (fun (src, expected) ->
            check string src expected
              (Htl.Pretty.to_string (Htl.Parser.formula_of_string src)))
          [
            ("present(x)", "present(x)");
            ("p1 and p2", "(p1 and p2)");
            ("next p1", "next (p1)");
            ("seg.kind = 'a'", "seg.kind = \"a\"");
            ("at level 2 (true)", "at level 2 (true)");
            ("exists x . present(x)", "(exists x . present(x))");
            ( "[v <- speed(x)] v > 3",
              "([v <- speed(x)] v > 3)" );
          ]);
    test_case "ranked table rendering" `Quick (fun () ->
        let l = sl ~max:9. [ (iv 1 2, 9.); (iv 5 5, 3.) ] in
        let text = Format.asprintf "%a" (Engine.Topk.pp_table ?header:None) l in
        check bool "has header" true
          (String.length text > 0
          && String.sub text 0 5 = "Start");
        check bool "largest first" true
          (let nine = ref 0 and three = ref 0 in
           String.iteri
             (fun i c ->
               if c = '9' && i > 10 && !nine = 0 then nine := i
               else if c = '3' && !three = 0 then three := i)
             text;
           !nine < !three || !three = 0));
  ]

let relational_edges =
  let open Alcotest in
  [
    test_case "arithmetic precedence in SQL expressions" `Quick (fun () ->
        let db = Relational.Catalog.create () in
        ignore (Relational.Catalog.exec_sql db "CREATE TABLE t (x); INSERT INTO t VALUES (1)");
        let r =
          Relational.Catalog.query db "SELECT 2 + 3 * 4 AS a, (2 + 3) * 4 AS b FROM t"
        in
        (match Relational.Table.rows r with
        | [ [| a; b |] ] ->
            check bool "a" true (Relational.Value.equal a (Relational.Value.Int 14));
            check bool "b" true (Relational.Value.equal b (Relational.Value.Int 20))
        | _ -> fail "unexpected shape"));
    test_case "multi-key sort with mixed direction" `Quick (fun () ->
        let db = Relational.Catalog.create () in
        ignore
          (Relational.Catalog.exec_sql db
             "CREATE TABLE t (a, b); INSERT INTO t VALUES (1, 1), (1, 2), \
              (2, 1)");
        let r =
          Relational.Catalog.query db "SELECT a, b FROM t ORDER BY a DESC, b"
        in
        let ints =
          List.map
            (fun row ->
              Array.to_list
                (Array.map
                   (function Relational.Value.Int n -> n | _ -> -1)
                   row))
            (Relational.Table.rows r)
        in
        check (list (list int)) "order" [ [ 2; 1 ]; [ 1; 1 ]; [ 1; 2 ] ] ints);
    test_case "between in WHERE" `Quick (fun () ->
        let db = Relational.Catalog.create () in
        ignore
          (Relational.Catalog.exec_sql db
             "CREATE TABLE t (x); INSERT INTO t VALUES (1), (5), (9)");
        let r = Relational.Catalog.query db "SELECT x FROM t WHERE x BETWEEN 2 AND 8" in
        check int "one row" 1 (Relational.Table.cardinality r));
  ]

let multi_video_tests =
  let open Alcotest in
  [
    test_case "top-k across videos with locate" `Quick (fun () ->
        let store = Fixtures.two_movie_store () in
        let ctx = Ctx.of_store store in
        let r =
          Engine.Query.run_string ctx
            "exists x . (present(x) and type(x) = \"horse\")"
        in
        let top = Engine.Topk.top_k r ~k:2 in
        (* the horse appears in the chase movie only (global ids 8, 9) *)
        let located =
          List.map
            (fun (id, _) -> Video_model.Store.locate store ~level:2 ~id)
            top
        in
        List.iter
          (fun (_, title, _) -> check string "chase" "chase" title)
          located);
    test_case "eventually stops at the video boundary (engine level)" `Quick
      (fun () ->
        let store = Fixtures.two_movie_store () in
        let ctx = Ctx.of_store store in
        let r =
          Engine.Query.run_string ctx
            "eventually (exists x . (present(x) and type(x) = \"horse\"))"
        in
        (* western shots (1-6) must not see the chase movie's horse *)
        for id = 1 to 6 do
          check bool
            (Printf.sprintf "shot %d" id)
            true
            (Sim_list.value_at r id < 2.)
        done;
        check (float 0.) "chase shot 7" 2. (Sim_list.value_at r 7));
  ]

let suites =
  [
    ("edges.singletons", singleton_tests);
    ("edges.thresholds", threshold_tests);
    ("edges.format", format_tests);
    ("edges.relational", relational_edges);
    ("edges.multi_video", multi_video_tests);
  ]
