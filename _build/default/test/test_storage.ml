(* Tests for the storage layer: S-expressions, codecs, file round trips. *)

open Storage

let sexp_tests =
  let open Alcotest in
  [
    test_case "print/parse round trip" `Quick (fun () ->
        let s =
          Sexp.List
            [
              Sexp.Atom "hello";
              Sexp.List [ Sexp.Atom "a b"; Sexp.Atom "" ];
              Sexp.Atom "with\"quote";
              Sexp.Atom "line\nbreak";
            ]
        in
        check bool "round trip" true (Sexp.of_string (Sexp.to_string s) = s));
    test_case "comments and whitespace are skipped" `Quick (fun () ->
        let s = Sexp.of_string "; a comment\n  (a ; inline\n b)" in
        check bool "parsed" true
          (s = Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]));
    test_case "many_of_string" `Quick (fun () ->
        check int "three" 3 (List.length (Sexp.many_of_string "a (b) c")));
    test_case "parse errors carry an offset" `Quick (fun () ->
        List.iter
          (fun src ->
            try
              ignore (Sexp.of_string src);
              fail ("parsed " ^ src)
            with Sexp.Parse_error (_, _) -> ())
          [ "(a"; ")"; "\"unterminated"; "a b"; "" ]);
    test_case "helpers" `Quick (fun () ->
        check int "as_int" 42 (Sexp.as_int (Sexp.int 42));
        check (float 0.) "as_float" 1.5 (Sexp.as_float (Sexp.float 1.5));
        (try
           ignore (Sexp.as_int (Sexp.Atom "x"));
           fail "expected Conv_error"
         with Sexp.Conv_error _ -> ());
        check bool "assoc" true
          (Sexp.assoc "k" [ Sexp.field "k" [ Sexp.Atom "v" ] ]
          = [ Sexp.Atom "v" ]));
  ]

let codec_tests =
  let open Alcotest in
  [
    test_case "value round trips" `Quick (fun () ->
        List.iter
          (fun v ->
            check bool
              (Format.asprintf "%a" Metadata.Value.pp v)
              true
              (Codec.value_of_sexp (Codec.value_to_sexp v) = v))
          [
            Metadata.Value.Int 42;
            Metadata.Value.Int (-1);
            Metadata.Value.Float 3.25;
            Metadata.Value.Str "hello world";
            Metadata.Value.Str "";
            Metadata.Value.Bool true;
            Metadata.Value.Bool false;
          ]);
    test_case "entity with bbox round trips" `Quick (fun () ->
        let o =
          Metadata.Entity.make ~id:7 ~otype:"man"
            ~attrs:[ ("name", Metadata.Value.Str "John Wayne") ]
            ~bbox:(Metadata.Bbox.make ~x0:0.5 ~y0:1. ~x1:2. ~y1:3.)
            ()
        in
        check bool "round trip" true
          (Codec.entity_of_sexp (Codec.entity_to_sexp o) = o));
    test_case "stores round trip through text" `Quick (fun () ->
        List.iter
          (fun store ->
            let text = Sexp.to_string (Codec.store_to_sexp store) in
            let store' = Codec.store_of_sexp (Sexp.of_string text) in
            (* compare observable structure *)
            check int "levels" (Video_model.Store.levels store)
              (Video_model.Store.levels store');
            for level = 1 to Video_model.Store.levels store do
              check int
                (Printf.sprintf "count at %d" level)
                (Video_model.Store.count_at store ~level)
                (Video_model.Store.count_at store' ~level)
            done;
            check (list int) "objects"
              (Video_model.Store.all_object_ids store)
              (Video_model.Store.all_object_ids store'))
          [
            Fixtures.western_store ();
            Fixtures.two_movie_store ();
            Fixtures.layered_store ();
            Workload.Casablanca.store ();
            Workload.Gulf_war.store ();
          ]);
    test_case "sim list round trips" `Quick (fun () ->
        let l = Workload.Casablanca.man_woman in
        check Helpers.sim_list_testable "round trip" l
          (Codec.sim_list_of_sexp (Codec.sim_list_to_sexp l)));
    test_case "sim table with ranges round trips" `Quick (fun () ->
        let t =
          Simlist.Sim_table.create ~obj_cols:[ "x" ] ~attr_cols:[ "h" ]
            ~max:2.
            [
              {
                objs = [ ("x", 4) ];
                attrs = [ ("h", Simlist.Range.int_le 49) ];
                list =
                  Simlist.Sim_list.of_entries ~max:2.
                    [ (Simlist.Interval.make 3 5, 2.) ];
              };
              {
                objs = [];
                attrs = [ ("h", Simlist.Range.Str (Some "x")) ];
                list =
                  Simlist.Sim_list.of_entries ~max:2.
                    [ (Simlist.Interval.make 1 1, 1.) ];
              };
            ]
        in
        let t' = Codec.sim_table_of_sexp (Codec.sim_table_to_sexp t) in
        check int "rows" 2 (Simlist.Sim_table.row_count t');
        check bool "same rows" true
          (List.for_all2
             (fun (a : Simlist.Sim_table.row) (b : Simlist.Sim_table.row) ->
               a.objs = b.objs
               && List.for_all2
                    (fun (k1, r1) (k2, r2) ->
                      k1 = k2 && Simlist.Range.equal r1 r2)
                    a.attrs b.attrs
               && Simlist.Sim_list.equal a.list b.list)
             (Simlist.Sim_table.rows t)
             (Simlist.Sim_table.rows t')));
    test_case "malformed codecs raise Conv_error" `Quick (fun () ->
        List.iter
          (fun src ->
            try
              ignore (Codec.store_of_sexp (Sexp.of_string src));
              fail ("decoded " ^ src)
            with Sexp.Conv_error _ -> ())
          [ "(banana)"; "(store (video))"; "(store 42)" ]);
    Helpers.qtest ~count:100 "random similarity lists round trip"
      (fun (n, _, dense) ->
        let l = Simlist.Sim_list.of_dense ~max:8. dense in
        ignore n;
        Simlist.Sim_list.equal l
          (Codec.sim_list_of_sexp (Codec.sim_list_to_sexp l)))
      (Helpers.arb_dense_with_extents ());
  ]

let io_tests =
  let open Alcotest in
  [
    test_case "store file round trip" `Quick (fun () ->
        let path = Filename.temp_file "htl_store" ".sexp" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let store = Workload.Gulf_war.store () in
            Io.save_store path store;
            let store' = Io.load_store path in
            check int "shots"
              (Video_model.Store.count_at store ~level:4)
              (Video_model.Store.count_at store' ~level:4);
            (* queries behave identically on the reloaded store *)
            let ctx = Engine.Context.of_store ~level:1 store
            and ctx' = Engine.Context.of_store ~level:1 store' in
            List.iter
              (fun (_, q) ->
                check Helpers.sim_list_testable q
                  (Engine.Query.run_string ctx q)
                  (Engine.Query.run_string ctx' q))
              Workload.Gulf_war.queries));
    test_case "tables file round trip" `Quick (fun () ->
        let path = Filename.temp_file "htl_tables" ".sexp" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Io.save_tables path Workload.Casablanca.tables;
            let tables = Io.load_tables path in
            let ctx =
              Engine.Context.of_tables ~n:Workload.Casablanca.shot_count tables
            in
            let r = Engine.Query.run_string ctx Workload.Casablanca.query1 in
            check bool "Table 4 still reproduced" true
              (List.for_all2
                 (fun (iv, v) (iv', v') ->
                   Simlist.Interval.equal iv iv' && Float.abs (v -. v') < 1e-9)
                 (Engine.Topk.ranked_intervals r)
                 Workload.Casablanca.expected_table4)));
  ]

let suites =
  [
    ("storage.sexp", sexp_tests);
    ("storage.codec", codec_tests);
    ("storage.io", io_tests);
  ]