(* Tests for the video-analyzer substrate: synthetic signal, cut
   detection, object tracking, annotation, and end-to-end analysis
   feeding the query engine. *)

open Analyzer

let analyzer_tests =
  let open Alcotest in
  [
    test_case "scripted signal has the right shape" `Quick (fun () ->
        let frames, cuts =
          Signal.scripted ~seed:1 ~shot_lengths:[ 5; 3; 7 ] ()
        in
        check int "frames" 15 (Array.length frames);
        check (list int) "ground truth cuts" [ 5; 8 ] cuts;
        Array.iter
          (fun (f : Signal.frame) ->
            let total = Array.fold_left ( +. ) 0. f.histogram in
            check (float 1e-6) "normalised" 1. total)
          frames);
    test_case "cut detection recovers scripted cuts" `Quick (fun () ->
        let frames, truth =
          Signal.scripted ~seed:42 ~noise:0.005 ~shot_lengths:[ 8; 6; 9; 4 ] ()
        in
        let detected = Cut_detection.detect frames in
        let precision, recall = Cut_detection.score ~detected ~truth in
        check (float 0.) "precision" 1. precision;
        check (float 0.) "recall" 1. recall);
    test_case "cut detection across many seeds" `Quick (fun () ->
        for seed = 1 to 20 do
          let frames, truth =
            Signal.scripted ~seed ~noise:0.005
              ~shot_lengths:[ 5; 5; 5; 5; 5 ] ()
          in
          let detected = Cut_detection.detect frames in
          let precision, recall = Cut_detection.score ~detected ~truth in
          check (float 0.) (Printf.sprintf "precision seed %d" seed) 1. precision;
          check (float 0.) (Printf.sprintf "recall seed %d" seed) 1. recall
        done);
    test_case "segment splits at cuts" `Quick (fun () ->
        let frames, _ = Signal.scripted ~seed:7 ~shot_lengths:[ 4; 6 ] () in
        match Cut_detection.segment frames with
        | [ a; b ] ->
            check int "first shot" 4 (Array.length a);
            check int "second shot" 6 (Array.length b)
        | shots -> failf "expected 2 shots, got %d" (List.length shots));
    test_case "no cuts in a single shot" `Quick (fun () ->
        let frames, _ = Signal.scripted ~seed:3 ~shot_lengths:[ 10 ] () in
        check (list int) "none" [] (Cut_detection.detect frames));
    test_case "tracker keeps a moving object's id stable" `Quick (fun () ->
        let box x = Metadata.Bbox.make ~x0:x ~y0:0. ~x1:(x +. 1.) ~y1:1. in
        let det x = { Tracker.otype = "car"; bbox = box x } in
        let frames = [| [ det 0. ]; [ det 0.5 ]; [ det 1.0 ]; [ det 1.4 ] |] in
        let tracked = Tracker.track frames in
        let ids =
          Array.to_list
            (Array.map
               (fun objs -> (List.hd objs).Metadata.Entity.id)
               tracked)
        in
        check (list int) "one id" [ 1; 1; 1; 1 ] ids);
    test_case "tracker separates distant and differently-typed objects"
      `Quick (fun () ->
        let box x = Metadata.Bbox.make ~x0:x ~y0:0. ~x1:(x +. 1.) ~y1:1. in
        let frames =
          [|
            [
              { Tracker.otype = "car"; bbox = box 0. };
              { Tracker.otype = "man"; bbox = box 0.2 };
            ];
            [
              { Tracker.otype = "car"; bbox = box 0.4 };
              { Tracker.otype = "man"; bbox = box 0.1 };
              { Tracker.otype = "car"; bbox = box 9. };
            ];
          |]
        in
        let tracked = Tracker.track frames in
        let ids_of k =
          List.sort compare
            (List.map (fun (o : Metadata.Entity.t) -> o.id) tracked.(k))
        in
        check (list int) "frame 0" [ 1; 2 ] (ids_of 0);
        (* same car and man continue; the far car is a new object *)
        check (list int) "frame 1" [ 1; 2; 3 ] (ids_of 1));
    test_case "tracker reuses a track only once per frame" `Quick (fun () ->
        let box x = Metadata.Bbox.make ~x0:x ~y0:0. ~x1:(x +. 1.) ~y1:1. in
        let det x = { Tracker.otype = "car"; bbox = box x } in
        let frames = [| [ det 0. ]; [ det 0.1; det 0.2 ] |] in
        let tracked = Tracker.track frames in
        let ids =
          List.sort compare
            (List.map (fun (o : Metadata.Entity.t) -> o.id) tracked.(1))
        in
        check (list int) "two distinct ids" [ 1; 2 ] ids);
    test_case "annotate builds a valid three-level video" `Quick (fun () ->
        let frames, _ = Signal.scripted ~seed:5 ~shot_lengths:[ 3; 4 ] () in
        let box x = Metadata.Bbox.make ~x0:x ~y0:0. ~x1:(x +. 1.) ~y1:1. in
        let detections =
          Array.init 7 (fun i ->
              if i < 3 then
                [ { Tracker.otype = "man"; bbox = box (float_of_int i *. 0.1) } ]
              else
                [ { Tracker.otype = "train"; bbox = box (float_of_int i *. 0.1) } ])
        in
        let video =
          Annotate.build_video ~title:"clip" ~frames ~detections ()
        in
        check int "levels" 3 (Video_model.Video.levels video);
        check int "frames" 7 (Video_model.Video.count_at video 3);
        check int "shots" 2 (Video_model.Video.count_at video 2));
    test_case "end to end: analyze then query" `Quick (fun () ->
        let frames, _ = Signal.scripted ~seed:9 ~shot_lengths:[ 4; 4 ] () in
        let box x = Metadata.Bbox.make ~x0:x ~y0:0. ~x1:(x +. 1.) ~y1:1. in
        let detections =
          Array.init 8 (fun i ->
              if i < 4 then [ { Tracker.otype = "man"; bbox = box 0.1 } ]
              else [ { Tracker.otype = "train"; bbox = box 0.2 } ])
        in
        let video = Annotate.build_video ~title:"clip" ~frames ~detections () in
        let store = Video_model.Store.of_video video in
        let ctx = Engine.Context.of_store store ~level:2 in
        let r =
          Engine.Query.run_string ctx
            "(exists x . (present(x) and type(x) = \"man\")) until (exists \
             y . (present(y) and type(y) = \"train\"))"
        in
        (* man in shot 1 leads to the train in shot 2 *)
        check (float 1e-9) "shot 1" 2. (Simlist.Sim_list.value_at r 1);
        check (float 1e-9) "shot 2" 2. (Simlist.Sim_list.value_at r 2));
  ]


let transition_tests =
  let open Alcotest in
  [
    test_case "abrupt cuts are reported as cuts" `Quick (fun () ->
        let frames, truth =
          Signal.scripted ~seed:13 ~noise:0.002 ~shot_lengths:[ 6; 6; 6 ] ()
        in
        let ts = Transition.detect frames in
        check (list int) "boundaries" truth (Transition.boundaries ts);
        check bool "all cuts" true
          (List.for_all (function Transition.Cut _ -> true | _ -> false) ts));
    test_case "dissolves are reported as gradual transitions" `Quick
      (fun () ->
        let frames, truth =
          Signal.scripted_with_dissolves ~seed:17 ~noise:0.002 ~dissolve:4
            ~shot_lengths:[ 10; 10; 10 ] ()
        in
        let ts = Transition.detect frames in
        check int "two transitions" 2 (List.length ts);
        List.iter
          (fun t ->
            match t with
            | Transition.Gradual _ -> ()
            | Transition.Cut i -> failf "unexpected cut at %d" i)
          ts;
        (* boundaries land at (or next to) the scripted shot starts *)
        List.iter2
          (fun b t -> check bool "close" true (abs (b - t) <= 1))
          (Transition.boundaries ts) truth);
    test_case "plain cut detection misses dissolves" `Quick (fun () ->
        (* motivation for the twin-comparison extension *)
        let frames, _ =
          Signal.scripted_with_dissolves ~seed:17 ~noise:0.002 ~dissolve:4
            ~shot_lengths:[ 10; 10; 10 ] ()
        in
        check (list int) "nothing found" [] (Cut_detection.detect frames));
    test_case "quiet signal has no transitions" `Quick (fun () ->
        let frames, _ =
          Signal.scripted ~seed:2 ~noise:0.002 ~shot_lengths:[ 30 ] ()
        in
        check int "none" 0 (List.length (Transition.detect frames)));
  ]

let trajectory_tests =
  let open Alcotest in
  let box x = Metadata.Bbox.make ~x0:x ~y0:0. ~x1:(x +. 1.) ~y1:1. in
  let entity ~id ~otype x = Metadata.Entity.make ~id ~otype ~bbox:(box x) () in
  [
    test_case "trajectories follow tracked objects" `Quick (fun () ->
        let frames =
          [|
            [ entity ~id:1 ~otype:"train" 0. ];
            [ entity ~id:1 ~otype:"train" 1. ];
            [ entity ~id:1 ~otype:"train" 2. ];
          |]
        in
        match Trajectory.of_entities frames with
        | [ t ] ->
            check int "object" 1 t.Trajectory.object_id;
            check int "points" 3 (List.length t.Trajectory.points);
            check (float 1e-9) "displacement" 2. (Trajectory.displacement t);
            check (float 1e-9) "path" 2. (Trajectory.path_length t)
        | ts -> failf "expected one trajectory, got %d" (List.length ts));
    test_case "objects without boxes produce no trajectory" `Quick (fun () ->
        let frames = [| [ Metadata.Entity.make ~id:5 ~otype:"man" () ] |] in
        check int "none" 0 (List.length (Trajectory.of_entities frames)));
    test_case "is_moving thresholds displacement" `Quick (fun () ->
        let still =
          [| [ entity ~id:1 ~otype:"man" 0. ]; [ entity ~id:1 ~otype:"man" 0.1 ] |]
        in
        let fast =
          [| [ entity ~id:2 ~otype:"train" 0. ]; [ entity ~id:2 ~otype:"train" 3. ] |]
        in
        check bool "still" false
          (Trajectory.is_moving (List.hd (Trajectory.of_entities still)));
        check bool "fast" true
          (Trajectory.is_moving (List.hd (Trajectory.of_entities fast))));
    test_case "annotate_motion enables the moving(z) predicate" `Quick
      (fun () ->
        (* a moving train and a parked car, end to end to the HTL engine *)
        let frames =
          [|
            [ entity ~id:1 ~otype:"train" 0.; entity ~id:2 ~otype:"car" 5. ];
            [ entity ~id:1 ~otype:"train" 2.; entity ~id:2 ~otype:"car" 5.05 ];
          |]
        in
        let annotated = Trajectory.annotate_motion frames in
        let shots =
          Array.to_list
            (Array.map
               (fun objects -> Metadata.Seg_meta.make ~objects ())
               annotated)
        in
        let store =
          Video_model.Store.of_video
            (Video_model.Video.two_level ~title:"clip" ~leaf_name:"frame" shots)
        in
        let ctx = Engine.Context.of_store store in
        let r =
          Engine.Query.run_string ctx
            "exists z . (present(z) and moving(z) = true)"
        in
        check (float 1e-9) "frame 1 has a mover" 2.
          (Simlist.Sim_list.value_at r 1);
        let r2 =
          Engine.Query.run_string ctx
            "exists z . (present(z) and type(z) = \"car\" and moving(z) = true)"
        in
        (* the car never moves: partial credit only *)
        check bool "car not moving" true
          (Simlist.Sim_list.value_at r2 1 < 3.));
  ]

let suites =
  [
    ("analyzer", analyzer_tests);
    ("analyzer.transition", transition_tests);
    ("analyzer.trajectory", trajectory_tests);
  ]
