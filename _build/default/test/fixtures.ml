(* Shared store fixtures for the video-model / HTL / picture tests. *)

open Metadata

let obj ?attrs ?bbox ~id ~otype () = Entity.make ~id ~otype ?attrs ?bbox ()

(* object ids used throughout: 1 john (man), 2 mary (woman), 3 gun,
   4 train, 5 bob (man), 6 car, 7 horse *)
let john ?bbox () =
  obj ~id:1 ~otype:"man" ~attrs:[ ("name", Value.Str "John Wayne") ] ?bbox ()

let mary ?bbox () =
  obj ~id:2 ~otype:"woman" ~attrs:[ ("name", Value.Str "Mary") ] ?bbox ()

let gun () = obj ~id:3 ~otype:"gun" ()

let train ~speed () =
  obj ~id:4 ~otype:"train" ~attrs:[ ("speed", Value.Int speed) ] ()

let bob () = obj ~id:5 ~otype:"man" ~attrs:[ ("name", Value.Str "Bob") ] ()
let car () = obj ~id:6 ~otype:"car" ()
let horse () = obj ~id:7 ~otype:"horse" ()

let shot ?(objects = []) ?(relationships = []) ?(attrs = []) () =
  Seg_meta.make ~objects ~relationships ~attrs ()

(* A 6-shot western at two levels (video, shot):
   1: john + mary           4: john fires at bob
   2: john holding the gun  5: faster train + john
   3: the train (speed 50)  6: empty
*)
let western_shots =
  [
    shot ~objects:[ john (); mary () ] ();
    shot
      ~objects:[ john (); gun () ]
      ~relationships:[ Relationship.make "holds" [ 1; 3 ] ]
      ();
    shot ~objects:[ train ~speed:50 () ] ();
    shot
      ~objects:[ john (); bob () ]
      ~relationships:[ Relationship.make "fires_at" [ 1; 5 ] ]
      ();
    shot ~objects:[ train ~speed:80 (); john () ] ();
    shot ();
  ]

let western () = Video_model.Video.two_level ~title:"western" western_shots

let western_store () = Video_model.Store.of_video (western ())

(* A second movie, used for multi-video stores: 3 shots, a car chase. *)
let chase_shots =
  [
    shot ~objects:[ car (); bob () ] ();
    shot ~objects:[ car (); horse () ] ();
    shot ~objects:[ horse () ] ();
  ]

let chase () = Video_model.Video.two_level ~title:"chase" chase_shots

let two_movie_store () = Video_model.Store.create [ western (); chase () ]

(* A three-level video (video, scene, shot): two scenes of 2 and 3 shots. *)
let layered () =
  let scene name shots =
    Video_model.Segment.make
      ~meta:(shot ~attrs:[ ("name", Value.Str name) ] ())
      (List.map Video_model.Segment.leaf shots)
  in
  Video_model.Video.create ~title:"layered"
    ~level_names:[ "video"; "scene"; "shot" ]
    (Video_model.Segment.make
       ~meta:(shot ~attrs:[ ("type", Value.Str "western") ] ())
       [
         scene "intro"
           [ shot ~objects:[ john () ] (); shot ~objects:[ john (); gun () ] () ];
         scene "trains"
           [
             shot ~objects:[ train ~speed:30 () ] ();
             shot ~objects:[ train ~speed:60 () ] ();
             shot ~objects:[ mary () ] ();
           ];
       ])

let layered_store () = Video_model.Store.of_video (layered ())
