(* Tests for the relational engine: values, tables, expressions, plans,
   the SQL dialect and the catalog. *)

open Relational

let exec_all db sql = ignore (Catalog.exec_sql db sql)

let fresh_db () =
  let db = Catalog.create () in
  exec_all db
    "CREATE TABLE emp (id, name, dept, salary);\n\
     INSERT INTO emp VALUES (1, 'ann', 'eng', 100), (2, 'bob', 'eng', 80),\n\
     (3, 'cat', 'ops', 90), (4, 'dan', 'ops', NULL);";
  db

let rows_as_ints table =
  List.map
    (fun r ->
      Array.to_list
        (Array.map
           (function Value.Int n -> n | v -> Stdlib.failwith (Value.to_string v))
           r))
    (Table.rows table)

let value_tests =
  let open Alcotest in
  [
    test_case "NULL never equals anything" `Quick (fun () ->
        check bool "null = null" false (Value.equal Value.Null Value.Null);
        check bool "null = 1" false (Value.equal Value.Null (Value.Int 1)));
    test_case "numeric equality crosses int/float" `Quick (fun () ->
        check bool "3 = 3.0" true (Value.equal (Value.Int 3) (Value.Float 3.)));
    test_case "sql comparison" `Quick (fun () ->
        check (option int) "1 < 2" (Some (-1))
          (Value.compare_sql (Value.Int 1) (Value.Int 2));
        check (option int) "null" None
          (Value.compare_sql Value.Null (Value.Int 2));
        check (option int) "type clash" None
          (Value.compare_sql (Value.Str "a") (Value.Int 2)));
    test_case "arithmetic propagates NULL" `Quick (fun () ->
        check bool "null + 1" true
          (Value.is_null (Value.add Value.Null (Value.Int 1))));
  ]

let table_tests =
  let open Alcotest in
  [
    test_case "create validates arity and duplicates" `Quick (fun () ->
        (try
           ignore (Table.create ~cols:[ "a"; "a" ] []);
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ());
        (try
           ignore (Table.create ~cols:[ "a"; "b" ] [ [| Value.Int 1 |] ]);
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    test_case "qualified column resolution" `Quick (fun () ->
        let t = Table.empty ~cols:[ "a.x"; "a.y"; "b.z" ] in
        check int "suffix" 2 (Table.col_index t "z");
        check int "exact" 0 (Table.col_index t "a.x");
        let amb = Table.empty ~cols:[ "a.x"; "b.x" ] in
        (try
           ignore (Table.col_index amb "x");
           fail "expected ambiguity error"
         with Invalid_argument _ -> ()));
    test_case "prefix_cols re-aliases" `Quick (fun () ->
        let t = Table.empty ~cols:[ "a.x"; "y" ] in
        check (list string) "prefixed" [ "c.x"; "c.y" ]
          (Table.cols (Table.prefix_cols t "c")));
  ]

let sql_tests =
  let open Alcotest in
  [
    test_case "select with where and projection" `Quick (fun () ->
        let db = fresh_db () in
        let t =
          Catalog.query db
            "SELECT id, salary + 10 AS bumped FROM emp WHERE dept = 'eng' \
             ORDER BY id"
        in
        check (list (list int)) "rows" [ [ 1; 110 ]; [ 2; 90 ] ] (rows_as_ints t));
    test_case "comparison with NULL filters the row out" `Quick (fun () ->
        let db = fresh_db () in
        let t = Catalog.query db "SELECT id FROM emp WHERE salary > 0" in
        check int "three rows" 3 (Table.cardinality t));
    test_case "coalesce" `Quick (fun () ->
        let db = fresh_db () in
        let t =
          Catalog.query db
            "SELECT id, COALESCE(salary, 0) AS s FROM emp ORDER BY id"
        in
        check (list (list int)) "rows"
          [ [ 1; 100 ]; [ 2; 80 ]; [ 3; 90 ]; [ 4; 0 ] ]
          (rows_as_ints t));
    test_case "group by with aggregates" `Quick (fun () ->
        let db = fresh_db () in
        let t =
          Catalog.query db
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total, MAX(salary) \
             AS top FROM emp GROUP BY dept ORDER BY dept"
        in
        check int "two groups" 2 (Table.cardinality t);
        let first = List.hd (Table.rows t) in
        check string "eng" "eng"
          (match first.(0) with Value.Str s -> s | _ -> "?");
        check bool "count 2" true (Value.equal first.(1) (Value.Int 2));
        check bool "sum 180" true (Value.equal first.(2) (Value.Int 180)));
    test_case "global aggregate over empty input yields one row" `Quick
      (fun () ->
        let db = fresh_db () in
        let t = Catalog.query db "SELECT COUNT(*) AS n FROM emp WHERE id > 99" in
        check (list (list int)) "zero" [ [ 0 ] ] (rows_as_ints t));
    test_case "hash join" `Quick (fun () ->
        let db = fresh_db () in
        exec_all db
          "CREATE TABLE dept (dname, floor);\n\
           INSERT INTO dept VALUES ('eng', 3), ('ops', 1);";
        let t =
          Catalog.query db
            "SELECT e.id, d.floor FROM emp e JOIN dept d ON e.dept = d.dname \
             ORDER BY e.id"
        in
        check (list (list int)) "rows"
          [ [ 1; 3 ]; [ 2; 3 ]; [ 3; 1 ]; [ 4; 1 ] ]
          (rows_as_ints t));
    test_case "band join expands intervals to ids" `Quick (fun () ->
        let db = Catalog.create () in
        exec_all db
          "CREATE TABLE seq (id);\n\
           INSERT INTO seq VALUES (1), (2), (3), (4), (5), (6);\n\
           CREATE TABLE iv (beg, fin, v);\n\
           INSERT INTO iv VALUES (2, 3, 10), (5, 6, 20);";
        let t =
          Catalog.query db
            "SELECT s.id, i.v FROM seq s JOIN iv i ON s.id BETWEEN i.beg AND \
             i.fin ORDER BY s.id"
        in
        check (list (list int)) "expanded"
          [ [ 2; 10 ]; [ 3; 10 ]; [ 5; 20 ]; [ 6; 20 ] ]
          (rows_as_ints t));
    test_case "rownum after order by" `Quick (fun () ->
        let db = fresh_db () in
        let t =
          Catalog.query db
            "SELECT id, ROWNUM() AS rn FROM emp WHERE dept = 'ops' ORDER BY \
             id DESC"
        in
        check (list (list int)) "numbered" [ [ 4; 1 ]; [ 3; 2 ] ] (rows_as_ints t));
    test_case "rownum requires order by" `Quick (fun () ->
        let db = fresh_db () in
        try
          ignore (Catalog.query db "SELECT id, ROWNUM() AS rn FROM emp");
          fail "expected Sql.Error"
        with Sql.Error _ -> ());
    test_case "distinct" `Quick (fun () ->
        let db = fresh_db () in
        let t = Catalog.query db "SELECT DISTINCT dept FROM emp" in
        check int "two" 2 (Table.cardinality t));
    test_case "limit" `Quick (fun () ->
        let db = fresh_db () in
        let t = Catalog.query db "SELECT id FROM emp ORDER BY id LIMIT 2" in
        check (list (list int)) "first two" [ [ 1 ]; [ 2 ] ] (rows_as_ints t));
    test_case "create table as select" `Quick (fun () ->
        let db = fresh_db () in
        exec_all db "CREATE TABLE rich AS SELECT id FROM emp WHERE salary >= 90";
        let t = Catalog.query db "SELECT id FROM rich ORDER BY id" in
        check (list (list int)) "stored" [ [ 1 ]; [ 3 ] ] (rows_as_ints t));
    test_case "insert after create" `Quick (fun () ->
        let db = Catalog.create () in
        exec_all db "CREATE TABLE t (a, b); INSERT INTO t VALUES (1, -2)";
        let t = Catalog.query db "SELECT a, b FROM t" in
        check (list (list int)) "negative literal" [ [ 1; -2 ] ] (rows_as_ints t));
    test_case "drop table" `Quick (fun () ->
        let db = fresh_db () in
        exec_all db "DROP TABLE emp";
        check bool "gone" false (Catalog.mem db "emp");
        exec_all db "DROP TABLE IF EXISTS emp";
        try
          exec_all db "DROP TABLE emp";
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    test_case "syntax errors raise Sql.Error" `Quick (fun () ->
        List.iter
          (fun src ->
            try
              ignore (Sql.parse src);
              fail ("parsed: " ^ src)
            with Sql.Error _ -> ())
          [
            "SELECT";
            "SELECT FROM t";
            "CREATE TABLE";
            "INSERT INTO t VALUES 1";
            "SELECT * FROM t WHERE";
            "SELECT a FROM t GROUP";
          ]);
    test_case "group by rejects non-grouped items" `Quick (fun () ->
        let db = fresh_db () in
        try
          ignore
            (Catalog.query db "SELECT name, COUNT(*) AS n FROM emp GROUP BY dept");
          fail "expected Sql.Error"
        with Sql.Error _ -> ());
    test_case "string escaping with doubled quotes" `Quick (fun () ->
        let db = Catalog.create () in
        exec_all db "CREATE TABLE s (x); INSERT INTO s VALUES ('it''s')";
        let t = Catalog.query db "SELECT x FROM s" in
        match Table.rows t with
        | [ [| Value.Str s |] ] -> check string "unescaped" "it's" s
        | _ -> fail "unexpected shape");
    test_case "comments are skipped" `Quick (fun () ->
        let db = fresh_db () in
        let t =
          Catalog.query db "SELECT id FROM emp -- trailing comment\nWHERE id = 1"
        in
        check int "one row" 1 (Table.cardinality t));
  ]

let plan_tests =
  let open Alcotest in
  [
    test_case "union all at the plan level" `Quick (fun () ->
        let mk rows = Plan.Values ([ "x" ], rows) in
        let t =
          Plan.run
            ~lookup:(fun _ -> Stdlib.failwith "no tables")
            (Plan.Union_all
               (mk [ [| Value.Int 1 |] ], mk [ [| Value.Int 2 |] ]))
        in
        check int "two rows" 2 (Table.cardinality t));
    test_case "nested join falls back to theta join" `Quick (fun () ->
        let db = fresh_db () in
        let t =
          Catalog.query db
            "SELECT a.id AS x, b.id AS y FROM emp a JOIN emp b ON a.salary < \
             b.salary ORDER BY a.id, b.id"
        in
        (* salaries 100, 80, 90, NULL: pairs with a.salary < b.salary *)
        check (list (list int)) "pairs" [ [ 2; 1 ]; [ 2; 3 ]; [ 3; 1 ] ]
          (rows_as_ints t));
  ]

let suites =
  [
    ("relational.value", value_tests);
    ("relational.table", table_tests);
    ("relational.sql", sql_tests);
    ("relational.plan", plan_tests);
  ]
