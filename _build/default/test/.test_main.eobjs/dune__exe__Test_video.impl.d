test/test_video.ml: Alcotest Bbox Entity Fixtures Htl List Metadata Seg_meta Segment Simlist Store Value Video Video_model
