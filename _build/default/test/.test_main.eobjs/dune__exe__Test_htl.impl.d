test/test_htl.ml: Alcotest Ast Classify Helpers Htl List Metadata Parser Pretty QCheck String
