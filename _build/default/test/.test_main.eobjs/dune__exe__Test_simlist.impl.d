test/test_simlist.ml: Alcotest Array Extent Helpers Interval List QCheck Range Sim Sim_list Sim_table Simlist Value_table
