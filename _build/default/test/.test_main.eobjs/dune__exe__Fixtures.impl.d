test/fixtures.ml: Entity List Metadata Relationship Seg_meta Value Video_model
