test/test_analyzer.ml: Alcotest Analyzer Annotate Array Cut_detection Engine List Metadata Printf Signal Simlist Tracker Trajectory Transition Video_model
