test/helpers.ml: Alcotest Array Extent Float Format Interval List QCheck QCheck_alcotest Sim_list Simlist String
