test/test_relational.ml: Alcotest Array Catalog List Plan Relational Sql Stdlib Table Value
