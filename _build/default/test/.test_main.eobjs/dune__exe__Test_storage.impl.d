test/test_storage.ml: Alcotest Codec Engine Filename Fixtures Float Format Fun Helpers Io List Metadata Printf Sexp Simlist Storage Sys Video_model Workload
