test/test_edges.ml: Alcotest Array Engine Extent Fixtures Format Htl Interval List Metadata Printf Relational Sim_list Sim_table Simlist String Video_model
