test/test_picture.ml: Alcotest Fixtures Float Htl List Metadata Picture Printf Retrieval Simlist Spatial Taxonomy Weights
