test/test_engine.ml: Alcotest Array Context Direct Engine Fixtures Float Helpers Htl List Metadata Printf QCheck Query Reference Simlist Sql_backend String Topk Video_model Workload
