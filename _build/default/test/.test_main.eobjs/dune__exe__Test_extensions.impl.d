test/test_extensions.ml: Alcotest Array Browse Context Engine Fixtures Float Helpers Htl List Printf QCheck Query Reference Simlist Workload
