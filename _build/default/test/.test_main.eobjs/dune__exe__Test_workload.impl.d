test/test_workload.ml: Alcotest Array Engine Htl List Metadata Printf Simlist Video_model Workload
