(* Tests for the HTL syntax: lexer, parser, pretty-printer round trips,
   and the formula classifier. *)

open Htl
open Ast

let parse = Parser.formula_of_string
let formula = Alcotest.testable (fun ppf f -> Pretty.pp ppf f) Ast.equal

(* the paper's example formulas in our concrete syntax *)
let paper_a = "m1(x) = 1 until m2(x) = 1"

let paper_a' = "at shot level (m1 and next (m2 until m3))"

let paper_b =
  "exists x, y . p1(x, y) and eventually (p2(x, y) and eventually p3(y))"

let paper_c =
  "exists z . (present(z) and type(z) = \"airplane\") and [h <- height(z)] \
   eventually (present(z) and height(z) > h)"

let parser_tests =
  let open Alcotest in
  [
    test_case "atoms" `Quick (fun () ->
        check formula "present" (Atom (Present "x")) (parse "present(x)");
        check formula "relation"
          (Atom (Rel ("fires_at", [ "x"; "y" ])))
          (parse "fires_at(x, y)");
        check formula "attr comparison"
          (Atom
             (Cmp (Gt, Obj_attr ("height", "z"), Const (Metadata.Value.Int 5))))
          (parse "height(z) > 5");
        check formula "segment attr"
          (Atom
             (Cmp (Eq, Seg_attr "type", Const (Metadata.Value.Str "western"))))
          (parse "seg.type = \"western\"");
        check formula "true/false" (And (Atom True, Atom False))
          (parse "true and false"));
    test_case "single-quoted strings" `Quick (fun () ->
        check formula "quotes"
          (Atom (Cmp (Eq, Seg_attr "type", Const (Metadata.Value.Str "western"))))
          (parse "seg.type = 'western'"));
    test_case "unary operators bind tighter than and" `Quick (fun () ->
        check formula "eventually and"
          (And (Eventually (Atom (Rel ("p", [ "x" ]))), Atom (Rel ("q", [ "x" ]))))
          (parse "eventually p(x) and q(x)"));
    test_case "until binds looser than and" `Quick (fun () ->
        check formula "a and b until c"
          (Until
             ( And (Atom (Rel ("a", [ "x" ])), Atom (Rel ("b", [ "x" ]))),
               Atom (Rel ("c", [ "x" ])) ))
          (parse "a(x) and b(x) until c(x)"));
    test_case "until is right associative" `Quick (fun () ->
        check formula "a until b until c"
          (Until
             ( Atom (Rel ("a", [ "x" ])),
               Until (Atom (Rel ("b", [ "x" ])), Atom (Rel ("c", [ "x" ]))) ))
          (parse "a(x) until b(x) until c(x)"));
    test_case "exists with several variables nests" `Quick (fun () ->
        check formula "exists x, y"
          (Exists ("x", Exists ("y", Atom (Rel ("p", [ "x"; "y" ])))))
          (parse "exists x, y . p(x, y)"));
    test_case "freeze after and" `Quick (fun () ->
        check formula "a and [v <- q(x)] b"
          (And
             ( Atom (Present "x"),
               Freeze
                 {
                   var = "v";
                   attr = "speed";
                   obj = Some "x";
                   body = Atom (Present "x");
                 } ))
          (parse "present(x) and [v <- speed(x)] present(x)"));
    test_case "level operators" `Quick (fun () ->
        check formula "at next level"
          (At_level (Next_level, Atom True))
          (parse "at next level (true)");
        check formula "at level 3"
          (At_level (Level_index 3, Atom True))
          (parse "at level 3 (true)");
        check formula "at shot level"
          (At_level (Level_name "shot", Atom True))
          (parse "at shot level (true)"));
    test_case "paper formulas parse" `Quick (fun () ->
        List.iter
          (fun s -> ignore (parse s))
          [ paper_a; paper_a'; paper_b; paper_c ]);
    test_case "paper formula (B) has the right shape" `Quick (fun () ->
        match parse paper_b with
        | Exists ("x", Exists ("y", And (_, Eventually (And (_, Eventually _)))))
          ->
            ()
        | f -> failf "unexpected shape: %a" Pretty.pp f);
    test_case "syntax errors carry a message" `Quick (fun () ->
        let expect_error s =
          match Parser.formula_of_string_opt s with
          | Error _ -> ()
          | Ok f -> failf "parsed %S into %a" s Pretty.pp f
        in
        expect_error "present(";
        expect_error "exists . p(x)";
        expect_error "p(x) and";
        expect_error "height(z) >";
        expect_error "[h < - q(x)] present(x)";
        expect_error "at level 0 (true)";
        expect_error "present(x) trailing");
    test_case "lexer reports bad characters" `Quick (fun () ->
        match Parser.formula_of_string_opt "present(x) # oops" with
        | Error msg -> check bool "non-empty message" true (String.length msg > 0)
        | Ok _ -> fail "expected a lexical error");
  ]

(* round trips: print then reparse *)

let gen_formula =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let attr_var = oneofl [ "h"; "v" ] in
  let name = oneofl [ "p"; "q"; "fires_at"; "holds" ] in
  let attr = oneofl [ "height"; "speed"; "name" ] in
  let value =
    oneof
      [
        map (fun n -> Metadata.Value.Int n) (int_range (-20) 20);
        map (fun f -> Metadata.Value.Float f) (float_range (-4.) 4.);
        map (fun s -> Metadata.Value.Str s) (oneofl [ "a"; "b c"; "d\"e" ]);
        map (fun b -> Metadata.Value.Bool b) bool;
      ]
  in
  let term =
    oneof
      [
        map (fun v -> Const v) value;
        map (fun y -> Attr_var y) attr_var;
        map (fun (q, x) -> Obj_attr (q, x)) (pair attr var);
        map (fun q -> Seg_attr q) attr;
      ]
  in
  let cmp = oneofl [ Eq; Ne; Lt; Le; Gt; Ge ] in
  let atom =
    oneof
      [
        return True;
        return False;
        map (fun x -> Present x) var;
        map (fun (c, t1, t2) -> Cmp (c, t1, t2)) (triple cmp term term);
        map (fun (r, args) -> Rel (r, args)) (pair name (list_size (int_range 1 3) var));
      ]
  in
  let level_sel =
    oneof
      [
        return Next_level;
        map (fun i -> Level_index i) (int_range 1 5);
        map (fun n -> Level_name n) (oneofl [ "shot"; "scene"; "frame" ]);
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then map (fun a -> Atom a) atom
      else
        let sub = self (depth - 1) in
        oneof
          [
            map (fun a -> Atom a) atom;
            map (fun (f, g) -> And (f, g)) (pair sub sub);
            map (fun (f, g) -> Or (f, g)) (pair sub sub);
            map (fun f -> Not f) sub;
            map (fun f -> Next f) sub;
            map (fun (f, g) -> Until (f, g)) (pair sub sub);
            map (fun f -> Eventually f) sub;
            map (fun (x, f) -> Exists (x, f)) (pair var sub);
            map
              (fun (y, (q, xo), f) ->
                Freeze { var = y; attr = q; obj = xo; body = f })
              (triple attr_var (pair attr (option var)) sub);
            map (fun (sel, f) -> At_level (sel, f)) (pair level_sel sub);
          ])
    4

let round_trip_tests =
  [
    Helpers.qtest ~count:500 "pretty-print then parse is the identity"
      (fun f ->
        match Parser.formula_of_string_opt (Pretty.to_string f) with
        | Ok f' -> Ast.equal f f'
        | Error msg ->
            QCheck.Test.fail_reportf "did not reparse %s: %s"
              (Pretty.to_string f) msg)
      (QCheck.make ~print:Pretty.to_string gen_formula);
    Helpers.qtest ~count:500 "free variables are closed under exists"
      (fun f ->
        let fv = Ast.free_obj_vars f in
        List.for_all
          (fun x -> not (List.mem x (Ast.free_obj_vars (Exists (x, f)))))
          fv)
      (QCheck.make ~print:Pretty.to_string gen_formula);
  ]

(* --- classifier --------------------------------------------------------- *)

let classify_tests =
  let open Alcotest in
  let cls = testable Classify.pp_cls ( = ) in
  let check_cls what expected src =
    check cls what expected (Classify.classify (parse src))
  in
  [
    test_case "paper (A)-style formulas are type (1)" `Quick (fun () ->
        check_cls "until of closed atoms" Classify.Type1
          "(exists x . m1(x)) until (exists x . m2(x))";
        check_cls "and with eventually" Classify.Type1
          "(exists x . m1(x)) and eventually (exists x . m2(x))");
    test_case "paper (B) is type (2)" `Quick (fun () ->
        check_cls "prefix exists over temporal" Classify.Type2 paper_b);
    test_case "paper (C) is conjunctive" `Quick (fun () ->
        check_cls "freeze" Classify.Conjunctive paper_c);
    test_case "level operators give extended conjunctive" `Quick (fun () ->
        check_cls "at shot level" Classify.Extended_conjunctive
          "at shot level ((exists x . m1(x)) until (exists x . m2(x)))");
    test_case "negation is general" `Quick (fun () ->
        check_cls "not" Classify.General "not (exists x . m1(x))");
    test_case "disjunction is general" `Quick (fun () ->
        check_cls "or" Classify.General "(exists x . m1(x)) or (exists x . m2(x))");
    test_case "open formulas are general" `Quick (fun () ->
        check_cls "free object variable" Classify.General "present(x)";
        check_cls "free attribute variable" Classify.General "height(x) > h");
    test_case "inner exists over temporal is general" `Quick (fun () ->
        check_cls "exists inside until scope" Classify.General
          "true until (exists x . eventually present(x))");
    test_case "attribute != is general" `Quick (fun () ->
        check_cls "not-equal on attr var" Classify.General
          "exists x . [h <- height(x)] eventually (height(x) != h)");
    test_case "attr var vs attr var is general" `Quick (fun () ->
        check_cls "two attr vars" Classify.General
          "exists x . [h <- height(x)] [v <- speed(x)] eventually (h < v)");
    test_case "subclass ordering" `Quick (fun () ->
        check bool "t1 <= t2" true (Classify.subclass Classify.Type1 Classify.Type2);
        check bool "t2 <= conj" true
          (Classify.subclass Classify.Type2 Classify.Conjunctive);
        check bool "conj <= ext" true
          (Classify.subclass Classify.Conjunctive Classify.Extended_conjunctive);
        check bool "general not below" false
          (Classify.subclass Classify.General Classify.Type1));
    test_case "check explains general" `Quick (fun () ->
        match Classify.check (parse "not true") with
        | Error msg -> check bool "non-empty" true (String.length msg > 0)
        | Ok c -> failf "expected an error, got %a" Classify.pp_cls c);
  ]

let suites =
  [
    ("htl.parser", parser_tests);
    ("htl.round_trip", round_trip_tests);
    ("htl.classify", classify_tests);
  ]
