(* Tests for the Simlist library: intervals, extents, similarity values,
   similarity lists (including the paper's Figure 2 worked example),
   similarity tables, ranges and value tables. *)

open Simlist
open Helpers

let iv = Interval.make

let sl ~max entries =
  Sim_list.of_entries ~max (List.map (fun (a, b, v) -> (iv a b, v)) entries)

(* --- Interval -------------------------------------------------------- *)

let interval_tests =
  let open Alcotest in
  [
    test_case "make validates ordering" `Quick (fun () ->
        check_raises "lo > hi" (Invalid_argument "Interval.make: lo (3) > hi (2)")
          (fun () -> ignore (iv 3 2)));
    test_case "point and length" `Quick (fun () ->
        check int "len [4,4]" 1 (Interval.length (Interval.point 4));
        check int "len [2,5]" 4 (Interval.length (iv 2 5)));
    test_case "contains" `Quick (fun () ->
        check bool "inside" true (Interval.contains (iv 2 5) 3);
        check bool "left edge" true (Interval.contains (iv 2 5) 2);
        check bool "right edge" true (Interval.contains (iv 2 5) 5);
        check bool "outside" false (Interval.contains (iv 2 5) 6));
    test_case "intersect" `Quick (fun () ->
        check (option interval_testable) "overlap" (Some (iv 3 5))
          (Interval.intersect (iv 1 5) (iv 3 8));
        check (option interval_testable) "disjoint" None
          (Interval.intersect (iv 1 2) (iv 4 8));
        check (option interval_testable) "touching" (Some (iv 4 4))
          (Interval.intersect (iv 1 4) (iv 4 8)));
    test_case "adjacent" `Quick (fun () ->
        check bool "yes" true (Interval.adjacent (iv 1 3) (iv 4 6));
        check bool "gap" false (Interval.adjacent (iv 1 3) (iv 5 6));
        check bool "overlap" false (Interval.adjacent (iv 1 4) (iv 4 6)));
    test_case "shift and clip" `Quick (fun () ->
        check interval_testable "shift" (iv 0 2) (Interval.shift (-1) (iv 1 3));
        check (option interval_testable) "clip" (Some (iv 2 3))
          (Interval.clip (iv 0 3) ~within:(iv 2 9)));
    test_case "compare orders by lo then hi" `Quick (fun () ->
        check bool "lo first" true (Interval.compare (iv 1 9) (iv 2 3) < 0);
        check bool "hi second" true (Interval.compare (iv 1 3) (iv 1 9) < 0);
        check int "equal" 0 (Interval.compare (iv 1 3) (iv 1 3)));
  ]

(* --- Sim -------------------------------------------------------------- *)

let sim_tests =
  let open Alcotest in
  [
    test_case "make validates bounds" `Quick (fun () ->
        (try
           ignore (Sim.make ~actual:2. ~max:1.);
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ());
        (try
           ignore (Sim.make ~actual:(-1.) ~max:1.);
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    test_case "fraction" `Quick (fun () ->
        check (float 1e-9) "half" 0.5
          (Sim.fraction (Sim.make ~actual:1. ~max:2.));
        check (float 1e-9) "zero max" 0. (Sim.fraction (Sim.zero ~max:0.)));
    test_case "conj sums both components" `Quick (fun () ->
        let c = Sim.conj (Sim.make ~actual:1. ~max:2.) (Sim.make ~actual:3. ~max:4.) in
        check (float 1e-9) "actual" 4. (Sim.actual c);
        check (float 1e-9) "max" 6. (Sim.max_sim c));
    test_case "conj with a zero side keeps the other (partial match)" `Quick
      (fun () ->
        let c = Sim.conj (Sim.zero ~max:2.) (Sim.make ~actual:3. ~max:4.) in
        check (float 1e-9) "actual" 3. (Sim.actual c);
        check (float 1e-9) "max" 6. (Sim.max_sim c));
    test_case "best picks larger actual" `Quick (fun () ->
        let a = Sim.make ~actual:1. ~max:4. and b = Sim.make ~actual:3. ~max:4. in
        check bool "b wins" true (Sim.equal b (Sim.best a b)));
  ]

(* --- Extent ----------------------------------------------------------- *)

let extent_tests =
  let open Alcotest in
  [
    test_case "single" `Quick (fun () ->
        let e = Extent.single 10 in
        check int "total" 10 (Extent.total e);
        check int "count" 1 (Extent.count e);
        check interval_testable "span" (iv 1 10) (Extent.containing e 5));
    test_case "of_lengths" `Quick (fun () ->
        let e = Extent.of_lengths [ 3; 4; 2 ] in
        check int "total" 9 (Extent.total e);
        check (list interval_testable) "spans"
          [ iv 1 3; iv 4 7; iv 8 9 ]
          (Extent.spans e));
    test_case "containing via binary search" `Quick (fun () ->
        let e = Extent.of_lengths [ 3; 4; 2 ] in
        check interval_testable "id 1" (iv 1 3) (Extent.containing e 1);
        check interval_testable "id 3" (iv 1 3) (Extent.containing e 3);
        check interval_testable "id 4" (iv 4 7) (Extent.containing e 4);
        check interval_testable "id 9" (iv 8 9) (Extent.containing e 9);
        check int "last_of 5" 7 (Extent.last_of e 5));
    test_case "containing rejects out-of-range" `Quick (fun () ->
        let e = Extent.of_lengths [ 2; 2 ] in
        (try
           ignore (Extent.containing e 0);
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ());
        (try
           ignore (Extent.containing e 5);
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    test_case "of_spans round-trips spans" `Quick (fun () ->
        let e = Extent.of_lengths [ 5; 1; 4 ] in
        check bool "round trip" true (Extent.equal e (Extent.of_spans (Extent.spans e))));
    test_case "of_spans rejects gaps" `Quick (fun () ->
        try
          ignore (Extent.of_spans [ iv 1 3; iv 5 6 ]);
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    test_case "split_entries cuts at boundaries" `Quick (fun () ->
        let e = Extent.of_lengths [ 3; 3; 3 ] in
        check
          (list (pair interval_testable (float 0.)))
          "split"
          [ (iv 2 3, 1.); (iv 4 6, 1.); (iv 7 8, 1.) ]
          (Extent.split_entries e [ (iv 2 8, 1.) ]));
  ]

(* --- Sim_list: construction and canonical form ------------------------ *)

let construction_tests =
  let open Alcotest in
  [
    test_case "of_entries sorts" `Quick (fun () ->
        let l = sl ~max:10. [ (5, 6, 2.); (1, 2, 1.) ] in
        check (list (pair interval_testable (float 0.))) "sorted"
          [ (iv 1 2, 1.); (iv 5 6, 2.) ]
          (Sim_list.entries l));
    test_case "of_entries drops non-positive values" `Quick (fun () ->
        let l = sl ~max:10. [ (1, 2, 0.); (4, 5, -1.); (7, 8, 3.) ] in
        check int "one entry" 1 (Sim_list.length l));
    test_case "of_entries coalesces adjacent equal values" `Quick (fun () ->
        let l = sl ~max:10. [ (1, 2, 3.); (3, 5, 3.); (6, 6, 4.) ] in
        check (list (pair interval_testable (float 0.))) "coalesced"
          [ (iv 1 5, 3.); (iv 6 6, 4.) ]
          (Sim_list.entries l));
    test_case "of_entries keeps adjacent different values separate" `Quick
      (fun () ->
        let l = sl ~max:10. [ (1, 2, 3.); (3, 5, 4.) ] in
        check int "two entries" 2 (Sim_list.length l));
    test_case "of_entries rejects overlap" `Quick (fun () ->
        try
          ignore (sl ~max:10. [ (1, 4, 1.); (4, 5, 2.) ]);
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    test_case "of_entries rejects actual above max" `Quick (fun () ->
        try
          ignore (sl ~max:1. [ (1, 2, 2.) ]);
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    test_case "value_at and fraction_at" `Quick (fun () ->
        let l = sl ~max:8. [ (2, 4, 2.); (7, 7, 6.) ] in
        check (float 0.) "absent" 0. (Sim_list.value_at l 1);
        check (float 0.) "inside" 2. (Sim_list.value_at l 3);
        check (float 0.) "point" 6. (Sim_list.value_at l 7);
        check (float 1e-9) "fraction" 0.75 (Sim_list.fraction_at l 7));
    test_case "covered counts ids" `Quick (fun () ->
        let l = sl ~max:8. [ (2, 4, 2.); (7, 7, 6.) ] in
        check int "covered" 4 (Sim_list.covered l));
    test_case "dense round trip" `Quick (fun () ->
        let l = sl ~max:8. [ (2, 4, 2.); (7, 7, 6.) ] in
        check sim_list_testable "round trip" l
          (Sim_list.of_dense ~max:8. (Sim_list.to_dense ~n:10 l)));
  ]

(* --- Sim_list: conjunction -------------------------------------------- *)

let conjunction_tests =
  let open Alcotest in
  [
    test_case "disjoint inputs pass through" `Quick (fun () ->
        let a = sl ~max:4. [ (1, 2, 1.) ] and b = sl ~max:6. [ (5, 6, 2.) ] in
        let c = Sim_list.conjunction a b in
        check (float 0.) "max" 10. (Sim_list.max_sim c);
        check (list (pair interval_testable (float 0.))) "entries"
          [ (iv 1 2, 1.); (iv 5 6, 2.) ]
          (Sim_list.entries c));
    test_case "overlap sums and splits" `Quick (fun () ->
        let a = sl ~max:4. [ (1, 5, 1.) ] and b = sl ~max:6. [ (3, 8, 2.) ] in
        let c = Sim_list.conjunction a b in
        check (list (pair interval_testable (float 0.))) "entries"
          [ (iv 1 2, 1.); (iv 3 5, 3.); (iv 6 8, 2.) ]
          (Sim_list.entries c));
    test_case "identical intervals merge into one entry" `Quick (fun () ->
        let a = sl ~max:4. [ (2, 4, 1.) ] and b = sl ~max:4. [ (2, 4, 2.) ] in
        check (list (pair interval_testable (float 0.))) "entries"
          [ (iv 2 4, 3.) ]
          (Sim_list.entries (Sim_list.conjunction a b)));
    test_case "empty is neutral except for max" `Quick (fun () ->
        let a = sl ~max:4. [ (2, 4, 1.) ] in
        let c = Sim_list.conjunction a (Sim_list.empty ~max:6.) in
        check (float 0.) "max grows" 10. (Sim_list.max_sim c);
        check (list (pair interval_testable (float 0.))) "entries keep a"
          (Sim_list.entries a) (Sim_list.entries c));
    test_case "conjunction_many sums three lists" `Quick (fun () ->
        let mk v = sl ~max:2. [ (1, 1, v) ] in
        let c = Sim_list.conjunction_many [ mk 1.; mk 2.; mk 0.5 ] in
        check (float 1e-9) "value" 3.5 (Sim_list.value_at c 1);
        check (float 0.) "max" 6. (Sim_list.max_sim c));
    qtest "conjunction matches dense reference"
      (fun (n, _extents, a, b) ->
        let la = Sim_list.of_dense ~max:8. a
        and lb = Sim_list.of_dense ~max:8. b in
        let c = Sim_list.conjunction la lb in
        Sim_list.to_dense ~n c = dense_conj a b)
      (arb_two_dense_with_extents ());
    qtest "conjunction is commutative"
      (fun (_n, _extents, a, b) ->
        let la = Sim_list.of_dense ~max:8. a
        and lb = Sim_list.of_dense ~max:8. b in
        Sim_list.equal (Sim_list.conjunction la lb) (Sim_list.conjunction lb la))
      (arb_two_dense_with_extents ());
    qtest "conjunction output is canonical (round-trips through entries)"
      (fun (_n, _extents, a, b) ->
        let c =
          Sim_list.conjunction
            (Sim_list.of_dense ~max:8. a)
            (Sim_list.of_dense ~max:8. b)
        in
        Sim_list.equal c
          (Sim_list.of_entries ~max:(Sim_list.max_sim c) (Sim_list.entries c)))
      (arb_two_dense_with_extents ());
  ]

(* --- Sim_list: next ---------------------------------------------------- *)

let next_tests =
  let open Alcotest in
  [
    test_case "shifts left by one" `Quick (fun () ->
        let l = sl ~max:4. [ (3, 5, 2.) ] in
        let r = Sim_list.next_shift ~extents:(Extent.single 10) l in
        check (list (pair interval_testable (float 0.))) "entries"
          [ (iv 2 4, 2.) ]
          (Sim_list.entries r));
    test_case "last id of video gets zero" `Quick (fun () ->
        let l = sl ~max:4. [ (10, 10, 2.) ] in
        let r = Sim_list.next_shift ~extents:(Extent.single 10) l in
        check (float 0.) "at 9" 2. (Sim_list.value_at r 9);
        check (float 0.) "at 10" 0. (Sim_list.value_at r 10));
    test_case "does not cross extent boundaries" `Quick (fun () ->
        (* ids 1-3 and 4-6 are different videos; g at 4 must not leak to 3 *)
        let l = sl ~max:4. [ (4, 4, 2.) ] in
        let r = Sim_list.next_shift ~extents:(Extent.of_lengths [ 3; 3 ]) l in
        check (float 0.) "at 3" 0. (Sim_list.value_at r 3);
        check bool "empty" true (Sim_list.is_empty r));
    test_case "entry at extent start contributes inside only" `Quick (fun () ->
        let l = sl ~max:4. [ (4, 6, 2.) ] in
        let r = Sim_list.next_shift ~extents:(Extent.of_lengths [ 3; 3 ]) l in
        check (list (pair interval_testable (float 0.))) "entries"
          [ (iv 4 5, 2.) ]
          (Sim_list.entries r));
    qtest "next matches dense reference"
      (fun (n, extents, a, _b) ->
        let l = Sim_list.of_dense ~max:8. a in
        Sim_list.to_dense ~n (Sim_list.next_shift ~extents l)
        = dense_next ~extents a)
      (arb_two_dense_with_extents ());
    qtest "next twice equals shifting dense twice"
      (fun (n, extents, a, _b) ->
        let l = Sim_list.of_dense ~max:8. a in
        let twice =
          Sim_list.next_shift ~extents (Sim_list.next_shift ~extents l)
        in
        Sim_list.to_dense ~n twice = dense_next ~extents (dense_next ~extents a))
      (arb_two_dense_with_extents ());
  ]

(* --- Sim_list: until and eventually ------------------------------------ *)

let until_tests =
  let open Alcotest in
  [
    test_case "paper figure 2 example" `Quick (fun () ->
        (* L1 (g): [25,100] and [200,250], values above threshold.
           L2 (h): ([10,50],10) ([55,60],15) ([90,110],12) ([125,175],10),
           max 20.  Expected output (§3.1):
           ([10,24],10) ([25,60],15) ([61,110],12) ([125,175],10). *)
        let g = sl ~max:20. [ (25, 100, 20.); (200, 250, 20.) ] in
        let h =
          sl ~max:20.
            [ (10, 50, 10.); (55, 60, 15.); (90, 110, 12.); (125, 175, 10.) ]
        in
        let r = Sim_list.until_merge ~extents:(Extent.single 300) g h in
        check (list (pair interval_testable (float 0.))) "output"
          [ (iv 10 24, 10.); (iv 25 60, 15.); (iv 61 110, 12.); (iv 125 175, 10.) ]
          (Sim_list.entries r);
        check (float 0.) "max" 20. (Sim_list.max_sim r));
    test_case "h reachable one past the corridor end" `Quick (fun () ->
        (* g holds on [1,3]; h only at 4.  until holds at 1..3 (g carries us
           to 4) and at 4 itself. *)
        let g = sl ~max:1. [ (1, 3, 1.) ] in
        let h = sl ~max:5. [ (4, 4, 5.) ] in
        let r = Sim_list.until_merge ~extents:(Extent.single 6) g h in
        check (list (pair interval_testable (float 0.))) "output"
          [ (iv 1 4, 5.) ]
          (Sim_list.entries r));
    test_case "g below threshold breaks the corridor" `Quick (fun () ->
        let g = sl ~max:10. [ (1, 2, 9.); (3, 3, 2.); (4, 5, 9.) ] in
        let h = sl ~max:5. [ (6, 6, 5.) ] in
        let r = Sim_list.until_merge ~extents:(Extent.single 6) g h in
        (* from 1-2 the corridor stops at 3 (frac 0.2 < 0.5), so h at 6 is
           unreachable; from 4-5 it is reachable. *)
        check (list (pair interval_testable (float 0.))) "output"
          [ (iv 4 6, 5.) ]
          (Sim_list.entries r));
    test_case "h at the segment itself needs no g" `Quick (fun () ->
        let g = Sim_list.empty ~max:1. in
        let h = sl ~max:5. [ (3, 4, 2.) ] in
        let r = Sim_list.until_merge ~extents:(Extent.single 6) g h in
        check (list (pair interval_testable (float 0.))) "output"
          [ (iv 3 4, 2.) ]
          (Sim_list.entries r));
    test_case "later larger h wins inside corridor (suffix max)" `Quick
      (fun () ->
        let g = sl ~max:1. [ (1, 10, 1.) ] in
        let h = sl ~max:9. [ (2, 2, 3.); (8, 8, 9.) ] in
        let r = Sim_list.until_merge ~extents:(Extent.single 10) g h in
        check (list (pair interval_testable (float 0.))) "output"
          [ (iv 1 8, 9.) ]
          (Sim_list.entries r));
    test_case "until does not cross extents" `Quick (fun () ->
        let g = sl ~max:1. [ (1, 6, 1.) ] in
        let h = sl ~max:5. [ (5, 5, 5.) ] in
        let r =
          Sim_list.until_merge ~extents:(Extent.of_lengths [ 3; 3 ]) g h
        in
        (* ids 1-3 are another video; h at 5 must not be visible there *)
        check (float 0.) "at 2" 0. (Sim_list.value_at r 2);
        check (float 0.) "at 4" 5. (Sim_list.value_at r 4);
        check (float 0.) "at 5" 5. (Sim_list.value_at r 5));
    test_case "threshold is inclusive" `Quick (fun () ->
        let g = sl ~max:10. [ (1, 2, 5.) ] in
        let h = sl ~max:5. [ (3, 3, 5.) ] in
        let r =
          Sim_list.until_merge ~threshold:0.5 ~extents:(Extent.single 3) g h
        in
        check (float 0.) "at 1" 5. (Sim_list.value_at r 1));
    qtest "until matches dense reference"
      (fun (n, extents, a, b) ->
        let g = Sim_list.of_dense ~max:8. a
        and h = Sim_list.of_dense ~max:8. b in
        Sim_list.to_dense ~n (Sim_list.until_merge ~extents g h)
        = dense_until ~extents ~gmax:8. a b)
      (arb_two_dense_with_extents ());
    qtest "until with various thresholds matches dense reference"
      (fun ((n, extents, a, b), threshold) ->
        let g = Sim_list.of_dense ~max:8. a
        and h = Sim_list.of_dense ~max:8. b in
        Sim_list.to_dense ~n (Sim_list.until_merge ~threshold ~extents g h)
        = dense_until ~threshold ~extents ~gmax:8. a b)
      (QCheck.pair
         (arb_two_dense_with_extents ())
         (QCheck.float_range 0.01 1.));
    qtest "eventually matches dense reference"
      (fun (n, extents, a, _b) ->
        let h = Sim_list.of_dense ~max:8. a in
        Sim_list.to_dense ~n (Sim_list.eventually ~extents h)
        = dense_eventually ~extents a)
      (arb_two_dense_with_extents ());
    qtest "eventually equals until with an always-true g"
      (fun (n, extents, a, _b) ->
        let h = Sim_list.of_dense ~max:8. a in
        let top =
          Sim_list.of_dense ~max:1. (Array.make n 1.)
        in
        Sim_list.equal
          (Sim_list.eventually ~extents h)
          (Sim_list.until_merge ~extents top h))
      (arb_two_dense_with_extents ());
    qtest "eventually is idempotent"
      (fun (_n, extents, a, _b) ->
        let h = Sim_list.of_dense ~max:8. a in
        let e = Sim_list.eventually ~extents h in
        Sim_list.equal e (Sim_list.eventually ~extents e))
      (arb_two_dense_with_extents ());
  ]

(* --- Sim_list: merge_max and restrict ---------------------------------- *)

let merge_tests =
  let open Alcotest in
  [
    test_case "merge_max takes pointwise maximum" `Quick (fun () ->
        let a = sl ~max:8. [ (1, 4, 2.) ]
        and b = sl ~max:8. [ (3, 6, 5.) ]
        and c = sl ~max:8. [ (4, 4, 8.) ] in
        let m = Sim_list.merge_max [ a; b; c ] in
        check (list (pair interval_testable (float 0.))) "entries"
          [ (iv 1 2, 2.); (iv 3 3, 5.); (iv 4 4, 8.); (iv 5 6, 5.) ]
          (Sim_list.entries m));
    test_case "merge_max rejects differing maxima" `Quick (fun () ->
        try
          ignore (Sim_list.merge_max [ sl ~max:2. []; sl ~max:3. [] ]);
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    test_case "merge_max of single list is identity" `Quick (fun () ->
        let a = sl ~max:8. [ (1, 4, 2.) ] in
        check sim_list_testable "id" a (Sim_list.merge_max [ a ]));
    qtest "divide-and-conquer equals pairwise merge" ~count:200
      (fun (n, _extents, a, b) ->
        let mk arr = Sim_list.of_dense ~max:8. arr in
        let quarter k =
          Array.init n (fun i -> if (i + k) mod 4 = 0 then a.(i) else b.(i))
        in
        let lists = [ mk a; mk b; mk (quarter 1); mk (quarter 2); mk (quarter 3) ] in
        Sim_list.equal (Sim_list.merge_max lists)
          (Sim_list.merge_max_pairwise lists))
      (arb_two_dense_with_extents ());
    qtest "merge_max matches dense reference" ~count:200
      (fun (n, _extents, a, b) ->
        let m =
          Sim_list.merge_max
            [ Sim_list.of_dense ~max:8. a; Sim_list.of_dense ~max:8. b ]
        in
        Sim_list.to_dense ~n m = dense_max a b)
      (arb_two_dense_with_extents ());
    test_case "restrict keeps only given spans" `Quick (fun () ->
        let l = sl ~max:8. [ (1, 10, 3.) ] in
        let r = Sim_list.restrict l [ iv 2 3; iv 7 8 ] in
        check (list (pair interval_testable (float 0.))) "entries"
          [ (iv 2 3, 3.); (iv 7 8, 3.) ]
          (Sim_list.entries r));
    test_case "restrict to nothing is empty" `Quick (fun () ->
        let l = sl ~max:8. [ (1, 10, 3.) ] in
        check bool "empty" true (Sim_list.is_empty (Sim_list.restrict l [])));
    test_case "scale_max rejects shrinking below values" `Quick (fun () ->
        let l = sl ~max:8. [ (1, 2, 5.) ] in
        try
          ignore (Sim_list.scale_max l ~max:4.);
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

(* --- Range ------------------------------------------------------------- *)

let range_tests =
  let open Alcotest in
  let range = testable Range.pp Range.equal in
  [
    test_case "constructors and mem" `Quick (fun () ->
        check bool "eq mem" true (Range.mem (Range.Vint 3) (Range.int_eq 3));
        check bool "eq not-mem" false (Range.mem (Range.Vint 4) (Range.int_eq 3));
        check bool "lt" true (Range.mem (Range.Vint 2) (Range.int_lt 3));
        check bool "lt edge" false (Range.mem (Range.Vint 3) (Range.int_lt 3));
        check bool "gt" true (Range.mem (Range.Vint 4) (Range.int_gt 3));
        check bool "ge edge" true (Range.mem (Range.Vint 3) (Range.int_ge 3));
        check bool "le edge" true (Range.mem (Range.Vint 3) (Range.int_le 3));
        check bool "full" true (Range.mem (Range.Vint 1000000) Range.full_int);
        check bool "str eq" true (Range.mem (Range.Vstr "a") (Range.str_eq "a"));
        check bool "str any" true (Range.mem (Range.Vstr "zz") Range.full_str);
        check bool "kind mismatch" false (Range.mem (Range.Vint 1) Range.full_str));
    test_case "intersect int ranges" `Quick (fun () ->
        check (option range) "overlap"
          (Some (Range.int_between 3 5))
          (Range.intersect (Range.int_ge 3) (Range.int_le 5));
        check (option range) "empty" None
          (Range.intersect (Range.int_gt 5) (Range.int_lt 5));
        check (option range) "point"
          (Some (Range.int_eq 5))
          (Range.intersect (Range.int_ge 5) (Range.int_le 5)));
    test_case "intersect strings" `Quick (fun () ->
        check (option range) "any+eq"
          (Some (Range.str_eq "x"))
          (Range.intersect Range.full_str (Range.str_eq "x"));
        check (option range) "eq clash" None
          (Range.intersect (Range.str_eq "x") (Range.str_eq "y")));
    test_case "intersect rejects mixed kinds" `Quick (fun () ->
        try
          ignore (Range.intersect Range.full_int Range.full_str);
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

(* --- Sim_table ---------------------------------------------------------- *)

let table_tests =
  let open Alcotest in
  let list2 ~max entries = sl ~max entries in
  let conj = Sim_list.conjunction in
  [
    test_case "of_sim_list is a one-row closed table" `Quick (fun () ->
        let t = Sim_table.of_sim_list (list2 ~max:4. [ (1, 2, 3.) ]) in
        check int "rows" 1 (Sim_table.row_count t);
        check (list string) "no obj cols" [] (Sim_table.obj_cols t));
    test_case "join on shared object variable" `Quick (fun () ->
        let a =
          Sim_table.create ~obj_cols:[ "x" ] ~attr_cols:[] ~max:2.
            [
              { objs = [ ("x", 1) ]; attrs = []; list = list2 ~max:2. [ (1, 3, 2.) ] };
              { objs = [ ("x", 2) ]; attrs = []; list = list2 ~max:2. [ (5, 6, 1.) ] };
            ]
        and b =
          Sim_table.create ~obj_cols:[ "x"; "y" ] ~attr_cols:[] ~max:3.
            [
              {
                objs = [ ("x", 1); ("y", 7) ];
                attrs = [];
                list = list2 ~max:3. [ (2, 4, 3.) ];
              };
            ]
        in
        let j = Sim_table.join ~combine:conj a b in
        check (list string) "cols" [ "x"; "y" ] (Sim_table.obj_cols j);
        check (float 0.) "max" 5. (Sim_table.max_sim j);
        (* x=1 matches: conj; x=2 unmatched: padded, list survives *)
        check int "rows" 2 (Sim_table.row_count j);
        let by_x =
          List.sort compare
            (List.map
               (fun (r : Sim_table.row) -> (List.assoc "x" r.objs, Sim_list.value_at r.list 2, Sim_list.value_at r.list 5))
               (Sim_table.rows j))
        in
        check
          (list (triple int (float 0.) (float 0.)))
          "row values"
          [ (1, 5., 0.); (2, 0., 1.) ]
          by_x);
    test_case "join intersects attribute ranges" `Quick (fun () ->
        let a =
          Sim_table.create ~obj_cols:[] ~attr_cols:[ "h" ] ~max:1.
            [
              {
                objs = [];
                attrs = [ ("h", Range.int_ge 5) ];
                list = list2 ~max:1. [ (1, 1, 1.) ];
              };
            ]
        and b =
          Sim_table.create ~obj_cols:[] ~attr_cols:[ "h" ] ~max:1.
            [
              {
                objs = [];
                attrs = [ ("h", Range.int_le 3) ];
                list = list2 ~max:1. [ (1, 1, 1.) ];
              };
            ]
        in
        let j = Sim_table.join ~combine:conj a b in
        (* ranges are disjoint: the rows do not join but both get padded *)
        check int "rows" 2 (Sim_table.row_count j);
        List.iter
          (fun (r : Sim_table.row) ->
            check (float 0.) "padded value" 1. (Sim_list.value_at r.list 1))
          (Sim_table.rows j));
    test_case "project_exists takes the best evaluation per id" `Quick
      (fun () ->
        let t =
          Sim_table.create ~obj_cols:[ "x" ] ~attr_cols:[] ~max:4.
            [
              { objs = [ ("x", 1) ]; attrs = []; list = list2 ~max:4. [ (1, 4, 2.) ] };
              { objs = [ ("x", 2) ]; attrs = []; list = list2 ~max:4. [ (3, 6, 4.) ] };
            ]
        in
        let l = Sim_table.project_exists t in
        check (float 0.) "at 2" 2. (Sim_list.value_at l 2);
        check (float 0.) "at 3" 4. (Sim_list.value_at l 3);
        check (float 0.) "at 6" 4. (Sim_list.value_at l 6));
    test_case "project_exists of empty table is empty list" `Quick (fun () ->
        let t = Sim_table.create ~obj_cols:[ "x" ] ~attr_cols:[] ~max:4. [] in
        let l = Sim_table.project_exists t in
        check bool "empty" true (Sim_list.is_empty l);
        check (float 0.) "max kept" 4. (Sim_list.max_sim l));
    test_case "freeze_join restricts to value spans" `Quick (fun () ->
        (* T1: formula with attr var h in range >= 5, true on [1,10];
           q's value table: value 7 on [2,3], value 4 on [6,8].
           After [h <- q]: only ids where q >= 5 survive: [2,3]. *)
        let t1 =
          Sim_table.create ~obj_cols:[] ~attr_cols:[ "h" ] ~max:1.
            [
              {
                objs = [];
                attrs = [ ("h", Range.int_ge 5) ];
                list = list2 ~max:1. [ (1, 10, 1.) ];
              };
            ]
        in
        let vt =
          Value_table.create ~obj_cols:[]
            [
              { objs = []; value = Range.Vint 7; spans = [ iv 2 3 ] };
              { objs = []; value = Range.Vint 4; spans = [ iv 6 8 ] };
            ]
        in
        let t = Sim_table.freeze_join t1 ~var:"h" vt in
        check (list string) "h gone" [] (Sim_table.attr_cols t);
        check int "rows" 1 (Sim_table.row_count t);
        let r = List.hd (Sim_table.rows t) in
        check (list (pair interval_testable (float 0.))) "entries"
          [ (iv 2 3, 1.) ]
          (Sim_list.entries r.list));
    test_case "freeze_join joins on object variables" `Quick (fun () ->
        let t1 =
          Sim_table.create ~obj_cols:[ "x" ] ~attr_cols:[ "h" ] ~max:1.
            [
              {
                objs = [ ("x", 1) ];
                attrs = [ ("h", Range.full_int) ];
                list = list2 ~max:1. [ (1, 5, 1.) ];
              };
            ]
        in
        let vt =
          Value_table.create ~obj_cols:[ "x" ]
            [
              { objs = [ ("x", 1) ]; value = Range.Vint 3; spans = [ iv 1 2 ] };
              { objs = [ ("x", 9) ]; value = Range.Vint 3; spans = [ iv 4 5 ] };
            ]
        in
        let t = Sim_table.freeze_join t1 ~var:"h" vt in
        check int "rows (x=9 does not join)" 1 (Sim_table.row_count t);
        let r = List.hd (Sim_table.rows t) in
        check (list (pair interval_testable (float 0.))) "entries"
          [ (iv 1 2, 1.) ]
          (Sim_list.entries r.list));
  ]

let suites =
  [
    ("interval", interval_tests);
    ("sim", sim_tests);
    ("extent", extent_tests);
    ("sim_list.construction", construction_tests);
    ("sim_list.conjunction", conjunction_tests);
    ("sim_list.next", next_tests);
    ("sim_list.until", until_tests);
    ("sim_list.merge", merge_tests);
    ("range", range_tests);
    ("sim_table", table_tests);
  ]
