(* Shared test utilities: dense (array-based) reference implementations of
   the similarity-list operations, and qcheck generators.  The dense code
   follows the §2.5 definitions literally, one id at a time, and serves as
   the oracle for the interval algorithms. *)

open Simlist

let sim_list_testable =
  Alcotest.testable Sim_list.pp Sim_list.equal

let interval_testable = Alcotest.testable Interval.pp Interval.equal

(* --- dense references ---------------------------------------------- *)

let dense_conj = Array.map2 ( +. )

let dense_max = Array.map2 Float.max

(* [next g] at i reads g at i+1 unless i is the last id of its extent. *)
let dense_next ~extents g =
  let n = Array.length g in
  Array.init n (fun i ->
      let id = i + 1 in
      if Interval.hi (Extent.containing extents id) = id then 0.
      else g.(i + 1))

(* [g until h] at i: the best h value at any id j >= i (same extent)
   reachable through ids whose g fraction stays >= threshold. *)
let dense_until ?(threshold = 0.5) ~extents ~gmax g h =
  let n = Array.length g in
  let frac i = if gmax = 0. then 0. else g.(i) /. gmax in
  Array.init n (fun i ->
      let id = i + 1 in
      let ext_hi = Interval.hi (Extent.containing extents id) in
      let best = ref h.(i) in
      let j = ref i in
      while !j + 1 < n && !j + 1 <= ext_hi - 1 && frac !j >= threshold do
        incr j;
        best := Float.max !best h.(!j)
      done;
      !best)

let dense_eventually ~extents h =
  let n = Array.length h in
  Array.init n (fun i ->
      let id = i + 1 in
      let ext_hi = Interval.hi (Extent.containing extents id) in
      let best = ref 0. in
      for j = i to ext_hi - 1 do
        best := Float.max !best h.(j)
      done;
      !best)

(* --- generators ------------------------------------------------------ *)

(* A random dense similarity array: each id independently non-zero with
   probability [density]; values are multiples of 1/8 in (0, max] so that
   float comparisons are exact and coalescing triggers often. *)
let gen_dense ?(density = 0.4) ~n ~max () =
  let open QCheck.Gen in
  let cell =
    float_bound_inclusive 1. >>= fun toss ->
    if toss > density then return 0.
    else map (fun k -> float_of_int k *. max /. 8.) (int_range 1 8)
  in
  array_repeat n cell

let gen_extents ~n =
  let open QCheck.Gen in
  int_range 1 4 >>= fun parts ->
  if parts = 1 || parts >= n then return (Extent.single n)
  else
    let to_extents cuts =
      let cuts = List.sort_uniq compare cuts in
      let cuts = List.filter (fun c -> c > 0 && c < n) cuts in
      let rec lengths prev = function
        | [] -> [ n - prev ]
        | c :: tl -> (c - prev) :: lengths c tl
      in
      Extent.of_lengths (lengths 0 cuts)
    in
    map to_extents (list_repeat (parts - 1) (int_range 1 (n - 1)))

let pp_dense a =
  String.concat ";" (Array.to_list (Array.map string_of_float a))

(* arbitrary for (n, extents, dense array) *)
let arb_dense_with_extents ?(max = 8.) () =
  let gen =
    let open QCheck.Gen in
    int_range 1 60 >>= fun n ->
    gen_extents ~n >>= fun extents ->
    map (fun a -> (n, extents, a)) (gen_dense ~n ~max ())
  in
  let print (n, extents, a) =
    Format.asprintf "n=%d %a dense=[%s]" n Extent.pp extents (pp_dense a)
  in
  QCheck.make ~print gen

let arb_two_dense_with_extents ?(max_a = 8.) ?(max_b = 8.) () =
  let gen =
    let open QCheck.Gen in
    int_range 1 60 >>= fun n ->
    gen_extents ~n >>= fun extents ->
    gen_dense ~n ~max:max_a () >>= fun a ->
    map (fun b -> (n, extents, a, b)) (gen_dense ~n ~max:max_b ())
  in
  let print (n, extents, a, b) =
    Format.asprintf "n=%d %a a=[%s] b=[%s]" n Extent.pp extents (pp_dense a)
      (pp_dense b)
  in
  QCheck.make ~print gen

let check_dense_equal ~what expected actual_list =
  let n = Array.length expected in
  let got = Sim_list.to_dense ~n actual_list in
  Alcotest.(check (array (float 1e-9))) what expected got

let qtest ?(count = 300) name prop arb =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)
