(* Tests for the workload generators: determinism, statistical shape, and
   the shipped datasets' invariants. *)

module Sim_list = Simlist.Sim_list

let rng_tests =
  let open Alcotest in
  [
    test_case "same seed, same stream" `Quick (fun () ->
        let a = Workload.Rng.make 7 and b = Workload.Rng.make 7 in
        for _ = 1 to 50 do
          check int "ints agree" (Workload.Rng.int a 1000) (Workload.Rng.int b 1000)
        done);
    test_case "different seeds diverge" `Quick (fun () ->
        let a = Workload.Rng.make 7 and b = Workload.Rng.make 8 in
        let seq r = List.init 20 (fun _ -> Workload.Rng.int r 1_000_000) in
        check bool "diverge" false (seq a = seq b));
    test_case "geometric mean is roughly right" `Quick (fun () ->
        let rng = Workload.Rng.make 11 in
        let k = 20_000 in
        let total = ref 0 in
        for _ = 1 to k do
          total := !total + Workload.Rng.geometric rng ~mean:5.
        done;
        let mean = float_of_int !total /. float_of_int k in
        check bool "close to 5" true (mean > 4.5 && mean < 5.5));
    test_case "geometric is at least one" `Quick (fun () ->
        let rng = Workload.Rng.make 3 in
        for _ = 1 to 100 do
          check bool "ge 1" true (Workload.Rng.geometric rng ~mean:1. >= 1)
        done);
    test_case "pick rejects empty" `Quick (fun () ->
        let rng = Workload.Rng.make 1 in
        try
          ignore (Workload.Rng.pick rng ([] : int list));
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

let synthetic_tests =
  let open Alcotest in
  [
    test_case "selectivity is approximately honoured" `Quick (fun () ->
        let rng = Workload.Rng.make 21 in
        let n = 200_000 in
        let l =
          Workload.Synthetic.similarity_list rng ~n ~selectivity:0.1 ()
        in
        let covered = float_of_int (Sim_list.covered l) /. float_of_int n in
        check bool
          (Printf.sprintf "covered %.3f in [0.05, 0.2]" covered)
          true
          (covered > 0.05 && covered < 0.2));
    test_case "entries stay within bounds and below max" `Quick (fun () ->
        let rng = Workload.Rng.make 22 in
        let n = 5_000 in
        let l =
          Workload.Synthetic.similarity_list rng ~n ~selectivity:0.3 ~max:7. ()
        in
        List.iter
          (fun (iv, v) ->
            check bool "lo >= 1" true (Simlist.Interval.lo iv >= 1);
            check bool "hi <= n" true (Simlist.Interval.hi iv <= n);
            check bool "0 < v <= max" true (v > 0. && v <= 7.))
          (Sim_list.entries l));
    test_case "deterministic given the seed" `Quick (fun () ->
        let mk () =
          Workload.Synthetic.similarity_list (Workload.Rng.make 5) ~n:1_000 ()
        in
        check bool "equal" true (Sim_list.equal (mk ()) (mk ())));
    test_case "context_with_atoms builds all names" `Quick (fun () ->
        let ctx =
          Workload.Synthetic.context_with_atoms ~seed:1 ~n:100
            [ "a"; "b"; "c" ]
        in
        check int "three tables" 3 (List.length ctx.Engine.Context.tables);
        check int "n" 100 (Engine.Context.segment_count ctx));
  ]

let casablanca_tests =
  let open Alcotest in
  [
    test_case "shipped tables satisfy the similarity-list invariants" `Quick
      (fun () ->
        List.iter
          (fun l ->
            check bool "canonical" true
              (Sim_list.equal l
                 (Sim_list.of_entries ~max:(Sim_list.max_sim l)
                    (Sim_list.entries l))))
          [ Workload.Casablanca.moving_train; Workload.Casablanca.man_woman ]);
    test_case "the reconstruction has 50 shots" `Quick (fun () ->
        let store = Workload.Casablanca.store () in
        check int "shots" 50 (Video_model.Store.count_at store ~level:2));
    test_case "reconstruction supports the published predicates" `Quick
      (fun () ->
        let store = Workload.Casablanca.store () in
        (* the man-woman shots of Table 2 must contain a man and a woman *)
        List.iter
          (fun id ->
            let m = Video_model.Store.meta store ~level:2 ~id in
            check bool
              (Printf.sprintf "man at %d" id)
              true
              (Metadata.Seg_meta.objects_of_type m "man" <> []);
            check bool
              (Printf.sprintf "woman at %d" id)
              true
              (Metadata.Seg_meta.objects_of_type m "woman" <> []))
          [ 1; 2; 3; 4; 47; 48; 49 ];
        (* the train appears exactly at shot 9 *)
        for id = 1 to 50 do
          let m = Video_model.Store.meta store ~level:2 ~id in
          check bool
            (Printf.sprintf "train at %d" id)
            (id = 9)
            (Metadata.Seg_meta.objects_of_type m "train" <> [])
        done);
  ]

let gulf_tests =
  let open Alcotest in
  [
    test_case "gulf war video has four uniform levels" `Quick (fun () ->
        let v = Workload.Gulf_war.video () in
        check int "levels" 4 (Video_model.Video.levels v);
        check (option int) "scene index" (Some 3)
          (Video_model.Video.level_index v "scene"));
    test_case "all showcase queries evaluate" `Quick (fun () ->
        let ctx = Engine.Context.of_store ~level:1 (Workload.Gulf_war.store ()) in
        List.iter
          (fun (name, q) ->
            match Engine.Query.run_string ctx q with
            | _ -> ()
            | exception Engine.Query.Error msg ->
                failf "%s failed: %s" name msg)
          Workload.Gulf_war.queries);
    test_case "showcase queries match the exact semantics" `Quick (fun () ->
        let store = Workload.Gulf_war.store () in
        let ctx = Engine.Context.of_store ~level:1 store in
        List.iter
          (fun (name, q) ->
            let f = Htl.Parser.formula_of_string q in
            let list = Engine.Query.run ctx f in
            let exact = Htl.Exact.eval_over_level store ~level:1 f in
            (* full similarity iff exactly satisfied is only guaranteed in
               one direction (partial credit); check exact -> full *)
            Array.iteri
              (fun i sat ->
                if sat then
                  check (float 1e-9)
                    (Printf.sprintf "%s at %d" name (i + 1))
                    (Sim_list.max_sim list)
                    (Sim_list.value_at list (i + 1)))
              exact)
          Workload.Gulf_war.queries);
  ]

let movies_tests =
  let open Alcotest in
  [
    test_case "random stores are valid at every level" `Quick (fun () ->
        for seed = 1 to 10 do
          let rng = Workload.Rng.make seed in
          let levels = 2 + Workload.Rng.int rng 3 in
          let store =
            Workload.Movies.random_store rng ~videos:2 ~levels ()
          in
          check int "levels" levels (Video_model.Store.levels store);
          for level = 1 to levels do
            check bool "non-empty" true
              (Video_model.Store.count_at store ~level > 0)
          done
        done);
    test_case "random formulas classify within their class" `Quick (fun () ->
        let rng = Workload.Rng.make 33 in
        for _ = 1 to 50 do
          let f1 = Workload.Movies.random_type1_formula rng ~depth:2 in
          check bool
            (Htl.Pretty.to_string f1)
            true
            (Htl.Classify.subclass (Htl.Classify.classify f1) Htl.Classify.Type1);
          let f2 = Workload.Movies.random_type2_formula rng ~depth:2 in
          check bool
            (Htl.Pretty.to_string f2)
            true
            (Htl.Classify.subclass (Htl.Classify.classify f2) Htl.Classify.Type2)
        done);
  ]

let suites =
  [
    ("workload.rng", rng_tests);
    ("workload.synthetic", synthetic_tests);
    ("workload.casablanca", casablanca_tests);
    ("workload.gulf", gulf_tests);
    ("workload.movies", movies_tests);
  ]
