(* Tests for the retrieval engine: the Casablanca reproduction (Tables
   1-4), the type (1) list algorithms, the general table algorithms, the
   freeze quantifier, level operators, the SQL backend, ranking, and
   property tests against the naive reference oracle. *)

open Engine
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table
module Interval = Simlist.Interval

let iv = Interval.make
let parse = Htl.Parser.formula_of_string
let sim_list = Alcotest.testable Sim_list.pp Sim_list.equal

(* --- Casablanca: the paper's §4.1 test case ------------------------------ *)

let casablanca_tests =
  let open Alcotest in
  [
    test_case "table 3: eventually Moving-Train" `Quick (fun () ->
        let ctx = Workload.Casablanca.context () in
        let r = Query.run_string ctx "eventually moving_train" in
        check sim_list "matches the paper" Workload.Casablanca.expected_table3 r);
    test_case "table 4: Query 1 final list, ranked (direct)" `Quick (fun () ->
        let ctx = Workload.Casablanca.context () in
        let r = Query.run_string ctx Workload.Casablanca.query1 in
        let ranked = Topk.ranked_intervals r in
        check
          (list (pair (testable Interval.pp Interval.equal) (float 1e-9)))
          "matches the paper" Workload.Casablanca.expected_table4 ranked);
    test_case "table 4 via the SQL backend is identical" `Quick (fun () ->
        let ctx = Workload.Casablanca.context () in
        let direct = Query.run_string ctx Workload.Casablanca.query1 in
        let sql =
          Query.run_string ~backend:Query.Sql_backend_choice ctx
            Workload.Casablanca.query1
        in
        check sim_list "both approaches produce identical values" direct sql);
    test_case "top-3 shots of Query 1" `Quick (fun () ->
        let ctx = Workload.Casablanca.context () in
        let top = Query.top_k ctx ~k:3 Workload.Casablanca.query1 in
        check (list int) "ids" [ 1; 2; 3 ] (List.map fst top);
        check (float 1e-9) "best value" 12.382
          (Simlist.Sim.actual (snd (List.hd top))));
    test_case "query over the meta-data reconstruction finds the same shots"
      `Quick (fun () ->
        let store = Workload.Casablanca.store () in
        let ctx = Context.of_store store in
        let r = Query.run_string ctx Workload.Casablanca.store_query1 in
        (* values differ from the paper (our scorer, not SCORE), but the
           exact-match region must rank first *)
        match Topk.ranked_intervals r with
        | (best, _) :: _ ->
            check bool "47-49 or 1-4 rank first (both are exact)" true
              (Interval.lo best = 47 || Interval.lo best = 1)
        | [] -> fail "no results");
  ]

(* --- type (1) fast path --------------------------------------------------- *)

let type1_tests =
  let open Alcotest in
  let ctx_of lists =
    Context.of_tables ~n:20
      (List.map (fun (name, l) -> (name, Sim_table.of_sim_list l)) lists)
  in
  [
    test_case "conjunction of named atoms" `Quick (fun () ->
        let ctx =
          ctx_of
            [
              ("p1", Sim_list.of_entries ~max:4. [ (iv 1 5, 2.) ]);
              ("p2", Sim_list.of_entries ~max:4. [ (iv 4 8, 4.) ]);
            ]
        in
        let r = Query.run_string ctx "p1 and p2" in
        check (float 0.) "max" 8. (Sim_list.max_sim r);
        check (float 0.) "overlap" 6. (Sim_list.value_at r 4);
        check (float 0.) "p1 only" 2. (Sim_list.value_at r 2);
        check (float 0.) "p2 only" 4. (Sim_list.value_at r 7));
    test_case "until with threshold" `Quick (fun () ->
        let ctx =
          ctx_of
            [
              ("p1", Sim_list.of_entries ~max:4. [ (iv 1 5, 3.) ]);
              ("p2", Sim_list.of_entries ~max:9. [ (iv 6 6, 9.) ]);
            ]
        in
        let r = Query.run_string ctx "p1 until p2" in
        (* p1's fraction 0.75 >= 0.5 carries ids 1..5 to p2 at 6 *)
        check sim_list "corridor"
          (Sim_list.of_entries ~max:9. [ (iv 1 6, 9.) ])
          r);
    test_case "next shifts by one" `Quick (fun () ->
        let ctx = ctx_of [ ("p1", Sim_list.of_entries ~max:4. [ (iv 3 3, 4.) ]) ] in
        let r = Query.run_string ctx "next p1" in
        check sim_list "shifted" (Sim_list.of_entries ~max:4. [ (iv 2 2, 4.) ]) r);
    test_case "general formulas are rejected with a reason" `Quick (fun () ->
        let ctx = ctx_of [ ("p1", Sim_list.of_entries ~max:4. [] ) ] in
        (try
           ignore (Query.run_string ctx "not p1");
           fail "expected Query.Error"
         with Query.Error msg ->
           check bool "mentions negation" true
             (String.length msg > 0)));
    test_case "unknown atom names are reported" `Quick (fun () ->
        let ctx = ctx_of [] in
        try
          ignore (Query.run_string ctx "mystery until mystery2");
          fail "expected Query.Error"
        with Query.Error _ -> ());
  ]

(* --- general table algorithms over stores --------------------------------- *)

let direct_tests =
  let open Alcotest in
  [
    test_case "type (2): shared variable across until" `Quick (fun () ->
        (* the SAME man must be present until he fires: checks that join
           on the shared variable distinguishes bindings *)
        let store = Fixtures.western_store () in
        let ctx = Context.of_store store in
        let f =
          parse
            "exists x . (present(x) and name(x) = \"John Wayne\") until \
             fires_at(x, y)"
        in
        (* y free -> general; close it *)
        ignore f;
        let f =
          parse
            "exists x, y . (present(x) and name(x) = \"John Wayne\") until \
             fires_at(x, y)"
        in
        check string "classifies as type 2" "type (2)"
          (Htl.Classify.cls_to_string (Query.classify f));
        let r = Query.run ctx f in
        (* john is present at shots 1,2,4,5 and fires at shot 4.  The
           corridor from shot 1 breaks at shot 3 (john absent), so the
           firing is only reachable from shot 4 itself. *)
        check (float 1e-9) "shot 1 cannot reach the firing" 0.
          (Sim_list.value_at r 1);
        check (float 1e-9) "shot 4" 1. (Sim_list.value_at r 4);
        check (float 1e-9) "shot 5 is past it" 0. (Sim_list.value_at r 5);
        check (float 1e-9) "shot 6 nothing" 0. (Sim_list.value_at r 6));
    test_case "conjunctive: the paper's airplane formula (C)" `Quick (fun () ->
        (* height grows from 100 to 300 across three segments *)
        let plane h =
          Metadata.Entity.make ~id:9 ~otype:"airplane"
            ~attrs:[ ("height", Metadata.Value.Int h) ]
            ()
        in
        let shots =
          [
            Metadata.Seg_meta.make ~objects:[ plane 100 ] ();
            Metadata.Seg_meta.make ~objects:[ plane 300 ] ();
            Metadata.Seg_meta.make ~objects:[ plane 200 ] ();
            Metadata.Seg_meta.make ();
          ]
        in
        let store =
          Video_model.Store.of_video
            (Video_model.Video.two_level ~title:"planes" shots)
        in
        let ctx = Context.of_store store in
        let f =
          parse
            "exists z . (present(z) and type(z) = \"airplane\") and [h <- \
             height(z)] eventually (present(z) and height(z) > h)"
        in
        check string "classifies as conjunctive" "conjunctive"
          (Htl.Classify.cls_to_string (Query.classify f));
        let r = Query.run ctx f in
        (* max = 4 (four weighted conditions); shot 1: plane present,
           height 100, eventually higher (300) => exact 4;
           shot 2: 300 never exceeded => partial (the eventual conjunct
           contributes present only: 2 + 1 = 3);
           shot 3: 200 never exceeded later => 3; shot 4: nothing *)
        check (float 0.) "max" 4. (Sim_list.max_sim r);
        check (float 1e-9) "shot 1 exact" 4. (Sim_list.value_at r 1);
        check (float 1e-9) "shot 2 partial" 3. (Sim_list.value_at r 2);
        check (float 1e-9) "shot 3 partial" 3. (Sim_list.value_at r 3);
        check (float 1e-9) "shot 4 zero" 0. (Sim_list.value_at r 4));
    test_case "extended conjunctive: level operator" `Quick (fun () ->
        let store = Fixtures.layered_store () in
        let ctx = Context.of_store store ~level:2 in
        (* asserted on scenes: at the next level (their shots), a train
           eventually appears *)
        let f =
          parse
            "at next level (eventually (exists x . (present(x) and type(x) \
             = \"train\")))"
        in
        check string "classifies as extended" "extended conjunctive"
          (Htl.Classify.cls_to_string (Query.classify f));
        let r = Query.run ctx f in
        (* scene 1 (shots: john, john+gun): partial via type taxonomy;
           scene 2 (train, train, mary): exact *)
        check (float 0.) "max" 2. (Sim_list.max_sim r);
        check (float 1e-9) "scene 2 exact" 2. (Sim_list.value_at r 2);
        check bool "scene 1 partial" true
          (Sim_list.value_at r 1 > 0. && Sim_list.value_at r 1 < 2.));
    test_case "value_table extraction" `Quick (fun () ->
        let store = Fixtures.western_store () in
        let ctx = Context.of_store store in
        let vt = Direct.value_table ctx ~attr:"speed" ~obj:(Some "x") in
        (* the train (id 4) has speed 50 at shot 3 and 80 at shot 5 *)
        let rows = Simlist.Value_table.rows vt in
        check int "two rows" 2 (List.length rows);
        List.iter
          (fun (r : Simlist.Value_table.row) ->
            check (list (pair string int)) "bound to train" [ ("x", 4) ] r.objs)
          rows);
  ]

(* --- SQL backend ----------------------------------------------------------- *)

let sql_tests =
  let open Alcotest in
  [
    test_case "sql backend agrees with direct on a fixed query" `Quick
      (fun () ->
        let ctx =
          Workload.Synthetic.context_with_atoms ~seed:7 ~n:300 [ "p1"; "p2" ]
        in
        List.iter
          (fun q ->
            let direct = Query.run_string ctx q in
            let sql = Query.run_string ~backend:Query.Sql_backend_choice ctx q in
            check sim_list q direct sql)
          [
            "p1 and p2";
            "p1 until p2";
            "next p1";
            "eventually p2";
            "(p1 and eventually p2) until p1";
            "p1 and next (p2 until p1)";
          ]);
    test_case "sql backend respects extents" `Quick (fun () ->
        let extents = Simlist.Extent.of_lengths [ 100; 100; 100 ] in
        let ctx =
          Workload.Synthetic.context_with_atoms ~seed:11 ~n:300 ~extents
            [ "p1"; "p2" ]
        in
        List.iter
          (fun q ->
            let direct = Query.run_string ctx q in
            let sql = Query.run_string ~backend:Query.Sql_backend_choice ctx q in
            check sim_list q direct sql)
          [ "p1 until p2"; "next p1"; "eventually p2" ]);
    test_case "conjunctive formulas run through SQL too" `Quick (fun () ->
        (* the paper: the SQL system handles ANY conjunctive formula *)
        let store = Fixtures.western_store () in
        let ctx = Context.of_store store in
        List.iter
          (fun q ->
            let f = parse q in
            let direct = Query.run ctx f in
            let backend = Sql_backend.create ctx in
            let sql = Sql_backend.run_conjunctive backend ctx f in
            check sim_list q direct sql)
          [
            (* type 2: shared variable across until *)
            "exists x, y . (present(x) and name(x) = \"John Wayne\") until \
             fires_at(x, y)";
            (* conjunctive: freeze *)
            "exists x . (present(x) and type(x) = \"train\") and [v <- \
             speed(x)] eventually (present(x) and speed(x) > v)";
          ]);
    test_case "extended formulas run through SQL (own seq per level)" `Quick
      (fun () ->
        let store = Fixtures.layered_store () in
        let ctx = Context.of_store ~level:1 store in
        List.iter
          (fun q ->
            let direct = Query.run_string ctx q in
            let sql =
              Query.run_string ~backend:Query.Sql_backend_choice ctx q
            in
            check sim_list q direct sql)
          [
            "at scene level (seg.name = \"intro\" and eventually (seg.name \
             = \"trains\"))";
            "at shot level (eventually (exists x . (present(x) and type(x) \
             = \"train\")))";
            "at next level (at next level (exists x . present(x)))";
          ]);
    test_case "the generated script is recorded" `Quick (fun () ->
        let ctx =
          Workload.Synthetic.context_with_atoms ~seed:3 ~n:50 [ "p1"; "p2" ]
        in
        let backend = Sql_backend.create ctx in
        ignore (Sql_backend.run backend ctx (parse "p1 until p2"));
        let script = Sql_backend.last_script backend in
        check bool "several statements" true (List.length script >= 6);
        let contains ~sub s =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        check bool "mentions ROWNUM" true
          (List.exists (contains ~sub:"ROWNUM") script));
  ]

(* --- topk ------------------------------------------------------------------ *)

let topk_tests =
  let open Alcotest in
  [
    test_case "ranked intervals sort by value then start" `Quick (fun () ->
        let l =
          Sim_list.of_entries ~max:10.
            [ (iv 1 2, 5.); (iv 4 4, 9.); (iv 6 8, 5.) ]
        in
        check
          (list (pair (testable Interval.pp Interval.equal) (float 0.)))
          "order"
          [ (iv 4 4, 9.); (iv 1 2, 5.); (iv 6 8, 5.) ]
          (Topk.ranked_intervals l));
    test_case "top_k expands intervals and breaks ties by id" `Quick (fun () ->
        let l =
          Sim_list.of_entries ~max:10. [ (iv 1 3, 5.); (iv 7 7, 9.) ]
        in
        check (list int) "ids" [ 7; 1; 2 ]
          (List.map fst (Topk.top_k l ~k:3)));
    test_case "top_k beyond coverage stops" `Quick (fun () ->
        let l = Sim_list.of_entries ~max:10. [ (iv 2 2, 5.) ] in
        check int "only one" 1 (List.length (Topk.top_k l ~k:5)));
  ]

(* --- property tests against the naive oracle -------------------------------- *)

let check_against_oracle ctx f =
  let oracle = Reference.similarity_over_level ctx f in
  let engine = Query.run ctx f in
  let n = Array.length oracle in
  let dense = Sim_list.to_dense ~n engine in
  let ok = ref true in
  Array.iteri
    (fun i s ->
      if Float.abs (Simlist.Sim.actual s -. dense.(i)) > 1e-9 then ok := false)
    oracle;
  if not !ok then
    QCheck.Test.fail_reportf "engine disagrees with oracle on %s:@.%s@.vs %s"
      (Htl.Pretty.to_string f)
      (String.concat ";"
         (Array.to_list (Array.map (fun s -> string_of_float (Simlist.Sim.actual s)) oracle)))
      (String.concat ";" (Array.to_list (Array.map string_of_float dense)));
  (match Sim_list.entries engine with
  | _ :: _ ->
      if Sim_list.max_sim engine +. 1e-9 < Reference.max_similarity ctx f then
        QCheck.Test.fail_reportf "engine max too small"
  | [] -> ());
  true

let arb_seed name = QCheck.make ~print:(Printf.sprintf "%s seed %d" name) QCheck.Gen.int

let oracle_tests =
  [
    Helpers.qtest ~count:60 "type1 over named tables matches the oracle"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let n = 10 + Workload.Rng.int rng 40 in
        let ctx =
          Workload.Synthetic.context_with_atoms ~seed:(seed + 1) ~n
            ~selectivity:0.4
            [ "p1"; "p2"; "p3" ]
        in
        let rec formula depth =
          let open Htl.Ast in
          if depth = 0 then
            Atom (Rel (Workload.Rng.pick rng [ "p1"; "p2"; "p3" ], []))
          else
            let sub () = formula (depth - 1) in
            match Workload.Rng.int rng 5 with
            | 0 -> And (sub (), sub ())
            | 1 -> Until (sub (), sub ())
            | 2 -> Next (sub ())
            | 3 -> Eventually (sub ())
            | _ -> Atom (Rel (Workload.Rng.pick rng [ "p1"; "p2"; "p3" ], []))
        in
        check_against_oracle ctx (formula 3))
      (arb_seed "tables");
    Helpers.qtest ~count:40 "type1 over random stores matches the oracle"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let store =
          Workload.Movies.random_store rng ~videos:2 ~branching:5 ()
        in
        let ctx = Context.of_store store in
        check_against_oracle ctx (Workload.Movies.random_type1_formula rng ~depth:2))
      (arb_seed "stores");
    Helpers.qtest ~count:40 "type2 over random stores matches the oracle"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let store =
          Workload.Movies.random_store rng ~videos:1 ~branching:4
            ~object_pool:4 ()
        in
        let ctx = Context.of_store store in
        check_against_oracle ctx (Workload.Movies.random_type2_formula rng ~depth:2))
      (arb_seed "type2");
    Helpers.qtest ~count:40 "conjunctive (freeze) over random stores matches the oracle"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let store =
          Workload.Movies.random_store rng ~videos:1 ~branching:4
            ~object_pool:4 ()
        in
        let ctx = Context.of_store store in
        check_against_oracle ctx
          (Workload.Movies.random_conjunctive_formula rng ~depth:2))
      (arb_seed "conjunctive");
    Helpers.qtest ~count:30 "extended (level ops) over random stores matches the oracle"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let levels = 3 + Workload.Rng.int rng 2 in
        let store =
          Workload.Movies.random_store rng ~videos:2 ~levels ~branching:3
            ~object_pool:4 ()
        in
        let ctx = Context.of_store ~level:1 store in
        check_against_oracle ctx
          (Workload.Movies.random_extended_formula rng ~depth:2
             ~max_level:levels))
      (arb_seed "extended");
    Helpers.qtest ~count:30 "sql backend matches direct on random type1"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let n = 10 + Workload.Rng.int rng 60 in
        let ctx =
          Workload.Synthetic.context_with_atoms ~seed:(seed + 13) ~n
            ~selectivity:0.3
            [ "p1"; "p2" ]
        in
        let rec formula depth =
          let open Htl.Ast in
          if depth = 0 then
            Atom (Rel (Workload.Rng.pick rng [ "p1"; "p2" ], []))
          else
            let sub () = formula (depth - 1) in
            match Workload.Rng.int rng 5 with
            | 0 -> And (sub (), sub ())
            | 1 -> Until (sub (), sub ())
            | 2 -> Next (sub ())
            | 3 -> Eventually (sub ())
            | _ -> Atom (Rel (Workload.Rng.pick rng [ "p1"; "p2" ], []))
        in
        let f = formula 3 in
        let direct = Query.run ctx f in
        let sql = Query.run ~backend:Query.Sql_backend_choice ctx f in
        if not (Sim_list.equal direct sql) then
          QCheck.Test.fail_reportf "backends disagree on %s"
            (Htl.Pretty.to_string f)
        else true)
      (arb_seed "sql");
    Helpers.qtest ~count:15 "sql matches direct on random extended formulas"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let levels = 3 in
        let store =
          Workload.Movies.random_store rng ~videos:1 ~levels ~branching:3
            ~object_pool:3 ()
        in
        let ctx = Context.of_store ~level:1 store in
        let f =
          Workload.Movies.random_extended_formula rng ~depth:2
            ~max_level:levels
        in
        let direct = Query.run ctx f in
        let sql = Query.run ~backend:Query.Sql_backend_choice ctx f in
        if not (Sim_list.equal direct sql) then
          QCheck.Test.fail_reportf "sql extended disagrees on %s"
            (Htl.Pretty.to_string f)
        else true)
      (arb_seed "sql-extended");
    Helpers.qtest ~count:20 "sql conjunctive path matches direct on random type2"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let store =
          Workload.Movies.random_store rng ~videos:1 ~branching:4
            ~object_pool:3 ()
        in
        let ctx = Context.of_store store in
        let f = Workload.Movies.random_type2_formula rng ~depth:2 in
        let direct = Query.run ctx f in
        let backend = Sql_backend.create ctx in
        let sql = Sql_backend.run_conjunctive backend ctx f in
        if not (Sim_list.equal direct sql) then
          QCheck.Test.fail_reportf "sql conjunctive disagrees on %s"
            (Htl.Pretty.to_string f)
        else true)
      (arb_seed "sql-type2");
    Helpers.qtest ~count:15 "sql conjunctive path matches direct on random freeze formulas"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let store =
          Workload.Movies.random_store rng ~videos:1 ~branching:3
            ~object_pool:3 ()
        in
        let ctx = Context.of_store store in
        let f = Workload.Movies.random_conjunctive_formula rng ~depth:2 in
        let direct = Query.run ctx f in
        let backend = Sql_backend.create ctx in
        let sql = Sql_backend.run_conjunctive backend ctx f in
        if not (Sim_list.equal direct sql) then
          QCheck.Test.fail_reportf "sql conjunctive disagrees on %s"
            (Htl.Pretty.to_string f)
        else true)
      (arb_seed "sql-conjunctive");
    Helpers.qtest ~count:40
      "exact satisfaction implies full similarity (credit-exact atoms)"
      (fun seed ->
        let rng = Workload.Rng.make seed in
        let store = Workload.Movies.random_store rng ~videos:1 ~branching:5 () in
        let ctx = Context.of_store store in
        (* only present/rel atoms: no partial credit anywhere *)
        let open Htl.Ast in
        let atom () =
          match Workload.Rng.int rng 2 with
          | 0 ->
              Exists
                ( "u",
                  Exists
                    ("v", Atom (Rel (Workload.Rng.pick rng [ "holds"; "near" ], [ "u"; "v" ])))
                )
          | _ -> Exists ("u", Atom (Present "u"))
        in
        let rec formula depth =
          if depth = 0 then atom ()
          else
            let sub () = formula (depth - 1) in
            match Workload.Rng.int rng 4 with
            | 0 -> And (sub (), sub ())
            | 1 -> Until (sub (), sub ())
            | 2 -> Eventually (sub ())
            | _ -> atom ()
        in
        let f = formula 2 in
        let exact = Htl.Exact.eval_over_level store ~level:2 f in
        let list = Query.run ctx f in
        let m = Sim_list.max_sim list in
        Array.for_all2
          (fun e id_ok -> (not e) || id_ok)
          exact
          (Array.init (Array.length exact) (fun i ->
               Float.abs (Sim_list.value_at list (i + 1) -. m) < 1e-9)))
      (arb_seed "exact-implies-full");
  ]

let suites =
  [
    ("engine.casablanca", casablanca_tests);
    ("engine.type1", type1_tests);
    ("engine.direct", direct_tests);
    ("engine.sql", sql_tests);
    ("engine.topk", topk_tests);
    ("engine.oracle", oracle_tests);
  ]
