(* Tests for the picture retrieval substrate: taxonomy, spatial relations,
   weights, and the similarity-table construction for atomic formulas. *)

open Picture
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table
module Range = Simlist.Range

let parse = Htl.Parser.formula_of_string

let taxonomy_tests =
  let open Alcotest in
  let t = Taxonomy.default in
  [
    test_case "exact type matches fully" `Quick (fun () ->
        check (float 0.) "man/man" 1. (Taxonomy.similarity t ~asked:"man" ~found:"man"));
    test_case "subtype of the asked type matches fully" `Quick (fun () ->
        check (float 0.) "person asked, man found" 1.
          (Taxonomy.similarity t ~asked:"person" ~found:"man"));
    test_case "supertype gives partial credit" `Quick (fun () ->
        check (float 1e-9) "man asked, person found" 0.5
          (Taxonomy.similarity t ~asked:"man" ~found:"person"));
    test_case "siblings give partial credit" `Quick (fun () ->
        check (float 1e-9) "woman/man" 0.25
          (Taxonomy.similarity t ~asked:"woman" ~found:"man");
        check (float 1e-9) "train/car" 0.25
          (Taxonomy.similarity t ~asked:"train" ~found:"car"));
    test_case "distant relatives decay further" `Quick (fun () ->
        check (float 1e-9) "man/train" 0.0625
          (Taxonomy.similarity t ~asked:"man" ~found:"train"));
    test_case "unknown types only match themselves" `Quick (fun () ->
        check (float 0.) "alien/alien" 1.
          (Taxonomy.similarity t ~asked:"alien" ~found:"alien");
        check (float 0.) "alien/man" 0.
          (Taxonomy.similarity t ~asked:"alien" ~found:"man"));
    test_case "is_subtype is reflexive-transitive" `Quick (fun () ->
        check bool "man <= person" true (Taxonomy.is_subtype t ~sub:"man" ~super:"person");
        check bool "man <= thing" true (Taxonomy.is_subtype t ~sub:"man" ~super:"thing");
        check bool "man <= man" true (Taxonomy.is_subtype t ~sub:"man" ~super:"man");
        check bool "person <= man" false (Taxonomy.is_subtype t ~sub:"person" ~super:"man"));
    test_case "add rejects duplicates and unknown parents" `Quick (fun () ->
        (try
           ignore (Taxonomy.add t "man");
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ());
        (try
           ignore (Taxonomy.add t ~parent:"ghost" "spirit");
           fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
  ]

let spatial_tests =
  let open Alcotest in
  let box x0 x1 = Metadata.Bbox.make ~x0 ~y0:0. ~x1 ~y1:1. in
  let meta =
    Metadata.Seg_meta.make
      ~objects:
        [
          Metadata.Entity.make ~id:1 ~otype:"man" ~bbox:(box 0. 1.) ();
          Metadata.Entity.make ~id:2 ~otype:"train" ~bbox:(box 2. 3.) ();
          Metadata.Entity.make ~id:3 ~otype:"gun" ();
        ]
      ~relationships:[ Metadata.Relationship.make "holds" [ 1; 3 ] ]
      ()
  in
  [
    test_case "explicit relationships" `Quick (fun () ->
        check bool "holds" true (Spatial.holds meta "holds" [ 1; 3 ]);
        check bool "wrong order" false (Spatial.holds meta "holds" [ 3; 1 ]));
    test_case "derived from bounding boxes" `Quick (fun () ->
        check bool "left_of" true (Spatial.holds meta "left_of" [ 1; 2 ]);
        check bool "right_of" true (Spatial.holds meta "right_of" [ 2; 1 ]);
        check bool "not left" false (Spatial.holds meta "left_of" [ 2; 1 ]));
    test_case "missing boxes derive nothing" `Quick (fun () ->
        check bool "no box" false (Spatial.holds meta "left_of" [ 1; 3 ]));
    test_case "unknown relation" `Quick (fun () ->
        check bool "nope" false (Spatial.holds meta "chases" [ 1; 2 ]));
  ]

let weights_tests =
  let open Alcotest in
  [
    test_case "default weight is 1 per atom" `Quick (fun () ->
        check (float 0.) "three atoms" 3.
          (Weights.total Weights.default
             (parse "present(x) and type(x) = \"man\" and holds(x, y)")));
    test_case "per-key overrides" `Quick (fun () ->
        let w = Weights.create [ ("present", 2.); ("rel:holds", 5.) ] in
        check (float 0.) "weighted" 8.
          (Weights.total w
             (parse "present(x) and type(x) = \"man\" and holds(x, y)")));
    test_case "quantifiers are transparent" `Quick (fun () ->
        check (float 0.) "exists" 2.
          (Weights.total Weights.default
             (parse "exists x . present(x) and type(x) = \"man\"")));
    test_case "total rejects temporal formulas" `Quick (fun () ->
        try
          ignore (Weights.total Weights.default (parse "eventually present(x)"));
          fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

(* --- retrieval ------------------------------------------------------------ *)

let store = Fixtures.western_store ()

let retrieval_tests =
  let open Alcotest in
  [
    test_case "closed formula gives a one-column table" `Quick (fun () ->
        let t =
          Retrieval.eval store ~level:2
            (parse "exists x . (present(x) and type(x) = \"train\")")
        in
        check (list string) "no cols" [] (Sim_table.obj_cols t);
        let l = Sim_table.project_exists t in
        (* full match (2.0) at shots 3 and 5 where the train appears;
           partial type credit elsewhere: person vs train = 2^-4 *)
        check (float 1e-9) "shot 3" 2. (Sim_list.value_at l 3);
        check (float 1e-9) "shot 5" 2. (Sim_list.value_at l 5);
        check (float 1e-9) "shot 1 partial" 1.0625 (Sim_list.value_at l 1);
        check (float 1e-9) "shot 6 empty" 0. (Sim_list.value_at l 6));
    test_case "free variable tables have one row per relevant object" `Quick
      (fun () ->
        let t =
          Retrieval.eval store ~level:2
            (parse "present(x) and type(x) = \"man\"")
        in
        check (list string) "col" [ "x" ] (Sim_table.obj_cols t);
        (* objects 1 (john) and 5 (bob) are men; 2 (mary) gets partial
           type credit; 3/4 score 1 for presence only *)
        let value oid seg =
          let row =
            List.find_opt
              (fun (r : Sim_table.row) -> r.objs = [ ("x", oid) ])
              (Sim_table.rows t)
          in
          match row with
          | Some r -> Sim_list.value_at r.list seg
          | None -> 0.
        in
        check (float 1e-9) "john at 1" 2. (value 1 1);
        check (float 1e-9) "john at 3" 0. (value 1 3);
        check (float 1e-9) "mary at 1" 1.25 (value 2 1);
        check (float 1e-9) "train at 3" 1.0625 (value 4 3);
        check (float 1e-9) "bob at 4" 2. (value 5 4));
    test_case "max similarity is the total weight" `Quick (fun () ->
        let f = parse "present(x) and type(x) = \"man\" and holds(x, y)" in
        let t = Retrieval.eval store ~level:2 f in
        check (float 0.) "max" 3. (Sim_table.max_sim t);
        check (float 0.) "max_similarity agrees" 3. (Retrieval.max_similarity f));
    test_case "score_at matches table rows everywhere" `Quick (fun () ->
        (* the strong table-correctness property: for every binding
           (including objects absent from the data) and every segment, the
           best matching row reproduces the direct score *)
        let f = parse "present(x) and (type(x) = \"man\" or false)" in
        (* or false is rejected; use a plain conjunction *)
        ignore f;
        let f = parse "present(x) and type(x) = \"man\" and holds(x, y)" in
        let t = Retrieval.eval store ~level:2 f in
        let row_value env seg =
          (* most specific matching row wins; fall back over padding *)
          List.fold_left
            (fun acc (r : Sim_table.row) ->
              let matches =
                List.for_all
                  (fun (v, o) ->
                    match List.assoc_opt v r.objs with
                    | Some o' -> o = o'
                    | None -> true)
                  env
                && List.for_all
                     (fun (v, o) -> List.mem (v, o) env)
                     r.objs
              in
              if matches then Float.max acc (Sim_list.value_at r.list seg)
              else acc)
            0. (Sim_table.rows t)
        in
        let oids = [ 1; 2; 3; 4; 5; 999 ] in
        List.iter
          (fun ox ->
            List.iter
              (fun oy ->
                for seg = 1 to 6 do
                  let env = [ ("x", ox); ("y", oy) ] in
                  let direct = Retrieval.score_at store ~level:2 ~id:seg ~env f in
                  let table = row_value env seg in
                  check (float 1e-9)
                    (Printf.sprintf "x=%d y=%d seg=%d" ox oy seg)
                    direct table
                done)
              oids)
          oids);
    test_case "inner exists takes the best local witness" `Quick (fun () ->
        let t =
          Retrieval.eval store ~level:2
            (parse "exists z . (present(z) and type(z) = \"woman\")")
        in
        let l = Sim_table.project_exists t in
        check (float 1e-9) "mary at shot 1" 2. (Sim_list.value_at l 1);
        (* shot 2: john is a man: presence 1 + woman~man 0.25 *)
        check (float 1e-9) "best man at shot 2" 1.25 (Sim_list.value_at l 2);
        check (float 1e-9) "empty shot" 0. (Sim_list.value_at l 6));
    test_case "attribute variables produce ranges" `Quick (fun () ->
        (* speed(x) > v: the train has speed 50 at shot 3 and 80 at shot 5 *)
        let t =
          Retrieval.eval store ~level:2 (parse "present(x) and speed(x) > v")
        in
        check (list string) "attr col" [ "v" ] (Sim_table.attr_cols t);
        let train_rows =
          List.filter
            (fun (r : Sim_table.row) -> r.objs = [ ("x", 4) ])
            (Sim_table.rows t)
        in
        check bool "several ranges" true (List.length train_rows >= 3);
        (* for v <= 49 both shots satisfy the comparison *)
        let value_for v seg =
          List.fold_left
            (fun acc (r : Sim_table.row) ->
              if Range.mem (Range.Vint v) (List.assoc "v" r.attrs) then
                Float.max acc (Sim_list.value_at r.list seg)
              else acc)
            0. train_rows
        in
        check (float 1e-9) "v=40 shot 3" 2. (value_for 40 3);
        check (float 1e-9) "v=40 shot 5" 2. (value_for 40 5);
        check (float 1e-9) "v=60 shot 3" 1. (value_for 60 3);
        check (float 1e-9) "v=60 shot 5" 2. (value_for 60 5);
        check (float 1e-9) "v=90 shot 5" 1. (value_for 90 5));
    test_case "freeze inside an atomic formula" `Quick (fun () ->
        (* [v <- speed(x)] v > 60 is non-temporal: compares within one
           segment *)
        let t =
          Retrieval.eval store ~level:2
            (parse "exists x . (present(x) and [v <- speed(x)] v > 60)")
        in
        let l = Sim_table.project_exists t in
        check (float 1e-9) "shot 5 fast train" 2. (Sim_list.value_at l 5);
        check (float 1e-9) "shot 3 slow train" 1. (Sim_list.value_at l 3));
    test_case "temporal operators are rejected" `Quick (fun () ->
        (try
           ignore (Retrieval.eval store ~level:2 (parse "eventually true"));
           fail "expected Unsupported"
         with Retrieval.Unsupported _ -> ());
        (try
           ignore (Retrieval.eval store ~level:2 (parse "not true"));
           fail "expected Unsupported"
         with Retrieval.Unsupported _ -> ()));
    test_case "weights scale the similarity values" `Quick (fun () ->
        let config =
          {
            Retrieval.default_config with
            weights = Weights.create [ ("attr:type", 3.) ];
          }
        in
        let t =
          Retrieval.eval ~config store ~level:2
            (parse "exists x . (present(x) and type(x) = \"train\")")
        in
        let l = Sim_table.project_exists t in
        check (float 0.) "max" 4. (Sim_list.max_sim l);
        check (float 1e-9) "shot 3" 4. (Sim_list.value_at l 3));
  ]

let suites =
  [
    ("picture.taxonomy", taxonomy_tests);
    ("picture.spatial", spatial_tests);
    ("picture.weights", weights_tests);
    ("picture.retrieval", retrieval_tests);
  ]
