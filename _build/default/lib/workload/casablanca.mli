(** The paper's §4.1 test case: "The Making of the Casablanca", a
    30-minute video cut-detected into 50 shots.

    The atomic similarity tables (Tables 1 and 2) are shipped verbatim —
    exactly as in the paper, where they are computed by the picture
    retrieval system and {e fed as input} to the video retrieval system.
    Running Query 1 over them must reproduce Tables 3 and 4 digit for
    digit.

    A meta-data reconstruction of the 50 shots is also provided so the
    full pipeline (picture system included) can be exercised end to end;
    its atomic values are our scorer's, not the original SCORE system's,
    so they differ numerically while agreeing on which shots match. *)

val shot_count : int
(** 50 *)

val moving_train : Simlist.Sim_list.t
(** Table 1: the [Moving-Train] predicate — shot 9, value 9.787. *)

val man_woman : Simlist.Sim_list.t
(** Table 2: the [Man-Woman] predicate — [1,4] 2.595; [6] 1.26; [8] 1.26;
    [10,44] 1.26; [47,49] 6.26. *)

val tables : (string * Simlist.Sim_table.t) list
(** [moving_train] and [man_woman], keyed for query use. *)

val context : unit -> Engine.Context.t
(** Store-less context over the 50 shots with the two tables. *)

val query1 : string
(** "Query 1": [man_woman and eventually moving_train]. *)

val expected_table3 : Simlist.Sim_list.t
(** The paper's Table 3: [eventually Moving-Train] = [1,9] at 9.787. *)

val expected_table4 : (Simlist.Interval.t * float) list
(** The paper's Table 4, ranked: (1-4, 12.382), (6, 11.047), (8, 11.047),
    (5, 9.787), (7, 9.787), (9, 9.787), (47-49, 6.26), (10-44, 1.26). *)

val store : unit -> Video_model.Store.t
(** The 50-shot meta-data reconstruction. *)

val store_query1 : string
(** Query 1 spelled against the reconstruction's meta-data (a
    man-and-woman shot eventually followed by a moving train). *)
