lib/workload/casablanca.ml: Engine Entity List Metadata Seg_meta Simlist Value Video_model
