lib/workload/rng.mli:
