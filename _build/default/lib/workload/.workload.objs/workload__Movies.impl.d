lib/workload/movies.ml: Bbox Entity Htl List Metadata Printf Relationship Rng Seg_meta Value Video_model
