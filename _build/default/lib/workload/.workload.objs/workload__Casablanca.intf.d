lib/workload/casablanca.mli: Engine Simlist Video_model
