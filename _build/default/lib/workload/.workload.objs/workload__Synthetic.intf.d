lib/workload/synthetic.mli: Engine Rng Simlist
