lib/workload/synthetic.ml: Engine Float List Rng Simlist
