lib/workload/gulf_war.ml: Entity Metadata Relationship Seg_meta Value Video_model
