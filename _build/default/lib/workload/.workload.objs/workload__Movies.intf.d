lib/workload/movies.mli: Htl Rng Video_model
