lib/workload/gulf_war.mli: Video_model
