(** Deterministic random source — every generator takes an explicit seed
    so that experiments and property tests are reproducible. *)

type t

val make : int -> t
val int : t -> int -> int
(** [int t bound] in [[0, bound)]. *)

val float : t -> float -> float
(** [float t bound] in [[0, bound)]. *)

val bool : t -> bool

val geometric : t -> mean:float -> int
(** Geometric variate with the given mean, at least 1. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val split : t -> t
(** An independent stream derived from the current state. *)
