module Sim_list = Simlist.Sim_list
module Interval = Simlist.Interval

let similarity_list rng ~n ?(selectivity = 0.1) ?(mean_run = 5.) ?(max = 10.)
    () =
  let mean_gap = mean_run *. (1. -. selectivity) /. Float.max 1e-9 selectivity in
  let entries = ref [] in
  (* start inside a gap or a run proportionally *)
  let pos = ref (1 + Rng.int rng (int_of_float (Float.max 1. mean_gap))) in
  while !pos <= n do
    let run = Rng.geometric rng ~mean:mean_run in
    let hi = min n (!pos + run - 1) in
    let value =
      let k = 1 + Rng.int rng 16 in
      float_of_int k *. max /. 16.
    in
    entries := (Interval.make !pos hi, value) :: !entries;
    let gap = Rng.geometric rng ~mean:(Float.max 1. mean_gap) in
    pos := hi + 1 + gap
  done;
  Sim_list.of_entries ~max (List.rev !entries)

let atomic_table rng ~n ?selectivity ?mean_run ?max () =
  Simlist.Sim_table.of_sim_list
    (similarity_list rng ~n ?selectivity ?mean_run ?max ())

let context_with_atoms ~seed ~n ?selectivity ?extents names =
  let rng = Rng.make seed in
  let tables =
    List.map (fun name -> (name, atomic_table rng ~n ?selectivity ())) names
  in
  Engine.Context.of_tables ~n ?extents tables
