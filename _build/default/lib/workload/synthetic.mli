(** Randomly generated similarity lists — the §4.2 workload ("we compared
    the performance of the two approaches on randomly generated data...
    approximately about one tenth of these shots satisfy the atomic
    predicates"). *)

val similarity_list :
  Rng.t ->
  n:int ->
  ?selectivity:float ->
  ?mean_run:float ->
  ?max:float ->
  unit ->
  Simlist.Sim_list.t
(** A random similarity list over ids [1..n]: runs of covered ids with
    geometric length (mean [mean_run], default 5) separated by geometric
    gaps sized so that the covered fraction is about [selectivity]
    (default 0.1); actual values are uniform in (0, max] (default max
    10), quantized to 1/16ths so coalescing can occur. *)

val atomic_table :
  Rng.t ->
  n:int ->
  ?selectivity:float ->
  ?mean_run:float ->
  ?max:float ->
  unit ->
  Simlist.Sim_table.t
(** {!similarity_list} wrapped as a closed one-row table. *)

val context_with_atoms :
  seed:int ->
  n:int ->
  ?selectivity:float ->
  ?extents:Simlist.Extent.t ->
  string list ->
  Engine.Context.t
(** A store-less context with one random atomic table per name — the
    benchmark setting of Tables 5 and 6. *)
