(** The paper's running §2.1 example: a Gulf-war video arranged over four
    levels (video / sub-plot / scene / shot) — bombing of positions, the
    ground war, the surrender — used by the extended-conjunctive examples
    and tests. *)

val video : unit -> Video_model.Video.t
val store : unit -> Video_model.Store.t

val queries : (string * string) list
(** Named showcase queries (name, HTL source), all supported by the
    direct engine at the shot level or via level operators. *)
