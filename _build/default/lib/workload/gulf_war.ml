open Metadata

(* universal object ids *)
let bomber = 1
let fighter = 2
let command_center = 3
let airfield = 4
let tank = 5
let soldier = 6
let flag = 7

let plane ~id ~height =
  Entity.make ~id ~otype:"airplane"
    ~attrs:[ ("height", Value.Int height) ]
    ()

let obj ~id ~otype = Entity.make ~id ~otype ()

let shot ?(objects = []) ?(relationships = []) ?(attrs = []) () =
  Video_model.Segment.leaf (Seg_meta.make ~objects ~relationships ~attrs ())

let scene ~name shots =
  Video_model.Segment.make
    ~meta:(Seg_meta.make ~attrs:[ ("name", Value.Str name) ] ())
    shots

let subplot ~name scenes =
  Video_model.Segment.make
    ~meta:(Seg_meta.make ~attrs:[ ("name", Value.Str name) ] ())
    scenes

let video () =
  let takeoff =
    scene ~name:"takeoff"
      [
        shot
          ~objects:[ plane ~id:bomber ~height:0; plane ~id:fighter ~height:0 ]
          ~relationships:[ Relationship.make "on_ground" [ bomber ] ]
          ();
        shot
          ~objects:[ plane ~id:bomber ~height:200; plane ~id:fighter ~height:350 ]
          ();
        shot ~objects:[ plane ~id:bomber ~height:800 ] ();
      ]
  in
  let strike =
    scene ~name:"strike"
      [
        shot
          ~objects:[ plane ~id:bomber ~height:900; obj ~id:command_center ~otype:"building" ]
          ();
        shot
          ~objects:[ plane ~id:bomber ~height:850; obj ~id:command_center ~otype:"building" ]
          ~relationships:[ Relationship.make "destroys" [ bomber; command_center ] ]
          ();
        shot
          ~objects:[ plane ~id:fighter ~height:700; obj ~id:airfield ~otype:"building" ]
          ~relationships:[ Relationship.make "destroys" [ fighter; airfield ] ]
          ();
      ]
  in
  let return_home =
    scene ~name:"return"
      [
        shot ~objects:[ plane ~id:bomber ~height:400 ] ();
        shot ~objects:[ plane ~id:bomber ~height:0 ] ();
      ]
  in
  let ground_war =
    subplot ~name:"ground war"
      [
        scene ~name:"advance"
          [
            shot ~objects:[ obj ~id:tank ~otype:"car"; obj ~id:soldier ~otype:"man" ] ();
            shot ~objects:[ obj ~id:tank ~otype:"car" ] ();
          ];
        scene ~name:"clash"
          [
            shot
              ~objects:[ obj ~id:tank ~otype:"car"; obj ~id:soldier ~otype:"man" ]
              ~relationships:[ Relationship.make "fires_at" [ tank; soldier ] ]
              ();
          ];
      ]
  in
  let surrender =
    subplot ~name:"surrender"
      [
        scene ~name:"white flag"
          [
            shot
              ~objects:[ obj ~id:soldier ~otype:"man"; obj ~id:flag ~otype:"thing" ]
              ~relationships:[ Relationship.make "holds" [ soldier; flag ] ]
              ();
            shot ~objects:[ obj ~id:soldier ~otype:"man" ] ();
          ];
      ]
  in
  Video_model.Video.create ~title:"Gulf war"
    ~level_names:[ "video"; "subplot"; "scene"; "shot" ]
    (Video_model.Segment.make
       ~meta:
         (Seg_meta.make
            ~attrs:
              [
                ("title", Value.Str "Gulf war");
                ("type", Value.Str "military operation");
              ]
            ())
       [
         subplot ~name:"bombing" [ takeoff; strike; return_home ];
         ground_war;
         surrender;
       ])

let store () = Video_model.Store.of_video (video ())

let queries =
  [
    ( "browse",
      (* browsing query: information about the top level only *)
      "seg.type = \"military operation\"" );
    ( "strike-pattern",
      (* the paper's formula (A) shape, asserted at the shot level:
         planes on the ground, then in the air until something is
         destroyed *)
      "at shot level ((exists x . on_ground(x)) and next ((exists x . \
       (present(x) and type(x) = \"airplane\" and height(x) > 0)) until \
       (exists x, y . destroys(x, y))))" );
    ( "climbing-plane",
      (* the paper's formula (C): a plane later seen strictly higher *)
      "at shot level (exists z . (present(z) and type(z) = \"airplane\") \
       and [h <- height(z)] eventually (present(z) and height(z) > h))" );
    ( "scene-names",
      "at scene level (seg.name = \"takeoff\" and eventually (seg.name = \
       \"strike\"))" );
  ]
