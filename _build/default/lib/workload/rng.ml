type t = Random.State.t

let make seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bd1e995 |]
let int t bound = Random.State.int t bound
let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

let geometric t ~mean =
  if mean <= 1. then 1
  else
    let p = 1. /. mean in
    let rec go k =
      if Random.State.float t 1. < p then k else go (k + 1)
    in
    go 1

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]
