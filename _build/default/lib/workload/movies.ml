open Metadata

let types = [ "man"; "woman"; "train"; "car"; "gun"; "horse"; "dog" ]
let names = [ "alpha"; "beta"; "gamma"; "delta" ]
let rel_names = [ "holds"; "fires_at"; "near" ]

let random_object rng ~id =
  let otype = Rng.pick rng types in
  let attrs =
    List.concat
      [
        (if Rng.bool rng then [ ("name", Value.Str (Rng.pick rng names)) ]
         else []);
        (if Rng.bool rng then [ ("speed", Value.Int (10 * (1 + Rng.int rng 9))) ]
         else []);
      ]
  in
  let bbox =
    if Rng.bool rng then
      let x0 = Rng.float rng 8. and y0 = Rng.float rng 8. in
      Some
        (Bbox.make ~x0 ~y0
           ~x1:(x0 +. 0.5 +. Rng.float rng 2.)
           ~y1:(y0 +. 0.5 +. Rng.float rng 2.))
    else None
  in
  Entity.make ~id ~otype ~attrs ?bbox ()

let random_meta rng ~object_pool =
  let count = Rng.int rng 4 in
  let ids = ref [] in
  for _ = 1 to count do
    let id = 1 + Rng.int rng object_pool in
    if not (List.mem id !ids) then ids := id :: !ids
  done;
  let objects = List.map (fun id -> random_object rng ~id) !ids in
  let relationships =
    match !ids with
    | a :: b :: _ when Rng.bool rng ->
        [ Relationship.make (Rng.pick rng rel_names) [ a; b ] ]
    | _ -> []
  in
  let attrs =
    if Rng.bool rng then
      [ ("mood", Value.Str (Rng.pick rng [ "calm"; "tense" ])) ]
    else []
  in
  Seg_meta.make ~objects ~relationships ~attrs ()

let level_names = [ "video"; "plot"; "scene"; "shot"; "frame" ]

let random_store rng ?(videos = 1) ?(levels = 2) ?(branching = 4)
    ?(object_pool = 6) () =
  if levels < 2 || levels > List.length level_names then
    invalid_arg "Movies.random_store: levels out of range";
  let rec build depth =
    if depth = levels then
      Video_model.Segment.leaf (random_meta rng ~object_pool)
    else
      let children =
        List.init (1 + Rng.int rng branching) (fun _ -> build (depth + 1))
      in
      Video_model.Segment.make ~meta:(random_meta rng ~object_pool) children
  in
  let names = List.filteri (fun i _ -> i < levels) level_names in
  let mk_video k =
    Video_model.Video.create
      ~title:(Printf.sprintf "movie-%d" k)
      ~level_names:names (build 1)
  in
  Video_model.Store.create (List.init videos mk_video)

(* --- random formulas ----------------------------------------------------- *)

let random_atom_closed rng =
  let open Htl.Ast in
  match Rng.int rng 5 with
  | 0 ->
      Exists
        ( "u",
          And
            ( Atom (Present "u"),
              Atom
                (Cmp
                   ( Eq,
                     Obj_attr ("type", "u"),
                     Const (Value.Str (Rng.pick rng types)) )) ) )
  | 1 -> Exists ("u", Exists ("v", Atom (Rel (Rng.pick rng rel_names, [ "u"; "v" ]))))
  | 2 ->
      Atom
        (Cmp
           (Eq, Seg_attr "mood", Const (Value.Str (Rng.pick rng [ "calm"; "tense" ]))))
  | 3 ->
      Exists
        ( "u",
          And
            ( Atom (Present "u"),
              Atom
                (Cmp
                   ( (if Rng.bool rng then Gt else Le),
                     Obj_attr ("speed", "u"),
                     Const (Value.Int (10 * (1 + Rng.int rng 9))) )) ) )
  | _ -> Atom True

let rec random_type1 rng ~depth =
  let open Htl.Ast in
  if depth <= 0 then random_atom_closed rng
  else
    let sub () = random_type1 rng ~depth:(depth - 1) in
    match Rng.int rng 5 with
    | 0 -> And (sub (), sub ())
    | 1 -> Until (sub (), sub ())
    | 2 -> Next (sub ())
    | 3 -> Eventually (sub ())
    | _ -> random_atom_closed rng

let random_type1_formula rng ~depth = random_type1 rng ~depth

let random_atom_open rng var =
  let open Htl.Ast in
  match Rng.int rng 3 with
  | 0 ->
      And
        ( Atom (Present var),
          Atom
            (Cmp
               ( Eq,
                 Obj_attr ("type", var),
                 Const (Value.Str (Rng.pick rng types)) )) )
  | 1 -> Atom (Present var)
  | _ ->
      And
        ( Atom (Present var),
          Atom
            (Cmp
               ( Gt,
                 Obj_attr ("speed", var),
                 Const (Value.Int (10 * (1 + Rng.int rng 9))) )) )

let rec random_type2_body rng var ~depth =
  let open Htl.Ast in
  if depth <= 0 then random_atom_open rng var
  else
    let sub () = random_type2_body rng var ~depth:(depth - 1) in
    match Rng.int rng 5 with
    | 0 -> And (sub (), sub ())
    | 1 -> Until (sub (), sub ())
    | 2 -> Next (sub ())
    | 3 -> Eventually (sub ())
    | _ -> random_atom_open rng var

let random_type2_formula rng ~depth =
  Htl.Ast.Exists ("x", random_type2_body rng "x" ~depth)

(* conjunctive: freeze the speed of the quantified object and compare it
   later in time *)
let random_conjunctive_formula rng ~depth =
  let open Htl.Ast in
  let var = "x" and attr_var = "v" in
  let freeze_atom () =
    let cmp = Rng.pick rng [ Gt; Ge; Lt; Le; Eq ] in
    if Rng.bool rng then Atom (Cmp (cmp, Obj_attr ("speed", var), Attr_var attr_var))
    else Atom (Cmp (cmp, Attr_var attr_var, Obj_attr ("speed", var)))
  in
  let unit () =
    if Rng.bool rng then random_atom_open rng var else freeze_atom ()
  in
  let rec body depth =
    if depth <= 0 then unit ()
    else
      let sub () = body (depth - 1) in
      match Rng.int rng 5 with
      | 0 -> And (sub (), sub ())
      | 1 -> Until (sub (), sub ())
      | 2 -> Next (sub ())
      | 3 -> Eventually (sub ())
      | _ -> unit ()
  in
  Exists
    ( var,
      And
        ( Atom (Present var),
          Freeze { var = attr_var; attr = "speed"; obj = Some var; body = body depth }
        ) )

(* extended conjunctive: level operators over type (1)/(2) bodies *)
let random_extended_formula rng ~depth ~max_level =
  let open Htl.Ast in
  let rec from_level current depth =
    if current >= max_level || (depth > 0 && Rng.int rng 3 = 0) then
      (* a plain temporal body at this level *)
      if Rng.bool rng then random_type1 rng ~depth:(min depth 2)
      else Exists ("x", random_type2_body rng "x" ~depth:(min depth 2))
    else
      let target = current + 1 + Rng.int rng (max_level - current) in
      let sel =
        if target = current + 1 && Rng.bool rng then Next_level
        else if Rng.bool rng then Level_index target
        else Level_name (List.nth level_names (target - 1))
      in
      let inner = from_level target (depth - 1) in
      (* the level operator may sit under temporal operators *)
      match Rng.int rng 3 with
      | 0 -> At_level (sel, inner)
      | 1 -> Eventually (At_level (sel, inner))
      | _ -> And (At_level (sel, inner), random_atom_closed rng)
  in
  from_level 1 depth
