module Sim_list = Simlist.Sim_list
module Interval = Simlist.Interval

let shot_count = 50
let iv = Interval.make

let moving_train =
  Sim_list.of_entries ~max:9.787 [ (iv 9 9, 9.787) ]

let man_woman =
  Sim_list.of_entries ~max:6.26
    [
      (iv 1 4, 2.595);
      (iv 6 6, 1.26);
      (iv 8 8, 1.26);
      (iv 10 44, 1.26);
      (iv 47 49, 6.26);
    ]

let tables =
  [
    ("moving_train", Simlist.Sim_table.of_sim_list moving_train);
    ("man_woman", Simlist.Sim_table.of_sim_list man_woman);
  ]

let context () = Engine.Context.of_tables ~n:shot_count tables
let query1 = "man_woman and eventually moving_train"

let expected_table3 =
  Sim_list.of_entries ~max:9.787 [ (iv 1 9, 9.787) ]

let expected_table4 =
  [
    (iv 1 4, 12.382);
    (iv 6 6, 11.047);
    (iv 8 8, 11.047);
    (iv 5 5, 9.787);
    (iv 7 7, 9.787);
    (iv 9 9, 9.787);
    (iv 47 49, 6.26);
    (iv 10 44, 1.26);
  ]

(* --- meta-data reconstruction ------------------------------------------ *)

open Metadata

(* universal object ids of the reconstruction *)
let rick = 1 (* man *)
let ilsa = 2 (* woman *)
let sam = 3 (* man *)
let train = 4
let narrator = 5 (* man *)

let man ~id ~name = Entity.make ~id ~otype:"man" ~attrs:[ ("name", Value.Str name) ] ()
let woman ~id ~name = Entity.make ~id ~otype:"woman" ~attrs:[ ("name", Value.Str name) ] ()

let shot objects =
  Seg_meta.make ~objects ()

let store () =
  (* shots 1-4: a man and a woman; 5: empty studio; 6, 8: two men;
     7: empty; 9: the moving train; 10-44: interview footage, two men;
     45-46: stills; 47-49: the man and the woman together (exact match);
     50: credits *)
  let shots =
    List.init shot_count (fun i ->
        let id = i + 1 in
        if id <= 4 then shot [ man ~id:rick ~name:"Rick"; woman ~id:ilsa ~name:"Ilsa" ]
        else if id = 6 || id = 8 then
          shot [ man ~id:rick ~name:"Rick"; man ~id:sam ~name:"Sam" ]
        else if id = 9 then
          shot
            [
              Entity.make ~id:train ~otype:"train"
                ~attrs:[ ("moving", Value.Bool true) ]
                ();
            ]
        else if id >= 10 && id <= 44 then
          shot [ man ~id:narrator ~name:"Narrator"; man ~id:sam ~name:"Sam" ]
        else if id >= 47 && id <= 49 then
          shot [ man ~id:rick ~name:"Rick"; woman ~id:ilsa ~name:"Ilsa" ]
        else shot [])
  in
  Video_model.Store.of_video
    (Video_model.Video.two_level ~title:"The Making of the Casablanca" shots)

let store_query1 =
  "(exists x, y . present(x) and type(x) = \"man\" and present(y) and \
   type(y) = \"woman\") and eventually (exists z . present(z) and type(z) \
   = \"train\" and moving(z) = true)"
