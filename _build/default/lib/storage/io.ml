let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_store path store =
  write_file path
    (Format.asprintf "; HTL video store@.%a@." Sexp.pp
       (Codec.store_to_sexp store))

let load_store path = Codec.store_of_sexp (Sexp.of_string (read_file path))

let save_tables path tables =
  write_file path
    (Format.asprintf "; HTL atomic similarity tables@.%a@." Sexp.pp
       (Codec.tables_to_sexp tables))

let load_tables path = Codec.tables_of_sexp (Sexp.of_string (read_file path))
