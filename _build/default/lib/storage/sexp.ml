type t = Atom of string | List of t list

exception Parse_error of string * int
exception Conv_error of string

let conv_fail fmt = Format.kasprintf (fun s -> raise (Conv_error s)) fmt

(* --- printing ----------------------------------------------------------- *)

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> true
         | _ -> false)
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_to_string s = if needs_quoting s then quote s else s

let rec to_string = function
  | Atom s -> atom_to_string s
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

let rec pp ppf = function
  | Atom s -> Format.pp_print_string ppf (atom_to_string s)
  | List items ->
      Format.fprintf ppf "(@[<hv>%a@])"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        items

(* --- parsing ------------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let fail c fmt =
  Format.kasprintf (fun s -> raise (Parse_error (s, c.pos))) fmt

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      skip_ws c
  | Some ';' ->
      (* comment to end of line *)
      while peek c <> None && peek c <> Some '\n' do
        c.pos <- c.pos + 1
      done;
      skip_ws c
  | _ -> ()

let parse_quoted c =
  c.pos <- c.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' ->
        c.pos <- c.pos + 1;
        Atom (Buffer.contents buf)
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some '"' ->
            Buffer.add_char buf '"';
            c.pos <- c.pos + 1;
            go ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            c.pos <- c.pos + 1;
            go ()
        | Some 'n' ->
            Buffer.add_char buf '\n';
            c.pos <- c.pos + 1;
            go ()
        | Some ch -> fail c "bad escape '\\%c'" ch
        | None -> fail c "unterminated string")
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ()

let parse_bare c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
    | Some _ ->
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  if c.pos = start then fail c "expected an atom";
  Atom (String.sub c.src start (c.pos - start))

let rec parse_one c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '(' ->
      c.pos <- c.pos + 1;
      let rec items acc =
        skip_ws c;
        match peek c with
        | Some ')' ->
            c.pos <- c.pos + 1;
            List (List.rev acc)
        | None -> fail c "unclosed '('"
        | Some _ -> items (parse_one c :: acc)
      in
      items []
  | Some ')' -> fail c "unexpected ')'"
  | Some '"' -> parse_quoted c
  | Some _ -> parse_bare c

let of_string src =
  let c = { src; pos = 0 } in
  let v = parse_one c in
  skip_ws c;
  (match peek c with
  | None -> ()
  | Some _ -> fail c "trailing input");
  v

let many_of_string src =
  let c = { src; pos = 0 } in
  let rec go acc =
    skip_ws c;
    match peek c with
    | None -> List.rev acc
    | Some _ -> go (parse_one c :: acc)
  in
  go []

(* --- helpers --------------------------------------------------------------- *)

let atom s = Atom s
let int n = Atom (string_of_int n)
let float f = Atom (Printf.sprintf "%.17g" f)
let list items = List items
let field name args = List (Atom name :: args)

let as_atom = function
  | Atom s -> s
  | List _ -> conv_fail "expected an atom, got a list"

let as_int t =
  match int_of_string_opt (as_atom t) with
  | Some n -> n
  | None -> conv_fail "expected an integer, got %s" (to_string t)

let as_float t =
  match float_of_string_opt (as_atom t) with
  | Some f -> f
  | None -> conv_fail "expected a number, got %s" (to_string t)

let as_list = function
  | List items -> items
  | Atom s -> conv_fail "expected a list, got atom %s" s

let assoc_opt key items =
  List.find_map
    (function
      | List (Atom k :: args) when String.equal k key -> Some args
      | _ -> None)
    items

let assoc key items =
  match assoc_opt key items with
  | Some args -> args
  | None -> conv_fail "missing field %S" key
