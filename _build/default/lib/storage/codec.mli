(** S-expression codecs for the meta-data database and for similarity
    tables (so atomic tables can be exchanged with an external picture
    retrieval system, as the paper does).

    All decoders raise {!Sexp.Conv_error} on malformed input. *)

val value_to_sexp : Metadata.Value.t -> Sexp.t
val value_of_sexp : Sexp.t -> Metadata.Value.t
val entity_to_sexp : Metadata.Entity.t -> Sexp.t
val entity_of_sexp : Sexp.t -> Metadata.Entity.t
val seg_meta_to_sexp : Metadata.Seg_meta.t -> Sexp.t
val seg_meta_of_sexp : Sexp.t -> Metadata.Seg_meta.t
val video_to_sexp : Video_model.Video.t -> Sexp.t
val video_of_sexp : Sexp.t -> Video_model.Video.t
val store_to_sexp : Video_model.Store.t -> Sexp.t
val store_of_sexp : Sexp.t -> Video_model.Store.t
val sim_list_to_sexp : Simlist.Sim_list.t -> Sexp.t
val sim_list_of_sexp : Sexp.t -> Simlist.Sim_list.t
val sim_table_to_sexp : Simlist.Sim_table.t -> Sexp.t
val sim_table_of_sexp : Sexp.t -> Simlist.Sim_table.t

val tables_to_sexp : (string * Simlist.Sim_table.t) list -> Sexp.t
(** A named bundle of atomic similarity tables. *)

val tables_of_sexp : Sexp.t -> (string * Simlist.Sim_table.t) list
