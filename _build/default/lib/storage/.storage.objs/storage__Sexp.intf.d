lib/storage/sexp.mli: Format
