lib/storage/codec.mli: Metadata Sexp Simlist Video_model
