lib/storage/sexp.ml: Buffer Format List Printf String
