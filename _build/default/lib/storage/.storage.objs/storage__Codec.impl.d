lib/storage/codec.ml: Array Format List Metadata Sexp Simlist Video_model
