lib/storage/io.ml: Codec Format Fun Sexp
