lib/storage/io.mli: Simlist Video_model
