(** Reading and writing the meta-data database and similarity-table
    bundles on disk. *)

val save_store : string -> Video_model.Store.t -> unit
val load_store : string -> Video_model.Store.t
(** @raise Sexp.Parse_error / Sexp.Conv_error / Sys_error. *)

val save_tables : string -> (string * Simlist.Sim_table.t) list -> unit
val load_tables : string -> (string * Simlist.Sim_table.t) list
