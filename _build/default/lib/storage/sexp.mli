(** Minimal S-expressions: the on-disk syntax of the meta-data database
    (the paper assumes "another database that contains the meta-data
    describing the contents of the various videos" — this is ours). *)

type t = Atom of string | List of t list

exception Parse_error of string * int
(** message, 0-based offset *)

val to_string : t -> string
(** Canonical printing; atoms are quoted when needed. *)

val pp : Format.formatter -> t -> unit
(** Indented human-friendly printing. *)

val of_string : string -> t
(** Parse exactly one S-expression. @raise Parse_error. *)

val many_of_string : string -> t list
(** Parse a sequence of S-expressions. @raise Parse_error. *)

(** Construction and destruction helpers *)

val atom : string -> t
val int : int -> t
val float : float -> t
val list : t list -> t
val field : string -> t list -> t
(** [field "name" args] is [List (Atom "name" :: args)]. *)

exception Conv_error of string

val as_atom : t -> string
val as_int : t -> int
val as_float : t -> float
val as_list : t -> t list

val assoc : string -> t list -> t list
(** Find [List (Atom key :: args)] among the given sexps and return
    [args]. @raise Conv_error when missing. *)

val assoc_opt : string -> t list -> t list option
