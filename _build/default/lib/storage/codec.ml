open Sexp
module V = Metadata.Value

let conv_fail fmt = Format.kasprintf (fun s -> raise (Conv_error s)) fmt

(* --- values ---------------------------------------------------------------- *)

let value_to_sexp = function
  | V.Int n -> field "int" [ int n ]
  | V.Float f -> field "float" [ float f ]
  | V.Str s -> field "str" [ atom s ]
  | V.Bool b -> field "bool" [ atom (string_of_bool b) ]

let value_of_sexp s =
  match s with
  | List [ Atom "int"; n ] -> V.Int (as_int n)
  | List [ Atom "float"; f ] -> V.Float (as_float f)
  | List [ Atom "str"; a ] -> V.Str (as_atom a)
  | List [ Atom "bool"; b ] -> (
      match as_atom b with
      | "true" -> V.Bool true
      | "false" -> V.Bool false
      | other -> conv_fail "bad boolean %S" other)
  | other -> conv_fail "bad value %s" (to_string other)

let attrs_to_sexp attrs =
  list
    (List.map (fun (k, v) -> list [ atom k; value_to_sexp v ]) attrs)

let attrs_of_sexp s =
  List.map
    (fun item ->
      match as_list item with
      | [ k; v ] -> (as_atom k, value_of_sexp v)
      | _ -> conv_fail "bad attribute %s" (to_string item))
    (as_list s)

(* --- entities ---------------------------------------------------------------- *)

let bbox_to_sexp (b : Metadata.Bbox.t) =
  field "bbox" [ float b.x0; float b.y0; float b.x1; float b.y1 ]

let bbox_of_sexp = function
  | List [ Atom "bbox"; x0; y0; x1; y1 ] ->
      Metadata.Bbox.make ~x0:(as_float x0) ~y0:(as_float y0) ~x1:(as_float x1)
        ~y1:(as_float y1)
  | other -> conv_fail "bad bbox %s" (to_string other)

let entity_to_sexp (o : Metadata.Entity.t) =
  field "object"
    ([ field "id" [ int o.id ]; field "type" [ atom o.otype ];
       field "attrs" [ attrs_to_sexp o.attrs ] ]
    @ match o.bbox with None -> [] | Some b -> [ bbox_to_sexp b ])

let entity_of_sexp s =
  match s with
  | List (Atom "object" :: fields) ->
      let id = as_int (List.hd (assoc "id" fields)) in
      let otype = as_atom (List.hd (assoc "type" fields)) in
      let attrs = attrs_of_sexp (List.hd (assoc "attrs" fields)) in
      let bbox =
        match assoc_opt "bbox" fields with
        | Some args -> Some (bbox_of_sexp (List (Atom "bbox" :: args)))
        | None -> None
      in
      Metadata.Entity.make ~id ~otype ~attrs ?bbox ()
  | other -> conv_fail "bad object %s" (to_string other)

let relationship_to_sexp (r : Metadata.Relationship.t) =
  field "rel" (atom r.name :: List.map int r.args)

let relationship_of_sexp = function
  | List (Atom "rel" :: name :: args) ->
      Metadata.Relationship.make (as_atom name) (List.map as_int args)
  | other -> conv_fail "bad relationship %s" (to_string other)

let seg_meta_to_sexp (m : Metadata.Seg_meta.t) =
  field "meta"
    [
      field "objects" (List.map entity_to_sexp m.objects);
      field "relationships" (List.map relationship_to_sexp m.relationships);
      field "attrs" [ attrs_to_sexp m.attrs ];
    ]

let seg_meta_of_sexp = function
  | List (Atom "meta" :: fields) ->
      Metadata.Seg_meta.make
        ~objects:(List.map entity_of_sexp (assoc "objects" fields))
        ~relationships:
          (List.map relationship_of_sexp (assoc "relationships" fields))
        ~attrs:(attrs_of_sexp (List.hd (assoc "attrs" fields)))
        ()
  | other -> conv_fail "bad meta %s" (to_string other)

(* --- segments / videos / stores ------------------------------------------------ *)

let rec segment_to_sexp (s : Video_model.Segment.t) =
  field "segment"
    [
      seg_meta_to_sexp s.meta;
      field "children" (List.map segment_to_sexp s.children);
    ]

let rec segment_of_sexp = function
  | List [ Atom "segment"; meta; List (Atom "children" :: children) ] ->
      Video_model.Segment.make ~meta:(seg_meta_of_sexp meta)
        (List.map segment_of_sexp children)
  | other -> conv_fail "bad segment %s" (to_string other)

let video_to_sexp (v : Video_model.Video.t) =
  field "video"
    [
      field "title" [ atom v.title ];
      field "levels" (List.map atom (Array.to_list v.level_names));
      segment_to_sexp v.root;
    ]

let video_of_sexp = function
  | List (Atom "video" :: fields) ->
      let title = as_atom (List.hd (assoc "title" fields)) in
      let level_names = List.map as_atom (assoc "levels" fields) in
      let root =
        match
          List.find_opt
            (function List (Atom "segment" :: _) -> true | _ -> false)
            fields
        with
        | Some s -> segment_of_sexp s
        | None -> conv_fail "video without a root segment"
      in
      Video_model.Video.create ~title ~level_names root
  | other -> conv_fail "bad video %s" (to_string other)

let store_to_sexp store =
  field "store" (List.map video_to_sexp (Video_model.Store.videos store))

let store_of_sexp = function
  | List (Atom "store" :: videos) ->
      Video_model.Store.create (List.map video_of_sexp videos)
  | other -> conv_fail "bad store %s" (to_string other)

(* --- similarity lists and tables ------------------------------------------------ *)

let sim_list_to_sexp l =
  field "simlist"
    (field "max" [ float (Simlist.Sim_list.max_sim l) ]
    :: List.map
         (fun (iv, v) ->
           list
             [
               int (Simlist.Interval.lo iv);
               int (Simlist.Interval.hi iv);
               float v;
             ])
         (Simlist.Sim_list.entries l))

let sim_list_of_sexp = function
  | List (Atom "simlist" :: List [ Atom "max"; m ] :: entries) ->
      Simlist.Sim_list.of_entries ~max:(as_float m)
        (List.map
           (fun e ->
             match as_list e with
             | [ lo; hi; v ] ->
                 (Simlist.Interval.make (as_int lo) (as_int hi), as_float v)
             | _ -> conv_fail "bad simlist entry %s" (to_string e))
           entries)
  | other -> conv_fail "bad simlist %s" (to_string other)

let range_to_sexp = function
  | Simlist.Range.Ints { lo; hi } ->
      let bound = function None -> atom "inf" | Some n -> int n in
      field "ints" [ bound lo; bound hi ]
  | Simlist.Range.Str None -> field "str-any" []
  | Simlist.Range.Str (Some s) -> field "str" [ atom s ]

let range_of_sexp s =
  let bound t =
    match as_atom t with "inf" -> None | _ -> Some (as_int t)
  in
  match s with
  | List [ Atom "ints"; lo; hi ] ->
      Simlist.Range.Ints { lo = bound lo; hi = bound hi }
  | List [ Atom "str-any" ] -> Simlist.Range.Str None
  | List [ Atom "str"; v ] -> Simlist.Range.Str (Some (as_atom v))
  | other -> conv_fail "bad range %s" (to_string other)

let row_to_sexp (r : Simlist.Sim_table.row) =
  field "row"
    [
      field "objs" (List.map (fun (x, o) -> list [ atom x; int o ]) r.objs);
      field "ranges"
        (List.map (fun (y, rg) -> list [ atom y; range_to_sexp rg ]) r.attrs);
      sim_list_to_sexp r.list;
    ]

let row_of_sexp = function
  | List [ Atom "row"; List (Atom "objs" :: objs);
           List (Atom "ranges" :: ranges); l ] ->
      {
        Simlist.Sim_table.objs =
          List.map
            (fun o ->
              match as_list o with
              | [ x; id ] -> (as_atom x, as_int id)
              | _ -> conv_fail "bad binding %s" (to_string o))
            objs;
        attrs =
          List.map
            (fun r ->
              match as_list r with
              | [ y; rg ] -> (as_atom y, range_of_sexp rg)
              | _ -> conv_fail "bad range binding %s" (to_string r))
            ranges;
        list = sim_list_of_sexp l;
      }
  | other -> conv_fail "bad row %s" (to_string other)

let sim_table_to_sexp t =
  field "simtable"
    [
      field "objcols" (List.map atom (Simlist.Sim_table.obj_cols t));
      field "attrcols" (List.map atom (Simlist.Sim_table.attr_cols t));
      field "max" [ float (Simlist.Sim_table.max_sim t) ];
      field "rows" (List.map row_to_sexp (Simlist.Sim_table.rows t));
    ]

let sim_table_of_sexp = function
  | List (Atom "simtable" :: fields) ->
      Simlist.Sim_table.create
        ~obj_cols:(List.map as_atom (assoc "objcols" fields))
        ~attr_cols:(List.map as_atom (assoc "attrcols" fields))
        ~max:(as_float (List.hd (assoc "max" fields)))
        (List.map row_of_sexp (assoc "rows" fields))
  | other -> conv_fail "bad simtable %s" (to_string other)

let tables_to_sexp tables =
  field "tables"
    (List.map
       (fun (name, t) -> list [ atom name; sim_table_to_sexp t ])
       tables)

let tables_of_sexp = function
  | List (Atom "tables" :: items) ->
      List.map
        (fun item ->
          match as_list item with
          | [ name; t ] -> (as_atom name, sim_table_of_sexp t)
          | _ -> conv_fail "bad table binding %s" (to_string item))
        items
  | other -> conv_fail "bad tables bundle %s" (to_string other)
