(** The video database: several videos sharing one level structure,
    flattened into per-level arrays with global 1-based segment ids.

    Global numbering follows temporal order video by video, so the
    descendants of any segment occupy a contiguous id range at every lower
    level — that range is what temporal operators scope over (a {e proper
    sequence}, §2.3), and it is exposed as {!Simlist.Extent} values. *)

type node = {
  video : int;  (** 0-based index into {!videos} *)
  level : int;  (** 1-based level, root = 1 *)
  id : int;  (** global id within the level *)
  parent : int option;  (** global id at [level - 1] *)
  children_span : Simlist.Interval.t option;
      (** global ids of the children at [level + 1] *)
  meta : Metadata.Seg_meta.t;
}

type t

val create : Video.t list -> t
(** @raise Invalid_argument when the list is empty or the videos disagree
    on level names. *)

val of_video : Video.t -> t

val videos : t -> Video.t list
val levels : t -> int
val level_name : t -> int -> string
val level_index : t -> string -> int option

val count_at : t -> level:int -> int
(** Total number of segments at a level, across all videos. *)

val node : t -> level:int -> id:int -> node
(** @raise Invalid_argument when out of range. *)

val meta : t -> level:int -> id:int -> Metadata.Seg_meta.t

val nodes_at : t -> level:int -> node array

val extents_at : t -> level:int -> Simlist.Extent.t
(** The proper-sequence partition of a level when a query ranges over
    whole videos: one extent per video. *)

val descendants_span :
  t -> level:int -> id:int -> target:int -> Simlist.Interval.t option
(** Global-id span of the descendants of segment [(level, id)] at level
    [target]; [None] when [target <= level] or the segment has no
    descendants there. *)

val video_span : t -> video:int -> level:int -> Simlist.Interval.t
(** Global-id span of one video's segments at a level. *)

val locate : t -> level:int -> id:int -> int * string * int
(** Map a global segment id back to the paper's (video, segment) pair:
    (0-based video index, video title, 1-based position within that
    video's sequence at the level). *)

val all_object_ids : t -> int list
(** Every universal object id mentioned anywhere in the store (the domain
    of existential quantification), sorted. *)
