lib/video/video.mli: Metadata Segment
