lib/video/video.ml: Array List Metadata Printf Segment String
