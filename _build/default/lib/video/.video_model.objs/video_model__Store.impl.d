lib/video/store.ml: Array Hashtbl List Metadata Printf Segment Simlist Video
