lib/video/store.mli: Metadata Simlist Video
