lib/video/segment.mli: Metadata
