lib/video/segment.ml: List Metadata Option
