(** Segment trees: the hierarchical decomposition of one video
    (video → sub-plots → scenes → shots → frames, §2.1).  A segment is any
    node; its children are its decomposition at the next level, in
    temporal order. *)

type t = { meta : Metadata.Seg_meta.t; children : t list }

val make : ?meta:Metadata.Seg_meta.t -> t list -> t
val leaf : Metadata.Seg_meta.t -> t

val depth : t -> int
(** Length of the longest root-to-leaf path ([1] for a leaf). *)

val uniform_depth : t -> int option
(** [Some d] when every leaf lies at the same depth [d] — the paper's
    model requires this. *)

val count_at : t -> int -> int
(** Number of descendants at a given 1-based level (the node itself is
    level 1). *)
