type t = { meta : Metadata.Seg_meta.t; children : t list }

let make ?(meta = Metadata.Seg_meta.empty) children = { meta; children }
let leaf meta = { meta; children = [] }

let rec depth t =
  match t.children with
  | [] -> 1
  | children -> 1 + List.fold_left (fun d c -> max d (depth c)) 0 children

let uniform_depth t =
  let rec go t =
    match t.children with
    | [] -> Some 1
    | first :: rest ->
        Option.bind (go first) (fun d ->
            if List.for_all (fun c -> go c = Some d) rest then Some (d + 1)
            else None)
  in
  go t

let rec count_at t level =
  if level <= 0 then invalid_arg "Segment.count_at: level must be positive";
  if level = 1 then 1
  else List.fold_left (fun acc c -> acc + count_at c (level - 1)) 0 t.children
