(** Similarity tables (§3.2–3.3).

    A similarity table represents the similarity of a formula with free
    variables: each row carries an evaluation — object variables bound to
    object ids, attribute variables constrained to {!Range.t}s — and the
    similarity list of the formula under that evaluation.

    Rows bind a {e subset} of the table's columns: a variable absent from
    a row is unconstrained (it arose from padding an unmatched row in an
    outer join, and the row's list is valid for every value of that
    variable).  The paper uses plain natural joins; we additionally keep
    unmatched rows padded with the other side's empty list, which is what
    the partial-match semantics of §2.5 require (a conjunct with zero
    similarity still leaves the other conjunct's similarity standing) and
    is sound for the final [exists]-projection because all combiners are
    pointwise monotone. *)

type row = {
  objs : (string * int) list;  (** bound object variables, sorted *)
  attrs : (string * Range.t) list;  (** constrained attribute variables *)
  list : Sim_list.t;
}

type t

val create :
  obj_cols:string list ->
  attr_cols:string list ->
  max:float ->
  row list ->
  t
(** @raise Invalid_argument if a row binds a variable outside the declared
    columns, binds them unsorted, or its list's max differs from [max]. *)

val of_sim_list : Sim_list.t -> t
(** Closed-formula table: no columns, one row. *)

val obj_cols : t -> string list
val attr_cols : t -> string list
val max_sim : t -> float
val rows : t -> row list
val row_count : t -> int

val join :
  combine:(Sim_list.t -> Sim_list.t -> Sim_list.t) ->
  t ->
  t ->
  t
(** Natural join: rows whose shared bound object variables agree and whose
    shared attribute ranges intersect are combined ([combine] is the
    conjunction or until merge — it also determines the result max);
    unmatched rows are padded with the other side's empty list.
    Hash join on the shared object columns when every row binds them all,
    else nested-loop. *)

val project_exists : t -> Sim_list.t
(** [exists x1...xn f]: the pointwise maximum over all evaluations
    ({!Sim_list.merge_max} over the rows). *)

val project_obj_var : t -> string -> t
(** [exists x f] with other variables remaining free: drop the column,
    max-merging rows that become identical. *)

val freeze_join : t -> var:string -> Value_table.t -> t
(** [[y <- q] f] (§3.3): joins the table with the value table of [q] —
    rows agree on shared object variables and the value of [q] lies in the
    row's range for [var]; the similarity list is restricted to the spans
    where [q] takes that value; the [var] column disappears. *)

val filter_rows : (row -> bool) -> t -> t

val pp : Format.formatter -> t -> unit
