(** Similarity lists (§3.1 of the paper).

    A similarity list records, for one formula, the similarity value of
    every video segment: a sorted list of disjoint entries
    [([beg, end], act)] plus a single maximum value [max] shared by all
    entries (the paper notes that [max] depends only on the formula).
    Ids absent from every entry have actual similarity 0 — only non-zero
    ids are stored.

    Canonical form (maintained by every operation): entries sorted by
    interval, pairwise disjoint, actual values in [(0, max]], and no two
    adjacent intervals carrying the same value. *)

type t

type entry = Interval.t * float

val empty : max:float -> t
(** No segment has non-zero similarity. *)

val of_entries : max:float -> entry list -> t
(** Builds a canonical list: sorts, drops non-positive values, coalesces
    adjacent equal-valued intervals.
    @raise Invalid_argument if intervals overlap, if an actual value
    exceeds [max] (beyond float tolerance), or if [max < 0]. *)

val entries : t -> entry list
val max_sim : t -> float

val length : t -> int
(** Number of entries (the paper's [length(L)]). *)

val is_empty : t -> bool

val covered : t -> int
(** Total number of ids with non-zero similarity. *)

val value_at : t -> int -> float
(** Actual similarity at an id (0 when absent). *)

val sim_at : t -> int -> Sim.t

val fraction_at : t -> int -> float

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {1 The paper's merge algorithms} *)

val conjunction : t -> t -> t
(** [f = g /\ h] (§3.1): modified merge of the two sorted lists; where
    both cover an id the actual values add; where only one covers it the
    value is kept (partial satisfaction).  Result max is the sum of the
    input maxima.  O(|g| + |h|). *)

(** Alternative conjunction semantics — §5 lists "other similarity
    functions, other than the fractional similarity function" as future
    work; these are two standard candidates.  All three share the result
    maximum [m1 + m2] so the until-threshold machinery is unaffected. *)
type conj_mode =
  | Weighted_sum  (** the paper's rule: [a1 + a2] *)
  | Min_fraction  (** fuzzy AND: fraction is [min (f1, f2)] *)
  | Product_fraction  (** probabilistic AND: fraction is [f1 *. f2] *)

val conjunction_mode : conj_mode -> t -> t -> t
(** [conjunction_mode Weighted_sum] = {!conjunction}. *)

val conjunction_many : t list -> t
(** Left fold of {!conjunction}.
    @raise Invalid_argument on the empty list. *)

val next_shift : extents:Extent.t -> t -> t
(** [f = next g]: entry intervals shift left by one, clipped so that no
    id reads its successor across an extent boundary; the last id of each
    extent gets similarity 0.  O(|g|). *)

val until_merge : ?threshold:float -> extents:Extent.t -> t -> t -> t
(** [until_merge ~extents g h] is [f = g until h] (§3.1): g entries whose fractional similarity is
    below [threshold] (default 0.5) are discarded, the rest coalesce into
    corridors; inside a corridor [[b,e]] the value at [i] is the maximum
    actual h value at any id in [[i, e+1]] (clipped to the extent); ids
    outside every corridor keep the h value at the id itself (the until
    semantics allow [u'' = u]).  Result max is [max_sim h].
    O(|g| + |h|) per extent. *)

val eventually : extents:Extent.t -> t -> t
(** [f = eventually g = true until g]: per-extent suffix maximum.
    O(|g|). *)

val merge_max : t list -> t
(** Pointwise maximum of m lists sharing one [max] — the final step of
    the type (2) algorithm (m-way merge).  Divide-and-conquer,
    O(l log m) where l is the total entry count.
    @raise Invalid_argument on the empty list or differing maxima. *)

val merge_max_pairwise : t list -> t
(** Same result via an O(l·m) left fold — kept for the ablation bench. *)

val restrict : t -> Interval.t list -> t
(** Keep only ids inside the given sorted disjoint intervals (used by the
    freeze-quantifier join, §3.3). *)

val scale_max : t -> max:float -> t
(** Re-declare the maximum (e.g. after an existential projection changed
    the formula but not the attainable maximum).
    @raise Invalid_argument if any actual value would exceed the new
    maximum. *)

(** {1 Dense conversions (testing and the reference evaluator)} *)

val to_dense : n:int -> t -> float array
(** Array of actual values indexed by [id - 1]. *)

val of_dense : max:float -> float array -> t
