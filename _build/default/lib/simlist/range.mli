(** Ranges of attribute values.

    §3.3: attribute variables (introduced by the freeze quantifier) are
    constrained only by predicates of the form [y < q], [y <= q], [y > q],
    [y >= q], [y = q] for integer attributes, and [y = q] otherwise, so
    the satisfying values of a variable always form a range — an integer
    interval with optional infinities, or a string equality constraint. *)

type value = Vint of int | Vstr of string

type t =
  | Ints of { lo : int option; hi : int option }
      (** Integer range; [None] bounds are infinite. *)
  | Str of string option
      (** [Str None] is any string, [Str (Some s)] exactly [s]. *)

val full_int : t
val full_str : t
val int_eq : int -> t
val int_le : int -> t
val int_ge : int -> t
val int_lt : int -> t
val int_gt : int -> t
val int_between : int -> int -> t
val str_eq : string -> t

val intersect : t -> t -> t option
(** [None] when the intersection is empty.
    @raise Invalid_argument when mixing integer and string ranges. *)

val mem : value -> t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_value : Format.formatter -> value -> unit
