type row = {
  objs : (string * int) list;
  value : Range.value;
  spans : Interval.t list;
}

type t = { obj_cols : string list; rows : row list }

let check_spans spans =
  let rec go = function
    | a :: (b :: _ as tl) ->
        if Interval.hi a >= Interval.lo b then
          invalid_arg "Value_table: spans must be sorted and disjoint";
        go tl
    | [ _ ] | [] -> ()
  in
  go spans

let create ~obj_cols rows =
  let obj_cols = List.sort String.compare obj_cols in
  List.iter
    (fun r ->
      if List.map fst r.objs <> obj_cols then
        invalid_arg "Value_table.create: row binds wrong variables";
      check_spans r.spans)
    rows;
  { obj_cols; rows }

let obj_cols t = t.obj_cols
let rows t = t.rows

let pp ppf t =
  let pp_row ppf r =
    Format.fprintf ppf "@[<h>%a | %a | %a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (k, v) ->
           Format.fprintf ppf "%s=%d" k v))
      r.objs Range.pp_value r.value
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Interval.pp)
      r.spans
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_row)
    t.rows
