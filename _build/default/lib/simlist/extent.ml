type t = { starts : int array; total : int }
(* [starts] is sorted increasing, starts.(0) = 1.  Extent k covers
   [starts.(k) .. (if k+1 < len then starts.(k+1) - 1 else total)]. *)

let single n =
  if n < 1 then invalid_arg "Extent.single: n < 1";
  { starts = [| 1 |]; total = n }

let of_lengths lengths =
  if lengths = [] then invalid_arg "Extent.of_lengths: empty";
  let starts = ref [] and pos = ref 1 in
  List.iter
    (fun l ->
      if l < 1 then invalid_arg "Extent.of_lengths: non-positive length";
      starts := !pos :: !starts;
      pos := !pos + l)
    lengths;
  { starts = Array.of_list (List.rev !starts); total = !pos - 1 }

let of_spans spans =
  (match spans with
  | [] -> invalid_arg "Extent.of_spans: empty"
  | first :: _ when Interval.lo first <> 1 ->
      invalid_arg "Extent.of_spans: first span must start at 1"
  | _ :: rest ->
      let rec check prev = function
        | [] -> ()
        | s :: tl ->
            if not (Interval.adjacent prev s) then
              invalid_arg "Extent.of_spans: spans must tile consecutively";
            check s tl
      in
      check (List.hd spans) rest);
  of_lengths (List.map Interval.length spans)

let total t = t.total
let count t = Array.length t.starts

let span_at t k =
  let lo = t.starts.(k) in
  let hi =
    if k + 1 < Array.length t.starts then t.starts.(k + 1) - 1 else t.total
  in
  Interval.make lo hi

let spans t = List.init (count t) (span_at t)

let index_containing t i =
  if i < 1 || i > t.total then
    invalid_arg (Printf.sprintf "Extent.containing: id %d out of [1,%d]" i t.total);
  (* greatest k with starts.(k) <= i *)
  let lo = ref 0 and hi = ref (Array.length t.starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.starts.(mid) <= i then lo := mid else hi := mid - 1
  done;
  !lo

let containing t i = span_at t (index_containing t i)
let last_of t i = Interval.hi (containing t i)

let split_entries t entries =
  let rec split (iv, v) acc =
    let ext = containing t (Interval.lo iv) in
    match Interval.clip iv ~within:ext with
    | Some head when Interval.hi head = Interval.hi iv -> (head, v) :: acc
    | Some head ->
        let rest = Interval.make (Interval.hi head + 1) (Interval.hi iv) in
        split (rest, v) ((head, v) :: acc)
    | None -> assert false
  in
  List.rev (List.fold_left (fun acc e -> split e acc) [] entries)

let equal a b = a.total = b.total && a.starts = b.starts

let pp ppf t =
  Format.fprintf ppf "@[<h>extents:%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Interval.pp)
    (spans t)
