lib/simlist/sim_list.mli: Extent Format Interval Sim
