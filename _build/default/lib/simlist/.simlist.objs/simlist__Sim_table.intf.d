lib/simlist/sim_table.mli: Format Range Sim_list Value_table
