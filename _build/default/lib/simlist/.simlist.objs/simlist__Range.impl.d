lib/simlist/range.ml: Format
