lib/simlist/range.mli: Format
