lib/simlist/extent.mli: Format Interval
