lib/simlist/interval.ml: Format Int Printf
