lib/simlist/sim.ml: Format Printf
