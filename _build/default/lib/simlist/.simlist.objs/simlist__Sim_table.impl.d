lib/simlist/sim_table.ml: Array Format Hashtbl List Option Printf Range Sim_list String Value_table
