lib/simlist/value_table.ml: Format Interval List Range String
