lib/simlist/interval.mli: Format
