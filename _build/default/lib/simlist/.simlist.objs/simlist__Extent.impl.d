lib/simlist/extent.ml: Array Format Interval List Printf
