lib/simlist/sim_list.ml: Array Extent Float Format Interval List Option Printf Sim
