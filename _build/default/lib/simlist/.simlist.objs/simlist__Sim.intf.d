lib/simlist/sim.mli: Format
