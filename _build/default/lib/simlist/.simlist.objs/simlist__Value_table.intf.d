lib/simlist/value_table.mli: Format Interval Range
