(** Similarity values.

    The paper (§2.5) represents how closely a segment satisfies a formula
    as a pair [(a, m)] with [0 <= a <= m]: [a] is the actual similarity,
    [m] the maximum possible one.  [m] depends only on the formula, so
    similarity lists store a single [m] for all entries and a per-entry
    actual value; this module holds the combination rules. *)

type t = private { actual : float; max : float }

val make : actual:float -> max:float -> t
(** @raise Invalid_argument unless [0 <= actual <= max]. *)

val zero : max:float -> t
(** Complete mismatch: [(0, max)]. *)

val exact : max:float -> t
(** Exact match: [(max, max)]. *)

val actual : t -> float
val max_sim : t -> float

val fraction : t -> float
(** Fractional similarity [a /. m]; 0 when [m = 0]. *)

val conj : t -> t -> t
(** Conjunction rule: [(a1+a2, m1+m2)]. *)

val best : t -> t -> t
(** The one with the larger actual value (for [exists] / [until]). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
