type value = Vint of int | Vstr of string

type t =
  | Ints of { lo : int option; hi : int option }
  | Str of string option

let full_int = Ints { lo = None; hi = None }
let full_str = Str None
let int_eq n = Ints { lo = Some n; hi = Some n }
let int_le n = Ints { lo = None; hi = Some n }
let int_ge n = Ints { lo = Some n; hi = None }
let int_lt n = Ints { lo = None; hi = Some (n - 1) }
let int_gt n = Ints { lo = Some (n + 1); hi = None }
let int_between lo hi = Ints { lo = Some lo; hi = Some hi }
let str_eq s = Str (Some s)

let max_bound a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (max a b)

let min_bound a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let intersect a b =
  match (a, b) with
  | Ints a, Ints b ->
      let lo = max_bound a.lo b.lo and hi = min_bound a.hi b.hi in
      let empty =
        match (lo, hi) with Some l, Some h -> l > h | _ -> false
      in
      if empty then None else Some (Ints { lo; hi })
  | Str None, (Str _ as s) | (Str _ as s), Str None -> Some s
  | Str (Some x), Str (Some y) -> if x = y then Some (Str (Some x)) else None
  | Ints _, Str _ | Str _, Ints _ ->
      invalid_arg "Range.intersect: mixed integer and string ranges"

let mem v t =
  match (v, t) with
  | Vint n, Ints { lo; hi } ->
      (match lo with None -> true | Some l -> l <= n)
      && (match hi with None -> true | Some h -> n <= h)
  | Vstr _, Str None -> true
  | Vstr s, Str (Some s') -> s = s'
  | Vint _, Str _ | Vstr _, Ints _ -> false

let equal a b =
  match (a, b) with
  | Ints a, Ints b -> a.lo = b.lo && a.hi = b.hi
  | Str a, Str b -> a = b
  | Ints _, Str _ | Str _, Ints _ -> false

let pp_bound inf ppf = function
  | None -> Format.pp_print_string ppf inf
  | Some n -> Format.pp_print_int ppf n

let pp ppf = function
  | Ints { lo; hi } ->
      Format.fprintf ppf "[%a..%a]" (pp_bound "-inf") lo (pp_bound "+inf") hi
  | Str None -> Format.pp_print_string ppf "<any>"
  | Str (Some s) -> Format.fprintf ppf "%S" s

let pp_value ppf = function
  | Vint n -> Format.pp_print_int ppf n
  | Vstr s -> Format.fprintf ppf "%S" s
