(** Sequence extents: the partition of the 1-based id space into maximal
    proper sequences.

    Temporal operators range over a {e proper sequence} (§2.3): the
    children of one parent node, or the segments of one video when several
    videos share a global numbering.  [next] and [until] must never cross
    from one sequence into the next, so every similarity-list operation
    that looks sideways takes the extent partition as a parameter. *)

type t

val single : int -> t
(** [single n] is one extent covering ids [1..n].
    @raise Invalid_argument if [n < 1]. *)

val of_lengths : int list -> t
(** [of_lengths [l1; l2; ...]] partitions [1..sum li] into consecutive
    extents of the given lengths.
    @raise Invalid_argument on an empty list or a non-positive length. *)

val of_spans : Interval.t list -> t
(** Inverse of {!spans}.
    @raise Invalid_argument unless the spans tile [1..n] consecutively
    starting at 1. *)

val total : t -> int
(** Highest id covered. *)

val count : t -> int
(** Number of extents. *)

val spans : t -> Interval.t list

val containing : t -> int -> Interval.t
(** The extent containing the given id (binary search).
    @raise Invalid_argument if the id is out of range. *)

val last_of : t -> int -> int
(** [last_of t i] is the last id of the extent containing [i]. *)

val split_entries :
  t -> (Interval.t * 'a) list -> (Interval.t * 'a) list
(** Split interval entries at extent boundaries so that no entry spans two
    extents.  Entries must be sorted and within [1..total]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
