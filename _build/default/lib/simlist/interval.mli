(** Closed integer intervals [lo, hi] over segment ids.

    Segment ids are 1-based and globally sequential per level (see
    {!Extent}).  Intervals are the unit of run-length compression in the
    paper's similarity lists: an entry [([beg,end], (act, max))] states
    that every id in [beg..end] has the given similarity. *)

type t = private { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi] is the interval [lo, hi].
    @raise Invalid_argument if [lo > hi]. *)

val point : int -> t
(** [point i] is the singleton interval [i, i]. *)

val lo : t -> int
val hi : t -> int

val length : t -> int
(** Number of ids covered; always >= 1. *)

val contains : t -> int -> bool

val intersect : t -> t -> t option
(** Intersection, [None] if disjoint. *)

val overlaps : t -> t -> bool

val adjacent : t -> t -> bool
(** [adjacent a b] iff [a.hi + 1 = b.lo] (a immediately precedes b). *)

val shift : int -> t -> t
(** [shift d t] translates both endpoints by [d]. *)

val clip : t -> within:t -> t option
(** [clip t ~within] is the part of [t] inside [within]. *)

val compare : t -> t -> int
(** Order by [lo], then [hi]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
