(** Value tables for the freeze quantifier (§3.3).

    The value of an attribute function [q] (say [height(x)]) is given by a
    table whose rows bind the object variables free in [q], give the value
    of [q] under that binding, and list the intervals of segment ids where
    [q] takes that value. *)

type row = {
  objs : (string * int) list;  (** object-variable binding, sorted by name *)
  value : Range.value;  (** the value of the attribute function *)
  spans : Interval.t list;  (** sorted disjoint ids where that value holds *)
}

type t

val create : obj_cols:string list -> row list -> t
(** @raise Invalid_argument if a row binds different variables than
    [obj_cols], or its spans are unsorted/overlapping. *)

val obj_cols : t -> string list
val rows : t -> row list
val pp : Format.formatter -> t -> unit
