type t = { actual : float; max : float }

let make ~actual ~max =
  if not (0. <= actual && actual <= max) then
    invalid_arg
      (Printf.sprintf "Sim.make: need 0 <= actual <= max, got (%g, %g)" actual
         max);
  { actual; max }

let zero ~max = make ~actual:0. ~max
let exact ~max = make ~actual:max ~max
let actual t = t.actual
let max_sim t = t.max
let fraction t = if t.max = 0. then 0. else t.actual /. t.max

let conj a b = { actual = a.actual +. b.actual; max = a.max +. b.max }
let best a b = if a.actual >= b.actual then a else b
let equal a b = a.actual = b.actual && a.max = b.max
let pp ppf t = Format.fprintf ppf "(%g, %g)" t.actual t.max
