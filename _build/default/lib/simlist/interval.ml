type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo (%d) > hi (%d)" lo hi);
  { lo; hi }

let point i = { lo = i; hi = i }
let lo t = t.lo
let hi t = t.hi
let length t = t.hi - t.lo + 1
let contains t i = t.lo <= i && i <= t.hi

let intersect a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let overlaps a b = max a.lo b.lo <= min a.hi b.hi
let adjacent a b = a.hi + 1 = b.lo
let shift d t = { lo = t.lo + d; hi = t.hi + d }
let clip t ~within = intersect t within

let compare a b =
  match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf t = Format.fprintf ppf "[%d,%d]" t.lo t.hi
let to_string t = Format.asprintf "%a" pp t
