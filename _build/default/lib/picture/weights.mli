(** Per-condition weights.

    The similarity of a non-temporal formula is the weighted sum of its
    satisfied conditions; the maximum similarity is the sum of all the
    weights (§2.5 and [27]).  Weights are looked up by condition key:
    ["present"], ["rel:<name>"], ["attr:<name>"], ["true"], ["false"],
    ["cmp"] (constant-only comparison). *)

type t

val default : t
(** Every condition weighs 1. *)

val create : ?default_weight:float -> (string * float) list -> t

val find : t -> string -> float

val atom_key : Htl.Ast.atom -> string
(** The lookup key of an atomic predicate. *)

val atom_weight : t -> Htl.Ast.atom -> float

val total : t -> Htl.Ast.t -> float
(** Maximum similarity of a non-temporal formula: the sum of its atoms'
    weights (quantifiers and freezes are transparent).
    @raise Invalid_argument on temporal or level operators, [Not] or
    [Or]. *)
