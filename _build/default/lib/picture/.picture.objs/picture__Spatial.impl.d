lib/picture/spatial.ml: List Metadata
