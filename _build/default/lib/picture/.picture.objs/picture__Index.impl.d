lib/picture/index.ml: Hashtbl List Metadata Option Video_model
