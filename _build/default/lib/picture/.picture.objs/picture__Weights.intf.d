lib/picture/weights.mli: Htl
