lib/picture/spatial.mli: Metadata
