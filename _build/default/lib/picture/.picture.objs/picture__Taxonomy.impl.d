lib/picture/taxonomy.ml: Float List Map Printf String
