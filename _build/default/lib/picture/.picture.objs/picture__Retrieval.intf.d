lib/picture/retrieval.mli: Htl Metadata Simlist Taxonomy Video_model Weights
