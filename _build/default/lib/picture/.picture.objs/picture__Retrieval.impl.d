lib/picture/retrieval.ml: Array Float Format Hashtbl Htl Index List Metadata Option Simlist Spatial Taxonomy Video_model Weights
