lib/picture/taxonomy.mli:
