lib/picture/weights.ml: Hashtbl Htl List
