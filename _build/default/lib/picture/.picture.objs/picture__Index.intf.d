lib/picture/index.mli: Video_model
