(** Object-type taxonomy with graded type similarity.

    The picture retrieval system of [27, 2] retrieves near matches: a
    query asking for a {e woman} gives partial credit to a segment showing
    a {e man} (both are {e person}s) — this is how the paper's Table 2
    contains low-similarity rows for "two men instead of a man and a
    woman".  The taxonomy is a forest of type names; similarity between
    the requested and the found type decays with the distance to their
    lowest common ancestor. *)

type t

val empty : t

val add : t -> ?parent:string -> string -> t
(** Add a type under an optional parent.
    @raise Invalid_argument if the type already exists or the parent
    does not. *)

val of_edges : (string option * string) list -> t
(** [(parent, child)] pairs, parents first. *)

val default : t
(** A small built-in taxonomy used by the examples: thing > person >
    (man, woman), thing > vehicle > (train, car, airplane), thing >
    animal > (horse, dog), thing > weapon > (gun, rifle), thing >
    structure > (building, bridge). *)

val mem : t -> string -> bool

val is_subtype : t -> sub:string -> super:string -> bool
(** Reflexive-transitive. *)

val similarity : t -> asked:string -> found:string -> float
(** In [[0, 1]]: [1] when [found] is a subtype of [asked] (a man {e is} a
    person); otherwise [2^-(da + df)] where [da]/[df] are the distances
    from asked/found up to their lowest common ancestor; [0] when they
    share none.  Types absent from the taxonomy only match themselves. *)
